package disc_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation, each driving the corresponding experiment
// runner in internal/experiments. By default benchmarks run the reduced
// ("quick") sweeps so `go test -bench=.` completes in minutes; set
// DISC_BENCH_FULL=1 to run the paper-scale parameters (n=10000 etc.), or
// use cmd/discbench for full runs with printed tables.
//
// Additional micro-benchmarks cover the load-bearing primitives: M-tree
// construction, range queries and the selection algorithms.

import (
	"os"
	"testing"

	disc "github.com/discdiversity/disc"
	"github.com/discdiversity/disc/internal/core"
	"github.com/discdiversity/disc/internal/dataset"
	"github.com/discdiversity/disc/internal/experiments"
	"github.com/discdiversity/disc/internal/mtree"
	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/rtree"
)

func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	if os.Getenv("DISC_BENCH_FULL") == "" {
		cfg.Quick = true
		cfg.N = 1500
	}
	return cfg
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(name, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates Table 3(a)-(d): solution sizes per
// algorithm across the radius sweep on all four datasets.
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig6 regenerates Figure 6: the model comparison (DisC vs
// MaxSum, MaxMin, k-medoids, r-C) on clustered data.
func BenchmarkFig6(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Figure 7(a)-(d): node accesses of Basic-DisC,
// Greedy-DisC (each ± pruning) and Greedy-C.
func BenchmarkFig7(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8(a)-(d): node accesses of the pruned
// Greedy-DisC variants.
func BenchmarkFig8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9Cardinality regenerates Figure 9(a)-(b): size and accesses
// vs dataset cardinality.
func BenchmarkFig9Cardinality(b *testing.B) { runExperiment(b, "fig9card") }

// BenchmarkFig9Dimensionality regenerates Figure 9(c)-(d): size and
// accesses vs dimensionality.
func BenchmarkFig9Dimensionality(b *testing.B) { runExperiment(b, "fig9dim") }

// BenchmarkFig10 regenerates Figure 10: node accesses on trees of varying
// fat-factor.
func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11to13ZoomIn regenerates Figures 11-13: zoom-in size,
// accesses and Jaccard distance vs from-scratch recomputation.
func BenchmarkFig11to13ZoomIn(b *testing.B) { runExperiment(b, "zoomin") }

// BenchmarkFig14to16ZoomOut regenerates Figures 14-16: zoom-out size,
// accesses and Jaccard distance for all variants.
func BenchmarkFig14to16ZoomOut(b *testing.B) { runExperiment(b, "zoomout") }

// BenchmarkAblationCapacity regenerates the in-text node-capacity claim.
func BenchmarkAblationCapacity(b *testing.B) { runExperiment(b, "capacity") }

// BenchmarkAblationFastC regenerates the in-text Fast-C vs Greedy-C
// claims.
func BenchmarkAblationFastC(b *testing.B) { runExperiment(b, "fastc") }

// BenchmarkAblationBottomUp regenerates the in-text bottom-up range-query
// claim.
func BenchmarkAblationBottomUp(b *testing.B) { runExperiment(b, "bottomup") }

// BenchmarkAblationBuildInit regenerates the in-text build-time count
// initialisation claim.
func BenchmarkAblationBuildInit(b *testing.B) { runExperiment(b, "buildinit") }

// --- micro-benchmarks ---

func benchPoints(n int) []object.Point {
	ds, err := dataset.Clustered(n, 2, 0, 42)
	if err != nil {
		panic(err)
	}
	return ds.Points
}

// BenchmarkMTreeBuild measures index construction.
func BenchmarkMTreeBuild(b *testing.B) {
	pts := benchPoints(5000)
	cfg := mtree.Config{Capacity: 50, Metric: object.Euclidean{}, Policy: mtree.MinOverlap}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mtree.Build(cfg, pts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMTreeRangeQuery measures a single range query on a built tree.
func BenchmarkMTreeRangeQuery(b *testing.B) {
	pts := benchPoints(5000)
	cfg := mtree.Config{Capacity: 50, Metric: object.Euclidean{}, Policy: mtree.MinOverlap}
	tree, err := mtree.Build(cfg, pts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.RangeQueryAround(i%len(pts), 0.05)
	}
}

// BenchmarkSelectGreedy measures a full Greedy-DisC selection through the
// public API (index construction excluded).
func BenchmarkSelectGreedy(b *testing.B) {
	d, err := disc.New(benchPoints(3000))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Select(0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectBasic measures Basic-DisC through the public API.
func BenchmarkSelectBasic(b *testing.B) {
	d, err := disc.New(benchPoints(3000))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Select(0.05, disc.WithAlgorithm(disc.AlgorithmBasic)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkZoomIn measures incremental zoom-in against the cost of the
// from-scratch run benchmarked above.
func BenchmarkZoomIn(b *testing.B) {
	d, err := disc.New(benchPoints(3000))
	if err != nil {
		b.Fatal(err)
	}
	res, err := d.Select(0.1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.ZoomIn(res, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkZoomOut measures incremental zoom-out (greedy variant (a)).
func BenchmarkZoomOut(b *testing.B) {
	d, err := disc.New(benchPoints(3000))
	if err != nil {
		b.Fatal(err)
	}
	res, err := d.Select(0.05)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.ZoomOut(res, 0.1, disc.ZoomOutGreedyLargest); err != nil {
			b.Fatal(err)
		}
	}
}

// --- engine comparison on large synthetic clusters ---
//
// The paper-style comparison the R-tree/coverage-graph work targets:
// the same pruned Greedy-DisC selection on 50k clustered points, per
// index backend. Index construction is excluded from the selection
// benchmarks (measured separately below), mirroring the paper's
// node-access experiments.

const (
	engineBenchN = 50_000
	engineBenchR = 0.0025
)

func benchGreedySelect(b *testing.B, e core.Engine) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.GreedyDisC(e, engineBenchR, core.GreedyOptions{Update: core.UpdateGrey, Pruned: true})
	}
}

// BenchmarkGreedyDisC_MTree is the single-threaded M-tree baseline.
func BenchmarkGreedyDisC_MTree(b *testing.B) {
	pts := benchPoints(engineBenchN)
	cfg := mtree.Config{Capacity: 50, Metric: object.Euclidean{}, Policy: mtree.MinOverlap}
	e, err := core.BuildTreeEngine(cfg, pts)
	if err != nil {
		b.Fatal(err)
	}
	benchGreedySelect(b, e)
}

// BenchmarkGreedyDisC_RTree runs the same selection on the bulk-loaded
// R-tree.
func BenchmarkGreedyDisC_RTree(b *testing.B) {
	pts := benchPoints(engineBenchN)
	e, err := core.BuildRTreeEngine(pts, object.Euclidean{}, 0)
	if err != nil {
		b.Fatal(err)
	}
	benchGreedySelect(b, e)
}

// BenchmarkGreedyDisC_ParallelGraph runs the same selection on the
// materialised coverage graph: every neighbourhood query is an array
// lookup and the initial counts are free.
func BenchmarkGreedyDisC_ParallelGraph(b *testing.B) {
	pts := benchPoints(engineBenchN)
	e, err := core.BuildParallelGraphEngine(pts, object.Euclidean{}, engineBenchR, 0)
	if err != nil {
		b.Fatal(err)
	}
	benchGreedySelect(b, e)
}

// BenchmarkParallelGraphBuild measures the sharded coverage-graph
// construction itself (R-tree build + one range query per object across
// all cores).
func BenchmarkParallelGraphBuild(b *testing.B) {
	pts := benchPoints(engineBenchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildParallelGraphEngine(pts, object.Euclidean{}, engineBenchR, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRTreeBuild measures the STR bulk load on the same 50k points.
func BenchmarkRTreeBuild(b *testing.B) {
	pts := benchPoints(engineBenchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rtree.Build(pts, object.Euclidean{}, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRTreeRangeQuery mirrors BenchmarkMTreeRangeQuery on the
// R-tree.
func BenchmarkRTreeRangeQuery(b *testing.B) {
	pts := benchPoints(5000)
	tree, err := rtree.Build(pts, object.Euclidean{}, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.RangeQueryAround(i%len(pts), 0.05)
	}
}

// --- steady-state neighbour queries (the zero-allocation path) ---
//
// One reusable destination buffer, one query per iteration: the loop the
// DisC heuristics spend their lives in. With the buffer at its
// high-water capacity every engine must report 0 allocs/op.

func benchNeighborsAppend(b *testing.B, e core.Engine, r float64) {
	b.Helper()
	buf := make([]object.Neighbor, 0, 4096)
	n := e.Size()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = e.NeighborsAppend(buf[:0], i%n, r)
	}
}

// BenchmarkNeighborsAppend_MTree measures the reusable-buffer range query
// on the M-tree.
func BenchmarkNeighborsAppend_MTree(b *testing.B) {
	pts := benchPoints(5000)
	cfg := mtree.Config{Capacity: 50, Metric: object.Euclidean{}, Policy: mtree.MinOverlap}
	e, err := core.BuildTreeEngine(cfg, pts)
	if err != nil {
		b.Fatal(err)
	}
	benchNeighborsAppend(b, e, 0.05)
}

// BenchmarkNeighborsAppend_RTree mirrors the M-tree benchmark on the
// bulk-loaded R-tree.
func BenchmarkNeighborsAppend_RTree(b *testing.B) {
	pts := benchPoints(5000)
	e, err := core.BuildRTreeEngine(pts, object.Euclidean{}, 0)
	if err != nil {
		b.Fatal(err)
	}
	benchNeighborsAppend(b, e, 0.05)
}

// BenchmarkNeighborsAppend_VPTree mirrors it on the VP-tree.
func BenchmarkNeighborsAppend_VPTree(b *testing.B) {
	pts := benchPoints(5000)
	e, err := core.BuildVPEngine(pts, object.Euclidean{}, 42)
	if err != nil {
		b.Fatal(err)
	}
	benchNeighborsAppend(b, e, 0.05)
}

// BenchmarkNeighborsAppend_Graph answers from the materialised coverage
// graph (O(degree) adjacency copy).
func BenchmarkNeighborsAppend_Graph(b *testing.B) {
	pts := benchPoints(5000)
	e, err := core.BuildParallelGraphEngine(pts, object.Euclidean{}, 0.05, 0)
	if err != nil {
		b.Fatal(err)
	}
	benchNeighborsAppend(b, e, 0.05)
}

// BenchmarkNeighborsAppend_Flat scans the contiguous flat storage with
// the compiled kernel.
func BenchmarkNeighborsAppend_Flat(b *testing.B) {
	pts := benchPoints(5000)
	e, err := core.NewFlatEngine(pts, object.Euclidean{})
	if err != nil {
		b.Fatal(err)
	}
	benchNeighborsAppend(b, e, 0.05)
}

// BenchmarkFlatEngineSelect contrasts the linear-scan engine.
func BenchmarkFlatEngineSelect(b *testing.B) {
	pts := benchPoints(3000)
	e, err := core.NewFlatEngine(pts, object.Euclidean{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.GreedyDisC(e, 0.05, core.GreedyOptions{Update: core.UpdateGrey})
	}
}
