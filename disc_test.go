package disc_test

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	disc "github.com/discdiversity/disc"
)

func randomPoints(n, d int, seed uint64) []disc.Point {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	pts := make([]disc.Point, n)
	for i := range pts {
		p := make(disc.Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

// weirdMetric is a valid metric that does not declare coordinate-wise
// monotonicity, so box-pruning indexes must refuse it.
type weirdMetric struct{}

func (weirdMetric) Dist(a, b disc.Point) float64 { return disc.Euclidean().Dist(a, b) }
func (weirdMetric) Name() string                 { return "weird" }

func newDiversifier(t *testing.T, pts []disc.Point, opts ...disc.Option) *disc.Diversifier {
	t.Helper()
	d, err := disc.New(pts, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := disc.New(nil); err == nil {
		t.Error("empty point set accepted")
	}
	if _, err := disc.New(randomPoints(10, 2, 1), disc.WithMetric(nil)); err == nil {
		t.Error("nil metric accepted")
	}
	if _, err := disc.New(randomPoints(10, 2, 1), disc.WithMTreeCapacity(1)); err == nil {
		t.Error("tiny capacity accepted")
	}
	if _, err := disc.NewFromDataset(nil); err == nil {
		t.Error("nil dataset accepted")
	}
}

func TestSelectAllAlgorithmsVerify(t *testing.T) {
	pts := randomPoints(400, 2, 2)
	algorithms := []disc.Algorithm{
		disc.AlgorithmGreedy, disc.AlgorithmBasic, disc.AlgorithmGreedyWhite,
		disc.AlgorithmLazyGrey, disc.AlgorithmLazyWhite,
		disc.AlgorithmCoverage, disc.AlgorithmFastCoverage,
	}
	for _, engineOpts := range [][]disc.Option{
		nil,
		{disc.WithLinearScan()},
		{disc.WithVPTree()},
		{disc.WithIndex(disc.IndexRTree)},
		{disc.WithIndex(disc.IndexCoverageGraph), disc.WithParallelism(4)},
	} {
		d := newDiversifier(t, pts, engineOpts...)
		for _, a := range algorithms {
			res, err := d.Select(0.08, disc.WithAlgorithm(a))
			if err != nil {
				t.Fatalf("%v: %v", a, err)
			}
			if err := d.Verify(res); err != nil {
				t.Errorf("%v: %v", a, err)
			}
			if res.Size() == 0 || res.Size() != len(res.IDs()) {
				t.Errorf("%v: size %d inconsistent", a, res.Size())
			}
			if res.Algorithm() == "" {
				t.Errorf("%v: empty algorithm name", a)
			}
			if got := res.Points(); len(got) != res.Size() {
				t.Errorf("%v: %d points for %d ids", a, len(got), res.Size())
			}
		}
	}
}

func TestIndexBackendsIdenticalSelections(t *testing.T) {
	pts := randomPoints(600, 2, 17)
	indexes := []disc.Index{
		disc.IndexMTree, disc.IndexLinearScan, disc.IndexVPTree,
		disc.IndexRTree, disc.IndexCoverageGraph, disc.IndexGrid,
	}
	var want []int
	for _, ix := range indexes {
		d := newDiversifier(t, pts, disc.WithIndex(ix))
		if d.Indexed() != ix {
			t.Fatalf("%v: Indexed() = %v", ix, d.Indexed())
		}
		res, err := d.Select(0.07)
		if err != nil {
			t.Fatalf("%v: %v", ix, err)
		}
		if err := d.Verify(res); err != nil {
			t.Fatalf("%v: %v", ix, err)
		}
		ids := res.IDs()
		if want == nil {
			want = ids
			continue
		}
		if len(ids) != len(want) {
			t.Fatalf("%v: %d representatives, want %d", ix, len(ids), len(want))
		}
		for i := range want {
			if ids[i] != want[i] {
				t.Fatalf("%v: selection differs from mtree at position %d", ix, i)
			}
		}
	}
}

func TestCoverageGraphZoomAndReuse(t *testing.T) {
	pts := randomPoints(500, 2, 18)
	d := newDiversifier(t, pts, disc.WithIndex(disc.IndexCoverageGraph))
	res, err := d.Select(0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Selecting at the same radius reuses the graph; a different radius
	// rebuilds it. Either way results must verify.
	again, err := d.Select(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(again); err != nil {
		t.Fatal(err)
	}
	finer, err := d.ZoomIn(res, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(finer); err != nil {
		t.Fatal(err)
	}
	coarser, err := d.ZoomOut(res, 0.2, disc.ZoomOutGreedyLargest)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(coarser); err != nil {
		t.Fatal(err)
	}
	other, err := d.Select(0.03)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(other); err != nil {
		t.Fatal(err)
	}
}

func TestIndexOptionValidation(t *testing.T) {
	pts := randomPoints(20, 2, 19)
	if _, err := disc.New(pts, disc.WithLinearScan(), disc.WithVPTree()); err == nil {
		t.Error("conflicting index selections accepted")
	}
	if _, err := disc.New(pts, disc.WithIndex(disc.IndexRTree), disc.WithIndex(disc.IndexRTree)); err != nil {
		t.Errorf("repeated identical index rejected: %v", err)
	}
	if _, err := disc.New(pts, disc.WithIndex(disc.Index(42))); err == nil {
		t.Error("unknown index accepted")
	}
	if _, err := disc.New(pts, disc.WithParallelism(-1)); err == nil {
		t.Error("negative parallelism accepted")
	}
	// Box-pruning backends must reject metrics that do not implement
	// the CoordinatewiseMonotone marker.
	if _, err := disc.New(pts, disc.WithMetric(weirdMetric{}), disc.WithIndex(disc.IndexRTree)); err == nil {
		t.Error("IndexRTree accepted a non-coordinate-wise-monotone metric")
	}
	// The coverage graph serves every metric: non-monotone (and even
	// non-metric) distances route to the flat all-pairs join substrate.
	if dw, err := disc.New(pts, disc.WithMetric(weirdMetric{}), disc.WithIndex(disc.IndexCoverageGraph)); err != nil {
		t.Errorf("IndexCoverageGraph rejected a non-coordinate-wise-monotone metric: %v", err)
	} else if sel, err := dw.Select(0.3); err != nil {
		t.Errorf("coverage-graph select under a custom metric: %v", err)
	} else if err := dw.Verify(sel); err != nil {
		t.Errorf("coverage-graph selection under a custom metric: %v", err)
	}
	if _, err := disc.New(pts, disc.WithMetric(weirdMetric{}), disc.WithIndex(disc.IndexVPTree)); err != nil {
		t.Errorf("metric-only index rejected a custom metric: %v", err)
	}
	// The grid needs a metric dominating per-coordinate differences:
	// Hamming (and custom metrics) must fail at New, not at Select.
	if _, err := disc.New(pts, disc.WithMetric(disc.Hamming()), disc.WithIndex(disc.IndexGrid)); err == nil {
		t.Error("IndexGrid accepted the Hamming metric")
	}
	for _, ix := range []disc.Index{
		disc.IndexMTree, disc.IndexLinearScan, disc.IndexVPTree,
		disc.IndexRTree, disc.IndexCoverageGraph, disc.IndexGrid,
	} {
		if ix.String() == "" {
			t.Errorf("index %d: empty String()", int(ix))
		}
	}
}

func TestIndexByNameAndWithIndexName(t *testing.T) {
	pts := randomPoints(50, 2, 21)
	for _, name := range disc.SupportedIndexNames() {
		ix, err := disc.IndexByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ix.String() != name {
			t.Fatalf("IndexByName(%q) = %v", name, ix)
		}
		d, err := disc.New(pts, disc.WithIndexName(name))
		if err != nil {
			t.Fatalf("WithIndexName(%q): %v", name, err)
		}
		if d.Indexed() != ix {
			t.Fatalf("WithIndexName(%q): Indexed() = %v", name, d.Indexed())
		}
	}
	// Unknown names fail when the option is parsed — before any index
	// or engine work — and the error teaches the supported list.
	_, err := disc.New(pts, disc.WithIndexName("kdtree"))
	if err == nil {
		t.Fatal("unknown index name accepted")
	}
	for _, name := range disc.SupportedIndexNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list supported index %q", err, name)
		}
	}
}

func TestGridIndexZoomAndRebucket(t *testing.T) {
	pts := randomPoints(500, 2, 22)
	d := newDiversifier(t, pts, disc.WithIndex(disc.IndexGrid))
	res, err := d.Select(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(res); err != nil {
		t.Fatal(err)
	}
	// Zoom-in reuses the bucketing; a coarser Select re-buckets; both
	// must verify.
	finer, err := d.ZoomIn(res, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(finer); err != nil {
		t.Fatal(err)
	}
	coarser, err := d.ZoomOut(res, 0.2, disc.ZoomOutGreedyLargest)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(coarser); err != nil {
		t.Fatal(err)
	}
	wide, err := d.Select(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(wide); err != nil {
		t.Fatal(err)
	}
}

func TestSelectInvalidInputs(t *testing.T) {
	d := newDiversifier(t, randomPoints(50, 2, 3))
	if _, err := d.Select(-1); err == nil {
		t.Error("negative radius accepted")
	}
	if _, err := d.Select(0.1, disc.WithAlgorithm(disc.Algorithm(99))); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestZoomInKeepsRepresentatives(t *testing.T) {
	pts := randomPoints(500, 2, 4)
	d := newDiversifier(t, pts)
	res, err := d.Select(0.12)
	if err != nil {
		t.Fatal(err)
	}
	finer, err := d.ZoomIn(res, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(finer); err != nil {
		t.Fatal(err)
	}
	for _, id := range res.IDs() {
		if !finer.Contains(id) {
			t.Errorf("representative %d dropped by zoom-in", id)
		}
	}
	if finer.Radius() != 0.05 {
		t.Errorf("radius %g", finer.Radius())
	}
	// The original result is untouched.
	if res.Radius() != 0.12 || res.Size() > finer.Size() {
		t.Error("zoom-in mutated the original result")
	}
}

func TestZoomOutAllVariants(t *testing.T) {
	pts := randomPoints(500, 2, 5)
	d := newDiversifier(t, pts)
	res, err := d.Select(0.04)
	if err != nil {
		t.Fatal(err)
	}
	variants := []disc.ZoomOutVariant{
		disc.ZoomOutGreedyLargest, disc.ZoomOutGreedySmallest,
		disc.ZoomOutGreedyCoverage, disc.ZoomOutArbitrary,
	}
	scratch, err := d.Select(0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		coarser, err := d.ZoomOut(res, 0.1, v)
		if err != nil {
			t.Fatalf("%d: %v", v, err)
		}
		if err := d.Verify(coarser); err != nil {
			t.Errorf("%d: %v", v, err)
		}
		if coarser.Size() > res.Size() {
			t.Errorf("%d: zoom-out grew the result", v)
		}
		// Closer to the previous result than a from-scratch run.
		if res.Jaccard(coarser) > res.Jaccard(scratch) {
			t.Errorf("%d: zoom-out no closer to previous result than from-scratch", v)
		}
	}
	if _, err := d.ZoomOut(res, 0.1, disc.ZoomOutVariant(42)); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestZoomRejectsForeignAndCoverageResults(t *testing.T) {
	pts := randomPoints(100, 2, 6)
	d1 := newDiversifier(t, pts)
	d2 := newDiversifier(t, pts)
	res, err := d1.Select(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.ZoomIn(res, 0.05); err == nil {
		t.Error("foreign result accepted")
	}
	cov, err := d1.Select(0.1, disc.WithAlgorithm(disc.AlgorithmCoverage))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d1.ZoomIn(cov, 0.05); err == nil {
		t.Error("coverage-only result accepted for zooming")
	}
}

func TestLocalZoomInAPI(t *testing.T) {
	pts := randomPoints(400, 2, 7)
	d := newDiversifier(t, pts)
	res, err := d.Select(0.15)
	if err != nil {
		t.Fatal(err)
	}
	center := res.IDs()[0]
	lz, err := d.LocalZoomIn(res, center, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if lz.Center != center || lz.LocalRadius != 0.05 {
		t.Errorf("local zoom metadata wrong: %+v", lz)
	}
	for _, id := range res.IDs() {
		if !containsInt(lz.Representatives, id) {
			t.Errorf("representative %d missing from local zoom result", id)
		}
	}
}

func TestLocalZoomOutAPI(t *testing.T) {
	pts := randomPoints(400, 2, 8)
	d := newDiversifier(t, pts)
	res, err := d.Select(0.05)
	if err != nil {
		t.Fatal(err)
	}
	center := res.IDs()[0]
	lz, err := d.LocalZoomOut(res, center, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !containsInt(lz.Representatives, center) {
		t.Error("centre dropped")
	}
	for _, rm := range lz.Removed {
		if containsInt(lz.Representatives, rm) {
			t.Errorf("removed representative %d still present", rm)
		}
	}
}

func TestDistanceToRepresentative(t *testing.T) {
	pts := randomPoints(300, 2, 9)
	d := newDiversifier(t, pts)
	res, err := d.Select(0.1, disc.WithoutPruning())
	if err != nil {
		t.Fatal(err)
	}
	m := d.Metric()
	for id := range pts {
		got := res.DistanceToRepresentative(id)
		if res.Contains(id) {
			if got != 0 {
				t.Fatalf("representative %d: distance %g", id, got)
			}
			continue
		}
		if got > 0.1 {
			t.Fatalf("object %d: distance %g beyond radius", id, got)
		}
		// Must match a real representative distance.
		found := false
		for _, b := range res.IDs() {
			if m.Dist(pts[id], pts[b]) == got {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("object %d: distance %g matches no representative", id, got)
		}
	}
}

// Property: for random radii, Select(greedy) always yields a valid DisC
// subset whose fmin exceeds r.
func TestSelectQuickProperty(t *testing.T) {
	pts := randomPoints(200, 2, 10)
	d := newDiversifier(t, pts)
	prop := func(raw uint16) bool {
		r := 0.01 + float64(raw%500)/1000.0 // 0.01 .. 0.51
		res, err := d.Select(r)
		if err != nil {
			return false
		}
		if d.Verify(res) != nil {
			return false
		}
		if res.Size() >= 2 && disc.FMin(pts, d.Metric(), res.IDs()) <= r {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBaselinesExported(t *testing.T) {
	pts := randomPoints(150, 2, 11)
	m := disc.Euclidean()
	k := 10
	for name, ids := range map[string][]int{
		"maxmin":    disc.MaxMin(pts, m, k),
		"maxsum":    disc.MaxSum(pts, m, k),
		"kmedoids":  disc.KMedoids(pts, m, k, 1),
		"randomsel": disc.RandomSample(len(pts), k, 1),
	} {
		if len(ids) == 0 || len(ids) > k {
			t.Errorf("%s returned %d ids", name, len(ids))
		}
	}
	if disc.FMin(pts, m, []int{0, 1}) <= 0 {
		t.Error("fmin not positive for distinct points")
	}
	if disc.FSum(pts, m, []int{0, 1, 2}) <= 0 {
		t.Error("fsum not positive")
	}
	if disc.MedoidCost(pts, m, []int{0}) <= 0 {
		t.Error("medoid cost not positive")
	}
}

func TestMetricConstructors(t *testing.T) {
	a, b := disc.Point{0, 0}, disc.Point{1, 1}
	if disc.Euclidean().Dist(a, b) == 0 || disc.Manhattan().Dist(a, b) != 2 ||
		disc.Chebyshev().Dist(a, b) != 1 || disc.Hamming().Dist(a, b) != 2 {
		t.Error("metric constructors broken")
	}
	if _, err := disc.MetricByName("hamming"); err != nil {
		t.Error(err)
	}
}

func TestDatasetConstructors(t *testing.T) {
	u, err := disc.UniformDataset(100, 3, 1)
	if err != nil || u.Len() != 100 {
		t.Fatalf("uniform: %v", err)
	}
	c, err := disc.ClusteredDataset(100, 2, 4, 1)
	if err != nil || c.Len() != 100 {
		t.Fatalf("clustered: %v", err)
	}
	if disc.CitiesDataset(1).Len() != 5922 {
		t.Error("cities size")
	}
	if disc.CamerasDataset(1).Len() != 579 {
		t.Error("cameras size")
	}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
