package disc_test

import (
	"bytes"
	"math/rand/v2"
	"slices"
	"testing"

	disc "github.com/discdiversity/disc"
)

func clusteredPoints(t *testing.T, n int, seed uint64) []disc.Point {
	t.Helper()
	ds, err := disc.ClusteredDataset(n, 2, 6, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Points
}

// TestSelectModeProperty: across random clustered workloads, every
// engine, every Greedy-DisC algorithm and several radii, the
// component-mode selection must (a) verify as r-DisC diverse, (b) pick
// exactly the global mode's subset, and (c) be bit-identical — selection
// order included — across WithSelectParallelism(1/2/8).
func TestSelectModeProperty(t *testing.T) {
	algorithms := []disc.Algorithm{
		disc.AlgorithmGreedy, disc.AlgorithmGreedyWhite,
		disc.AlgorithmLazyGrey, disc.AlgorithmLazyWhite,
	}
	rng := rand.New(rand.NewPCG(61, 61))
	for trial := 0; trial < 2; trial++ {
		pts := clusteredPoints(t, 300+trial*150, uint64(400+trial))
		r := 0.02 + rng.Float64()*0.04
		for _, name := range disc.SupportedIndexNames() {
			d, err := disc.New(pts, disc.WithIndexName(name))
			if err != nil {
				t.Fatal(err)
			}
			for _, alg := range algorithms {
				global, err := d.Select(r, disc.WithAlgorithm(alg))
				if err != nil {
					t.Fatalf("%s/%v: %v", name, alg, err)
				}
				var order []int
				for _, workers := range []int{1, 2, 8} {
					res, err := d.Select(r, disc.WithAlgorithm(alg),
						disc.WithSelectMode(disc.SelectComponents),
						disc.WithSelectParallelism(workers))
					if err != nil {
						t.Fatalf("%s/%v workers=%d: %v", name, alg, workers, err)
					}
					if err := d.Verify(res); err != nil {
						t.Errorf("%s/%v workers=%d: %v", name, alg, workers, err)
					}
					if !slices.Equal(global.SortedIDs(), res.SortedIDs()) {
						t.Errorf("%s/%v workers=%d: component subset differs from global", name, alg, workers)
					}
					if order == nil {
						order = res.IDs()
					} else if !slices.Equal(order, res.IDs()) {
						t.Errorf("%s/%v workers=%d: selection order differs across parallelism", name, alg, workers)
					}
				}
			}
		}
	}
}

// TestSelectModeValidation: unsupported algorithm/mode combinations and
// unknown modes must fail before any index work.
func TestSelectModeValidation(t *testing.T) {
	d, err := disc.New(clusteredPoints(t, 60, 7))
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []disc.Algorithm{disc.AlgorithmBasic, disc.AlgorithmCoverage, disc.AlgorithmFastCoverage} {
		if _, err := d.Select(0.1, disc.WithAlgorithm(alg), disc.WithSelectMode(disc.SelectComponents)); err == nil {
			t.Errorf("%v accepted component mode", alg)
		}
	}
	if _, err := d.Select(0.1, disc.WithSelectMode(disc.SelectMode(99))); err == nil {
		t.Error("unknown select mode accepted")
	}
	if got := disc.SelectComponents.String(); got != "components" {
		t.Errorf("SelectComponents.String() = %q", got)
	}
}

// TestSnapshotCarriesComponents: Prepare must leave the component
// decomposition in the snapshot, a warm start must reuse it (selections
// identical to the fresh diversifier's, in both modes), and a second
// save must reproduce the file byte for byte — the round-trip property
// of the new section at the public API level.
func TestSnapshotCarriesComponents(t *testing.T) {
	pts := clusteredPoints(t, 400, 11)
	const r = 0.03
	d, err := disc.New(pts, disc.WithIndex(disc.IndexCoverageGraph))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Prepare(r); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	fresh, err := d.Select(r, disc.WithSelectMode(disc.SelectComponents))
	if err != nil {
		t.Fatal(err)
	}

	warm, err := disc.LoadDiversifier(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []disc.SelectMode{disc.SelectGlobal, disc.SelectComponents} {
		res, err := warm.Select(r, disc.WithSelectMode(mode))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !slices.Equal(fresh.SortedIDs(), res.SortedIDs()) {
			t.Fatalf("%v: warm selection differs from fresh", mode)
		}
	}
	var again bytes.Buffer
	if err := warm.WriteSnapshot(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatalf("save→load→save with components is not byte-identical (%d vs %d bytes)", buf.Len(), again.Len())
	}
}
