// Command comparison reproduces the paper's Figure 6: the qualitative
// difference between DisC diversity and the MaxSum, MaxMin, k-medoids and
// coverage-only (r-C) models on a clustered dataset. Each model selects
// the same number of objects; the ASCII plots make the paper's claims
// visible — MaxSum crowds the outskirts, k-medoids ignores outliers,
// MaxMin under-represents dense areas, DisC covers everything.
package main

import (
	"fmt"
	"log"
	"os"

	disc "github.com/discdiversity/disc"
	"github.com/discdiversity/disc/internal/stats"
)

func main() {
	ds, err := disc.ClusteredDataset(1000, 2, 5, 42)
	if err != nil {
		log.Fatal(err)
	}
	pts := ds.Points
	m := disc.Euclidean()
	r := 0.12

	d, err := disc.NewFromDataset(ds)
	if err != nil {
		log.Fatal(err)
	}
	discRes, err := d.Select(r)
	if err != nil {
		log.Fatal(err)
	}
	k := discRes.Size()
	rc, err := d.Select(r, disc.WithAlgorithm(disc.AlgorithmCoverage))
	if err != nil {
		log.Fatal(err)
	}

	models := []struct {
		name string
		ids  []int
	}{
		{"r-DisC", discRes.SortedIDs()},
		{"MaxSum", disc.MaxSum(pts, m, k)},
		{"MaxMin", disc.MaxMin(pts, m, k)},
		{"k-medoids", disc.KMedoids(pts, m, k, 42)},
		{"r-C (coverage only)", rc.SortedIDs()},
	}

	fmt.Printf("Figure 6 — %d objects, r=%.2f, k=%d\n\n", len(pts), r, k)
	plot := stats.ScatterPlot{Width: 68, Height: 22}
	for _, mod := range models {
		title := fmt.Sprintf("%s  (size=%d, coverage@r=%.0f%%, fmin=%.3f, medoid-cost=%.3f)",
			mod.name, len(mod.ids),
			100*coverage(pts, m, mod.ids, r),
			disc.FMin(pts, m, mod.ids),
			disc.MedoidCost(pts, m, mod.ids))
		plot.Render(os.Stdout, title, pts, mod.ids)
		fmt.Println()
	}
}

func coverage(pts []disc.Point, m disc.Metric, ids []int, r float64) float64 {
	covered := 0
	for _, p := range pts {
		for _, id := range ids {
			if m.Dist(p, pts[id]) <= r {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(pts))
}
