// Command quickstart is the smallest end-to-end tour of the disc library:
// build a diversifier over a 2-d point set, select an r-DisC diverse
// subset, inspect it, and adapt it by zooming in and out.
package main

import (
	"fmt"
	"log"

	disc "github.com/discdiversity/disc"
)

func main() {
	// A toy query result: clustered 2-d points in [0,1]^2.
	ds, err := disc.ClusteredDataset(2000, 2, 6, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Index the result. The default engine is an M-tree with Euclidean
	// distance; small inputs could use disc.WithLinearScan() instead.
	d, err := disc.NewFromDataset(ds)
	if err != nil {
		log.Fatal(err)
	}

	// Select a diverse subset: every object has a representative within
	// r = 0.1, and representatives are pairwise more than 0.1 apart.
	res, err := d.Select(0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("r=%.2f: %d representatives for %d objects (%s, %d node accesses)\n",
		res.Radius(), res.Size(), d.Len(), res.Algorithm(), res.Accesses())
	if err := d.Verify(res); err != nil {
		log.Fatalf("invariant violated: %v", err)
	}

	// The user wants more detail: zoom in. All current representatives
	// are kept; new ones fill the gaps at the finer radius.
	finer, err := d.ZoomIn(res, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("zoom-in to r=%.2f: %d representatives (%d kept, %d added)\n",
		finer.Radius(), finer.Size(), res.Size(), finer.Size()-res.Size())

	// Or less detail: zoom out, preferring already-seen representatives.
	coarser, err := d.ZoomOut(res, 0.2, disc.ZoomOutGreedyLargest)
	if err != nil {
		log.Fatal(err)
	}
	kept := 0
	for _, id := range coarser.IDs() {
		if res.Contains(id) {
			kept++
		}
	}
	fmt.Printf("zoom-out to r=%.2f: %d representatives (%d of them already shown)\n",
		coarser.Radius(), coarser.Size(), kept)

	// Compare with fixed-k baselines on the DisC result's size.
	k := res.Size()
	pts := ds.Points
	m := d.Metric()
	fmt.Printf("\nmodel comparison at k=%d:\n", k)
	fmt.Printf("  %-10s fmin=%.4f\n", "DisC", disc.FMin(pts, m, res.IDs()))
	fmt.Printf("  %-10s fmin=%.4f\n", "MaxMin", disc.FMin(pts, m, disc.MaxMin(pts, m, k)))
	fmt.Printf("  %-10s fmin=%.4f\n", "k-medoids", disc.FMin(pts, m, disc.KMedoids(pts, m, k, 7)))
}
