// Command cities reproduces the paper's motivating geographic scenario
// (Figure 1): diversify a map of Greek cities by location, then zoom in
// globally, zoom out globally, and zoom in locally around one selected
// city. Each step renders an ASCII map of the populated region with the
// selected representatives.
package main

import (
	"fmt"
	"log"
	"os"

	disc "github.com/discdiversity/disc"
	"github.com/discdiversity/disc/internal/stats"
)

func main() {
	ds := disc.CitiesDataset(42)
	d, err := disc.NewFromDataset(ds)
	if err != nil {
		log.Fatal(err)
	}

	// The populated region occupies a small window of the normalized
	// domain (the raw collection's extent is stretched by remote
	// records); crop the plot to it.
	lo, hi := cropWindow(ds.Points)
	plot := func(title string, ids []int) {
		cropped := make([]disc.Point, len(ds.Points))
		for i, p := range ds.Points {
			cropped[i] = disc.Point{
				(p[0] - lo) / (hi - lo),
				(p[1] - lo) / (hi - lo),
			}
		}
		stats.ScatterPlot{Width: 70, Height: 24}.Render(os.Stdout, title, cropped, ids)
		fmt.Println()
	}

	// Initial view (paper Figure 1(a)).
	initial, err := d.Select(0.01)
	if err != nil {
		log.Fatal(err)
	}
	plot(fmt.Sprintf("Initial view: r=%.3f, %d cities shown", initial.Radius(), initial.Size()), initial.IDs())

	// Zoom in for more detail (Figure 1(b)).
	finer, err := d.ZoomIn(initial, 0.005)
	if err != nil {
		log.Fatal(err)
	}
	plot(fmt.Sprintf("Zoom-in: r=%.3f, %d cities (%d kept)", finer.Radius(), finer.Size(), initial.Size()), finer.IDs())

	// Zoom out for a coarser overview (Figure 1(c)).
	coarser, err := d.ZoomOut(initial, 0.02, disc.ZoomOutGreedyLargest)
	if err != nil {
		log.Fatal(err)
	}
	plot(fmt.Sprintf("Zoom-out: r=%.3f, %d cities", coarser.Radius(), coarser.Size()), coarser.IDs())

	// Local zoom-in around the densest representative (Figure 1(d)):
	// refine the metropolitan area only.
	center := densestRepresentative(d, initial)
	local, err := d.LocalZoomIn(initial, center, 0.003)
	if err != nil {
		log.Fatal(err)
	}
	plot(fmt.Sprintf("Local zoom-in around %s: +%d local representatives",
		ds.Label(center), len(local.Added)), local.Representatives)

	fmt.Printf("summary: initial=%d zoom-in=%d zoom-out=%d local-add=%d\n",
		initial.Size(), finer.Size(), coarser.Size(), len(local.Added))
}

// densestRepresentative returns the selected city with the most objects
// in its neighbourhood — the natural place to zoom into.
func densestRepresentative(d *disc.Diversifier, res *disc.Result) int {
	best, bestCount := res.IDs()[0], -1
	m := d.Metric()
	for _, id := range res.IDs() {
		count := 0
		for other := 0; other < d.Len(); other++ {
			if m.Dist(d.Point(id), d.Point(other)) <= res.Radius() {
				count++
			}
		}
		if count > bestCount {
			best, bestCount = id, count
		}
	}
	return best
}

// cropWindow finds the square window containing the bulk of the points
// (ignoring the remote outliers that stretch the extent).
func cropWindow(pts []disc.Point) (lo, hi float64) {
	// The populated region is around the centre; use fixed quantile-ish
	// bounds by scanning.
	lo, hi = 1, 0
	for _, p := range pts {
		if p[0] > 0.3 && p[0] < 0.7 && p[1] > 0.3 && p[1] < 0.7 {
			for _, v := range p[:2] {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
	}
	if hi <= lo {
		return 0, 1
	}
	return lo - 0.005, hi + 0.005
}
