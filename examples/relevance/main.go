// Command relevance demonstrates the paper's future-work extensions for
// integrating relevance with DisC diversity (Section 8): weighted DisC
// subsets, where each object carries a relevance weight and
// representatives are chosen heavy-first, and multi-radius DisC, where
// more relevant regions get smaller radii and therefore finer
// representation.
package main

import (
	"fmt"
	"log"
	"os"

	disc "github.com/discdiversity/disc"
	"github.com/discdiversity/disc/internal/stats"
)

func main() {
	ds, err := disc.ClusteredDataset(1500, 2, 6, 11)
	if err != nil {
		log.Fatal(err)
	}
	d, err := disc.NewFromDataset(ds)
	if err != nil {
		log.Fatal(err)
	}
	pts := ds.Points
	r := 0.1

	// Baseline: plain DisC ignores relevance.
	plain, err := d.Select(r)
	if err != nil {
		log.Fatal(err)
	}

	// Weighted DisC: objects near the "query hotspot" (0.3, 0.3) are
	// more relevant; representatives are chosen heavy-first, so each
	// region is represented by its most relevant member.
	weights := make([]float64, len(pts))
	for i, p := range pts {
		dx, dy := p[0]-0.3, p[1]-0.3
		weights[i] = 1 / (0.05 + dx*dx + dy*dy)
	}
	weighted, err := d.SelectWeighted(r, weights)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain DisC:    %d representatives, total weight %.1f\n",
		plain.Size(), plain.TotalWeight(weights))
	fmt.Printf("weighted DisC: %d representatives, total weight %.1f\n\n",
		weighted.Size(), weighted.TotalWeight(weights))

	// Multi-radius DisC: the hotspot region gets a radius four times
	// smaller, so it is represented four times more finely, while the
	// rest of the space keeps the coarse radius.
	radii := make([]float64, len(pts))
	for i, p := range pts {
		dx, dy := p[0]-0.3, p[1]-0.3
		if dx*dx+dy*dy < 0.09 { // within 0.3 of the hotspot
			radii[i] = r / 4
		} else {
			radii[i] = r
		}
	}
	focused, err := d.SelectMultiRadius(radii)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.VerifyMultiRadius(focused); err != nil {
		log.Fatal(err)
	}

	plot := stats.ScatterPlot{Width: 64, Height: 20}
	plot.Render(os.Stdout, fmt.Sprintf("uniform radius r=%.2f (%d representatives)", r, plain.Size()),
		pts, plain.SortedIDs())
	fmt.Println()
	plot.Render(os.Stdout, fmt.Sprintf("hotspot radius r/4 near (0.3,0.3) (%d representatives)", focused.Size()),
		pts, focused.SortedIDs())

	// Count representatives inside the hotspot under both schemes.
	inHot := func(ids []int) int {
		c := 0
		for _, id := range ids {
			dx, dy := pts[id][0]-0.3, pts[id][1]-0.3
			if dx*dx+dy*dy < 0.09 {
				c++
			}
		}
		return c
	}
	fmt.Printf("\nhotspot representatives: plain=%d multi-radius=%d\n",
		inHot(plain.SortedIDs()), inHot(focused.SortedIDs()))
}
