// Command cameras reproduces the paper's categorical scenario (Figure 2):
// diversify a catalogue of digital cameras under the Hamming distance
// over seven characteristics, then zoom in locally on one camera to see
// the models most similar to it, diversified at a finer radius.
package main

import (
	"fmt"
	"log"

	disc "github.com/discdiversity/disc"
	"github.com/discdiversity/disc/internal/dataset"
)

func main() {
	ds := disc.CamerasDataset(42)
	d, err := disc.NewFromDataset(ds, disc.WithMetric(disc.Hamming()))
	if err != nil {
		log.Fatal(err)
	}

	// A diverse overview: cameras differing in more than 5 of their 7
	// characteristics. This yields a handful of very different models,
	// like the paper's first table in Figure 2.
	overview, err := d.Select(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Diverse overview (r=5): %d representative cameras out of %d\n\n",
		overview.Size(), d.Len())
	for _, id := range overview.IDs() {
		fmt.Println("  " + dataset.CameraString(ds, id))
	}

	// The user is interested in the first camera: local zoom-in shows
	// its neighbourhood diversified at radius 2 — same-family models
	// differing in a couple of characteristics (Figure 2, second table).
	center := overview.IDs()[0]
	local, err := d.LocalZoomIn(overview, center, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLocal zoom-in around %q (r=2): %d similar-but-distinct models\n\n",
		ds.Label(center), len(local.Added)+1)
	fmt.Println("  " + dataset.CameraString(ds, center))
	for _, id := range local.Added {
		fmt.Println("  " + dataset.CameraString(ds, id))
	}

	// Global zooming also works on categorical data: radius 3 gives a
	// middle-ground catalogue view.
	mid, err := d.ZoomIn(overview, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nZoom-in to r=3: %d representatives (all %d overview cameras kept)\n",
		mid.Size(), overview.Size())
}
