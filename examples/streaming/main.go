// Command streaming demonstrates the online version of DisC diversity
// (the paper's future-work item implemented by disc.Stream): a continuous
// feed of query results — here, sensor readings drifting across the
// plane — is diversified on the fly, with representatives promoted and
// retired as objects arrive and expire.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	disc "github.com/discdiversity/disc"
)

func main() {
	const (
		radius = 0.08
		window = 400 // sliding window size
		steps  = 2000
	)
	s, err := disc.NewStream(radius)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 7))

	// A drifting hotspot produces readings; old readings expire FIFO.
	var windowIDs []int
	promotions, retirements := 0, 0
	for step := 0; step < steps; step++ {
		t := float64(step) / steps
		cx := 0.2 + 0.6*t // hotspot drifts left to right
		p := disc.Point{
			clamp(cx + rng.NormFloat64()*0.1),
			clamp(0.5 + rng.NormFloat64()*0.15),
		}
		id, selected, err := s.Add(p)
		if err != nil {
			log.Fatal(err)
		}
		if selected {
			promotions++
		}
		windowIDs = append(windowIDs, id)
		if len(windowIDs) > window {
			old := windowIDs[0]
			windowIDs = windowIDs[1:]
			wasRep := s.IsRepresentative(old)
			if err := s.Remove(old); err != nil {
				log.Fatal(err)
			}
			if wasRep {
				retirements++
			}
		}
		if step%250 == 249 {
			fmt.Printf("step %4d: %3d live objects, %2d representatives (hotspot at x=%.2f)\n",
				step+1, s.Len(), s.Size(), cx)
		}
	}

	if err := s.Verify(); err != nil {
		log.Fatalf("invariant violated: %v", err)
	}
	fmt.Printf("\nprocessed %d arrivals, %d promotions, %d representative retirements\n",
		steps, promotions, retirements)
	fmt.Printf("final: %d representatives cover %d live objects at r=%.2f (verified)\n",
		s.Size(), s.Len(), s.Radius())
	fmt.Printf("index cost: %d node accesses (%.1f per operation)\n",
		s.Accesses(), float64(s.Accesses())/float64(steps+steps-window))
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
