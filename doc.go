// Package disc implements DisC diversity: result diversification based on
// dissimilarity and coverage, as introduced by Drosou and Pitoura (PVLDB
// 2013, "DisC Diversity: Result Diversification based on Dissimilarity and
// Coverage").
//
// Given a query result P and a radius r, an r-DisC diverse subset S ⊆ P
// satisfies two conditions: every object of P has a representative in S at
// distance at most r (coverage), and no two representatives lie within r
// of each other (dissimilarity). Unlike top-k diversification models, the
// size of S is not an input: the radius alone expresses the desired degree
// of diversification, and the whole result set is always represented —
// including its outliers.
//
// # Quick start
//
//	points := []disc.Point{{0.1, 0.2}, {0.15, 0.22}, {0.8, 0.9}}
//	d, err := disc.New(points)                  // Euclidean, M-tree indexed
//	if err != nil { ... }
//	res, err := d.Select(0.1)                   // r-DisC diverse subset
//	if err != nil { ... }
//	for _, id := range res.IDs() { ... }        // representative objects
//
// # Adaptive diversification (zooming)
//
// Because r controls the degree of diversification, a result can be
// adapted incrementally instead of recomputed: ZoomIn (smaller r, more and
// closer representatives, keeping all current ones) and ZoomOut (larger r,
// fewer representatives, preferring current ones). Both mirror the paper's
// incremental algorithms and stay intentionally close to the previously
// seen result. Local variants re-diversify only the neighbourhood of one
// representative.
//
//	finer, err := d.ZoomIn(res, 0.05)           // res.IDs() ⊆ finer.IDs()
//	coarser, err := d.ZoomOut(res, 0.2, disc.ZoomOutGreedyLargest)
//	local, err := d.LocalZoomIn(res, res.IDs()[0], 0.02)
//
// # Selection heuristics
//
// Finding a minimum r-DisC diverse subset is NP-hard (it is the minimum
// independent dominating set problem on the r-neighbourhood graph), so
// Select offers the paper's heuristics via WithAlgorithm: AlgorithmBasic
// (fast single pass), AlgorithmGreedy and its variants (smaller subsets),
// and AlgorithmCoverage / AlgorithmFastCoverage for coverage-only (r-C)
// subsets that drop the dissimilarity requirement.
//
// # Parallel (component-decomposed) selection
//
// A dominating set of a disconnected graph is the union of dominating
// sets of its connected components, and at DisC-typical radii the
// r-coverage graph shatters into thousands of components. Select with
// WithSelectMode(SelectComponents) exploits that: components are
// labeled in O(n + edges) (cached per radius on the coverage-graph
// engine and persisted in snapshots, so warm starts skip the pass) and
// the Greedy-DisC family then runs per component — singletons
// short-circuit, two-member components resolve in O(1), larger ones run
// the pruned greedy against component-sized heaps and white sets — on a
// worker pool sized by WithSelectParallelism. The selected subset is
// identical to SelectGlobal's, and the full output (selection order
// included) is bit-identical for every worker count; components are
// processed and emitted in ascending minimum-member-id order. On the
// canonical 50k clustered workload the coverage-graph select drops
// about 4x on a single core — the fast paths and cache-local heaps pay
// even before the worker pool can scale with cores — while a graph
// that is one giant component degrades gracefully to the global
// algorithm plus the labeling pass. AlgorithmLazyWhite falls back to
// the global path (its 1.5r refresh queries cannot be served from the
// materialised r-adjacency); Basic-DisC and the coverage-only
// algorithms do not support component mode.
//
// # Index backends
//
// Every selection heuristic spends its time asking an index "who is
// within r?", so the choice of backend (WithIndex) is the main
// performance lever. All backends produce identical greedy selections;
// they differ only in build cost, query cost and metric support:
//
//   - IndexMTree (default): the paper's M-tree. Works with any metric,
//     reports node accesses (the paper's cost measure), supports
//     bottom-up queries and build-time neighbourhood counting.
//   - IndexLinearScan: exact scan with zero build cost. Best for small
//     inputs and the correctness reference everything is validated
//     against.
//   - IndexVPTree: a static vantage-point tree; cheaper to build than
//     the M-tree, any metric.
//   - IndexRTree: a bulk-loaded (STR-packed) R-tree with near-100% node
//     utilisation and a fast deterministic build. Prunes on bounding
//     boxes, so it requires a coordinate-wise monotone metric — all
//     built-in metrics (Euclidean, Manhattan, Chebyshev, Hamming)
//     qualify.
//   - IndexGrid: a uniform-grid spatial hash bucketed at the selection
//     radius (cell side = r), answering a query by scanning only the ±1
//     ring of cells. Bucketing is one O(n) counting sort — the cheapest
//     build of any backend — so it shines when the radius changes often
//     or datasets are short-lived; larger radii stay exact by scanning
//     more rings until a coarser re-bucket. Restricted to metrics whose
//     distance dominates every per-coordinate difference (Euclidean,
//     Manhattan, Chebyshev — not Hamming), and degrades on sparse data
//     at large radii, where cells hold many non-neighbours the R-tree's
//     tighter boxes would prune.
//   - IndexCoverageGraph: materialises the entire r-coverage graph once
//     per selection radius, then answers every neighbourhood query in
//     O(degree) and hands Greedy-DisC its initial counts for free. The
//     fastest choice when one radius is queried repeatedly — exactly
//     the access pattern of the DisC heuristics. For grid-supported
//     metrics the graph is built by a cell-pair ε-join over the grid
//     (each candidate pair evaluated once, both edge directions
//     emitted, no tree traversal — O(n + candidate pairs)), sharded
//     over a worker pool (WithParallelism, default all cores); other
//     metrics fall back to parallel R-tree range queries. The adjacency
//     is stored as CSR (one offsets array plus one packed, exactly
//     sized neighbour array), so steady-state memory equals the edge
//     count. Radii other than the build radius remain correct: smaller
//     ones filter the adjacency lists (reusing the grid occupancy on
//     Rebuild), larger ones fall back to the R-tree underneath.
//
// Rule of thumb: pick the coverage graph when you will run whole
// selections (thousands of queries) at each radius and can afford the
// one-off join; pick the grid when builds must be instant — frequent
// re-radiusing, streaming refreshes, zooming exploration — or memory
// for a materialised graph is tight; pick the R-tree when the metric
// qualifies but the workload mixes radii and arbitrary-point queries;
// dense data (radius well above the point spacing) favours the graph,
// sparse data and tiny radii favour grid or R-tree queries on demand.
//
// # The zero-allocation query path
//
// Internally, every distance in the query path goes through a kernel
// compiled once per (metric, dimensionality) pair — dimension-
// specialised, and for Euclidean comparing squared distances against r²
// so that misses never pay a square root. The static backends (linear
// scan, R-tree, VP-tree, coverage graph) additionally store coordinates
// in one contiguous row-major array; the M-tree keeps its dynamic
// per-node layout and gains the kernels only. Every neighbourhood query
// also has a buffer-reusing form (NeighborsAppend-style) that extends a
// caller-owned slice, and the selection/zoom algorithms thread one
// scratch buffer per query role through their loops: in steady state a
// selection performs zero allocations per query.
//
// Buffer-reuse contract: a slice returned by an appending query aliases
// the destination buffer, so its contents are invalidated by the next
// appending call that reuses the same buffer (the algorithms' internal
// scratch is reused on every iteration). Callers that retain a
// neighbourhood across queries must copy it out. The allocating forms
// (Neighbors, NeighborsWhite) return fresh slices and are unaffected.
//
// # High-dimensional embeddings
//
// At embedding widths (d = 64…768) the kernels dominate everything
// else, and the package grows a fast path for them. WithPrecision
// (PrecisionFloat32) stores coordinates as float32 in cache-aligned
// rows, halving memory traffic; arithmetic stays float64 throughout,
// so selections equal the float64 ones over the rounded coordinates,
// bitwise. Cosine and InnerProduct serve learned-embedding
// dissimilarity with per-row norms folded once at ingest (both
// violate the triangle inequality, so they are served by linear scan
// and the flat all-pairs join, not the metric trees). Range scans run
// batched: multi-accumulator loops pre-filter candidate rows against
// a threshold widened by a proven rounding-error bound, and every
// survivor is re-checked with the unchanged reference kernel — the
// fast path can never change a selection, only the time it takes.
// The coverage-graph engine picks the cache-blocked flat all-pairs
// join over the grid ε-join from d = 8 up (the measured crossover),
// and BENCH_PR7.json records the gated speedups on the 50k
// 128-dimensional workload. Generate matching synthetic data with
// discgen -dist sphere -dim 128 (clustered Gaussian caps on the unit
// sphere, the stand-in for L2-normalised model embeddings).
//
// # Snapshots and warm starts
//
// A Diversifier can be persisted to the .discsnap binary format and
// restored without rebuilding its indexes: WriteSnapshot serialises the
// dataset (metric plus row-major coordinates) together with whatever
// per-radius artifacts the current backend holds — the grid occupancy
// for IndexGrid; the occupancy, the coverage-graph CSR and (when
// derived) its connected-component decomposition for IndexCoverageGraph
// — and LoadDiversifier rehydrates them straight into the lazy-engine
// machinery, so the first Select at the persisted radius starts from
// the loaded graph instead of re-running the ε-join, and component-mode
// selections skip the labeling pass too (the loaded labels are
// revalidated against the adjacency before they are trusted).
// Prepare builds those artifacts eagerly when no selection has run yet.
// The format is sectioned, versioned and CRC-32C-checksummed: readers
// reject other format versions but skip unknown section kinds, so new
// sections can be added compatibly; corrupt files (truncation, bit
// flips, inconsistent layouts) fail at load rather than answering
// queries wrongly. Decoding aliases the large arrays out of the file
// buffer where alignment permits, which is what makes a warm load of
// the 50k-point reference workload ~5× faster than the cold grid
// ε-join on a single core (see BENCH_PR4.json; parallel cold builds
// narrow the gap on multi-core machines). Backends without
// radius-dependent artifacts snapshot the dataset alone and rebuild
// deterministically on load. The discserve command exposes the same
// round trip over HTTP (-snapshot warm start, POST
// /v1/datasets/{name}/snapshot to save), and discgen emits .discsnap
// files directly.
//
// # Live updates
//
// Updater maintains an r-DisC diverse selection under live inserts and
// deletes on the same grid/CSR substrate, with the connected component
// as the unit of invalidation: Insert splices the new point into the
// grid occupancy and CSR adjacency and dirties the component it
// touches (or the few it merges); Delete re-partitions its component
// (a removal can split it) and dirties each part; Flush repairs
// exactly the dirty components and atomically publishes the converged
// selection. Reads (Selection, Size, IsRepresentative) are lock-free
// and bounded-stale: they answer from the last published selection —
// always a consistent DisC-diverse subset of some recent state, never
// a half-repaired one — while mutations and Flush serialise on an
// internal lock, so any number of readers can run beside the writers.
// After Flush the selection is property-tested to be identical to
// Select(r, WithSelectMode(SelectComponents)) run from scratch over
// the live points: incremental maintenance is an optimisation, never a
// different answer. Incremental repair requires a grid-servable metric
// (Euclidean, Manhattan, Chebyshev) and runs on the coverage-graph
// substrate; requesting any other index is an error. On the 50k
// clustered reference workload the Updater sustains ~1,300 updates/sec
// on a single core with per-operation convergence (repair p50 0.0066
// ms, p99 4.2 ms — BENCH_PR6.json, guarded in CI). Stream wraps an
// Updater with per-operation convergence for grid-servable metrics
// and falls back to an arrival-order M-tree maintainer otherwise;
// Updater.WriteSnapshot compacts tombstones into a standard .discsnap
// (refusing while repairs are pending), and discserve exposes the
// whole lifecycle under /v1/live. docs/ARCHITECTURE.md walks the
// update/repair machinery in depth.
//
// # Crash-safe live updates
//
// OpenUpdater pairs the Updater with a snapshot file and an
// append-only write-ahead log: every Insert/Delete is checksummed and
// appended to the log before it is acknowledged (fsync policy via
// WithFsync — FsyncAlways means acknowledged operations survive even
// a power cut; FsyncInterval bounds the loss window; FsyncNone defers
// to the kernel), Checkpoint compacts the live state into a fresh
// crash-atomic snapshot and truncates the log, and reopening with
// OpenUpdater replays snapshot plus log to exactly the acknowledged
// state. Recovery truncates a torn tail (an append interrupted by the
// crash — necessarily unacknowledged under FsyncAlways) but refuses
// interior corruption loudly rather than silently dropping
// acknowledged updates; any append or sync failure poisons the log so
// later mutations fail fast instead of acknowledging into an unknown
// state. The property suite behind the guarantee cuts the log at
// every byte boundary under fault injection and asserts the recovered
// selection is bit-identical to a from-scratch component-mode Select
// over the surviving operation prefix (make crash-props, in CI under
// the race detector). DescribeDurable identifies an existing log
// (epoch, radius, metric) without replaying it, which is how discserve
// -live rediscovers its maintainers at boot. docs/DURABILITY.md is
// the normative wire format and the per-policy guarantee table.
//
// # Observability
//
// The pipeline is instrumented end to end through internal/telemetry,
// a zero-dependency metrics core whose histogram Observe is three
// atomic adds — lock-free and allocation-free, so the standing
// 0 alloc/op invariants on steady-state query and repair paths hold
// with telemetry enabled (AllocsPerRun tests pin both). Stage timers
// cover the grid build, the ε-join, component labeling, global and
// component-mode selection, live insert/delete/repair, WAL
// append/fsync/rotate/replay and snapshot save/load; discserve adds
// per-route request counters, latency histograms and an inflight
// gauge, and serves the whole registry at GET /metrics in the
// Prometheus text exposition format. The server logs through log/slog
// with per-request ids (-log-format, -log-level), distinguishes
// liveness (/healthz) from readiness (/readyz — 503 until boot-time
// WAL replay converges), and can expose net/http/pprof on a private
// listener (-pprof-addr). cmd/discload measures the served SLOs: it
// drives a weighted traffic mix against a spawned discserve and writes
// per-endpoint throughput and p50/p99 plus server-side counter deltas
// into BENCH_SERVE.json, which CI gates via cmd/benchguard (throughput
// as a floor, p99 as a ceiling). docs/OBSERVABILITY.md is the metric
// catalogue and methodology reference.
//
// The subpackages under internal implement the substrates: the M-tree,
// VP-tree and R-tree indexes, the algorithm engine (including the
// parallel coverage-graph engine), dataset generators, baseline
// diversifiers (MaxMin, MaxSum, k-medoids) and the full experiment
// harness that regenerates every table and figure of the paper (see
// DESIGN.md and EXPERIMENTS.md; `discbench -exp engines` compares the
// backends head to head, and `discbench -exp perf -format=json` emits a
// machine-readable performance snapshot).
//
// # Development
//
// The Makefile carries the shared entry points. CI runs `make build`,
// `make test` (race detector on), `make lint` (go vet and the gofmt
// gate), `make kernel-props` (the kernel bit-identity property suites
// under both GOAMD64=v1 and v3), `make crash-props` (the WAL and
// fault-injection durability suites under the race detector), `make
// doclint` (markdown cross-references must resolve) and `make
// bench-guard` (the
// regression gate diffing fresh perf, snapshot, stream, high-dim and
// serve-load measurements against the checked-in BENCH_PR5.json,
// BENCH_PR4.json, BENCH_PR6.json, BENCH_PR7.json and BENCH_SERVE.json
// — stream throughput is gated as a floor, repair p99 as a ceiling,
// batched-join speedup as a 2× floor, and every served endpoint's
// throughput as a floor with its p99 as a ceiling)
// on every push. All checked-in baselines were measured on this
// repo's single-CPU dev container; wall-clock comparisons only hold
// on comparable hardware (the speedup floor, a same-machine ratio,
// transfers), so raise BENCH_TOLERANCE on slower runners. `make
// bench` is the manual counterpart: a one-iteration smoke pass over
// every benchmark, then a refresh of the BENCH_PR5.json,
// BENCH_PR6.json, BENCH_PR7.json and BENCH_SERVE.json baselines (the
// last via `make bench-serve`) — it rewrites those
// checked-in files, so run it (and commit the result) only for
// deliberate perf shifts measured on the baseline hardware, never in
// CI, where it would turn the bench-guard diff into a
// self-comparison.
package disc
