// Package disc implements DisC diversity: result diversification based on
// dissimilarity and coverage, as introduced by Drosou and Pitoura (PVLDB
// 2013, "DisC Diversity: Result Diversification based on Dissimilarity and
// Coverage").
//
// Given a query result P and a radius r, an r-DisC diverse subset S ⊆ P
// satisfies two conditions: every object of P has a representative in S at
// distance at most r (coverage), and no two representatives lie within r
// of each other (dissimilarity). Unlike top-k diversification models, the
// size of S is not an input: the radius alone expresses the desired degree
// of diversification, and the whole result set is always represented —
// including its outliers.
//
// # Quick start
//
//	points := []disc.Point{{0.1, 0.2}, {0.15, 0.22}, {0.8, 0.9}}
//	d, err := disc.New(points)                  // Euclidean, M-tree indexed
//	if err != nil { ... }
//	res, err := d.Select(0.1)                   // r-DisC diverse subset
//	if err != nil { ... }
//	for _, id := range res.IDs() { ... }        // representative objects
//
// # Adaptive diversification (zooming)
//
// Because r controls the degree of diversification, a result can be
// adapted incrementally instead of recomputed: ZoomIn (smaller r, more and
// closer representatives, keeping all current ones) and ZoomOut (larger r,
// fewer representatives, preferring current ones). Both mirror the paper's
// incremental algorithms and stay intentionally close to the previously
// seen result. Local variants re-diversify only the neighbourhood of one
// representative.
//
//	finer, err := d.ZoomIn(res, 0.05)           // res.IDs() ⊆ finer.IDs()
//	coarser, err := d.ZoomOut(res, 0.2, disc.ZoomOutGreedyLargest)
//	local, err := d.LocalZoomIn(res, res.IDs()[0], 0.02)
//
// # Selection heuristics
//
// Finding a minimum r-DisC diverse subset is NP-hard (it is the minimum
// independent dominating set problem on the r-neighbourhood graph), so
// Select offers the paper's heuristics via WithAlgorithm: AlgorithmBasic
// (fast single pass), AlgorithmGreedy and its variants (smaller subsets),
// and AlgorithmCoverage / AlgorithmFastCoverage for coverage-only (r-C)
// subsets that drop the dissimilarity requirement.
//
// # Index engines
//
// Neighbourhood queries run either on an M-tree (default; scales to large
// result sets and reports node accesses, the paper's cost measure) or on a
// linear scan (WithLinearScan; exact reference, best for small inputs).
//
// The subpackages under internal implement the substrates: the M-tree
// index, the algorithm engine, dataset generators, baseline diversifiers
// (MaxMin, MaxSum, k-medoids) and the full experiment harness that
// regenerates every table and figure of the paper (see DESIGN.md and
// EXPERIMENTS.md).
package disc
