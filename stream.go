package disc

import (
	"fmt"

	"github.com/discdiversity/disc/internal/core"
)

// Stream maintains an r-DisC diverse subset of a changing object stream —
// the online version of the problem the paper lists as future work.
// Objects are added one at a time and may later be removed; after every
// operation the representative set is a valid r-DisC diverse subset of
// the live objects.
//
// A Stream is not safe for concurrent use.
type Stream struct {
	online *core.OnlineDisC
}

type streamOptions struct {
	metric   Metric
	capacity int
}

// StreamOption configures NewStream.
type StreamOption func(*streamOptions) error

// StreamMetric sets the distance function (default Euclidean).
func StreamMetric(m Metric) StreamOption {
	return func(o *streamOptions) error {
		if m == nil {
			return fmt.Errorf("disc: nil metric")
		}
		o.metric = m
		return nil
	}
}

// StreamCapacity sets the backing M-tree node capacity (default 50).
func StreamCapacity(capacity int) StreamOption {
	return func(o *streamOptions) error {
		if capacity < 4 {
			return fmt.Errorf("disc: stream capacity %d below minimum 4", capacity)
		}
		o.capacity = capacity
		return nil
	}
}

// NewStream creates an empty online maintainer for radius r.
func NewStream(r float64, opts ...StreamOption) (*Stream, error) {
	o := streamOptions{metric: Euclidean(), capacity: 50}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	online, err := core.NewOnlineDisC(o.metric, r, o.capacity)
	if err != nil {
		return nil, err
	}
	return &Stream{online: online}, nil
}

// Add indexes a new object, returning its assigned id and whether it
// became a representative.
func (s *Stream) Add(p Point) (id int, selected bool, err error) {
	return s.online.Add(p)
}

// Remove retracts a previously added object; retracting a representative
// repairs coverage locally.
func (s *Stream) Remove(id int) error { return s.online.Remove(id) }

// Radius returns the maintained diversification radius.
func (s *Stream) Radius() float64 { return s.online.Radius() }

// Len returns the number of live objects.
func (s *Stream) Len() int { return s.online.Len() }

// Size returns the number of current representatives.
func (s *Stream) Size() int { return s.online.Size() }

// Representatives returns the current representative ids in ascending
// order.
func (s *Stream) Representatives() []int { return s.online.Representatives() }

// IsRepresentative reports whether live object id is currently selected.
func (s *Stream) IsRepresentative(id int) bool { return s.online.IsRepresentative(id) }

// Point returns the coordinates of object id (including retracted ones).
func (s *Stream) Point(id int) Point { return s.online.Point(id) }

// Accesses returns cumulative index node accesses.
func (s *Stream) Accesses() int64 { return s.online.Accesses() }

// Verify checks the DisC invariants over the live objects by direct
// distance computation (O(n·|S|); for tests and debugging).
func (s *Stream) Verify() error { return s.online.Verify() }
