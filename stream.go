package disc

import (
	"fmt"

	"github.com/discdiversity/disc/internal/core"
	"github.com/discdiversity/disc/internal/grid"
)

// Stream maintains an r-DisC diverse subset of a changing object stream —
// the online version of the problem the paper lists as future work.
// Objects are added one at a time and may later be removed; after every
// operation the representative set is a valid r-DisC diverse subset of
// the live objects.
//
// For grid-servable metrics (Euclidean, Manhattan, Chebyshev — the
// default) a Stream rides the incremental Updater: every operation
// patches the grid occupancy and CSR adjacency, repairs only the
// affected components and converges immediately, so the representative
// set after each call is exactly what a from-scratch component-mode
// Select over the live objects would choose. Other metrics fall back to
// the arrival-order online maintainer over an M-tree, which keeps the
// DisC invariants but makes promotion decisions in arrival order rather
// than batch-greedy order. Callers that want to batch mutations and
// control convergence themselves should use Updater directly.
//
// A Stream is not safe for concurrent use.
type Stream struct {
	updater *Updater
	online  *core.OnlineDisC
}

type streamOptions struct {
	metric   Metric
	capacity int
}

// StreamOption configures NewStream.
type StreamOption func(*streamOptions) error

// StreamMetric sets the distance function (default Euclidean).
func StreamMetric(m Metric) StreamOption {
	return func(o *streamOptions) error {
		if m == nil {
			return fmt.Errorf("disc: nil metric")
		}
		o.metric = m
		return nil
	}
}

// StreamCapacity sets the M-tree node capacity of the fallback
// arrival-order maintainer (default 50). The incremental path has no
// tree and ignores it.
func StreamCapacity(capacity int) StreamOption {
	return func(o *streamOptions) error {
		if capacity < 4 {
			return fmt.Errorf("disc: stream capacity %d below minimum 4", capacity)
		}
		o.capacity = capacity
		return nil
	}
}

// NewStream creates an empty online maintainer for radius r.
func NewStream(r float64, opts ...StreamOption) (*Stream, error) {
	o := streamOptions{metric: Euclidean(), capacity: 50}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if grid.Supports(o.metric) {
		u, err := NewUpdater(nil, r, WithMetric(o.metric))
		if err != nil {
			return nil, err
		}
		return &Stream{updater: u}, nil
	}
	online, err := core.NewOnlineDisC(o.metric, r, o.capacity)
	if err != nil {
		return nil, err
	}
	return &Stream{online: online}, nil
}

// Add indexes a new object, returning its assigned id and whether it
// became a representative.
func (s *Stream) Add(p Point) (id int, selected bool, err error) {
	if s.updater != nil {
		id, err = s.updater.Insert(p)
		if err != nil {
			return 0, false, err
		}
		s.updater.Flush()
		return id, s.updater.IsRepresentative(id), nil
	}
	return s.online.Add(p)
}

// Remove retracts a previously added object; retracting a representative
// repairs coverage locally.
func (s *Stream) Remove(id int) error {
	if s.updater != nil {
		if err := s.updater.Delete(id); err != nil {
			return err
		}
		s.updater.Flush()
		return nil
	}
	return s.online.Remove(id)
}

// Radius returns the maintained diversification radius.
func (s *Stream) Radius() float64 {
	if s.updater != nil {
		return s.updater.Radius()
	}
	return s.online.Radius()
}

// Len returns the number of live objects.
func (s *Stream) Len() int {
	if s.updater != nil {
		return s.updater.Len()
	}
	return s.online.Len()
}

// Size returns the number of current representatives.
func (s *Stream) Size() int {
	if s.updater != nil {
		return s.updater.Size()
	}
	return s.online.Size()
}

// Representatives returns the current representative ids in ascending
// order.
func (s *Stream) Representatives() []int {
	if s.updater != nil {
		sel := s.updater.Selection()
		return append([]int(nil), sel...)
	}
	return s.online.Representatives()
}

// IsRepresentative reports whether live object id is currently selected.
func (s *Stream) IsRepresentative(id int) bool {
	if s.updater != nil {
		return s.updater.IsRepresentative(id)
	}
	return s.online.IsRepresentative(id)
}

// Point returns the coordinates of object id (including retracted ones).
func (s *Stream) Point(id int) Point {
	if s.updater != nil {
		return s.updater.Point(id)
	}
	return s.online.Point(id)
}

// Accesses returns cumulative index node accesses (objects examined on
// the incremental path).
func (s *Stream) Accesses() int64 {
	if s.updater != nil {
		return s.updater.Accesses()
	}
	return s.online.Accesses()
}

// Verify checks the DisC invariants over the live objects by direct
// distance computation (O(n·|S|); for tests and debugging).
func (s *Stream) Verify() error {
	if s.updater != nil {
		return s.updater.Verify()
	}
	return s.online.Verify()
}
