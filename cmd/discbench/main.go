// Command discbench regenerates the tables and figures of the paper's
// evaluation (Section 6). Each experiment prints plain-text tables with
// the same rows/series the paper reports; see DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	discbench -exp table3            # one experiment
//	discbench -exp all               # everything (slow; paper-scale)
//	discbench -exp fig7 -quick       # reduced sweep for a fast look
//	discbench -list                  # show available experiments
//
// The "perf" and "snapshot" experiments additionally support
// machine-readable output — the format of the repo's BENCH_*.json
// trajectory snapshots:
//
//	discbench -exp perf -n 50000 -r 0.0025 -format=json > BENCH.json
//	discbench -exp snapshot -n 50000 -r 0.0025 -format=json > BENCH_SNAP.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/discdiversity/disc/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		list     = flag.Bool("list", false, "list available experiments and exit")
		seed     = flag.Uint64("seed", 42, "dataset generation seed")
		n        = flag.Int("n", 10000, "synthetic dataset cardinality")
		dim      = flag.Int("dim", 2, "synthetic dataset dimensionality")
		capacity = flag.Int("capacity", 50, "M-tree node capacity")
		workers  = flag.Int("parallelism", 0, "coverage-graph build workers (0 = all cores)")
		radius   = flag.Float64("r", 0, "query radius for single-radius experiments (0 = dataset default)")
		format   = flag.String("format", "text", "output format: text or json (perf experiment)")
		quick    = flag.Bool("quick", false, "reduced sweeps for a fast run")
	)
	flag.Parse()

	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "discbench: unknown format %q (want text or json)\n", *format)
		os.Exit(2)
	}

	if *list {
		fmt.Println("available experiments:")
		for _, name := range experiments.Names() {
			fmt.Println("  " + name)
		}
		fmt.Println("  all")
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "discbench: -exp required (use -list to see choices)")
		os.Exit(2)
	}

	cfg := experiments.Config{
		Seed:        *seed,
		N:           *n,
		Dim:         *dim,
		Capacity:    *capacity,
		Parallelism: *workers,
		Radius:      *radius,
		Format:      *format,
		Quick:       *quick,
		Out:         os.Stdout,
	}

	start := time.Now()
	var err error
	if strings.EqualFold(*exp, "all") {
		err = experiments.RunAll(cfg)
	} else {
		err = experiments.Run(*exp, cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "discbench: %v\n", err)
		os.Exit(1)
	}
	if *format != "json" {
		fmt.Printf("done in %s\n", time.Since(start).Round(time.Millisecond))
	}
}
