// Command discviz renders a 2-d dataset and its diverse subset as an
// ASCII scatter plot — a terminal rendition of the paper's Figures 1
// and 6.
//
// Usage:
//
//	discviz -dataset clustered -r 0.1
//	discviz -dataset cities -r 0.01 -algorithm basic
//	discviz -csv points.csv -r 0.05
package main

import (
	"flag"
	"fmt"
	"os"

	disc "github.com/discdiversity/disc"
	"github.com/discdiversity/disc/internal/dataset"
	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/stats"
)

func main() {
	var (
		dsName    = flag.String("dataset", "clustered", "dataset: uniform, clustered, cities, cameras")
		csvPath   = flag.String("csv", "", "load points from a CSV file instead (label,x,y header)")
		n         = flag.Int("n", 2000, "synthetic dataset cardinality")
		seed      = flag.Uint64("seed", 42, "dataset seed")
		r         = flag.Float64("r", 0.1, "diversification radius")
		algorithm = flag.String("algorithm", "greedy", "greedy, basic, coverage")
		width     = flag.Int("width", 72, "plot width")
		height    = flag.Int("height", 26, "plot height")
	)
	flag.Parse()

	ds, metric, err := loadData(*csvPath, *dsName, *n, *seed)
	if err != nil {
		fail(err)
	}
	if ds.Dim() != 2 {
		fail(fmt.Errorf("discviz renders 2-d data only; %s has %d dimensions", ds.Name, ds.Dim()))
	}

	d, err := disc.NewFromDataset(ds, disc.WithMetric(metric))
	if err != nil {
		fail(err)
	}
	var alg disc.Algorithm
	switch *algorithm {
	case "greedy":
		alg = disc.AlgorithmGreedy
	case "basic":
		alg = disc.AlgorithmBasic
	case "coverage":
		alg = disc.AlgorithmCoverage
	default:
		fail(fmt.Errorf("unknown algorithm %q", *algorithm))
	}
	res, err := d.Select(*r, disc.WithAlgorithm(alg))
	if err != nil {
		fail(err)
	}

	title := fmt.Sprintf("%s: n=%d r=%g -> %d representatives (%s, %d node accesses)",
		ds.Name, ds.Len(), *r, res.Size(), res.Algorithm(), res.Accesses())
	stats.ScatterPlot{Width: *width, Height: *height}.Render(os.Stdout, title, ds.Points, res.SortedIDs())
}

func loadData(csvPath, dsName string, n int, seed uint64) (*object.Dataset, object.Metric, error) {
	if csvPath != "" {
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		ds, err := object.ReadCSV(f)
		if err != nil {
			return nil, nil, err
		}
		ds.Name = csvPath
		ds.Normalize()
		return ds, object.Euclidean{}, nil
	}
	return dataset.ByName(dsName, n, 2, seed)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "discviz: %v\n", err)
	os.Exit(1)
}
