// Command discserve runs the DisC diversification HTTP service: upload
// datasets, select diverse subsets and zoom them over a JSON API (see
// internal/server for the endpoint reference).
//
// Usage:
//
//	discserve -addr :8080 [-snapshot demo.discsnap] [-live ./livedir]
//
//	curl -X POST localhost:8080/v1/datasets -d '{"name":"demo","points":[[0.1,0.2],[0.8,0.9]]}'
//	curl -X POST localhost:8080/v1/datasets/demo/select -d '{"radius":0.3}'
//	curl -X POST localhost:8080/v1/datasets/demo/snapshot
//	curl -X POST localhost:8080/v1/results/r1/zoom -d '{"radius":0.1}'
//	curl localhost:8080/healthz
//	curl localhost:8080/readyz
//	curl localhost:8080/metrics
//
// Live (incremental) maintainers keep a DisC selection converged under
// a stream of inserts and deletes without rebuilding — reads are
// bounded-stale until a flush barrier, and each mutation may request
// per-op convergence with "flush": true:
//
//	curl -X POST localhost:8080/v1/live -d '{"name":"feed","radius":0.1,"points":[[0.1,0.2]]}'
//	curl -X POST localhost:8080/v1/live/feed/insert -d '{"point":[0.8,0.9],"flush":true}'
//	curl -X POST localhost:8080/v1/live/feed/delete -d '{"id":0}'
//	curl -X POST localhost:8080/v1/live/feed/flush
//	curl -X POST localhost:8080/v1/live/feed/snapshot
//	curl localhost:8080/v1/live/feed/selection
//
// With -snapshot, the file (when present) is loaded at boot — a warm
// start that skips the index build — and the
// POST /v1/datasets/{name}/snapshot endpoint persists datasets into the
// same directory, so a save/restart cycle round-trips the dataset and
// its prepared index artifacts. Labels are not part of the .discsnap
// format and do not survive the restart; re-upload labelled datasets
// over the API when labels matter.
//
// With -live DIR (flat layout) or -data-dir DIR (one home directory
// per dataset), live maintainers become crash-safe: every insert and
// delete is written to a per-maintainer write-ahead log before it is
// acknowledged (fsync policy per -fsync; see docs/DURABILITY.md),
// POST /v1/live/{name}/snapshot checkpoints the log into a .discsnap,
// and a restarted discserve replays snapshot+log so acknowledged
// mutations survive even a SIGKILL. Each dataset recovers under its
// own supervisor (see docs/OPERATIONS.md): boot scrubs every snapshot
// and log segment, transient failures retry with backoff (tune with
// -recovery-backoff, -recovery-backoff-cap, -recovery-max-attempts),
// interior corruption quarantines that dataset alone, and a dataset
// with a good last snapshot keeps serving read-only while its log
// recovery retries. The listener comes up before recovery starts:
// /healthz answers immediately, while /readyz returns 503 (and API
// requests are refused) until the replay converges — a load balancer
// draining on readiness never routes to a half-replayed server. The
// server drains in-flight requests for up to 5 seconds on
// SIGINT/SIGTERM, then syncs and closes the logs.
//
// Observability (see docs/OBSERVABILITY.md): GET /metrics serves the
// process-wide registry in the Prometheus text format; -log-format and
// -log-level configure the structured (log/slog) logs; -pprof-addr
// exposes net/http/pprof on a separate listener (keep it private).
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	disc "github.com/discdiversity/disc"
	"github.com/discdiversity/disc/internal/server"
)

// shutdownTimeout bounds the graceful drain of in-flight requests.
const shutdownTimeout = 5 * time.Second

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	snapshot := flag.String("snapshot", "", "warm-start .discsnap file; its directory becomes the snapshot-save target")
	liveDir := flag.String("live", "", "directory for live-maintainer WAL + checkpoints (flat layout); empty keeps them memory-only")
	dataDir := flag.String("data-dir", "", "directory of per-dataset homes (<dir>/<name>/); takes precedence over -live")
	fsyncMode := flag.String("fsync", "always", "WAL fsync policy for live maintainers: always, interval, or none")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "batching window when -fsync=interval")
	backoffBase := flag.Duration("recovery-backoff", 0, "initial per-dataset recovery retry delay (0 = default 50ms)")
	backoffCap := flag.Duration("recovery-backoff-cap", 0, "maximum per-dataset recovery retry delay (0 = default 5s)")
	maxAttempts := flag.Int("recovery-max-attempts", 0, "consecutive failures before a dataset parks degraded/loading at the cap (0 = default 5)")
	maxInflight := flag.Int("max-inflight", 64, "maximum concurrently-served requests; excess get 503 + Retry-After (0 = unlimited)")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline (0 = none)")
	maxBody := flag.Int64("max-body", 64<<20, "request body cap in bytes on mutating endpoints (0 = unlimited)")
	readTimeout := flag.Duration("read-timeout", 1*time.Minute, "http.Server ReadTimeout: full request including body (0 = none)")
	writeTimeout := flag.Duration("write-timeout", 2*time.Minute, "http.Server WriteTimeout (0 = none)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections (0 = none)")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, or error (debug enables per-request access logs)")
	pprofAddr := flag.String("pprof-addr", "", "listen address for net/http/pprof (empty = disabled; never expose publicly)")
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		slog.Error("discserve: invalid logging flags", "err", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	fsync, err := disc.FsyncPolicyByName(*fsyncMode)
	if err != nil {
		fatal("discserve: bad -fsync", "err", err)
	}

	opts := []server.Option{
		server.WithMaxInflight(*maxInflight),
		server.WithRequestTimeout(*requestTimeout),
		server.WithMaxBodyBytes(*maxBody),
		server.WithLogger(logger),
	}
	if *snapshot != "" {
		opts = append(opts, server.WithSnapshotDir(filepath.Dir(*snapshot)))
	}
	if *liveDir != "" || *dataDir != "" {
		for _, dir := range []string{*liveDir, *dataDir} {
			if dir == "" {
				continue
			}
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal("discserve: storage dir", "dir", dir, "err", err)
			}
		}
		opts = append(opts,
			server.WithLiveDir(*liveDir),
			server.WithDataDir(*dataDir),
			server.WithLiveFsync(fsync),
			server.WithLiveFsyncInterval(*fsyncInterval),
			server.WithRecoveryBackoff(*backoffBase, *backoffCap, *maxAttempts))
	}
	srv := server.New(opts...)
	srv.SetReady(false) // not ready until warm start + recovery converge

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Listener first, recovery second: health probes and metrics scrapes
	// answer during a long WAL replay, and /readyz gates traffic until
	// the replay converges.
	errc := make(chan error, 1)
	go func() {
		logger.Info("discserve listening", "addr", *addr)
		errc <- httpSrv.ListenAndServe()
	}()
	if *pprofAddr != "" {
		go servePprof(logger, *pprofAddr)
	}

	go func() {
		if *snapshot != "" {
			if err := warmStart(logger, srv, *snapshot); err != nil {
				fatal("discserve: warm start failed", "snapshot", *snapshot, "err", err)
			}
		}
		if *liveDir != "" || *dataDir != "" {
			dir := *liveDir
			if *dataDir != "" {
				dir = *dataDir
			}
			start := time.Now()
			n, err := srv.RestoreLive()
			if err != nil {
				fatal("discserve: live recovery failed", "dir", dir, "err", err)
			}
			if n > 0 {
				logger.Info("discserve: recovered live maintainers",
					"count", n, "dir", dir, "elapsed", time.Since(start).Round(time.Millisecond).String())
			}
		}
		srv.SetReady(true)
		logger.Info("discserve ready")
	}()

	select {
	case err := <-errc:
		fatal("discserve: listener failed", "err", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills
		srv.SetReady(false)
		logger.Info("discserve: shutting down", "drain_timeout", shutdownTimeout.String())
		shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("discserve: shutdown", "err", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Warn("discserve: listener", "err", err)
		}
		// Sync and release the write-ahead logs only after the listener
		// has drained, so no in-flight mutation races the close.
		if err := srv.Close(); err != nil {
			logger.Warn("discserve: close", "err", err)
		}
	}
}

// newLogger builds the process logger from the -log-format/-log-level
// flags.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, errors.New(`-log-format must be "text" or "json"`)
	}
}

// servePprof runs the pprof handlers on their own mux and listener,
// never the API one: profiling endpoints stay off the public address.
func servePprof(logger *slog.Logger, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("discserve: pprof listening", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Warn("discserve: pprof listener", "err", err)
	}
}

// warmStart loads a .discsnap file into the server under the file's
// base name; a missing file is not an error (first boot has nothing to
// load yet).
func warmStart(logger *slog.Logger, srv *server.Server, path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			logger.Info("discserve: snapshot not found; starting cold", "path", path)
			return nil
		}
		return err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), ".discsnap")
	start := time.Now()
	if err := srv.LoadSnapshot(name, f); err != nil {
		return err
	}
	logger.Info("discserve: warm-started dataset",
		"name", name, "path", path, "elapsed", time.Since(start).Round(time.Millisecond).String())
	return nil
}
