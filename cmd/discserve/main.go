// Command discserve runs the DisC diversification HTTP service: upload
// datasets, select diverse subsets and zoom them over a JSON API (see
// internal/server for the endpoint reference).
//
// Usage:
//
//	discserve -addr :8080
//
//	curl -X POST localhost:8080/v1/datasets -d '{"name":"demo","points":[[0.1,0.2],[0.8,0.9]]}'
//	curl -X POST localhost:8080/v1/datasets/demo/select -d '{"radius":0.3}'
//	curl -X POST localhost:8080/v1/results/r1/zoom -d '{"radius":0.1}'
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"github.com/discdiversity/disc/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New().Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("discserve listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
