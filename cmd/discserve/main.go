// Command discserve runs the DisC diversification HTTP service: upload
// datasets, select diverse subsets and zoom them over a JSON API (see
// internal/server for the endpoint reference).
//
// Usage:
//
//	discserve -addr :8080 [-snapshot demo.discsnap] [-live ./livedir]
//
//	curl -X POST localhost:8080/v1/datasets -d '{"name":"demo","points":[[0.1,0.2],[0.8,0.9]]}'
//	curl -X POST localhost:8080/v1/datasets/demo/select -d '{"radius":0.3}'
//	curl -X POST localhost:8080/v1/datasets/demo/snapshot
//	curl -X POST localhost:8080/v1/results/r1/zoom -d '{"radius":0.1}'
//	curl localhost:8080/healthz
//
// Live (incremental) maintainers keep a DisC selection converged under
// a stream of inserts and deletes without rebuilding — reads are
// bounded-stale until a flush barrier, and each mutation may request
// per-op convergence with "flush": true:
//
//	curl -X POST localhost:8080/v1/live -d '{"name":"feed","radius":0.1,"points":[[0.1,0.2]]}'
//	curl -X POST localhost:8080/v1/live/feed/insert -d '{"point":[0.8,0.9],"flush":true}'
//	curl -X POST localhost:8080/v1/live/feed/delete -d '{"id":0}'
//	curl -X POST localhost:8080/v1/live/feed/flush
//	curl -X POST localhost:8080/v1/live/feed/snapshot
//	curl localhost:8080/v1/live/feed/selection
//
// With -snapshot, the file (when present) is loaded before the listener
// comes up — a warm start that skips the index build — and the
// POST /v1/datasets/{name}/snapshot endpoint persists datasets into the
// same directory, so a save/restart cycle round-trips the dataset and
// its prepared index artifacts. Labels are not part of the .discsnap
// format and do not survive the restart; re-upload labelled datasets
// over the API when labels matter.
//
// With -live DIR, live maintainers become crash-safe: every insert and
// delete is written to a per-maintainer write-ahead log in DIR before
// it is acknowledged (fsync policy per -fsync; see docs/DURABILITY.md),
// POST /v1/live/{name}/snapshot checkpoints the log into a .discsnap,
// and a restarted discserve replays snapshot+log so acknowledged
// mutations survive even a SIGKILL. The server drains in-flight
// requests for up to 5 seconds on SIGINT/SIGTERM, then syncs and
// closes the logs.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	disc "github.com/discdiversity/disc"
	"github.com/discdiversity/disc/internal/server"
)

// shutdownTimeout bounds the graceful drain of in-flight requests.
const shutdownTimeout = 5 * time.Second

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	snapshot := flag.String("snapshot", "", "warm-start .discsnap file; its directory becomes the snapshot-save target")
	liveDir := flag.String("live", "", "directory for live-maintainer WAL + checkpoints; empty keeps them memory-only")
	fsyncMode := flag.String("fsync", "always", "WAL fsync policy for live maintainers: always, interval, or none")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "batching window when -fsync=interval")
	maxInflight := flag.Int("max-inflight", 64, "maximum concurrently-served requests; excess get 503 + Retry-After (0 = unlimited)")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline (0 = none)")
	maxBody := flag.Int64("max-body", 64<<20, "request body cap in bytes on mutating endpoints (0 = unlimited)")
	readTimeout := flag.Duration("read-timeout", 1*time.Minute, "http.Server ReadTimeout: full request including body (0 = none)")
	writeTimeout := flag.Duration("write-timeout", 2*time.Minute, "http.Server WriteTimeout (0 = none)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections (0 = none)")
	flag.Parse()

	fsync, err := disc.FsyncPolicyByName(*fsyncMode)
	if err != nil {
		log.Fatalf("discserve: %v", err)
	}

	opts := []server.Option{
		server.WithMaxInflight(*maxInflight),
		server.WithRequestTimeout(*requestTimeout),
		server.WithMaxBodyBytes(*maxBody),
	}
	if *snapshot != "" {
		opts = append(opts, server.WithSnapshotDir(filepath.Dir(*snapshot)))
	}
	if *liveDir != "" {
		if err := os.MkdirAll(*liveDir, 0o755); err != nil {
			log.Fatalf("discserve: live dir: %v", err)
		}
		opts = append(opts,
			server.WithLiveDir(*liveDir),
			server.WithLiveFsync(fsync),
			server.WithLiveFsyncInterval(*fsyncInterval))
	}
	srv := server.New(opts...)

	if *snapshot != "" {
		if err := warmStart(srv, *snapshot); err != nil {
			log.Fatalf("discserve: snapshot %s: %v", *snapshot, err)
		}
	}
	if *liveDir != "" {
		start := time.Now()
		n, err := srv.RestoreLive()
		if err != nil {
			log.Fatalf("discserve: live recovery: %v", err)
		}
		if n > 0 {
			log.Printf("discserve: recovered %d live maintainer(s) from %s in %s",
				n, *liveDir, time.Since(start).Round(time.Millisecond))
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("discserve listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills
		log.Printf("discserve: shutting down (draining for up to %s)", shutdownTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("discserve: shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("discserve: %v", err)
		}
		// Sync and release the write-ahead logs only after the listener
		// has drained, so no in-flight mutation races the close.
		if err := srv.Close(); err != nil {
			log.Printf("discserve: close: %v", err)
		}
	}
}

// warmStart loads a .discsnap file into the server under the file's
// base name; a missing file is not an error (first boot has nothing to
// load yet).
func warmStart(srv *server.Server, path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			log.Printf("discserve: snapshot %s not found; starting cold", path)
			return nil
		}
		return err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), ".discsnap")
	start := time.Now()
	if err := srv.LoadSnapshot(name, f); err != nil {
		return err
	}
	log.Printf("discserve: warm-started dataset %q from %s in %s", name, path, time.Since(start).Round(time.Millisecond))
	return nil
}
