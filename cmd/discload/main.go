// Command discload turns "the server feels fast" into checked-in
// numbers: it drives a configurable mix of select / zoom / insert /
// delete / selection traffic against a running discserve from
// concurrent workers, measures client-observed p50/p99 latency,
// throughput and availability per endpoint (503s are retried honoring
// the server's Retry-After hint with capped jitter, and every shed
// attempt counts against availability), scrapes GET /metrics before
// and after for the server-side counter deltas (WAL appends, fsyncs,
// shed requests, repaired components), and writes the result as the
// BENCH_SERVE.json format that cmd/benchguard gates (throughput and
// availability as floors, p99 as a ceiling).
//
// Point it at an already-running server:
//
//	discload -addr http://127.0.0.1:8080 -duration 10s -workers 4 -out BENCH_SERVE.json
//
// or let it spawn one for the run (the CI / `make bench-serve` mode —
// picks a free port, waits for /readyz, terminates the server after):
//
//	discload -spawn ./bin/discserve -duration 10s -out BENCH_SERVE.json
//
// The traffic mix is weight-per-op, e.g. the default
// "select=2,zoom=2,insert=3,delete=1,selection=2"; -metrics-out saves
// the post-run /metrics scrape for artifact upload.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"time"

	"github.com/discdiversity/disc/internal/experiments"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running discserve (e.g. http://127.0.0.1:8080); empty requires -spawn")
	spawn := flag.String("spawn", "", "path to a discserve binary to spawn on a free port for the run")
	workers := flag.Int("workers", 4, "concurrent client workers")
	duration := flag.Duration("duration", 5*time.Second, "measured load duration (setup excluded)")
	mix := flag.String("mix", experiments.DefaultServeMix, "op weights: select=W,zoom=W,insert=W,delete=W,selection=W")
	n := flag.Int("n", 2000, "seeded dataset cardinality")
	dim := flag.Int("dim", 2, "seeded dataset dimensionality")
	radius := flag.Float64("radius", 0.05, "select/zoom radius")
	seed := flag.Uint64("seed", 42, "workload seed")
	out := flag.String("out", "", "write BENCH_SERVE.json here (empty = stdout)")
	metricsOut := flag.String("metrics-out", "", "save the post-run /metrics scrape to this file")
	flag.Parse()

	if (*addr == "") == (*spawn == "") {
		fatalf("exactly one of -addr or -spawn is required")
	}

	base := *addr
	if *spawn != "" {
		var stop func()
		var err error
		base, stop, err = spawnServer(*spawn)
		if err != nil {
			fatalf("spawn: %v", err)
		}
		defer stop()
	}

	bench, err := experiments.RunServe(experiments.ServeConfig{
		BaseURL:  base,
		Workers:  *workers,
		Duration: *duration,
		Mix:      *mix,
		N:        *n,
		Dim:      *dim,
		Radius:   *radius,
		Seed:     *seed,
	})
	if err != nil {
		fatalf("%v", err)
	}

	if *metricsOut != "" {
		scrape, err := experiments.ScrapeMetrics(base)
		if err != nil {
			fatalf("metrics scrape: %v", err)
		}
		if err := os.WriteFile(*metricsOut, scrape, 0o644); err != nil {
			fatalf("metrics scrape: %v", err)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := bench.WriteJSON(w); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "discload: "+format+"\n", args...)
	os.Exit(1)
}

// spawnServer starts the given discserve binary on a free loopback
// port, waits until /readyz answers 200, and returns the base URL plus
// a stop function that terminates and reaps the process.
func spawnServer(bin string) (string, func(), error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hostport := l.Addr().String()
	l.Close() // free the port for the child; the race window is ours alone

	// A throwaway live dir makes the maintainer durable, so the run
	// exercises (and the scrape reports) the WAL append/fsync path.
	liveDir, err := os.MkdirTemp("", "discload-live-*")
	if err != nil {
		return "", nil, err
	}

	cmd := exec.Command(bin, "-addr", hostport, "-max-body", "1073741824",
		"-live", liveDir, "-fsync", "interval")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		os.RemoveAll(liveDir)
		return "", nil, err
	}
	stop := func() {
		_ = cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { _ = cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = cmd.Process.Kill()
			<-done
		}
		os.RemoveAll(liveDir)
	}

	base := "http://" + hostport
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return base, stop, nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	stop()
	return "", nil, fmt.Errorf("server at %s never became ready", base)
}
