// Command discgen generates the evaluation datasets — as CSV files that
// can be inspected, plotted externally or fed back through discviz -csv,
// or directly as .discsnap binary snapshots that discserve -snapshot
// warm-starts from (see the package documentation's Snapshots section).
//
// Usage:
//
//	discgen -dataset clustered -n 10000 -o clustered.csv
//	discgen -dataset cameras -o cameras.csv
//	discgen -dataset clustered -n 50000 -format snap -r 0.0025 -o clustered.discsnap
//	discgen -dist sphere -dim 128 -n 50000 -o embeddings.csv
//
// The synthetic generators take -n and -dim; -dist selects their
// geometry: "cube" (the paper's generators in [0,1]^d) or "sphere" —
// clustered Gaussian caps on the unit sphere, the stand-in for
// L2-normalised learned embeddings (d = 64/128/384/768 are the common
// model widths), served under the cosine distance.
//
// With -format snap and -r > 0 the snapshot additionally carries the
// prepared per-radius artifacts (grid occupancy and coverage-graph CSR
// for grid-servable metrics), so loading it skips the index build for
// selections at that radius.
package main

import (
	"flag"
	"fmt"
	"os"

	disc "github.com/discdiversity/disc"
	"github.com/discdiversity/disc/internal/dataset"
	"github.com/discdiversity/disc/internal/grid"
)

func main() {
	var (
		dsName = flag.String("dataset", "clustered", "dataset: uniform, clustered, sphere, cities, cameras")
		dist   = flag.String("dist", "cube", "synthetic point distribution: cube ([0,1]^d) or sphere (clustered unit-norm embeddings, cosine metric)")
		n      = flag.Int("n", 10000, "synthetic dataset cardinality")
		dim    = flag.Int("dim", 2, "synthetic dataset dimensionality (embedding width with -dist sphere)")
		seed   = flag.Uint64("seed", 42, "dataset seed")
		format = flag.String("format", "csv", "output format: csv or snap (.discsnap binary snapshot)")
		radius = flag.Float64("r", 0, "snap only: also prepare index artifacts for this selection radius (0 = dataset only)")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	if *format != "csv" && *format != "snap" {
		fail(fmt.Errorf("unknown format %q (want csv or snap)", *format))
	}
	switch *dist {
	case "cube":
		// The default geometry of every named generator.
	case "sphere":
		switch *dsName {
		case "clustered", "sphere":
			*dsName = "sphere"
		default:
			fail(fmt.Errorf("-dist sphere applies to the synthetic clustered generator, not -dataset %s", *dsName))
		}
	default:
		fail(fmt.Errorf("unknown distribution %q (want cube or sphere)", *dist))
	}

	ds, metric, err := dataset.ByName(*dsName, *n, *dim, *seed)
	if err != nil {
		fail(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
		w = f
	}
	if *format == "csv" {
		if err := ds.WriteCSV(w); err != nil {
			fail(err)
		}
		if *out != "" {
			fmt.Fprintf(os.Stderr, "wrote %d points (%d dims) to %s\n", ds.Len(), ds.Dim(), *out)
		}
		return
	}

	// Snapshot emission: pin the coverage-graph backend for grid-servable
	// metrics so a -r radius persists warm artifacts; everything else
	// relies on New's auto-selection (cosine and high dimensionality land
	// on the coverage graph's flat-join substrate anyway, which also
	// persists its prepared CSR).
	opts := []disc.Option{disc.WithMetric(metric)}
	if grid.Supports(metric) {
		opts = append(opts, disc.WithIndex(disc.IndexCoverageGraph))
	}
	div, err := disc.New(ds.Points, opts...)
	if err != nil {
		fail(err)
	}
	if *radius > 0 {
		if err := div.Prepare(*radius); err != nil {
			fail(err)
		}
	}
	if err := div.WriteSnapshot(w); err != nil {
		fail(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d points (%d dims, metric %s) to %s\n", ds.Len(), ds.Dim(), metric.Name(), *out)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "discgen: %v\n", err)
	os.Exit(1)
}
