// Command discgen generates the evaluation datasets to CSV files so they
// can be inspected, plotted externally or fed back through discviz -csv.
//
// Usage:
//
//	discgen -dataset clustered -n 10000 -o clustered.csv
//	discgen -dataset cameras -o cameras.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/discdiversity/disc/internal/dataset"
)

func main() {
	var (
		dsName = flag.String("dataset", "clustered", "dataset: uniform, clustered, cities, cameras")
		n      = flag.Int("n", 10000, "synthetic dataset cardinality")
		dim    = flag.Int("dim", 2, "synthetic dataset dimensionality")
		seed   = flag.Uint64("seed", 42, "dataset seed")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	ds, _, err := dataset.ByName(*dsName, *n, *dim, *seed)
	if err != nil {
		fail(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		fail(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d points (%d dims) to %s\n", ds.Len(), ds.Dim(), *out)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "discgen: %v\n", err)
	os.Exit(1)
}
