// Command benchguard diffs a freshly measured perf snapshot (the JSON
// emitted by `discbench -exp perf -format=json`) against the repo's
// checked-in baseline (BENCH_PR3.json) and fails when any guarded
// metric regressed beyond the tolerance. CI runs it inside `make
// bench-guard`, so a commit that slows an index build or a selection
// by more than the tolerance fails the pipeline instead of silently
// eroding the repo's perf trajectory.
//
// Guarded metrics, per engine: build_ms and select_ms_op. Improvements
// never fail. An engine present in the baseline but missing from the
// current snapshot does fail, since losing a measurement is how a
// regression hides; an engine present only in the current snapshot — a
// newly added engine that has no baseline row yet — is tolerated with a
// warning, so adding an engine never requires regenerating the baseline
// in the same commit.
//
// Usage:
//
//	benchguard -baseline BENCH_PR3.json -current bench-current.json [-tolerance 0.25]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/discdiversity/disc/internal/experiments"
)

func load(path string) (*experiments.PerfSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap experiments.PerfSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

// metric is one guarded measurement of an engine.
type metric struct {
	name string
	get  func(experiments.PerfEngine) float64
}

var guarded = []metric{
	{"build_ms", func(e experiments.PerfEngine) float64 { return e.BuildMS }},
	{"select_ms_op", func(e experiments.PerfEngine) float64 { return e.SelectMSOp }},
}

// compare diffs cur against base, printing one line per guarded metric
// to w, and returns the number of regressed metrics (including baseline
// engines missing from cur) and the number of warnings (engines present
// in cur but absent from base — new engines with no baseline row yet,
// which are tolerated).
func compare(w io.Writer, base, cur *experiments.PerfSnapshot, tolerance float64) (regressions, warnings int) {
	current := map[string]experiments.PerfEngine{}
	for _, e := range cur.Engines {
		current[e.Engine] = e
	}
	baseline := map[string]bool{}
	for _, b := range base.Engines {
		baseline[b.Engine] = true
		c, ok := current[b.Engine]
		if !ok {
			fmt.Fprintf(w, "FAIL %-8s missing from current snapshot\n", b.Engine)
			regressions++
			continue
		}
		for _, m := range guarded {
			was, now := m.get(b), m.get(c)
			limit := was * (1 + tolerance)
			status := "ok  "
			if now > limit && was > 0 {
				status = "FAIL"
				regressions++
			}
			pct := 0.0
			if was > 0 {
				pct = 100 * (now - was) / was
			}
			fmt.Fprintf(w, "%s %-8s %-12s %10.2f -> %10.2f (limit %.2f, %+.1f%%)\n",
				status, b.Engine, m.name, was, now, limit, pct)
		}
	}
	// Rows only the fresh snapshot has: newly added engines with no
	// baseline yet. Warn so the gap is visible, but never fail — the
	// baseline gains the row when it is next regenerated.
	fresh := make([]string, 0, len(current))
	for name := range current {
		if !baseline[name] {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		fmt.Fprintf(w, "WARN %-8s not in baseline (new engine?); add a row on the next baseline refresh\n", name)
		warnings++
	}
	return regressions, warnings
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_PR3.json", "checked-in baseline snapshot")
		currentPath  = flag.String("current", "", "freshly measured snapshot to check")
		tolerance    = flag.Float64("tolerance", 0.25, "allowed relative regression (0.25 = +25%)")
	)
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -current required")
		os.Exit(2)
	}
	if *tolerance < 0 {
		fmt.Fprintln(os.Stderr, "benchguard: negative tolerance")
		os.Exit(2)
	}

	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	if base.N != cur.N || base.Radius != cur.Radius || base.Dataset != cur.Dataset ||
		base.Dim != cur.Dim || base.Seed != cur.Seed {
		fmt.Fprintf(os.Stderr, "benchguard: workloads differ (baseline %s n=%d dim=%d r=%g seed=%d, current %s n=%d dim=%d r=%g seed=%d); refusing to compare\n",
			base.Dataset, base.N, base.Dim, base.Radius, base.Seed,
			cur.Dataset, cur.N, cur.Dim, cur.Radius, cur.Seed)
		os.Exit(2)
	}
	if base.GoMaxProcs != cur.GoMaxProcs {
		// Parallel builds scale with cores, so wall-clock loses meaning
		// across core counts — a regression could hide behind extra
		// parallelism.
		fmt.Fprintf(os.Stderr, "benchguard: GOMAXPROCS differs (baseline %d, current %d); refusing to compare\n",
			base.GoMaxProcs, cur.GoMaxProcs)
		os.Exit(2)
	}

	regressions, _ := compare(os.Stdout, base, cur, *tolerance)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d metric(s) regressed beyond %.0f%% of %s\n",
			regressions, 100**tolerance, *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("benchguard: all guarded metrics within %.0f%% of %s\n", 100**tolerance, *baselinePath)
}
