// Command benchguard diffs a freshly measured perf snapshot (the JSON
// emitted by `discbench -exp perf -format=json`) against the repo's
// checked-in baseline (BENCH_PR5.json) and fails when any guarded
// metric regressed beyond the tolerance. CI runs it inside `make
// bench-guard`, so a commit that slows an index build or a selection
// by more than the tolerance fails the pipeline instead of silently
// eroding the repo's perf trajectory.
//
// Guarded metrics, per engine: build_ms, select_ms_op and
// select_components_ms_op (metrics absent from an older baseline — zero
// values — are reported but cannot fail). Improvements never fail. An
// engine present in the baseline but missing from the current snapshot
// does fail, since losing a measurement is how a regression hides; an
// engine present only in the current snapshot — a newly added engine
// that has no baseline row yet — is tolerated with a warning, so adding
// an engine never requires regenerating the baseline in the same
// commit.
//
// With -snapshot-baseline and -snapshot-current set, the snapshot
// experiment's save_ms and load_ms (the warm-start trajectory,
// BENCH_PR4.json) are diffed under the same tolerance, so a commit that
// bloats serialisation or the validated warm load fails too.
//
// With -stream-baseline and -stream-current set, the stream
// experiment's updates_per_sec (higher is better: fails when the fresh
// number drops below baseline/(1+tolerance)) and repair_ms_p99 (lower
// is better, guarded like the latency metrics) are diffed — the
// incremental-update trajectory, BENCH_PR6.json.
//
// With -highdim-baseline and -highdim-current set, the highdim
// experiment's join rows (the batched-kernel trajectory,
// BENCH_PR7.json) are gated: every baseline metric row must be present,
// its batched-over-scalar build speedup must clear the absolute 2x
// floor — a same-machine ratio, so the gate transfers across hardware
// where wall-clock tolerances cannot — and must not fall more than the
// tolerance below the baseline's measured speedup.
//
// With -serve-baseline and -serve-current set, the measured-SLO load
// run (cmd/discload, BENCH_SERVE.json) is gated per endpoint:
// throughput_rps is a floor (fails below baseline/(1+tolerance)),
// p99_ms a ceiling (fails above baseline*(1+tolerance)), and
// availability_pct a floor — the tolerance scales the baseline's
// unavailable fraction plus a small absolute slack, so a near-perfect
// baseline cannot demand a literally perfect run while a real
// availability drop (one dataset quietly 503ing) still fails. An
// endpoint present in the baseline but missing from the current run
// fails; a new endpoint with no baseline row warns; a current run with
// endpoint errors always fails — errored requests would otherwise
// flatter the latency numbers. Baselines that predate the availability
// field (value 0) skip that gate.
//
// Usage:
//
//	benchguard -baseline BENCH_PR5.json -current bench-current.json \
//	  [-snapshot-baseline BENCH_PR4.json -snapshot-current snapshot-bench.json] \
//	  [-stream-baseline BENCH_PR6.json -stream-current stream-bench.json] \
//	  [-highdim-baseline BENCH_PR7.json -highdim-current highdim-bench.json] \
//	  [-serve-baseline BENCH_SERVE.json -serve-current serve-current.json] \
//	  [-tolerance 0.25]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/discdiversity/disc/internal/experiments"
)

// loadJSON reads one measurement file of either trajectory format.
func loadJSON[T any](path string) (*T, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	v := new(T)
	if err := json.Unmarshal(data, v); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return v, nil
}

// workload is the measurement-identity tuple both snapshot formats
// share; comparisons across differing workloads (or core counts —
// wall-clock loses meaning when parallelism changes) are refused, and
// keeping the check in one place keeps the two gates equally strict.
type workload struct {
	dataset    string
	n, dim     int
	radius     float64
	seed       uint64
	gomaxprocs int
}

func perfWorkload(s *experiments.PerfSnapshot) workload {
	return workload{s.Dataset, s.N, s.Dim, s.Radius, s.Seed, s.GoMaxProcs}
}

func snapshotWorkload(b *experiments.SnapshotBench) workload {
	return workload{b.Dataset, b.N, b.Dim, b.Radius, b.Seed, b.GoMaxProcs}
}

func streamWorkload(b *experiments.StreamBench) workload {
	return workload{b.Dataset, b.N, b.Dim, b.Radius, b.Seed, b.GoMaxProcs}
}

func highdimWorkload(b *experiments.HighDimBench) workload {
	// Radii are per-join-row in this format; the row keys carry them.
	return workload{b.Dataset, b.N, b.Dim, 0, b.Seed, b.GoMaxProcs}
}

// checkWorkloads exits with status 2 when base and cur do not describe
// the same measurement.
func checkWorkloads(kind string, base, cur workload) {
	if base.dataset != cur.dataset || base.n != cur.n || base.dim != cur.dim ||
		base.radius != cur.radius || base.seed != cur.seed {
		fmt.Fprintf(os.Stderr, "benchguard: %s workloads differ (baseline %s n=%d dim=%d r=%g seed=%d, current %s n=%d dim=%d r=%g seed=%d); refusing to compare\n",
			kind, base.dataset, base.n, base.dim, base.radius, base.seed,
			cur.dataset, cur.n, cur.dim, cur.radius, cur.seed)
		os.Exit(2)
	}
	if base.gomaxprocs != cur.gomaxprocs {
		fmt.Fprintf(os.Stderr, "benchguard: %s GOMAXPROCS differs (baseline %d, current %d); refusing to compare\n",
			kind, base.gomaxprocs, cur.gomaxprocs)
		os.Exit(2)
	}
}

// metric is one guarded measurement of an engine.
type metric struct {
	name string
	get  func(experiments.PerfEngine) float64
}

var guarded = []metric{
	{"build_ms", func(e experiments.PerfEngine) float64 { return e.BuildMS }},
	{"select_ms_op", func(e experiments.PerfEngine) float64 { return e.SelectMSOp }},
	{"select_components_ms_op", func(e experiments.PerfEngine) float64 { return e.SelectComponentsMSOp }},
}

// compare diffs cur against base, printing one line per guarded metric
// to w, and returns the number of regressed metrics (including baseline
// engines missing from cur) and the number of warnings (engines present
// in cur but absent from base — new engines with no baseline row yet,
// which are tolerated).
func compare(w io.Writer, base, cur *experiments.PerfSnapshot, tolerance float64) (regressions, warnings int) {
	current := map[string]experiments.PerfEngine{}
	for _, e := range cur.Engines {
		current[e.Engine] = e
	}
	baseline := map[string]bool{}
	for _, b := range base.Engines {
		baseline[b.Engine] = true
		c, ok := current[b.Engine]
		if !ok {
			fmt.Fprintf(w, "FAIL %-8s missing from current snapshot\n", b.Engine)
			regressions++
			continue
		}
		for _, m := range guarded {
			was, now := m.get(b), m.get(c)
			limit := was * (1 + tolerance)
			status := "ok  "
			if now > limit && was > 0 {
				status = "FAIL"
				regressions++
			}
			pct := 0.0
			if was > 0 {
				pct = 100 * (now - was) / was
			}
			fmt.Fprintf(w, "%s %-8s %-12s %10.2f -> %10.2f (limit %.2f, %+.1f%%)\n",
				status, b.Engine, m.name, was, now, limit, pct)
		}
	}
	// Rows only the fresh snapshot has: newly added engines with no
	// baseline yet. Warn so the gap is visible, but never fail — the
	// baseline gains the row when it is next regenerated.
	fresh := make([]string, 0, len(current))
	for name := range current {
		if !baseline[name] {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		fmt.Fprintf(w, "WARN %-8s not in baseline (new engine?); add a row on the next baseline refresh\n", name)
		warnings++
	}
	return regressions, warnings
}

// snapshotMetric is one guarded measurement of the snapshot experiment.
type snapshotMetric struct {
	name string
	get  func(*experiments.SnapshotBench) float64
}

var snapshotGuarded = []snapshotMetric{
	{"save_ms", func(b *experiments.SnapshotBench) float64 { return b.SaveMS }},
	{"load_ms", func(b *experiments.SnapshotBench) float64 { return b.LoadMS }},
}

// compareSnapshot diffs the snapshot experiment's guarded metrics the
// same way compare treats the perf engines: one line per metric, a
// regression for anything beyond the tolerance, improvements free.
func compareSnapshot(w io.Writer, base, cur *experiments.SnapshotBench, tolerance float64) (regressions int) {
	for _, m := range snapshotGuarded {
		was, now := m.get(base), m.get(cur)
		limit := was * (1 + tolerance)
		status := "ok  "
		if now > limit && was > 0 {
			status = "FAIL"
			regressions++
		}
		pct := 0.0
		if was > 0 {
			pct = 100 * (now - was) / was
		}
		fmt.Fprintf(w, "%s %-8s %-12s %10.2f -> %10.2f (limit %.2f, %+.1f%%)\n",
			status, "snapshot", m.name, was, now, limit, pct)
	}
	return regressions
}

// compareStream diffs the stream experiment's guarded metrics:
// updates_per_sec regresses when throughput falls below
// baseline/(1+tolerance); repair_ms_p99 regresses when the tail latency
// exceeds baseline*(1+tolerance). Improvements never fail; a current
// run whose maintained selection diverged from rebuild always fails —
// that is a correctness break, not a perf regression.
func compareStream(w io.Writer, base, cur *experiments.StreamBench, tolerance float64) (regressions int) {
	was, now := base.UpdatesPerSec, cur.UpdatesPerSec
	limit := was / (1 + tolerance)
	status := "ok  "
	if now < limit && was > 0 {
		status = "FAIL"
		regressions++
	}
	pct := 0.0
	if was > 0 {
		pct = 100 * (now - was) / was
	}
	fmt.Fprintf(w, "%s %-8s %-16s %10.2f -> %10.2f (floor %.2f, %+.1f%%)\n",
		status, "stream", "updates_per_sec", was, now, limit, pct)

	// The WAL throughput floors guard the durable-updater path (log
	// framing + append per op; fsync batched or off). A zero baseline
	// means the reference JSON predates the WAL rows — skip, don't gate
	// against nothing.
	walFloors := []struct {
		name     string
		was, now float64
	}{
		{"wal_none_ups", base.WALNoneUpdatesPerSec, cur.WALNoneUpdatesPerSec},
		{"wal_interval_ups", base.WALIntervalUpdatesPerSec, cur.WALIntervalUpdatesPerSec},
	}
	for _, f := range walFloors {
		if f.was <= 0 {
			continue
		}
		limit := f.was / (1 + tolerance)
		status := "ok  "
		if f.now < limit {
			status = "FAIL"
			regressions++
		}
		fmt.Fprintf(w, "%s %-8s %-16s %10.2f -> %10.2f (floor %.2f, %+.1f%%)\n",
			status, "stream", f.name, f.was, f.now, limit, 100*(f.now-f.was)/f.was)
	}

	was, now = base.RepairMSP99, cur.RepairMSP99
	limit = was * (1 + tolerance)
	status = "ok  "
	if now > limit && was > 0 {
		status = "FAIL"
		regressions++
	}
	pct = 0.0
	if was > 0 {
		pct = 100 * (now - was) / was
	}
	fmt.Fprintf(w, "%s %-8s %-16s %10.2f -> %10.2f (limit %.2f, %+.1f%%)\n",
		status, "stream", "repair_ms_p99", was, now, limit, pct)

	if !cur.EquivalentToRebuild {
		fmt.Fprintf(w, "FAIL %-8s %-16s incremental selection diverged from rebuild\n", "stream", "equivalence")
		regressions++
	}
	return regressions
}

// checkServeWorkloads refuses to diff serve runs with differing
// workload identities; the serve format has its own tuple (no dataset
// name, but workers, duration and mix shape the measured load as much
// as n and radius do).
func checkServeWorkloads(base, cur *experiments.ServeBench) {
	if base.N != cur.N || base.Dim != cur.Dim || base.Radius != cur.Radius ||
		base.Seed != cur.Seed || base.Workers != cur.Workers ||
		base.DurationS != cur.DurationS || base.Mix != cur.Mix {
		fmt.Fprintf(os.Stderr, "benchguard: serve workloads differ (baseline n=%d dim=%d r=%g seed=%d workers=%d dur=%gs mix=%q, current n=%d dim=%d r=%g seed=%d workers=%d dur=%gs mix=%q); refusing to compare\n",
			base.N, base.Dim, base.Radius, base.Seed, base.Workers, base.DurationS, base.Mix,
			cur.N, cur.Dim, cur.Radius, cur.Seed, cur.Workers, cur.DurationS, cur.Mix)
		os.Exit(2)
	}
	if base.GoMaxProcs != cur.GoMaxProcs {
		fmt.Fprintf(os.Stderr, "benchguard: serve GOMAXPROCS differs (baseline %d, current %d); refusing to compare\n",
			base.GoMaxProcs, cur.GoMaxProcs)
		os.Exit(2)
	}
}

// compareServe gates the measured-SLO load run per endpoint: throughput
// is a floor, the p99 tail a ceiling, improvements never fail. A
// baseline endpoint missing from the current run fails (losing a
// measurement is how a regression hides); a current endpoint with no
// baseline row warns; any endpoint errors in the current run fail —
// errored requests return fast and would flatter both gated numbers.
func compareServe(w io.Writer, base, cur *experiments.ServeBench, tolerance float64) (regressions, warnings int) {
	current := map[string]experiments.ServeEndpoint{}
	for _, e := range cur.Endpoints {
		current[e.Endpoint] = e
	}
	baseline := map[string]bool{}
	for _, b := range base.Endpoints {
		baseline[b.Endpoint] = true
		c, ok := current[b.Endpoint]
		if !ok {
			fmt.Fprintf(w, "FAIL %-9s missing from current serve run\n", b.Endpoint)
			regressions++
			continue
		}
		floor := b.Throughput / (1 + tolerance)
		status := "ok  "
		if c.Throughput < floor && b.Throughput > 0 {
			status = "FAIL"
			regressions++
		}
		pct := 0.0
		if b.Throughput > 0 {
			pct = 100 * (c.Throughput - b.Throughput) / b.Throughput
		}
		fmt.Fprintf(w, "%s %-9s %-16s %10.2f -> %10.2f (floor %.2f, %+.1f%%)\n",
			status, b.Endpoint, "throughput_rps", b.Throughput, c.Throughput, floor, pct)

		limit := b.P99Ms * (1 + tolerance)
		status = "ok  "
		if c.P99Ms > limit && b.P99Ms > 0 {
			status = "FAIL"
			regressions++
		}
		pct = 0.0
		if b.P99Ms > 0 {
			pct = 100 * (c.P99Ms - b.P99Ms) / b.P99Ms
		}
		fmt.Fprintf(w, "%s %-9s %-16s %10.2f -> %10.2f (limit %.2f, %+.1f%%)\n",
			status, b.Endpoint, "p99_ms", b.P99Ms, c.P99Ms, limit, pct)

		if c.Errors > 0 {
			fmt.Fprintf(w, "FAIL %-9s %-16s %d errored request(s) in current run\n", b.Endpoint, "errors", c.Errors)
			regressions++
		}

		// Availability floor: the current run may not drop below the
		// baseline's availability by more than the tolerance applied to
		// the unavailable fraction (an absolute-percentage tolerance would
		// let a 99.9% baseline quietly admit 75% runs). A zero baseline
		// availability means the reference JSON predates the field — skip,
		// don't gate against nothing.
		if b.Availability > 0 {
			floor := 100 - (100-b.Availability)*(1+tolerance) - 100*tolerance*0.01
			if floor < 0 {
				floor = 0
			}
			status = "ok  "
			if c.Availability < floor {
				status = "FAIL"
				regressions++
			}
			fmt.Fprintf(w, "%s %-9s %-16s %10.2f -> %10.2f (floor %.2f, %+.2f)\n",
				status, b.Endpoint, "availability_pct", b.Availability, c.Availability, floor, c.Availability-b.Availability)
		}
	}
	fresh := make([]string, 0, len(current))
	for name := range current {
		if !baseline[name] {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		fmt.Fprintf(w, "WARN %-9s not in serve baseline (new endpoint?); add a row on the next baseline refresh\n", name)
		warnings++
	}
	return regressions, warnings
}

// highDimSpeedupFloor is the absolute gate on the highdim join rows:
// the batched coverage-graph build must stay at least this much faster
// than the per-pair scalar build. Being a ratio of two runs on the same
// machine, the floor transfers across hardware, unlike wall-clock.
const highDimSpeedupFloor = 2.0

// compareHighDim gates the highdim join rows: every baseline metric row
// must be present in the current snapshot, clear the absolute speedup
// floor, and not fall more than the tolerance below the baseline's
// measured speedup (higher is better; improvements never fail).
func compareHighDim(w io.Writer, base, cur *experiments.HighDimBench, tolerance float64) (regressions int) {
	current := map[string]experiments.HighDimJoin{}
	for _, j := range cur.Joins {
		current[j.Metric] = j
	}
	for _, bj := range base.Joins {
		cj, ok := current[bj.Metric]
		if !ok {
			fmt.Fprintf(w, "FAIL %-9s missing from current highdim snapshot\n", bj.Metric)
			regressions++
			continue
		}
		floor := highDimSpeedupFloor
		if rel := bj.Speedup / (1 + tolerance); rel > floor && bj.Speedup > 0 {
			floor = rel
		}
		status := "ok  "
		if cj.Speedup < floor {
			status = "FAIL"
			regressions++
		}
		pct := 0.0
		if bj.Speedup > 0 {
			pct = 100 * (cj.Speedup - bj.Speedup) / bj.Speedup
		}
		fmt.Fprintf(w, "%s %-9s %-16s %9.2fx -> %9.2fx (floor %.2fx, %+.1f%%)\n",
			status, bj.Metric, "join_speedup", bj.Speedup, cj.Speedup, floor, pct)
	}
	return regressions
}

func main() {
	var (
		baselinePath    = flag.String("baseline", "BENCH_PR5.json", "checked-in baseline snapshot")
		currentPath     = flag.String("current", "", "freshly measured snapshot to check")
		snapBasePath    = flag.String("snapshot-baseline", "", "checked-in snapshot-experiment baseline (e.g. BENCH_PR4.json)")
		snapCurPath     = flag.String("snapshot-current", "", "freshly measured snapshot-experiment result to check")
		streamBasePath  = flag.String("stream-baseline", "", "checked-in stream-experiment baseline (e.g. BENCH_PR6.json)")
		streamCurPath   = flag.String("stream-current", "", "freshly measured stream-experiment result to check")
		highdimBasePath = flag.String("highdim-baseline", "", "checked-in highdim-experiment baseline (e.g. BENCH_PR7.json)")
		highdimCurPath  = flag.String("highdim-current", "", "freshly measured highdim-experiment result to check")
		serveBasePath   = flag.String("serve-baseline", "", "checked-in serve-load baseline (e.g. BENCH_SERVE.json)")
		serveCurPath    = flag.String("serve-current", "", "freshly measured serve-load result to check (cmd/discload output)")
		tolerance       = flag.Float64("tolerance", 0.25, "allowed relative regression (0.25 = +25%)")
	)
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -current required")
		os.Exit(2)
	}
	if (*snapBasePath == "") != (*snapCurPath == "") {
		fmt.Fprintln(os.Stderr, "benchguard: -snapshot-baseline and -snapshot-current must be given together")
		os.Exit(2)
	}
	if (*streamBasePath == "") != (*streamCurPath == "") {
		fmt.Fprintln(os.Stderr, "benchguard: -stream-baseline and -stream-current must be given together")
		os.Exit(2)
	}
	if (*highdimBasePath == "") != (*highdimCurPath == "") {
		fmt.Fprintln(os.Stderr, "benchguard: -highdim-baseline and -highdim-current must be given together")
		os.Exit(2)
	}
	if (*serveBasePath == "") != (*serveCurPath == "") {
		fmt.Fprintln(os.Stderr, "benchguard: -serve-baseline and -serve-current must be given together")
		os.Exit(2)
	}
	if *tolerance < 0 {
		fmt.Fprintln(os.Stderr, "benchguard: negative tolerance")
		os.Exit(2)
	}

	base, err := loadJSON[experiments.PerfSnapshot](*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	cur, err := loadJSON[experiments.PerfSnapshot](*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	checkWorkloads("perf", perfWorkload(base), perfWorkload(cur))

	regressions, _ := compare(os.Stdout, base, cur, *tolerance)
	baselines := *baselinePath
	if *snapCurPath != "" {
		sb, err := loadJSON[experiments.SnapshotBench](*snapBasePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		sc, err := loadJSON[experiments.SnapshotBench](*snapCurPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		checkWorkloads("snapshot", snapshotWorkload(sb), snapshotWorkload(sc))
		regressions += compareSnapshot(os.Stdout, sb, sc, *tolerance)
		baselines += " and " + *snapBasePath
	}
	if *streamCurPath != "" {
		tb, err := loadJSON[experiments.StreamBench](*streamBasePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		tc, err := loadJSON[experiments.StreamBench](*streamCurPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		checkWorkloads("stream", streamWorkload(tb), streamWorkload(tc))
		regressions += compareStream(os.Stdout, tb, tc, *tolerance)
		baselines += " and " + *streamBasePath
	}
	if *highdimCurPath != "" {
		hb, err := loadJSON[experiments.HighDimBench](*highdimBasePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		hc, err := loadJSON[experiments.HighDimBench](*highdimCurPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		checkWorkloads("highdim", highdimWorkload(hb), highdimWorkload(hc))
		regressions += compareHighDim(os.Stdout, hb, hc, *tolerance)
		baselines += " and " + *highdimBasePath
	}
	if *serveCurPath != "" {
		vb, err := loadJSON[experiments.ServeBench](*serveBasePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		vc, err := loadJSON[experiments.ServeBench](*serveCurPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		checkServeWorkloads(vb, vc)
		r, _ := compareServe(os.Stdout, vb, vc, *tolerance)
		regressions += r
		baselines += " and " + *serveBasePath
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d metric(s) regressed beyond %.0f%% of %s\n",
			regressions, 100**tolerance, baselines)
		os.Exit(1)
	}
	fmt.Printf("benchguard: all guarded metrics within %.0f%% of %s\n", 100**tolerance, baselines)
}
