package main

import (
	"strings"
	"testing"

	"github.com/discdiversity/disc/internal/experiments"
)

func snap(engines ...experiments.PerfEngine) *experiments.PerfSnapshot {
	return &experiments.PerfSnapshot{Dataset: "clustered", N: 100, Dim: 2, Radius: 0.1, Engines: engines}
}

func engine(name string, buildMS, selectMS float64) experiments.PerfEngine {
	return experiments.PerfEngine{Engine: name, BuildMS: buildMS, SelectMSOp: selectMS}
}

// TestCompareNewEngineWarnsOnly: a row present in the current snapshot
// but missing from the baseline — a newly added engine — must produce a
// warning, never a regression.
func TestCompareNewEngineWarnsOnly(t *testing.T) {
	base := snap(engine("grid", 2, 130))
	cur := snap(engine("grid", 2, 130), engine("hyper", 1, 10))
	var out strings.Builder
	regressions, warnings := compare(&out, base, cur, 0.25)
	if regressions != 0 {
		t.Fatalf("regressions = %d, want 0 (new engines must not fail the guard)\n%s", regressions, out.String())
	}
	if warnings != 1 {
		t.Fatalf("warnings = %d, want 1\n%s", warnings, out.String())
	}
	if !strings.Contains(out.String(), "WARN hyper") {
		t.Fatalf("missing WARN line for the new engine:\n%s", out.String())
	}
}

// TestCompareMissingEngineFails: losing a baseline engine's measurement
// is how a regression hides, so it must fail.
func TestCompareMissingEngineFails(t *testing.T) {
	base := snap(engine("grid", 2, 130), engine("graph", 60, 65))
	cur := snap(engine("grid", 2, 130))
	var out strings.Builder
	regressions, warnings := compare(&out, base, cur, 0.25)
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", regressions, out.String())
	}
	if warnings != 0 {
		t.Fatalf("warnings = %d, want 0\n%s", warnings, out.String())
	}
}

// TestCompareRegressionBeyondTolerance: a guarded metric over the limit
// fails; one within it does not.
func TestCompareRegressionBeyondTolerance(t *testing.T) {
	base := snap(engine("grid", 2, 100))
	within := snap(engine("grid", 2, 124))
	var out strings.Builder
	if regressions, _ := compare(&out, base, within, 0.25); regressions != 0 {
		t.Fatalf("within-tolerance run flagged %d regressions\n%s", regressions, out.String())
	}
	beyond := snap(engine("grid", 2, 126))
	out.Reset()
	if regressions, _ := compare(&out, base, beyond, 0.25); regressions != 1 {
		t.Fatalf("beyond-tolerance run flagged %d regressions, want 1\n%s", regressions, out.String())
	}
	if !strings.Contains(out.String(), "FAIL grid") {
		t.Fatalf("missing FAIL line:\n%s", out.String())
	}
}

// TestCompareZeroBaselineMetricCannotFail: a metric the baseline lacks
// (zero value — e.g. select_components_ms_op against a pre-PR5
// baseline) is reported but can never regress.
func TestCompareZeroBaselineMetricCannotFail(t *testing.T) {
	base := snap(engine("grid", 2, 100)) // SelectComponentsMSOp zero
	cur := snap(experiments.PerfEngine{Engine: "grid", BuildMS: 2, SelectMSOp: 100, SelectComponentsMSOp: 55})
	var out strings.Builder
	if regressions, _ := compare(&out, base, cur, 0.25); regressions != 0 {
		t.Fatalf("zero-baseline metric flagged %d regressions\n%s", regressions, out.String())
	}
}

// TestCompareComponentsSelectGuarded: a component-mode selection
// regression beyond tolerance fails like any other guarded metric.
func TestCompareComponentsSelectGuarded(t *testing.T) {
	base := snap(experiments.PerfEngine{Engine: "graph", BuildMS: 60, SelectMSOp: 60, SelectComponentsMSOp: 15})
	cur := snap(experiments.PerfEngine{Engine: "graph", BuildMS: 60, SelectMSOp: 60, SelectComponentsMSOp: 20})
	var out strings.Builder
	if regressions, _ := compare(&out, base, cur, 0.25); regressions != 1 {
		t.Fatalf("component-select regression flagged %d, want 1\n%s", regressions, out.String())
	}
	if !strings.Contains(out.String(), "select_components_ms_op") {
		t.Fatalf("missing metric line:\n%s", out.String())
	}
}

func snapshotBench(saveMS, loadMS float64) *experiments.SnapshotBench {
	return &experiments.SnapshotBench{Dataset: "clustered", N: 100, Dim: 2, Radius: 0.1, SaveMS: saveMS, LoadMS: loadMS}
}

// TestCompareSnapshotBench: the warm-start metrics obey the same
// tolerance discipline — load regressions fail, improvements and
// within-tolerance drift pass.
func TestCompareSnapshotBench(t *testing.T) {
	base := snapshotBench(5.0, 7.0)
	var out strings.Builder
	if r := compareSnapshot(&out, base, snapshotBench(6.0, 8.5), 0.25); r != 0 {
		t.Fatalf("within-tolerance snapshot run flagged %d regressions\n%s", r, out.String())
	}
	out.Reset()
	if r := compareSnapshot(&out, base, snapshotBench(5.0, 9.0), 0.25); r != 1 {
		t.Fatalf("load_ms regression flagged %d, want 1\n%s", r, out.String())
	}
	if !strings.Contains(out.String(), "FAIL snapshot load_ms") {
		t.Fatalf("missing FAIL line:\n%s", out.String())
	}
	out.Reset()
	if r := compareSnapshot(&out, base, snapshotBench(2.0, 3.0), 0.25); r != 0 {
		t.Fatalf("improvement flagged %d regressions\n%s", r, out.String())
	}
}

func serveBench(eps ...experiments.ServeEndpoint) *experiments.ServeBench {
	return &experiments.ServeBench{N: 2000, Dim: 2, Radius: 0.05, Seed: 42,
		Workers: 4, DurationS: 10, Mix: experiments.DefaultServeMix, Endpoints: eps}
}

func serveEP(name string, rps, p99 float64) experiments.ServeEndpoint {
	return experiments.ServeEndpoint{Endpoint: name, Requests: int64(rps * 10), Throughput: rps, P50Ms: p99 / 4, P99Ms: p99}
}

// TestCompareServeBench: per-endpoint throughput is a floor, p99 a
// ceiling; improvements never fail.
func TestCompareServeBench(t *testing.T) {
	base := serveBench(serveEP("select", 100, 20), serveEP("insert", 400, 8))
	var out strings.Builder
	if r, w := compareServe(&out, base, serveBench(serveEP("select", 85, 24), serveEP("insert", 350, 9.5)), 0.25); r != 0 || w != 0 {
		t.Fatalf("within-tolerance serve run flagged r=%d w=%d\n%s", r, w, out.String())
	}
	out.Reset()
	if r, _ := compareServe(&out, base, serveBench(serveEP("select", 70, 20), serveEP("insert", 400, 8)), 0.25); r != 1 {
		t.Fatalf("throughput drop flagged %d, want 1\n%s", r, out.String())
	}
	if !strings.Contains(out.String(), "FAIL select") || !strings.Contains(out.String(), "throughput_rps") {
		t.Fatalf("missing FAIL throughput line:\n%s", out.String())
	}
	out.Reset()
	if r, _ := compareServe(&out, base, serveBench(serveEP("select", 100, 20), serveEP("insert", 400, 11)), 0.25); r != 1 {
		t.Fatalf("p99 regression flagged %d, want 1\n%s", r, out.String())
	}
	if !strings.Contains(out.String(), "FAIL insert") || !strings.Contains(out.String(), "p99_ms") {
		t.Fatalf("missing FAIL p99 line:\n%s", out.String())
	}
	out.Reset()
	if r, _ := compareServe(&out, base, serveBench(serveEP("select", 300, 5), serveEP("insert", 900, 2)), 0.25); r != 0 {
		t.Fatalf("improvement flagged %d regressions\n%s", r, out.String())
	}
}

// TestCompareServeRowDiscipline: a baseline endpoint missing from the
// current run fails; a new current-only endpoint warns; endpoint errors
// in the current run always fail.
func TestCompareServeRowDiscipline(t *testing.T) {
	base := serveBench(serveEP("select", 100, 20), serveEP("insert", 400, 8))
	var out strings.Builder
	if r, _ := compareServe(&out, base, serveBench(serveEP("select", 100, 20)), 0.25); r != 1 {
		t.Fatalf("missing endpoint flagged %d, want 1\n%s", r, out.String())
	}
	out.Reset()
	cur := serveBench(serveEP("select", 100, 20), serveEP("insert", 400, 8), serveEP("zoom", 50, 30))
	if r, w := compareServe(&out, base, cur, 0.25); r != 0 || w != 1 {
		t.Fatalf("new endpoint flagged r=%d w=%d, want r=0 w=1\n%s", r, w, out.String())
	}
	if !strings.Contains(out.String(), "WARN zoom") {
		t.Fatalf("missing WARN line:\n%s", out.String())
	}
	out.Reset()
	errored := serveEP("insert", 400, 8)
	errored.Errors = 3
	if r, _ := compareServe(&out, base, serveBench(serveEP("select", 100, 20), errored), 0.25); r != 1 {
		t.Fatalf("errored endpoint flagged %d, want 1\n%s", r, out.String())
	}
	if !strings.Contains(out.String(), "errored request(s)") {
		t.Fatalf("missing error line:\n%s", out.String())
	}
}

// TestCompareServeAvailability: availability is a floor scaled off the
// baseline's unavailable fraction; a baseline without the field (zero)
// skips the gate instead of gating against nothing.
func TestCompareServeAvailability(t *testing.T) {
	withAvail := func(ep experiments.ServeEndpoint, pct float64) experiments.ServeEndpoint {
		ep.Availability = pct
		return ep
	}
	base := serveBench(withAvail(serveEP("select", 100, 20), 99.9))
	var out strings.Builder
	if r, _ := compareServe(&out, base, serveBench(withAvail(serveEP("select", 100, 20), 99.8)), 0.25); r != 0 {
		t.Fatalf("within-tolerance availability flagged %d\n%s", r, out.String())
	}
	out.Reset()
	if r, _ := compareServe(&out, base, serveBench(withAvail(serveEP("select", 100, 20), 90)), 0.25); r != 1 {
		t.Fatalf("availability drop flagged %d, want 1\n%s", r, out.String())
	}
	if !strings.Contains(out.String(), "FAIL select") || !strings.Contains(out.String(), "availability_pct") {
		t.Fatalf("missing FAIL availability line:\n%s", out.String())
	}
	out.Reset()
	// Old baseline, no availability field: current availability is
	// reported nowhere and never gated.
	old := serveBench(serveEP("select", 100, 20))
	if r, _ := compareServe(&out, old, serveBench(withAvail(serveEP("select", 100, 20), 50)), 0.25); r != 0 {
		t.Fatalf("zero-baseline availability gated: %d\n%s", r, out.String())
	}
	if strings.Contains(out.String(), "availability_pct") {
		t.Fatalf("zero-baseline run printed an availability line:\n%s", out.String())
	}
}

func streamBench(updatesPerSec, p99 float64) *experiments.StreamBench {
	return &experiments.StreamBench{Dataset: "clustered", N: 100, Dim: 2, Radius: 0.1,
		UpdatesPerSec: updatesPerSec, RepairMSP99: p99, EquivalentToRebuild: true}
}

// TestCompareStreamBench: throughput is guarded as a floor (a drop below
// baseline/(1+tol) fails), the repair tail as a ceiling, and a run whose
// maintained selection diverged from rebuild always fails.
func TestCompareStreamBench(t *testing.T) {
	base := streamBench(1200, 5.0)
	var out strings.Builder
	if r := compareStream(&out, base, streamBench(1000, 6.0), 0.25); r != 0 {
		t.Fatalf("within-tolerance stream run flagged %d regressions\n%s", r, out.String())
	}
	out.Reset()
	if r := compareStream(&out, base, streamBench(900, 5.0), 0.25); r != 1 {
		t.Fatalf("throughput drop flagged %d, want 1\n%s", r, out.String())
	}
	if !strings.Contains(out.String(), "FAIL stream   updates_per_sec") {
		t.Fatalf("missing FAIL line:\n%s", out.String())
	}
	out.Reset()
	if r := compareStream(&out, base, streamBench(1200, 7.0), 0.25); r != 1 {
		t.Fatalf("repair tail regression flagged %d, want 1\n%s", r, out.String())
	}
	out.Reset()
	if r := compareStream(&out, base, streamBench(2000, 1.0), 0.25); r != 0 {
		t.Fatalf("improvement flagged %d regressions\n%s", r, out.String())
	}
	out.Reset()
	diverged := streamBench(2000, 1.0)
	diverged.EquivalentToRebuild = false
	if r := compareStream(&out, base, diverged, 0.25); r != 1 {
		t.Fatalf("diverged run flagged %d, want 1\n%s", r, out.String())
	}
}
