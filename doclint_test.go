package disc_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links; image links share the syntax.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinks walks every markdown file at the repo root and under
// docs/ and verifies that relative links resolve to files or
// directories in the checkout, so cross-references between README,
// ROADMAP and the docs/ tree cannot rot. External (scheme-qualified)
// and intra-document (#anchor) links are out of scope.
func TestDocLinks(t *testing.T) {
	var files []string
	for _, pattern := range []string{"*.md", "docs/*.md"} {
		matches, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, matches...)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found; doclint is running in the wrong directory")
	}
	checked := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(stripFences(string(data)), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", file, m[1], resolved)
			}
			checked++
		}
	}
	t.Logf("checked %d relative links across %d markdown files", checked, len(files))
}

// stripFences drops ``` fenced code blocks: quoted external material
// (e.g. snippets of other repos' READMEs) is not this repo's linkage.
func stripFences(doc string) string {
	var out []string
	fenced := false
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			continue
		}
		if !fenced {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
