package disc

import (
	"bytes"
	"math/rand/v2"
	"slices"
	"testing"

	"github.com/discdiversity/disc/internal/core"
	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/snap"
)

func snapshotTestPoints(n, dim int, seed uint64) []Point {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	pts := make([]Point, n)
	for i := range pts {
		p := make(Point, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func equalIDs(a, b []int) bool { return slices.Equal(a, b) }

// TestSnapshotLoadConformance: for every index backend, a diversifier
// restored with LoadDiversifier must behave bit-identically to the one
// that wrote the snapshot — identical Greedy-DisC selections at the
// prepared radius and at a different radius, and identical
// NeighborsAppend results from the underlying engines.
func TestSnapshotLoadConformance(t *testing.T) {
	pts := snapshotTestPoints(400, 2, 21)
	const r = 0.08
	for _, name := range SupportedIndexNames() {
		fresh, err := New(pts, WithIndexName(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := fresh.Select(r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var buf bytes.Buffer
		if err := fresh.WriteSnapshot(&buf); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		loaded, err := LoadDiversifier(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if loaded.Indexed().String() != name {
			t.Fatalf("%s: loaded index is %v", name, loaded.Indexed())
		}
		if loaded.Len() != fresh.Len() || loaded.Metric().Name() != fresh.Metric().Name() {
			t.Fatalf("%s: dataset drifted on load", name)
		}
		got, err := loaded.Select(r)
		if err != nil {
			t.Fatalf("%s: loaded select: %v", name, err)
		}
		if !equalIDs(want.SortedIDs(), got.SortedIDs()) {
			t.Errorf("%s: loaded selection differs from fresh (%d vs %d objects)", name, got.Size(), want.Size())
		}
		// A second radius exercises the rebuild/fallback machinery of
		// the rehydrated engine.
		want2, err := fresh.Select(r / 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got2, err := loaded.Select(r / 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !equalIDs(want2.SortedIDs(), got2.SortedIDs()) {
			t.Errorf("%s: selections diverge after re-radius", name)
		}
		// Engine-level conformance: identical neighbour lists (ids,
		// order, bit-identical distances) from the buffer-reusing form.
		fe, err := fresh.engineForRadius(r, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		le, err := loaded.engineForRadius(r, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var fb, lb []object.Neighbor
		for id := 0; id < len(pts); id += 37 {
			for _, qr := range []float64{r / 3, r, 2.5 * r} {
				fb = fe.NeighborsAppend(fb[:0], id, qr)
				lb = le.NeighborsAppend(lb[:0], id, qr)
				if len(fb) != len(lb) {
					t.Fatalf("%s id=%d r=%g: %d vs %d neighbours", name, id, qr, len(lb), len(fb))
				}
				for i := range fb {
					if fb[i] != lb[i] {
						t.Fatalf("%s id=%d r=%g: neighbour %d drifted: %v vs %v", name, id, qr, i, lb[i], fb[i])
					}
				}
			}
		}
	}
}

// TestSnapshotWarmEngineReused: a snapshot prepared at radius r must
// rehydrate straight into the engineForRadius cache — Select(r) on the
// loaded diversifier reuses the rehydrated engine rather than building
// a fresh one.
func TestSnapshotWarmEngineReused(t *testing.T) {
	pts := snapshotTestPoints(300, 2, 23)
	const r = 0.07
	for _, tc := range []struct {
		name string
		ix   Index
	}{
		{"coverage-graph", IndexCoverageGraph},
		{"grid", IndexGrid},
	} {
		d, err := New(pts, WithIndex(tc.ix))
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Prepare(r); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := d.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadDiversifier(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if loaded.engine == nil {
			t.Fatalf("%s: loaded diversifier has no rehydrated engine", tc.name)
		}
		before := loaded.engine
		e, err := loaded.engineForRadius(r, true)
		if err != nil {
			t.Fatal(err)
		}
		if e != before {
			t.Fatalf("%s: Select at the prepared radius rebuilt the engine", tc.name)
		}
		if tc.ix == IndexCoverageGraph {
			g, ok := e.(*core.ParallelGraphEngine)
			if !ok {
				t.Fatalf("%s: rehydrated engine is %T", tc.name, e)
			}
			if g.Radius() != r {
				t.Fatalf("%s: rehydrated radius %g, want %g", tc.name, g.Radius(), r)
			}
		}
	}
}

// TestSnapshotPrepareThenZoom: artifacts prepared before any selection
// must survive the round trip and serve zooms on the loaded side.
func TestSnapshotPrepareThenZoom(t *testing.T) {
	pts := snapshotTestPoints(350, 2, 29)
	d, err := New(pts, WithIndex(IndexCoverageGraph))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Prepare(0.1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDiversifier(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := loaded.Select(0.1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := loaded.ZoomIn(res, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Verify(in); err != nil {
		t.Fatalf("zoomed result invalid on loaded diversifier: %v", err)
	}
}

// TestSnapshotOptionOverrides: options are applied on top of the
// snapshot's recorded configuration.
func TestSnapshotOptionOverrides(t *testing.T) {
	pts := snapshotTestPoints(200, 2, 31)
	d, err := New(pts, WithIndex(IndexCoverageGraph))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Prepare(0.1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Conflicting metric: an error, never a reinterpretation.
	if _, err := LoadDiversifier(bytes.NewReader(data), WithMetric(Hamming())); err == nil {
		t.Fatal("metric conflict accepted")
	}
	// Restating the snapshot's metric is fine.
	if _, err := LoadDiversifier(bytes.NewReader(data), WithMetric(Euclidean())); err != nil {
		t.Fatalf("restated metric rejected: %v", err)
	}
	// Index override: the artifacts the new backend cannot use are
	// ignored; the backend still works.
	over, err := LoadDiversifier(bytes.NewReader(data), WithIndex(IndexMTree))
	if err != nil {
		t.Fatal(err)
	}
	if over.Indexed() != IndexMTree {
		t.Fatalf("index override ignored: %v", over.Indexed())
	}
	if _, err := over.Select(0.1); err != nil {
		t.Fatal(err)
	}
	// Grid override of a coverage-graph snapshot reuses the persisted
	// occupancy.
	gridDiv, err := LoadDiversifier(bytes.NewReader(data), WithIndex(IndexGrid))
	if err != nil {
		t.Fatal(err)
	}
	if gridDiv.engine == nil {
		t.Fatal("grid override did not rehydrate the persisted occupancy")
	}
}

// taxicabish is a custom (non-built-in) metric for the round-trip test:
// scaled L1, coordinate-wise monotone, metric axioms hold.
type taxicabish struct{}

func (taxicabish) Dist(a, b Point) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		s += 2 * d
	}
	return s
}
func (taxicabish) Name() string            { return "taxicabish" }
func (taxicabish) CoordinatewiseMonotone() {}

// TestSnapshotCustomMetric: a snapshot written under a user-implemented
// metric must load when the caller restates that metric via WithMetric
// (only the name is persisted), and must fail with a clear error when
// the metric is not supplied.
func TestSnapshotCustomMetric(t *testing.T) {
	pts := snapshotTestPoints(200, 2, 43)
	d, err := New(pts, WithMetric(taxicabish{}))
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.Select(0.1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := LoadDiversifier(bytes.NewReader(data)); err == nil {
		t.Fatal("custom-metric snapshot loaded without the metric being supplied")
	}
	loaded, err := LoadDiversifier(bytes.NewReader(data), WithMetric(taxicabish{}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Select(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(want.SortedIDs(), got.SortedIDs()) {
		t.Fatal("custom-metric selections diverge after round trip")
	}
}

// TestSnapshotBuildParamsPersisted: seed, M-tree capacity and
// parallelism survive the round trip, so deterministic rebuilds of the
// dataset-only backends reproduce the writer's engine exactly.
func TestSnapshotBuildParamsPersisted(t *testing.T) {
	pts := snapshotTestPoints(300, 2, 47)
	d, err := New(pts, WithIndex(IndexVPTree), WithSeed(7), WithMTreeCapacity(64), WithParallelism(3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDiversifier(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.seed != 7 || loaded.capacity != 64 || loaded.parallelism != 3 {
		t.Fatalf("build params drifted: seed=%d capacity=%d parallelism=%d",
			loaded.seed, loaded.capacity, loaded.parallelism)
	}
	// The rebuilt VP-tree must emit neighbour lists in the writer's
	// order (same seed, same construction).
	fe, err := d.engineForRadius(0.1, true)
	if err != nil {
		t.Fatal(err)
	}
	le, err := loaded.engineForRadius(0.1, true)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < len(pts); id += 41 {
		a := fe.NeighborsAppend(nil, id, 0.1)
		b := le.NeighborsAppend(nil, id, 0.1)
		if len(a) != len(b) {
			t.Fatalf("id %d: %d vs %d neighbours", id, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("id %d: neighbour order drifted at %d", id, i)
			}
		}
	}
	// Explicit overrides still win over the recorded values.
	over, err := LoadDiversifier(bytes.NewReader(buf.Bytes()), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if over.seed != 9 {
		t.Fatalf("WithSeed override lost: %d", over.seed)
	}
}

// TestSnapshotCorruptRejected: corruption must surface as a load error,
// never as a silently wrong diversifier.
func TestSnapshotCorruptRejected(t *testing.T) {
	pts := snapshotTestPoints(150, 2, 37)
	d, err := New(pts, WithIndex(IndexCoverageGraph))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Prepare(0.1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := LoadDiversifier(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := LoadDiversifier(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte(nil), data...)
	bad[len(bad)-3] ^= 0xff // payload corruption -> section CRC mismatch
	if _, err := LoadDiversifier(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted payload accepted")
	}
}

// TestSnapshotWithoutArtifacts: a snapshot written before any Select or
// Prepare carries only the dataset and loads like New.
func TestSnapshotWithoutArtifacts(t *testing.T) {
	pts := snapshotTestPoints(250, 3, 41)
	d, err := New(pts, WithIndex(IndexCoverageGraph))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDiversifier(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.engine != nil {
		t.Fatal("artifact-free snapshot rehydrated an engine from nothing")
	}
	want, err := d.Select(0.09)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Select(0.09)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(want.SortedIDs(), got.SortedIDs()) {
		t.Fatal("selections diverge")
	}
}

// TestSnapshotTamperedComponentsRejected: a snapshot whose component
// labels were rewritten to split a connected component must fail to
// load — InstallComponents' cross-edge validation — while the untouched
// snapshot loads with the decomposition pre-installed.
func TestSnapshotTamperedComponentsRejected(t *testing.T) {
	pts := snapshotTestPoints(300, 2, 29)
	const r = 0.05
	d, err := New(pts, WithIndex(IndexCoverageGraph))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Prepare(r); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	parsed, err := snap.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.ComponentLabels == nil {
		t.Fatal("prepared snapshot carries no component labels")
	}
	warm, err := LoadDiversifier(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	g, ok := warm.engine.(*core.ParallelGraphEngine)
	if !ok || g.CachedComponents() == nil {
		t.Fatal("loaded engine did not install the persisted decomposition")
	}

	// Split a multi-member component: relabel its highest member with
	// the neighbouring component's number (keeping the canonical
	// numbering intact so only the edge check can catch it).
	cp := g.CachedComponents()
	victim := -1
	for c := 0; c < cp.Count && victim < 0; c++ {
		if cp.Size(c) >= 2 && c+1 < cp.Count {
			m := cp.MemberIDs(c)
			victim = int(m[len(m)-1])
		}
	}
	if victim < 0 {
		t.Skip("decomposition has no splittable component")
	}
	labels := append([]int32(nil), parsed.ComponentLabels...)
	labels[victim]++
	tampered := &snap.Snapshot{
		Index: parsed.Index, Parallelism: parsed.Parallelism,
		Capacity: parsed.Capacity, Seed: parsed.Seed,
		Metric: parsed.Metric, N: parsed.N, Dim: parsed.Dim, Coords: parsed.Coords,
		Grid: parsed.Grid, GraphRadius: parsed.GraphRadius, Graph: parsed.Graph,
		ComponentCount: parsed.ComponentCount, ComponentLabels: labels,
	}
	var bad bytes.Buffer
	if err := snap.Write(&bad, tampered); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDiversifier(bytes.NewReader(bad.Bytes())); err == nil {
		t.Fatal("tampered component labels accepted")
	}
}

// TestSnapshotFloat32RoundTrip: a Float32 diversifier must persist its
// float32 coordinates (and, for the embedding metrics, the squared-norm
// cache) and load back at the same precision with bit-identical
// selections — including the flat-joined coverage graph, which has no
// grid occupancy to persist and must rehydrate from the CSR alone.
func TestSnapshotFloat32RoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name   string
		dim    int
		metric Metric
		r      float64
		opts   []Option
	}{
		// Cosine auto-selects the coverage graph and flat-joins it.
		{"cosine-flatjoin", 16, Cosine(), 0.15, nil},
		// Low-dim Euclidean grid-joins; the grid must carry the mirror.
		{"euclidean-grid", 3, Euclidean(), 0.2, []Option{WithIndex(IndexCoverageGraph)}},
		// High-dim Euclidean exceeds GraphFlatJoinDim and flat-joins.
		{"euclidean-flatjoin", 20, Euclidean(), 1.2, []Option{WithIndex(IndexCoverageGraph)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pts := snapshotTestPoints(250, tc.dim, 31)
			opts := append([]Option{WithMetric(tc.metric), WithPrecision(PrecisionFloat32)}, tc.opts...)
			d, err := New(pts, opts...)
			if err != nil {
				t.Fatal(err)
			}
			want, err := d.Select(tc.r)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := d.WriteSnapshot(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadDiversifier(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if p := loaded.flat.Precision(); p != PrecisionFloat32 {
				t.Fatalf("loaded precision %v, want float32", p)
			}
			// The padded float32 mirror must be bit-identical: the fast
			// path reads it, so drift here would change filter outcomes.
			if !slices.Equal(loaded.flat.Coords32(), d.flat.Coords32()) {
				t.Fatal("float32 mirror drifted through the snapshot")
			}
			if loaded.engine == nil {
				t.Fatal("no rehydrated engine")
			}
			if g, ok := loaded.engine.(*core.ParallelGraphEngine); ok {
				if g.Radius() != tc.r {
					t.Fatalf("rehydrated radius %g, want %g", g.Radius(), tc.r)
				}
				fresh := d.engine.(*core.ParallelGraphEngine)
				if g.GridJoined() != fresh.GridJoined() || g.FlatJoined() != fresh.FlatJoined() {
					t.Fatalf("substrate drifted: grid %v→%v flat %v→%v",
						fresh.GridJoined(), g.GridJoined(), fresh.FlatJoined(), g.FlatJoined())
				}
			}
			got, err := loaded.Select(tc.r)
			if err != nil {
				t.Fatal(err)
			}
			if !equalIDs(want.SortedIDs(), got.SortedIDs()) {
				t.Fatalf("loaded selection differs from fresh (%d vs %d objects)", got.Size(), want.Size())
			}
			// A float64 diversifier over the pre-rounded points must agree:
			// the snapshot must not change which precision trade-off was
			// taken (rounding happens once, at the original ingest).
			rounded := make([]Point, len(pts))
			for i, p := range pts {
				rp := make(Point, len(p))
				for j, v := range p {
					rp[j] = float64(float32(v))
				}
				rounded[i] = rp
			}
			d64, err := New(rounded, append([]Option{WithMetric(tc.metric)}, tc.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			want64, err := d64.Select(tc.r)
			if err != nil {
				t.Fatal(err)
			}
			if !equalIDs(want64.SortedIDs(), got.SortedIDs()) {
				t.Fatal("float32 snapshot selection differs from the float64 reference over rounded points")
			}
		})
	}
}

// TestSnapshotFlatGraphWarmStart: a flat-joined graph prepared before
// writing must rehydrate straight into the engine cache — no re-join on
// the loaded side — including its component decomposition.
func TestSnapshotFlatGraphWarmStart(t *testing.T) {
	pts := snapshotTestPoints(300, 4, 37)
	const r = 0.4
	d, err := New(pts, WithMetric(Cosine()))
	if err != nil {
		t.Fatal(err)
	}
	if d.index != IndexCoverageGraph {
		t.Fatalf("cosine auto-selected %v, want coverage-graph", d.index)
	}
	if err := d.Prepare(r); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDiversifier(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	g, ok := loaded.engine.(*core.ParallelGraphEngine)
	if !ok {
		t.Fatalf("rehydrated engine is %T", loaded.engine)
	}
	if !g.FlatJoined() {
		t.Fatal("rehydrated engine lost its flat-join substrate")
	}
	if g.CachedComponents() == nil {
		t.Fatal("component decomposition not rehydrated")
	}
	before := loaded.engine
	if _, err := loaded.Select(r, WithSelectMode(SelectComponents)); err != nil {
		t.Fatal(err)
	}
	if loaded.engine != before {
		t.Fatal("Select at the prepared radius rebuilt the engine")
	}
}
