package disc

import (
	"fmt"
	"math"

	"github.com/discdiversity/disc/internal/core"
)

// The extensions sketched in the paper's future-work section: relevance
// integrated with DisC diversity through weights or per-object radii.

// SelectWeighted computes an r-DisC diverse subset that prefers relevant
// objects: candidates are examined in descending weight order, so every
// representative is the heaviest object its neighbourhood could have
// offered. weights must have one entry per indexed object.
func (d *Diversifier) SelectWeighted(r float64, weights []float64) (*Result, error) {
	if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return nil, fmt.Errorf("disc: invalid radius %g", r)
	}
	// Validate before engineForRadius: a bad weights slice must not pay
	// for a lazy index (re)build (coverage graph or grid).
	if len(weights) != d.Len() {
		return nil, fmt.Errorf("disc: %d weights for %d objects", len(weights), d.Len())
	}
	e, err := d.engineForRadius(r, true)
	if err != nil {
		return nil, err
	}
	sol, err := core.WeightedGreedyDisC(e, r, weights)
	if err != nil {
		return nil, err
	}
	return &Result{div: d, sol: sol}, nil
}

// TotalWeight sums the weights of a result's representatives.
func (r *Result) TotalWeight(weights []float64) float64 {
	return core.TotalWeight(r.sol, weights)
}

// SelectMultiRadius computes a DisC diverse subset under per-object
// radii: more relevant objects can be given smaller radii so their
// regions stay finely represented. Objects p and q count as similar when
// dist(p, q) <= max(radii[p], radii[q]); the result dominates and is
// independent under that relation. Multi-radius results cannot be zoomed
// (the zoom semantics of a radius vector are undefined); recompute with
// scaled radii instead.
func (d *Diversifier) SelectMultiRadius(radii []float64) (*Result, error) {
	// Validate before engineForRadius: a bad radii slice must not pay
	// for a lazy index (re)build (coverage graph or grid).
	if len(radii) != d.Len() {
		return nil, fmt.Errorf("disc: %d radii for %d objects", len(radii), d.Len())
	}
	// An engine prepared for the largest per-object radius answers every
	// smaller one exactly: the coverage graph filters its adjacency
	// lists, the grid scans within its (sufficient) cell ring.
	var rmax float64
	for _, r := range radii {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("disc: invalid radius %g", r)
		}
		if r > rmax {
			rmax = r
		}
	}
	e, err := d.engineForRadius(rmax, true)
	if err != nil {
		return nil, err
	}
	sol, err := core.MultiRadiusDisC(e, radii, true)
	if err != nil {
		return nil, err
	}
	return &Result{div: d, sol: sol, multiRadii: append([]float64(nil), radii...)}, nil
}

// VerifyMultiRadius checks a SelectMultiRadius result against the
// generalised DisC conditions by direct distance computation.
func (d *Diversifier) VerifyMultiRadius(res *Result) error {
	if res == nil || res.div != d {
		return fmt.Errorf("disc: result does not belong to this diversifier")
	}
	if res.multiRadii == nil {
		return fmt.Errorf("disc: result was not computed with SelectMultiRadius")
	}
	return core.CheckMultiRadiusDisC(d.points, d.metric, res.sol.IDs, res.multiRadii)
}
