package disc

import (
	"github.com/discdiversity/disc/internal/core"
	"github.com/discdiversity/disc/internal/stats"
)

// Result is a computed diverse subset together with the bookkeeping
// needed to zoom it to other radii. Results are immutable snapshots: the
// zoom methods return new Results.
type Result struct {
	div          *Diversifier
	sol          *core.Solution
	coverageOnly bool
	multiRadii   []float64 // non-nil for SelectMultiRadius results
}

// IDs returns the selected objects in selection order (a copy).
func (r *Result) IDs() []int {
	return append([]int(nil), r.sol.IDs...)
}

// SortedIDs returns the selected objects in ascending id order.
func (r *Result) SortedIDs() []int { return r.sol.SortedIDs() }

// Size returns the number of selected objects.
func (r *Result) Size() int { return r.sol.Size() }

// Radius returns the radius the result was computed for.
func (r *Result) Radius() float64 { return r.sol.Radius }

// Algorithm returns the name of the heuristic that produced the result.
func (r *Result) Algorithm() string { return r.sol.Algorithm }

// Accesses returns the index cost consumed computing this result, in
// the backend's own unit: tree node accesses for IndexMTree, IndexVPTree
// and IndexRTree, objects examined for IndexLinearScan, and adjacency
// entries examined (plus R-tree node accesses on fallback queries) for
// IndexCoverageGraph. Compare across backends with that caveat.
func (r *Result) Accesses() int64 { return r.sol.Accesses }

// Contains reports whether object id was selected.
func (r *Result) Contains(id int) bool { return r.sol.Contains(id) }

// Points returns the coordinates of the selected objects, in selection
// order.
func (r *Result) Points() []Point {
	pts := make([]Point, 0, r.sol.Size())
	for _, id := range r.sol.IDs {
		pts = append(pts, r.div.points[id])
	}
	return pts
}

// CoverageOnly reports whether the result only guarantees coverage (an
// r-C subset from AlgorithmCoverage / AlgorithmFastCoverage) rather than
// full DisC diversity.
func (r *Result) CoverageOnly() bool { return r.coverageOnly }

// DistanceToRepresentative returns the distance from object id to its
// closest representative (0 if id is itself selected). When the result
// was computed with pruning the value may be an upper bound; zooming
// methods repair this automatically.
func (r *Result) DistanceToRepresentative(id int) float64 {
	return r.sol.DistBlack[id]
}

// Jaccard returns the Jaccard distance between the selections of two
// results: 0 for identical sets, 1 for disjoint ones.
func (r *Result) Jaccard(other *Result) float64 {
	return stats.Jaccard(r.sol.IDs, other.sol.IDs)
}
