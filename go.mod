module github.com/discdiversity/disc

go 1.22
