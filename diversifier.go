package disc

import (
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/discdiversity/disc/internal/core"
	"github.com/discdiversity/disc/internal/grid"
	"github.com/discdiversity/disc/internal/mtree"
	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/vfs"
	"github.com/discdiversity/disc/internal/wal"
)

// Algorithm selects the heuristic used by Select. The zero value is
// AlgorithmGreedy, the paper's best size/cost trade-off.
type Algorithm int

const (
	// AlgorithmGreedy is Greedy-DisC with grey-neighbourhood updates:
	// repeatedly select the uncovered object covering the most uncovered
	// objects. Smallest subsets, more index work.
	AlgorithmGreedy Algorithm = iota
	// AlgorithmBasic is Basic-DisC: a single locality-ordered pass
	// selecting any still-uncovered object. Fastest, larger subsets.
	AlgorithmBasic
	// AlgorithmGreedyWhite is Greedy-DisC with white-neighbourhood
	// updates; identical output to AlgorithmGreedy with fewer index
	// accesses on clustered data.
	AlgorithmGreedyWhite
	// AlgorithmLazyGrey trades slightly larger subsets for cheaper
	// updates (half-radius refresh queries).
	AlgorithmLazyGrey
	// AlgorithmLazyWhite is the lazy variant of AlgorithmGreedyWhite.
	AlgorithmLazyWhite
	// AlgorithmCoverage is Greedy-C: coverage-only (r-C) subsets that
	// may include mutually similar objects when that reduces size.
	AlgorithmCoverage
	// AlgorithmFastCoverage is Fast-C: approximate queries for cheaper
	// r-C subsets (marginally larger).
	AlgorithmFastCoverage
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmGreedy:
		return "greedy-disc"
	case AlgorithmBasic:
		return "basic-disc"
	case AlgorithmGreedyWhite:
		return "white-greedy-disc"
	case AlgorithmLazyGrey:
		return "lazy-grey-greedy-disc"
	case AlgorithmLazyWhite:
		return "lazy-white-greedy-disc"
	case AlgorithmCoverage:
		return "greedy-c"
	case AlgorithmFastCoverage:
		return "fast-c"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// Diversifier computes DisC diverse subsets of a fixed set of objects.
// It is safe for sequential reuse across any number of Select and zoom
// calls; it is not safe for concurrent use.
type Diversifier struct {
	points      []Point
	metric      Metric
	index       Index
	parallelism int
	// flat is the shared coordinate storage every dataset-backed engine
	// is built on. For PrecisionFloat32 it carries the aligned float32
	// mirror that accelerates the batched scans, and points aliases its
	// (rounded) float64 view — so Verify, Point and every engine agree
	// on the same coordinates and selections stay bit-identical across
	// backends.
	flat *object.FlatDataset
	// capacity and seed are retained so snapshots can persist them:
	// the dataset-only backends rebuild deterministically from (points,
	// metric, capacity, seed), which is what makes a loaded engine
	// bit-identical to the one that wrote the snapshot.
	capacity int
	seed     uint64
	// engine answers neighbourhood queries. The radius-dependent
	// backends (IndexCoverageGraph, IndexGrid) are (re)built lazily per
	// selection radius and are nil before the first Select; every other
	// index is built once in New.
	engine core.Engine
}

type options struct {
	metric      Metric
	capacity    int
	index       Index
	indexSet    bool
	parallelism int
	seed        uint64
	prec        Precision

	// Durability knobs, consumed by OpenUpdater only (see
	// openupdater.go); inert everywhere else.
	walSync     FsyncPolicy
	walInterval time.Duration
	walSegment  int64
	walOpenFile func(name string, create bool) (wal.File, error)
	storageFS   vfs.FS
}

// Option configures New.
type Option func(*options) error

// WithMetric sets the distance function (default Euclidean).
func WithMetric(m Metric) Option {
	return func(o *options) error {
		if m == nil {
			return fmt.Errorf("disc: nil metric")
		}
		o.metric = m
		return nil
	}
}

// WithMTreeCapacity sets the M-tree node capacity (default 50, the
// paper's default; minimum 4).
func WithMTreeCapacity(capacity int) Option {
	return func(o *options) error {
		if capacity < 4 {
			return fmt.Errorf("disc: M-tree capacity %d below minimum 4", capacity)
		}
		o.capacity = capacity
		return nil
	}
}

// WithIndex selects the neighbourhood-search backend (default
// IndexMTree). Greedy selections are identical across all index
// choices; only build and query cost differ. Unknown values are
// rejected when New parses its options, with the supported backends
// listed in the error.
func WithIndex(ix Index) Option {
	return func(o *options) error { return o.setIndex(ix) }
}

// WithIndexName is WithIndex resolved from a backend name ("mtree",
// "flat", "vptree", "rtree", "coverage-graph", "grid") — the form
// configuration files and command lines carry. Unknown names fail
// eagerly with the supported list in the error (see IndexByName).
func WithIndexName(name string) Option {
	return func(o *options) error {
		ix, err := IndexByName(name)
		if err != nil {
			return err
		}
		return o.setIndex(ix)
	}
}

// WithParallelism sets the worker count IndexCoverageGraph uses to build
// the coverage graph (default GOMAXPROCS). Other indexes ignore it.
func WithParallelism(workers int) Option {
	return func(o *options) error {
		if workers < 0 {
			return fmt.Errorf("disc: negative parallelism %d", workers)
		}
		o.parallelism = workers
		return nil
	}
}

// WithLinearScan is shorthand for WithIndex(IndexLinearScan): an exact
// linear-scan index with no build cost, best for small inputs.
func WithLinearScan() Option {
	return func(o *options) error { return o.setIndex(IndexLinearScan) }
}

// WithVPTree is shorthand for WithIndex(IndexVPTree): a simpler static
// metric index that also supports the pruning rule.
func WithVPTree() Option {
	return func(o *options) error { return o.setIndex(IndexVPTree) }
}

func (o *options) setIndex(ix Index) error {
	switch ix {
	case IndexMTree, IndexLinearScan, IndexVPTree, IndexRTree, IndexCoverageGraph, IndexGrid:
	default:
		return fmt.Errorf("disc: unknown index %v (supported: %s)", ix, strings.Join(SupportedIndexNames(), ", "))
	}
	if o.indexSet && o.index != ix {
		return fmt.Errorf("disc: conflicting index selections %v and %v", o.index, ix)
	}
	o.index = ix
	o.indexSet = true
	return nil
}

// WithSeed seeds the index construction (only random split policies
// consume it; present for forward compatibility).
func WithSeed(seed uint64) Option {
	return func(o *options) error {
		o.seed = seed
		return nil
	}
}

// WithPrecision selects the coordinate storage width (default
// PrecisionFloat64). PrecisionFloat32 rounds every coordinate to
// float32 once, at ingest, and keeps a cache-aligned float32 mirror
// that the batched scan kernels use as a pre-filter — roughly halving
// memory traffic on high-dimensional data. All distance results are
// still computed in exact float64 arithmetic over the rounded values,
// so selections are bit-identical across every index backend; the only
// approximation is the one-time coordinate rounding. Coordinates whose
// magnitude overflows float32 are rejected by New.
func WithPrecision(p Precision) Option {
	return func(o *options) error {
		if p != PrecisionFloat64 && p != PrecisionFloat32 {
			return fmt.Errorf("disc: unknown precision %v", p)
		}
		o.prec = p
		return nil
	}
}

// defaultOptions is the single source of New's option defaults;
// LoadDiversifier derives its defaults from it too, so the two
// construction paths can never drift.
func defaultOptions() options {
	return options{metric: Euclidean(), capacity: 50}
}

// New builds a Diversifier over points. The slice is retained and must
// not be mutated afterwards.
func New(points []Point, opts ...Option) (*Diversifier, error) {
	o := defaultOptions()
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("disc: empty point set")
	}
	dim, err := object.ValidatePoints(points)
	if err != nil {
		return nil, fmt.Errorf("disc: %w", err)
	}
	// Default index auto-selection: metrics without the triangle
	// inequality (cosine, dot product) cannot use the M-tree's ball
	// pruning, and at high dimensionality the measured winner is the
	// coverage graph's batched flat join (see BENCH_PR7.json) — both
	// route to IndexCoverageGraph, which serves every metric.
	if !o.indexSet && (!object.TriangleSafe(o.metric) || dim > core.GraphFlatJoinDim) {
		o.index = IndexCoverageGraph
	}
	var flat *object.FlatDataset
	if o.prec == PrecisionFloat32 {
		flat, err = object.Flatten32(points, o.metric)
	} else {
		flat, err = object.Flatten(points, o.metric)
	}
	if err != nil {
		return nil, fmt.Errorf("disc: %w", err)
	}
	// The diversifier's points are the dataset's own view: for Float32
	// that is the rounded coordinates, which every engine and Verify
	// must agree on.
	d := &Diversifier{points: flat.Points(), metric: o.metric, index: o.index,
		parallelism: o.parallelism, capacity: o.capacity, seed: o.seed, flat: flat}
	e, err := initialEngine(o, d.flat, d.points)
	if err != nil {
		return nil, err
	}
	d.engine = e
	return d, nil
}

// initialEngine builds the engine New installs for the chosen index: a
// concrete engine for the radius-independent backends, nil for the
// radius-dependent ones (which engineForRadius builds lazily) after
// failing fast on a metric they could never serve. LoadDiversifier
// shares it for snapshots that carry no prepared artifacts. points must
// be flat.Points() (the dataset's own view).
func initialEngine(o options, flat *object.FlatDataset, points []Point) (core.Engine, error) {
	switch o.index {
	case IndexLinearScan:
		return core.NewFlatEngineOn(flat), nil
	case IndexVPTree:
		// The VP-tree's vantage-ball bounds assume the triangle
		// inequality; fail fast on a distance that violates it.
		if !object.TriangleSafe(o.metric) {
			return nil, fmt.Errorf("disc: metric %q violates the triangle inequality; IndexVPTree's vantage-ball pruning would miss true neighbours (use IndexCoverageGraph or IndexLinearScan)", o.metric.Name())
		}
		return core.BuildVPEngine(points, o.metric, o.seed)
	case IndexRTree:
		return core.BuildRTreeEngine(points, o.metric, 0)
	case IndexCoverageGraph:
		// Built lazily: the coverage graph needs the selection radius.
		// Every metric is served — the build picks the grid, R-tree or
		// batched flat-join substrate per metric and dimensionality.
		return nil, nil
	case IndexGrid:
		// Built lazily: the grid buckets at the selection radius. Fail
		// fast on a metric the cell-ring scan cannot serve.
		if !grid.Supports(o.metric) {
			return nil, fmt.Errorf("disc: metric %q does not dominate per-coordinate differences; IndexGrid's cell scan would miss true neighbours (use Euclidean, Manhattan or Chebyshev)", o.metric.Name())
		}
		return nil, nil
	default:
		// The M-tree's ball pruning assumes the triangle inequality;
		// fail fast on a distance that violates it.
		if !object.TriangleSafe(o.metric) {
			return nil, fmt.Errorf("disc: metric %q violates the triangle inequality; IndexMTree's ball pruning would miss true neighbours (use IndexCoverageGraph or IndexLinearScan)", o.metric.Name())
		}
		cfg := mtree.Config{Capacity: o.capacity, Metric: o.metric, Policy: mtree.MinOverlap, Seed: o.seed}
		return core.BuildTreeEngine(cfg, points)
	}
}

// Indexed returns the backend this diversifier queries.
func (d *Diversifier) Indexed() Index { return d.index }

// engineForRadius returns the engine answering queries at radius r. The
// radius-dependent backends are (re)built lazily: for
// IndexCoverageGraph the materialised graph is rebuilt at r when
// rebuild is set and the cached graph was built for a different radius
// — reusing the packed R-tree always, and the grid occupancy whenever
// the new radius still fits its cell side (zooming in re-joins without
// re-bucketing). For IndexGrid only the O(n) bucketing is radius-
// dependent; it is reused as long as one cell ring covers r and
// coarsened otherwise. With rebuild unset (the zoom and extension
// paths) the cached engine is reused — both backends answer any radius
// exactly, only the cost differs.
func (d *Diversifier) engineForRadius(r float64, rebuild bool) (core.Engine, error) {
	switch d.index {
	case IndexCoverageGraph:
		if g, ok := d.engine.(*core.ParallelGraphEngine); ok {
			if !rebuild || g.Radius() == r {
				return d.engine, nil
			}
			ng, err := g.Rebuild(r)
			if err != nil {
				return nil, err
			}
			d.engine = ng
			return ng, nil
		}
		g, err := core.BuildParallelGraphEngineOn(d.flat, r, d.parallelism)
		if err != nil {
			return nil, err
		}
		d.engine = g
		return g, nil
	case IndexGrid:
		if e, ok := d.engine.(*core.GridEngine); ok {
			if rebuild {
				if err := e.EnsureRadius(r); err != nil {
					return nil, err
				}
			}
			return e, nil
		}
		e, err := core.BuildGridEngineOn(d.flat, r)
		if err != nil {
			return nil, err
		}
		d.engine = e
		return e, nil
	default:
		return d.engine, nil
	}
}

// NewFromDataset is New over ds.Points.
func NewFromDataset(ds *Dataset, opts ...Option) (*Diversifier, error) {
	if ds == nil {
		return nil, fmt.Errorf("disc: nil dataset")
	}
	return New(ds.Points, opts...)
}

// Len returns the number of objects under diversification.
func (d *Diversifier) Len() int { return len(d.points) }

// Metric returns the distance function in use.
func (d *Diversifier) Metric() Metric { return d.metric }

// Point returns the coordinates of object id.
func (d *Diversifier) Point(id int) Point { return d.points[id] }

type selectOptions struct {
	algorithm   Algorithm
	noPrune     bool
	mode        SelectMode
	parallelism int
}

// SelectOption configures Select.
type SelectOption func(*selectOptions)

// WithAlgorithm picks the selection heuristic (default AlgorithmGreedy).
func WithAlgorithm(a Algorithm) SelectOption {
	return func(o *selectOptions) { o.algorithm = a }
}

// WithoutPruning disables the grey-subtree pruning rule; mainly useful
// for cost comparisons.
func WithoutPruning() SelectOption {
	return func(o *selectOptions) { o.noPrune = true }
}

// WithSelectMode picks the execution strategy (default SelectGlobal).
// SelectComponents decomposes the selection over the r-coverage graph's
// connected components — same subset, parallel and usually cheaper on
// clustered data; see the SelectMode constants for the trade-offs.
func WithSelectMode(m SelectMode) SelectOption {
	return func(o *selectOptions) { o.mode = m }
}

// WithSelectParallelism sets the worker count for SelectComponents
// (<= 0, the default, selects GOMAXPROCS). The selected subset and its
// order are bit-identical for every worker count; only wall-clock time
// changes. SelectGlobal ignores it.
func WithSelectParallelism(workers int) SelectOption {
	return func(o *selectOptions) { o.parallelism = workers }
}

// greedyUpdate maps a Greedy-DisC family member to its count-update
// strategy; ok is false for the non-greedy algorithms.
func greedyUpdate(a Algorithm) (core.UpdateStrategy, bool) {
	switch a {
	case AlgorithmGreedy:
		return core.UpdateGrey, true
	case AlgorithmGreedyWhite:
		return core.UpdateWhite, true
	case AlgorithmLazyGrey:
		return core.UpdateLazyGrey, true
	case AlgorithmLazyWhite:
		return core.UpdateLazyWhite, true
	default:
		return 0, false
	}
}

// Select computes an r-DisC diverse subset (or an r-C subset for the
// coverage-only algorithms) of the indexed objects.
func (d *Diversifier) Select(r float64, opts ...SelectOption) (*Result, error) {
	if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return nil, fmt.Errorf("disc: invalid radius %g", r)
	}
	var o selectOptions
	for _, opt := range opts {
		opt(&o)
	}
	// Validate before engineForRadius: an unknown algorithm or an
	// unsupported mode combination must not pay for a coverage-graph
	// build.
	update, isGreedy := greedyUpdate(o.algorithm)
	switch o.algorithm {
	case AlgorithmGreedy, AlgorithmBasic, AlgorithmGreedyWhite, AlgorithmLazyGrey,
		AlgorithmLazyWhite, AlgorithmCoverage, AlgorithmFastCoverage:
	default:
		return nil, fmt.Errorf("disc: unknown algorithm %v", o.algorithm)
	}
	switch o.mode {
	case SelectGlobal:
	case SelectComponents:
		if !isGreedy {
			return nil, fmt.Errorf("disc: select mode %v supports only the Greedy-DisC algorithms, not %v", o.mode, o.algorithm)
		}
	default:
		return nil, fmt.Errorf("disc: unknown select mode %v", o.mode)
	}
	pruned := !o.noPrune
	e, err := d.engineForRadius(r, true)
	if err != nil {
		return nil, err
	}
	var sol *core.Solution
	switch {
	case isGreedy && o.mode == SelectComponents:
		sol = core.GreedyDisCComponents(e, r, core.GreedyOptions{Update: update, Pruned: pruned}, o.parallelism)
	case isGreedy:
		sol = core.GreedyDisC(e, r, core.GreedyOptions{Update: update, Pruned: pruned})
	case o.algorithm == AlgorithmBasic:
		sol = core.BasicDisC(e, r, pruned)
	case o.algorithm == AlgorithmCoverage:
		sol = core.GreedyC(e, r)
	default: // AlgorithmFastCoverage
		sol = core.FastC(e, r)
	}
	return &Result{div: d, sol: sol, coverageOnly: o.algorithm == AlgorithmCoverage || o.algorithm == AlgorithmFastCoverage}, nil
}

// Verify checks the result against Definition 1 by direct distance
// computation: coverage for all results, plus dissimilarity for DisC
// (non coverage-only) results. It is O(n·|S|) and intended for tests and
// debugging.
func (d *Diversifier) Verify(res *Result) error {
	if res == nil || res.div != d {
		return fmt.Errorf("disc: result does not belong to this diversifier")
	}
	if res.multiRadii != nil {
		return d.VerifyMultiRadius(res)
	}
	if res.coverageOnly {
		return core.CheckCoverage(d.points, d.metric, res.sol.IDs, res.sol.Radius)
	}
	return core.CheckDisC(d.points, d.metric, res.sol.IDs, res.sol.Radius)
}
