// Package telemetry is the repo's zero-dependency metrics core: atomic
// counters and gauges, fixed-boundary log-scaled latency histograms with
// a lock-free, allocation-free Observe, and a named registry that renders
// everything in the Prometheus text exposition format (see
// prometheus.go). It exists so the hot paths — steady-state selection
// reads, component repairs, WAL appends — can be instrumented without
// violating the repo's standing 0 alloc/op invariants: every mutation on
// a metric handle is a handful of atomic adds on pre-sized arrays, and
// handle lookup (the only locking, allocating operation) happens once at
// package init, never per observation.
//
// # Naming and labels
//
// Metric names follow the Prometheus conventions: snake_case, a
// `disc_` namespace prefix, unit suffixes (`_seconds`, `_bytes`), and
// `_total` on counters. A handle's name may carry a label set baked in
// as a literal suffix — `disc_http_requests_total{route="/v1/x"}` — in
// which case the registry treats the whole string as the series key and
// groups series of the same base name under one HELP/TYPE header. Label
// fan-out is therefore decided at registration time (one handle per
// label combination), which is what keeps the observation path free of
// formatting and map lookups.
//
// # Concurrency
//
// All metric types are safe for concurrent use by any number of
// writers and readers. Registration (Counter/Gauge/Histogram on a
// Registry) is also safe for concurrent use and idempotent: the same
// name always returns the same handle, so independent packages may
// register the same series without coordination.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A Counter is a monotonically increasing value (Prometheus type
// "counter"). The zero value is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// A Gauge is a value that can go up and down (Prometheus type "gauge").
// The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add increases (or, negative n, decreases) the gauge.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// kind discriminates registered metric handles.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// entry is one registered series.
type entry struct {
	name string // full series name, labels included
	base string // name with the label set stripped
	kind kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry is a named collection of metrics. The zero value is not
// usable; create with NewRegistry or use the process-wide Default.
type Registry struct {
	mu      sync.Mutex
	series  map[string]*entry
	ordered []*entry          // registration order, for stable exposition
	help    map[string]string // base name -> help text (first wins)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series: make(map[string]*entry),
		help:   make(map[string]string),
	}
}

// defaultRegistry is the process-wide registry every instrumented
// package registers into; discserve exposes it at GET /metrics.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// baseName strips a literal label suffix: "x_total{a=\"b\"}" -> "x_total".
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// register returns the series entry for name, creating it with make on
// first registration. It panics when name is empty, malformed, or
// already registered as a different kind — all three are programming
// errors at package init, not runtime conditions to handle.
func (r *Registry) register(name string, k kind, help string, mk func(e *entry)) *entry {
	base := baseName(name)
	if base == "" {
		panic("telemetry: empty metric name")
	}
	if strings.ContainsAny(base, " \n\"") {
		panic(fmt.Sprintf("telemetry: malformed metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.series[name]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("telemetry: %s already registered as a %s, not a %s", name, e.kind, k))
		}
		return e
	}
	e := &entry{name: name, base: base, kind: k}
	mk(e)
	r.series[name] = e
	r.ordered = append(r.ordered, e)
	if help != "" {
		if _, ok := r.help[base]; !ok {
			r.help[base] = help
		}
	}
	return e
}

// Counter returns the counter registered under name, creating it on
// first use. help documents the base name in the exposition (the first
// non-empty help for a base name wins).
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, kindCounter, help, func(e *entry) { e.c = new(Counter) }).c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, kindGauge, help, func(e *entry) { e.g = new(Gauge) }).g
}

// Histogram returns the latency histogram registered under name,
// creating it on first use. Observations are int64 nanoseconds; the
// exposition renders boundaries and sums in seconds, so names should
// carry the `_seconds` suffix.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.register(name, kindHistogram, help, func(e *entry) { e.h = NewHistogram() }).h
}

// snapshot returns a stable copy of the registration list, sorted by
// base name (series of one base adjacent, registration order within).
func (r *Registry) snapshot() []*entry {
	r.mu.Lock()
	entries := make([]*entry, len(r.ordered))
	copy(entries, r.ordered)
	r.mu.Unlock()
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].base < entries[j].base })
	return entries
}

// helpFor returns the help text registered for a base name.
func (r *Registry) helpFor(base string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.help[base]
}

// A Timer observes elapsed wall time into a histogram; use as
//
//	defer telemetry.Since(hist, time.Now())
//
// or explicitly with Observe. Provided as a function, not a type, to
// keep the hot path free of interface values.
func Since(h *Histogram, start time.Time) {
	h.Observe(time.Since(start).Nanoseconds())
}
