package telemetry

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// ContentType is the value GET /metrics should set on Content-Type for
// the text exposition format rendered by WritePrometheus.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), hand-rolled — no dependency
// on a client library. Series sharing a base name (label variants) are
// grouped under one # HELP / # TYPE header pair; histograms render as
// the conventional cumulative `_bucket{le=...}` series plus `_sum` and
// `_count`, with nanosecond-valued buckets converted to seconds (the
// Prometheus base unit for time). Empty buckets are elided — cumulative
// bucket semantics make the sparse form exactly equivalent, and it
// keeps a scrape of many fine-grained histograms compact.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var lastBase string
	for _, e := range r.snapshot() {
		if e.base != lastBase {
			if help := r.helpFor(e.base); help != "" {
				bw.WriteString("# HELP ")
				bw.WriteString(e.base)
				bw.WriteByte(' ')
				bw.WriteString(strings.ReplaceAll(help, "\n", " "))
				bw.WriteByte('\n')
			}
			bw.WriteString("# TYPE ")
			bw.WriteString(e.base)
			bw.WriteByte(' ')
			bw.WriteString(e.kind.String())
			bw.WriteByte('\n')
			lastBase = e.base
		}
		switch e.kind {
		case kindCounter:
			bw.WriteString(e.name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatUint(e.c.Value(), 10))
			bw.WriteByte('\n')
		case kindGauge:
			bw.WriteString(e.name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(e.g.Value(), 10))
			bw.WriteByte('\n')
		case kindHistogram:
			writeHistogram(bw, e.name, e.h.Snapshot())
		}
	}
	return bw.Flush()
}

// seriesWithLabel renders name with an extra label appended to (or
// starting) its label set: ("x{a="b"}", `le`, "1") -> `x{a="b",le="1"}`.
func seriesWithLabel(name, label, value string) string {
	var sb strings.Builder
	if i := strings.IndexByte(name, '{'); i >= 0 {
		sb.WriteString(name[:len(name)-1]) // drop the closing brace
		sb.WriteByte(',')
	} else {
		sb.WriteString(name)
		sb.WriteByte('{')
	}
	sb.WriteString(label)
	sb.WriteString(`="`)
	sb.WriteString(value)
	sb.WriteString(`"}`)
	return sb.String()
}

// writeHistogram renders one histogram snapshot: cumulative non-empty
// buckets with le boundaries in seconds, then +Inf, _sum and _count.
// The totals are derived from the bucket array itself (not the separate
// count cell), so the rendered cumulative series is always internally
// monotone even when a concurrent Observe lands between the two loads.
func writeHistogram(bw *bufio.Writer, name string, s HistSnapshot) {
	var cum uint64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		cum += c
		upper := bucketUpper(i)
		if upper == math.MaxInt64 {
			// Overflow bucket: folded into +Inf below.
			continue
		}
		le := strconv.FormatFloat(float64(upper)/1e9, 'g', -1, 64)
		bw.WriteString(seriesWithLabel(name+"_bucket", "le", le))
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(cum, 10))
		bw.WriteByte('\n')
	}
	bw.WriteString(seriesWithLabel(name+"_bucket", "le", "+Inf"))
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(cum, 10))
	bw.WriteByte('\n')
	bw.WriteString(name + "_sum")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatFloat(float64(s.Sum)/1e9, 'g', -1, 64))
	bw.WriteByte('\n')
	bw.WriteString(name + "_count")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(cum, 10))
	bw.WriteByte('\n')
}
