//go:build !race

package telemetry

import "testing"

// The race detector instruments atomic operations and may allocate;
// these pins only hold (and only matter) for normal builds, mirroring
// the build tag on internal/core's alloc tests.

// TestObserveZeroAlloc pins the tentpole invariant: recording a latency
// sample on the hot path costs zero heap allocations.
func TestObserveZeroAlloc(t *testing.T) {
	h := NewHistogram()
	v := int64(1)
	if avg := testing.AllocsPerRun(1000, func() {
		h.Observe(v)
		v = (v * 31) & ((1 << 44) - 1) // wander across buckets, overflow included
	}); avg != 0 {
		t.Fatalf("Observe allocates %.1f per op, want 0", avg)
	}
}

// TestCounterGaugeZeroAlloc pins the other two handle types.
func TestCounterGaugeZeroAlloc(t *testing.T) {
	var c Counter
	var g Gauge
	if avg := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Inc()
		g.Add(-2)
	}); avg != 0 {
		t.Fatalf("counter/gauge ops allocate %.1f per op, want 0", avg)
	}
}
