package telemetry

import (
	"bufio"
	"math"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestBucketPartition pins the layout invariant every other guarantee
// rests on: the buckets partition the non-negative int64 range — each
// value lands in exactly one bucket, and that bucket's bounds contain
// it.
func TestBucketPartition(t *testing.T) {
	// Bounds must be strictly increasing with no gaps: bucket i covers
	// (upper(i-1), upper(i)].
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		up := bucketUpper(i)
		if up <= prev {
			t.Fatalf("bucket %d: upper bound %d not above previous %d", i, up, prev)
		}
		prev = up
	}
	if bucketUpper(histBuckets-1) != math.MaxInt64 {
		t.Fatalf("overflow bucket upper = %d, want MaxInt64", bucketUpper(histBuckets-1))
	}

	check := func(v int64) {
		idx := bucketIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("value %d: bucket %d out of range", v, idx)
		}
		if v > bucketUpper(idx) {
			t.Fatalf("value %d above its bucket %d upper bound %d", v, idx, bucketUpper(idx))
		}
		if idx > 0 && v <= bucketUpper(idx-1) {
			t.Fatalf("value %d at or below the previous bucket's bound %d (bucket %d)", v, bucketUpper(idx-1), idx)
		}
	}
	// Exhaustive over the linear region and the first octaves, then the
	// exact boundaries (and their neighbours) of every bucket.
	for v := int64(0); v < 4096; v++ {
		check(v)
	}
	for i := 0; i < histBuckets-1; i++ {
		up := bucketUpper(i)
		check(up)
		if up < math.MaxInt64 {
			check(up + 1)
		}
		if up > 0 {
			check(up - 1)
		}
	}
	// Random probes across the full range, overflow included.
	rng := rand.New(rand.NewPCG(1, 2))
	for n := 0; n < 100000; n++ {
		check(int64(rng.Uint64() >> uint(1+rng.IntN(40))))
	}
	check(math.MaxInt64)
	if got := bucketIndex(-5); got != 0 {
		t.Fatalf("negative values must clamp to bucket 0, got %d", got)
	}
}

// TestQuantileBrackets pins the estimate's guarantee: for any sample
// set, the reported quantile is >= the true order statistic and <= the
// next bucket boundary above it (upper bracketing with bounded relative
// error).
func TestQuantileBrackets(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for trial := 0; trial < 50; trial++ {
		h := NewHistogram()
		n := 1 + rng.IntN(5000)
		samples := make([]int64, n)
		for i := range samples {
			// Mix of magnitudes: exercise linear buckets, mid octaves
			// and large values.
			v := int64(rng.Uint64() >> uint(10+rng.IntN(50)))
			samples[i] = v
			h.Observe(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			rank := int(math.Ceil(q * float64(n)))
			if rank == 0 {
				rank = 1
			}
			truth := samples[rank-1]
			est := h.Quantile(q)
			if est < truth {
				t.Fatalf("trial %d q=%g: estimate %d below true order statistic %d", trial, q, est, truth)
			}
			// The estimate is the upper bound of the bucket holding the
			// true statistic.
			if idx := bucketIndex(truth); est > bucketUpper(idx) {
				t.Fatalf("trial %d q=%g: estimate %d beyond the true value's bucket bound %d", trial, q, est, bucketUpper(idx))
			}
		}
	}
	if NewHistogram().Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines (the -race CI step makes this a data-race proof) and
// checks that no observation is lost or double-counted.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const workers = 8
	const perWorker = 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 0))
			for i := 0; i < perWorker; i++ {
				h.Observe(int64(rng.Uint64() >> 20))
			}
		}(uint64(w))
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	s := h.Snapshot()
	var cum uint64
	for _, c := range s.Buckets {
		cum += c
	}
	if cum != workers*perWorker {
		t.Fatalf("bucket sum = %d, want %d", cum, workers*perWorker)
	}
}

// TestSnapshotSub pins the delta arithmetic the experiments rely on to
// isolate one phase from whatever the process observed before it.
func TestSnapshotSub(t *testing.T) {
	h := NewHistogram()
	h.Observe(100)
	h.Observe(1000)
	before := h.Snapshot()
	h.Observe(5)
	h.Observe(5)
	h.Observe(1 << 30)
	d := h.Snapshot().Sub(before)
	if d.Count != 3 {
		t.Fatalf("delta count = %d, want 3", d.Count)
	}
	if d.Sum != 10+(1<<30) {
		t.Fatalf("delta sum = %d", d.Sum)
	}
	if q := d.Quantile(0.5); q < 5 || q > bucketUpper(bucketIndex(5)) {
		t.Fatalf("delta median %d outside the 5ns bucket", q)
	}
}

// TestRegistryHandles pins idempotent registration and kind conflicts.
func TestRegistryHandles(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "help")
	c2 := r.Counter("x_total", "other help ignored")
	if c1 != c2 {
		t.Fatal("same name must return the same counter handle")
	}
	if r.Counter(`x_total{k="v"}`, "") == c1 {
		t.Fatal("label variant must be a distinct series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as two kinds must panic")
		}
	}()
	r.Gauge("x_total", "")
}

// TestWritePrometheus checks the exposition output: parseable lines,
// grouped HELP/TYPE headers, cumulative monotone histogram buckets
// ending at +Inf, and consistent _count.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_requests_total", "requests served").Add(7)
	r.Counter(`t_requests_total{code="5xx"}`, "").Add(2)
	r.Gauge("t_inflight", "in-flight requests").Set(3)
	h := r.Histogram("t_latency_seconds", "request latency")
	for _, v := range []int64{10, 10, 500, 1e6, 5e9} {
		h.Observe(v)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE t_requests_total counter",
		"t_requests_total 7",
		`t_requests_total{code="5xx"} 2`,
		"# TYPE t_inflight gauge",
		"t_inflight 3",
		"# TYPE t_latency_seconds histogram",
		`t_latency_seconds_bucket{le="+Inf"} 5`,
		"t_latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE t_requests_total") != 1 {
		t.Fatalf("label variants must share one TYPE header:\n%s", out)
	}

	// Histogram buckets: cumulative, monotone, boundaries ascending.
	sc := bufio.NewScanner(strings.NewReader(out))
	lastCum := uint64(0)
	lastLE := -1.0
	buckets := 0
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "t_latency_seconds_bucket{le=\"") {
			continue
		}
		buckets++
		rest := strings.TrimPrefix(line, "t_latency_seconds_bucket{le=\"")
		i := strings.Index(rest, `"}`)
		leStr, valStr := rest[:i], strings.TrimSpace(rest[i+2:])
		le := math.Inf(1)
		if leStr != "+Inf" {
			var err error
			le, err = strconv.ParseFloat(leStr, 64)
			if err != nil {
				t.Fatalf("unparseable le %q: %v", leStr, err)
			}
		}
		if le <= lastLE {
			t.Fatalf("bucket boundaries not ascending: %g after %g", le, lastLE)
		}
		lastLE = le
		cum, err := strconv.ParseUint(valStr, 10, 64)
		if err != nil {
			t.Fatalf("unparseable bucket count %q: %v", valStr, err)
		}
		if cum < lastCum {
			t.Fatalf("bucket counts not cumulative: %d after %d", cum, lastCum)
		}
		lastCum = cum
	}
	if buckets < 2 {
		t.Fatalf("expected multiple bucket lines, got %d", buckets)
	}
	if lastCum != 5 || !math.IsInf(lastLE, 1) {
		t.Fatalf("final bucket must be +Inf with the full count, got le=%g cum=%d", lastLE, lastCum)
	}
}

// TestSeriesWithLabel pins the label-splice helper both with and
// without an existing label set.
func TestSeriesWithLabel(t *testing.T) {
	if got := seriesWithLabel("x", "le", "1"); got != `x{le="1"}` {
		t.Fatalf("got %q", got)
	}
	if got := seriesWithLabel(`x{a="b"}`, "le", "1"); got != `x{a="b",le="1"}` {
		t.Fatalf("got %q", got)
	}
}
