package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram bucket layout: log-linear ("HDR-style") over non-negative
// int64 values, interpreted as nanoseconds. Values 0..15 get exact
// unit-width buckets; above that each power-of-two octave is split into
// histSub sub-buckets of equal width, so the relative width of any
// bucket is at most 1/histSub = 12.5% — tight enough that a quantile
// read off a bucket's upper bound is within one bucket width of the
// true order statistic (the property tests pin this bracketing).
//
// The layout is fixed at compile time: no configuration, no resizing,
// no pointers chased on the observation path. Observe is three atomic
// adds on pre-sized arrays — lock-free, allocation-free, and safe for
// any number of concurrent writers, which is what lets the hot repair
// and WAL paths carry a histogram without violating the repo's
// 0 alloc/op pins.
const (
	// histSub sub-buckets per octave (must be a power of two).
	histSub = 8
	// histSubBits = log2(histSub); the mantissa is the top 1+histSubBits
	// bits of the value.
	histSubBits = 3
	// histMaxExp caps the covered range at 2^histMaxExp-1 nanoseconds
	// (~73 minutes); anything larger lands in the overflow bucket. Far
	// beyond any per-request or per-stage latency this repo measures,
	// and it keeps the bucket array compact.
	histMaxExp = 42

	// histLinear exact unit buckets cover 0..histLinear-1.
	histLinear = 2 * histSub
	// histBuckets = linear region + full octaves + overflow.
	histBuckets = histLinear + (histMaxExp-histSubBits-1)*histSub + 1
)

// Histogram is a fixed-boundary log-scaled latency histogram. Create
// with NewHistogram (usually via Registry.Histogram); the zero value is
// NOT ready to use — the bucket array would be nil.
type Histogram struct {
	buckets []atomic.Uint64 // len histBuckets
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make([]atomic.Uint64, histBuckets)}
}

// bucketIndex maps a non-negative value to its bucket. Exported logic
// (not the function) is pinned by the property tests: every value lands
// in exactly one bucket and within that bucket's (lo, hi] bounds.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histLinear {
		return int(u)
	}
	e := bits.Len64(u) // u in [2^(e-1), 2^e), e >= histSubBits+2
	if e > histMaxExp {
		return histBuckets - 1
	}
	mantissa := int(u >> uint(e-histSubBits-1)) // in [histSub, 2*histSub)
	return histLinear + (e-histSubBits-2)*histSub + (mantissa - histSub)
}

// bucketUpper returns the inclusive upper bound of bucket idx in
// nanoseconds; the overflow bucket returns math.MaxInt64.
func bucketUpper(idx int) int64 {
	if idx < histLinear {
		return int64(idx)
	}
	if idx >= histBuckets-1 {
		return math.MaxInt64
	}
	b := idx - histLinear
	e := histSubBits + 2 + b/histSub
	mantissa := histSub + b%histSub
	return int64(mantissa+1)<<uint(e-histSubBits-1) - 1
}

// Observe records one value (nanoseconds). Lock-free, allocation-free,
// safe for concurrent use; negative values clamp to zero.
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values in nanoseconds.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistSnapshot is a point-in-time copy of a histogram's state, used to
// compute quantiles — either of the full history or, via Sub, of the
// observations between two snapshots (how the experiments isolate one
// benchmark phase from whatever ran before it in the process).
type HistSnapshot struct {
	Buckets []uint64
	Count   uint64
	Sum     int64
}

// Snapshot copies the histogram's current state. The copy is weakly
// consistent under concurrent writers (buckets are read one by one),
// which is fine for monitoring; take snapshots at quiescent points when
// exact counts matter.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Buckets: make([]uint64, len(h.buckets)),
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Sub returns the difference s - prev: the observations recorded
// between the two snapshots. prev must be the earlier one.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	d := HistSnapshot{
		Buckets: make([]uint64, len(s.Buckets)),
		Count:   s.Count - prev.Count,
		Sum:     s.Sum - prev.Sum,
	}
	for i := range s.Buckets {
		d.Buckets[i] = s.Buckets[i]
		if i < len(prev.Buckets) {
			d.Buckets[i] -= prev.Buckets[i]
		}
	}
	return d
}

// Quantile estimates the q-th quantile (0..1) in nanoseconds: the upper
// bound of the bucket holding the ceil(q*count)-th observation. The
// estimate is an upper bracket of the true order statistic, and the
// bucket's lower bound a lower bracket; with 12.5%-wide buckets the
// relative error is bounded accordingly. Returns 0 on an empty
// snapshot.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(len(s.Buckets) - 1)
}

// Quantile is Snapshot().Quantile(q): an estimate over the histogram's
// whole history.
func (h *Histogram) Quantile(q float64) int64 {
	return h.Snapshot().Quantile(q)
}
