package server

import (
	"net/http"
	"strconv"
	"time"

	"github.com/discdiversity/disc/internal/telemetry"
)

// Request metrics. Per-route series are registered once, when Handler
// wires the mux — the serving path only resolves a status class to a
// pre-registered counter and feeds one histogram, so instrumentation
// adds no per-request registry locking or label formatting.
var (
	metInflight = telemetry.Default().Gauge("disc_http_inflight_requests",
		"Requests currently being served (admitted, not yet responded).")
	metShed = telemetry.Default().Counter("disc_http_shed_total",
		"Requests shed with 503 by the admission limiter since process start.")
	metPanics = telemetry.Default().Counter("disc_http_panics_total",
		"Handler panics recovered into 500 responses since process start.")
	metBodyCap = telemetry.Default().Counter("disc_http_body_cap_rejections_total",
		"Request bodies rejected for exceeding the configured size cap.")
	metNotReady = telemetry.Default().Counter("disc_http_not_ready_total",
		"Requests refused with 503 while the server was still recovering.")
)

// statusClasses are the code label values, indexed by status/100 - 2.
var statusClasses = [...]string{"2xx", "3xx", "4xx", "5xx"}

// routeMetrics holds the pre-registered series of one route.
type routeMetrics struct {
	codes   [len(statusClasses)]*telemetry.Counter
	latency *telemetry.Histogram
}

// newRouteMetrics registers the per-route series. The route label is
// the mux pattern (wildcards included), so cardinality is the route
// count, not the URL space.
func newRouteMetrics(method, route string) *routeMetrics {
	rm := &routeMetrics{}
	reg := telemetry.Default()
	for i, class := range statusClasses {
		rm.codes[i] = reg.Counter(
			`disc_http_requests_total{route="`+route+`",method="`+method+`",code="`+class+`"}`,
			"Requests served, by route, method and status class.")
	}
	rm.latency = reg.Histogram(`disc_http_request_seconds{route="`+route+`"}`,
		"Wall time from handler entry to response completion, by route.")
	return rm
}

// observe records one served request.
func (rm *routeMetrics) observe(status int, d time.Duration) {
	i := status/100 - 2
	if i < 0 || i >= len(statusClasses) {
		i = len(statusClasses) - 1 // 1xx cannot happen here; bucket as 5xx
	}
	rm.codes[i].Inc()
	rm.latency.Observe(d.Nanoseconds())
}

// statusWriter records the response status for metrics and access logs.
// Unwrap keeps http.NewResponseController working through it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// instrument wraps one routed handler with its per-route series and the
// debug-level access log: status class and latency per request, plus
// method/path/status/duration/request id fields when access logging is
// enabled.
func (s *Server) instrument(method, route string, h http.HandlerFunc) http.Handler {
	rm := newRouteMetrics(method, route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		d := time.Since(start)
		rm.observe(sw.status, d)
		s.logger().Debug("request",
			"method", r.Method,
			"route", route,
			"path", r.URL.Path,
			"status", sw.status,
			"duration_ms", float64(d)/float64(time.Millisecond),
			"request_id", requestIDFrom(r))
	})
}

// handleMetrics renders the process-wide registry in the Prometheus
// text exposition format. Routed around the hardening chain (like the
// health probes): a scrape must succeed even when the server is shedding
// load — that is exactly when the numbers matter.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", telemetry.ContentType)
	_ = telemetry.Default().WritePrometheus(w)
}

// requestIDKey is the context key carrying the per-request id.
type requestIDKey struct{}

// requestIDFrom returns the id assigned by the requestID middleware, or
// "" for requests that bypassed it (health probes, direct tests).
func requestIDFrom(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey{}).(string)
	return id
}

// formatRequestID renders a request counter value as the log/header id.
func formatRequestID(n uint64) string {
	return "r" + strconv.FormatUint(n, 10)
}
