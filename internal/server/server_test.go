package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New().Handler())
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("%s %s: status %d, want %d (%v)", method, url, resp.StatusCode, wantStatus, e)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func uploadPoints(t *testing.T, ts *httptest.Server, name string, n int) {
	t.Helper()
	rng := rand.New(rand.NewPCG(1, 1))
	points := make([][]float64, n)
	labels := make([]string, n)
	for i := range points {
		points[i] = []float64{rng.Float64(), rng.Float64()}
		labels[i] = fmt.Sprintf("obj-%d", i)
	}
	doJSON(t, "POST", ts.URL+"/v1/datasets",
		map[string]any{"name": name, "metric": "euclidean", "points": points, "labels": labels},
		http.StatusCreated, nil)
}

type result struct {
	ID        string   `json:"id"`
	Dataset   string   `json:"dataset"`
	Radius    float64  `json:"radius"`
	Algorithm string   `json:"algorithm"`
	Size      int      `json:"size"`
	IDs       []int    `json:"ids"`
	Labels    []string `json:"labels"`
	Accesses  int64    `json:"accesses"`
}

func TestDatasetLifecycle(t *testing.T) {
	ts := newTestServer(t)
	uploadPoints(t, ts, "demo", 200)

	var list []map[string]any
	doJSON(t, "GET", ts.URL+"/v1/datasets", nil, http.StatusOK, &list)
	if len(list) != 1 || list[0]["name"] != "demo" {
		t.Fatalf("list = %v", list)
	}
	var info map[string]any
	doJSON(t, "GET", ts.URL+"/v1/datasets/demo", nil, http.StatusOK, &info)
	if info["size"].(float64) != 200 || info["dim"].(float64) != 2 {
		t.Fatalf("info = %v", info)
	}
	// Duplicate name conflicts.
	doJSON(t, "POST", ts.URL+"/v1/datasets",
		map[string]any{"name": "demo", "points": [][]float64{{0, 0}}},
		http.StatusConflict, nil)
	// Unknown dataset 404s.
	doJSON(t, "GET", ts.URL+"/v1/datasets/nope", nil, http.StatusNotFound, nil)
}

func TestCreateDatasetValidation(t *testing.T) {
	ts := newTestServer(t)
	cases := []map[string]any{
		{"points": [][]float64{{1, 2}}}, // no name
		{"name": "a"},                   // no points
		{"name": "a", "points": [][]float64{{1, 2}}, "metric": "warp"},             // bad metric
		{"name": "a", "points": [][]float64{{1, 2}}, "labels": []string{"x", "y"}}, // label mismatch
		{"name": "a", "points": [][]float64{{1, 2}, {1}}},                          // ragged
	}
	for i, c := range cases {
		doJSON(t, "POST", ts.URL+"/v1/datasets", c, http.StatusBadRequest, nil)
		_ = i
	}
}

func TestSelectAndFetch(t *testing.T) {
	ts := newTestServer(t)
	uploadPoints(t, ts, "demo", 300)

	var res result
	doJSON(t, "POST", ts.URL+"/v1/datasets/demo/select",
		map[string]any{"radius": 0.15}, http.StatusCreated, &res)
	if res.Size == 0 || res.Size != len(res.IDs) || res.Radius != 0.15 {
		t.Fatalf("result %+v", res)
	}
	if len(res.Labels) != res.Size || res.Labels[0] == "" {
		t.Fatalf("labels missing: %+v", res.Labels)
	}
	var again result
	doJSON(t, "GET", ts.URL+"/v1/results/"+res.ID, nil, http.StatusOK, &again)
	if again.Size != res.Size || again.ID != res.ID {
		t.Fatalf("refetch mismatch: %+v vs %+v", again, res)
	}
	// Unknown algorithm and bad radius.
	doJSON(t, "POST", ts.URL+"/v1/datasets/demo/select",
		map[string]any{"radius": 0.1, "algorithm": "quantum"}, http.StatusBadRequest, nil)
	doJSON(t, "POST", ts.URL+"/v1/datasets/demo/select",
		map[string]any{"radius": -0.1}, http.StatusBadRequest, nil)
	doJSON(t, "GET", ts.URL+"/v1/results/r999", nil, http.StatusNotFound, nil)
}

func TestSelectAllAlgorithms(t *testing.T) {
	ts := newTestServer(t)
	uploadPoints(t, ts, "demo", 150)
	for _, alg := range []string{"greedy", "basic", "white-greedy", "lazy-grey", "lazy-white", "coverage", "fast-coverage"} {
		var res result
		doJSON(t, "POST", ts.URL+"/v1/datasets/demo/select",
			map[string]any{"radius": 0.2, "algorithm": alg}, http.StatusCreated, &res)
		if res.Size == 0 {
			t.Errorf("%s: empty result", alg)
		}
	}
}

func TestZoomFlow(t *testing.T) {
	ts := newTestServer(t)
	uploadPoints(t, ts, "demo", 400)

	var initial result
	doJSON(t, "POST", ts.URL+"/v1/datasets/demo/select",
		map[string]any{"radius": 0.2}, http.StatusCreated, &initial)

	// Zoom in: superset of the initial representatives.
	var finer result
	doJSON(t, "POST", ts.URL+"/v1/results/"+initial.ID+"/zoom",
		map[string]any{"radius": 0.1}, http.StatusCreated, &finer)
	if finer.Size < initial.Size || finer.Radius != 0.1 {
		t.Fatalf("zoom-in shrank: %+v", finer)
	}
	kept := make(map[int]bool)
	for _, id := range finer.IDs {
		kept[id] = true
	}
	for _, id := range initial.IDs {
		if !kept[id] {
			t.Errorf("representative %d dropped by zoom-in", id)
		}
	}
	// Zoom out from the finer result.
	var coarser result
	doJSON(t, "POST", ts.URL+"/v1/results/"+finer.ID+"/zoom",
		map[string]any{"radius": 0.3}, http.StatusCreated, &coarser)
	if coarser.Size > finer.Size {
		t.Fatalf("zoom-out grew: %+v", coarser)
	}
	// Equal radius is a client error.
	doJSON(t, "POST", ts.URL+"/v1/results/"+finer.ID+"/zoom",
		map[string]any{"radius": 0.1}, http.StatusBadRequest, nil)
	// Zooming a coverage-only result is rejected.
	var cov result
	doJSON(t, "POST", ts.URL+"/v1/datasets/demo/select",
		map[string]any{"radius": 0.2, "algorithm": "coverage"}, http.StatusCreated, &cov)
	doJSON(t, "POST", ts.URL+"/v1/results/"+cov.ID+"/zoom",
		map[string]any{"radius": 0.1}, http.StatusBadRequest, nil)
}

func TestLocalZoomFlow(t *testing.T) {
	ts := newTestServer(t)
	uploadPoints(t, ts, "demo", 400)
	var initial result
	doJSON(t, "POST", ts.URL+"/v1/datasets/demo/select",
		map[string]any{"radius": 0.25}, http.StatusCreated, &initial)

	var lz map[string]any
	doJSON(t, "POST", ts.URL+"/v1/results/"+initial.ID+"/localzoom",
		map[string]any{"center": initial.IDs[0], "radius": 0.08}, http.StatusOK, &lz)
	if lz["center"].(float64) != float64(initial.IDs[0]) {
		t.Fatalf("local zoom %v", lz)
	}
	reps := lz["representatives"].([]any)
	if len(reps) < initial.Size {
		t.Fatalf("local zoom-in lost representatives: %v", lz)
	}
	// Non-representative centre is a client error.
	nonRep := -1
	sel := make(map[int]bool)
	for _, id := range initial.IDs {
		sel[id] = true
	}
	for i := 0; i < 400; i++ {
		if !sel[i] {
			nonRep = i
			break
		}
	}
	doJSON(t, "POST", ts.URL+"/v1/results/"+initial.ID+"/localzoom",
		map[string]any{"center": nonRep, "radius": 0.08}, http.StatusBadRequest, nil)
}

func TestHammingDatasetOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	doJSON(t, "POST", ts.URL+"/v1/datasets",
		map[string]any{
			"name":   "cams",
			"metric": "hamming",
			"points": [][]float64{{0, 0, 0}, {0, 0, 1}, {1, 1, 1}, {2, 2, 2}},
		},
		http.StatusCreated, nil)
	var res result
	doJSON(t, "POST", ts.URL+"/v1/datasets/cams/select",
		map[string]any{"radius": 1}, http.StatusCreated, &res)
	if res.Size < 2 {
		t.Fatalf("hamming select: %+v", res)
	}
}

func TestMalformedJSON(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", bytes.NewBufferString("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	var body map[string]any
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, &body)
	if body["status"] != "ok" {
		t.Fatalf("healthz = %v", body)
	}
}

func TestSnapshotSaveDisabledWithoutDir(t *testing.T) {
	ts := newTestServer(t)
	uploadPoints(t, ts, "demo", 50)
	doJSON(t, "POST", ts.URL+"/v1/datasets/demo/snapshot", nil, http.StatusBadRequest, nil)
}

// TestSnapshotSaveAndWarmStart: POST /snapshot must persist a loadable
// .discsnap whose warm-started dataset selects identically to the
// original.
func TestSnapshotSaveAndWarmStart(t *testing.T) {
	dir := t.TempDir()
	srv := New(WithSnapshotDir(dir))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	uploadPoints(t, ts, "demo", 200)

	var before result
	doJSON(t, "POST", ts.URL+"/v1/datasets/demo/select",
		map[string]any{"radius": 0.15}, http.StatusCreated, &before)

	var saved map[string]any
	doJSON(t, "POST", ts.URL+"/v1/datasets/demo/snapshot", nil, http.StatusCreated, &saved)
	path, _ := saved["path"].(string)
	if path == "" || saved["bytes"].(float64) <= 0 {
		t.Fatalf("snapshot response %v", saved)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	warm := New()
	wts := httptest.NewServer(warm.Handler())
	t.Cleanup(wts.Close)
	if err := warm.LoadSnapshot("demo", f); err != nil {
		t.Fatal(err)
	}
	var info map[string]any
	doJSON(t, "GET", wts.URL+"/v1/datasets/demo", nil, http.StatusOK, &info)
	if info["size"].(float64) != 200 {
		t.Fatalf("warm dataset info %v", info)
	}
	var after result
	doJSON(t, "POST", wts.URL+"/v1/datasets/demo/select",
		map[string]any{"radius": 0.15}, http.StatusCreated, &after)
	if len(after.IDs) != len(before.IDs) {
		t.Fatalf("warm selection size %d, want %d", after.Size, before.Size)
	}
	for i := range after.IDs {
		if after.IDs[i] != before.IDs[i] {
			t.Fatalf("warm selection diverges at %d", i)
		}
	}
	// Unknown dataset 404s; duplicate warm load conflicts.
	doJSON(t, "POST", ts.URL+"/v1/datasets/nope/snapshot", nil, http.StatusNotFound, nil)
	if err := warm.LoadSnapshot("demo", bytes.NewReader(nil)); err == nil {
		t.Fatal("duplicate/garbage warm load accepted")
	}
}

// TestDatasetNameValidation: names become snapshot file names, so
// separators and dot-names must be rejected at creation and warm start.
func TestDatasetNameValidation(t *testing.T) {
	ts := newTestServer(t)
	for _, name := range []string{"a/b", "..", ".", "../escape", "c\\d"} {
		doJSON(t, "POST", ts.URL+"/v1/datasets",
			map[string]any{"name": name, "points": [][]float64{{0, 0}, {1, 1}}},
			http.StatusBadRequest, nil)
	}
	srv := New()
	if err := srv.LoadSnapshot("a/b", bytes.NewReader(nil)); err == nil {
		t.Fatal("warm start accepted a path-separator name")
	}
}

type liveInfoBody struct {
	Name     string  `json:"name"`
	Metric   string  `json:"metric"`
	Radius   float64 `json:"radius"`
	Dim      int     `json:"dim"`
	Live     int     `json:"live"`
	Selected int     `json:"selected"`
	Pending  int     `json:"pending"`
}

type liveMutation struct {
	ID       int  `json:"id"`
	Selected bool `json:"selected"`
	Live     int  `json:"live"`
	Size     int  `json:"size"`
	Pending  int  `json:"pending"`
}

type liveSelection struct {
	Size    int   `json:"size"`
	Pending int   `json:"pending"`
	IDs     []int `json:"ids"`
}

// TestLiveLifecycle drives the incremental maintainer over HTTP:
// bounded-stale mutations, the flush barrier, per-op convergence, and
// retraction of a representative.
func TestLiveLifecycle(t *testing.T) {
	ts := newTestServer(t)

	var info liveInfoBody
	doJSON(t, "POST", ts.URL+"/v1/live",
		map[string]any{"name": "feed", "radius": 0.1, "points": [][]float64{{0.5, 0.5}}},
		http.StatusCreated, &info)
	if info.Live != 1 || info.Selected != 1 || info.Pending != 0 {
		t.Fatalf("seeded maintainer: %+v", info)
	}

	// Duplicate name conflicts.
	doJSON(t, "POST", ts.URL+"/v1/live",
		map[string]any{"name": "feed", "radius": 0.1}, http.StatusConflict, nil)

	// Bounded-stale insert: the new point is live but unpublished.
	var mut liveMutation
	doJSON(t, "POST", ts.URL+"/v1/live/feed/insert",
		map[string]any{"point": []float64{0.9, 0.9}}, http.StatusCreated, &mut)
	if mut.ID != 1 || mut.Selected || mut.Live != 2 || mut.Size != 1 || mut.Pending != 1 {
		t.Fatalf("stale insert: %+v", mut)
	}
	var sel liveSelection
	doJSON(t, "GET", ts.URL+"/v1/live/feed/selection", nil, http.StatusOK, &sel)
	if sel.Size != 1 || sel.Pending != 1 {
		t.Fatalf("stale selection: %+v", sel)
	}

	// Flush converges: the far-away point becomes a representative.
	var fl struct {
		Repaired int `json:"repaired"`
		Size     int `json:"size"`
		Pending  int `json:"pending"`
	}
	doJSON(t, "POST", ts.URL+"/v1/live/feed/flush", nil, http.StatusOK, &fl)
	if fl.Repaired != 1 || fl.Size != 2 || fl.Pending != 0 {
		t.Fatalf("flush: %+v", fl)
	}

	// Per-op convergence: a covered insert stays unselected.
	doJSON(t, "POST", ts.URL+"/v1/live/feed/insert",
		map[string]any{"point": []float64{0.52, 0.5}, "flush": true}, http.StatusCreated, &mut)
	if mut.Selected || mut.Size != 2 || mut.Pending != 0 {
		t.Fatalf("converged covered insert: %+v", mut)
	}

	// Deleting a representative promotes its covered neighbour.
	doJSON(t, "POST", ts.URL+"/v1/live/feed/delete",
		map[string]any{"id": 0, "flush": true}, http.StatusOK, &mut)
	if mut.Live != 2 || mut.Size != 2 || mut.Pending != 0 {
		t.Fatalf("delete representative: %+v", mut)
	}
	doJSON(t, "GET", ts.URL+"/v1/live/feed/selection", nil, http.StatusOK, &sel)
	if sel.Size != 2 || sel.IDs[0] != 1 || sel.IDs[1] != 2 {
		t.Fatalf("promoted selection: %+v", sel)
	}

	// Double delete is a client error.
	doJSON(t, "POST", ts.URL+"/v1/live/feed/delete",
		map[string]any{"id": 0}, http.StatusBadRequest, nil)

	var infos []liveInfoBody
	doJSON(t, "GET", ts.URL+"/v1/live", nil, http.StatusOK, &infos)
	if len(infos) != 1 || infos[0].Live != 2 {
		t.Fatalf("list: %+v", infos)
	}
	doJSON(t, "GET", ts.URL+"/v1/live/feed", nil, http.StatusOK, &info)
	if info.Dim != 2 || info.Live != 2 {
		t.Fatalf("info: %+v", info)
	}
}

func TestLiveValidation(t *testing.T) {
	ts := newTestServer(t)
	// Non-grid metric cannot ride the incremental path.
	doJSON(t, "POST", ts.URL+"/v1/live",
		map[string]any{"name": "h", "radius": 1.0, "metric": "hamming"},
		http.StatusBadRequest, nil)
	// Negative radius.
	doJSON(t, "POST", ts.URL+"/v1/live",
		map[string]any{"name": "n", "radius": -0.5}, http.StatusBadRequest, nil)
	// Unknown maintainer.
	doJSON(t, "POST", ts.URL+"/v1/live/ghost/insert",
		map[string]any{"point": []float64{0.1}}, http.StatusNotFound, nil)
	// Dimension mismatch after the first insert fixes it.
	doJSON(t, "POST", ts.URL+"/v1/live",
		map[string]any{"name": "d", "radius": 0.1}, http.StatusCreated, nil)
	doJSON(t, "POST", ts.URL+"/v1/live/d/insert",
		map[string]any{"point": []float64{0.1, 0.2}}, http.StatusCreated, nil)
	doJSON(t, "POST", ts.URL+"/v1/live/d/insert",
		map[string]any{"point": []float64{0.1}}, http.StatusBadRequest, nil)
}

// TestLiveConcurrentMutations races parallel first inserts, deletes and
// info reads against a fresh maintainer; under -race (make test) this
// pins the handlers to the updater's own synchronisation — the server
// must not cache mutable maintainer state of its own (the old ls.dim
// cache was written unlocked by concurrent first inserts).
func TestLiveConcurrentMutations(t *testing.T) {
	ts := newTestServer(t)
	doJSON(t, "POST", ts.URL+"/v1/live",
		map[string]any{"name": "c", "radius": 0.1}, http.StatusCreated, nil)
	post := func(path string, body any) (int, error) {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return 0, err
		}
		resp, err := http.Post(ts.URL+path, "application/json", &buf)
		if err != nil {
			return 0, err
		}
		var mut liveMutation
		err = json.NewDecoder(resp.Body).Decode(&mut)
		resp.Body.Close()
		return mut.ID, err
	}
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			rng := rand.New(rand.NewPCG(uint64(w), 5))
			for i := 0; i < 20; i++ {
				id, err := post("/v1/live/c/insert", map[string]any{
					"point": []float64{rng.Float64(), rng.Float64()},
					"flush": i%5 == 0,
				})
				if err != nil {
					errc <- err
					return
				}
				if resp, err := http.Get(ts.URL + "/v1/live/c"); err != nil {
					errc <- err
					return
				} else {
					resp.Body.Close()
				}
				if i%3 == 0 {
					if _, err := post("/v1/live/c/delete", map[string]any{"id": id}); err != nil {
						errc <- err
						return
					}
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	var info liveInfoBody
	doJSON(t, "POST", ts.URL+"/v1/live/c/flush", nil, http.StatusOK, nil)
	doJSON(t, "GET", ts.URL+"/v1/live/c", nil, http.StatusOK, &info)
	if info.Dim != 2 {
		t.Fatalf("dim %d after concurrent inserts, want 2", info.Dim)
	}
	if info.Pending != 0 {
		t.Fatalf("pending %d after flush", info.Pending)
	}
}

// TestCosineFloat32DatasetOverHTTP: an embedding-style workload —
// cosine metric, float32 precision — must upload and select end to end
// (the library routes it to the flat-joined coverage graph), and
// unknown precision names must be rejected at upload.
func TestCosineFloat32DatasetOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	rng := rand.New(rand.NewPCG(77, 78))
	pts := make([][]float64, 120)
	for i := range pts {
		p := make([]float64, 8)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		pts[i] = p
	}
	var info map[string]any
	doJSON(t, "POST", ts.URL+"/v1/datasets",
		map[string]any{"name": "emb", "metric": "cosine", "precision": "float32", "points": pts},
		http.StatusCreated, &info)
	if info["metric"] != "cosine" {
		t.Fatalf("info = %v", info)
	}
	var res result
	doJSON(t, "POST", ts.URL+"/v1/datasets/emb/select",
		map[string]any{"radius": 0.3}, http.StatusCreated, &res)
	if res.Size == 0 || res.Size != len(res.IDs) {
		t.Fatalf("result %+v", res)
	}
	doJSON(t, "POST", ts.URL+"/v1/datasets",
		map[string]any{"name": "bad", "precision": "float16", "points": pts},
		http.StatusBadRequest, nil)
}
