package server

import (
	"context"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"
)

// chain wraps the API mux with the hardening layers, outermost first:
//
//	request id → recover → readiness → admission → inflight gauge →
//	body limit → per-request timeout → mux
//
// Request ids are assigned outermost so even a panic or a shed request
// logs with an id. Panic recovery wraps everything below it so a panic
// anywhere — including in the other layers — turns into a 500 on that
// one connection instead of killing the process. The readiness gate
// sits above admission: while boot-time WAL recovery is replaying, every
// API request is refused outright rather than queued against state that
// is still being rebuilt. Admission sits above the timeout so a shed
// request costs a map lookup and a 503, never a handler goroutine.
// /healthz, /readyz and /metrics are routed around the whole chain (see
// Handler): probes and scrapes must answer even when the server is at
// capacity.
func (s *Server) chain(h http.Handler) http.Handler {
	if s.requestTimeout > 0 {
		h = deadline(h, s.requestTimeout)
	}
	if s.maxBodyBytes > 0 {
		h = limitBody(h, s.maxBodyBytes)
	}
	h = trackInflight(h)
	if s.maxInflight > 0 {
		h = admit(h, s.maxInflight)
	}
	h = s.gateReady(h)
	return s.requestID(s.recoverPanics(h))
}

// requestID assigns each request a process-unique id, carried in the
// context for log correlation and echoed in the X-Request-Id response
// header so clients can quote it.
func (s *Server) requestID(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := formatRequestID(s.reqSeq.Add(1))
		w.Header().Set("X-Request-Id", id)
		h.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id)))
	})
}

// recoverPanics converts a handler panic into a 500 for that request
// and keeps the process serving. http.ErrAbortHandler is re-raised: it
// is the sanctioned way to drop a connection, not a defect.
func (s *Server) recoverPanics(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &sentinelWriter{ResponseWriter: w}
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			metPanics.Inc()
			s.logger().Error("panic serving request",
				"method", r.Method,
				"route", r.URL.Path,
				"request_id", requestIDFrom(r),
				"panic", p,
				"stack", string(debug.Stack()))
			if !sw.wrote {
				writeError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		h.ServeHTTP(sw, r)
	})
}

// gateReady refuses API requests with 503 while the server is still
// recovering (see SetReady): a load balancer watching /readyz should
// never have routed them here, but one that did must not observe
// half-replayed state.
func (s *Server) gateReady(h http.Handler) http.Handler {
	retryAfter := strconv.Itoa(int(retryAfterHint / time.Second))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			metNotReady.Inc()
			w.Header().Set("Retry-After", retryAfter)
			writeError(w, http.StatusServiceUnavailable, "server is recovering; not ready")
			return
		}
		h.ServeHTTP(w, r)
	})
}

// sentinelWriter records whether the response has started, so the
// panic handler knows if a 500 can still be written.
type sentinelWriter struct {
	http.ResponseWriter
	wrote bool
}

func (sw *sentinelWriter) WriteHeader(status int) {
	sw.wrote = true
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *sentinelWriter) Write(p []byte) (int, error) {
	sw.wrote = true
	return sw.ResponseWriter.Write(p)
}

// Unwrap lets http.NewResponseController reach through to the real
// writer — without it the deadline layer's SetReadDeadline would be
// silently unsupported.
func (sw *sentinelWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// trackInflight maintains the in-flight gauge for every admitted API
// request, whether or not admission shedding is configured. It sits
// just inside admit, so shed requests never count as in flight.
func trackInflight(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		metInflight.Inc()
		defer metInflight.Dec()
		h.ServeHTTP(w, r)
	})
}

// admit bounds the number of in-flight requests with a counting
// semaphore; excess requests are shed immediately with 503 and a
// Retry-After hint rather than queued, so a burst degrades into fast
// failures instead of a pile of blocked goroutines.
func admit(h http.Handler, max int) http.Handler {
	sem := make(chan struct{}, max)
	retryAfter := strconv.Itoa(int(retryAfterHint / time.Second))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			h.ServeHTTP(w, r)
		default:
			metShed.Inc()
			w.Header().Set("Retry-After", retryAfter)
			writeError(w, http.StatusServiceUnavailable, "server at capacity (%d requests in flight)", max)
		}
	})
}

// deadline bounds each request's wall-clock time three ways: the
// connection's read and write deadlines are set, so a client that
// stalls its upload (or stops draining the response) gets an I/O error
// through the handler's normal decode path instead of pinning a
// goroutine forever, and the request context carries the same deadline
// for downstream work. Deliberately NOT http.TimeoutHandler: running
// the handler in a second goroutine while the connection owner
// finishes the request races with in-progress body reads — a stalled
// client could deadlock the connection, the exact failure mode this
// layer exists to prevent.
func deadline(h http.Handler, d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rc := http.NewResponseController(w)
		dl := time.Now().Add(d)
		// Errors mean the underlying writer has no deadline support
		// (ErrNotSupported); the context deadline below still applies.
		// The write deadline gets a second period: a request that times
		// out reading its body still needs the error response flushed
		// after the read deadline has already passed.
		_ = rc.SetReadDeadline(dl)
		_ = rc.SetWriteDeadline(dl.Add(d))
		ctx, cancel := context.WithDeadline(r.Context(), dl)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

// retryAfterHint is the Retry-After value sent with shed requests:
// long enough to thin a synchronized burst, short enough that a
// briefly-saturated server recovers its clients quickly.
const retryAfterHint = 1 * time.Second

// limitBody caps request bodies on mutating methods.
// http.MaxBytesReader makes the JSON decoders in the handlers fail
// with a clear error (mapped to 400 by their normal error paths) and
// closes the connection so an oversized upload stops mid-transfer
// instead of being read to the end.
func limitBody(h http.Handler, max int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost, http.MethodPut, http.MethodPatch:
			r.Body = http.MaxBytesReader(w, r.Body, max)
		}
		h.ServeHTTP(w, r)
	})
}
