package server

// Chaos properties: randomized multi-dataset fault sweeps over the HTTP
// surface. The invariant under test is fault isolation — while one
// dataset's disk misbehaves (EIO mid-append, failed fsync, torn write,
// ENOSPC during checkpoint, unreadable files at boot, flipped bits),
// every other dataset keeps serving with zero errors, and the faulted
// dataset either recovers bit-identical to its acknowledged prefix or
// quarantines loudly. Run via `make chaos-props` (CI runs it under
// -race).

import (
	"bytes"
	"encoding/json"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"testing"
	"time"

	disc "github.com/discdiversity/disc"
	"github.com/discdiversity/disc/internal/faultio"
)

const chaosRadius = 2.0

// chaosEnv is one multi-dataset serving environment under fault
// injection: a durable server over a DirFS, plus the book-keeping the
// bit-identity check needs (every acknowledged insert, in order, per
// dataset).
type chaosEnv struct {
	t   *testing.T
	dir string
	fs  *faultio.DirFS
	srv *Server
	ts  *httptest.Server

	mu            sync.Mutex
	acked         map[string][]disc.Point
	indeterminate map[string][]disc.Point // 503'd mid-append: may or may not have reached disk
	seq           int
}

func newChaosEnv(t *testing.T, names ...string) *chaosEnv {
	t.Helper()
	e := &chaosEnv{
		t:             t,
		dir:           t.TempDir(),
		fs:            faultio.NewDirFS(),
		acked:         make(map[string][]disc.Point),
		indeterminate: make(map[string][]disc.Point),
	}
	e.srv = New(
		WithLiveDir(e.dir),
		WithStorageFS(e.fs),
		WithRecoveryBackoff(5*time.Millisecond, 50*time.Millisecond, 4),
	)
	e.ts = httptest.NewServer(e.srv.Handler())
	t.Cleanup(e.ts.Close)
	for i, name := range names {
		pts := make([][]float64, 8)
		for j := range pts {
			pts[j] = []float64{float64(j) * 2.5, float64(i) * 100}
		}
		doJSON(t, "POST", e.ts.URL+"/v1/live",
			map[string]any{"name": name, "radius": chaosRadius, "points": pts}, http.StatusCreated, nil)
		for _, p := range pts {
			e.acked[name] = append(e.acked[name], disc.Point(p))
		}
	}
	return e
}

// nextPoint hands out a fresh, well-separated point (deterministic:
// chaos runs must reproduce).
func (e *chaosEnv) nextPoint(name string) disc.Point {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.seq++
	return disc.Point{float64(1000+e.seq) * 2.5, float64(len(name)) * 1000}
}

// insert posts one point and classifies the outcome: acknowledged
// (201, recorded for the bit-identity check), indeterminate (503 from
// a storage fault — the append may or may not have reached disk), or
// unavailable (503 while loading/degraded/quarantined: never applied).
// Any other status fails the test.
func (e *chaosEnv) insert(name string) (status string) {
	e.t.Helper()
	p := e.nextPoint(name)
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(map[string]any{"point": []float64(p)}); err != nil {
		e.t.Fatal(err)
	}
	resp, err := http.Post(e.ts.URL+"/v1/live/"+name+"/insert", "application/json", &buf)
	if err != nil {
		e.t.Fatalf("insert %s: %v", name, err)
	}
	defer resp.Body.Close()
	var body struct {
		State string `json:"state"`
		Error string `json:"error"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&body)
	switch resp.StatusCode {
	case http.StatusCreated:
		e.mu.Lock()
		e.acked[name] = append(e.acked[name], p)
		e.mu.Unlock()
		return "acked"
	case http.StatusServiceUnavailable:
		if resp.Header.Get("Retry-After") == "" {
			e.t.Fatalf("503 on insert %s without Retry-After", name)
		}
		if body.State != "" {
			return "unavailable" // loading/degraded/quarantined: never applied
		}
		e.mu.Lock()
		e.indeterminate[name] = append(e.indeterminate[name], p)
		e.mu.Unlock()
		return "indeterminate"
	default:
		e.t.Fatalf("insert %s: status %d (%s)", name, resp.StatusCode, body.Error)
		return ""
	}
}

// state fetches the dataset's lifecycle state via its info endpoint
// (which answers 200 in every state).
func (e *chaosEnv) state(name string) string {
	e.t.Helper()
	var info struct {
		State string `json:"state"`
	}
	doJSON(e.t, "GET", e.ts.URL+"/v1/live/"+name, nil, http.StatusOK, &info)
	return info.State
}

func (e *chaosEnv) waitReady(name string) {
	e.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if e.state(name) == "ready" {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	e.t.Fatalf("dataset %q never returned to ready (state %s)", name, e.state(name))
}

// selection flushes and fetches the published selection ids.
func (e *chaosEnv) selection(name string) []int {
	e.t.Helper()
	doJSON(e.t, "POST", e.ts.URL+"/v1/live/"+name+"/flush", nil, http.StatusOK, nil)
	var sel liveSelection
	doJSON(e.t, "GET", e.ts.URL+"/v1/live/"+name+"/selection", nil, http.StatusOK, &sel)
	return sel.IDs
}

// replaySelection rebuilds the reference state by replaying ops
// one-by-one on a fresh in-memory updater — exactly what WAL recovery
// does — and returns its selection.
func replaySelection(t *testing.T, pts []disc.Point) []int {
	t.Helper()
	u, err := disc.NewUpdater(nil, chaosRadius)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if _, err := u.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	u.Flush()
	return u.Selection()
}

func sortedCopy(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}

func idsEqual(a, b []int) bool {
	a, b = sortedCopy(a), sortedCopy(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// verifyAckedPrefix asserts the dataset's served state is the replay of
// its acknowledged prefix. A single indeterminate op (its 503'd append
// may have reached disk before the fault — e.g. a failed fsync after a
// complete write) is accepted IF present as acked+indeterminate; every
// other shape fails.
func (e *chaosEnv) verifyAckedPrefix(name string) {
	e.t.Helper()
	got := e.selection(name)
	e.mu.Lock()
	acked := append([]disc.Point(nil), e.acked[name]...)
	indet := append([]disc.Point(nil), e.indeterminate[name]...)
	e.mu.Unlock()
	if idsEqual(got, replaySelection(e.t, acked)) {
		return
	}
	for i := range indet {
		withIndet := append(append([]disc.Point(nil), acked...), indet[:i+1]...)
		if idsEqual(got, replaySelection(e.t, withIndet)) {
			// The indeterminate suffix survived on disk: it is now part of
			// the durable history, so future identity checks must count it.
			e.mu.Lock()
			e.acked[name] = withIndet
			e.indeterminate[name] = nil
			e.mu.Unlock()
			return
		}
	}
	e.t.Fatalf("dataset %q selection %v matches neither acked prefix %v nor any indeterminate extension",
		name, got, replaySelection(e.t, acked))
}

// hammer drives reads and writes against datasets that must stay
// healthy while a fault plays elsewhere. Stop it with the returned
// func; any error observed fails the test (zero-error requirement).
func (e *chaosEnv) hammer(names ...string) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(e.ts.URL + "/v1/live/" + name + "/selection")
				if err != nil {
					e.t.Errorf("healthy dataset %q read failed: %v", name, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					e.t.Errorf("healthy dataset %q selection: status %d, want 200", name, resp.StatusCode)
					return
				}
				if i%3 == 0 {
					if st := e.insert(name); st != "acked" {
						e.t.Errorf("healthy dataset %q insert outcome %q, want acked", name, st)
						return
					}
				}
			}
		}(name)
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}

// runTransientFault is the shared transient-fault scenario: arm one
// fault against alpha's WAL, mutate alpha until the fault lands, and
// require (a) beta and gamma serve with zero errors throughout, (b)
// alpha returns to ready, (c) alpha's state is bit-identical to the
// replay of its acknowledged prefix, (d) alpha accepts writes again.
func runTransientFault(t *testing.T, rule *faultio.Rule) {
	e := newChaosEnv(t, "alpha", "beta", "gamma")
	e.fs.AddRule(rule)
	stop := e.hammer("beta", "gamma")
	defer stop()

	sawFault := false
	for i := 0; i < 20 && !sawFault; i++ {
		if st := e.insert("alpha"); st == "indeterminate" {
			sawFault = true
		}
		if e.fs.Fired() > 0 {
			sawFault = true
		}
	}
	if !sawFault {
		t.Fatalf("fault %v never fired", rule)
	}
	e.waitReady("alpha")
	e.verifyAckedPrefix("alpha")
	if st := e.insert("alpha"); st != "acked" {
		t.Fatalf("post-recovery insert outcome %q, want acked", st)
	}
	e.verifyAckedPrefix("alpha")
	stop()
	e.verifyAckedPrefix("beta")
	e.verifyAckedPrefix("gamma")
}

func TestChaosWALAppendEIO(t *testing.T) {
	runTransientFault(t, &faultio.Rule{
		Op: faultio.OpWrite, PathContains: "alpha.wal.", Times: 1, Err: syscall.EIO,
	})
}

func TestChaosWALSyncFault(t *testing.T) {
	runTransientFault(t, &faultio.Rule{
		Op: faultio.OpSync, PathContains: "alpha.wal.", Times: 1,
	})
}

func TestChaosTornAppend(t *testing.T) {
	runTransientFault(t, &faultio.Rule{
		Op: faultio.OpWrite, PathContains: "alpha.wal.", Times: 1, Partial: 7, Err: syscall.EIO,
	})
}

// TestChaosCheckpointENOSPC: a checkpoint whose snapshot write hits
// ENOSPC answers 503 but leaves the old snapshot + log authoritative —
// the dataset stays ready, keeps accepting writes, and a later retry
// succeeds. Other datasets never notice.
func TestChaosCheckpointENOSPC(t *testing.T) {
	e := newChaosEnv(t, "alpha", "beta", "gamma")
	stop := e.hammer("beta", "gamma")
	defer stop()

	e.fs.AddRule(&faultio.Rule{
		Op: faultio.OpWrite, PathContains: "alpha.discsnap.tmp", Err: syscall.ENOSPC,
	})
	resp, err := http.Post(e.ts.URL+"/v1/live/alpha/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("checkpoint under ENOSPC: status %d, want 503", resp.StatusCode)
	}
	if e.fs.Fired() == 0 {
		t.Fatal("ENOSPC rule never fired")
	}
	if _, err := os.Stat(filepath.Join(e.dir, "alpha.discsnap")); !os.IsNotExist(err) {
		t.Fatalf("failed checkpoint left a snapshot behind: %v", err)
	}
	// The log is untouched by a failed snapshot write: alpha must still
	// be fully serviceable, no recovery required.
	if st := e.insert("alpha"); st != "acked" {
		t.Fatalf("insert after failed checkpoint: %q, want acked", st)
	}
	e.verifyAckedPrefix("alpha")

	// Space comes back: the retry must succeed where the original failed.
	e.fs.ClearRules()
	doJSON(t, "POST", e.ts.URL+"/v1/live/alpha/snapshot", nil, http.StatusCreated, nil)
	if _, err := os.Stat(filepath.Join(e.dir, "alpha.discsnap")); err != nil {
		t.Fatalf("retried checkpoint wrote no snapshot: %v", err)
	}
	stop()
	e.verifyAckedPrefix("beta")
	e.verifyAckedPrefix("gamma")
}

// TestChaosBootRecoveryRetries: transient read errors during boot-time
// recovery are retried with backoff until the disk heals; the other
// datasets recover on their first attempt and are never delayed.
func TestChaosBootRecoveryRetries(t *testing.T) {
	e := newChaosEnv(t, "alpha", "beta", "gamma")
	before := map[string][]int{}
	for _, n := range []string{"alpha", "beta", "gamma"} {
		before[n] = e.selection(n)
	}
	e.ts.Close() // crash: abandon the server un-Closed

	fs2 := faultio.NewDirFS(&faultio.Rule{
		Op: faultio.OpRead, PathContains: "alpha.wal.", Times: 2, Err: syscall.EIO,
	})
	srv2 := New(
		WithLiveDir(e.dir),
		WithStorageFS(fs2),
		WithRecoveryBackoff(5*time.Millisecond, 50*time.Millisecond, 4),
	)
	n, err := srv2.RestoreLive()
	if err != nil {
		t.Fatalf("RestoreLive: %v", err)
	}
	if n != 3 {
		t.Fatalf("RestoreLive = %d serving, want 3", n)
	}
	if fs2.Fired() != 2 {
		t.Fatalf("boot faults fired = %d, want 2", fs2.Fired())
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	for _, name := range []string{"alpha", "beta", "gamma"} {
		doJSON(t, "POST", ts2.URL+"/v1/live/"+name+"/flush", nil, http.StatusOK, nil)
		var sel liveSelection
		doJSON(t, "GET", ts2.URL+"/v1/live/"+name+"/selection", nil, http.StatusOK, &sel)
		if !idsEqual(sel.IDs, before[name]) {
			t.Fatalf("%s selection after faulted boot %v, want %v", name, sel.IDs, before[name])
		}
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosInteriorCorruptionQuarantine: a flipped bit in a WAL
// segment's interior is NOT silently truncated — the dataset
// quarantines loudly (sidecar on disk, 503 on every route) while the
// other datasets boot and serve untouched. The operator runbook
// (repair the file, POST unquarantine) brings it back bit-identical.
func TestChaosInteriorCorruptionQuarantine(t *testing.T) {
	e := newChaosEnv(t, "alpha", "beta", "gamma")
	for i := 0; i < 12; i++ {
		if st := e.insert("alpha"); st != "acked" {
			t.Fatalf("seed insert: %q", st)
		}
	}
	wantSel := e.selection("alpha")
	e.ts.Close() // crash

	segs, err := filepath.Glob(filepath.Join(e.dir, "alpha.wal.*"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments for alpha: %v (%v)", segs, err)
	}
	seg := segs[0]
	good, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[len(bad)*2/5] ^= 0x40 // interior record, far from the torn-tail window
	if err := os.WriteFile(seg, bad, 0o644); err != nil {
		t.Fatal(err)
	}

	srv2 := New(
		WithLiveDir(e.dir),
		WithRecoveryBackoff(5*time.Millisecond, 50*time.Millisecond, 4),
	)
	n, err := srv2.RestoreLive()
	if err != nil {
		t.Fatalf("RestoreLive: %v", err)
	}
	if n != 2 {
		t.Fatalf("RestoreLive = %d serving, want 2 (alpha quarantined)", n)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.Close()

	var info struct {
		State  string `json:"state"`
		Reason string `json:"reason"`
	}
	doJSON(t, "GET", ts2.URL+"/v1/live/alpha", nil, http.StatusOK, &info)
	if info.State != "quarantined" || info.Reason == "" {
		t.Fatalf("alpha info = %+v, want quarantined with a reason", info)
	}
	if _, err := os.Stat(filepath.Join(e.dir, "alpha.QUARANTINE")); err != nil {
		t.Fatalf("quarantine sidecar missing: %v", err)
	}
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/live/alpha/selection"},
		{"POST", "/v1/live/alpha/flush"},
		{"POST", "/v1/live/alpha/snapshot"},
	} {
		req, _ := http.NewRequest(probe.method, ts2.URL+probe.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s %s on quarantined dataset: status %d, want 503", probe.method, probe.path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s %s: 503 without Retry-After", probe.method, probe.path)
		}
	}
	// The healthy datasets are fully isolated from alpha's corruption.
	for _, name := range []string{"beta", "gamma"} {
		doJSON(t, "GET", ts2.URL+"/v1/live/"+name+"/selection", nil, http.StatusOK, nil)
	}

	// Unquarantine without repairing first: the supervisor re-scrubs,
	// finds the same corruption, and quarantines again.
	doJSON(t, "POST", ts2.URL+"/v1/live/alpha/unquarantine", nil, http.StatusOK, &info)
	if info.State != "quarantined" {
		t.Fatalf("unquarantine without repair settled at %q, want quarantined again", info.State)
	}

	// The runbook proper: restore the good bytes, then unquarantine.
	if err := os.WriteFile(seg, good, 0o644); err != nil {
		t.Fatal(err)
	}
	doJSON(t, "POST", ts2.URL+"/v1/live/alpha/unquarantine", nil, http.StatusOK, &info)
	if info.State != "ready" {
		t.Fatalf("unquarantine after repair settled at %q, want ready", info.State)
	}
	doJSON(t, "POST", ts2.URL+"/v1/live/alpha/flush", nil, http.StatusOK, nil)
	var sel liveSelection
	doJSON(t, "GET", ts2.URL+"/v1/live/alpha/selection", nil, http.StatusOK, &sel)
	if !idsEqual(sel.IDs, wantSel) {
		t.Fatalf("alpha selection after repair %v, want %v", sel.IDs, wantSel)
	}
}

// TestChaosRandomSweep: randomized rounds — each picks a victim and a
// fault kind, injects it mid-traffic, and requires the healthy
// datasets to serve with zero errors while the victim recovers to its
// acknowledged prefix. Seeded PCG: failures reproduce.
func TestChaosRandomSweep(t *testing.T) {
	names := []string{"alpha", "beta", "gamma"}
	e := newChaosEnv(t, names...)
	rng := rand.New(rand.NewPCG(42, 7))
	for round := 0; round < 4; round++ {
		victim := names[rng.IntN(len(names))]
		healthy := make([]string, 0, 2)
		for _, n := range names {
			if n != victim {
				healthy = append(healthy, n)
			}
		}
		var rule *faultio.Rule
		switch rng.IntN(3) {
		case 0:
			rule = &faultio.Rule{Op: faultio.OpWrite, PathContains: victim + ".wal.", Times: 1, Err: syscall.EIO}
		case 1:
			rule = &faultio.Rule{Op: faultio.OpSync, PathContains: victim + ".wal.", Times: 1}
		case 2:
			rule = &faultio.Rule{Op: faultio.OpWrite, PathContains: victim + ".wal.", Times: 1,
				Partial: 3 + rng.IntN(16), Err: syscall.EIO}
		}
		fired := e.fs.Fired()
		e.fs.AddRule(rule)
		stop := e.hammer(healthy...)
		sawFault := false
		for i := 0; i < 20 && !sawFault; i++ {
			e.insert(victim)
			sawFault = e.fs.Fired() > fired
		}
		if !sawFault {
			stop()
			t.Fatalf("round %d: fault %v never fired", round, rule)
		}
		e.waitReady(victim)
		e.verifyAckedPrefix(victim)
		stop()
		if t.Failed() {
			t.Fatalf("round %d (victim %s, fault %v): healthy datasets saw errors", round, victim, rule)
		}
	}
	for _, n := range names {
		e.verifyAckedPrefix(n)
	}
}
