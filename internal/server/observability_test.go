package server

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMetricsEndpoint drives a few requests through the instrumented
// routes and checks that GET /metrics serves the Prometheus text format
// with request, pipeline-stage and durability series present.
func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	uploadPoints(t, ts, "met", 80)
	var sel map[string]any
	doJSON(t, "POST", ts.URL+"/v1/datasets/met/select", map[string]any{"radius": 0.2}, http.StatusCreated, &sel)
	doJSON(t, "GET", ts.URL+"/v1/datasets/unknown", nil, http.StatusNotFound, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE disc_http_requests_total counter",
		`disc_http_requests_total{route="/v1/datasets/{name}/select",method="POST",code="2xx"}`,
		`disc_http_requests_total{route="/v1/datasets/{name}",method="GET",code="4xx"}`,
		"# TYPE disc_http_request_seconds histogram",
		"# TYPE disc_http_inflight_requests gauge",
		"# TYPE disc_select_seconds histogram",
		"# TYPE disc_grid_build_seconds histogram",
		"# TYPE disc_component_label_seconds histogram",
		"# TYPE disc_wal_appends_total counter",
		"# TYPE disc_snapshot_write_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	// The select above must have recorded a 2xx on its route.
	var hit bool
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `disc_http_requests_total{route="/v1/datasets/{name}/select",method="POST",code="2xx"}`) {
			if !strings.HasSuffix(line, " 0") {
				hit = true
			}
		}
	}
	if !hit {
		t.Error("select request did not increment its route counter")
	}
}

// TestReadyz pins the readiness life-cycle: ready from birth, 503 on
// probe AND on API traffic while SetReady(false), back to 200 after.
func TestReadyz(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	doJSON(t, "GET", ts.URL+"/readyz", nil, http.StatusOK, nil)

	srv.SetReady(false)
	var body map[string]any
	doJSON(t, "GET", ts.URL+"/readyz", nil, http.StatusServiceUnavailable, &body)
	if body["status"] != "recovering" {
		t.Fatalf("readyz body = %v", body)
	}
	// API traffic is refused while recovering; liveness still answers.
	resp, err := http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("API during recovery = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("recovering 503 must carry Retry-After")
	}
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, nil)

	srv.SetReady(true)
	doJSON(t, "GET", ts.URL+"/readyz", nil, http.StatusOK, nil)
	doJSON(t, "GET", ts.URL+"/v1/datasets", nil, http.StatusOK, nil)
}

// TestRequestID: every API response carries a distinct X-Request-Id.
func TestRequestID(t *testing.T) {
	ts := newTestServer(t)
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/datasets")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Request-Id")
		if id == "" {
			t.Fatal("missing X-Request-Id")
		}
		if seen[id] {
			t.Fatalf("request id %q repeated", id)
		}
		seen[id] = true
	}
}

// TestPanicLogsStructured: a handler panic is recovered into a 500 and
// reported through the configured slog logger with the structured
// fields (method, route, request id, stack), not a bare log.Printf.
func TestPanicLogsStructured(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	s := New(WithLogger(logger))

	boom := http.HandlerFunc(func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	h := s.requestID(s.recoverPanics(boom))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/datasets", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	logLine := buf.String()
	for _, want := range []string{`"msg":"panic serving request"`, `"method":"GET"`, `"route":"/v1/datasets"`, `"request_id":"r1"`, `"stack":`, "kaboom"} {
		if !strings.Contains(logLine, want) {
			t.Errorf("panic log missing %s in: %s", want, logLine)
		}
	}
}

// TestBodyCapCounter: an oversized body still maps to 400 (the pinned
// crash_test contract) and increments the rejection counter.
func TestBodyCapCounter(t *testing.T) {
	srv := New(WithMaxBodyBytes(64))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	before := metBodyCap.Value()
	// A valid JSON prefix, so the decoder streams past the 64-byte cap
	// and surfaces the MaxBytesError (a syntax error would fail sooner).
	big := []byte(`{"name":"` + strings.Repeat("a", 4096) + `"}`)
	resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body = %d, want 400", resp.StatusCode)
	}
	if metBodyCap.Value() != before+1 {
		t.Fatalf("body-cap counter %d, want %d", metBodyCap.Value(), before+1)
	}
}
