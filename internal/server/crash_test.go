package server

// Crash-restart and hardening tests: a durable live maintainer must
// resume with zero acknowledged-update loss after the process dies
// without any shutdown courtesy (the old server object is simply
// abandoned, handles and all — the closest a test gets to SIGKILL),
// and the middleware chain must shed load, bound bodies, time out
// stuck requests, and absorb handler panics.

import (
	"bufio"
	"encoding/json"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	disc "github.com/discdiversity/disc"
)

// TestLiveCrashRestart drives the full durability loop over HTTP:
// create a durable maintainer, mutate it, "crash" (abandon the server
// without Close), boot a fresh server over the same directory,
// RestoreLive, and require the identical selection plus continued
// operation — including across a checkpoint.
func TestLiveCrashRestart(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewPCG(9, 2))

	srv := New(WithLiveDir(dir)) // fsync defaults to always
	ts := httptest.NewServer(srv.Handler())
	doJSON(t, "POST", ts.URL+"/v1/live",
		map[string]any{"name": "feed", "radius": 0.2}, http.StatusCreated, nil)
	for i := 0; i < 30; i++ {
		doJSON(t, "POST", ts.URL+"/v1/live/feed/insert",
			map[string]any{"point": []float64{rng.Float64(), rng.Float64()}}, http.StatusCreated, nil)
	}
	for _, id := range []int{3, 11, 19} {
		doJSON(t, "POST", ts.URL+"/v1/live/feed/delete",
			map[string]any{"id": id}, http.StatusOK, nil)
	}
	doJSON(t, "POST", ts.URL+"/v1/live/feed/flush", nil, http.StatusOK, nil)
	var before liveSelection
	doJSON(t, "GET", ts.URL+"/v1/live/feed/selection", nil, http.StatusOK, &before)
	if before.Size == 0 {
		t.Fatal("no selection before the crash")
	}
	// Crash: stop routing requests, abandon srv un-Closed.
	ts.Close()

	srv2 := New(WithLiveDir(dir))
	n, err := srv2.RestoreLive()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d maintainers, want 1", n)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	var after liveSelection
	doJSON(t, "GET", ts2.URL+"/v1/live/feed/selection", nil, http.StatusOK, &after)
	if len(after.IDs) != len(before.IDs) {
		t.Fatalf("selection after restart %v, want %v", after.IDs, before.IDs)
	}
	for i := range after.IDs {
		if after.IDs[i] != before.IDs[i] {
			t.Fatalf("selection after restart %v, want %v", after.IDs, before.IDs)
		}
	}
	var info struct {
		Live int `json:"live"`
	}
	doJSON(t, "GET", ts2.URL+"/v1/live/feed", nil, http.StatusOK, &info)
	if info.Live != 27 {
		t.Fatalf("live count after restart = %d, want 27", info.Live)
	}

	// Checkpoint, mutate, crash again: recovery must replay only the
	// post-checkpoint suffix on top of the compacted snapshot.
	doJSON(t, "POST", ts2.URL+"/v1/live/feed/snapshot", nil, http.StatusCreated, nil)
	doJSON(t, "POST", ts2.URL+"/v1/live/feed/insert",
		map[string]any{"point": []float64{0.5, 0.5}, "flush": true}, http.StatusCreated, nil)
	var mid liveSelection
	doJSON(t, "GET", ts2.URL+"/v1/live/feed/selection", nil, http.StatusOK, &mid)
	ts2.Close()

	srv3 := New(WithLiveDir(dir))
	if _, err := srv3.RestoreLive(); err != nil {
		t.Fatal(err)
	}
	ts3 := httptest.NewServer(srv3.Handler())
	defer ts3.Close()
	var final liveSelection
	doJSON(t, "GET", ts3.URL+"/v1/live/feed/selection", nil, http.StatusOK, &final)
	// The checkpoint compacted tombstones away, so recovered ids are the
	// dense ranks of the pre-crash ids among the surviving points (the
	// running server kept handing out the sparse handles; recovery
	// speaks the compacted log-id space).
	rank := func(id int) int {
		r := id
		for _, d := range []int{3, 11, 19} {
			if d < id {
				r--
			}
		}
		return r
	}
	if len(final.IDs) != len(mid.IDs) {
		t.Fatalf("selection after checkpointed restart %v, want rank-mapped %v", final.IDs, mid.IDs)
	}
	for i := range final.IDs {
		if final.IDs[i] != rank(mid.IDs[i]) {
			t.Fatalf("selection after checkpointed restart %v, want rank-mapped %v", final.IDs, mid.IDs)
		}
	}
	var info3 struct {
		Live int `json:"live"`
	}
	doJSON(t, "GET", ts3.URL+"/v1/live/feed", nil, http.StatusOK, &info3)
	if info3.Live != 28 {
		t.Fatalf("live count after checkpointed restart = %d, want 28", info3.Live)
	}
	if err := srv3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCreateRefusesLeftoverState: creating a maintainer whose
// name matches on-disk durable state must 409 rather than silently
// resume (or worse, seed on top of) a previous life's data.
func TestDurableCreateRefusesLeftoverState(t *testing.T) {
	dir := t.TempDir()
	srv := New(WithLiveDir(dir))
	ts := httptest.NewServer(srv.Handler())
	doJSON(t, "POST", ts.URL+"/v1/live",
		map[string]any{"name": "feed", "radius": 0.2, "points": [][]float64{{0.1, 0.1}}},
		http.StatusCreated, nil)
	ts.Close()

	srv2 := New(WithLiveDir(dir)) // boots WITHOUT RestoreLive
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	doJSON(t, "POST", ts2.URL+"/v1/live",
		map[string]any{"name": "feed", "radius": 0.2}, http.StatusConflict, nil)
}

// TestMemoryOnlyCheckpointRefused: the checkpoint endpoint is a
// durability feature; without a live directory it must explain itself.
func TestMemoryOnlyCheckpointRefused(t *testing.T) {
	ts := newTestServer(t)
	doJSON(t, "POST", ts.URL+"/v1/live",
		map[string]any{"name": "feed", "radius": 0.2, "points": [][]float64{{0.1, 0.1}}},
		http.StatusCreated, nil)
	doJSON(t, "POST", ts.URL+"/v1/live/feed/snapshot", nil, http.StatusBadRequest, nil)
}

// TestAdmissionControl: with one admission slot held by a request
// whose body never arrives, the next request is shed with 503 and a
// Retry-After header, /healthz still answers, and releasing the slot
// restores service.
func TestAdmissionControl(t *testing.T) {
	srv := New(WithMaxInflight(1))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	pr, pw := io.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Blocks inside the handler's JSON decode until pw closes.
		resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", pr)
		if err == nil {
			resp.Body.Close()
		}
	}()
	// Wait for the blocked request to actually occupy the slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/datasets")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("shed response missing Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never reached capacity")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Liveness bypasses admission.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz at capacity = %d, want 200", resp.StatusCode)
	}
	pw.CloseWithError(io.ErrClosedPipe)
	wg.Wait()
	// Slot released: requests flow again.
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/datasets")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never recovered after shedding")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRequestTimeout: a request whose body stalls past the per-request
// deadline errors out through the handler's decode path instead of
// pinning a goroutine forever — the client sees a 4xx, and the next
// request is served normally.
func TestRequestTimeout(t *testing.T) {
	srv := New(WithRequestTimeout(50 * time.Millisecond))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Raw TCP so the request can stall mid-body: promise 4096 bytes,
	// send a fragment, never finish. (http.Client can't model this —
	// its transport waits for the request body to drain before
	// surfacing the response.)
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	if _, err := io.WriteString(conn,
		"POST /v1/datasets HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: 4096\r\n\r\n{\"name\":"); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("no response to a stalled request: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode < 400 || resp.StatusCode >= 500 {
		t.Fatalf("stuck request = %d, want a 4xx decode failure", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stuck request held for %v; the deadline did not fire", elapsed)
	}
	// The process is healthy: the next request is served normally.
	doJSON(t, "GET", ts.URL+"/v1/datasets", nil, http.StatusOK, nil)
}

// TestBodyLimit: mutating requests over the cap fail cleanly instead
// of buffering an arbitrarily large upload.
func TestBodyLimit(t *testing.T) {
	srv := New(WithMaxBodyBytes(1024))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	big := map[string]any{"name": "d", "points": make([][]float64, 0, 1024)}
	pts := big["points"].([][]float64)
	for i := 0; i < 1024; i++ {
		pts = append(pts, []float64{float64(i), float64(i)})
	}
	big["points"] = pts
	body, err := json.Marshal(big)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body = %d, want 400", resp.StatusCode)
	}
	// Within the cap still works.
	doJSON(t, "POST", ts.URL+"/v1/datasets",
		map[string]any{"name": "d", "points": [][]float64{{0.1, 0.2}, {0.8, 0.9}}},
		http.StatusCreated, nil)
}

// TestPanicRecovery: a panicking handler yields a 500 on that request
// and the process keeps serving. The panic is provoked through the
// real chain by registering a panicking route on the inner mux the
// same way Handler does.
func TestPanicRecovery(t *testing.T) {
	srv := New()
	api := http.NewServeMux()
	api.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	api.HandleFunc("GET /v1/datasets", srv.handleListDatasets)
	root := http.NewServeMux()
	root.Handle("/", srv.chain(api))
	ts := httptest.NewServer(root)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", resp.StatusCode)
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("panic response is not the JSON error shape: %v", err)
	}
	// The process survived: the next request is served normally.
	doJSON(t, "GET", ts.URL+"/v1/datasets", nil, http.StatusOK, nil)
}

// TestLiveFsyncModesOverHTTP exercises the durable lifecycle under the
// two relaxed fsync policies too — the recovery path is identical, the
// policies only trade the crash window.
func TestLiveFsyncModesOverHTTP(t *testing.T) {
	for _, mode := range []disc.FsyncPolicy{disc.FsyncInterval, disc.FsyncNone} {
		dir := t.TempDir()
		srv := New(WithLiveDir(dir), WithLiveFsync(mode), WithLiveFsyncInterval(time.Millisecond))
		ts := httptest.NewServer(srv.Handler())
		doJSON(t, "POST", ts.URL+"/v1/live",
			map[string]any{"name": "feed", "radius": 0.2, "points": [][]float64{{0.1, 0.1}, {0.9, 0.9}}},
			http.StatusCreated, nil)
		doJSON(t, "POST", ts.URL+"/v1/live/feed/insert",
			map[string]any{"point": []float64{0.5, 0.5}, "flush": true}, http.StatusCreated, nil)
		// Orderly close: relaxed fsync only risks the tail on a CRASH;
		// Close syncs, so a restart must still see everything.
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		ts.Close()

		srv2 := New(WithLiveDir(dir), WithLiveFsync(mode))
		if n, err := srv2.RestoreLive(); err != nil || n != 1 {
			t.Fatalf("restore under %v: n=%d err=%v", mode, n, err)
		}
		ts2 := httptest.NewServer(srv2.Handler())
		var info struct {
			Live int `json:"live"`
		}
		doJSON(t, "GET", ts2.URL+"/v1/live/feed", nil, http.StatusOK, &info)
		if info.Live != 3 {
			t.Fatalf("live after close/restore under %v = %d, want 3", mode, info.Live)
		}
		ts2.Close()
		srv2.Close()
	}
}
