// Package server exposes DisC diversification as an HTTP service
// (stdlib net/http only): upload a dataset, request diverse subsets at
// any radius, and zoom results in or out interactively — the usage mode
// the paper's introduction motivates, where each user adapts the
// diversification degree of a shared query result.
//
// API (JSON everywhere):
//
//	POST /v1/datasets                     upload {name, metric, points,
//	                                      labels?, precision?}
//	GET  /v1/datasets                     list datasets
//	GET  /v1/datasets/{name}              dataset info
//	POST /v1/datasets/{name}/select      {radius, algorithm?} -> result
//	POST /v1/datasets/{name}/snapshot    persist the dataset (and any
//	                                      prepared index artifacts) as a
//	                                      .discsnap file in the snapshot
//	                                      directory (see WithSnapshotDir)
//	GET  /v1/results/{id}                 re-fetch a result
//	POST /v1/results/{id}/zoom           {radius} -> adapted result
//	POST /v1/results/{id}/localzoom      {center, radius} -> local view
//	GET  /healthz                         liveness probe
//
// Live maintainers (incremental r-DisC under inserts/deletes, backed by
// disc.Updater — grid-servable metrics only):
//
//	POST /v1/live                         create {name, radius, metric?, points?}
//	GET  /v1/live                         list live maintainers
//	GET  /v1/live/{name}                  maintainer info (live, selected, pending)
//	POST /v1/live/{name}/insert          {point, flush?} -> assigned id
//	POST /v1/live/{name}/delete          {id, flush?} -> updated counts
//	POST /v1/live/{name}/flush           repair dirty components, publish
//	GET  /v1/live/{name}/selection       last published representative ids
//
// Mutations are bounded-stale by default: reads keep serving the last
// published selection until a flush converges the dirty components.
// Pass "flush": true on a mutation for per-operation convergence.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	disc "github.com/discdiversity/disc"
	"github.com/discdiversity/disc/internal/snap"
)

// Server is the HTTP handler. Create with New; it is safe for concurrent
// use.
type Server struct {
	mux sync.Mutex

	snapshotDir string

	// Live-durability configuration (WithLiveDir and friends): when
	// liveDir is set, live maintainers are created through
	// disc.OpenUpdater with a snapshot + write-ahead log pair in that
	// directory, and RestoreLive resumes them after a restart.
	liveDir           string
	liveFsync         disc.FsyncPolicy
	liveFsyncInterval time.Duration

	// Request-hardening configuration (see middleware.go).
	maxInflight    int
	requestTimeout time.Duration
	maxBodyBytes   int64

	// Observability: structured logger (WithLogger), readiness flag
	// (SetReady; true from birth so embedded servers need no opt-in) and
	// the per-request id sequence.
	log    *slog.Logger
	ready  atomic.Bool
	reqSeq atomic.Uint64

	datasets map[string]*datasetState
	results  map[string]*resultState
	live     map[string]*liveState
	nextID   int
}

// Option configures New.
type Option func(*Server)

// WithSnapshotDir enables the snapshot-save endpoint, writing
// <dir>/<dataset>.discsnap files. An empty dir leaves the endpoint
// disabled.
func WithSnapshotDir(dir string) Option {
	return func(s *Server) { s.snapshotDir = dir }
}

// WithLiveDir makes live maintainers durable: each is backed by a
// <dir>/<name>.discsnap checkpoint and a <dir>/<name>.wal write-ahead
// log, so a crashed or restarted server resumes them with RestoreLive.
// An empty dir keeps live maintainers memory-only.
func WithLiveDir(dir string) Option {
	return func(s *Server) { s.liveDir = dir }
}

// WithLiveFsync sets the WAL fsync policy for durable live maintainers
// (default disc.FsyncAlways: every acknowledged mutation survives any
// crash).
func WithLiveFsync(p disc.FsyncPolicy) Option {
	return func(s *Server) { s.liveFsync = p }
}

// WithLiveFsyncInterval sets the batching interval used when the fsync
// policy is disc.FsyncInterval.
func WithLiveFsyncInterval(d time.Duration) Option {
	return func(s *Server) { s.liveFsyncInterval = d }
}

// WithMaxInflight bounds concurrently-served requests; excess requests
// receive 503 with a Retry-After header instead of queueing. Zero or
// negative disables shedding.
func WithMaxInflight(n int) Option {
	return func(s *Server) { s.maxInflight = n }
}

// WithRequestTimeout bounds each request's wall-clock time; requests
// over the deadline receive 503 and their context is cancelled. Zero
// disables.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.requestTimeout = d }
}

// WithMaxBodyBytes caps request bodies on mutating endpoints via
// http.MaxBytesReader. Zero disables.
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) { s.maxBodyBytes = n }
}

// WithLogger sets the structured logger for panic reports and
// debug-level access logs. Defaults to slog.Default().
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) { s.log = l }
}

// SetReady flips the readiness state reported by GET /readyz. A server
// is ready from birth; discserve clears the flag before boot-time WAL
// recovery (RestoreLive) and restores it once recovery converges, so a
// load balancer never routes traffic to a half-replayed server. While
// not ready, API requests are refused with 503 (see gateReady).
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// logger returns the configured logger, falling back to slog.Default.
func (s *Server) logger() *slog.Logger {
	if s.log != nil {
		return s.log
	}
	return slog.Default()
}

type datasetState struct {
	name   string
	metric string
	div    *disc.Diversifier
	labels []string
	dim    int
	size   int
}

type resultState struct {
	id      string
	dataset *datasetState
	res     *disc.Result
}

type liveState struct {
	name    string
	metric  string
	updater *disc.Updater
}

// New creates an empty server.
func New(opts ...Option) *Server {
	s := &Server{
		liveFsync: disc.FsyncAlways,
		datasets:  make(map[string]*datasetState),
		results:   make(map[string]*resultState),
		live:      make(map[string]*liveState),
	}
	s.ready.Store(true)
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Handler returns the routing handler: the API mux behind the
// hardening chain (panic recovery, readiness gate, bounded admission,
// body limits, per-request timeouts — see middleware.go), every route
// wrapped with its per-route request metrics (see metrics.go), and
// /healthz, /readyz and /metrics routed around the chain so probes and
// scrapes answer even at capacity or mid-recovery.
func (s *Server) Handler() http.Handler {
	api := http.NewServeMux()
	route := func(method, pattern string, h http.HandlerFunc) {
		api.Handle(method+" "+pattern, s.instrument(method, pattern, h))
	}
	route("POST", "/v1/datasets", s.handleCreateDataset)
	route("GET", "/v1/datasets", s.handleListDatasets)
	route("GET", "/v1/datasets/{name}", s.handleGetDataset)
	route("POST", "/v1/datasets/{name}/select", s.handleSelect)
	route("POST", "/v1/datasets/{name}/snapshot", s.handleSaveSnapshot)
	route("GET", "/v1/results/{id}", s.handleGetResult)
	route("POST", "/v1/results/{id}/zoom", s.handleZoom)
	route("POST", "/v1/results/{id}/localzoom", s.handleLocalZoom)
	route("POST", "/v1/live", s.handleCreateLive)
	route("GET", "/v1/live", s.handleListLive)
	route("GET", "/v1/live/{name}", s.handleGetLive)
	route("POST", "/v1/live/{name}/insert", s.handleLiveInsert)
	route("POST", "/v1/live/{name}/delete", s.handleLiveDelete)
	route("POST", "/v1/live/{name}/flush", s.handleLiveFlush)
	route("POST", "/v1/live/{name}/snapshot", s.handleLiveCheckpoint)
	route("GET", "/v1/live/{name}/selection", s.handleLiveSelection)

	root := http.NewServeMux()
	root.HandleFunc("GET /healthz", s.handleHealthz)
	root.HandleFunc("GET /readyz", s.handleReadyz)
	root.HandleFunc("GET /metrics", s.handleMetrics)
	root.Handle("/", s.chain(api))
	return root
}

// Close releases every durable live maintainer's write-ahead log,
// syncing acknowledged mutations to disk. The server keeps answering
// reads afterwards, but durable mutations fail; call it once the
// listener has drained.
func (s *Server) Close() error {
	s.mux.Lock()
	defer s.mux.Unlock()
	var first error
	for _, ls := range s.live {
		if err := ls.updater.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// LoadSnapshot registers a dataset warm-started from a .discsnap stream
// (see disc.LoadDiversifier): the dataset and any persisted index
// artifacts are rehydrated, so the first selection at the snapshot's
// radius skips the index build entirely. The name must not collide with
// an existing dataset. Labels are not part of the snapshot format, so a
// warm-started dataset serves results without them.
func (s *Server) LoadSnapshot(name string, r io.Reader) error {
	if err := validateDatasetName(name); err != nil {
		return fmt.Errorf("server: %v", err)
	}
	div, err := disc.LoadDiversifier(r)
	if err != nil {
		return err
	}
	s.mux.Lock()
	defer s.mux.Unlock()
	if _, exists := s.datasets[name]; exists {
		return fmt.Errorf("server: dataset %q already exists", name)
	}
	s.datasets[name] = &datasetState{
		name:   name,
		metric: div.Metric().Name(),
		div:    div,
		dim:    div.Point(0).Dim(),
		size:   div.Len(),
	}
	return nil
}

// handleHealthz is the liveness probe. Deliberately lock-free: the
// select/zoom handlers hold the server mutex for their full duration
// (seconds on large datasets), and a probe that queued behind them
// would time out exactly when the server is busy — the opposite of
// what an orchestrator should see.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 200 once the server may receive
// traffic, 503 while boot-time WAL recovery is still replaying (see
// SetReady). Lock-free for the same reason as handleHealthz.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.ready.Load() {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "recovering"})
}

// decodeJSON decodes a request body, counting bodies rejected by the
// size cap (the 400 mapping in each handler's error path is unchanged —
// the counter is how operators see a client hitting the limit).
func (s *Server) decodeJSON(r *http.Request, dst any) error {
	err := json.NewDecoder(r.Body).Decode(dst)
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		metBodyCap.Inc()
	}
	return err
}

type snapshotBody struct {
	Dataset string `json:"dataset"`
	Path    string `json:"path"`
	Bytes   int64  `json:"bytes"`
}

// handleSaveSnapshot persists a dataset (and whatever per-radius index
// artifacts its diversifier currently holds) to
// <snapshotDir>/<name>.discsnap via the shared crash-atomic save
// (write a temp file, fsync, rename, fsync the directory), so a
// concurrent warm start never observes a torn snapshot and a power
// loss right after the response cannot lose it.
func (s *Server) handleSaveSnapshot(w http.ResponseWriter, r *http.Request) {
	s.mux.Lock()
	defer s.mux.Unlock()
	if s.snapshotDir == "" {
		writeError(w, http.StatusBadRequest, "snapshot directory not configured (start discserve with -snapshot)")
		return
	}
	ds, ok := s.datasets[r.PathValue("name")]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", r.PathValue("name"))
		return
	}
	path := filepath.Join(s.snapshotDir, ds.name+".discsnap")
	var size int64
	err := snap.WriteFileAtomic(path, func(w io.Writer) error {
		cw := &countingWriter{w: w}
		if err := ds.div.WriteSnapshot(cw); err != nil {
			return err
		}
		size = cw.n
		return nil
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, snapshotBody{Dataset: ds.name, Path: path, Bytes: size})
}

// countingWriter counts the bytes passed through to w.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// validateDatasetName rejects empty names and anything that is not a
// plain path component: dataset names become snapshot file names
// (<dir>/<name>.discsnap), so separators or dot-names must never reach
// filepath.Join where they could escape the snapshot directory.
func validateDatasetName(name string) error {
	if name == "" {
		return fmt.Errorf("dataset name required")
	}
	// Backslash is rejected explicitly: it is not a separator on this
	// platform's filepath, but snapshots may be copied to one where it
	// is.
	if name != filepath.Base(name) || name == "." || name == ".." || strings.ContainsAny(name, `/\`) {
		return fmt.Errorf("dataset name %q must be a plain path component (no separators)", name)
	}
	return nil
}

type createDatasetRequest struct {
	Name   string      `json:"name"`
	Metric string      `json:"metric"`
	Points [][]float64 `json:"points"`
	Labels []string    `json:"labels,omitempty"`
	// Precision selects the coordinate storage width: "float64" (the
	// default) or "float32", which rounds at ingest and enables the
	// batched float32 pre-filter for high-dimensional data.
	Precision string `json:"precision,omitempty"`
}

type datasetInfo struct {
	Name   string `json:"name"`
	Metric string `json:"metric"`
	Size   int    `json:"size"`
	Dim    int    `json:"dim"`
}

func (s *Server) handleCreateDataset(w http.ResponseWriter, r *http.Request) {
	var req createDatasetRequest
	if err := s.decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if err := validateDatasetName(req.Name); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, "points required")
		return
	}
	if req.Labels != nil && len(req.Labels) != len(req.Points) {
		writeError(w, http.StatusBadRequest, "%d labels for %d points", len(req.Labels), len(req.Points))
		return
	}
	metricName := req.Metric
	if metricName == "" {
		metricName = "euclidean"
	}
	metric, err := disc.MetricByName(metricName)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := []disc.Option{disc.WithMetric(metric)}
	switch req.Precision {
	case "", "float64":
	case "float32":
		opts = append(opts, disc.WithPrecision(disc.PrecisionFloat32))
	default:
		writeError(w, http.StatusBadRequest, "unknown precision %q (supported: float64, float32)", req.Precision)
		return
	}
	pts := make([]disc.Point, len(req.Points))
	for i, p := range req.Points {
		pts[i] = disc.Point(p)
	}
	div, err := disc.New(pts, opts...)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mux.Lock()
	defer s.mux.Unlock()
	if _, exists := s.datasets[req.Name]; exists {
		writeError(w, http.StatusConflict, "dataset %q already exists", req.Name)
		return
	}
	ds := &datasetState{
		name:   req.Name,
		metric: metricName,
		div:    div,
		labels: req.Labels,
		dim:    len(pts[0]),
		size:   len(pts),
	}
	s.datasets[req.Name] = ds
	writeJSON(w, http.StatusCreated, datasetInfo{Name: ds.name, Metric: ds.metric, Size: ds.size, Dim: ds.dim})
}

func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	s.mux.Lock()
	defer s.mux.Unlock()
	infos := make([]datasetInfo, 0, len(s.datasets))
	for _, ds := range s.datasets {
		infos = append(infos, datasetInfo{Name: ds.name, Metric: ds.metric, Size: ds.size, Dim: ds.dim})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	s.mux.Lock()
	defer s.mux.Unlock()
	ds, ok := s.datasets[r.PathValue("name")]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, datasetInfo{Name: ds.name, Metric: ds.metric, Size: ds.size, Dim: ds.dim})
}

type selectRequest struct {
	Radius    float64 `json:"radius"`
	Algorithm string  `json:"algorithm,omitempty"`
}

type resultBody struct {
	ID        string   `json:"id"`
	Dataset   string   `json:"dataset"`
	Radius    float64  `json:"radius"`
	Algorithm string   `json:"algorithm"`
	Size      int      `json:"size"`
	IDs       []int    `json:"ids"`
	Labels    []string `json:"labels,omitempty"`
	Accesses  int64    `json:"accesses"`
}

func algorithmByName(name string) (disc.Algorithm, error) {
	switch name {
	case "", "greedy":
		return disc.AlgorithmGreedy, nil
	case "basic":
		return disc.AlgorithmBasic, nil
	case "white-greedy":
		return disc.AlgorithmGreedyWhite, nil
	case "lazy-grey":
		return disc.AlgorithmLazyGrey, nil
	case "lazy-white":
		return disc.AlgorithmLazyWhite, nil
	case "coverage":
		return disc.AlgorithmCoverage, nil
	case "fast-coverage":
		return disc.AlgorithmFastCoverage, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", name)
	}
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req selectRequest
	if err := s.decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	alg, err := algorithmByName(req.Algorithm)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mux.Lock()
	defer s.mux.Unlock()
	ds, ok := s.datasets[r.PathValue("name")]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", r.PathValue("name"))
		return
	}
	res, err := ds.div.Select(req.Radius, disc.WithAlgorithm(alg))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rs := s.storeResultLocked(ds, res)
	writeJSON(w, http.StatusCreated, s.resultBodyLocked(rs))
}

// storeResultLocked registers a result and assigns it an id. Caller holds
// the lock.
func (s *Server) storeResultLocked(ds *datasetState, res *disc.Result) *resultState {
	s.nextID++
	rs := &resultState{id: "r" + strconv.Itoa(s.nextID), dataset: ds, res: res}
	s.results[rs.id] = rs
	return rs
}

func (s *Server) resultBodyLocked(rs *resultState) resultBody {
	ids := rs.res.SortedIDs()
	body := resultBody{
		ID:        rs.id,
		Dataset:   rs.dataset.name,
		Radius:    rs.res.Radius(),
		Algorithm: rs.res.Algorithm(),
		Size:      rs.res.Size(),
		IDs:       ids,
		Accesses:  rs.res.Accesses(),
	}
	if rs.dataset.labels != nil {
		body.Labels = make([]string, len(ids))
		for i, id := range ids {
			body.Labels[i] = rs.dataset.labels[id]
		}
	}
	return body
}

func (s *Server) handleGetResult(w http.ResponseWriter, r *http.Request) {
	s.mux.Lock()
	defer s.mux.Unlock()
	rs, ok := s.results[r.PathValue("id")]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown result %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.resultBodyLocked(rs))
}

type zoomRequest struct {
	Radius float64 `json:"radius"`
}

func (s *Server) handleZoom(w http.ResponseWriter, r *http.Request) {
	var req zoomRequest
	if err := s.decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	s.mux.Lock()
	defer s.mux.Unlock()
	rs, ok := s.results[r.PathValue("id")]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown result %q", r.PathValue("id"))
		return
	}
	var zoomed *disc.Result
	var err error
	switch {
	case req.Radius < rs.res.Radius():
		zoomed, err = rs.dataset.div.ZoomIn(rs.res, req.Radius)
	case req.Radius > rs.res.Radius():
		zoomed, err = rs.dataset.div.ZoomOut(rs.res, req.Radius, disc.ZoomOutGreedyLargest)
	default:
		writeError(w, http.StatusBadRequest, "radius %g equals the current radius", req.Radius)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	nrs := s.storeResultLocked(rs.dataset, zoomed)
	writeJSON(w, http.StatusCreated, s.resultBodyLocked(nrs))
}

type localZoomRequest struct {
	Center int     `json:"center"`
	Radius float64 `json:"radius"`
}

type localZoomBody struct {
	Center          int      `json:"center"`
	LocalRadius     float64  `json:"localRadius"`
	RegionSize      int      `json:"regionSize"`
	Added           []int    `json:"added"`
	Removed         []int    `json:"removed"`
	Representatives []int    `json:"representatives"`
	Labels          []string `json:"labels,omitempty"`
}

func (s *Server) handleLocalZoom(w http.ResponseWriter, r *http.Request) {
	var req localZoomRequest
	if err := s.decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	s.mux.Lock()
	defer s.mux.Unlock()
	rs, ok := s.results[r.PathValue("id")]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown result %q", r.PathValue("id"))
		return
	}
	var lz *disc.LocalZoom
	var err error
	switch {
	case req.Radius < rs.res.Radius():
		lz, err = rs.dataset.div.LocalZoomIn(rs.res, req.Center, req.Radius)
	case req.Radius > rs.res.Radius():
		lz, err = rs.dataset.div.LocalZoomOut(rs.res, req.Center, req.Radius)
	default:
		writeError(w, http.StatusBadRequest, "radius %g equals the current radius", req.Radius)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body := localZoomBody{
		Center:          lz.Center,
		LocalRadius:     lz.LocalRadius,
		RegionSize:      len(lz.Region),
		Added:           lz.Added,
		Removed:         lz.Removed,
		Representatives: lz.Representatives,
	}
	if rs.dataset.labels != nil {
		body.Labels = make([]string, len(lz.Representatives))
		for i, id := range lz.Representatives {
			body.Labels[i] = rs.dataset.labels[id]
		}
	}
	writeJSON(w, http.StatusOK, body)
}

type createLiveRequest struct {
	Name   string      `json:"name"`
	Metric string      `json:"metric,omitempty"`
	Radius float64     `json:"radius"`
	Points [][]float64 `json:"points,omitempty"`
}

type liveInfo struct {
	Name     string  `json:"name"`
	Metric   string  `json:"metric"`
	Radius   float64 `json:"radius"`
	Dim      int     `json:"dim"`
	Live     int     `json:"live"`
	Selected int     `json:"selected"`
	Pending  int     `json:"pending"`
}

func (s *Server) liveInfoLocked(ls *liveState) liveInfo {
	return liveInfo{
		Name:     ls.name,
		Metric:   ls.metric,
		Radius:   ls.updater.Radius(),
		Dim:      ls.updater.Dim(),
		Live:     ls.updater.Len(),
		Selected: ls.updater.Size(),
		Pending:  ls.updater.Pending(),
	}
}

// handleCreateLive builds an incremental maintainer, optionally seeded
// with points (a non-empty seed runs the batch pipeline once, so the
// first published selection is exactly the batch selection).
func (s *Server) handleCreateLive(w http.ResponseWriter, r *http.Request) {
	var req createLiveRequest
	if err := s.decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if err := validateDatasetName(req.Name); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	metricName := req.Metric
	if metricName == "" {
		metricName = "euclidean"
	}
	metric, err := disc.MetricByName(metricName)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	pts := make([]disc.Point, len(req.Points))
	for i, p := range req.Points {
		pts[i] = disc.Point(p)
	}
	s.mux.Lock()
	defer s.mux.Unlock()
	if _, exists := s.live[req.Name]; exists {
		writeError(w, http.StatusConflict, "live maintainer %q already exists", req.Name)
		return
	}
	var u *disc.Updater
	if s.liveDir == "" {
		u, err = disc.NewUpdater(pts, req.Radius, disc.WithMetric(metric))
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	} else {
		// Durable create: refuse to silently resume on-disk state a
		// previous life left behind under this name — that is
		// RestoreLive's job, and seeding points on top of it would
		// corrupt the recovered history.
		snapPath, walPath := s.livePaths(req.Name)
		if _, err := os.Stat(snapPath); err == nil {
			writeError(w, http.StatusConflict, "live maintainer %q has a checkpoint on disk; restart with recovery to resume it", req.Name)
			return
		}
		if _, _, _, err := disc.DescribeDurable(walPath); err == nil {
			writeError(w, http.StatusConflict, "live maintainer %q has a write-ahead log on disk; restart with recovery to resume it", req.Name)
			return
		} else if !disc.IsNotExist(err) {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		u, err = disc.OpenUpdater(snapPath, walPath, req.Radius, s.durableOpts(metric)...)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		for _, p := range pts {
			if _, err := u.Insert(p); err != nil {
				u.Close()
				writeError(w, http.StatusBadRequest, "%v", err)
				return
			}
		}
		u.Flush()
	}
	ls := &liveState{name: req.Name, metric: metricName, updater: u}
	s.live[req.Name] = ls
	writeJSON(w, http.StatusCreated, s.liveInfoLocked(ls))
}

// livePaths returns the checkpoint and write-ahead-log paths backing a
// durable live maintainer.
func (s *Server) livePaths(name string) (snapPath, walPath string) {
	return filepath.Join(s.liveDir, name+".discsnap"), filepath.Join(s.liveDir, name+".wal")
}

// durableOpts assembles the disc options for opening a durable live
// maintainer.
func (s *Server) durableOpts(metric disc.Metric) []disc.Option {
	opts := []disc.Option{disc.WithMetric(metric), disc.WithFsync(s.liveFsync)}
	if s.liveFsyncInterval > 0 {
		opts = append(opts, disc.WithFsyncInterval(s.liveFsyncInterval))
	}
	return opts
}

// RestoreLive scans the live directory for checkpoint/WAL pairs and
// reopens each as a live maintainer: the snapshot warm-starts the
// state and the surviving log suffix replays on top, so every mutation
// the previous process acknowledged (under fsync=always) is visible
// again. Call once at boot, before serving. Returns the number of
// maintainers restored.
func (s *Server) RestoreLive() (int, error) {
	if s.liveDir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(s.liveDir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	names := map[string]bool{}
	for _, e := range entries {
		n := e.Name()
		if strings.HasSuffix(n, ".discsnap") {
			names[strings.TrimSuffix(n, ".discsnap")] = true
		} else if i := strings.Index(n, ".wal."); i > 0 {
			names[n[:i]] = true
		}
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)

	s.mux.Lock()
	defer s.mux.Unlock()
	restored := 0
	for _, name := range ordered {
		if _, exists := s.live[name]; exists {
			return restored, fmt.Errorf("server: live maintainer %q already loaded", name)
		}
		snapPath, walPath := s.livePaths(name)
		radius, metricName, err := s.describeLive(snapPath, walPath)
		if err != nil {
			return restored, fmt.Errorf("server: restore %q: %w", name, err)
		}
		metric, err := disc.MetricByName(metricName)
		if err != nil {
			return restored, fmt.Errorf("server: restore %q: %w", name, err)
		}
		u, err := disc.OpenUpdater(snapPath, walPath, radius, s.durableOpts(metric)...)
		if err != nil {
			return restored, fmt.Errorf("server: restore %q: %w", name, err)
		}
		s.live[name] = &liveState{name: name, metric: metricName, updater: u}
		restored++
	}
	return restored, nil
}

// describeLive recovers the radius and metric a durable maintainer was
// created with: from the WAL header when segments exist, else from the
// checkpoint itself (a checkpoint with no graph section cannot name
// its radius and is refused).
func (s *Server) describeLive(snapPath, walPath string) (float64, string, error) {
	if _, radius, metric, err := disc.DescribeDurable(walPath); err == nil {
		return radius, metric, nil
	} else if !disc.IsNotExist(err) {
		return 0, "", err
	}
	f, err := os.Open(snapPath)
	if err != nil {
		return 0, "", err
	}
	defer f.Close()
	sn, err := snap.Read(f)
	if err != nil {
		return 0, "", err
	}
	if sn.Graph == nil || sn.GraphRadius <= 0 {
		return 0, "", fmt.Errorf("checkpoint has no coverage graph; cannot determine the maintainer's radius")
	}
	return sn.GraphRadius, sn.Metric, nil
}

// handleLiveCheckpoint compacts a durable maintainer into its
// .discsnap file and rotates the write-ahead log to a fresh epoch,
// bounding recovery time. 400 on memory-only maintainers.
func (s *Server) handleLiveCheckpoint(w http.ResponseWriter, r *http.Request) {
	ls := s.lookupLive(w, r)
	if ls == nil {
		return
	}
	if !ls.updater.Durable() {
		writeError(w, http.StatusBadRequest, "live maintainer %q is memory-only (start the server with a live directory)", ls.name)
		return
	}
	snapPath, _ := s.livePaths(ls.name)
	if err := ls.updater.Checkpoint(snapPath); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, snapshotBody{Dataset: ls.name, Path: snapPath})
}

func (s *Server) handleListLive(w http.ResponseWriter, _ *http.Request) {
	s.mux.Lock()
	defer s.mux.Unlock()
	infos := make([]liveInfo, 0, len(s.live))
	for _, ls := range s.live {
		infos = append(infos, s.liveInfoLocked(ls))
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

// lookupLive resolves the {name} path value, writing the 404 itself.
func (s *Server) lookupLive(w http.ResponseWriter, r *http.Request) *liveState {
	s.mux.Lock()
	defer s.mux.Unlock()
	ls, ok := s.live[r.PathValue("name")]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown live maintainer %q", r.PathValue("name"))
		return nil
	}
	return ls
}

func (s *Server) handleGetLive(w http.ResponseWriter, r *http.Request) {
	ls := s.lookupLive(w, r)
	if ls == nil {
		return
	}
	writeJSON(w, http.StatusOK, s.liveInfoLocked(ls))
}

type liveInsertRequest struct {
	Point []float64 `json:"point"`
	Flush bool      `json:"flush,omitempty"`
}

type liveMutationBody struct {
	ID       int  `json:"id"`
	Selected bool `json:"selected"`
	Live     int  `json:"live"`
	Size     int  `json:"size"`
	Pending  int  `json:"pending"`
}

// handleLiveInsert adds a point. By default the mutation is
// bounded-stale — the published selection is unchanged and Pending
// reports the dirty components; with "flush": true the operation
// converges before responding and Selected reports whether the new
// point became a representative.
func (s *Server) handleLiveInsert(w http.ResponseWriter, r *http.Request) {
	var req liveInsertRequest
	if err := s.decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	ls := s.lookupLive(w, r)
	if ls == nil {
		return
	}
	// Dimensionality is validated by the updater itself, which
	// serialises mutations — no server-side cache to race on.
	id, err := ls.updater.Insert(disc.Point(req.Point))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Flush {
		ls.updater.Flush()
	}
	writeJSON(w, http.StatusCreated, liveMutationBody{
		ID:       id,
		Selected: ls.updater.IsRepresentative(id),
		Live:     ls.updater.Len(),
		Size:     ls.updater.Size(),
		Pending:  ls.updater.Pending(),
	})
}

type liveDeleteRequest struct {
	ID    int  `json:"id"`
	Flush bool `json:"flush,omitempty"`
}

// handleLiveDelete retracts a live object; same staleness contract as
// insert.
func (s *Server) handleLiveDelete(w http.ResponseWriter, r *http.Request) {
	var req liveDeleteRequest
	if err := s.decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	ls := s.lookupLive(w, r)
	if ls == nil {
		return
	}
	if err := ls.updater.Delete(req.ID); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Flush {
		ls.updater.Flush()
	}
	writeJSON(w, http.StatusOK, liveMutationBody{
		ID:      req.ID,
		Live:    ls.updater.Len(),
		Size:    ls.updater.Size(),
		Pending: ls.updater.Pending(),
	})
}

type liveFlushBody struct {
	Repaired int `json:"repaired"`
	Size     int `json:"size"`
	Pending  int `json:"pending"`
}

func (s *Server) handleLiveFlush(w http.ResponseWriter, r *http.Request) {
	ls := s.lookupLive(w, r)
	if ls == nil {
		return
	}
	repaired := ls.updater.Flush()
	writeJSON(w, http.StatusOK, liveFlushBody{
		Repaired: repaired,
		Size:     ls.updater.Size(),
		Pending:  ls.updater.Pending(),
	})
}

type liveSelectionBody struct {
	Size    int   `json:"size"`
	Pending int   `json:"pending"`
	IDs     []int `json:"ids"`
}

// handleLiveSelection serves the last published selection — lock-free
// on the updater, so it stays responsive while repairs run.
func (s *Server) handleLiveSelection(w http.ResponseWriter, r *http.Request) {
	ls := s.lookupLive(w, r)
	if ls == nil {
		return
	}
	ids := ls.updater.Selection()
	writeJSON(w, http.StatusOK, liveSelectionBody{
		Size:    len(ids),
		Pending: ls.updater.Pending(),
		IDs:     append([]int(nil), ids...),
	})
}
