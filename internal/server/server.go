// Package server exposes DisC diversification as an HTTP service
// (stdlib net/http only): upload a dataset, request diverse subsets at
// any radius, and zoom results in or out interactively — the usage mode
// the paper's introduction motivates, where each user adapts the
// diversification degree of a shared query result.
//
// API (JSON everywhere):
//
//	POST /v1/datasets                     upload {name, metric, points, labels?}
//	GET  /v1/datasets                     list datasets
//	GET  /v1/datasets/{name}              dataset info
//	POST /v1/datasets/{name}/select      {radius, algorithm?} -> result
//	GET  /v1/results/{id}                 re-fetch a result
//	POST /v1/results/{id}/zoom           {radius} -> adapted result
//	POST /v1/results/{id}/localzoom      {center, radius} -> local view
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	disc "github.com/discdiversity/disc"
)

// Server is the HTTP handler. Create with New; it is safe for concurrent
// use.
type Server struct {
	mux sync.Mutex

	datasets map[string]*datasetState
	results  map[string]*resultState
	nextID   int
}

type datasetState struct {
	name   string
	metric string
	div    *disc.Diversifier
	labels []string
	dim    int
	size   int
}

type resultState struct {
	id      string
	dataset *datasetState
	res     *disc.Result
}

// New creates an empty server.
func New() *Server {
	return &Server{
		datasets: make(map[string]*datasetState),
		results:  make(map[string]*resultState),
	}
}

// Handler returns the routing handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets", s.handleCreateDataset)
	mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	mux.HandleFunc("GET /v1/datasets/{name}", s.handleGetDataset)
	mux.HandleFunc("POST /v1/datasets/{name}/select", s.handleSelect)
	mux.HandleFunc("GET /v1/results/{id}", s.handleGetResult)
	mux.HandleFunc("POST /v1/results/{id}/zoom", s.handleZoom)
	mux.HandleFunc("POST /v1/results/{id}/localzoom", s.handleLocalZoom)
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

type createDatasetRequest struct {
	Name   string      `json:"name"`
	Metric string      `json:"metric"`
	Points [][]float64 `json:"points"`
	Labels []string    `json:"labels,omitempty"`
}

type datasetInfo struct {
	Name   string `json:"name"`
	Metric string `json:"metric"`
	Size   int    `json:"size"`
	Dim    int    `json:"dim"`
}

func (s *Server) handleCreateDataset(w http.ResponseWriter, r *http.Request) {
	var req createDatasetRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, "dataset name required")
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, "points required")
		return
	}
	if req.Labels != nil && len(req.Labels) != len(req.Points) {
		writeError(w, http.StatusBadRequest, "%d labels for %d points", len(req.Labels), len(req.Points))
		return
	}
	metricName := req.Metric
	if metricName == "" {
		metricName = "euclidean"
	}
	metric, err := disc.MetricByName(metricName)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	pts := make([]disc.Point, len(req.Points))
	for i, p := range req.Points {
		pts[i] = disc.Point(p)
	}
	div, err := disc.New(pts, disc.WithMetric(metric))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mux.Lock()
	defer s.mux.Unlock()
	if _, exists := s.datasets[req.Name]; exists {
		writeError(w, http.StatusConflict, "dataset %q already exists", req.Name)
		return
	}
	ds := &datasetState{
		name:   req.Name,
		metric: metricName,
		div:    div,
		labels: req.Labels,
		dim:    len(pts[0]),
		size:   len(pts),
	}
	s.datasets[req.Name] = ds
	writeJSON(w, http.StatusCreated, datasetInfo{Name: ds.name, Metric: ds.metric, Size: ds.size, Dim: ds.dim})
}

func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	s.mux.Lock()
	defer s.mux.Unlock()
	infos := make([]datasetInfo, 0, len(s.datasets))
	for _, ds := range s.datasets {
		infos = append(infos, datasetInfo{Name: ds.name, Metric: ds.metric, Size: ds.size, Dim: ds.dim})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	s.mux.Lock()
	defer s.mux.Unlock()
	ds, ok := s.datasets[r.PathValue("name")]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, datasetInfo{Name: ds.name, Metric: ds.metric, Size: ds.size, Dim: ds.dim})
}

type selectRequest struct {
	Radius    float64 `json:"radius"`
	Algorithm string  `json:"algorithm,omitempty"`
}

type resultBody struct {
	ID        string   `json:"id"`
	Dataset   string   `json:"dataset"`
	Radius    float64  `json:"radius"`
	Algorithm string   `json:"algorithm"`
	Size      int      `json:"size"`
	IDs       []int    `json:"ids"`
	Labels    []string `json:"labels,omitempty"`
	Accesses  int64    `json:"accesses"`
}

func algorithmByName(name string) (disc.Algorithm, error) {
	switch name {
	case "", "greedy":
		return disc.AlgorithmGreedy, nil
	case "basic":
		return disc.AlgorithmBasic, nil
	case "white-greedy":
		return disc.AlgorithmGreedyWhite, nil
	case "lazy-grey":
		return disc.AlgorithmLazyGrey, nil
	case "lazy-white":
		return disc.AlgorithmLazyWhite, nil
	case "coverage":
		return disc.AlgorithmCoverage, nil
	case "fast-coverage":
		return disc.AlgorithmFastCoverage, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", name)
	}
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req selectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	alg, err := algorithmByName(req.Algorithm)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mux.Lock()
	defer s.mux.Unlock()
	ds, ok := s.datasets[r.PathValue("name")]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", r.PathValue("name"))
		return
	}
	res, err := ds.div.Select(req.Radius, disc.WithAlgorithm(alg))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rs := s.storeResultLocked(ds, res)
	writeJSON(w, http.StatusCreated, s.resultBodyLocked(rs))
}

// storeResultLocked registers a result and assigns it an id. Caller holds
// the lock.
func (s *Server) storeResultLocked(ds *datasetState, res *disc.Result) *resultState {
	s.nextID++
	rs := &resultState{id: "r" + strconv.Itoa(s.nextID), dataset: ds, res: res}
	s.results[rs.id] = rs
	return rs
}

func (s *Server) resultBodyLocked(rs *resultState) resultBody {
	ids := rs.res.SortedIDs()
	body := resultBody{
		ID:        rs.id,
		Dataset:   rs.dataset.name,
		Radius:    rs.res.Radius(),
		Algorithm: rs.res.Algorithm(),
		Size:      rs.res.Size(),
		IDs:       ids,
		Accesses:  rs.res.Accesses(),
	}
	if rs.dataset.labels != nil {
		body.Labels = make([]string, len(ids))
		for i, id := range ids {
			body.Labels[i] = rs.dataset.labels[id]
		}
	}
	return body
}

func (s *Server) handleGetResult(w http.ResponseWriter, r *http.Request) {
	s.mux.Lock()
	defer s.mux.Unlock()
	rs, ok := s.results[r.PathValue("id")]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown result %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.resultBodyLocked(rs))
}

type zoomRequest struct {
	Radius float64 `json:"radius"`
}

func (s *Server) handleZoom(w http.ResponseWriter, r *http.Request) {
	var req zoomRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	s.mux.Lock()
	defer s.mux.Unlock()
	rs, ok := s.results[r.PathValue("id")]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown result %q", r.PathValue("id"))
		return
	}
	var zoomed *disc.Result
	var err error
	switch {
	case req.Radius < rs.res.Radius():
		zoomed, err = rs.dataset.div.ZoomIn(rs.res, req.Radius)
	case req.Radius > rs.res.Radius():
		zoomed, err = rs.dataset.div.ZoomOut(rs.res, req.Radius, disc.ZoomOutGreedyLargest)
	default:
		writeError(w, http.StatusBadRequest, "radius %g equals the current radius", req.Radius)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	nrs := s.storeResultLocked(rs.dataset, zoomed)
	writeJSON(w, http.StatusCreated, s.resultBodyLocked(nrs))
}

type localZoomRequest struct {
	Center int     `json:"center"`
	Radius float64 `json:"radius"`
}

type localZoomBody struct {
	Center          int      `json:"center"`
	LocalRadius     float64  `json:"localRadius"`
	RegionSize      int      `json:"regionSize"`
	Added           []int    `json:"added"`
	Removed         []int    `json:"removed"`
	Representatives []int    `json:"representatives"`
	Labels          []string `json:"labels,omitempty"`
}

func (s *Server) handleLocalZoom(w http.ResponseWriter, r *http.Request) {
	var req localZoomRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	s.mux.Lock()
	defer s.mux.Unlock()
	rs, ok := s.results[r.PathValue("id")]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown result %q", r.PathValue("id"))
		return
	}
	var lz *disc.LocalZoom
	var err error
	switch {
	case req.Radius < rs.res.Radius():
		lz, err = rs.dataset.div.LocalZoomIn(rs.res, req.Center, req.Radius)
	case req.Radius > rs.res.Radius():
		lz, err = rs.dataset.div.LocalZoomOut(rs.res, req.Center, req.Radius)
	default:
		writeError(w, http.StatusBadRequest, "radius %g equals the current radius", req.Radius)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body := localZoomBody{
		Center:          lz.Center,
		LocalRadius:     lz.LocalRadius,
		RegionSize:      len(lz.Region),
		Added:           lz.Added,
		Removed:         lz.Removed,
		Representatives: lz.Representatives,
	}
	if rs.dataset.labels != nil {
		body.Labels = make([]string, len(lz.Representatives))
		for i, id := range lz.Representatives {
			body.Labels[i] = rs.dataset.labels[id]
		}
	}
	writeJSON(w, http.StatusOK, body)
}
