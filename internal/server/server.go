// Package server exposes DisC diversification as an HTTP service
// (stdlib net/http only): upload a dataset, request diverse subsets at
// any radius, and zoom results in or out interactively — the usage mode
// the paper's introduction motivates, where each user adapts the
// diversification degree of a shared query result.
//
// API (JSON everywhere):
//
//	POST /v1/datasets                     upload {name, metric, points,
//	                                      labels?, precision?}
//	GET  /v1/datasets                     list datasets
//	GET  /v1/datasets/{name}              dataset info
//	POST /v1/datasets/{name}/select      {radius, algorithm?} -> result
//	POST /v1/datasets/{name}/snapshot    persist the dataset (and any
//	                                      prepared index artifacts) as a
//	                                      .discsnap file in the snapshot
//	                                      directory (see WithSnapshotDir)
//	GET  /v1/results/{id}                 re-fetch a result
//	POST /v1/results/{id}/zoom           {radius} -> adapted result
//	POST /v1/results/{id}/localzoom      {center, radius} -> local view
//	GET  /healthz                         liveness probe
//
// Live maintainers (incremental r-DisC under inserts/deletes, backed by
// disc.Updater — grid-servable metrics only):
//
//	POST /v1/live                         create {name, radius, metric?, points?}
//	GET  /v1/live                         list live maintainers
//	GET  /v1/live/{name}                  maintainer info (live, selected, pending, state)
//	POST /v1/live/{name}/insert          {point, flush?} -> assigned id
//	POST /v1/live/{name}/delete          {id, flush?} -> updated counts
//	POST /v1/live/{name}/flush           repair dirty components, publish
//	GET  /v1/live/{name}/selection       last published representative ids
//	POST /v1/live/{name}/unquarantine    lift a quarantine after repair
//
// Mutations are bounded-stale by default: reads keep serving the last
// published selection until a flush converges the dirty components.
// Pass "flush": true on a mutation for per-operation convergence.
//
// Every live maintainer is owned by a supervised lifecycle (see
// internal/manager and docs/OPERATIONS.md): a dataset whose disk
// fails recovers — or quarantines — independently, answering 503 with
// a Retry-After hint while every other dataset keeps serving.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	disc "github.com/discdiversity/disc"
	"github.com/discdiversity/disc/internal/manager"
	"github.com/discdiversity/disc/internal/snap"
	"github.com/discdiversity/disc/internal/vfs"
)

// Server is the HTTP handler. Create with New; it is safe for concurrent
// use.
type Server struct {
	mux sync.Mutex

	snapshotDir string

	// Live-durability configuration (WithLiveDir and friends): when
	// liveDir (or dataDir) is set, live maintainers are created through
	// disc.OpenUpdater with a snapshot + write-ahead log pair in that
	// directory, and RestoreLive resumes them after a restart.
	liveDir           string
	dataDir           string
	liveFsync         disc.FsyncPolicy
	liveFsyncInterval time.Duration
	storageFS         vfs.FS
	backoffBase       time.Duration
	backoffCap        time.Duration
	maxAttempts       int

	// Request-hardening configuration (see middleware.go).
	maxInflight    int
	requestTimeout time.Duration
	maxBodyBytes   int64

	// Observability: structured logger (WithLogger), readiness flag
	// (SetReady; true from birth so embedded servers need no opt-in) and
	// the per-request id sequence.
	log    *slog.Logger
	ready  atomic.Bool
	reqSeq atomic.Uint64

	datasets map[string]*datasetState
	results  map[string]*resultState
	nextID   int

	// mgr owns every live maintainer's lifecycle: supervised recovery,
	// corruption quarantine, degraded-mode reads. Built by New after
	// the options have resolved the storage layout.
	mgr *manager.Manager
}

// Option configures New.
type Option func(*Server)

// WithSnapshotDir enables the snapshot-save endpoint, writing
// <dir>/<dataset>.discsnap files. An empty dir leaves the endpoint
// disabled.
func WithSnapshotDir(dir string) Option {
	return func(s *Server) { s.snapshotDir = dir }
}

// WithLiveDir makes live maintainers durable: each is backed by a
// <dir>/<name>.discsnap checkpoint and a <dir>/<name>.wal write-ahead
// log, so a crashed or restarted server resumes them with RestoreLive.
// An empty dir keeps live maintainers memory-only.
func WithLiveDir(dir string) Option {
	return func(s *Server) { s.liveDir = dir }
}

// WithLiveFsync sets the WAL fsync policy for durable live maintainers
// (default disc.FsyncAlways: every acknowledged mutation survives any
// crash).
func WithLiveFsync(p disc.FsyncPolicy) Option {
	return func(s *Server) { s.liveFsync = p }
}

// WithLiveFsyncInterval sets the batching interval used when the fsync
// policy is disc.FsyncInterval.
func WithLiveFsyncInterval(d time.Duration) Option {
	return func(s *Server) { s.liveFsyncInterval = d }
}

// WithDataDir makes live maintainers durable in per-dataset home
// directories (<dir>/<name>/current.discsnap, <dir>/<name>/wal.*)
// instead of the flat WithLiveDir layout. Takes precedence over
// WithLiveDir when both are set.
func WithDataDir(dir string) Option {
	return func(s *Server) { s.dataDir = dir }
}

// WithStorageFS routes every durable-state file operation through fsys
// — the chaos suite injects a fault-scheduling filesystem here. Nil
// (the default) means the real filesystem.
func WithStorageFS(fsys vfs.FS) Option {
	return func(s *Server) { s.storageFS = fsys }
}

// WithRecoveryBackoff tunes per-dataset recovery: the retry delay
// starts at base and doubles up to cap (with jitter), and after
// maxAttempts consecutive failures the dataset parks — serving
// read-only from its last good snapshot when one exists — while
// retries continue at the cap. Zeroes keep the defaults (50ms / 5s / 5).
func WithRecoveryBackoff(base, cap time.Duration, maxAttempts int) Option {
	return func(s *Server) {
		s.backoffBase = base
		s.backoffCap = cap
		s.maxAttempts = maxAttempts
	}
}

// WithMaxInflight bounds concurrently-served requests; excess requests
// receive 503 with a Retry-After header instead of queueing. Zero or
// negative disables shedding.
func WithMaxInflight(n int) Option {
	return func(s *Server) { s.maxInflight = n }
}

// WithRequestTimeout bounds each request's wall-clock time; requests
// over the deadline receive 503 and their context is cancelled. Zero
// disables.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.requestTimeout = d }
}

// WithMaxBodyBytes caps request bodies on mutating endpoints via
// http.MaxBytesReader. Zero disables.
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) { s.maxBodyBytes = n }
}

// WithLogger sets the structured logger for panic reports and
// debug-level access logs. Defaults to slog.Default().
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) { s.log = l }
}

// SetReady flips the readiness state reported by GET /readyz. A server
// is ready from birth; discserve clears the flag before boot-time WAL
// recovery (RestoreLive) and restores it once recovery converges, so a
// load balancer never routes traffic to a half-replayed server. While
// not ready, API requests are refused with 503 (see gateReady).
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// logger returns the configured logger, falling back to slog.Default.
func (s *Server) logger() *slog.Logger {
	if s.log != nil {
		return s.log
	}
	return slog.Default()
}

type datasetState struct {
	name   string
	metric string
	div    *disc.Diversifier
	labels []string
	dim    int
	size   int
}

type resultState struct {
	id      string
	dataset *datasetState
	res     *disc.Result
}

// New creates an empty server.
func New(opts ...Option) *Server {
	s := &Server{
		liveFsync: disc.FsyncAlways,
		datasets:  make(map[string]*datasetState),
		results:   make(map[string]*resultState),
	}
	s.ready.Store(true)
	for _, opt := range opts {
		opt(s)
	}
	dir, homes := s.liveDir, false
	if s.dataDir != "" {
		dir, homes = s.dataDir, true
	}
	s.mgr = manager.New(manager.Config{
		Dir:           dir,
		Homes:         homes,
		Fsync:         s.liveFsync,
		FsyncInterval: s.liveFsyncInterval,
		FS:            s.storageFS,
		Logger:        s.log,
		BackoffBase:   s.backoffBase,
		BackoffCap:    s.backoffCap,
		MaxAttempts:   s.maxAttempts,
	})
	return s
}

// Handler returns the routing handler: the API mux behind the
// hardening chain (panic recovery, readiness gate, bounded admission,
// body limits, per-request timeouts — see middleware.go), every route
// wrapped with its per-route request metrics (see metrics.go), and
// /healthz, /readyz and /metrics routed around the chain so probes and
// scrapes answer even at capacity or mid-recovery.
func (s *Server) Handler() http.Handler {
	api := http.NewServeMux()
	route := func(method, pattern string, h http.HandlerFunc) {
		api.Handle(method+" "+pattern, s.instrument(method, pattern, h))
	}
	route("POST", "/v1/datasets", s.handleCreateDataset)
	route("GET", "/v1/datasets", s.handleListDatasets)
	route("GET", "/v1/datasets/{name}", s.handleGetDataset)
	route("POST", "/v1/datasets/{name}/select", s.handleSelect)
	route("POST", "/v1/datasets/{name}/snapshot", s.handleSaveSnapshot)
	route("GET", "/v1/results/{id}", s.handleGetResult)
	route("POST", "/v1/results/{id}/zoom", s.handleZoom)
	route("POST", "/v1/results/{id}/localzoom", s.handleLocalZoom)
	route("POST", "/v1/live", s.handleCreateLive)
	route("GET", "/v1/live", s.handleListLive)
	route("GET", "/v1/live/{name}", s.handleGetLive)
	route("POST", "/v1/live/{name}/insert", s.handleLiveInsert)
	route("POST", "/v1/live/{name}/delete", s.handleLiveDelete)
	route("POST", "/v1/live/{name}/flush", s.handleLiveFlush)
	route("POST", "/v1/live/{name}/snapshot", s.handleLiveCheckpoint)
	route("GET", "/v1/live/{name}/selection", s.handleLiveSelection)
	route("POST", "/v1/live/{name}/unquarantine", s.handleLiveUnquarantine)

	root := http.NewServeMux()
	root.HandleFunc("GET /healthz", s.handleHealthz)
	root.HandleFunc("GET /readyz", s.handleReadyz)
	root.HandleFunc("GET /metrics", s.handleMetrics)
	root.Handle("/", s.chain(api))
	return root
}

// Close stops every dataset supervisor and releases every durable live
// maintainer's write-ahead log, syncing acknowledged mutations to
// disk. The server keeps answering reads afterwards, but durable
// mutations fail; call it once the listener has drained.
func (s *Server) Close() error {
	return s.mgr.Close()
}

// LoadSnapshot registers a dataset warm-started from a .discsnap stream
// (see disc.LoadDiversifier): the dataset and any persisted index
// artifacts are rehydrated, so the first selection at the snapshot's
// radius skips the index build entirely. The name must not collide with
// an existing dataset. Labels are not part of the snapshot format, so a
// warm-started dataset serves results without them.
func (s *Server) LoadSnapshot(name string, r io.Reader) error {
	if err := validateDatasetName(name); err != nil {
		return fmt.Errorf("server: %v", err)
	}
	div, err := disc.LoadDiversifier(r)
	if err != nil {
		return err
	}
	s.mux.Lock()
	defer s.mux.Unlock()
	if _, exists := s.datasets[name]; exists {
		return fmt.Errorf("server: dataset %q already exists", name)
	}
	s.datasets[name] = &datasetState{
		name:   name,
		metric: div.Metric().Name(),
		div:    div,
		dim:    div.Point(0).Dim(),
		size:   div.Len(),
	}
	return nil
}

// handleHealthz is the liveness probe. Deliberately lock-free: the
// select/zoom handlers hold the server mutex for their full duration
// (seconds on large datasets), and a probe that queued behind them
// would time out exactly when the server is busy — the opposite of
// what an orchestrator should see.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyzBody is the /readyz payload. Datasets appears once live
// maintainers exist: each one's lifecycle state, so an orchestrator
// (or an operator with curl) sees a quarantined or still-recovering
// dataset without touching its routes.
type readyzBody struct {
	Status   string                           `json:"status"`
	Datasets map[string]manager.DatasetStatus `json:"datasets,omitempty"`
}

// handleReadyz is the readiness probe: 200 once the server may receive
// traffic, 503 while boot-time WAL recovery is still replaying (see
// SetReady). It never takes the server's select lock, for the same
// reason as handleHealthz (the per-dataset status reads take only the
// manager's brief registry locks).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	body := readyzBody{Status: "ready"}
	if states := s.mgr.States(); len(states) > 0 {
		body.Datasets = states
	}
	if s.ready.Load() {
		writeJSON(w, http.StatusOK, body)
		return
	}
	body.Status = "recovering"
	writeJSON(w, http.StatusServiceUnavailable, body)
}

// decodeJSON decodes a request body, counting bodies rejected by the
// size cap (the 400 mapping in each handler's error path is unchanged —
// the counter is how operators see a client hitting the limit).
func (s *Server) decodeJSON(r *http.Request, dst any) error {
	err := json.NewDecoder(r.Body).Decode(dst)
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		metBodyCap.Inc()
	}
	return err
}

type snapshotBody struct {
	Dataset string `json:"dataset"`
	Path    string `json:"path"`
	Bytes   int64  `json:"bytes"`
}

// handleSaveSnapshot persists a dataset (and whatever per-radius index
// artifacts its diversifier currently holds) to
// <snapshotDir>/<name>.discsnap via the shared crash-atomic save
// (write a temp file, fsync, rename, fsync the directory), so a
// concurrent warm start never observes a torn snapshot and a power
// loss right after the response cannot lose it.
func (s *Server) handleSaveSnapshot(w http.ResponseWriter, r *http.Request) {
	name, ok := s.pathName(w, r)
	if !ok {
		return
	}
	s.mux.Lock()
	defer s.mux.Unlock()
	if s.snapshotDir == "" {
		writeError(w, http.StatusBadRequest, "snapshot directory not configured (start discserve with -snapshot)")
		return
	}
	ds, ok := s.datasets[name]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", name)
		return
	}
	path := filepath.Join(s.snapshotDir, ds.name+".discsnap")
	var size int64
	err := snap.WriteFileAtomicFS(s.storageFS, path, func(w io.Writer) error {
		cw := &countingWriter{w: w}
		if err := ds.div.WriteSnapshot(cw); err != nil {
			return err
		}
		size = cw.n
		return nil
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, snapshotBody{Dataset: ds.name, Path: path, Bytes: size})
}

// countingWriter counts the bytes passed through to w.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// validateDatasetName rejects empty names and anything that is not a
// plain path component: dataset names become snapshot file names
// (<dir>/<name>.discsnap), so separators or dot-names must never reach
// filepath.Join where they could escape the snapshot directory. It is
// the manager's validator — one rule for every route and boot scan.
func validateDatasetName(name string) error {
	return manager.ValidateName(name)
}

// pathName extracts and validates the {name} path value. An invalid
// name (separators, dot-names — anything validateDatasetName rejects)
// can never name a dataset, so it is refused with 400 before reaching
// any map lookup or filepath.Join.
func (s *Server) pathName(w http.ResponseWriter, r *http.Request) (string, bool) {
	name := r.PathValue("name")
	if err := validateDatasetName(name); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return "", false
	}
	return name, true
}

type createDatasetRequest struct {
	Name   string      `json:"name"`
	Metric string      `json:"metric"`
	Points [][]float64 `json:"points"`
	Labels []string    `json:"labels,omitempty"`
	// Precision selects the coordinate storage width: "float64" (the
	// default) or "float32", which rounds at ingest and enables the
	// batched float32 pre-filter for high-dimensional data.
	Precision string `json:"precision,omitempty"`
}

type datasetInfo struct {
	Name   string `json:"name"`
	Metric string `json:"metric"`
	Size   int    `json:"size"`
	Dim    int    `json:"dim"`
}

func (s *Server) handleCreateDataset(w http.ResponseWriter, r *http.Request) {
	var req createDatasetRequest
	if err := s.decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if err := validateDatasetName(req.Name); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, "points required")
		return
	}
	if req.Labels != nil && len(req.Labels) != len(req.Points) {
		writeError(w, http.StatusBadRequest, "%d labels for %d points", len(req.Labels), len(req.Points))
		return
	}
	metricName := req.Metric
	if metricName == "" {
		metricName = "euclidean"
	}
	metric, err := disc.MetricByName(metricName)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := []disc.Option{disc.WithMetric(metric)}
	switch req.Precision {
	case "", "float64":
	case "float32":
		opts = append(opts, disc.WithPrecision(disc.PrecisionFloat32))
	default:
		writeError(w, http.StatusBadRequest, "unknown precision %q (supported: float64, float32)", req.Precision)
		return
	}
	pts := make([]disc.Point, len(req.Points))
	for i, p := range req.Points {
		pts[i] = disc.Point(p)
	}
	div, err := disc.New(pts, opts...)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mux.Lock()
	defer s.mux.Unlock()
	if _, exists := s.datasets[req.Name]; exists {
		writeError(w, http.StatusConflict, "dataset %q already exists", req.Name)
		return
	}
	ds := &datasetState{
		name:   req.Name,
		metric: metricName,
		div:    div,
		labels: req.Labels,
		dim:    len(pts[0]),
		size:   len(pts),
	}
	s.datasets[req.Name] = ds
	writeJSON(w, http.StatusCreated, datasetInfo{Name: ds.name, Metric: ds.metric, Size: ds.size, Dim: ds.dim})
}

func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	s.mux.Lock()
	defer s.mux.Unlock()
	infos := make([]datasetInfo, 0, len(s.datasets))
	for _, ds := range s.datasets {
		infos = append(infos, datasetInfo{Name: ds.name, Metric: ds.metric, Size: ds.size, Dim: ds.dim})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	name, ok := s.pathName(w, r)
	if !ok {
		return
	}
	s.mux.Lock()
	defer s.mux.Unlock()
	ds, ok := s.datasets[name]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", name)
		return
	}
	writeJSON(w, http.StatusOK, datasetInfo{Name: ds.name, Metric: ds.metric, Size: ds.size, Dim: ds.dim})
}

type selectRequest struct {
	Radius    float64 `json:"radius"`
	Algorithm string  `json:"algorithm,omitempty"`
}

type resultBody struct {
	ID        string   `json:"id"`
	Dataset   string   `json:"dataset"`
	Radius    float64  `json:"radius"`
	Algorithm string   `json:"algorithm"`
	Size      int      `json:"size"`
	IDs       []int    `json:"ids"`
	Labels    []string `json:"labels,omitempty"`
	Accesses  int64    `json:"accesses"`
}

func algorithmByName(name string) (disc.Algorithm, error) {
	switch name {
	case "", "greedy":
		return disc.AlgorithmGreedy, nil
	case "basic":
		return disc.AlgorithmBasic, nil
	case "white-greedy":
		return disc.AlgorithmGreedyWhite, nil
	case "lazy-grey":
		return disc.AlgorithmLazyGrey, nil
	case "lazy-white":
		return disc.AlgorithmLazyWhite, nil
	case "coverage":
		return disc.AlgorithmCoverage, nil
	case "fast-coverage":
		return disc.AlgorithmFastCoverage, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", name)
	}
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req selectRequest
	if err := s.decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	alg, err := algorithmByName(req.Algorithm)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	name, ok := s.pathName(w, r)
	if !ok {
		return
	}

	s.mux.Lock()
	defer s.mux.Unlock()
	ds, ok := s.datasets[name]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", name)
		return
	}
	res, err := ds.div.Select(req.Radius, disc.WithAlgorithm(alg))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rs := s.storeResultLocked(ds, res)
	writeJSON(w, http.StatusCreated, s.resultBodyLocked(rs))
}

// storeResultLocked registers a result and assigns it an id. Caller holds
// the lock.
func (s *Server) storeResultLocked(ds *datasetState, res *disc.Result) *resultState {
	s.nextID++
	rs := &resultState{id: "r" + strconv.Itoa(s.nextID), dataset: ds, res: res}
	s.results[rs.id] = rs
	return rs
}

func (s *Server) resultBodyLocked(rs *resultState) resultBody {
	ids := rs.res.SortedIDs()
	body := resultBody{
		ID:        rs.id,
		Dataset:   rs.dataset.name,
		Radius:    rs.res.Radius(),
		Algorithm: rs.res.Algorithm(),
		Size:      rs.res.Size(),
		IDs:       ids,
		Accesses:  rs.res.Accesses(),
	}
	if rs.dataset.labels != nil {
		body.Labels = make([]string, len(ids))
		for i, id := range ids {
			body.Labels[i] = rs.dataset.labels[id]
		}
	}
	return body
}

func (s *Server) handleGetResult(w http.ResponseWriter, r *http.Request) {
	s.mux.Lock()
	defer s.mux.Unlock()
	rs, ok := s.results[r.PathValue("id")]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown result %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.resultBodyLocked(rs))
}

type zoomRequest struct {
	Radius float64 `json:"radius"`
}

func (s *Server) handleZoom(w http.ResponseWriter, r *http.Request) {
	var req zoomRequest
	if err := s.decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	s.mux.Lock()
	defer s.mux.Unlock()
	rs, ok := s.results[r.PathValue("id")]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown result %q", r.PathValue("id"))
		return
	}
	var zoomed *disc.Result
	var err error
	switch {
	case req.Radius < rs.res.Radius():
		zoomed, err = rs.dataset.div.ZoomIn(rs.res, req.Radius)
	case req.Radius > rs.res.Radius():
		zoomed, err = rs.dataset.div.ZoomOut(rs.res, req.Radius, disc.ZoomOutGreedyLargest)
	default:
		writeError(w, http.StatusBadRequest, "radius %g equals the current radius", req.Radius)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	nrs := s.storeResultLocked(rs.dataset, zoomed)
	writeJSON(w, http.StatusCreated, s.resultBodyLocked(nrs))
}

type localZoomRequest struct {
	Center int     `json:"center"`
	Radius float64 `json:"radius"`
}

type localZoomBody struct {
	Center          int      `json:"center"`
	LocalRadius     float64  `json:"localRadius"`
	RegionSize      int      `json:"regionSize"`
	Added           []int    `json:"added"`
	Removed         []int    `json:"removed"`
	Representatives []int    `json:"representatives"`
	Labels          []string `json:"labels,omitempty"`
}

func (s *Server) handleLocalZoom(w http.ResponseWriter, r *http.Request) {
	var req localZoomRequest
	if err := s.decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	s.mux.Lock()
	defer s.mux.Unlock()
	rs, ok := s.results[r.PathValue("id")]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown result %q", r.PathValue("id"))
		return
	}
	var lz *disc.LocalZoom
	var err error
	switch {
	case req.Radius < rs.res.Radius():
		lz, err = rs.dataset.div.LocalZoomIn(rs.res, req.Center, req.Radius)
	case req.Radius > rs.res.Radius():
		lz, err = rs.dataset.div.LocalZoomOut(rs.res, req.Center, req.Radius)
	default:
		writeError(w, http.StatusBadRequest, "radius %g equals the current radius", req.Radius)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body := localZoomBody{
		Center:          lz.Center,
		LocalRadius:     lz.LocalRadius,
		RegionSize:      len(lz.Region),
		Added:           lz.Added,
		Removed:         lz.Removed,
		Representatives: lz.Representatives,
	}
	if rs.dataset.labels != nil {
		body.Labels = make([]string, len(lz.Representatives))
		for i, id := range lz.Representatives {
			body.Labels[i] = rs.dataset.labels[id]
		}
	}
	writeJSON(w, http.StatusOK, body)
}

type createLiveRequest struct {
	Name   string      `json:"name"`
	Metric string      `json:"metric,omitempty"`
	Radius float64     `json:"radius"`
	Points [][]float64 `json:"points,omitempty"`
}

type liveInfo struct {
	Name     string  `json:"name"`
	Metric   string  `json:"metric"`
	Radius   float64 `json:"radius"`
	Dim      int     `json:"dim"`
	Live     int     `json:"live"`
	Selected int     `json:"selected"`
	Pending  int     `json:"pending"`
	State    string  `json:"state"`
	Reason   string  `json:"reason,omitempty"`
}

func liveInfoFrom(in manager.Info) liveInfo {
	return liveInfo{
		Name:     in.Name,
		Metric:   in.Metric,
		Radius:   in.Radius,
		Dim:      in.Dim,
		Live:     in.Live,
		Selected: in.Selected,
		Pending:  in.Pending,
		State:    string(in.State),
		Reason:   in.Reason,
	}
}

// writeUnavailable maps a manager.UnavailableError — the dataset is
// loading, degraded (for a mutation), or quarantined — to 503 with a
// Retry-After hint and the machine-readable state. Returns false when
// err is some other kind, leaving the response to the caller.
func writeUnavailable(w http.ResponseWriter, err error) bool {
	var ue *manager.UnavailableError
	if !errors.As(err, &ue) {
		return false
	}
	secs := int(ue.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusServiceUnavailable, struct {
		Error  string `json:"error"`
		State  string `json:"state"`
		Reason string `json:"reason,omitempty"`
	}{Error: ue.Error(), State: string(ue.State), Reason: ue.Reason})
	return true
}

// writeStorageFault answers a mutation whose failure was classified as
// a storage fault: the client did nothing wrong, recovery has been
// kicked, retry after it converges.
func writeStorageFault(w http.ResponseWriter, name string, err error) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "dataset %q hit a storage fault; recovery started: %v", name, err)
}

// handleCreateLive builds an incremental maintainer, optionally seeded
// with points (a non-empty seed runs the batch pipeline once, so the
// first published selection is exactly the batch selection). The
// maintainer is owned by the dataset manager from birth.
func (s *Server) handleCreateLive(w http.ResponseWriter, r *http.Request) {
	var req createLiveRequest
	if err := s.decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if err := validateDatasetName(req.Name); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	metricName := req.Metric
	if metricName == "" {
		metricName = "euclidean"
	}
	pts := make([]disc.Point, len(req.Points))
	for i, p := range req.Points {
		pts[i] = disc.Point(p)
	}
	d, err := s.mgr.Create(req.Name, metricName, req.Radius, pts)
	if err != nil {
		if errors.Is(err, manager.ErrExists) {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, liveInfoFrom(d.Info()))
}

// RestoreLive recovers every dataset a previous process left in the
// storage directory, each under its own supervisor: a dataset that
// needs backoff retries — or that is corrupt and gets quarantined —
// neither delays nor fails the others. It blocks until every dataset
// settles and returns how many are serving (ready or degraded). Call
// once at boot, before serving.
func (s *Server) RestoreLive() (int, error) {
	return s.mgr.Recover()
}

// handleLiveCheckpoint compacts a durable maintainer into its
// .discsnap file and rotates the write-ahead log to a fresh epoch,
// bounding recovery time. 400 on memory-only maintainers. A failed
// snapshot write (ENOSPC) leaves the old snapshot + log pair
// authoritative and the dataset fully serviceable; only a failed log
// rotation needs recovery, and that is kicked automatically.
func (s *Server) handleLiveCheckpoint(w http.ResponseWriter, r *http.Request) {
	d := s.lookupDataset(w, r)
	if d == nil {
		return
	}
	u, err := d.Updater()
	if err != nil {
		if !writeUnavailable(w, err) {
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	if !u.Durable() {
		writeError(w, http.StatusBadRequest, "live maintainer %q is memory-only (start the server with a live directory)", d.Name())
		return
	}
	snapPath := d.CheckpointPath()
	if err := u.Checkpoint(snapPath); err != nil {
		if d.ReportFault(err) {
			writeStorageFault(w, d.Name(), err)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, snapshotBody{Dataset: d.Name(), Path: snapPath})
}

// handleLiveUnquarantine lifts a quarantine after an operator has
// repaired or replaced the damaged files (see docs/OPERATIONS.md): the
// sidecar is removed and the dataset re-enters supervised recovery.
// The response reports where the dataset settled — ready, degraded, or
// quarantined again if the state is still bad.
func (s *Server) handleLiveUnquarantine(w http.ResponseWriter, r *http.Request) {
	name, ok := s.pathName(w, r)
	if !ok {
		return
	}
	if err := s.mgr.Unquarantine(name); err != nil {
		switch {
		case errors.Is(err, manager.ErrNotFound):
			writeError(w, http.StatusNotFound, "unknown live maintainer %q", name)
		default:
			writeError(w, http.StatusConflict, "%v", err)
		}
		return
	}
	d, err := s.mgr.Get(name)
	if err != nil {
		writeError(w, http.StatusNotFound, "unknown live maintainer %q", name)
		return
	}
	writeJSON(w, http.StatusOK, liveInfoFrom(d.Info()))
}

func (s *Server) handleListLive(w http.ResponseWriter, _ *http.Request) {
	ds := s.mgr.List()
	infos := make([]liveInfo, 0, len(ds))
	for _, d := range ds {
		infos = append(infos, liveInfoFrom(d.Info()))
	}
	writeJSON(w, http.StatusOK, infos)
}

// lookupDataset resolves the {name} path value against the dataset
// manager, writing the 400/404 itself. The returned dataset may be in
// any lifecycle state — each handler gates on what it needs (Updater
// for mutations, View for reads).
func (s *Server) lookupDataset(w http.ResponseWriter, r *http.Request) *manager.Dataset {
	name, ok := s.pathName(w, r)
	if !ok {
		return nil
	}
	d, err := s.mgr.Get(name)
	if err != nil {
		writeError(w, http.StatusNotFound, "unknown live maintainer %q", name)
		return nil
	}
	return d
}

// handleGetLive reports the maintainer's info in every lifecycle state
// — it is the "what is wrong with my dataset" endpoint, so loading and
// quarantined datasets answer 200 with their state and reason rather
// than 503.
func (s *Server) handleGetLive(w http.ResponseWriter, r *http.Request) {
	d := s.lookupDataset(w, r)
	if d == nil {
		return
	}
	writeJSON(w, http.StatusOK, liveInfoFrom(d.Info()))
}

type liveInsertRequest struct {
	Point []float64 `json:"point"`
	Flush bool      `json:"flush,omitempty"`
}

type liveMutationBody struct {
	ID       int  `json:"id"`
	Selected bool `json:"selected"`
	Live     int  `json:"live"`
	Size     int  `json:"size"`
	Pending  int  `json:"pending"`
}

// handleLiveInsert adds a point. By default the mutation is
// bounded-stale — the published selection is unchanged and Pending
// reports the dirty components; with "flush": true the operation
// converges before responding and Selected reports whether the new
// point became a representative.
func (s *Server) handleLiveInsert(w http.ResponseWriter, r *http.Request) {
	var req liveInsertRequest
	if err := s.decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	d := s.lookupDataset(w, r)
	if d == nil {
		return
	}
	u, err := d.Updater()
	if err != nil {
		if !writeUnavailable(w, err) {
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	// Dimensionality is validated by the updater itself, which
	// serialises mutations — no server-side cache to race on.
	id, err := u.Insert(disc.Point(req.Point))
	if err != nil {
		if d.ReportFault(err) {
			writeStorageFault(w, d.Name(), err)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Flush {
		u.Flush()
	}
	writeJSON(w, http.StatusCreated, liveMutationBody{
		ID:       id,
		Selected: u.IsRepresentative(id),
		Live:     u.Len(),
		Size:     u.Size(),
		Pending:  u.Pending(),
	})
}

type liveDeleteRequest struct {
	ID    int  `json:"id"`
	Flush bool `json:"flush,omitempty"`
}

// handleLiveDelete retracts a live object; same staleness contract as
// insert.
func (s *Server) handleLiveDelete(w http.ResponseWriter, r *http.Request) {
	var req liveDeleteRequest
	if err := s.decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	d := s.lookupDataset(w, r)
	if d == nil {
		return
	}
	u, err := d.Updater()
	if err != nil {
		if !writeUnavailable(w, err) {
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	if err := u.Delete(req.ID); err != nil {
		if d.ReportFault(err) {
			writeStorageFault(w, d.Name(), err)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Flush {
		u.Flush()
	}
	writeJSON(w, http.StatusOK, liveMutationBody{
		ID:      req.ID,
		Live:    u.Len(),
		Size:    u.Size(),
		Pending: u.Pending(),
	})
}

type liveFlushBody struct {
	Repaired int `json:"repaired"`
	Size     int `json:"size"`
	Pending  int `json:"pending"`
}

func (s *Server) handleLiveFlush(w http.ResponseWriter, r *http.Request) {
	d := s.lookupDataset(w, r)
	if d == nil {
		return
	}
	u, err := d.Updater()
	if err != nil {
		if !writeUnavailable(w, err) {
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	repaired := u.Flush()
	writeJSON(w, http.StatusOK, liveFlushBody{
		Repaired: repaired,
		Size:     u.Size(),
		Pending:  u.Pending(),
	})
}

type liveSelectionBody struct {
	Size    int    `json:"size"`
	Pending int    `json:"pending"`
	IDs     []int  `json:"ids"`
	State   string `json:"state,omitempty"`
}

// handleLiveSelection serves the last published selection — lock-free
// on the updater, so it stays responsive while repairs run. A degraded
// dataset serves the selection computed from its last good snapshot
// (read-only, marked by the state field); loading and quarantined
// datasets answer 503.
func (s *Server) handleLiveSelection(w http.ResponseWriter, r *http.Request) {
	d := s.lookupDataset(w, r)
	if d == nil {
		return
	}
	v, err := d.View()
	if err != nil {
		if !writeUnavailable(w, err) {
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	if v.Upd != nil {
		ids := v.Upd.Selection()
		writeJSON(w, http.StatusOK, liveSelectionBody{
			Size:    len(ids),
			Pending: v.Upd.Pending(),
			IDs:     append([]int(nil), ids...),
			State:   string(v.State),
		})
		return
	}
	writeJSON(w, http.StatusOK, liveSelectionBody{
		Size:  len(v.Deg.Selection),
		IDs:   append([]int(nil), v.Deg.Selection...),
		State: string(v.State),
	})
}
