package vptree

import (
	"math/rand/v2"
	"sort"
	"testing"

	"github.com/discdiversity/disc/internal/object"
)

func randomPoints(n, d int, seed uint64) []object.Point {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	pts := make([]object.Point, n)
	for i := range pts {
		p := make(object.Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func buildTree(t *testing.T, pts []object.Point, m object.Metric) *Tree {
	t.Helper()
	tr, err := Build(pts, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildValidates(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, 256, 999} {
		pts := randomPoints(n, 2, uint64(n))
		tr := buildTree(t, pts, object.Euclidean{})
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tr.Len())
		}
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(nil, object.Euclidean{}, 1); err == nil {
		t.Error("empty accepted")
	}
	if _, err := Build(randomPoints(4, 2, 1), nil, 1); err == nil {
		t.Error("nil metric accepted")
	}
	if _, err := Build([]object.Point{{1, 2}, {1}}, object.Euclidean{}, 1); err == nil {
		t.Error("ragged accepted")
	}
}

func TestRangeQueryMatchesBruteForce(t *testing.T) {
	metrics := []object.Metric{object.Euclidean{}, object.Manhattan{}, object.Hamming{}}
	for mi, m := range metrics {
		pts := randomPoints(400, 3, uint64(mi)+20)
		if m.Name() == "hamming" {
			// Coarse categorical grid.
			for _, p := range pts {
				for j := range p {
					p[j] = float64(int(p[j] * 4))
				}
			}
		}
		tr := buildTree(t, pts, m)
		rng := rand.New(rand.NewPCG(4, 4))
		for trial := 0; trial < 40; trial++ {
			id := rng.IntN(len(pts))
			r := rng.Float64() * 2
			got := neighborIDs(tr.RangeQueryAround(id, r))
			var want []int
			for j := range pts {
				if j != id && m.Dist(pts[id], pts[j]) <= r {
					want = append(want, j)
				}
			}
			sort.Ints(want)
			if !equalIDs(got, want) {
				t.Fatalf("%s trial %d: got %d want %d neighbours", m.Name(), trial, len(got), len(want))
			}
		}
	}
}

func TestScanOrderCoversAll(t *testing.T) {
	pts := randomPoints(333, 2, 5)
	tr := buildTree(t, pts, object.Euclidean{})
	ids := tr.ScanOrder()
	if len(ids) != len(pts) {
		t.Fatalf("scan %d ids", len(ids))
	}
	seen := make([]bool, len(pts))
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("id %d twice", id)
		}
		seen[id] = true
	}
}

func TestPrunedQueryWhiteOnly(t *testing.T) {
	pts := randomPoints(300, 2, 6)
	m := object.Euclidean{}
	tr := buildTree(t, pts, m)
	tr.EnableTracking()
	rng := rand.New(rand.NewPCG(2, 2))
	for id := range pts {
		if rng.Float64() < 0.6 {
			tr.Cover(id)
		}
	}
	for trial := 0; trial < 25; trial++ {
		id := rng.IntN(len(pts))
		got := neighborIDs(tr.RangeQueryPruned(id, 0.2))
		var want []int
		for j := range pts {
			if j != id && tr.IsWhite(j) && m.Dist(pts[id], pts[j]) <= 0.2 {
				want = append(want, j)
			}
		}
		sort.Ints(want)
		if !equalIDs(got, want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}

func TestPruningReducesAccesses(t *testing.T) {
	pts := randomPoints(2000, 2, 7)
	m := object.Euclidean{}
	full := buildTree(t, pts, m)
	pruned := buildTree(t, pts, m)
	pruned.EnableTracking()
	for id := 0; id < 1800; id++ {
		pruned.Cover(id)
	}
	full.ResetAccesses()
	pruned.ResetAccesses()
	for id := 1800; id < 1900; id++ {
		full.RangeQueryAround(id, 0.05)
		pruned.RangeQueryPruned(id, 0.05)
	}
	if pruned.Accesses() >= full.Accesses() {
		t.Errorf("pruned %d >= full %d", pruned.Accesses(), full.Accesses())
	}
}

func TestPrunedQueryPanicsWithoutTracking(t *testing.T) {
	tr := buildTree(t, randomPoints(10, 2, 8), object.Euclidean{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tr.RangeQueryPruned(0, 0.1)
}

func TestResetTracking(t *testing.T) {
	pts := randomPoints(100, 2, 9)
	tr := buildTree(t, pts, object.Euclidean{})
	white := make([]bool, len(pts))
	for i := 0; i < 30; i++ {
		white[i] = true
	}
	tr.ResetTracking(white)
	count := 0
	for id := range pts {
		if tr.IsWhite(id) {
			count++
		}
	}
	if count != 30 {
		t.Errorf("white count %d, want 30", count)
	}
	tr.Cover(5)
	tr.Cover(5) // idempotent
	if tr.IsWhite(5) {
		t.Error("cover failed")
	}
}

func TestDepthIsLogarithmic(t *testing.T) {
	pts := randomPoints(4096, 2, 10)
	tr := buildTree(t, pts, object.Euclidean{})
	if d := tr.Depth(); d > 40 { // median splits: expect ~12-20
		t.Errorf("depth %d too large for 4096 points", d)
	}
}

func neighborIDs(ns []object.Neighbor) []int {
	ids := make([]int, 0, len(ns))
	for _, nb := range ns {
		ids = append(ids, nb.ID)
	}
	sort.Ints(ids)
	return ids
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
