// Package vptree implements a vantage-point tree, a binary metric-space
// index. The paper's future work calls for "implementations using
// different data structures"; the VP-tree is the natural alternative to
// the M-tree: simpler and pointer-light, at the cost of being static
// (bulk-built) and having no leaf chain.
//
// Every node stores one object, the distance median to its subtree
// (the vantage radius), and an inside/outside child. Range queries use
// the triangle inequality on the vantage radius; node accesses are
// counted per visited node, comparably to the M-tree's measure. The tree
// also supports the paper's pruning rule: per-subtree white counts let
// queries skip fully covered regions.
package vptree

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"github.com/discdiversity/disc/internal/bitset"
	"github.com/discdiversity/disc/internal/object"
)

type node struct {
	id              int
	radius          float64 // median distance of subtree objects to this vantage point
	inside, outside *node
	parent          *node
	whiteCount      int
}

// Tree is a static vantage-point tree over a fixed point slice. Queries
// read coordinates from a contiguous object.FlatDataset and evaluate
// distances through its compiled kernel rather than the Metric
// interface; the Append* query variants reuse caller-owned buffers and
// perform no allocation.
type Tree struct {
	metric   object.Metric
	pts      []object.Point
	flat     *object.FlatDataset
	root     *node
	nodeOf   []*node
	accesses int64
	tracking bool
	white    bitset.Set
}

// Build constructs a VP-tree over pts. The seed drives vantage-point
// sampling; a fixed seed makes construction deterministic.
func Build(pts []object.Point, m object.Metric, seed uint64) (*Tree, error) {
	if _, err := object.ValidatePoints(pts); err != nil {
		return nil, fmt.Errorf("vptree: %w", err)
	}
	if m == nil {
		return nil, fmt.Errorf("vptree: nil metric")
	}
	if !object.TriangleSafe(m) {
		// Vantage-ball pruning is a triangle-inequality bound; a
		// non-metric distance would silently drop true neighbours.
		return nil, fmt.Errorf("vptree: metric %q violates the triangle inequality", m.Name())
	}
	flat, err := object.Flatten(pts, m)
	if err != nil {
		return nil, fmt.Errorf("vptree: %w", err)
	}
	t := &Tree{
		metric: m,
		pts:    pts,
		flat:   flat,
		nodeOf: make([]*node, len(pts)),
	}
	// pts is read only while building; afterwards the contiguous flat
	// storage is the single coordinate copy.
	ids := make([]int, len(pts))
	for i := range ids {
		ids[i] = i
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x853c49e6748fea9b))
	t.root = t.build(ids, rng, nil)
	t.pts = nil
	return t, nil
}

// build recursively constructs the subtree over ids.
func (t *Tree) build(ids []int, rng *rand.Rand, parent *node) *node {
	if len(ids) == 0 {
		return nil
	}
	// Vantage point: random member (deterministic via seeded rng).
	vi := rng.IntN(len(ids))
	ids[0], ids[vi] = ids[vi], ids[0]
	v := ids[0]
	n := &node{id: v, parent: parent}
	t.nodeOf[v] = n
	rest := ids[1:]
	if len(rest) == 0 {
		return n
	}
	type distID struct {
		d  float64
		id int
	}
	ds := make([]distID, len(rest))
	for i, id := range rest {
		ds[i] = distID{t.metric.Dist(t.pts[v], t.pts[id]), id}
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].d != ds[j].d {
			return ds[i].d < ds[j].d
		}
		return ds[i].id < ds[j].id
	})
	mid := len(ds) / 2
	n.radius = ds[mid].d
	inside := make([]int, 0, mid+1)
	outside := make([]int, 0, len(ds)-mid)
	for _, x := range ds {
		if x.d < n.radius || (x.d == n.radius && len(inside) <= mid) {
			inside = append(inside, x.id)
		} else {
			outside = append(outside, x.id)
		}
	}
	n.inside = t.build(inside, rng, n)
	n.outside = t.build(outside, rng, n)
	return n
}

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return t.flat.Len() }

// Metric returns the distance function.
func (t *Tree) Metric() object.Metric { return t.metric }

// Point returns the coordinates of object id (flat storage row).
func (t *Tree) Point(id int) object.Point { return t.flat.Point(id) }

// Flat exposes the contiguous coordinate storage and compiled kernel.
func (t *Tree) Flat() *object.FlatDataset { return t.flat }

// Accesses returns the cumulative node-access counter.
func (t *Tree) Accesses() int64 { return t.accesses }

// ResetAccesses zeroes the counter.
func (t *Tree) ResetAccesses() { t.accesses = 0 }

// RangeQuery returns all objects within r of q.
func (t *Tree) RangeQuery(q object.Point, r float64) []object.Neighbor {
	return t.AppendRangeQuery(nil, q, r)
}

// AppendRangeQuery appends all objects within r of q to dst and returns
// the extended slice; with a capacious dst it performs no allocation.
func (t *Tree) AppendRangeQuery(dst []object.Neighbor, q object.Point, r float64) []object.Neighbor {
	return t.search(t.root, q, r, -1, false, dst)
}

// RangeQueryAround returns the neighbours of object id within r,
// excluding id.
func (t *Tree) RangeQueryAround(id int, r float64) []object.Neighbor {
	return t.AppendRangeQueryAround(nil, id, r)
}

// AppendRangeQueryAround is the buffer-reusing form of RangeQueryAround.
func (t *Tree) AppendRangeQueryAround(dst []object.Neighbor, id int, r float64) []object.Neighbor {
	return t.search(t.root, t.flat.Row(id), r, id, false, dst)
}

// RangeQueryPruned applies the pruning rule: subtrees without white
// objects are skipped and only white objects are reported. Requires
// EnableTracking.
func (t *Tree) RangeQueryPruned(id int, r float64) []object.Neighbor {
	return t.AppendRangeQueryPruned(nil, id, r)
}

// AppendRangeQueryPruned is the buffer-reusing form of RangeQueryPruned.
func (t *Tree) AppendRangeQueryPruned(dst []object.Neighbor, id int, r float64) []object.Neighbor {
	if !t.tracking {
		panic("vptree: pruned query requires EnableTracking")
	}
	return t.search(t.root, t.flat.Row(id), r, id, true, dst)
}

func (t *Tree) search(n *node, q []float64, r float64, exclude int, pruned bool, dst []object.Neighbor) []object.Neighbor {
	if n == nil {
		return dst
	}
	if pruned && n.whiteCount == 0 {
		return dst
	}
	t.accesses++
	// The true distance is needed for the triangle bounds below, so the
	// squared-surrogate shortcut does not apply here; the kernel still
	// removes the interface dispatch and reads contiguous rows.
	d := t.flat.Kernel().Dist(q, t.flat.Row(n.id))
	if d <= r && n.id != exclude && (!pruned || t.white.Test(n.id)) {
		dst = append(dst, object.Neighbor{ID: n.id, Dist: d})
	}
	// Triangle-inequality bounds on the vantage radius.
	if d-r <= n.radius {
		dst = t.search(n.inside, q, r, exclude, pruned, dst)
	}
	if d+r >= n.radius {
		dst = t.search(n.outside, q, r, exclude, pruned, dst)
	}
	return dst
}

// ScanOrder returns all ids in in-order traversal (inside, vantage,
// outside), a locality-ish order analogous to the M-tree leaf scan. Each
// visited node counts as one access.
func (t *Tree) ScanOrder() []int {
	ids := make([]int, 0, t.flat.Len())
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		t.accesses++
		walk(n.inside)
		ids = append(ids, n.id)
		walk(n.outside)
	}
	walk(t.root)
	return ids
}

// EnableTracking switches the pruning rule on with every object white.
func (t *Tree) EnableTracking() {
	t.white.Reset(t.flat.Len())
	t.white.Fill()
	t.tracking = true
	var walk func(n *node) int
	walk = func(n *node) int {
		if n == nil {
			return 0
		}
		n.whiteCount = 1 + walk(n.inside) + walk(n.outside)
		return n.whiteCount
	}
	walk(t.root)
}

// ResetTracking re-initialises tracking with a custom white set.
func (t *Tree) ResetTracking(white []bool) {
	t.white.CopyBools(white)
	t.tracking = true
	var walk func(n *node) int
	walk = func(n *node) int {
		if n == nil {
			return 0
		}
		c := walk(n.inside) + walk(n.outside)
		if t.white.Test(n.id) {
			c++
		}
		n.whiteCount = c
		return c
	}
	walk(t.root)
}

// Tracking reports whether the pruning rule is active.
func (t *Tree) Tracking() bool { return t.tracking }

// IsWhite reports whether id is still uncovered (tracking only).
func (t *Tree) IsWhite(id int) bool { return t.tracking && t.white.Test(id) }

// Cover marks id as covered, updating subtree white counts.
func (t *Tree) Cover(id int) {
	if !t.tracking || !t.white.Test(id) {
		return
	}
	t.white.Clear(id)
	for n := t.nodeOf[id]; n != nil; n = n.parent {
		n.whiteCount--
	}
}

// Depth returns the height of the tree (for diagnostics).
func (t *Tree) Depth() int {
	var walk func(n *node) int
	walk = func(n *node) int {
		if n == nil {
			return 0
		}
		in, out := walk(n.inside), walk(n.outside)
		if in > out {
			return in + 1
		}
		return out + 1
	}
	return walk(t.root)
}

// Validate checks structural invariants: every object appears exactly
// once, node-of pointers are consistent, and subtree membership respects
// the vantage radii. Intended for tests.
func (t *Tree) Validate() error {
	seen := make([]bool, t.flat.Len())
	var walk func(n *node) error
	walk = func(n *node) error {
		if n == nil {
			return nil
		}
		if seen[n.id] {
			return fmt.Errorf("vptree: object %d appears twice", n.id)
		}
		seen[n.id] = true
		if t.nodeOf[n.id] != n {
			return fmt.Errorf("vptree: nodeOf[%d] broken", n.id)
		}
		// All inside descendants are within radius of the vantage point;
		// all outside descendants at >= radius.
		var check func(m *node, inside bool) error
		check = func(m *node, inside bool) error {
			if m == nil {
				return nil
			}
			d := t.metric.Dist(t.flat.Point(n.id), t.flat.Point(m.id))
			if inside && d > n.radius {
				return fmt.Errorf("vptree: object %d at %g outside vantage radius %g of %d", m.id, d, n.radius, n.id)
			}
			if !inside && d < n.radius {
				return fmt.Errorf("vptree: object %d at %g inside vantage radius %g of %d", m.id, d, n.radius, n.id)
			}
			if err := check(m.inside, inside); err != nil {
				return err
			}
			return check(m.outside, inside)
		}
		if err := check(n.inside, true); err != nil {
			return err
		}
		if err := check(n.outside, false); err != nil {
			return err
		}
		if err := walk(n.inside); err != nil {
			return err
		}
		return walk(n.outside)
	}
	if err := walk(t.root); err != nil {
		return err
	}
	for id, s := range seen {
		if !s {
			return fmt.Errorf("vptree: object %d missing", id)
		}
	}
	return nil
}
