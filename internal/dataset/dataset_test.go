package dataset

import (
	"testing"

	"github.com/discdiversity/disc/internal/object"
)

func TestUniformInUnitCube(t *testing.T) {
	for _, d := range []int{2, 5, 10} {
		ds, err := Uniform(1000, d, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Len() != 1000 || ds.Dim() != d {
			t.Fatalf("dims: n=%d d=%d", ds.Len(), ds.Dim())
		}
		assertInUnitCube(t, ds)
	}
}

func TestClusteredInUnitCube(t *testing.T) {
	ds, err := Clustered(2000, 3, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2000 || ds.Dim() != 3 {
		t.Fatalf("dims: n=%d d=%d", ds.Len(), ds.Dim())
	}
	assertInUnitCube(t, ds)
}

func TestClusteredIsDenserThanUniform(t *testing.T) {
	// Clustered data must have substantially more close pairs: the paper
	// relies on clustered solutions being smaller than uniform ones.
	u, _ := Uniform(1500, 2, 3)
	c, _ := Clustered(1500, 2, 0, 3)
	m := object.Euclidean{}
	count := func(ds *object.Dataset) int {
		n := 0
		for i := 0; i < ds.Len(); i++ {
			for j := i + 1; j < ds.Len(); j++ {
				if m.Dist(ds.Points[i], ds.Points[j]) <= 0.02 {
					n++
				}
			}
		}
		return n
	}
	cu, cc := count(u), count(c)
	if cc <= 2*cu {
		t.Errorf("clustered close pairs %d not well above uniform %d", cc, cu)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, _ := Clustered(500, 2, 5, 42)
	b, _ := Clustered(500, 2, 5, 42)
	c, _ := Clustered(500, 2, 5, 43)
	for i := range a.Points {
		if !a.Points[i].Equal(b.Points[i]) {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	same := true
	for i := range a.Points {
		if !a.Points[i].Equal(c.Points[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestGeneratorErrors(t *testing.T) {
	if _, err := Uniform(0, 2, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Clustered(10, 0, 2, 1); err == nil {
		t.Error("d=0 accepted")
	}
}

func TestCitiesShape(t *testing.T) {
	ds := Cities(7)
	if ds.Len() != CitiesSize {
		t.Fatalf("cities size %d, want %d", ds.Len(), CitiesSize)
	}
	if ds.Dim() != 2 {
		t.Fatalf("cities dim %d", ds.Dim())
	}
	assertInUnitCube(t, ds)
	if len(ds.Labels) != ds.Len() {
		t.Fatal("missing labels")
	}
	// The metro cores must be dramatically denser than the overall
	// average: count points within 0.05 of the densest point.
	m := object.Euclidean{}
	athens := ds.Points[0] // first generated point is in the metro core
	dense := 0
	for _, p := range ds.Points {
		if m.Dist(athens, p) <= 0.05 {
			dense++
		}
	}
	if dense < 300 {
		t.Errorf("metro core only has %d points within 0.05", dense)
	}
}

func TestCamerasShape(t *testing.T) {
	ds := Cameras(7)
	if ds.Len() != CamerasSize {
		t.Fatalf("cameras size %d, want %d", ds.Len(), CamerasSize)
	}
	if ds.Dim() != 7 {
		t.Fatalf("cameras dim %d", ds.Dim())
	}
	// Every coordinate must be a valid category code.
	for id, p := range ds.Points {
		for dim, v := range p {
			if v != float64(int(v)) || int(v) < 0 || int(v) >= len(ds.Values[dim]) {
				t.Fatalf("camera %d dim %d: invalid code %g", id, dim, v)
			}
		}
	}
	// Brand correlation: same-brand cameras must be closer on average
	// under Hamming than different-brand ones.
	m := object.Hamming{}
	var sameSum, diffSum float64
	var sameN, diffN int
	for i := 0; i < ds.Len(); i++ {
		for j := i + 1; j < ds.Len(); j++ {
			d := m.Dist(ds.Points[i], ds.Points[j])
			if ds.Points[i][CamBrand] == ds.Points[j][CamBrand] {
				sameSum += d
				sameN++
			} else {
				diffSum += d
				diffN++
			}
		}
	}
	if sameSum/float64(sameN) >= diffSum/float64(diffN) {
		t.Error("same-brand cameras not closer than different-brand ones")
	}
	if CameraString(ds, 0) == "" {
		t.Error("empty camera string")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"uniform", "clustered", "cities", "cameras"} {
		ds, m, err := ByName(name, 500, 2, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.Len() == 0 || m == nil {
			t.Fatalf("%s: empty dataset or nil metric", name)
		}
	}
	if _, _, err := ByName("nope", 0, 0, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	// Defaults: n=10000, d=2 for synthetic.
	ds, _, err := ByName("uniform", 0, 0, 1)
	if err != nil || ds.Len() != 10000 || ds.Dim() != 2 {
		t.Errorf("defaults wrong: n=%d d=%d err=%v", ds.Len(), ds.Dim(), err)
	}
}

func assertInUnitCube(t *testing.T, ds *object.Dataset) {
	t.Helper()
	for id, p := range ds.Points {
		for dim, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("point %d dim %d: %g outside [0,1]", id, dim, v)
			}
		}
	}
}
