package dataset

import (
	"fmt"

	"github.com/discdiversity/disc/internal/object"
)

// CitiesSize matches the cardinality of the paper's Greek cities dataset.
const CitiesSize = 5922

// citiesScale shrinks the populated region to ~9% of the unit square.
// The paper's Table 3(c) shows that at r=0.015 (after normalization to
// [0,1]) the whole dataset is covered by ~10 representatives, which is
// only possible if the normalized points are concentrated in a small
// fraction of the domain — the raw collection contains a few extreme
// coordinates that stretch the normalization. The generator reproduces
// exactly that: a dense "Greece" region of diameter ~0.09 plus a handful
// of remote outlier records defining the extent.
const citiesScale = 0.09

// Cities returns a deterministic stand-in for the paper's "Cities"
// dataset: 5922 two-dimensional points representing the geography of
// Greek cities and villages, normalized to [0,1]^2.
//
// The real collection (rtreeportal.org) is not redistributable, so the
// generator reproduces its distributional shape instead: a handful of
// dense metropolitan clusters, many mid-size towns, village clusters
// strung along coastline bands, island settlements — all packed into a
// compact region — plus a few far-away outlier records. The DisC
// experiments depend only on this mixture of very dense and very sparse
// areas and on the concentration of the normalized data.
func Cities(seed uint64) *object.Dataset {
	rng := newRNG(seed ^ 0xc17135)
	ds := &object.Dataset{
		Name:      "cities",
		Points:    make([]object.Point, 0, CitiesSize),
		Labels:    make([]string, 0, CitiesSize),
		AttrNames: []string{"lon", "lat"},
	}

	// add places a point given coordinates in the virtual 1x1 "Greece"
	// frame, mapping it into the compact populated region.
	origin := 0.5 - citiesScale/2
	add := func(kind string, x, y float64) {
		ds.Points = append(ds.Points, object.Point{
			clamp01(origin + clamp01(x)*citiesScale),
			clamp01(origin + clamp01(y)*citiesScale),
		})
		ds.Labels = append(ds.Labels, fmt.Sprintf("%s-%d", kind, len(ds.Points)-1))
	}

	// Two metropolitan areas: extremely dense cores (~22% of points).
	metros := []struct {
		x, y, sigma float64
		n           int
	}{
		{0.62, 0.38, 0.015, 900}, // "Athens"
		{0.48, 0.82, 0.012, 420}, // "Thessaloniki"
	}
	for _, m := range metros {
		for i := 0; i < m.n; i++ {
			add("metro", m.x+rng.NormFloat64()*m.sigma, m.y+rng.NormFloat64()*m.sigma)
		}
	}

	// Regional towns: 40 Gaussian clusters of varying density (~45%).
	townTotal := 2650
	for c := 0; c < 40; c++ {
		cx := 0.08 + 0.84*rng.Float64()
		cy := 0.08 + 0.84*rng.Float64()
		sigma := 0.008 + 0.03*rng.Float64()
		n := townTotal / 40
		for i := 0; i < n; i++ {
			add("town", cx+rng.NormFloat64()*sigma, cy+rng.NormFloat64()*sigma)
		}
	}

	// Coastline bands: villages strung along three elongated arcs (~20%).
	arcs := []struct{ x0, y0, x1, y1, wiggle float64 }{
		{0.15, 0.10, 0.85, 0.22, 0.02},
		{0.10, 0.55, 0.45, 0.95, 0.03},
		{0.70, 0.60, 0.95, 0.95, 0.02},
	}
	perArc := 1180 / len(arcs)
	for _, a := range arcs {
		for i := 0; i < perArc; i++ {
			t := rng.Float64()
			x := a.x0 + t*(a.x1-a.x0) + rng.NormFloat64()*a.wiggle
			y := a.y0 + t*(a.y1-a.y0) + rng.NormFloat64()*a.wiggle
			add("village", x, y)
		}
	}

	// Islands: tiny settlements scattered in the lower-right of the
	// populated frame.
	for len(ds.Points) < CitiesSize-8 {
		add("island", 0.7+0.28*rng.Float64(), 0.02+0.25*rng.Float64())
	}

	// Remote outlier records (miscoded coordinates in the original
	// collection) that stretch the normalization extent; placed directly
	// in the unit square, outside the populated region.
	outliers := [][2]float64{
		{0.01, 0.02}, {0.98, 0.97}, {0.05, 0.93}, {0.95, 0.06},
		{0.25, 0.75}, {0.80, 0.30}, {0.10, 0.40}, {0.70, 0.90},
	}
	for _, o := range outliers {
		ds.Points = append(ds.Points, object.Point{o[0], o[1]})
		ds.Labels = append(ds.Labels, fmt.Sprintf("remote-%d", len(ds.Points)-1))
	}

	ds.Normalize()
	return ds
}
