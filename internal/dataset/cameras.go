package dataset

import (
	"fmt"

	"github.com/discdiversity/disc/internal/object"
)

// CamerasSize matches the cardinality of the paper's Acme camera database.
const CamerasSize = 579

// Camera attribute dimensions, in order.
const (
	CamBrand = iota
	CamLine
	CamMegapixels
	CamZoom
	CamInterface
	CamBattery
	CamStorage
	camDims
)

var cameraAttrNames = []string{
	"brand", "line", "megapixels", "zoom", "interface", "battery", "storage",
}

var cameraBrands = []string{
	"Canon", "Nikon", "Sony", "FujiFilm", "Olympus", "Pentax",
	"Kodak", "Casio", "Ricoh", "Toshiba", "Epson", "Minolta",
}

var cameraLines = []string{
	"A", "S", "ELPH", "Pro", "Coolpix", "FinePix", "Optio",
	"Mavica", "PhotoPC", "IXUS", "PowerShot", "Cyber",
	"mju", "RDC", "PDR", "EX",
}

var cameraMegapixels = []string{
	"0.8", "1.2", "1.4", "1.9", "2.2", "3.1", "3.9", "6.0", "8.0", "14.0",
}

var cameraZooms = []string{"no", "2.2x", "3.0x", "4.0x", "6.0x", "10.0x", "35.0x"}

var cameraInterfaces = []string{"serial", "USB", "serial+USB", "USB+FireWire", "none"}

var cameraBatteries = []string{"AA", "lithium", "NiMH", "NiCd", "AA+lithium"}

var cameraStorages = []string{
	"CompactFlash", "SmartMedia", "SecureDigital", "MemoryStick",
	"MultiMediaCard", "xD-PictureCard", "internal",
}

// Cameras returns a deterministic stand-in for the paper's "Cameras"
// dataset: 579 digital cameras described by 7 categorical characteristics
// (brand, product line, megapixels, zoom, interface, battery, storage),
// compared with the Hamming distance.
//
// The real Acme database is no longer available; the generator mirrors its
// schema and, crucially, the attribute correlations that make Hamming
// radii 1..6 meaningful: cameras of the same brand share product lines and
// lean towards house-specific interfaces, batteries and storage types, and
// megapixels correlate with zoom (product generations). Category codes are
// stored as float64 coordinate values; Dataset.Values maps them back to
// strings for display.
func Cameras(seed uint64) *object.Dataset {
	rng := newRNG(seed ^ 0xca3e7a5)
	ds := &object.Dataset{
		Name:      "cameras",
		Points:    make([]object.Point, 0, CamerasSize),
		Labels:    make([]string, 0, CamerasSize),
		AttrNames: cameraAttrNames,
		Values: [][]string{
			cameraBrands, cameraLines, cameraMegapixels, cameraZooms,
			cameraInterfaces, cameraBatteries, cameraStorages,
		},
	}

	// Per-brand house style: preferred lines, interface, battery and
	// storage, fixed once per brand.
	type house struct {
		lines            []int
		iface, batt, sto int
	}
	houses := make([]house, len(cameraBrands))
	for b := range houses {
		nLines := 2 + rng.IntN(3)
		lines := rng.Perm(len(cameraLines))[:nLines]
		houses[b] = house{
			lines: lines,
			iface: rng.IntN(len(cameraInterfaces)),
			batt:  rng.IntN(len(cameraBatteries)),
			sto:   rng.IntN(len(cameraStorages)),
		}
	}
	// Brand market share is skewed (Canon/Nikon/Sony dominate), like the
	// real catalogue.
	brandWeight := make([]float64, len(cameraBrands))
	var wsum float64
	for b := range brandWeight {
		brandWeight[b] = 1 / float64(b+1)
		wsum += brandWeight[b]
	}
	pickBrand := func() int {
		x := rng.Float64() * wsum
		for b, w := range brandWeight {
			if x <= w {
				return b
			}
			x -= w
		}
		return len(brandWeight) - 1
	}
	// choose returns preferred with probability p, else uniform.
	choose := func(preferred, n int, p float64) int {
		if rng.Float64() < p {
			return preferred
		}
		return rng.IntN(n)
	}

	for i := 0; i < CamerasSize; i++ {
		b := pickBrand()
		h := houses[b]
		line := h.lines[rng.IntN(len(h.lines))]
		// Generation: later generations have more megapixels and zoom.
		gen := rng.Float64()
		mp := int(gen * float64(len(cameraMegapixels)))
		if mp >= len(cameraMegapixels) {
			mp = len(cameraMegapixels) - 1
		}
		zoomBase := int(gen * float64(len(cameraZooms)))
		zoom := choose(zoomBase, len(cameraZooms), 0.7)
		if zoom >= len(cameraZooms) {
			zoom = len(cameraZooms) - 1
		}
		p := object.Point{
			float64(b),
			float64(line),
			float64(mp),
			float64(zoom),
			float64(choose(h.iface, len(cameraInterfaces), 0.75)),
			float64(choose(h.batt, len(cameraBatteries), 0.7)),
			float64(choose(h.sto, len(cameraStorages), 0.7)),
		}
		ds.Points = append(ds.Points, p)
		ds.Labels = append(ds.Labels, fmt.Sprintf("%s %s-%d",
			cameraBrands[b], cameraLines[line], 100+i))
	}
	return ds
}

// CameraString renders one camera as a readable spec line.
func CameraString(ds *object.Dataset, id int) string {
	return fmt.Sprintf("%-22s %4s MP  zoom %-5s  %-12s %-10s %s",
		ds.Label(id),
		ds.ValueString(id, CamMegapixels),
		ds.ValueString(id, CamZoom),
		ds.ValueString(id, CamInterface),
		ds.ValueString(id, CamBattery),
		ds.ValueString(id, CamStorage))
}
