// Package dataset provides the four workloads of the paper's evaluation
// (Table 2): synthetic Uniform and Clustered multi-dimensional data in
// [0,1]^d, plus deterministic stand-ins for the two real datasets the
// paper uses — the Greek cities collection and the Acme digital-camera
// database — which are not redistributable. The stand-ins mirror the
// originals' cardinalities and distribution shapes; see DESIGN.md for the
// substitution rationale.
//
// All generators are pure functions of their seed: the same parameters
// always produce byte-identical datasets.
package dataset

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/discdiversity/disc/internal/object"
)

func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))
}

// Uniform returns n points distributed uniformly in [0,1]^d
// (the paper's "Uniform" dataset; defaults n=10000, d=2).
func Uniform(n, d int, seed uint64) (*object.Dataset, error) {
	if err := checkDims(n, d); err != nil {
		return nil, err
	}
	rng := newRNG(seed)
	ds := &object.Dataset{
		Name:      fmt.Sprintf("uniform-%dd-%d", d, n),
		Points:    make([]object.Point, n),
		AttrNames: axisNames(d),
	}
	for i := range ds.Points {
		p := make(object.Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		ds.Points[i] = p
	}
	return ds, nil
}

// Clustered returns n points forming hyperspherical Gaussian clusters of
// different sizes in [0,1]^d (the paper's "Clustered" dataset; defaults
// n=10000, d=2, normal distribution). The number of clusters defaults to
// 10 when clusters <= 0. Cluster populations are skewed so cluster sizes
// differ, matching the paper's description.
func Clustered(n, d, clusters int, seed uint64) (*object.Dataset, error) {
	if err := checkDims(n, d); err != nil {
		return nil, err
	}
	if clusters <= 0 {
		clusters = 10
	}
	rng := newRNG(seed)
	centers := make([]object.Point, clusters)
	sigmas := make([]float64, clusters)
	weights := make([]float64, clusters)
	var wsum float64
	for c := range centers {
		p := make(object.Point, d)
		for j := range p {
			// Keep centres away from the border so most mass stays
			// inside the unit cube.
			p[j] = 0.1 + 0.8*rng.Float64()
		}
		centers[c] = p
		sigmas[c] = 0.01 + 0.05*rng.Float64()
		weights[c] = 0.3 + rng.Float64() // skewed populations
		wsum += weights[c]
	}
	ds := &object.Dataset{
		Name:      fmt.Sprintf("clustered-%dd-%d", d, n),
		Points:    make([]object.Point, n),
		AttrNames: axisNames(d),
	}
	for i := range ds.Points {
		// Pick a cluster proportionally to its weight.
		x := rng.Float64() * wsum
		c := 0
		for x > weights[c] && c < clusters-1 {
			x -= weights[c]
			c++
		}
		p := make(object.Point, d)
		for j := range p {
			p[j] = clamp01(centers[c][j] + rng.NormFloat64()*sigmas[c])
		}
		ds.Points[i] = p
	}
	return ds, nil
}

func clamp01(v float64) float64 {
	return math.Min(1, math.Max(0, v))
}

func checkDims(n, d int) error {
	if n <= 0 {
		return fmt.Errorf("dataset: non-positive cardinality %d", n)
	}
	if d <= 0 {
		return fmt.Errorf("dataset: non-positive dimensionality %d", d)
	}
	return nil
}

func axisNames(d int) []string {
	names := make([]string, d)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	return names
}

// ByName builds one of the evaluation datasets by name: the paper's
// "uniform", "clustered", "cities" and "cameras", plus "sphere" — the
// clustered unit-norm embedding workload of the high-dimensional
// experiment, served under the cosine distance. n and d apply to the
// synthetic datasets only (pass 0 for the paper defaults).
func ByName(name string, n, d int, seed uint64) (*object.Dataset, object.Metric, error) {
	if n <= 0 {
		n = 10000
	}
	if d <= 0 {
		d = 2
	}
	switch name {
	case "uniform":
		ds, err := Uniform(n, d, seed)
		return ds, object.Euclidean{}, err
	case "clustered":
		ds, err := Clustered(n, d, 0, seed)
		return ds, object.Euclidean{}, err
	case "sphere":
		ds, err := Sphere(n, d, 0, seed)
		return ds, object.Cosine{}, err
	case "cities":
		ds := Cities(seed)
		return ds, object.Euclidean{}, nil
	case "cameras":
		ds := Cameras(seed)
		return ds, object.Hamming{}, nil
	default:
		return nil, nil, fmt.Errorf("dataset: unknown dataset %q", name)
	}
}
