package dataset

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/discdiversity/disc/internal/object"
)

// Sphere returns n unit-norm points in d dimensions forming clustered
// Gaussian caps on the unit sphere — the synthetic stand-in for learned
// embedding collections (sentence or image vectors are routinely
// L2-normalised, so cosine and Euclidean neighbourhoods coincide up to
// a monotone transform). Cluster centres are isotropic random
// directions; each member adds per-coordinate Gaussian noise of the
// cluster's sigma to its centre direction and re-normalises, yielding
// von-Mises-Fisher-like caps of differing angular spread. Populations
// are skewed exactly like Clustered's, so component structure survives
// the change of geometry. The number of clusters defaults to 10 when
// clusters <= 0.
func Sphere(n, d, clusters int, seed uint64) (*object.Dataset, error) {
	if err := checkDims(n, d); err != nil {
		return nil, err
	}
	if clusters <= 0 {
		clusters = 10
	}
	rng := newRNG(seed ^ 0x5bd1e995)
	centers := make([]object.Point, clusters)
	sigmas := make([]float64, clusters)
	weights := make([]float64, clusters)
	var wsum float64
	for c := range centers {
		centers[c] = gaussDirection(rng, d)
		// Angular spread: the perturbation norm is ~ sigma·√d, so scaling
		// sigma by 1/√d keeps cap widths comparable across
		// dimensionalities instead of flattening every cluster into the
		// whole sphere at embedding-scale d.
		sigmas[c] = (0.15 + 0.45*rng.Float64()) / math.Sqrt(float64(d))
		weights[c] = 0.3 + rng.Float64() // skewed populations
		wsum += weights[c]
	}
	ds := &object.Dataset{
		Name:      fmt.Sprintf("sphere-%dd-%d", d, n),
		Points:    make([]object.Point, n),
		AttrNames: axisNames(d),
	}
	for i := range ds.Points {
		x := rng.Float64() * wsum
		c := 0
		for x > weights[c] && c < clusters-1 {
			x -= weights[c]
			c++
		}
		p := make(object.Point, d)
		var norm float64
		for j := range p {
			v := centers[c][j] + rng.NormFloat64()*sigmas[c]
			p[j] = v
			norm += v * v
		}
		norm = math.Sqrt(norm)
		for j := range p {
			p[j] /= norm
		}
		ds.Points[i] = p
	}
	return ds, nil
}

// gaussDirection draws a uniformly random unit vector (an isotropic
// Gaussian sample, normalised).
func gaussDirection(rng *rand.Rand, d int) object.Point {
	p := make(object.Point, d)
	var norm float64
	for j := range p {
		v := rng.NormFloat64()
		p[j] = v
		norm += v * v
	}
	norm = math.Sqrt(norm)
	for j := range p {
		p[j] /= norm
	}
	return p
}
