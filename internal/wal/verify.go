package wal

import (
	"fmt"
	"os"

	"github.com/discdiversity/disc/internal/vfs"
)

// VerifyResult summarises a read-only scrub of a log (see Verify).
type VerifyResult struct {
	// Segments counts the current-epoch segments that parsed cleanly;
	// Stale counts segments from older epochs (leftovers of a crashed
	// checkpoint — harmless, Open deletes them).
	Segments int
	Stale    int
	// Ops is the number of acknowledged operations the log holds;
	// TornBytes is the size of a torn tail (or torn trailing segment
	// header) Open would truncate away.
	Ops       int
	TornBytes int64
	// Radius and Metric are the identity the segment headers carry
	// (zero values when no segment exists).
	Radius float64
	Metric string
}

// Verify scrubs the log at path against snapshot epoch without
// mutating anything: every current-epoch segment is read, its header
// and record checksums validated, and torn tails measured — exactly
// the checks Open performs, minus the truncation, deletion and
// re-opening. It distinguishes the two ways a log can be bad:
//
//   - interior corruption (checksum mismatches, epoch from the future,
//     sequence gaps, unparseable names) returns an error matching
//     ErrCorrupt via errors.Is — the caller should quarantine, because
//     recovery would have to drop acknowledged operations;
//   - an I/O failure while reading returns the underlying *os.PathError
//     untouched — the caller may retry, because the log itself has not
//     been shown to be damaged.
//
// A path with no segments at all returns an empty result and nil error
// (absence is a legal state for a freshly created dataset).
func Verify(fsys vfs.FS, path string, epoch uint64) (*VerifyResult, error) {
	if fsys == nil {
		fsys = vfs.OS
	}
	segs, err := listSegments(fsys, path)
	if err != nil {
		return nil, err
	}
	res := &VerifyResult{}
	var current []segment
	for _, sg := range segs {
		switch {
		case sg.epoch < epoch:
			res.Stale++
		case sg.epoch > epoch:
			return nil, corruptf("segment %s is from epoch %d, but the snapshot is at epoch %d — refusing to guess which is authoritative", sg.name, sg.epoch, epoch)
		default:
			current = append(current, sg)
		}
	}

	// Trailing segments whose header never became complete are crashed
	// segment creations; Open prunes them, Verify just skips them (and
	// counts their bytes as torn).
	for len(current) > 0 {
		last := current[len(current)-1]
		data, err := fsys.ReadFile(last.name)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if _, herr := parseHeader(data); herr == errTornHeader {
			res.TornBytes += int64(len(data))
			current = current[:len(current)-1]
			continue
		}
		break
	}

	for i, sg := range current {
		if want := current[0].seq + uint64(i); sg.seq != want {
			return nil, corruptf("segment sequence gap: have %s, want seq %d (acknowledged records lost)", sg.name, want)
		}
		final := i == len(current)-1
		data, err := fsys.ReadFile(sg.name)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		h, err := parseHeader(data)
		if err != nil {
			return nil, fmt.Errorf("wal: %s: %w", sg.name, err)
		}
		if h.epoch != sg.epoch || h.seq != sg.seq {
			return nil, corruptf("%s: header says epoch %d seq %d", sg.name, h.epoch, h.seq)
		}
		ops, end, err := parseRecords(data, h.size, final, sg.name)
		if err != nil {
			return nil, err
		}
		res.Segments++
		res.Ops += len(ops)
		res.TornBytes += int64(len(data) - end)
		res.Radius, res.Metric = h.radius, h.metric
	}

	// No current-epoch segment but stale ones exist: report the stale
	// identity so callers can still name the dataset's radius/metric.
	if res.Segments == 0 && res.Stale > 0 {
		if info, err := DescribeFS(fsys, path); err == nil {
			res.Radius, res.Metric = info.Radius, info.Metric
		} else if !os.IsNotExist(err) {
			return nil, err
		}
	}
	return res, nil
}
