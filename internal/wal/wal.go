// Package wal implements the append-only write-ahead log that makes the
// live-update path (disc.Updater) crash-safe: every acknowledged insert
// or delete is framed, checksummed and appended to a segment file before
// the acknowledgement, so a process that dies between checkpoints can
// replay the log over the last snapshot and recover the exact selection
// it had acknowledged.
//
// # Wire format
//
// A log is a sequence of segment files named <path>.<epoch>-<seq>
// (both zero-padded decimal). Each segment starts with a header:
//
//	[0:8)    magic "DISCWAL1" (the trailing 1 is the format version)
//	[8:16)   uint64 epoch   — checkpoint generation (see below)
//	[16:24)  uint64 seq     — segment sequence within the epoch, from 1
//	[24:32)  float64 radius — the maintained diversification radius
//	[32:36)  uint32 metric name length M
//	[36:36+M) metric name bytes
//	next 4   uint32 CRC-32C of every header byte before it
//
// Records follow immediately, each framed as
//
//	uint32 payload length L
//	uint32 CRC-32C of the payload
//	payload:
//	  byte  kind (1 = insert, 2 = delete)
//	  uint64 id — the op's id in the log id space (see disc.OpenUpdater)
//	  insert only: uint32 dim, dim × float64 coordinates
//
// Every multi-byte value is little-endian; floats are IEEE 754 bit
// patterns.
//
// # Epochs and checkpoints
//
// A checkpoint writes the full compacted state to a snapshot and then
// starts a fresh log: the epoch counter increments, a new segment
// (epoch+1, seq 1) is created, and all older segments are deleted. The
// snapshot records the epoch it begins (snap.Snapshot.WALEpoch), so
// recovery replays exactly the segments whose epoch matches the
// snapshot — segments from an older epoch are leftovers of a checkpoint
// that crashed between snapshot rename and log rotation; every op they
// hold is already in the snapshot, so Open deletes them. Segments from
// a future epoch cannot legitimately exist (the snapshot is renamed
// into place before the new segment is created) and are rejected as
// corruption.
//
// # Torn tails and corruption
//
// Crash recovery distinguishes two kinds of damage:
//
//   - A torn tail — the final segment ends mid-record because the
//     process died mid-append (or the record was never flushed). The
//     surviving prefix is replayed, the tail is physically truncated
//     away, and the log is reopened for appending. Only the op being
//     written (necessarily unacknowledged under SyncAlways) is lost.
//   - Interior corruption — a complete frame whose checksum does not
//     match, an implausible length, an unknown record kind, or damage
//     in any segment other than the final one. These cannot result from
//     a crash mid-append; Open fails loudly rather than silently
//     dropping acknowledged operations.
//
// One ambiguity is fundamental: damage to a length field that makes the
// final frame appear to run past end-of-file is byte-for-byte
// indistinguishable from a genuine torn append, and is truncated as
// one. Recovery therefore guarantees that what it returns is a prefix
// of what was logged — never fabricated or reordered records — and the
// tamper tests assert exactly that.
//
// A Log is not safe for concurrent use; disc.Updater serialises access
// under its mutation lock.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/discdiversity/disc/internal/telemetry"
	"github.com/discdiversity/disc/internal/vfs"
)

const (
	magic = "DISCWAL1"

	// fixedHeader is the byte length of the header before the metric
	// name and trailing CRC.
	fixedHeader = 36

	// frameHeader is the per-record frame: length + payload CRC.
	frameHeader = 8

	// maxRecordLen bounds a single record payload; anything larger in a
	// length field is corruption, not data.
	maxRecordLen = 1 << 26

	// DefaultSegmentBytes is the rotation threshold when Options leaves
	// SegmentBytes zero.
	DefaultSegmentBytes = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks damage recovery must not repair silently: interior
// checksum mismatches, impossible epochs, sequence gaps, unparseable
// segment names — anything that cannot be explained by a crash
// mid-append. Test with errors.Is; transient I/O errors (EIO on a
// read, ENOSPC on a write) deliberately do NOT match, which is how the
// dataset manager separates "quarantine" from "retry with backoff".
var ErrCorrupt = errors.New("unrecoverable corruption")

// corruptf builds an ErrCorrupt-classified error with the wal: prefix.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("wal: %s (%w)", fmt.Sprintf(format, args...), ErrCorrupt)
}

// SyncMode selects the fsync policy applied to acknowledged appends.
type SyncMode int

const (
	// SyncAlways fsyncs after every append: an acknowledged op survives
	// any crash, at one fsync per op.
	SyncAlways SyncMode = iota
	// SyncBatched fsyncs when Options.Interval has elapsed since the
	// last sync: a crash loses at most the ops acknowledged in the last
	// interval.
	SyncBatched
	// SyncNone never fsyncs on append (the OS flushes when it pleases):
	// a process crash loses nothing — the kernel holds the writes — but
	// a machine crash can lose any op since the last checkpoint.
	SyncNone
)

// String implements fmt.Stringer ("always", "interval", "none" — the
// names the discserve -fsync flag accepts).
func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncBatched:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("sync-mode(%d)", int(m))
	}
}

// SyncModeByName resolves "always", "interval" or "none".
func SyncModeByName(name string) (SyncMode, error) {
	switch name {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncBatched, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync mode %q (supported: always, interval, none)", name)
	}
}

// File is the append-file surface the log writes through; *os.File
// satisfies it, and internal/faultio wraps it to inject crashes, short
// writes and sync failures in the property tests.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Options configures Open.
type Options struct {
	// Epoch is the checkpoint generation to recover and append under —
	// the WALEpoch of the snapshot the log extends (0 when no snapshot
	// exists yet).
	Epoch uint64
	// Radius and Metric identify the maintained state; they are written
	// into every segment header and validated against existing segments
	// on Open, so a log can never silently extend state it does not
	// describe.
	Radius float64
	Metric string
	// Sync is the fsync policy (default SyncAlways); Interval is the
	// batching window for SyncBatched (default 100ms).
	Sync     SyncMode
	Interval time.Duration
	// SegmentBytes rotates to a fresh segment once the current one
	// exceeds it (default DefaultSegmentBytes). Records are never split.
	SegmentBytes int64
	// OpenFile, when non-nil, replaces the append-file factory (create
	// truncates/creates; otherwise the file is opened for appending).
	// Tests inject fault-wrapped files here. It takes precedence over
	// FS for the append path.
	OpenFile func(name string, create bool) (File, error)
	// FS, when non-nil, replaces every filesystem call the log makes —
	// listing, reading and truncating segments, removing rotated ones,
	// syncing directories, and (unless OpenFile overrides it) opening
	// the append file. The fault-injection suites pass faultio.DirFS
	// here; nil means the real filesystem (vfs.OS).
	FS vfs.FS
}

func (o *Options) fs() vfs.FS {
	if o.FS != nil {
		return o.FS
	}
	return vfs.OS
}

func (o *Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return DefaultSegmentBytes
	}
	return o.SegmentBytes
}

func (o *Options) interval() time.Duration {
	if o.Interval <= 0 {
		return 100 * time.Millisecond
	}
	return o.Interval
}

func (o *Options) openFile(name string, create bool) (File, error) {
	if o.OpenFile != nil {
		return o.OpenFile(name, create)
	}
	return o.fs().OpenAppend(name, create)
}

// OpKind discriminates log records.
type OpKind uint8

const (
	// OpInsert records an insert: the assigned log id and the point.
	OpInsert OpKind = 1
	// OpDelete records a delete of a log id.
	OpDelete OpKind = 2
)

// Op is one recovered (or to-be-appended) operation.
type Op struct {
	Kind  OpKind
	ID    int64
	Point []float64
}

// Info describes an existing log without replaying it (see Describe).
type Info struct {
	// Epoch is the newest epoch any segment carries.
	Epoch  uint64
	Radius float64
	Metric string
	// Segments counts the segment files present (all epochs).
	Segments int
}

// Log is an open write-ahead log positioned after the last recovered
// record. Create one with Open.
type Log struct {
	path string
	opts Options

	f        File
	name     string
	size     int64
	epoch    uint64
	seq      uint64
	lastSync time.Time
	buf      []byte
	broken   error
}

// segment is one parsed segment file name.
type segment struct {
	name  string
	epoch uint64
	seq   uint64
}

// segmentName renders the file name of (epoch, seq) under the log path.
func segmentName(path string, epoch, seq uint64) string {
	return fmt.Sprintf("%s.%08d-%08d", path, epoch, seq)
}

// listSegments parses every segment file of path, sorted by (epoch,
// seq). File names carrying the path prefix that do not parse are
// corruption — a damaged name must not silently hide its records.
func listSegments(fsys vfs.FS, path string) ([]segment, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	prefix := base + "."
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), prefix) {
			continue
		}
		var epoch, seq uint64
		suffix := e.Name()[len(prefix):]
		if _, err := fmt.Sscanf(suffix, "%d-%d", &epoch, &seq); err != nil || len(suffix) != 17 {
			return nil, corruptf("unrecognised segment file name %q", e.Name())
		}
		segs = append(segs, segment{name: filepath.Join(dir, e.Name()), epoch: epoch, seq: seq})
	}
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].epoch != segs[j].epoch {
			return segs[i].epoch < segs[j].epoch
		}
		return segs[i].seq < segs[j].seq
	})
	return segs, nil
}

// header is a parsed segment header.
type header struct {
	epoch  uint64
	seq    uint64
	radius float64
	metric string
	// size is the header's byte length (records start here).
	size int
}

// parseHeader decodes and checksums a segment header. A file too short
// to hold the full header returns errTornHeader — distinguishable from
// corruption because a crash during segment creation legitimately
// leaves a prefix.
var errTornHeader = fmt.Errorf("wal: torn segment header")

func parseHeader(data []byte) (header, error) {
	var h header
	if len(data) < fixedHeader {
		return h, errTornHeader
	}
	if string(data[:8]) != magic {
		return h, corruptf("bad magic (not a wal segment, or an unsupported version)")
	}
	h.epoch = binary.LittleEndian.Uint64(data[8:])
	h.seq = binary.LittleEndian.Uint64(data[16:])
	h.radius = math.Float64frombits(binary.LittleEndian.Uint64(data[24:]))
	mlen := int(binary.LittleEndian.Uint32(data[32:]))
	if mlen < 0 || mlen > 1<<16 {
		return h, corruptf("implausible metric name length %d", mlen)
	}
	if len(data) < fixedHeader+mlen+4 {
		return h, errTornHeader
	}
	h.metric = string(data[fixedHeader : fixedHeader+mlen])
	h.size = fixedHeader + mlen + 4
	crc := binary.LittleEndian.Uint32(data[fixedHeader+mlen:])
	if crc32.Checksum(data[:fixedHeader+mlen], castagnoli) != crc {
		return h, corruptf("segment header checksum mismatch")
	}
	return h, nil
}

// encodeHeader renders a segment header.
func encodeHeader(epoch, seq uint64, radius float64, metric string) []byte {
	buf := make([]byte, fixedHeader+len(metric)+4)
	copy(buf, magic)
	binary.LittleEndian.PutUint64(buf[8:], epoch)
	binary.LittleEndian.PutUint64(buf[16:], seq)
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(radius))
	binary.LittleEndian.PutUint32(buf[32:], uint32(len(metric)))
	copy(buf[fixedHeader:], metric)
	binary.LittleEndian.PutUint32(buf[fixedHeader+len(metric):], crc32.Checksum(buf[:fixedHeader+len(metric)], castagnoli))
	return buf
}

// parseRecords replays the records of one segment. final marks the last
// segment of the epoch — the only place a torn tail is legal. It
// returns the recovered ops and the byte offset of the clean end; when
// that offset is short of len(data), the caller truncates the file.
func parseRecords(data []byte, start int, final bool, name string) ([]Op, int, error) {
	var ops []Op
	off := start
	for {
		rem := len(data) - off
		if rem == 0 {
			return ops, off, nil
		}
		torn := func(what string) ([]Op, int, error) {
			if final {
				return ops, off, nil
			}
			return nil, 0, corruptf("%s: %s in a non-final segment (acknowledged records lost)", name, what)
		}
		if rem < frameHeader {
			return torn("torn record frame")
		}
		length := int(binary.LittleEndian.Uint32(data[off:]))
		if length == 0 {
			// A zeroed tail: blocks allocated but never persisted
			// (possible under SyncNone). Only legal as a tail.
			return torn("zeroed record frame")
		}
		if length > maxRecordLen {
			return nil, 0, corruptf("%s: implausible record length %d at offset %d", name, length, off)
		}
		if rem-frameHeader < length {
			return torn("torn record payload")
		}
		payload := data[off+frameHeader : off+frameHeader+length]
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if crc32.Checksum(payload, castagnoli) != crc {
			return nil, 0, corruptf("%s: record checksum mismatch at offset %d", name, off)
		}
		op, err := decodeOp(payload)
		if err != nil {
			return nil, 0, corruptf("%s: offset %d: %v", name, off, err)
		}
		ops = append(ops, op)
		off += frameHeader + length
	}
}

// decodeOp parses one checksummed record payload.
func decodeOp(p []byte) (Op, error) {
	if len(p) < 9 {
		return Op{}, fmt.Errorf("record payload of %d bytes is below the 9-byte minimum", len(p))
	}
	op := Op{Kind: OpKind(p[0]), ID: int64(binary.LittleEndian.Uint64(p[1:]))}
	switch op.Kind {
	case OpInsert:
		if len(p) < 13 {
			return Op{}, fmt.Errorf("insert record payload of %d bytes is truncated", len(p))
		}
		dim := int(binary.LittleEndian.Uint32(p[9:]))
		if dim <= 0 || dim > 1<<20 {
			return Op{}, fmt.Errorf("insert record with implausible dimensionality %d", dim)
		}
		if len(p) != 13+8*dim {
			return Op{}, fmt.Errorf("insert record payload of %d bytes does not match dimensionality %d", len(p), dim)
		}
		op.Point = make([]float64, dim)
		for i := range op.Point {
			op.Point[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[13+8*i:]))
		}
	case OpDelete:
		if len(p) != 9 {
			return Op{}, fmt.Errorf("delete record payload of %d bytes, want 9", len(p))
		}
	default:
		return Op{}, fmt.Errorf("unknown record kind %d", p[0])
	}
	return op, nil
}

// encodeOp appends op's framed record to buf and returns the extended
// slice.
func encodeOp(buf []byte, op Op) ([]byte, error) {
	var plen int
	switch op.Kind {
	case OpInsert:
		if len(op.Point) == 0 {
			return nil, fmt.Errorf("wal: insert op without a point")
		}
		plen = 13 + 8*len(op.Point)
	case OpDelete:
		plen = 9
	default:
		return nil, fmt.Errorf("wal: unknown op kind %d", op.Kind)
	}
	if op.ID < 0 {
		return nil, fmt.Errorf("wal: negative op id %d", op.ID)
	}
	start := len(buf)
	buf = append(buf, make([]byte, frameHeader+plen)...)
	p := buf[start+frameHeader:]
	p[0] = byte(op.Kind)
	binary.LittleEndian.PutUint64(p[1:], uint64(op.ID))
	if op.Kind == OpInsert {
		binary.LittleEndian.PutUint32(p[9:], uint32(len(op.Point)))
		for i, x := range op.Point {
			binary.LittleEndian.PutUint64(p[13+8*i:], math.Float64bits(x))
		}
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(plen))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(p, castagnoli))
	return buf, nil
}

// Describe reads the segment headers of an existing log without
// replaying it: the newest epoch present plus the radius and metric the
// log maintains. It returns os.ErrNotExist (wrapped) when no segment
// exists — the caller's signal to treat the state as absent.
func Describe(path string) (*Info, error) { return DescribeFS(vfs.OS, path) }

// DescribeFS is Describe through an explicit filesystem, so recovery
// scans can run under fault injection.
func DescribeFS(fsys vfs.FS, path string) (*Info, error) {
	segs, err := listSegments(fsys, path)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("wal: %s: %w", path, os.ErrNotExist)
	}
	// The newest segment describes the current state; its header is
	// validated like Open would.
	last := segs[len(segs)-1]
	data, err := fsys.ReadFile(last.name)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	h, err := parseHeader(data)
	if err != nil {
		if err == errTornHeader && len(segs) > 1 {
			// A torn final header is a crashed segment creation; the
			// previous segment still describes the state.
			if data, err = fsys.ReadFile(segs[len(segs)-2].name); err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			if h, err = parseHeader(data); err != nil {
				return nil, err
			}
		} else {
			return nil, err
		}
	}
	return &Info{Epoch: h.epoch, Radius: h.radius, Metric: h.metric, Segments: len(segs)}, nil
}

// Open recovers the log at path for epoch opts.Epoch and opens it for
// appending, returning the recovered operations in append order.
// Segments from older epochs (leftovers of a checkpoint that crashed
// before rotation finished — their ops are all in the snapshot) are
// deleted; segments from a newer epoch are corruption. A torn tail in
// the final segment is truncated away; any other damage fails loudly.
// When no current-epoch segment exists, a fresh one is created.
func Open(path string, opts Options) (*Log, []Op, error) {
	defer telemetry.Since(metReplay, time.Now())
	fsys := opts.fs()
	segs, err := listSegments(fsys, path)
	if err != nil {
		return nil, nil, err
	}
	dir := filepath.Dir(path)
	if dir == "" {
		dir = "."
	}
	var current []segment
	removedStale := false
	for _, sg := range segs {
		switch {
		case sg.epoch < opts.Epoch:
			if err := fsys.Remove(sg.name); err != nil {
				return nil, nil, fmt.Errorf("wal: removing stale segment: %w", err)
			}
			removedStale = true
		case sg.epoch > opts.Epoch:
			return nil, nil, corruptf("segment %s is from epoch %d, but the snapshot is at epoch %d — refusing to guess which is authoritative", sg.name, sg.epoch, opts.Epoch)
		default:
			current = append(current, sg)
		}
	}
	if removedStale {
		if err := fsys.SyncDir(dir); err != nil {
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
	}

	// Prune trailing segments whose header never became complete: a
	// crash during segment creation leaves a short (possibly empty)
	// file that holds no records. Only trailing segments qualify — the
	// roll protocol syncs a segment before creating its successor, so a
	// torn header with a healthy successor is corruption, which the
	// parse loop below rejects.
	for len(current) > 0 {
		last := current[len(current)-1]
		data, err := fsys.ReadFile(last.name)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		if _, err := parseHeader(data); err == errTornHeader {
			if err := fsys.Remove(last.name); err != nil {
				return nil, nil, fmt.Errorf("wal: %w", err)
			}
			current = current[:len(current)-1]
			continue
		}
		break
	}

	l := &Log{path: path, opts: opts, epoch: opts.Epoch}
	var ops []Op
	for i, sg := range current {
		if want := current[0].seq + uint64(i); sg.seq != want {
			return nil, nil, corruptf("segment sequence gap: have %s, want seq %d (acknowledged records lost)", sg.name, want)
		}
		final := i == len(current)-1
		data, err := fsys.ReadFile(sg.name)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		h, err := parseHeader(data)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: %s: %w", sg.name, err)
		}
		if h.epoch != sg.epoch || h.seq != sg.seq {
			return nil, nil, corruptf("%s: header says epoch %d seq %d", sg.name, h.epoch, h.seq)
		}
		if h.metric != opts.Metric {
			return nil, nil, corruptf("%s was written for metric %q, not %q", sg.name, h.metric, opts.Metric)
		}
		if h.radius != opts.Radius {
			return nil, nil, corruptf("%s was written for radius %g, not %g", sg.name, h.radius, opts.Radius)
		}
		segOps, end, err := parseRecords(data, h.size, final, sg.name)
		if err != nil {
			return nil, nil, err
		}
		if end < len(data) {
			// Torn tail (final segment only): drop it physically so the
			// next append continues from the clean end.
			if err := fsys.Truncate(sg.name, int64(end)); err != nil {
				return nil, nil, fmt.Errorf("wal: truncating torn tail: %w", err)
			}
		}
		ops = append(ops, segOps...)
		if final {
			l.name, l.seq, l.size = sg.name, sg.seq, int64(end)
		}
	}

	if l.name == "" {
		if err := l.createSegment(1); err != nil {
			return nil, nil, err
		}
	} else {
		f, err := opts.openFile(l.name, false)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		l.f = f
	}
	l.lastSync = time.Now()
	metReplayed.Add(uint64(len(ops)))
	return l, ops, nil
}

// createSegment makes (l.epoch, seq) the active segment: header written
// and synced, directory entry synced.
func (l *Log) createSegment(seq uint64) error {
	name := segmentName(l.path, l.epoch, seq)
	f, err := l.opts.openFile(name, true)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	hdr := encodeHeader(l.epoch, seq, l.opts.Radius, l.opts.Metric)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.opts.fs().SyncDir(filepath.Dir(name)); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f, l.name, l.seq, l.size = f, name, seq, int64(len(hdr))
	return nil
}

// Append frames, checksums and writes op, applying the configured fsync
// policy before acknowledging. Any write or sync failure poisons the
// log — the file may hold a partial frame, so further appends would
// corrupt it; recovery treats the partial frame as a torn tail.
func (l *Log) Append(op Op) error {
	defer telemetry.Since(metAppend, time.Now())
	if l.broken != nil {
		return fmt.Errorf("wal: log is poisoned by an earlier failure: %w", l.broken)
	}
	metAppends.Inc()
	buf, err := encodeOp(l.buf[:0], op)
	if err != nil {
		return err
	}
	l.buf = buf
	if l.size+int64(len(buf)) > l.opts.segmentBytes() && l.size > 0 {
		if err := l.rollSegment(); err != nil {
			return err
		}
	}
	n, err := l.f.Write(buf)
	if err == nil && n < len(buf) {
		err = io.ErrShortWrite
	}
	if err != nil {
		l.broken = err
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(buf))
	switch l.opts.Sync {
	case SyncAlways:
		if err := l.fsync(); err != nil {
			l.broken = err
			return fmt.Errorf("wal: sync: %w", err)
		}
		l.lastSync = time.Now()
	case SyncBatched:
		if time.Since(l.lastSync) >= l.opts.interval() {
			if err := l.fsync(); err != nil {
				l.broken = err
				return fmt.Errorf("wal: sync: %w", err)
			}
			l.lastSync = time.Now()
		}
	}
	return nil
}

// rollSegment closes the active segment and starts the next sequence
// number in the same epoch.
func (l *Log) rollSegment() error {
	if err := l.fsync(); err != nil {
		l.broken = err
		return fmt.Errorf("wal: sync before roll: %w", err)
	}
	if err := l.f.Close(); err != nil {
		l.broken = err
		return fmt.Errorf("wal: close before roll: %w", err)
	}
	if err := l.createSegment(l.seq + 1); err != nil {
		l.broken = err
		return err
	}
	return nil
}

// Sync forces an fsync of the active segment regardless of policy.
func (l *Log) Sync() error {
	if l.broken != nil {
		return fmt.Errorf("wal: log is poisoned by an earlier failure: %w", l.broken)
	}
	if err := l.fsync(); err != nil {
		l.broken = err
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.lastSync = time.Now()
	return nil
}

// Rotate completes a checkpoint: it opens a fresh segment (newEpoch,
// seq 1) and deletes every older segment. The caller must already have
// renamed the epoch-stamped snapshot into place — crash-ordering
// correctness depends on snapshot-then-rotate. Failure poisons the log:
// the snapshot on disk is then newer than the log's epoch, and
// appending more records to the old epoch would lose them at the next
// recovery.
func (l *Log) Rotate(newEpoch uint64) error {
	if l.broken != nil {
		return fmt.Errorf("wal: log is poisoned by an earlier failure: %w", l.broken)
	}
	if newEpoch <= l.epoch {
		return fmt.Errorf("wal: rotate to epoch %d from %d (epochs must advance)", newEpoch, l.epoch)
	}
	if err := l.fsync(); err != nil {
		l.broken = err
		return fmt.Errorf("wal: sync before rotate: %w", err)
	}
	if err := l.f.Close(); err != nil {
		l.broken = err
		return fmt.Errorf("wal: close before rotate: %w", err)
	}
	oldEpoch := l.epoch
	l.epoch = newEpoch
	if err := l.createSegment(1); err != nil {
		l.broken = err
		return err
	}
	// Old segments go last: until the new segment is durable they are
	// harmless (recovery for the new snapshot epoch ignores them), and
	// removing them first would risk a window with no log at all.
	fsys := l.opts.fs()
	segs, err := listSegments(fsys, l.path)
	if err != nil {
		l.broken = err
		return err
	}
	for _, sg := range segs {
		if sg.epoch <= oldEpoch {
			if err := fsys.Remove(sg.name); err != nil {
				l.broken = err
				return fmt.Errorf("wal: removing rotated segment: %w", err)
			}
		}
	}
	if err := fsys.SyncDir(filepath.Dir(l.path)); err != nil {
		l.broken = err
		return fmt.Errorf("wal: %w", err)
	}
	l.lastSync = time.Now()
	metRotations.Inc()
	return nil
}

// Epoch returns the epoch the log is appending under.
func (l *Log) Epoch() uint64 { return l.epoch }

// Broken returns the error that poisoned the log, or nil while it is
// healthy. A poisoned log refuses every further append; the owner
// should close it and re-open from disk (recovery truncates the
// possibly-torn tail back to the acknowledged prefix).
func (l *Log) Broken() error { return l.broken }

// Path returns the log's path prefix (segment files append .epoch-seq).
func (l *Log) Path() string { return l.path }

// Size returns the byte size of the active segment.
func (l *Log) Size() int64 { return l.size }

// Close syncs and closes the active segment. The log cannot be used
// afterwards.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	var err error
	if l.broken == nil {
		err = l.fsync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}
