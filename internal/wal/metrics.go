package wal

import (
	"time"

	"github.com/discdiversity/disc/internal/telemetry"
)

// Durability counters and timers. Fsync timing goes through the fsync
// helper below so every data-file sync — per-append policy syncs,
// explicit Sync, segment rolls, rotations, close — lands in one series;
// comparing disc_wal_fsyncs_total against disc_wal_appends_total shows
// how much batching the configured policy actually achieves.
var (
	metAppend = telemetry.Default().Histogram("disc_wal_append_seconds",
		"Wall time of one WAL append, policy fsync included.")
	metAppends = telemetry.Default().Counter("disc_wal_appends_total",
		"Operations appended to the WAL since process start.")
	metFsync = telemetry.Default().Histogram("disc_wal_fsync_seconds",
		"Wall time of one fsync of the active WAL segment.")
	metFsyncs = telemetry.Default().Counter("disc_wal_fsyncs_total",
		"Fsyncs of the active WAL segment since process start.")
	metRotations = telemetry.Default().Counter("disc_wal_rotations_total",
		"Checkpoint rotations (epoch advances) since process start.")
	metReplay = telemetry.Default().Histogram("disc_wal_replay_seconds",
		"Wall time of one recovery replay (wal.Open over existing segments).")
	metReplayed = telemetry.Default().Counter("disc_wal_replayed_records_total",
		"Operations replayed from WAL segments during recovery since process start.")
)

// fsync syncs the active segment file, timing and counting the call.
func (l *Log) fsync() error {
	start := time.Now()
	err := l.f.Sync()
	telemetry.Since(metFsync, start)
	metFsyncs.Inc()
	return err
}
