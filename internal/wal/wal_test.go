package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/discdiversity/disc/internal/vfs"
)

func openEmpty(t *testing.T, dir string, opts Options) (*Log, string) {
	t.Helper()
	path := filepath.Join(dir, "t.wal")
	l, ops, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(ops) != 0 {
		t.Fatalf("fresh log replayed %d ops", len(ops))
	}
	return l, path
}

func apnd(t *testing.T, l *Log, ops ...Op) {
	t.Helper()
	for _, op := range ops {
		if err := l.Append(op); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

func replay(t *testing.T, path string, opts Options) []Op {
	t.Helper()
	l, ops, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open (replay): %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return ops
}

func sampleOps() []Op {
	return []Op{
		{Kind: OpInsert, ID: 0, Point: []float64{0, 0}},
		{Kind: OpInsert, ID: 1, Point: []float64{1.5, -2.25}},
		{Kind: OpDelete, ID: 0},
		{Kind: OpInsert, ID: 2, Point: []float64{3, 4}},
	}
}

func opsEqual(a, b []Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].ID != b[i].ID || len(a[i].Point) != len(b[i].Point) {
			return false
		}
		for j := range a[i].Point {
			if a[i].Point[j] != b[i].Point[j] {
				return false
			}
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	opts := Options{Radius: 0.25, Metric: "euclidean", Sync: SyncNone}
	l, path := openEmpty(t, t.TempDir(), opts)
	want := sampleOps()
	apnd(t, l, want...)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := replay(t, path, opts); !opsEqual(got, want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
}

func TestHeaderMismatches(t *testing.T) {
	opts := Options{Radius: 0.25, Metric: "euclidean"}
	l, path := openEmpty(t, t.TempDir(), opts)
	apnd(t, l, sampleOps()...)
	l.Close()

	for _, tc := range []struct {
		name string
		opts Options
		want string
	}{
		{"metric", Options{Radius: 0.25, Metric: "manhattan"}, "metric"},
		{"radius", Options{Radius: 0.5, Metric: "euclidean"}, "radius"},
	} {
		_, _, err := Open(path, tc.opts)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: Open = %v, want error mentioning %q", tc.name, err, tc.want)
		}
	}
}

func TestFutureEpochRefused(t *testing.T) {
	opts := Options{Radius: 0.25, Metric: "euclidean", Epoch: 3}
	_, path := openEmpty(t, t.TempDir(), opts)
	_, _, err := Open(path, Options{Radius: 0.25, Metric: "euclidean", Epoch: 1})
	if err == nil || !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("Open with stale snapshot epoch = %v, want epoch error", err)
	}
}

func TestStaleEpochCleanup(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Radius: 0.25, Metric: "euclidean"}
	l, path := openEmpty(t, dir, opts)
	apnd(t, l, sampleOps()...)
	l.Close()

	// A snapshot at epoch 2 makes the epoch-0 segment stale: its ops are
	// covered. Open must delete it and recover nothing.
	ops := replay(t, path, Options{Radius: 0.25, Metric: "euclidean", Epoch: 2})
	if len(ops) != 0 {
		t.Fatalf("stale segments replayed %d ops", len(ops))
	}
	if _, err := os.Stat(segmentName(path, 0, 1)); !os.IsNotExist(err) {
		t.Fatalf("stale segment still present: %v", err)
	}
	if _, err := os.Stat(segmentName(path, 2, 1)); err != nil {
		t.Fatalf("no fresh segment for epoch 2: %v", err)
	}
}

func TestRotate(t *testing.T) {
	opts := Options{Radius: 0.25, Metric: "euclidean"}
	l, path := openEmpty(t, t.TempDir(), opts)
	apnd(t, l, sampleOps()...)
	if err := l.Rotate(1); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	post := Op{Kind: OpInsert, ID: 3, Point: []float64{9, 9}}
	apnd(t, l, post)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(segmentName(path, 0, 1)); !os.IsNotExist(err) {
		t.Fatalf("rotated-away segment still present: %v", err)
	}
	got := replay(t, path, Options{Radius: 0.25, Metric: "euclidean", Epoch: 1})
	if !opsEqual(got, []Op{post}) {
		t.Fatalf("post-rotate replay = %v, want %v", got, []Op{post})
	}
}

func TestSegmentRollAndGap(t *testing.T) {
	// Tiny segments force a roll every record or two.
	opts := Options{Radius: 0.25, Metric: "euclidean", SegmentBytes: 100, Sync: SyncNone}
	l, path := openEmpty(t, t.TempDir(), opts)
	var want []Op
	for i := 0; i < 10; i++ {
		op := Op{Kind: OpInsert, ID: int64(i), Point: []float64{float64(i), 1}}
		want = append(want, op)
		apnd(t, l, op)
	}
	l.Close()
	segs, err := listSegments(vfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	if got := replay(t, path, opts); !opsEqual(got, want) {
		t.Fatalf("multi-segment replay = %v, want %v", got, want)
	}

	// Removing a middle segment is lost acknowledged data: loud error.
	if err := os.Remove(segs[1].name); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, opts); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("Open with missing middle segment = %v, want gap error", err)
	}
}

// writeSample creates a single-segment log holding sampleOps and
// returns (path, segment file name, clean byte size, record offsets).
func writeSample(t *testing.T, opts Options) (string, string, []int64) {
	t.Helper()
	l, path := openEmpty(t, t.TempDir(), opts)
	name := segmentName(path, opts.Epoch, 1)
	offsets := []int64{l.Size()}
	for _, op := range sampleOps() {
		apnd(t, l, op)
		offsets = append(offsets, l.Size())
	}
	l.Close()
	return path, name, offsets
}

func TestTornTailTruncated(t *testing.T) {
	opts := Options{Radius: 0.25, Metric: "euclidean"}
	path, name, offsets := writeSample(t, opts)
	want := sampleOps()
	clean := offsets[len(offsets)-1]
	// Every truncation point between the last two record boundaries
	// loses exactly the final record; the file must come back truncated
	// to the previous boundary.
	for cut := offsets[len(offsets)-2] + 1; cut < clean; cut++ {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(name, cut); err != nil {
			t.Fatal(err)
		}
		got := replay(t, path, opts)
		if !opsEqual(got, want[:len(want)-1]) {
			t.Fatalf("cut=%d: replay = %v, want %v", cut, got, want[:len(want)-1])
		}
		st, err := os.Stat(name)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() != offsets[len(offsets)-2] {
			t.Fatalf("cut=%d: torn tail not truncated: size %d, want %d", cut, st.Size(), offsets[len(offsets)-2])
		}
		if err := os.WriteFile(name, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestZeroedTailTruncated(t *testing.T) {
	opts := Options{Radius: 0.25, Metric: "euclidean"}
	path, name, offsets := writeSample(t, opts)
	// Preallocated-but-unwritten blocks read as zeroes; a zeroed frame
	// at the tail is torn, not corrupt.
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got := replay(t, path, opts)
	if !opsEqual(got, sampleOps()) {
		t.Fatalf("replay with zeroed tail = %v, want full ops", got)
	}
	st, _ := os.Stat(name)
	if st.Size() != offsets[len(offsets)-1] {
		t.Fatalf("zeroed tail not truncated: size %d, want %d", st.Size(), offsets[len(offsets)-1])
	}
}

func TestBitFlipNeverFabricates(t *testing.T) {
	opts := Options{Radius: 0.25, Metric: "euclidean"}
	path, name, offsets := writeSample(t, opts)
	want := sampleOps()
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in every byte of the segment — header, frames,
	// payloads. Each flip must either fail loudly or (for the few
	// positions a flip is indistinguishable from a torn tail, e.g. a
	// high bit of a length field) recover a strict prefix of the
	// original ops with the damage truncated away. What recovery must
	// never do is succeed with fabricated, reordered or altered ops.
	for off := int64(0); off < int64(len(data)); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		if err := os.WriteFile(name, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		l, got, err := Open(path, opts)
		if err != nil {
			continue // loud rejection: good
		}
		l.Close()
		if len(got) >= len(want) || !opsEqual(got, want[:len(got)]) {
			t.Fatalf("bit flip at %d: recovered %v, which is not a strict prefix of %v", off, got, want)
		}
		// Restore the original segment for the next position (recovery
		// may have truncated or recreated it).
		if err := os.WriteFile(name, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// The flips that matter most — CRC fields and payload bytes — must
	// reject, not truncate: spot-check the CRC word and a payload byte
	// of the first (interior) record.
	for _, off := range []int64{offsets[0] + 4, offsets[0] + 8, offsets[1] - 1} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		if err := os.WriteFile(name, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(path, opts); err == nil {
			t.Fatalf("bit flip at %d (CRC/payload of an interior record): Open succeeded", off)
		}
	}
}

func TestUnknownRecordKindFailsLoudly(t *testing.T) {
	opts := Options{Radius: 0.25, Metric: "euclidean"}
	path, name, _ := writeSample(t, opts)
	// Craft a checksummed frame with an unknown kind: valid CRC, so
	// only the kind check can reject it — and it must.
	payload := make([]byte, 9)
	payload[0] = 99
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeader:], payload)
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, _, err := Open(path, opts); err == nil || !strings.Contains(err.Error(), "unknown record kind") {
		t.Fatalf("Open = %v, want unknown-record-kind error", err)
	}
}

func TestCorruptLengthFailsLoudly(t *testing.T) {
	opts := Options{Radius: 0.25, Metric: "euclidean"}
	path, name, offsets := writeSample(t, opts)
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(data[offsets[0]:], maxRecordLen+1)
	if err := os.WriteFile(name, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, opts); err == nil || !strings.Contains(err.Error(), "implausible record length") {
		t.Fatalf("Open = %v, want implausible-length error", err)
	}
}

func TestTornFinalHeaderDiscarded(t *testing.T) {
	opts := Options{Radius: 0.25, Metric: "euclidean"}
	path, _, _ := writeSample(t, opts)
	// Simulate a crash during the creation of the next segment: a
	// partial header. Open must discard it and keep the prior records.
	name2 := segmentName(path, 0, 2)
	if err := os.WriteFile(name2, []byte(magic+"trunc"), 0o644); err != nil {
		t.Fatal(err)
	}
	got := replay(t, path, opts)
	if !opsEqual(got, sampleOps()) {
		t.Fatalf("replay = %v, want full sample", got)
	}
	if _, err := os.Stat(name2); !os.IsNotExist(err) {
		t.Fatalf("torn header segment still present: %v", err)
	}
	// The surviving segment must be intact on disk too — a second
	// recovery sees the same records (guards against the append path
	// re-creating and truncating it).
	if got := replay(t, path, opts); !opsEqual(got, sampleOps()) {
		t.Fatalf("second replay = %v; the recovery wrote over the surviving segment", got)
	}
}

func TestDescribe(t *testing.T) {
	opts := Options{Radius: 0.125, Metric: "chebyshev"}
	l, path := openEmpty(t, t.TempDir(), opts)
	apnd(t, l, sampleOps()...)
	if err := l.Rotate(1); err != nil {
		t.Fatal(err)
	}
	l.Close()
	info, err := Describe(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 1 || info.Radius != 0.125 || info.Metric != "chebyshev" {
		t.Fatalf("Describe = %+v", info)
	}
	if _, err := Describe(filepath.Join(t.TempDir(), "absent.wal")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Describe(absent) = %v, want ErrNotExist", err)
	}
}
