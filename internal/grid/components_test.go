package grid

import (
	"math/rand"
	"testing"

	"github.com/discdiversity/disc/internal/object"
)

// bruteComponents labels components by union-find over every point pair
// within r, then renumbers canonically (ascending min member).
func bruteComponents(flat *object.FlatDataset, r float64) []int32 {
	n := flat.Len()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	m := flat.Metric()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if m.Dist(flat.Point(i), flat.Point(j)) <= r {
				parent[find(i)] = find(j)
			}
		}
	}
	label := make([]int32, n)
	next := int32(0)
	rename := map[int]int32{}
	for i := 0; i < n; i++ {
		root := find(i)
		l, ok := rename[root]
		if !ok {
			l = next
			rename[root] = l
			next++
		}
		label[i] = l
	}
	return label
}

// TestComponentsMatchBruteForce: CSR labeling must reproduce the
// union-find reference across dimensionalities, metrics and radii —
// including query radii strictly below the join radius, where rows must
// be distance-filtered.
func TestComponentsMatchBruteForce(t *testing.T) {
	metrics := []object.Metric{object.Euclidean{}, object.Manhattan{}, object.Chebyshev{}}
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 8; trial++ {
		dim := 1 + trial%4
		m := metrics[trial%len(metrics)]
		n := 80 + rng.Intn(160)
		flat := randomFlat(t, n, dim, m, int64(300+trial))
		joinR := 0.05 + rng.Float64()*0.15
		g, err := Build(flat, joinR)
		if err != nil {
			t.Fatal(err)
		}
		csr, _, err := Join(g, joinR, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range []float64{joinR, joinR / 2} {
			got := ComponentsOfCSR(csr, n, r)
			want := bruteComponents(flat, r)
			for id := range want {
				if got.Label[id] != want[id] {
					t.Fatalf("trial=%d r=%g: point %d labeled %d, want %d", trial, r, id, got.Label[id], want[id])
				}
			}
			if err := got.Validate(csr, r); err != nil {
				t.Fatalf("trial=%d r=%g: %v", trial, r, err)
			}
		}
	}
}

// TestComponentsIndexInvariants: the member index must partition the id
// range, list every component's members ascending, agree with the label
// array, and number components by ascending minimum member id.
func TestComponentsIndexInvariants(t *testing.T) {
	flat := randomFlat(t, 240, 2, object.Euclidean{}, 31)
	const r = 0.05
	g, err := Build(flat, r)
	if err != nil {
		t.Fatal(err)
	}
	csr, _, err := Join(g, r, 1)
	if err != nil {
		t.Fatal(err)
	}
	cp := ComponentsOfCSR(csr, flat.Len(), r)
	if cp.Count < 2 {
		t.Fatalf("degenerate decomposition (%d components); pick a smaller radius", cp.Count)
	}
	if cp.Offsets[0] != 0 || int(cp.Offsets[cp.Count]) != flat.Len() {
		t.Fatalf("offsets do not span the id range")
	}
	prevMin := int32(-1)
	seen := 0
	for c := 0; c < cp.Count; c++ {
		members := cp.MemberIDs(c)
		if len(members) == 0 {
			t.Fatalf("component %d is empty", c)
		}
		if members[0] <= prevMin {
			t.Fatalf("component %d min member %d is not above component %d's %d", c, members[0], c-1, prevMin)
		}
		prevMin = members[0]
		prev := int32(-1)
		for _, id := range members {
			if id <= prev {
				t.Fatalf("component %d members are not ascending", c)
			}
			prev = id
			if cp.Label[id] != int32(c) {
				t.Fatalf("point %d listed in component %d but labeled %d", id, c, cp.Label[id])
			}
			seen++
		}
	}
	if seen != flat.Len() {
		t.Fatalf("index lists %d members for %d points", seen, flat.Len())
	}
	if cp.Largest() <= 0 || cp.Largest() > flat.Len() {
		t.Fatalf("implausible largest component %d", cp.Largest())
	}
}

// TestComponentsFromLabelsRoundTrip: reassembling from a computed label
// array must reproduce the decomposition exactly, and every class of
// tampering must be rejected.
func TestComponentsFromLabelsRoundTrip(t *testing.T) {
	flat := randomFlat(t, 200, 2, object.Euclidean{}, 37)
	const r = 0.06
	g, err := Build(flat, r)
	if err != nil {
		t.Fatal(err)
	}
	csr, _, err := Join(g, r, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := ComponentsOfCSR(csr, flat.Len(), r)
	got, err := ComponentsFromLabels(want.Label, want.Count)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != want.Count {
		t.Fatalf("count %d, want %d", got.Count, want.Count)
	}
	for id := range want.Label {
		if got.Label[id] != want.Label[id] {
			t.Fatalf("label of %d drifted", id)
		}
	}
	for c := 0; c <= want.Count; c++ {
		if got.Offsets[c] != want.Offsets[c] {
			t.Fatalf("offset of %d drifted", c)
		}
	}
	for i := range want.Members {
		if got.Members[i] != want.Members[i] {
			t.Fatalf("member slot %d drifted", i)
		}
	}
	if err := got.Validate(csr, r); err != nil {
		t.Fatal(err)
	}

	tamper := func(name string, mutate func([]int32) ([]int32, int)) {
		labels := append([]int32(nil), want.Label...)
		labels, count := mutate(labels)
		if _, err := ComponentsFromLabels(labels, count); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	tamper("out-of-range label", func(l []int32) ([]int32, int) {
		l[5] = int32(want.Count)
		return l, want.Count
	})
	tamper("negative label", func(l []int32) ([]int32, int) {
		l[0] = -1
		return l, want.Count
	})
	tamper("non-canonical numbering", func(l []int32) ([]int32, int) {
		// Swap the numbers of the first two components: point 0 must
		// carry label 0.
		for i := range l {
			switch l[i] {
			case 0:
				l[i] = 1
			case 1:
				l[i] = 0
			}
		}
		return l, want.Count
	})
	tamper("overdeclared count", func(l []int32) ([]int32, int) {
		return l, want.Count + 1
	})
	tamper("empty labels", func(l []int32) ([]int32, int) {
		return nil, 1
	})

	// A cross-component edge — labels that split a true component —
	// must fail Validate.
	if want.Count < 2 {
		t.Fatalf("degenerate decomposition (%d components); pick a smaller radius", want.Count)
	}
	labels := append([]int32(nil), want.Label...)
	big := -1
	for c := 0; c < want.Count; c++ {
		if want.Size(c) >= 2 {
			big = c
			break
		}
	}
	if big < 0 {
		t.Fatalf("no multi-member component to split")
	}
	// Relabeling a non-minimum member of a multi-member component breaks
	// at least one of its edges.
	victim := want.MemberIDs(big)[want.Size(big)-1]
	labels[victim] = (labels[victim] + 1) % int32(want.Count)
	split := &Components{Count: want.Count, Label: labels}
	split.BuildIndex()
	if err := split.Validate(csr, r); err == nil {
		t.Errorf("split component accepted by Validate")
	}

	// Labels that merge two singleton components — canonical, no
	// cross-class edge, but an edge-less point inside a multi-member
	// class — must fail Validate too: the pair fast path depends on
	// two-member classes being genuine connected pairs.
	singles := make([]int, 0, 2)
	for c := 0; c < want.Count && len(singles) < 2; c++ {
		if want.Size(c) == 1 {
			singles = append(singles, c)
		}
	}
	if len(singles) < 2 {
		t.Fatalf("no two singleton components to merge")
	}
	merged := append([]int32(nil), want.Label...)
	for i, l := range merged {
		switch {
		case l == int32(singles[1]):
			merged[i] = int32(singles[0])
		case l > int32(singles[1]):
			merged[i]--
		}
	}
	cpm, err := ComponentsFromLabels(merged, want.Count-1)
	if err != nil {
		t.Fatalf("merged singleton labels rejected structurally: %v", err)
	}
	if err := cpm.Validate(csr, r); err == nil {
		t.Errorf("merged singleton components accepted by Validate")
	}
}
