package grid

import (
	"testing"

	"github.com/discdiversity/disc/internal/object"
)

// TestPartsRoundTrip: FromParts(g.Parts()) must answer queries exactly
// like the original grid — same neighbours, same order, bit-identical
// distances — across dimensionalities and metrics.
func TestPartsRoundTrip(t *testing.T) {
	metrics := []object.Metric{object.Euclidean{}, object.Manhattan{}, object.Chebyshev{}}
	for dim := 1; dim <= 4; dim++ {
		m := metrics[dim%len(metrics)]
		flat := randomFlat(t, 150+20*dim, dim, m, int64(40+dim))
		g, err := Build(flat, 0.15)
		if err != nil {
			t.Fatal(err)
		}
		re, err := FromParts(flat, g.Parts())
		if err != nil {
			t.Fatalf("dim %d: %v", dim, err)
		}
		if re.Radius() != g.Radius() || re.Cell() != g.Cell() || re.Cells() != g.Cells() {
			t.Fatalf("dim %d: grid parameters drifted", dim)
		}
		s1, s2 := NewScratch(dim), NewScratch(dim)
		for id := 0; id < flat.Len(); id += 7 {
			for _, r := range []float64{0.05, 0.15, 0.5} {
				a := g.AppendRange(nil, flat.Row(id), r, id, nil, s1)
				b := re.AppendRange(nil, flat.Row(id), r, id, nil, s2)
				if !equalNeighbors(a, b) {
					t.Fatalf("dim %d id %d r %g: rehydrated grid drifted", dim, id, r)
				}
			}
		}
	}
}

// TestFromPartsRejectsTampering: each single-field inconsistency must be
// caught by validation, not surface as a wrong query result.
func TestFromPartsRejectsTampering(t *testing.T) {
	flat := randomFlat(t, 200, 2, object.Euclidean{}, 77)
	g, err := Build(flat, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	pristine := g.Parts()
	clone := func() Parts {
		p := pristine
		p.Min = append([]float64(nil), p.Min...)
		p.ND = append([]int32(nil), p.ND...)
		p.Start = append([]int32(nil), p.Start...)
		p.IDs = append([]int32(nil), p.IDs...)
		p.CellOf = append([]int32(nil), p.CellOf...)
		return p
	}
	cases := []struct {
		name   string
		mutate func(*Parts)
	}{
		{"cell below radius", func(p *Parts) { p.Cell = p.R / 2 }},
		{"negative radius", func(p *Parts) { p.R = -1 }},
		{"wrong dimensionality", func(p *Parts) { p.ND = p.ND[:1]; p.Min = p.Min[:1] }},
		{"zero cells in a dimension", func(p *Parts) { p.ND[0] = 0 }},
		{"offsets do not span", func(p *Parts) { p.Start[len(p.Start)-1]-- }},
		{"swapped members", func(p *Parts) {
			// Swapping two ids across cells breaks CellOf consistency.
			p.IDs[0], p.IDs[len(p.IDs)-1] = p.IDs[len(p.IDs)-1], p.IDs[0]
		}},
		{"duplicated member", func(p *Parts) { p.IDs[1] = p.IDs[0] }},
		{"shifted origin", func(p *Parts) { p.Min[0] += 2 * p.Cell }},
		{"remapped point", func(p *Parts) {
			// Point 0's recorded cell no longer matches its coordinates.
			from := p.CellOf[0]
			to := from + 1
			if int(to) >= len(p.Start)-1 {
				to = from - 1
			}
			p.CellOf[0] = to
		}},
	}
	for _, tc := range cases {
		p := clone()
		tc.mutate(&p)
		if _, err := FromParts(flat, p); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
	// The pristine layout itself must of course load.
	if _, err := FromParts(flat, clone()); err != nil {
		t.Fatalf("pristine parts rejected: %v", err)
	}
}

// TestCSRValidate: structural lies in a deserialised adjacency must be
// rejected.
func TestCSRValidate(t *testing.T) {
	flat := randomFlat(t, 180, 2, object.Euclidean{}, 78)
	g, err := Build(flat, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	csr, _, err := Join(g, 0.12, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := csr.Validate(flat.Len(), 0.12); err != nil {
		t.Fatalf("genuine CSR rejected: %v", err)
	}
	if len(csr.Nbrs) == 0 {
		t.Skip("degenerate workload: no edges")
	}
	clone := func() *CSR {
		return &CSR{
			Offsets: append([]int32(nil), csr.Offsets...),
			Nbrs:    append([]object.Neighbor(nil), csr.Nbrs...),
		}
	}
	row := 0
	for csr.Degree(row) == 0 {
		row++
	}
	first := int(csr.Offsets[row])
	cases := []struct {
		name   string
		mutate func(*CSR)
	}{
		{"short offsets", func(c *CSR) { c.Offsets = c.Offsets[:len(c.Offsets)-1] }},
		{"offsets overrun", func(c *CSR) { c.Offsets[len(c.Offsets)-1]++ }},
		{"id out of range", func(c *CSR) { c.Nbrs[first].ID = flat.Len() }},
		{"self loop", func(c *CSR) { c.Nbrs[first].ID = row }},
		{"distance beyond radius", func(c *CSR) { c.Nbrs[first].Dist = 1e9 }},
		{"negative distance", func(c *CSR) { c.Nbrs[first].Dist = -0.5 }},
	}
	for _, tc := range cases {
		c := clone()
		tc.mutate(c)
		if err := c.Validate(flat.Len(), 0.12); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}
