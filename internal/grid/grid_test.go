package grid

import (
	"math/rand"
	"testing"

	"github.com/discdiversity/disc/internal/object"
)

func randomFlat(t *testing.T, n, dim int, m object.Metric, seed int64) *object.FlatDataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := make([]object.Point, n)
	for i := range pts {
		p := make(object.Point, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	flat, err := object.Flatten(pts, m)
	if err != nil {
		t.Fatal(err)
	}
	return flat
}

func equalNeighbors(a, b []object.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// brute returns the reference neighbourhood: the flat dataset's own
// linear scan, which reports ascending ids with kernel-exact distances.
func brute(flat *object.FlatDataset, id int, r float64) []object.Neighbor {
	return flat.AppendRange(nil, flat.Row(id), r, id)
}

// TestGridMatchesBruteForce: across random dimensionalities, metrics and
// radii — including query radii above and below the bucketing radius —
// the cell-range scan must return exactly the brute-force neighbour
// list (same ids, same order, bit-identical distances).
func TestGridMatchesBruteForce(t *testing.T) {
	metrics := []object.Metric{object.Euclidean{}, object.Manhattan{}, object.Chebyshev{}}
	rng := rand.New(rand.NewSource(17))
	for dim := 1; dim <= 5; dim++ {
		m := metrics[dim%len(metrics)]
		n := 120 + rng.Intn(200)
		flat := randomFlat(t, n, dim, m, int64(100+dim))
		buildR := 0.02 + rng.Float64()*0.2
		g, err := Build(flat, buildR)
		if err != nil {
			t.Fatal(err)
		}
		s := NewScratch(dim)
		for trial := 0; trial < 40; trial++ {
			id := rng.Intn(n)
			rq := rng.Float64() * 3 * buildR // exercises reach 1 and multi-ring scans
			got := g.AppendRange(nil, flat.Row(id), rq, id, nil, s)
			want := brute(flat, id, rq)
			if !equalNeighbors(got, want) {
				t.Fatalf("dim=%d metric=%s buildR=%g rq=%g id=%d: grid %v want %v",
					dim, m.Name(), buildR, rq, id, got, want)
			}
		}
	}
}

// TestGridBoundaryPoints: points placed on exact multiples of r — every
// pair distance lands exactly on a cell boundary and many exactly on the
// radius — must bucket and join without losing or inventing neighbours.
func TestGridBoundaryPoints(t *testing.T) {
	const r = 0.125 // exactly representable so k·r stays on the boundary
	var pts []object.Point
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			pts = append(pts, object.Point{float64(i) * r, float64(j) * r})
		}
	}
	flat, err := object.Flatten(pts, object.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(flat, r)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScratch(2)
	for id := range pts {
		for _, rq := range []float64{r / 2, r, 2 * r} {
			got := g.AppendRange(nil, flat.Row(id), rq, id, nil, s)
			want := brute(flat, id, rq)
			if !equalNeighbors(got, want) {
				t.Fatalf("id=%d rq=%g: grid %v want %v", id, rq, got, want)
			}
		}
	}
	// At rq = r every lattice point must see its 4-neighbourhood (the
	// diagonal at r·√2 is outside): a direct sanity check that boundary
	// distances are kept, not just brute-force agreement.
	centre := 3*8 + 3
	if got := g.AppendRange(nil, flat.Row(centre), r, centre, nil, s); len(got) != 4 {
		t.Fatalf("lattice centre at rq=r has %d neighbours, want 4", len(got))
	}
}

// TestGridAppendRangeOfPoint: queries around arbitrary points, including
// points outside the bounding box, must match brute force.
func TestGridAppendRangeOfPoint(t *testing.T) {
	flat := randomFlat(t, 300, 3, object.Euclidean{}, 7)
	g, err := Build(flat, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScratch(3)
	queries := [][]float64{
		{0.5, 0.5, 0.5},
		{-0.3, 0.5, 0.2},  // below the box
		{1.4, 1.4, 1.4},   // above the box
		{0.5, -2.0, 0.5},  // far outside
		{0.25, 0.25, 0.0}, // on the boundary
	}
	for _, q := range queries {
		for _, rq := range []float64{0.05, 0.1, 0.6} {
			got := g.AppendRange(nil, q, rq, -1, nil, s)
			want := flat.AppendRange(nil, q, rq, -1)
			if !equalNeighbors(got, want) {
				t.Fatalf("q=%v rq=%g: grid %v want %v", q, rq, got, want)
			}
		}
	}
}

// TestJoinMatchesBruteForce: every CSR row must equal the brute-force
// neighbourhood at the join radius, for one and several workers.
func TestJoinMatchesBruteForce(t *testing.T) {
	for _, dim := range []int{1, 2, 4} {
		flat := randomFlat(t, 250, dim, object.Euclidean{}, int64(20+dim))
		const r = 0.15
		g, err := Build(flat, r)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 8} {
			csr, examined, err := Join(g, r, workers)
			if err != nil {
				t.Fatal(err)
			}
			if examined == 0 {
				t.Fatalf("dim=%d workers=%d: join examined nothing", dim, workers)
			}
			for id := 0; id < flat.Len(); id++ {
				if !equalNeighbors(csr.Row(id), brute(flat, id, r)) {
					t.Fatalf("dim=%d workers=%d id=%d: row %v want %v",
						dim, workers, id, csr.Row(id), brute(flat, id, r))
				}
			}
		}
	}
}

// TestJoinRadiusReuse: a grid bucketed for r must serve the join at
// r' < r without re-bucketing (Covers reports it) and produce a CSR
// identical to a from-scratch grid at r'; r' > r must demand
// re-bucketing, after which the CSR again matches.
func TestJoinRadiusReuse(t *testing.T) {
	flat := randomFlat(t, 400, 2, object.Euclidean{}, 33)
	const r = 0.12
	g, err := Build(flat, r)
	if err != nil {
		t.Fatal(err)
	}

	equalCSR := func(a, b *CSR) bool {
		if len(a.Offsets) != len(b.Offsets) || len(a.Nbrs) != len(b.Nbrs) {
			return false
		}
		for i := range a.Offsets {
			if a.Offsets[i] != b.Offsets[i] {
				return false
			}
		}
		return equalNeighbors(a.Nbrs, b.Nbrs)
	}

	// r/2: reuse the existing occupancy.
	if !g.Covers(r / 2) {
		t.Fatal("grid must cover r/2 without re-bucketing")
	}
	reused, _, err := Join(g, r/2, 2)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Build(flat, r/2)
	if err != nil {
		t.Fatal(err)
	}
	fresh, _, err := Join(fine, r/2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !equalCSR(reused, fresh) {
		t.Fatal("reused-grid join at r/2 differs from a from-scratch build")
	}

	// 2r: the fine grid cannot serve it; a re-bucketed one can.
	if g.Covers(2 * r) {
		t.Fatal("grid must not claim to cover 2r")
	}
	if _, _, err := Join(g, 2*r, 1); err == nil {
		t.Fatal("join beyond the cell side must be rejected")
	}
	coarse, err := Build(flat, 2*r)
	if err != nil {
		t.Fatal(err)
	}
	joined, _, err := Join(coarse, 2*r, 2)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < flat.Len(); id++ {
		if !equalNeighbors(joined.Row(id), brute(flat, id, 2*r)) {
			t.Fatalf("id=%d: re-bucketed join row differs from brute force", id)
		}
	}
}

// TestGridRejects: unsupported metrics, invalid radii and empty inputs
// must fail loudly.
func TestGridRejects(t *testing.T) {
	flatHam, err := object.Flatten([]object.Point{{0, 1}, {1, 0}}, object.Hamming{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(flatHam, 1); err == nil {
		t.Fatal("Hamming metric accepted; its distance does not dominate coordinate gaps")
	}
	flat := randomFlat(t, 10, 2, object.Euclidean{}, 1)
	for _, r := range []float64{-1} {
		if _, err := Build(flat, r); err == nil {
			t.Fatalf("radius %g accepted", r)
		}
	}
	if _, err := Build(nil, 0.1); err == nil {
		t.Fatal("nil dataset accepted")
	}
}

// TestGridDuplicatesAndZeroRadius: co-located points share a cell at any
// cell side, so an r = 0 grid still finds exact duplicates.
func TestGridDuplicatesAndZeroRadius(t *testing.T) {
	pts := []object.Point{{0.5, 0.5}, {0.5, 0.5}, {0.9, 0.1}, {0.5, 0.5}}
	flat, err := object.Flatten(pts, object.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(flat, 0)
	if err != nil {
		t.Fatal(err)
	}
	csr, _, err := Join(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []object.Neighbor{{ID: 1, Dist: 0}, {ID: 3, Dist: 0}}
	if !equalNeighbors(csr.Row(0), want) {
		t.Fatalf("duplicate row %v, want %v", csr.Row(0), want)
	}
	if csr.Degree(2) != 0 {
		t.Fatalf("isolated point has degree %d", csr.Degree(2))
	}
}
