package grid

import (
	"fmt"
	"sync"
	"time"

	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/telemetry"
)

// CSR is a compressed-sparse-row adjacency: point id's neighbours are
// Nbrs[Offsets[id]:Offsets[id+1]], sorted by id. One offsets array plus
// one packed neighbour array replaces per-point slices, so walking many
// adjacency lists in sequence stays inside two contiguous allocations
// and the steady-state memory is exactly the edge count.
type CSR struct {
	Offsets []int32
	Nbrs    []object.Neighbor
}

// Row returns the adjacency list of id. The slice aliases the packed
// array and must not be modified.
func (c *CSR) Row(id int) []object.Neighbor {
	return c.Nbrs[c.Offsets[id]:c.Offsets[id+1]]
}

// Degree returns len(Row(id)) without slicing.
func (c *CSR) Degree(id int) int {
	return int(c.Offsets[id+1] - c.Offsets[id])
}

// edge is one undirected hit of the ε-join; it is scattered into the CSR
// in both directions.
type edge struct {
	u, v int32
	d    float64
}

// Covers reports whether the grid's bucketing can serve an ε-join (or a
// single-ring neighbourhood scan) at radius r: the cell side must exceed
// r by the same relative margin Build applies, so boundary rounding
// cannot spread a true pair more than one cell apart.
func (g *Grid) Covers(r float64) bool {
	return r >= 0 && r+r*0x1p-20 <= g.cell
}

// Suits reports whether reusing this grid at radius r beats re-bucketing:
// Covers(r) must hold and the cell side must stay within 2× of r.
// Candidate-pair work in the ±1 ring grows like (cell/r)^d, so a cell
// side far above r degenerates a re-join (or a per-query ring scan)
// toward the all-pairs scan an O(n) re-bucket would avoid; the 2× bound
// keeps the canonical halve-the-radius zoom-in inside the reuse path
// (a freshly bucketed grid has cell ≈ r, so r' = r/2 sits exactly on
// the bound) while capping the overhead at a small constant factor.
func (g *Grid) Suits(r float64) bool {
	return g.Covers(r) && g.cell <= 2*(r+r*0x1p-20)
}

// Join materialises the exact r-coverage graph of the grid's dataset as
// a CSR adjacency using a cell-pair ε-join: every nonempty cell is
// paired with itself and with its forward (higher-index) neighbours in
// the ≤3^d ring, each candidate pair is evaluated once with the compiled
// kernel, and each hit is recorded in both directions. Compared with one
// range query per point this halves distance evaluations and does no
// tree traversal — the build is O(n + candidate pairs).
//
// Cell ranges are sharded over workers (<= 0 selects 1); each worker
// owns the pairs whose lower cell falls in its range and accumulates
// private edge and degree buffers, so the only synchronisation is the
// final merge. The returned examined count charges one access per
// candidate considered per direction (two per pair), mirroring the
// objects-examined measure of the scan engines. Join requires
// Covers(r); callers holding a finer-bucketed grid must re-bucket first.
func Join(g *Grid, r float64, workers int) (*CSR, int64, error) {
	defer telemetry.Since(metJoin, time.Now())
	if !g.Covers(r) {
		return nil, 0, fmt.Errorf("grid: join radius %g exceeds cell side %g; rebucket first", r, g.cell)
	}
	n := g.flat.Len()
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	// Shard cell ranges so each worker owns roughly n/workers points
	// (cells are skewed; points are the work).
	bounds := g.shardCells(workers)
	workers = len(bounds) - 1

	degs := make([][]int32, workers)
	edgeLists := make([][]edge, workers)
	examined := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			degs[w], edgeLists[w], examined[w] = g.joinRange(r, bounds[w], bounds[w+1])
		}(w)
	}
	wg.Wait()

	// Merge: per-point degrees become CSR offsets, each (worker, point)
	// pair gets a reserved sub-range for a lock-free scatter, and every
	// adjacency row is re-sorted by id (hits arrive in cell-pair order).
	csr, err := mergeEdges(n, workers, degs, edgeLists)
	if err != nil {
		return nil, 0, err
	}
	var acc int64
	for _, a := range examined {
		acc += a
	}
	metJoinEdges.Add(uint64(len(csr.Nbrs)))
	return csr, acc, nil
}

// shardCells splits [0, ncells] into ≤ workers contiguous ranges of
// roughly equal point counts, always ending cell-aligned.
func (g *Grid) shardCells(workers int) []int32 {
	n := len(g.ids)
	bounds := make([]int32, 1, workers+1)
	target := (n + workers - 1) / workers
	next := target
	for c := 0; c < g.ncells && len(bounds) < workers; c++ {
		if int(g.start[c+1]) >= next {
			bounds = append(bounds, int32(c+1))
			next = int(g.start[c+1]) + target
		}
	}
	if bounds[len(bounds)-1] != int32(g.ncells) {
		bounds = append(bounds, int32(g.ncells))
	}
	return bounds
}

// joinRange runs the ε-join for the cells in [cLo, cHi), returning the
// worker's degree counts, undirected edge list and examined count. Each
// cell's candidate id list is ranged through the dataset's batched
// gather filter, so the per-candidate work is the fused threshold test
// (with the float32 pre-filter when the dataset carries the mirror)
// rather than a kernel call per pair.
func (g *Grid) joinRange(r float64, cLo, cHi int32) ([]int32, []edge, int64) {
	n, dim := g.flat.Len(), g.flat.Dim()
	deg := make([]int32, n)
	var edges []edge
	var acc int64
	buf := make([]object.Neighbor, 0, 64)

	// Outer odometer: the coordinates of the current cell c.
	cc := make([]int32, dim)
	decompose(cc, cLo, g.stride)
	// Inner odometer state for the forward-neighbour ring.
	lo := make([]int32, dim)
	hi := make([]int32, dim)
	cur := make([]int32, dim)

	for c := cLo; c < cHi; c, _ = c+1, advance(cc, g.nd) {
		aStart, aEnd := g.start[c], g.start[c+1]
		if aStart == aEnd {
			continue
		}
		a := g.ids[aStart:aEnd]
		// Same-cell pairs, each once (i < j; ids ascend within a cell).
		for i := 0; i+1 < len(a); i++ {
			u := a[i]
			cands := a[i+1:]
			acc += int64(2 * len(cands))
			buf = g.flat.AppendRangeIDs(buf[:0], nil, int(u), cands, -1, r)
			for _, nb := range buf {
				edges = append(edges, edge{u, int32(nb.ID), nb.Dist})
				deg[u]++
				deg[nb.ID]++
			}
		}
		// Forward neighbour cells: the ±1 ring around c, keeping only
		// cells with a higher flattened index so every unordered cell
		// pair is joined exactly once (by the worker owning the lower
		// cell).
		var nb int32
		for i := 0; i < dim; i++ {
			l, h := cc[i]-1, cc[i]+1
			if l < 0 {
				l = 0
			}
			if h >= g.nd[i] {
				h = g.nd[i] - 1
			}
			lo[i], hi[i], cur[i] = l, h, l
			nb += l * g.stride[i]
		}
		for ; nb >= 0; nb = ringNext(cur, lo, hi, g.stride, nb) {
			if nb <= c {
				continue
			}
			bStart, bEnd := g.start[nb], g.start[nb+1]
			if bStart == bEnd {
				continue
			}
			b := g.ids[bStart:bEnd]
			for _, u := range a {
				acc += int64(2 * len(b))
				buf = g.flat.AppendRangeIDs(buf[:0], nil, int(u), b, -1, r)
				for _, nb := range buf {
					edges = append(edges, edge{u, int32(nb.ID), nb.Dist})
					deg[u]++
					deg[nb.ID]++
				}
			}
		}
	}
	return deg, edges, acc
}

// decompose writes the cell coordinates of flattened index c into cc.
func decompose(cc []int32, c int32, stride []int32) {
	for i := range cc {
		cc[i] = c / stride[i]
		c -= cc[i] * stride[i]
	}
}

// advance increments cell coordinates cc by one in flattened order.
func advance(cc []int32, nd []int32) bool {
	for i := len(cc) - 1; i >= 0; i-- {
		cc[i]++
		if cc[i] < nd[i] {
			return true
		}
		cc[i] = 0
	}
	return false
}

// ringNext advances the ring odometer and returns the next flattened
// index, or -1 when exhausted.
func ringNext(cur, lo, hi, stride []int32, idx int32) int32 {
	for i := len(cur) - 1; i >= 0; i-- {
		if cur[i] < hi[i] {
			cur[i]++
			return idx + stride[i]
		}
		idx -= (cur[i] - lo[i]) * stride[i]
		cur[i] = lo[i]
	}
	return -1
}
