package grid

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/discdiversity/disc/internal/object"
)

// FlatJoin materialises the exact r-coverage graph with an all-pairs
// batched scan over the flat dataset: row u is ranged against the
// contiguous block [u+1, n) through the dataset's fused batch filters
// (widened multi-accumulator pre-filters with exact re-check, float32
// mirror when the dataset carries one), so every unordered pair is
// evaluated exactly once with no per-pair call overhead. At embedding
// widths the candidate scan is memory-bound, so the batched path tiles
// it: each worker ranges its whole claimed query chunk over one
// cache-sized candidate block before advancing, reusing the block from
// cache instead of re-streaming the dataset per query row.
//
// This is the coverage-graph substrate for workloads the grid cannot
// serve: non-Lp metrics (cosine, dot product) and high dimensionality,
// where bucketing degenerates to a handful of cells and the ±1-ring
// enumeration costs more than the scan it prunes. The returned examined
// count charges one access per candidate per direction (two per pair),
// matching Join.
//
// Workers claim fixed-size row chunks from an atomic cursor — the work
// of row u shrinks with u, so static sharding would skew. The CSR is
// bit-identical for every worker count: edge ownership is determined
// by u alone and each adjacency row is canonically re-sorted by id.
func FlatJoin(f *object.FlatDataset, r float64, workers int) (*CSR, int64, error) {
	return flatJoin(f, r, workers, false)
}

// FlatJoinScalar is FlatJoin with the batch filters replaced by the
// per-pair scalar kernel protocol (one Raw call and threshold test per
// candidate, as the cell joins used before the batch API existed). It
// exists as the measured baseline for the batched path — same sharding,
// same merge, same output — so benchmark deltas isolate the kernel.
func FlatJoinScalar(f *object.FlatDataset, r float64, workers int) (*CSR, int64, error) {
	return flatJoin(f, r, workers, true)
}

// flatChunk is the row-claim granularity: large enough that the atomic
// cursor is cold, small enough that the triangular tail stays balanced.
const flatChunk = 64

// flatTileBytes sizes the candidate block of the batched join's tiling:
// half a typical L2, so the block survives in cache across the
// flatChunk query rows that scan it. Low-dimensional datasets fit the
// budget whole (tile >= n) and degenerate to the untiled scan.
const flatTileBytes = 1 << 18

// flatTileRows returns the per-block candidate row count for f, or n
// when tiling is moot.
func flatTileRows(f *object.FlatDataset, n int) int {
	rowBytes := 8 * f.Dim()
	if f.Precision() == object.Float32 {
		rowBytes = 4 * f.Stride32()
	}
	tile := flatTileBytes / rowBytes
	if tile < flatChunk {
		tile = flatChunk
	}
	if tile > n {
		tile = n
	}
	return tile
}

func flatJoin(f *object.FlatDataset, r float64, workers int, scalar bool) (*CSR, int64, error) {
	if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return nil, 0, fmt.Errorf("grid: flat join: invalid radius %g", r)
	}
	n := f.Len()
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	tile := flatTileRows(f, n)
	degs := make([][]int32, workers)
	edgeLists := make([][]edge, workers)
	examined := make([]int64, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			deg := make([]int32, n)
			var edges []edge
			var acc int64
			buf := make([]object.Neighbor, 0, 128)
			for {
				lo := int(cursor.Add(1)-1) * flatChunk
				if lo >= n-1 {
					break
				}
				hi := lo + flatChunk
				if hi > n {
					hi = n
				}
				if scalar {
					for u := lo; u < hi; u++ {
						acc += int64(2 * (n - u - 1))
						buf = scalarRangeRows(f, buf[:0], u, u+1, n, r)
						for _, nb := range buf {
							edges = append(edges, edge{int32(u), int32(nb.ID), nb.Dist})
							deg[u]++
							deg[nb.ID]++
						}
					}
					continue
				}
				for u := lo; u < hi; u++ {
					acc += int64(2 * (n - u - 1))
				}
				// Tiled scan: every query row of the chunk ranges one
				// candidate block while it is cache-hot. Blocks partition
				// [lo+1, n), so each unordered pair is still evaluated
				// exactly once; mergeEdges re-sorts adjacency rows, so the
				// interleaved emission order is immaterial.
				for b0 := lo + 1; b0 < n; b0 += tile {
					b1 := b0 + tile
					if b1 > n {
						b1 = n
					}
					for u := lo; u < hi; u++ {
						ulo := u + 1
						if ulo < b0 {
							ulo = b0
						}
						if ulo >= b1 {
							continue
						}
						buf = f.AppendRangeRows(buf[:0], u, ulo, b1, -1, r)
						for _, nb := range buf {
							edges = append(edges, edge{int32(u), int32(nb.ID), nb.Dist})
							deg[u]++
							deg[nb.ID]++
						}
					}
				}
			}
			degs[w], edgeLists[w], examined[w] = deg, edges, acc
		}(w)
	}
	wg.Wait()
	csr, err := mergeEdges(n, workers, degs, edgeLists)
	if err != nil {
		return nil, 0, err
	}
	var acc int64
	for _, a := range examined {
		acc += a
	}
	return csr, acc, nil
}

// scalarRangeRows is the pre-batch per-pair protocol: one Raw call and
// one threshold comparison per candidate row of [lo, hi).
func scalarRangeRows(f *object.FlatDataset, dst []object.Neighbor, u, lo, hi int, r float64) []object.Neighbor {
	k := f.Kernel()
	rawR := k.RawThreshold(r)
	q := f.Row(u)
	coords := f.Coords()
	dim := f.Dim()
	for v, off := lo, lo*dim; v < hi; v, off = v+1, off+dim {
		if raw := k.Raw(coords[off:off+dim:off+dim], q); raw <= rawR {
			if d := k.Finish(raw); d <= r {
				dst = append(dst, object.Neighbor{ID: v, Dist: d})
			}
		}
	}
	return dst
}

// mergeEdges turns per-worker degree counts and undirected edge lists
// into the canonical CSR: per-point degrees become offsets, each
// (point, worker) pair gets a reserved sub-range so the scatter needs
// no locks, and every adjacency row is sorted by id.
func mergeEdges(n, workers int, degs [][]int32, edgeLists [][]edge) (*CSR, error) {
	offsets := make([]int32, n+1)
	var total int64
	for p := 0; p < n; p++ {
		for w := 0; w < workers; w++ {
			d := int64(degs[w][p])
			degs[w][p] = int32(total)
			total += d
		}
		if total > math.MaxInt32 {
			return nil, fmt.Errorf("grid: coverage graph exceeds %d adjacency entries", math.MaxInt32)
		}
		offsets[p+1] = int32(total)
	}
	nbrs := make([]object.Neighbor, total)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cur := degs[w]
			for _, e := range edgeLists[w] {
				nbrs[cur[e.u]] = object.Neighbor{ID: int(e.v), Dist: e.d}
				cur[e.u]++
				nbrs[cur[e.v]] = object.Neighbor{ID: int(e.u), Dist: e.d}
				cur[e.v]++
			}
		}(w)
	}
	wg.Wait()
	shard := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*shard, (w+1)*shard
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for p := lo; p < hi; p++ {
				sortByID(nbrs[offsets[p]:offsets[p+1]])
			}
		}(lo, hi)
	}
	wg.Wait()
	return &CSR{Offsets: offsets, Nbrs: nbrs}, nil
}
