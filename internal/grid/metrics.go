package grid

import "github.com/discdiversity/disc/internal/telemetry"

// Stage timers for the index-build half of the pipeline. Handles are
// resolved once at package init; the instrumented functions only touch
// atomics, so build instrumentation adds no allocations and no locks.
var (
	metBuild = telemetry.Default().Histogram("disc_grid_build_seconds",
		"Wall time of grid construction (counting-sort spatial hash) per Build call.")
	metJoin = telemetry.Default().Histogram("disc_grid_join_seconds",
		"Wall time of the cell-pair epsilon-join producing the CSR coverage graph.")
	metJoinEdges = telemetry.Default().Counter("disc_grid_join_edges_total",
		"Directed coverage-graph edges emitted by epsilon-joins since process start.")
	metLabel = telemetry.Default().Histogram("disc_component_label_seconds",
		"Wall time of connected-component labeling over a coverage graph.")
)
