package grid

import (
	"math/rand"
	"testing"

	"github.com/discdiversity/disc/internal/object"
)

func csrEqual(t *testing.T, label string, a, b *CSR) {
	t.Helper()
	if len(a.Offsets) != len(b.Offsets) {
		t.Fatalf("%s: offsets length %d vs %d", label, len(a.Offsets), len(b.Offsets))
	}
	for i := range a.Offsets {
		if a.Offsets[i] != b.Offsets[i] {
			t.Fatalf("%s: offset %d is %d vs %d", label, i, a.Offsets[i], b.Offsets[i])
		}
	}
	if len(a.Nbrs) != len(b.Nbrs) {
		t.Fatalf("%s: %d vs %d adjacency entries", label, len(a.Nbrs), len(b.Nbrs))
	}
	for i := range a.Nbrs {
		if a.Nbrs[i] != b.Nbrs[i] {
			t.Fatalf("%s: entry %d is %+v vs %+v", label, i, a.Nbrs[i], b.Nbrs[i])
		}
	}
}

// TestFlatJoinMatchesGridJoin: on grid-supported metrics the flat
// all-pairs join, its scalar baseline and the cell-pair join must all
// produce the identical CSR (same offsets, ids, bit-identical
// distances), for every worker count.
func TestFlatJoinMatchesGridJoin(t *testing.T) {
	metrics := []object.Metric{object.Euclidean{}, object.Manhattan{}, object.Chebyshev{}}
	for dim := 1; dim <= 4; dim++ {
		m := metrics[dim%len(metrics)]
		flat := randomFlat(t, 150+37*dim, dim, m, int64(900+dim))
		r := 0.15
		g, err := Build(flat, r)
		if err != nil {
			t.Fatal(err)
		}
		ref, refAcc, err := Join(g, r, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 8} {
			got, acc, err := FlatJoin(flat, r, workers)
			if err != nil {
				t.Fatal(err)
			}
			csrEqual(t, "flat", ref, got)
			n := int64(flat.Len())
			if want := n * (n - 1); acc != want {
				t.Fatalf("flat examined %d, want all-pairs %d", acc, want)
			}
			sc, _, err := FlatJoinScalar(flat, r, workers)
			if err != nil {
				t.Fatal(err)
			}
			csrEqual(t, "scalar", ref, sc)
			_ = refAcc
		}
	}
}

// TestFlatJoinCosine: for a non-metric distance the grid cannot serve,
// the flat join must agree with per-row brute force over the same
// dataset, including a zero vector (cosine convention dist = 1).
func TestFlatJoinCosine(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n, dim := 180, 7
	pts := make([]object.Point, n)
	for i := range pts {
		p := make(object.Point, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		pts[i] = p
	}
	pts[n-1] = make(object.Point, dim) // zero vector
	for _, prec := range []object.Precision{object.Float64, object.Float32} {
		var flat *object.FlatDataset
		var err error
		if prec == object.Float32 {
			flat, err = object.Flatten32(pts, object.Cosine{})
		} else {
			flat, err = object.Flatten(pts, object.Cosine{})
		}
		if err != nil {
			t.Fatal(err)
		}
		r := 0.3
		csr, _, err := FlatJoin(flat, r, 4)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < n; id++ {
			want := flat.AppendRange(nil, flat.Row(id), r, id)
			got := csr.Row(id)
			if !equalNeighbors(want, got) {
				t.Fatalf("%v: row %d: got %v want %v", prec, id, got, want)
			}
		}
	}
}

// TestFlatJoinFloat32Euclidean: the float32-mirrored dataset's join must
// be bit-identical to the float64 join over the rounded coordinates.
func TestFlatJoinFloat32Euclidean(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n, dim := 200, 19
	pts := make([]object.Point, n)
	for i := range pts {
		p := make(object.Point, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	f32, err := object.Flatten32(pts, object.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	rounded := make([]object.Point, n)
	for i, p := range pts {
		q := make(object.Point, dim)
		for j, v := range p {
			q[j] = float64(float32(v))
		}
		rounded[i] = q
	}
	f64, err := object.Flatten(rounded, object.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	r := 0.9
	a, _, err := FlatJoin(f32, r, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := FlatJoin(f64, r, 3)
	if err != nil {
		t.Fatal(err)
	}
	csrEqual(t, "f32 vs rounded f64", a, b)
}

// TestFlatJoinTiledMatchesScalar forces the cache-blocked tiling on
// (embedding-width rows make flatTileRows smaller than n) and pins the
// tiled batched join against the per-pair scalar baseline: identical
// CSR, bit-identical distances, every worker count. Covers both the
// widened float64 pre-filters and the block partition of [u+1, n).
func TestFlatJoinTiledMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	n, dim := 200, 512
	pts := make([]object.Point, n)
	for i := range pts {
		p := make(object.Point, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		pts[i] = p
	}
	for _, m := range []object.Metric{object.Euclidean{}, object.Cosine{}} {
		flat, err := object.Flatten(pts, m)
		if err != nil {
			t.Fatal(err)
		}
		if tile := flatTileRows(flat, n); tile >= n {
			t.Fatalf("tile %d does not engage tiling at n=%d", tile, n)
		}
		// Wide enough to accept a meaningful edge set for either metric.
		r := 30.0
		if m.Name() == "cosine" {
			r = 0.9
		}
		ref, _, err := FlatJoinScalar(flat, r, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(ref.Nbrs) == 0 {
			t.Fatalf("%s: degenerate workload, no edges", m.Name())
		}
		for _, workers := range []int{1, 3} {
			got, _, err := FlatJoin(flat, r, workers)
			if err != nil {
				t.Fatal(err)
			}
			csrEqual(t, m.Name()+" tiled", ref, got)
		}
	}
}

// TestFlatJoinInvalidRadius: NaN/negative/Inf radii are rejected.
func TestFlatJoinInvalidRadius(t *testing.T) {
	flat := randomFlat(t, 10, 2, object.Euclidean{}, 7)
	for _, r := range []float64{-1} {
		if _, _, err := FlatJoin(flat, r, 1); err == nil {
			t.Errorf("radius %g accepted", r)
		}
	}
}
