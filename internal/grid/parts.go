package grid

import (
	"fmt"
	"math"

	"github.com/discdiversity/disc/internal/object"
)

// Parts is the serialisable layout of a Grid: the bucketing parameters
// plus the counting-sorted occupancy arrays, exactly the state a
// snapshot must carry to reconstruct the spatial hash without paying the
// O(n) re-bucket. Derived fields (strides, cell count, the per-dimension
// maximum) are recomputed on load rather than stored, so a snapshot can
// never carry an inconsistent copy of them.
//
// The slices returned by Grid.Parts alias the grid's internal storage
// and must not be modified; FromParts likewise retains the slices it is
// given.
type Parts struct {
	// R is the radius the grid was bucketed for; Cell the chosen cell
	// side (R widened by 2⁻²⁰, then doubled to fit the directory cap).
	R, Cell float64
	// Min is the bounding-box lower corner per dimension.
	Min []float64
	// ND is the cell count per dimension.
	ND []int32
	// Start, IDs and CellOf are the counting-sort occupancy: cell c
	// holds IDs[Start[c]:Start[c+1]] in ascending id order, and
	// CellOf[id] is id's flattened cell index.
	Start, IDs, CellOf []int32
}

// Parts exposes the grid's internal layout for snapshotting. The slices
// alias the grid's storage; callers must treat them as read-only.
func (g *Grid) Parts() Parts {
	return Parts{R: g.r, Cell: g.cell, Min: g.min, ND: g.nd, Start: g.start, IDs: g.ids, CellOf: g.cellOf}
}

// FromParts reassembles a Grid over flat from a deserialised layout. It
// revalidates every invariant Build would have established — metric
// support, the Covers widening margin, the shape and partition property
// of the occupancy arrays, ascending ids within each cell, and that the
// stored coordinate→cell mapping reproduces CellOf exactly — so a
// corrupt or mismatched snapshot fails here rather than as a wrong
// query result later. The validation is O(n·dim).
func FromParts(flat *object.FlatDataset, p Parts) (*Grid, error) {
	if flat == nil || flat.Len() == 0 {
		return nil, fmt.Errorf("grid: from parts: empty dataset")
	}
	if !Supports(flat.Metric()) {
		return nil, fmt.Errorf("grid: from parts: metric %q is not grid-servable", flat.Metric().Name())
	}
	n, dim := flat.Len(), flat.Dim()
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("grid: from parts: %d points exceed the int32 id domain", n)
	}
	if p.R < 0 || math.IsNaN(p.R) || math.IsInf(p.R, 0) {
		return nil, fmt.Errorf("grid: from parts: invalid radius %g", p.R)
	}
	if !(p.Cell > 0) || math.IsInf(p.Cell, 0) || p.R+p.R*0x1p-20 > p.Cell {
		return nil, fmt.Errorf("grid: from parts: cell side %g does not cover radius %g", p.Cell, p.R)
	}
	if len(p.Min) != dim || len(p.ND) != dim {
		return nil, fmt.Errorf("grid: from parts: %d-dimensional layout for a %d-dimensional dataset", len(p.ND), dim)
	}
	ncells := 1
	for i, nc := range p.ND {
		if nc < 1 {
			return nil, fmt.Errorf("grid: from parts: dimension %d has %d cells", i, nc)
		}
		if ncells > (math.MaxInt32/4)/int(nc) {
			return nil, fmt.Errorf("grid: from parts: directory exceeds the cell-index domain")
		}
		ncells *= int(nc)
	}
	if len(p.Start) != ncells+1 {
		return nil, fmt.Errorf("grid: from parts: %d cell offsets for %d cells", len(p.Start), ncells)
	}
	if len(p.IDs) != n || len(p.CellOf) != n {
		return nil, fmt.Errorf("grid: from parts: occupancy sized for %d points, dataset has %d", len(p.IDs), n)
	}
	if p.Start[0] != 0 || p.Start[ncells] != int32(n) {
		return nil, fmt.Errorf("grid: from parts: cell offsets do not span the id range")
	}

	g := &Grid{
		flat:   flat,
		r:      p.R,
		cell:   p.Cell,
		min:    p.Min,
		nd:     p.ND,
		stride: make([]int32, dim),
		ncells: ncells,
		start:  p.Start,
		ids:    p.IDs,
		cellOf: p.CellOf,
	}
	g.stride[dim-1] = 1
	for i := dim - 2; i >= 0; i-- {
		g.stride[i] = g.stride[i+1] * g.nd[i+1]
	}
	for _, nc := range g.nd {
		if nc > g.maxND {
			g.maxND = nc
		}
	}

	// The occupancy must partition the id range: offsets nondecreasing,
	// each cell's members ascending, each member's CellOf pointing back
	// at its cell — which together with the length checks makes IDs a
	// permutation of [0, n).
	for c := 0; c < ncells; c++ {
		lo, hi := p.Start[c], p.Start[c+1]
		if lo > hi {
			return nil, fmt.Errorf("grid: from parts: cell %d has negative occupancy", c)
		}
		prev := int32(-1)
		for _, id := range p.IDs[lo:hi] {
			if id <= prev || id >= int32(n) {
				return nil, fmt.Errorf("grid: from parts: cell %d members are not ascending ids in range", c)
			}
			prev = id
			if p.CellOf[id] != int32(c) {
				return nil, fmt.Errorf("grid: from parts: point %d listed in cell %d but mapped to %d", id, c, p.CellOf[id])
			}
		}
	}
	// The stored mapping must agree with the coordinates: re-deriving
	// each point's cell from (Min, Cell, ND) must reproduce CellOf, so
	// an occupancy saved for a different dataset (or tampered
	// parameters) cannot be grafted onto this one.
	for id := 0; id < n; id++ {
		if g.cellIndex(flat.Row(id)) != p.CellOf[id] {
			return nil, fmt.Errorf("grid: from parts: point %d does not map to its recorded cell", id)
		}
	}
	return g, nil
}

// Validate checks the structural invariants of a deserialised CSR
// adjacency for an n-point coverage graph built at radius r: the offsets
// must be a nondecreasing span of the packed array, and every row must
// hold strictly ascending neighbour ids in [0, n) excluding the row's
// own id, with distances in [0, r]. The NaN case is rejected by the
// range comparison. O(edges).
func (c *CSR) Validate(n int, r float64) error {
	if len(c.Offsets) != n+1 {
		return fmt.Errorf("grid: csr: %d offsets for %d points", len(c.Offsets), n)
	}
	if c.Offsets[0] != 0 || int(c.Offsets[n]) != len(c.Nbrs) {
		return fmt.Errorf("grid: csr: offsets do not span the %d packed neighbours", len(c.Nbrs))
	}
	for id := 0; id < n; id++ {
		lo, hi := c.Offsets[id], c.Offsets[id+1]
		if lo > hi {
			return fmt.Errorf("grid: csr: point %d has negative degree", id)
		}
		prev := -1
		for _, nb := range c.Nbrs[lo:hi] {
			if nb.ID <= prev || nb.ID >= n || nb.ID == id {
				return fmt.Errorf("grid: csr: point %d has an invalid neighbour list", id)
			}
			prev = nb.ID
			if !(nb.Dist >= 0 && nb.Dist <= r) {
				return fmt.Errorf("grid: csr: point %d records neighbour %d at distance %g outside [0, %g]", id, nb.ID, nb.Dist, r)
			}
		}
	}
	return nil
}
