package grid

import (
	"fmt"
	"time"

	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/telemetry"
)

// Components is the connected-component decomposition of an r-coverage
// graph: Label[id] names the component of every point, and the component
// index (Offsets + Members, CSR-shaped) lists each component's members
// in ascending id order. Components are numbered canonically by
// ascending minimum member id — component 0 always contains point 0 —
// so the decomposition is a pure function of the graph, independent of
// traversal order, worker count or whether it was recomputed or loaded
// from a snapshot.
//
// The decomposition is what makes selection parallel: a dominating set
// of a disconnected graph is exactly the union of dominating sets of
// its components, so per-component runs never interact and can execute
// on independent workers.
type Components struct {
	// Count is the number of components.
	Count int
	// Label[id] is the component of point id, in [0, Count).
	Label []int32
	// Members of component c are Members[Offsets[c]:Offsets[c+1]], in
	// ascending id order.
	Offsets []int32
	Members []int32
}

// MemberIDs returns the members of component c, ascending. The slice
// aliases the packed index and must not be modified.
func (cp *Components) MemberIDs(c int) []int32 {
	return cp.Members[cp.Offsets[c]:cp.Offsets[c+1]]
}

// Size returns the number of members of component c.
func (cp *Components) Size(c int) int {
	return int(cp.Offsets[c+1] - cp.Offsets[c])
}

// Largest returns the size of the largest component (0 for an empty
// decomposition).
func (cp *Components) Largest() int {
	max := 0
	for c := 0; c < cp.Count; c++ {
		if s := cp.Size(c); s > max {
			max = s
		}
	}
	return max
}

// ComponentsOf labels the connected components of the r-coverage graph
// whose adjacency is served by row — any function returning the
// neighbour list of an id (entries beyond distance r are filtered here,
// so rows from a graph joined at a larger radius, or unfiltered range
// queries, are both fine; the returned slice may be reused between
// calls). This is the single definition of the canonical numbering
// every consumer — engines, snapshots, the conformance suite — relies
// on: one depth-first traversal visiting roots in ascending id order,
// so component numbers ascend with their minimum member ids, followed
// by the O(n) counting-sort member index. O(n + edges) plus the cost of
// the row calls.
func ComponentsOf(n int, r float64, row func(id int) []object.Neighbor) *Components {
	defer telemetry.Since(metLabel, time.Now())
	label := make([]int32, n)
	for i := range label {
		label[i] = -1
	}
	stack := make([]int32, 0, 256)
	count := int32(0)
	for root := 0; root < n; root++ {
		if label[root] >= 0 {
			continue
		}
		label[root] = count
		stack = append(stack[:0], int32(root))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nb := range row(int(u)) {
				if nb.Dist <= r && label[nb.ID] < 0 {
					label[nb.ID] = count
					stack = append(stack, int32(nb.ID))
				}
			}
		}
		count++
	}
	cp := &Components{Count: int(count), Label: label}
	cp.BuildIndex()
	return cp
}

// ComponentsOfCSR is ComponentsOf over a materialised CSR adjacency.
func ComponentsOfCSR(c *CSR, n int, r float64) *Components {
	return ComponentsOf(n, r, c.Row)
}

// BuildIndex derives Offsets and Members from Label by counting sort;
// scattering ids in ascending order leaves every component's member
// list ascending. It is exported for constructors that already hold a
// trusted, canonically numbered label array (an engine's own traversal);
// deserialised labels go through ComponentsFromLabels instead.
func (cp *Components) BuildIndex() {
	offsets := make([]int32, cp.Count+1)
	for _, l := range cp.Label {
		offsets[l+1]++
	}
	for c := 1; c <= cp.Count; c++ {
		offsets[c] += offsets[c-1]
	}
	members := make([]int32, len(cp.Label))
	for id, l := range cp.Label {
		members[offsets[l]] = int32(id)
		offsets[l]++
	}
	// The scatter shifted offsets one slot left; restore in place.
	copy(offsets[1:], offsets[:cp.Count])
	offsets[0] = 0
	cp.Offsets, cp.Members = offsets, members
}

// ComponentsFromLabels reassembles a decomposition from a deserialised
// label array, revalidating what ComponentsOfCSR would have established
// structurally: every label in [0, count), and the canonical numbering
// (walking ids ascending, the first occurrence of each label value must
// introduce the next unused number — exactly the ascending-min-member
// order). Consistency with an actual graph is a separate, O(edges)
// concern: see Validate.
func ComponentsFromLabels(labels []int32, count int) (*Components, error) {
	n := len(labels)
	if n == 0 {
		return nil, fmt.Errorf("grid: components: empty label array")
	}
	if count < 1 || count > n {
		return nil, fmt.Errorf("grid: components: implausible component count %d for %d points", count, n)
	}
	next := int32(0)
	for id, l := range labels {
		if l < 0 || int(l) >= count {
			return nil, fmt.Errorf("grid: components: point %d labeled %d, outside [0, %d)", id, l, count)
		}
		if l == next {
			next++
		} else if l > next {
			return nil, fmt.Errorf("grid: components: label %d of point %d breaks the ascending-min-member numbering", l, id)
		}
	}
	if int(next) != count {
		return nil, fmt.Errorf("grid: components: only %d of %d declared components are populated", next, count)
	}
	cp := &Components{Count: count, Label: append([]int32(nil), labels...)}
	cp.BuildIndex()
	return cp, nil
}

// Validate checks the decomposition against the adjacency it claims to
// decompose, in one O(edges) pass: every edge within distance r must
// connect same-labeled points, and every member of a multi-member class
// must carry at least one within-r edge. Together with the structural
// checks of ComponentsFromLabels this guarantees soundness — no
// cross-label edge means every label class is a union of true connected
// components, so class-local greedy runs select exactly what a global
// run would — and it guarantees the invariants the selection fast paths
// rely on: a two-member class is a genuine connected pair, and no
// isolated point hides inside a larger class. What remains undetectable
// is a label array merging two components that each have edges; that
// would require a full re-traversal (exactly the recomputation the
// persisted labels exist to skip) and is harmless — the per-class
// greedy handles a disconnected multi-edge class exactly like the
// global run does. Requires the member index (Offsets) to be built.
func (cp *Components) Validate(c *CSR, r float64) error {
	n := len(c.Offsets) - 1
	if len(cp.Label) != n {
		return fmt.Errorf("grid: components: %d labels for a %d-point graph", len(cp.Label), n)
	}
	for id := 0; id < n; id++ {
		l := cp.Label[id]
		linked := false
		for _, nb := range c.Row(id) {
			if nb.Dist > r {
				continue
			}
			if cp.Label[nb.ID] != l {
				return fmt.Errorf("grid: components: edge %d–%d crosses components %d and %d", id, nb.ID, l, cp.Label[nb.ID])
			}
			linked = true
		}
		if !linked && cp.Size(int(l)) > 1 {
			return fmt.Errorf("grid: components: point %d has no edge but shares component %d with %d other points", id, l, cp.Size(int(l))-1)
		}
	}
	return nil
}
