// Package grid implements a uniform-grid spatial hash over an
// object.FlatDataset, the substrate of the cell-pair ε-join that builds
// the r-coverage graph in O(n + |edges|) and of the grid index engine in
// internal/core.
//
// Points are bucketed by counting sort into a flat, contiguous
// cell→points layout: one pass counts occupancy per cell, a prefix sum
// turns the counts into offsets, and a second pass scatters the ids, so
// every cell's members sit consecutively (and in ascending id order) in
// one shared array. The cell side is the build radius r, widened by a
// relative 2⁻²⁰ so that floating-point rounding in the coordinate→cell
// mapping can never place two points within r of each other more than
// one cell apart, and coarsened (doubled) until the total cell count
// stays within a small multiple of n — which also bounds per-dimension
// cell indexes far below the magnitude where that rounding analysis
// would stop holding.
//
// The grid prunes on per-coordinate differences: a point within metric
// distance r of a query must have every coordinate within r of the
// query's, which holds exactly for the metrics whose distance dominates
// each coordinate gap (the Lp family: Euclidean, Manhattan, Chebyshev —
// not Hamming, where a differing coordinate contributes 1 regardless of
// gap). Supports reports the property; Build enforces it. Candidate
// cells are always re-checked with the dataset's compiled kernel, so
// results are bit-identical to a brute-force scan.
package grid

import (
	"fmt"
	"math"
	"time"

	"github.com/discdiversity/disc/internal/bitset"
	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/telemetry"
)

// maxCellsPerPoint bounds the total cell count at maxCellsPerPoint·n (+ a
// small constant for tiny inputs): below it the flat cell arrays stay a
// small multiple of the point storage, above it the cell side doubles
// until the grid fits. 8 cells per point keeps sub-r cells available for
// sparse data without letting fine radii explode the directory.
const maxCellsPerPoint = 8

// maxCellsFloor is the minimum value of the total-cell cap, so tiny
// inputs still get a useful directory.
const maxCellsFloor = 1024

// Supports reports whether the grid can answer exact range queries under
// m: the metric's distance must dominate every per-coordinate difference
// (|aᵢ-bᵢ| ≤ Dist(a,b)), which is what restricting a query to the ±1
// cell neighbourhood relies on.
func Supports(m object.Metric) bool {
	switch m.(type) {
	case object.Euclidean, object.Manhattan, object.Chebyshev:
		return true
	default:
		return false
	}
}

// Grid is a uniform spatial hash over a FlatDataset, bucketed for a
// build radius r with cell side ≥ r. It is immutable after Build and
// safe for concurrent reads (the ε-join workers rely on this).
type Grid struct {
	flat *object.FlatDataset
	r    float64 // the radius the grid was bucketed for
	cell float64 // cell side: r widened by 2⁻²⁰, then doubled to fit the cap

	min    []float64 // bounding-box lower corner per dimension
	nd     []int32   // cells per dimension
	stride []int32   // flattened-index stride per dimension (stride[dim-1] = 1)
	maxND  int32     // max(nd): the useful reach ceiling for huge radii
	ncells int

	start  []int32 // len ncells+1; cell c holds ids[start[c]:start[c+1]]
	ids    []int32 // point ids grouped by cell, ascending id within a cell
	cellOf []int32 // id -> flattened cell index
}

// Build buckets flat's points for radius r. The dataset is retained (not
// copied); it must not change afterwards.
func Build(flat *object.FlatDataset, r float64) (*Grid, error) {
	defer telemetry.Since(metBuild, time.Now())
	if flat == nil || flat.Len() == 0 {
		return nil, fmt.Errorf("grid: empty dataset")
	}
	if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return nil, fmt.Errorf("grid: invalid radius %g", r)
	}
	if !Supports(flat.Metric()) {
		return nil, fmt.Errorf("grid: metric %q does not dominate per-coordinate differences; the cell neighbourhood scan would miss true neighbours", flat.Metric().Name())
	}
	if flat.Len() > math.MaxInt32 {
		return nil, fmt.Errorf("grid: %d points exceed the int32 id domain", flat.Len())
	}
	n, dim := flat.Len(), flat.Dim()
	coords := flat.Coords()

	g := &Grid{
		flat:   flat,
		r:      r,
		min:    make([]float64, dim),
		nd:     make([]int32, dim),
		stride: make([]int32, dim),
		cellOf: make([]int32, n),
	}

	// Bounding box.
	max := make([]float64, dim)
	copy(g.min, coords[:dim])
	copy(max, coords[:dim])
	for off := dim; off < len(coords); off += dim {
		for i := 0; i < dim; i++ {
			v := coords[off+i]
			if v < g.min[i] {
				g.min[i] = v
			}
			if v > max[i] {
				max[i] = v
			}
		}
	}

	g.cell, g.maxND, g.ncells = computeGeometry(g.min, max, n, r, g.nd, g.stride)

	// Counting sort: occupancy, prefix sum, scatter. Scanning ids in
	// ascending order keeps each cell's members id-sorted.
	g.start = make([]int32, g.ncells+1)
	for id, off := 0, 0; id < n; id, off = id+1, off+dim {
		c := g.cellIndex(coords[off : off+dim : off+dim])
		g.cellOf[id] = c
		g.start[c+1]++
	}
	for c := 0; c < g.ncells; c++ {
		g.start[c+1] += g.start[c]
	}
	g.ids = make([]int32, n)
	cursor := make([]int32, g.ncells)
	copy(cursor, g.start[:g.ncells])
	for id := 0; id < n; id++ {
		c := g.cellOf[id]
		g.ids[cursor[c]] = int32(id)
		cursor[c]++
	}
	return g, nil
}

// computeGeometry derives the directory geometry for a bounding box and
// radius, writing the per-dimension cell counts and strides into the
// caller's nd and stride slices (len dim each) and returning the cell
// side, the maximum per-dimension cell count and the total cell count.
// It is the single definition of the bucketing geometry, shared by the
// immutable Build and the mutable grid's re-bucketing so both produce
// bit-identical directories for the same point set.
//
// The cell side is r widened so boundary rounding never pushes a true
// neighbour outside the ±1 cell ring, with a fallback for r = 0 (only
// exact duplicates match then, and duplicates share a cell at any side
// length), then doubled until the total cell count fits the
// maxCellsPerPoint·n cap.
func computeGeometry(min, max []float64, n int, r float64, nd, stride []int32) (cell float64, maxND int32, ncells int) {
	dim := len(nd)
	side := r + r*0x1p-20
	if side <= 0 {
		side = 1
	}
	capCells := maxCellsPerPoint * n
	if capCells < maxCellsFloor {
		capCells = maxCellsFloor
	}
	// Keep the directory inside the int32 index domain (with headroom
	// for the stride products) no matter how large n grows.
	if capCells > math.MaxInt32/4 {
		capCells = math.MaxInt32 / 4
	}
	for {
		total := 1
		ok := true
		for i := 0; i < dim; i++ {
			nc := int((max[i]-min[i])/side) + 1
			if nc < 1 {
				nc = 1
			}
			nd[i] = int32(nc)
			if total > capCells/nc { // overflow-safe total*nc > capCells
				ok = false
				break
			}
			total *= nc
		}
		if ok {
			ncells = total
			break
		}
		side *= 2
	}
	cell = side
	stride[dim-1] = 1
	for i := dim - 2; i >= 0; i-- {
		stride[i] = stride[i+1] * nd[i+1]
	}
	for _, nc := range nd {
		if nc > maxND {
			maxND = nc
		}
	}
	return cell, maxND, ncells
}

// cellIndex maps a coordinate row to its flattened cell index.
func (g *Grid) cellIndex(row []float64) int32 {
	var idx int32
	for i, v := range row {
		c := int32((v - g.min[i]) / g.cell)
		if c < 0 {
			c = 0
		} else if c >= g.nd[i] {
			c = g.nd[i] - 1
		}
		idx += c * g.stride[i]
	}
	return idx
}

// coordCell maps one coordinate to its (clamped) cell index along dim i.
func (g *Grid) coordCell(i int, v float64) int32 {
	c := int32((v - g.min[i]) / g.cell)
	if c < 0 {
		c = 0
	} else if c >= g.nd[i] {
		c = g.nd[i] - 1
	}
	return c
}

// Flat returns the dataset the grid was built over.
func (g *Grid) Flat() *object.FlatDataset { return g.flat }

// Radius returns the radius the grid was bucketed for.
func (g *Grid) Radius() float64 { return g.r }

// Cell returns the cell side length (≥ Radius, see Build).
func (g *Grid) Cell() float64 { return g.cell }

// Cells returns the total number of directory cells.
func (g *Grid) Cells() int { return g.ncells }

// CellOf returns the flattened cell index of point id.
func (g *Grid) CellOf(id int) int { return int(g.cellOf[id]) }

// ScanOrder appends the ids in cell order — a locality-preserving scan
// order (points in the same or adjacent cells are close in the order).
func (g *Grid) ScanOrder() []int {
	order := make([]int, len(g.ids))
	for i, id := range g.ids {
		order[i] = int(id)
	}
	return order
}

// Scratch holds the per-query odometer state of a cell-range scan. One
// Scratch serves any number of sequential queries on the same grid
// dimensionality without allocating; concurrent queries need one each.
type Scratch struct {
	lo, hi, cur []int32
}

// NewScratch returns scan scratch for a grid of the given dimensionality.
func NewScratch(dim int) *Scratch {
	return &Scratch{lo: make([]int32, dim), hi: make([]int32, dim), cur: make([]int32, dim)}
}

// setup positions the scratch on the cell range covering radius rq
// around q and returns the flattened index of the first cell. The range
// is the centre cell ± reach per dimension, clamped to the directory;
// reach = ⌊rq/cell⌋+1 is conservative (it absorbs both the exact
// quotient landing on an integer and coordinate→cell rounding), and also
// covers queries outside the bounding box, whose true neighbours can
// only lie within reach cells of the clamped centre.
func (g *Grid) setup(s *Scratch, q []float64, rq float64) int32 {
	reach := g.maxND // covers the whole directory in every dimension
	if f := rq / g.cell; f < float64(g.maxND-1) {
		reach = int32(f) + 1
	}
	var first int32
	for i := range q {
		c := g.coordCell(i, q[i])
		lo, hi := c-reach, c+reach
		if lo < 0 {
			lo = 0
		}
		if hi >= g.nd[i] {
			hi = g.nd[i] - 1
		}
		s.lo[i], s.hi[i], s.cur[i] = lo, hi, lo
		first += lo * g.stride[i]
	}
	return first
}

// next advances the odometer and returns the next flattened cell index,
// or -1 when the range is exhausted.
func (g *Grid) next(s *Scratch, idx int32) int32 {
	return ringNext(s.cur, s.lo, s.hi, g.stride, idx)
}

// sortByID orders a neighbour list by id in place without allocating,
// the canonical order every engine reports. Sorting adjacency rows is
// the hottest post-join phase, so this is a hand-rolled median-of-three
// quicksort with direct field comparisons (no comparator indirection)
// and insertion sort for short ranges — several times faster than the
// generic comparison sort on the short, nearly-run-sorted lists the
// cell scans produce. IDs are unique per list, so pathological
// equal-key partitions cannot arise.
func sortByID(ns []object.Neighbor) {
	for len(ns) > 16 {
		// Median of three to the pivot position 0.
		m, last := len(ns)/2, len(ns)-1
		if ns[m].ID < ns[0].ID {
			ns[m], ns[0] = ns[0], ns[m]
		}
		if ns[last].ID < ns[0].ID {
			ns[last], ns[0] = ns[0], ns[last]
		}
		if ns[last].ID < ns[m].ID {
			ns[last], ns[m] = ns[m], ns[last]
		}
		ns[0], ns[m] = ns[m], ns[0]
		pivot := ns[0].ID
		store := 0
		for k := 1; k < len(ns); k++ {
			if ns[k].ID < pivot {
				store++
				ns[store], ns[k] = ns[k], ns[store]
			}
		}
		ns[0], ns[store] = ns[store], ns[0]
		// Recurse on the smaller half, iterate on the larger.
		if store < len(ns)-store-1 {
			sortByID(ns[:store])
			ns = ns[store+1:]
		} else {
			sortByID(ns[store+1:])
			ns = ns[:store]
		}
	}
	for i := 1; i < len(ns); i++ {
		v := ns[i]
		j := i - 1
		for j >= 0 && ns[j].ID > v.ID {
			ns[j+1] = ns[j]
			j--
		}
		ns[j+1] = v
	}
}

// AppendRange appends every point within rq of q (excluding id exclude;
// -1 for none) to dst in ascending id order and returns the extended
// slice, allocating only when dst must grow. Each cell's candidate ids
// are ranged through the dataset's batched gather filter (fused
// threshold test, float32 pre-filter when the mirror exists), so
// distances stay bit-identical to a brute-force scan. Each candidate
// examined adds one to *examined when it is non-nil.
func (g *Grid) AppendRange(dst []object.Neighbor, q []float64, rq float64, exclude int, examined *int64, s *Scratch) []object.Neighbor {
	base := len(dst)
	var acc int64
	qid := -1
	if exclude >= 0 && g.flat.IsRow(q, exclude) {
		qid = exclude
	}
	if exclude < 0 || qid >= 0 {
		for c := g.setup(s, q, rq); c >= 0; c = g.next(s, c) {
			ids := g.ids[g.start[c]:g.start[c+1]]
			acc += int64(len(ids))
			dst = g.flat.AppendRangeIDs(dst, q, qid, ids, exclude, rq)
		}
		if qid >= 0 {
			// Row qid sits in a visited cell (its cell contains q) and
			// was skipped, not examined; the per-cell charge counted it.
			acc--
		}
	} else {
		// Excluding an id that is not the query row: no batch entry
		// models this accounting, so keep the per-candidate scan.
		k := g.flat.Kernel()
		rawR := k.RawThreshold(rq)
		for c := g.setup(s, q, rq); c >= 0; c = g.next(s, c) {
			for _, id := range g.ids[g.start[c]:g.start[c+1]] {
				if int(id) == exclude {
					continue
				}
				acc++
				row := g.flat.Row(int(id))
				if k.Within(q, row, rawR) {
					if d := k.Finish(k.Raw(row, q)); d <= rq {
						dst = append(dst, object.Neighbor{ID: int(id), Dist: d})
					}
				}
			}
		}
	}
	if examined != nil {
		*examined += acc
	}
	sortByID(dst[base:])
	return dst
}

// AppendRangeWhite is AppendRange restricted to the ids whose bit is
// set in white — the coverage engines' pruned query. Cleared ids are
// neither examined nor charged, mirroring how the scan engines account
// skipped covered objects; when cellWhite is non-nil it must hold the
// per-cell count of set bits, and cells at zero are skipped without
// visiting their points (the grid's version of the paper's grey-subtree
// pruning).
func (g *Grid) AppendRangeWhite(dst []object.Neighbor, q []float64, rq float64, exclude int, white *bitset.Set, cellWhite []int32, examined *int64, s *Scratch) []object.Neighbor {
	k := g.flat.Kernel()
	rawR := k.RawThreshold(rq)
	coords := g.flat.Coords()
	dim := g.flat.Dim()
	base := len(dst)
	var acc int64
	for c := g.setup(s, q, rq); c >= 0; c = g.next(s, c) {
		if cellWhite != nil && cellWhite[c] == 0 {
			continue
		}
		for _, id := range g.ids[g.start[c]:g.start[c+1]] {
			if int(id) == exclude || !white.Test(int(id)) {
				continue
			}
			acc++
			off := int(id) * dim
			row := coords[off : off+dim : off+dim]
			// Fused threshold test first (early exit at high dim); the
			// raw recomputation on the rare survivors is bit-identical.
			if k.Within(q, row, rawR) {
				if d := k.Finish(k.Raw(row, q)); d <= rq {
					dst = append(dst, object.Neighbor{ID: int(id), Dist: d})
				}
			}
		}
	}
	if examined != nil {
		*examined += acc
	}
	sortByID(dst[base:])
	return dst
}
