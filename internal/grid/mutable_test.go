package grid

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"github.com/discdiversity/disc/internal/object"
)

// applyInsert mirrors the incremental engine's insert protocol: append,
// query the neighbourhood at r, splice the vertex, bucket the row.
func applyInsert(t *testing.T, dyn *object.DynDataset, mg *MutGrid, adj *DynAdj, p object.Point, r float64, s *Scratch) int {
	t.Helper()
	id, err := dyn.Append(p)
	if err != nil {
		t.Fatal(err)
	}
	nbrs := mg.AppendRange(nil, p, r, id, nil, s)
	adj.AddVertex(id, nbrs)
	mg.Insert(id)
	return id
}

// applyDelete deliberately unbuckets before tombstoning — the order a
// shrink-triggered Rebucket inside Remove must survive (the dying id is
// still alive during the O(n) re-bucket pass and must not stay
// bucketed). LiveDisC uses the opposite, tombstone-first order; between
// the two callers both branches of Remove are exercised.
func applyDelete(t *testing.T, dyn *object.DynDataset, mg *MutGrid, adj *DynAdj, id int) {
	t.Helper()
	adj.RemoveVertex(id)
	mg.Remove(id)
	if err := dyn.Delete(id); err != nil {
		t.Fatal(err)
	}
}

func TestMutGridMatchesBuildAfterCompaction(t *testing.T) {
	for _, dim := range []int{1, 2, 3} {
		r := 0.12
		rng := rand.New(rand.NewPCG(7, uint64(dim)))
		dyn, err := object.NewDynDataset(object.Euclidean{})
		if err != nil {
			t.Fatal(err)
		}
		mg, err := NewMutGrid(dyn, r)
		if err != nil {
			t.Fatal(err)
		}
		adj := NewDynAdj(nil)
		s := NewScratch(dim)
		var live []int
		for step := 0; step < 500; step++ {
			if len(live) == 0 || rng.Float64() < 0.7 {
				p := make(object.Point, dim)
				for i := range p {
					p[i] = rng.Float64()
				}
				live = append(live, applyInsert(t, dyn, mg, adj, p, r, s))
			} else {
				k := rng.IntN(len(live))
				applyDelete(t, dyn, mg, adj, live[k])
				live = append(live[:k], live[k+1:]...)
			}
			if step%97 == 0 {
				if err := mg.CheckOccupancy(); err != nil {
					t.Fatalf("dim %d step %d: %v", dim, step, err)
				}
			}
		}
		if err := mg.CheckOccupancy(); err != nil {
			t.Fatal(err)
		}

		// Delete-heavy drain: the insert-biased churn above only ever
		// grows occupancy, so the 4x shrink re-bucket trigger fires here
		// — repeatedly, as the live count quarters — with the dying id
		// still alive during each re-bucket (see applyDelete).
		for len(live) > 5 {
			k := rng.IntN(len(live))
			applyDelete(t, dyn, mg, adj, live[k])
			live = append(live[:k], live[k+1:]...)
			if len(live)%13 == 0 {
				if err := mg.CheckOccupancy(); err != nil {
					t.Fatalf("dim %d drain at %d live: %v", dim, len(live), err)
				}
			}
		}
		if err := mg.CheckOccupancy(); err != nil {
			t.Fatal(err)
		}

		flat, remap, err := dyn.CompactFlat()
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Build(flat, r)
		if err != nil {
			t.Fatal(err)
		}
		refCSR, _, err := Join(ref, r, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := adj.Compact(remap, flat.Len())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, refCSR) {
			t.Fatalf("dim %d: incrementally spliced CSR differs from batch join", dim)
		}

		// A re-bucketed mutable grid must carry the exact directory of a
		// from-scratch Build over the same live points: same geometry,
		// same per-cell membership (modulo the monotone id remap).
		mg.Rebucket()
		if mg.cell != ref.cell || mg.ncells != ref.ncells ||
			!reflect.DeepEqual(mg.nd, ref.nd) || !reflect.DeepEqual(mg.stride, ref.stride) ||
			!reflect.DeepEqual(mg.min, ref.min) {
			t.Fatalf("dim %d: re-bucketed geometry differs from Build", dim)
		}
		for c := 0; c < ref.ncells; c++ {
			want := ref.ids[ref.start[c]:ref.start[c+1]]
			bucket := mg.buckets[c]
			if len(bucket) != len(want) {
				t.Fatalf("dim %d cell %d: %d bucketed, Build has %d", dim, c, len(bucket), len(want))
			}
			for i, id := range bucket {
				if remap[id] != want[i] {
					t.Fatalf("dim %d cell %d: member %d remaps to %d, Build has %d", dim, c, id, remap[id], want[i])
				}
			}
		}
	}
}

func TestMutGridEmptyAndQuery(t *testing.T) {
	dyn, _ := object.NewDynDataset(object.Chebyshev{})
	mg, err := NewMutGrid(dyn, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScratch(2)
	if got := mg.AppendRange(nil, []float64{0, 0}, 0.5, -1, nil, s); len(got) != 0 {
		t.Fatalf("query on empty grid returned %d neighbours", len(got))
	}
	id0, _ := dyn.Append(object.Point{0, 0})
	mg.Insert(id0) // triggers the first bucket build
	id1, _ := dyn.Append(object.Point{0.3, 0.3})
	mg.Insert(id1)
	// A point far outside the bounding box clamps but stays queryable.
	id2, _ := dyn.Append(object.Point{40, 40})
	mg.Insert(id2)
	got := mg.AppendRange(nil, []float64{0.1, 0.1}, 0.5, -1, nil, NewScratch(2))
	if len(got) != 2 || got[0].ID != id0 || got[1].ID != id1 {
		t.Fatalf("neighbours %v", got)
	}
	got = mg.AppendRange(nil, []float64{39.8, 40}, 0.5, -1, nil, NewScratch(2))
	if len(got) != 1 || got[0].ID != id2 {
		t.Fatalf("out-of-bbox neighbour missed: %v", got)
	}
	if err := mg.CheckOccupancy(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMutGrid(dyn, -1); err == nil {
		t.Error("negative radius accepted")
	}
	hd, _ := object.NewDynDataset(object.Hamming{})
	if _, err := NewMutGrid(hd, 1); err == nil {
		t.Error("hamming metric accepted")
	}
}

func TestDynAdjOverBase(t *testing.T) {
	// Seed a base CSR from a small batch join, then mutate on top.
	pts := []object.Point{{0}, {0.05}, {0.5}, {0.55}, {2}}
	flat, err := object.Flatten(pts, object.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(flat, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := Join(g, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	adj := NewDynAdj(base)
	for id := 0; id < 5; id++ {
		if !reflect.DeepEqual(adj.Row(id), base.Row(id)) {
			t.Fatalf("row %d differs from base before any mutation", id)
		}
	}
	// New vertex 5 near points 2 and 3.
	adj.AddVertex(5, []object.Neighbor{{ID: 2, Dist: 0.02}, {ID: 3, Dist: 0.03}})
	if adj.Degree(5) != 2 || adj.Degree(2) != 2 || adj.Degree(3) != 2 {
		t.Fatalf("degrees after add: %d %d %d", adj.Degree(5), adj.Degree(2), adj.Degree(3))
	}
	row2 := adj.Row(2)
	if row2[0].ID != 3 || row2[1].ID != 5 {
		t.Fatalf("row 2 after splice: %v", row2)
	}
	// Base must be untouched.
	if base.Degree(2) != 1 {
		t.Fatal("mutation leaked into the base CSR")
	}
	adj.RemoveVertex(1)
	if adj.Degree(1) != 0 || adj.Degree(0) != 0 {
		t.Fatalf("degrees after remove: %d %d", adj.Degree(1), adj.Degree(0))
	}
	if base.Degree(0) != 1 {
		t.Fatal("remove leaked into the base CSR")
	}
	// Compact: live = {0,2,3,4,5} → dense 0..4.
	remap := []int32{0, -1, 1, 2, 3, 4}
	csr, err := adj.Compact(remap, 5)
	if err != nil {
		t.Fatal(err)
	}
	if csr.Degree(0) != 0 || csr.Degree(1) != 2 || csr.Degree(4) != 2 {
		t.Fatalf("compacted degrees: %d %d %d", csr.Degree(0), csr.Degree(1), csr.Degree(4))
	}
	if r1 := csr.Row(1); r1[0].ID != 2 || r1[1].ID != 4 {
		t.Fatalf("compacted row 1: %v", r1)
	}
}
