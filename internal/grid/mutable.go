package grid

import (
	"fmt"
	"math"

	"github.com/discdiversity/disc/internal/object"
)

// MutGrid is the mutable counterpart of Grid: the same uniform directory
// geometry (computeGeometry is shared, so a re-bucketed MutGrid and a
// Build over the same live points have bit-identical directories), but
// occupancy is kept in per-cell buckets that support O(bucket) insert
// and remove instead of the immutable counting-sort layout. Points live
// in an object.DynDataset; deleted ids are removed from their bucket
// eagerly, so scans never see tombstones.
//
// Inserts outside the bounding box the geometry was derived from are
// clamped to the boundary cells. That is exact, not approximate:
// clamping every coordinate is a monotone contraction (|clamp(a) −
// clamp(b)| ≤ |a − b|), so two points within r stay within r after
// clamping and therefore still land within one cell of each other —
// the property the ±1 ring scan needs. What suffers is only pruning
// (boundary cells grow crowded), which the occupancy-triggered
// re-bucketing below repairs.
//
// Re-bucketing is automatic: when the live count doubles or quarters
// relative to the last re-bucket, the geometry is recomputed over the
// current live bounding box and every live id re-bucketed in one O(n)
// pass. Ids are never changed by a re-bucket.
type MutGrid struct {
	dyn *object.DynDataset
	r   float64

	cell   float64
	min    []float64
	nd     []int32
	stride []int32
	maxND  int32
	ncells int

	buckets     [][]int32 // cell -> live ids, ascending
	cellOf      []int32   // id -> cell, -1 when unbucketed (dead)
	liveAtBuild int
}

// NewMutGrid creates a mutable grid over dyn for radius r, bucketing any
// rows already live. The dataset is retained; all mutations must go
// through Insert/Remove so occupancy stays consistent.
func NewMutGrid(dyn *object.DynDataset, r float64) (*MutGrid, error) {
	if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return nil, fmt.Errorf("grid: invalid radius %g", r)
	}
	if !Supports(dyn.Metric()) {
		return nil, fmt.Errorf("grid: metric %q does not dominate per-coordinate differences; the cell neighbourhood scan would miss true neighbours", dyn.Metric().Name())
	}
	g := &MutGrid{dyn: dyn, r: r}
	if dyn.Live() > 0 {
		g.Rebucket()
	}
	return g, nil
}

// Radius returns the radius the grid is bucketed for.
func (g *MutGrid) Radius() float64 { return g.r }

// Dyn returns the backing dataset.
func (g *MutGrid) Dyn() *object.DynDataset { return g.dyn }

// Rebucket recomputes the directory geometry over the live bounding box
// and re-buckets every live id in one O(n) pass. Scanning ids ascending
// keeps every bucket sorted.
func (g *MutGrid) Rebucket() {
	dim := g.dyn.Dim()
	n := g.dyn.Live()
	g.min = make([]float64, dim)
	max := make([]float64, dim)
	first := true
	for id := 0; id < g.dyn.Slots(); id++ {
		if !g.dyn.Alive(id) {
			continue
		}
		row := g.dyn.Row(id)
		if first {
			copy(g.min, row)
			copy(max, row)
			first = false
			continue
		}
		for i, v := range row {
			if v < g.min[i] {
				g.min[i] = v
			}
			if v > max[i] {
				max[i] = v
			}
		}
	}
	g.nd = make([]int32, dim)
	g.stride = make([]int32, dim)
	g.cell, g.maxND, g.ncells = computeGeometry(g.min, max, n, g.r, g.nd, g.stride)
	g.buckets = make([][]int32, g.ncells)
	g.cellOf = make([]int32, g.dyn.Slots())
	for id := 0; id < g.dyn.Slots(); id++ {
		if !g.dyn.Alive(id) {
			g.cellOf[id] = -1
			continue
		}
		c := g.cellIndex(g.dyn.Row(id))
		g.cellOf[id] = c
		g.buckets[c] = append(g.buckets[c], int32(id))
	}
	g.liveAtBuild = n
}

// cellIndex maps a coordinate row to its flattened (clamped) cell index.
func (g *MutGrid) cellIndex(row []float64) int32 {
	var idx int32
	for i, v := range row {
		c := int32((v - g.min[i]) / g.cell)
		if c < 0 {
			c = 0
		} else if c >= g.nd[i] {
			c = g.nd[i] - 1
		}
		idx += c * g.stride[i]
	}
	return idx
}

// needsRebucket reports whether occupancy has drifted far enough from
// the last geometry derivation (2× growth or 4× shrinkage) that pruning
// quality warrants an O(n) re-bucket.
func (g *MutGrid) needsRebucket() bool {
	live := g.dyn.Live()
	if g.ncells == 0 {
		return live > 0
	}
	return live > 2*g.liveAtBuild || (g.liveAtBuild >= 8 && live*4 < g.liveAtBuild)
}

// Insert buckets the already-appended live row id. It must be called
// once per Append, after the append.
func (g *MutGrid) Insert(id int) {
	if g.needsRebucket() {
		g.Rebucket()
		return
	}
	for len(g.cellOf) < g.dyn.Slots() {
		g.cellOf = append(g.cellOf, -1)
	}
	c := g.cellIndex(g.dyn.Row(id))
	g.cellOf[id] = c
	g.buckets[c] = spliceID(g.buckets[c], int32(id))
}

// Remove unbuckets row id. Either order relative to the dataset Delete
// is safe: Rebucket walks live ids, so when the shrink trigger fires
// while id has not been tombstoned yet, the O(n) pass re-admits it —
// Remove detects that and unbuckets it a second time, so the id never
// stays bucketed past this call. (Tombstoning first sidesteps the
// double unbucket and keeps the occupancy heuristics on true
// post-delete counts, which is what LiveDisC does.)
func (g *MutGrid) Remove(id int) {
	c := g.cellOf[id]
	if c < 0 {
		return
	}
	g.cellOf[id] = -1
	g.buckets[c] = removeID(g.buckets[c], int32(id))
	if g.needsRebucket() {
		g.Rebucket()
		if c = g.cellOf[id]; c >= 0 {
			g.cellOf[id] = -1
			g.buckets[c] = removeID(g.buckets[c], int32(id))
		}
	}
}

// spliceID inserts id into the sorted slice, keeping it sorted. Ids are
// appended in ascending order by the streaming path, so the common case
// is a pure append; the slice's amortized growth provides the slack.
func spliceID(s []int32, id int32) []int32 {
	if n := len(s); n == 0 || s[n-1] < id {
		return append(s, id)
	}
	i := len(s)
	s = append(s, 0)
	for i > 0 && s[i-1] > id {
		s[i] = s[i-1]
		i--
	}
	s[i] = id
	return s
}

// removeID deletes id from the sorted slice, keeping order.
func removeID(s []int32, id int32) []int32 {
	for i, v := range s {
		if v == id {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// AppendRange appends every live point within rq of q (excluding id
// exclude; -1 for none) to dst in ascending id order, exactly as
// Grid.AppendRange does — candidates come from the clamped cell range
// covering rq and are verified with the compiled kernel, so distances
// are bit-identical to the batch ε-join's.
func (g *MutGrid) AppendRange(dst []object.Neighbor, q []float64, rq float64, exclude int, examined *int64, s *Scratch) []object.Neighbor {
	if g.ncells == 0 {
		return dst
	}
	k := g.dyn.Kernel()
	rawR := k.RawThreshold(rq)
	dim := g.dyn.Dim()
	base := len(dst)
	var acc int64

	reach := g.maxND
	if f := rq / g.cell; f < float64(g.maxND-1) {
		reach = int32(f) + 1
	}
	var c int32
	for i := 0; i < dim; i++ {
		cc := int32((q[i] - g.min[i]) / g.cell)
		if cc < 0 {
			cc = 0
		} else if cc >= g.nd[i] {
			cc = g.nd[i] - 1
		}
		lo, hi := cc-reach, cc+reach
		if lo < 0 {
			lo = 0
		}
		if hi >= g.nd[i] {
			hi = g.nd[i] - 1
		}
		s.lo[i], s.hi[i], s.cur[i] = lo, hi, lo
		c += lo * g.stride[i]
	}
	for ; c >= 0; c = ringNext(s.cur, s.lo, s.hi, g.stride, c) {
		for _, id := range g.buckets[c] {
			if int(id) == exclude {
				continue
			}
			acc++
			row := g.dyn.Row(int(id))
			if k.Within(q, row, rawR) {
				if d := k.Finish(k.Raw(row, q)); d <= rq {
					dst = append(dst, object.Neighbor{ID: int(id), Dist: d})
				}
			}
		}
	}
	if examined != nil {
		*examined += acc
	}
	sortByID(dst[base:])
	return dst
}

// CheckOccupancy validates the occupancy invariants (for tests): every
// live id bucketed in the cell its coordinates map to, buckets sorted,
// no dead ids bucketed, counts consistent.
func (g *MutGrid) CheckOccupancy() error {
	seen := 0
	for c, b := range g.buckets {
		for i, id := range b {
			if i > 0 && b[i-1] >= id {
				return fmt.Errorf("grid: bucket %d not ascending at %d", c, id)
			}
			if !g.dyn.Alive(int(id)) {
				return fmt.Errorf("grid: dead id %d bucketed", id)
			}
			if got := g.cellIndex(g.dyn.Row(int(id))); got != int32(c) {
				return fmt.Errorf("grid: id %d bucketed in cell %d, maps to %d", id, c, got)
			}
			if g.cellOf[id] != int32(c) {
				return fmt.Errorf("grid: cellOf[%d]=%d, bucketed in %d", id, g.cellOf[id], c)
			}
			seen++
		}
	}
	if seen != g.dyn.Live() {
		return fmt.Errorf("grid: %d ids bucketed, %d live", seen, g.dyn.Live())
	}
	return nil
}

// emptyRow marks a vertex whose adjacency has been explicitly emptied,
// distinguishing it from a nil slot that still defers to the base CSR.
var emptyRow = make([]object.Neighbor, 0)

// DynAdj is a mutable adjacency layered copy-on-write over an optional
// immutable base CSR: a vertex's row is its override when one exists and
// the base row otherwise, so seeding from a batch ε-join costs nothing
// and only mutated rows are ever copied out. Overridden rows keep the
// CSR invariants (ascending ids, symmetric edges) and are spliced in
// place; the append-driven amortized slack of the backing slices makes a
// sequence of edge splices into one row amortized O(shift), not
// O(copy-all) per splice. Compact rebuilds a canonical CSR under an id
// remap, which is how the incremental edge set is proven bit-identical
// to a from-scratch Join.
type DynAdj struct {
	base  *CSR
	baseN int
	rows  [][]object.Neighbor
}

// NewDynAdj creates a dynamic adjacency over base (nil for empty).
func NewDynAdj(base *CSR) *DynAdj {
	a := &DynAdj{base: base}
	if base != nil {
		a.baseN = len(base.Offsets) - 1
		a.rows = make([][]object.Neighbor, a.baseN)
	}
	return a
}

// Row returns the current adjacency of id, ascending by neighbour id.
// The slice must not be modified by the caller and is invalidated by the
// next mutation touching id.
func (a *DynAdj) Row(id int) []object.Neighbor {
	if id < len(a.rows) && a.rows[id] != nil {
		return a.rows[id]
	}
	if id < a.baseN {
		return a.base.Row(id)
	}
	return nil
}

// Degree returns len(Row(id)).
func (a *DynAdj) Degree(id int) int { return len(a.Row(id)) }

// grow extends the override table to cover id.
func (a *DynAdj) grow(id int) {
	for len(a.rows) <= id {
		a.rows = append(a.rows, nil)
	}
}

// materialize returns an owned, mutable copy of id's row, with slack for
// coming splices.
func (a *DynAdj) materialize(id int) []object.Neighbor {
	a.grow(id)
	if a.rows[id] != nil {
		return a.rows[id]
	}
	var src []object.Neighbor
	if id < a.baseN {
		src = a.base.Row(id)
	}
	row := make([]object.Neighbor, len(src), len(src)+4)
	copy(row, src)
	return row
}

// AddVertex installs vertex id with the given neighbour list (ascending
// by id, distances final) and splices the reverse edge into every
// neighbour's row. nbrs is copied.
func (a *DynAdj) AddVertex(id int, nbrs []object.Neighbor) {
	a.grow(id)
	row := make([]object.Neighbor, len(nbrs))
	copy(row, nbrs)
	a.rows[id] = row
	if len(row) == 0 {
		a.rows[id] = emptyRow
	}
	for _, nb := range nbrs {
		r := a.materialize(nb.ID)
		a.rows[nb.ID] = spliceNeighbor(r, object.Neighbor{ID: id, Dist: nb.Dist})
	}
}

// RemoveVertex empties vertex id's row and removes the reverse edge from
// every neighbour.
func (a *DynAdj) RemoveVertex(id int) {
	nbrs := a.Row(id)
	for _, nb := range nbrs {
		r := a.materialize(nb.ID)
		a.rows[nb.ID] = removeNeighbor(r, id)
	}
	a.grow(id)
	a.rows[id] = emptyRow
}

// spliceNeighbor inserts nb into the id-sorted row.
func spliceNeighbor(row []object.Neighbor, nb object.Neighbor) []object.Neighbor {
	if n := len(row); n == 0 || row[n-1].ID < nb.ID {
		return append(row, nb)
	}
	i := len(row)
	row = append(row, object.Neighbor{})
	for i > 0 && row[i-1].ID > nb.ID {
		row[i] = row[i-1]
		i--
	}
	row[i] = nb
	return row
}

// removeNeighbor deletes the entry with the given id from the sorted row.
func removeNeighbor(row []object.Neighbor, id int) []object.Neighbor {
	for i, nb := range row {
		if nb.ID == id {
			row = append(row[:i], row[i+1:]...)
			if len(row) == 0 {
				return emptyRow
			}
			return row
		}
	}
	return row
}

// Compact packs the live rows into a canonical CSR under remap (old id →
// dense new id, -1 for dead; must be monotone over live ids, as
// DynDataset.CompactFlat produces). Rows and within-row neighbour order
// are preserved by monotonicity, so no re-sorting happens — the output
// is bit-identical to Join over the compacted dataset whenever the
// incremental edge set is correct.
func (a *DynAdj) Compact(remap []int32, liveN int) (*CSR, error) {
	offsets := make([]int32, liveN+1)
	var total int64
	for old, nw := range remap {
		if nw < 0 {
			continue
		}
		total += int64(len(a.Row(old)))
		if total > math.MaxInt32 {
			return nil, fmt.Errorf("grid: coverage graph exceeds %d adjacency entries", math.MaxInt32)
		}
		offsets[nw+1] = int32(total)
	}
	nbrs := make([]object.Neighbor, total)
	for old, nw := range remap {
		if nw < 0 {
			continue
		}
		out := nbrs[offsets[nw]:offsets[nw+1]]
		for i, nb := range a.Row(old) {
			rid := remap[nb.ID]
			if rid < 0 {
				return nil, fmt.Errorf("grid: live row %d holds edge to dead id %d", old, nb.ID)
			}
			out[i] = object.Neighbor{ID: int(rid), Dist: nb.Dist}
		}
	}
	return &CSR{Offsets: offsets, Nbrs: nbrs}, nil
}
