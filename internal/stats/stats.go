// Package stats provides the measurement and reporting helpers used by
// the experiment harness: solution-quality metrics, set similarity and
// plain-text table/series rendering in the style of the paper's tables
// and figures.
package stats

import (
	"math"
	"sort"

	"github.com/discdiversity/disc/internal/object"
)

// Jaccard returns the Jaccard distance 1 - |A∩B|/|A∪B| between two id
// sets (0 for two empty sets), the dissimilarity measure of Figures 13
// and 16.
func Jaccard(a, b []int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	sa := toSet(a)
	sb := toSet(b)
	inter := 0
	for v := range sa {
		if _, ok := sb[v]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	return 1 - float64(inter)/float64(union)
}

// Intersection returns the sorted intersection of two id sets.
func Intersection(a, b []int) []int {
	sb := toSet(b)
	var out []int
	for v := range toSet(a) {
		if _, ok := sb[v]; ok {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// Difference returns the sorted members of a not present in b.
func Difference(a, b []int) []int {
	sb := toSet(b)
	var out []int
	for v := range toSet(a) {
		if _, ok := sb[v]; !ok {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

func toSet(xs []int) map[int]struct{} {
	s := make(map[int]struct{}, len(xs))
	for _, x := range xs {
		s[x] = struct{}{}
	}
	return s
}

// CoverageFraction returns the fraction of objects lying within r of at
// least one selected object — 1.0 for any valid r-C subset, lower for
// models like MaxSum or k-medoids that ignore coverage.
func CoverageFraction(pts []object.Point, m object.Metric, ids []int, r float64) float64 {
	if len(pts) == 0 {
		return 1
	}
	covered := 0
	for _, p := range pts {
		for _, id := range ids {
			if m.Dist(p, pts[id]) <= r {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(pts))
}

// MeanDistToNearest returns the average distance from each object to its
// nearest selected object (the k-medoids objective).
func MeanDistToNearest(pts []object.Point, m object.Metric, ids []int) float64 {
	if len(ids) == 0 || len(pts) == 0 {
		return math.Inf(1)
	}
	var total float64
	for _, p := range pts {
		best := math.Inf(1)
		for _, id := range ids {
			if d := m.Dist(p, pts[id]); d < best {
				best = d
			}
		}
		total += best
	}
	return total / float64(len(pts))
}

// Summary holds basic distribution statistics for a series of values.
type Summary struct {
	N         int
	Min, Max  float64
	Mean, Std float64
}

// Summarize computes a Summary over vals.
func Summarize(vals []float64) Summary {
	s := Summary{N: len(vals), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(vals) == 0 {
		return Summary{}
	}
	var sum float64
	for _, v := range vals {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(vals))
	var sq float64
	for _, v := range vals {
		d := v - s.Mean
		sq += d * d
	}
	s.Std = math.Sqrt(sq / float64(len(vals)))
	return s
}
