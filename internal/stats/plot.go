package stats

import (
	"fmt"
	"io"
	"strings"

	"github.com/discdiversity/disc/internal/object"
)

// ScatterPlot renders a 2-d point set as an ASCII grid, marking selected
// objects — the textual analogue of the paper's Figures 1 and 6. Points
// must lie in [0,1]^2 (coordinates are clamped otherwise). Unselected
// objects render as '.', selected ones as '#'; empty cells as spaces.
type ScatterPlot struct {
	Width, Height int
}

// DefaultScatter is sized for a standard terminal.
var DefaultScatter = ScatterPlot{Width: 72, Height: 28}

// Render writes the plot of pts with the given selected ids to w.
func (sp ScatterPlot) Render(w io.Writer, title string, pts []object.Point, selected []int) {
	width, height := sp.Width, sp.Height
	if width <= 0 {
		width = DefaultScatter.Width
	}
	if height <= 0 {
		height = DefaultScatter.Height
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	put := func(p object.Point, ch byte) {
		if len(p) < 2 {
			return
		}
		x := int(clamp(p[0]) * float64(width-1))
		// Flip y so larger values render higher.
		y := height - 1 - int(clamp(p[1])*float64(height-1))
		// '#' (selected) always wins over '.'.
		if grid[y][x] == '#' && ch == '.' {
			return
		}
		grid[y][x] = ch
	}
	for _, p := range pts {
		put(p, '.')
	}
	for _, id := range selected {
		if id >= 0 && id < len(pts) {
			put(pts[id], '#')
		}
	}
	if title != "" {
		fmt.Fprintln(w, title)
	}
	border := "+" + strings.Repeat("-", width) + "+"
	fmt.Fprintln(w, border)
	for _, row := range grid {
		fmt.Fprintf(w, "|%s|\n", row)
	}
	fmt.Fprintln(w, border)
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
