package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table renders aligned plain-text tables in the style of the paper's
// Table 3: a header row, a rule, and value rows with right-aligned cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Fprint writes the table to w.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	var b strings.Builder
	for i, h := range t.Headers {
		if i > 0 {
			b.WriteString("  ")
		}
		pad(&b, h, widths[i], i == 0)
	}
	fmt.Fprintln(w, b.String())
	b.Reset()
	total := 0
	for i, wd := range widths {
		if i > 0 {
			total += 2
		}
		total += wd
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		b.Reset()
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			pad(&b, c, width, i == 0)
		}
		fmt.Fprintln(w, b.String())
	}
}

func pad(b *strings.Builder, s string, width int, left bool) {
	if len(s) >= width {
		b.WriteString(s)
		return
	}
	spaces := strings.Repeat(" ", width-len(s))
	if left {
		b.WriteString(s)
		b.WriteString(spaces)
	} else {
		b.WriteString(spaces)
		b.WriteString(s)
	}
}

// Series is a named sequence of (x, y) measurements, the unit of the
// paper's figures.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point to the series.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// SeriesTable renders several series sharing the same x values as a
// table: one row per x, one column per series.
func SeriesTable(title, xName string, series ...*Series) *Table {
	headers := []string{xName}
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	t := NewTable(title, headers...)
	if len(series) == 0 {
		return t
	}
	for i := range series[0].X {
		cells := []any{trimFloat(series[0].X[i])}
		for _, s := range series {
			if i < len(s.Y) {
				cells = append(cells, trimFloat(s.Y[i]))
			} else {
				cells = append(cells, "")
			}
		}
		t.AddRow(cells...)
	}
	return t
}
