package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/discdiversity/disc/internal/object"
)

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []int
		want float64
	}{
		{nil, nil, 0},
		{[]int{1}, []int{1}, 0},
		{[]int{1, 2, 3}, []int{2, 3, 4}, 0.5},
		{[]int{1}, []int{2}, 1},
		{[]int{1, 1, 2}, []int{2}, 0.5}, // duplicates collapse
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jaccard(%v,%v)=%g want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestJaccardQuickProperties(t *testing.T) {
	prop := func(a, b []uint8) bool {
		ai := toInts(a)
		bi := toInts(b)
		d := Jaccard(ai, bi)
		if d < 0 || d > 1 {
			return false
		}
		if Jaccard(ai, ai) != 0 {
			return false
		}
		return Jaccard(ai, bi) == Jaccard(bi, ai)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func toInts(xs []uint8) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x)
	}
	return out
}

func TestSetOps(t *testing.T) {
	a := []int{1, 2, 3, 4}
	b := []int{3, 4, 5}
	if got := Intersection(a, b); !equal(got, []int{3, 4}) {
		t.Errorf("Intersection=%v", got)
	}
	if got := Difference(a, b); !equal(got, []int{1, 2}) {
		t.Errorf("Difference=%v", got)
	}
	if got := Difference(b, a); !equal(got, []int{5}) {
		t.Errorf("Difference=%v", got)
	}
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCoverageFraction(t *testing.T) {
	pts := []object.Point{{0, 0}, {0.05, 0}, {1, 1}}
	m := object.Euclidean{}
	if got := CoverageFraction(pts, m, []int{0}, 0.1); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("got %g", got)
	}
	if got := CoverageFraction(pts, m, []int{0, 2}, 0.1); got != 1 {
		t.Errorf("got %g", got)
	}
	if got := CoverageFraction(nil, m, nil, 0.1); got != 1 {
		t.Errorf("empty: %g", got)
	}
}

func TestMeanDistToNearest(t *testing.T) {
	pts := []object.Point{{0}, {1}, {2}}
	m := object.Euclidean{}
	got := MeanDistToNearest(pts, m, []int{1})
	if math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("got %g", got)
	}
	if !math.IsInf(MeanDistToNearest(pts, m, nil), 1) {
		t.Error("empty selection should be +Inf")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Errorf("summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("std %g", s.Std)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary %+v", z)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Title", "algo", "r=0.1", "r=0.2")
	tab.AddRow("Basic-DisC", 3839, 1360)
	tab.AddRow("Greedy-DisC", 3260.0, 1120.5)
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"Title", "Basic-DisC", "3839", "1120.5", "algo"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines", len(lines))
	}
}

func TestSeriesTable(t *testing.T) {
	a := &Series{Name: "alg-a"}
	b := &Series{Name: "alg-b"}
	for i := 1; i <= 3; i++ {
		a.Add(float64(i), float64(i*10))
		b.Add(float64(i), float64(i*100))
	}
	tab := SeriesTable("fig", "r", a, b)
	if len(tab.Rows) != 3 || tab.Headers[1] != "alg-a" {
		t.Errorf("table %+v", tab)
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	if !strings.Contains(buf.String(), "300") {
		t.Errorf("missing value:\n%s", buf.String())
	}
	if empty := SeriesTable("e", "x"); len(empty.Rows) != 0 {
		t.Error("empty series table should have no rows")
	}
}
