package stats

import (
	"bytes"
	"strings"
	"testing"

	"github.com/discdiversity/disc/internal/object"
)

func TestScatterPlotRender(t *testing.T) {
	pts := []object.Point{{0, 0}, {1, 1}, {0.5, 0.5}}
	var buf bytes.Buffer
	ScatterPlot{Width: 11, Height: 5}.Render(&buf, "title", pts, []int{1})
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "title" {
		t.Errorf("missing title: %q", lines[0])
	}
	if len(lines) != 1+1+5+1 { // title + top border + rows + bottom border
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, ".") {
		t.Errorf("missing glyphs:\n%s", out)
	}
	// Selected point (1,1) renders in the top-right; unselected (0,0)
	// bottom-left.
	top := lines[2]
	bottom := lines[len(lines)-2]
	if top[len(top)-2] != '#' {
		t.Errorf("top-right should be '#':\n%s", out)
	}
	if bottom[1] != '.' {
		t.Errorf("bottom-left should be '.':\n%s", out)
	}
}

func TestScatterPlotSelectedWinsOverDot(t *testing.T) {
	// Two coincident points, one selected: the cell must show '#'
	// regardless of draw order.
	pts := []object.Point{{0.5, 0.5}, {0.5, 0.5}}
	var buf bytes.Buffer
	ScatterPlot{Width: 9, Height: 3}.Render(&buf, "", pts, []int{0})
	if !strings.Contains(buf.String(), "#") {
		t.Error("selected marker overwritten")
	}
}

func TestScatterPlotClampsOutOfRange(t *testing.T) {
	pts := []object.Point{{-1, 2}, {3, -5}}
	var buf bytes.Buffer
	// Must not panic; points clamp to the border.
	ScatterPlot{Width: 7, Height: 3}.Render(&buf, "", pts, nil)
	if !strings.Contains(buf.String(), ".") {
		t.Error("clamped points not rendered")
	}
}

func TestScatterPlotDefaults(t *testing.T) {
	var buf bytes.Buffer
	ScatterPlot{}.Render(&buf, "", []object.Point{{0.5, 0.5}}, nil)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != DefaultScatter.Height+2 {
		t.Errorf("default height not applied: %d lines", len(lines))
	}
}
