package graph

import (
	"math/rand/v2"
	"testing"

	"github.com/discdiversity/disc/internal/object"
)

func randomPoints(n, d int, seed uint64) []object.Point {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	pts := make([]object.Point, n)
	for i := range pts {
		p := make(object.Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func TestBuildAndValidate(t *testing.T) {
	pts := randomPoints(50, 2, 1)
	g := Build(pts, object.Euclidean{}, 0.2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	m := object.Euclidean{}
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			want := m.Dist(pts[u], pts[v]) <= 0.2
			if got := g.HasEdge(u, v); got != want {
				t.Fatalf("edge %d-%d: got %v want %v", u, v, got, want)
			}
		}
	}
}

// Paper Figure 4: path-like graph where the minimum dominating set is
// smaller than the minimum independent dominating set.
func TestFigure4Graph(t *testing.T) {
	// v1..v6 (0-indexed): edges as in the figure: v2 adjacent to v1, v3,
	// v5; v5 adjacent to v4, v6 (a "double star").
	g := &Graph{Adj: make([][]int, 6)}
	addEdge := func(u, v int) {
		g.Adj[u] = append(g.Adj[u], v)
		g.Adj[v] = append(g.Adj[v], u)
	}
	addEdge(1, 0)
	addEdge(1, 2)
	addEdge(1, 4)
	addEdge(4, 3)
	addEdge(4, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// {v2, v5} dominates but is not independent... in the figure they are
	// adjacent? They are not: check the figure's sets.
	if !g.IsDominating([]int{1, 4}) {
		t.Error("{v2,v5} should dominate")
	}
	mids := g.MinIndependentDominatingSet()
	if len(mids) != 3 {
		t.Errorf("MIDS size %d, want 3 (e.g. {v2,v4,v6})", len(mids))
	}
	if !g.IsIndependent(mids) || !g.IsDominating(mids) {
		t.Error("MIDS result not independent dominating")
	}
}

func TestSetPredicates(t *testing.T) {
	g := Build(randomPoints(30, 2, 2), object.Euclidean{}, 0.25)
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	if !g.IsDominating(all) {
		t.Error("full set must dominate")
	}
	if g.MaxDegree() > 0 && g.IsIndependent(all) {
		t.Error("full set of a non-trivial graph cannot be independent")
	}
	if g.IsDominating(nil) {
		t.Error("empty set dominates non-empty graph")
	}
	if !g.IsIndependent(nil) {
		t.Error("empty set must be independent")
	}
}

// Lemma 1: an independent set is maximal iff it is dominating. We verify
// the forward direction on MIDS outputs and the contrapositive on
// deliberately non-maximal sets.
func TestLemma1MaximalIffDominating(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		pts := randomPoints(14, 2, seed)
		g := Build(pts, object.Euclidean{}, 0.3)
		s := g.MinIndependentDominatingSet()
		if !g.IsMaximalIndependent(s) {
			t.Fatalf("seed %d: MIDS not maximal independent", seed)
		}
		// Removing any vertex from a MIDS breaks domination or leaves a
		// non-maximal independent set (by minimality it cannot stay
		// dominating).
		if len(s) > 1 {
			reduced := s[1:]
			if g.IsDominating(reduced) {
				t.Fatalf("seed %d: removing a vertex kept domination — MIDS not minimal", seed)
			}
		}
	}
}

func TestExactMIDSIsMinimum(t *testing.T) {
	// Compare against brute-force enumeration of all subsets on tiny
	// instances.
	for seed := uint64(0); seed < 6; seed++ {
		pts := randomPoints(10, 2, seed+10)
		g := Build(pts, object.Euclidean{}, 0.35)
		got := g.MinIndependentDominatingSet()
		want := bruteMIDSSize(g)
		if len(got) != want {
			t.Fatalf("seed %d: exact MIDS size %d, brute force %d", seed, len(got), want)
		}
	}
}

func bruteMIDSSize(g *Graph) int {
	n := g.N()
	best := n + 1
	for mask := 1; mask < 1<<uint(n); mask++ {
		var set []int
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				set = append(set, v)
			}
		}
		if len(set) >= best {
			continue
		}
		if g.IsIndependent(set) && g.IsDominating(set) {
			best = len(set)
		}
	}
	return best
}

func TestMaxIndependentNeighbors(t *testing.T) {
	// A star: the centre has n-1 mutually non-adjacent neighbours.
	g := &Graph{Adj: make([][]int, 6)}
	for v := 1; v < 6; v++ {
		g.Adj[0] = append(g.Adj[0], v)
		g.Adj[v] = append(g.Adj[v], 0)
	}
	if got := g.MaxIndependentNeighbors(); got != 5 {
		t.Errorf("star B=%d, want 5", got)
	}
	// A triangle: every neighbourhood is a single edge, B=1.
	tri := &Graph{Adj: [][]int{{1, 2}, {0, 2}, {0, 1}}}
	if got := tri.MaxIndependentNeighbors(); got != 1 {
		t.Errorf("triangle B=%d, want 1", got)
	}
}

func TestOptimalMaxMin(t *testing.T) {
	pts := []object.Point{{0, 0}, {1, 0}, {0.1, 0}, {0.5, 0.5}}
	ids, fmin := OptimalMaxMin(pts, object.Euclidean{}, 2)
	if len(ids) != 2 {
		t.Fatalf("got %v", ids)
	}
	if fmin != 1 { // the best pair is {0,1} at distance 1
		t.Errorf("fmin=%g want 1", fmin)
	}
	if _, f := OptimalMaxMin(pts, object.Euclidean{}, 1); f != f || len(pts) == 0 {
		_ = f // k=1 yields +Inf; just ensure no panic
	}
	if ids, _ := OptimalMaxMin(pts, object.Euclidean{}, 0); ids != nil {
		t.Error("k=0 should return nil")
	}
}
