// Package graph provides the graph-theoretic substrate of the paper
// (Section 2.2): the graph G_{P,r} whose vertices are objects and whose
// edges connect objects within distance r, together with checkers for
// independence and domination and exact solvers used by the test suite to
// validate the heuristics' approximation bounds (Theorems 1 and 2,
// Lemma 7).
package graph

import (
	"fmt"

	"github.com/discdiversity/disc/internal/object"
)

// Graph is an undirected graph in adjacency-list form over vertices
// 0..n-1.
type Graph struct {
	Adj [][]int
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.Adj) }

// Build constructs G_{P,r}: vertex per object, edge iff dist ≤ r.
// O(n^2) distance computations; intended for analysis and tests.
func Build(pts []object.Point, m object.Metric, r float64) *Graph {
	n := len(pts)
	g := &Graph{Adj: make([][]int, n)}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if m.Dist(pts[i], pts[j]) <= r {
				g.Adj[i] = append(g.Adj[i], j)
				g.Adj[j] = append(g.Adj[j], i)
			}
		}
	}
	return g
}

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.Adj[v]) }

// MaxDegree returns Δ, the maximum degree (Theorem 2's bound parameter).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := range g.Adj {
		if d := len(g.Adj[v]); d > max {
			max = d
		}
	}
	return max
}

// HasEdge reports whether (u,v) is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	for _, w := range g.Adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// IsIndependent reports whether no two vertices of set share an edge.
func (g *Graph) IsIndependent(set []int) bool {
	in := g.member(set)
	for _, v := range set {
		for _, w := range g.Adj[v] {
			if in[w] {
				return false
			}
		}
	}
	return true
}

// IsDominating reports whether every vertex is in set or adjacent to a
// member of set.
func (g *Graph) IsDominating(set []int) bool {
	in := g.member(set)
	for v := range g.Adj {
		if in[v] {
			continue
		}
		dominated := false
		for _, w := range g.Adj[v] {
			if in[w] {
				dominated = true
				break
			}
		}
		if !dominated {
			return false
		}
	}
	return true
}

// IsMaximalIndependent reports whether set is independent and no vertex
// can be added without breaking independence. By Lemma 1 this is
// equivalent to IsIndependent && IsDominating.
func (g *Graph) IsMaximalIndependent(set []int) bool {
	return g.IsIndependent(set) && g.IsDominating(set)
}

func (g *Graph) member(set []int) []bool {
	in := make([]bool, len(g.Adj))
	for _, v := range set {
		in[v] = true
	}
	return in
}

// Validate checks adjacency symmetry and bounds; used by tests.
func (g *Graph) Validate() error {
	for v, ns := range g.Adj {
		for _, w := range ns {
			if w < 0 || w >= len(g.Adj) {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbour %d", v, w)
			}
			if w == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if !g.HasEdge(w, v) {
				return fmt.Errorf("graph: asymmetric edge %d-%d", v, w)
			}
		}
	}
	return nil
}
