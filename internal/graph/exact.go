package graph

import (
	"math"
	"math/bits"
	"sort"

	"github.com/discdiversity/disc/internal/object"
)

// MaxExactVertices bounds the instance size the exponential exact solvers
// accept.
const MaxExactVertices = 26

// MinIndependentDominatingSet computes a minimum independent dominating
// set — the paper's optimum S* — by exhaustive search over vertex subsets
// in increasing cardinality, using bitmask domination closures. It is
// exponential and restricted to at most MaxExactVertices vertices; tests
// use it to validate Theorem 1 (|S| ≤ B|S*|) and Theorem 2 (Greedy-C ≤
// lnΔ · |S*|).
func (g *Graph) MinIndependentDominatingSet() []int {
	n := g.N()
	if n == 0 {
		return nil
	}
	if n > MaxExactVertices {
		panic("graph: instance too large for exact MIDS")
	}
	closed := g.closedMasks()
	full := uint32(1)<<uint(n) - 1

	var best []int
	var cur []int
	bestSize := n + 1

	// Branch on the lowest-indexed undominated vertex: any dominating
	// set must contain it or one of its neighbours. Independence is
	// enforced by tracking forbidden vertices (neighbours of chosen).
	var rec func(dominated uint32, forbidden uint32)
	rec = func(dominated, forbidden uint32) {
		if len(cur) >= bestSize {
			return
		}
		if dominated == full {
			bestSize = len(cur)
			best = append(best[:0], cur...)
			return
		}
		v := bits.TrailingZeros32(^dominated)
		// Candidates: v and its neighbours, skipping forbidden ones.
		cands := []int{v}
		cands = append(cands, g.Adj[v]...)
		for _, c := range cands {
			bit := uint32(1) << uint(c)
			if forbidden&bit != 0 {
				continue
			}
			// Choosing c forbids c's neighbours (independence).
			var nf uint32
			for _, w := range g.Adj[c] {
				nf |= uint32(1) << uint(w)
			}
			cur = append(cur, c)
			rec(dominated|closed[c], forbidden|bit|nf)
			cur = cur[:len(cur)-1]
		}
		// Note: v itself must be dominated eventually; every dominating
		// set contains a member of N+[v], so the loop above is complete.
	}
	rec(0, 0)
	sort.Ints(best)
	return best
}

func (g *Graph) closedMasks() []uint32 {
	masks := make([]uint32, g.N())
	for v := range g.Adj {
		m := uint32(1) << uint(v)
		for _, w := range g.Adj[v] {
			m |= uint32(1) << uint(w)
		}
		masks[v] = m
	}
	return masks
}

// MaxIndependentNeighbors returns B, the maximum over vertices of the
// size of a largest independent subset of the vertex's neighbourhood
// (the bound parameter of Theorem 1). Exponential in the neighbourhood
// size; intended for small test instances.
func (g *Graph) MaxIndependentNeighbors() int {
	best := 0
	for v := range g.Adj {
		if b := g.maxIndependentSubset(g.Adj[v]); b > best {
			best = b
		}
	}
	return best
}

func (g *Graph) maxIndependentSubset(verts []int) int {
	if len(verts) > MaxExactVertices {
		panic("graph: neighbourhood too large for exact independent set")
	}
	best := 0
	n := len(verts)
	for mask := uint32(0); mask < uint32(1)<<uint(n); mask++ {
		sz := bits.OnesCount32(mask)
		if sz <= best {
			continue
		}
		ok := true
	pairs:
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			for j := i + 1; j < n; j++ {
				if mask&(1<<uint(j)) == 0 {
					continue
				}
				if g.HasEdge(verts[i], verts[j]) {
					ok = false
					break pairs
				}
			}
		}
		if ok {
			best = sz
		}
	}
	return best
}

// OptimalMaxMin returns the k-subset of pts maximising the minimum
// pairwise distance (the exact MaxMin optimum of Lemma 7) together with
// that distance. Exhaustive over k-subsets; restricted to small inputs.
func OptimalMaxMin(pts []object.Point, m object.Metric, k int) ([]int, float64) {
	n := len(pts)
	if k <= 0 || k > n {
		return nil, 0
	}
	if k == 1 {
		return []int{0}, math.Inf(1)
	}
	if n > MaxExactVertices {
		panic("graph: instance too large for exact MaxMin")
	}
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = m.Dist(pts[i], pts[j])
		}
	}
	var best []int
	bestMin := -1.0
	idx := make([]int, k)
	var rec func(start, depth int, curMin float64)
	rec = func(start, depth int, curMin float64) {
		if depth == k {
			if curMin > bestMin {
				bestMin = curMin
				best = append(best[:0], idx...)
			}
			return
		}
		for v := start; v <= n-(k-depth); v++ {
			nm := curMin
			ok := true
			for i := 0; i < depth; i++ {
				d := dist[idx[i]][v]
				if d <= bestMin {
					ok = false
					break
				}
				if d < nm {
					nm = d
				}
			}
			if !ok {
				continue
			}
			idx[depth] = v
			rec(v+1, depth+1, nm)
		}
	}
	rec(0, 0, math.Inf(1))
	sort.Ints(best)
	return best, bestMin
}
