// Package faultio wraps wal.File-shaped targets with injected storage
// failures — short writes, fsync errors, and crash-at-byte-N truncation
// — so the durability property tests can prove that every crash prefix
// of the write-ahead log recovers correctly, without needing real power
// cuts.
//
// The model is the standard crash-consistency one: a crash preserves an
// arbitrary prefix of the bytes written since the last sync. CrashFile
// realises it literally by buffering writes and only letting the first
// N bytes ever reach the backing file; FaultFile injects the softer
// failures (short writes, failing Sync) that exercise the log's
// poisoning and torn-tail paths.
package faultio

import (
	"errors"
	"io"
	"os"
)

// ErrInjectedSync is returned by a Sync scheduled to fail.
var ErrInjectedSync = errors.New("faultio: injected sync failure")

// ErrInjectedWrite is returned by a write scheduled to fail outright.
var ErrInjectedWrite = errors.New("faultio: injected write failure")

// ErrCrashed is returned by an OpenCrash factory once its byte budget
// is exhausted: the simulated process is dead and cannot create files.
var ErrCrashed = errors.New("faultio: crashed (byte budget exhausted)")

// File is the surface both wrappers decorate — identical to wal.File
// (kept textually separate so faultio does not depend on wal).
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FaultFile decorates a File with deterministic, scriptable failures.
// The zero schedule injects nothing. Not safe for concurrent use (the
// log serialises all access anyway).
type FaultFile struct {
	f File

	// ShortWriteAt makes the n-th Write call (1-based) write only half
	// its buffer and return io.ErrShortWrite. 0 disables.
	ShortWriteAt int
	// FailWriteAt makes the n-th Write call (1-based) fail with
	// ErrInjectedWrite before writing anything. 0 disables.
	FailWriteAt int
	// FailSyncAt makes the n-th Sync call (1-based) return
	// ErrInjectedSync. 0 disables.
	FailSyncAt int

	writes int
	syncs  int
}

// NewFaultFile wraps f; configure the exported schedule fields before
// handing it to the log.
func NewFaultFile(f File) *FaultFile { return &FaultFile{f: f} }

// Writes reports how many Write calls have been observed.
func (ff *FaultFile) Writes() int { return ff.writes }

// Syncs reports how many Sync calls have been observed.
func (ff *FaultFile) Syncs() int { return ff.syncs }

func (ff *FaultFile) Write(p []byte) (int, error) {
	ff.writes++
	if ff.FailWriteAt != 0 && ff.writes == ff.FailWriteAt {
		return 0, ErrInjectedWrite
	}
	if ff.ShortWriteAt != 0 && ff.writes == ff.ShortWriteAt {
		n, err := ff.f.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, io.ErrShortWrite
	}
	return ff.f.Write(p)
}

func (ff *FaultFile) Sync() error {
	ff.syncs++
	if ff.FailSyncAt != 0 && ff.syncs == ff.FailSyncAt {
		return ErrInjectedSync
	}
	return ff.f.Sync()
}

func (ff *FaultFile) Close() error { return ff.f.Close() }

// CrashFile admits only the first Limit bytes ever written to the
// backing file and silently swallows the rest, while reporting full
// success to the writer — the disk image an instant power cut at byte
// Limit would leave behind (writes are sequential appends in the WAL,
// so the surviving prefix is exactly the first Limit bytes). Sync and
// Close are no-ops once the limit is hit. Offset reports how many
// logical bytes the writer believes it wrote, so a test can first
// record a full run's byte count and then re-run with every Limit in
// [0, total].
type CrashFile struct {
	f       File
	limit   int64
	written int64
}

// NewCrashFile wraps f, admitting only the first limit bytes.
func NewCrashFile(f File, limit int64) *CrashFile {
	return &CrashFile{f: f, limit: limit}
}

// Offset returns the number of bytes the writer has (logically)
// written so far, including bytes past the crash limit.
func (cf *CrashFile) Offset() int64 { return cf.written }

func (cf *CrashFile) Write(p []byte) (int, error) {
	admit := cf.limit - cf.written
	if admit > int64(len(p)) {
		admit = int64(len(p))
	}
	if admit > 0 {
		if n, err := cf.f.Write(p[:admit]); err != nil {
			cf.written += int64(n)
			return n, err
		}
	}
	cf.written += int64(len(p))
	return len(p), nil
}

func (cf *CrashFile) Sync() error {
	if cf.written >= cf.limit {
		return nil
	}
	return cf.f.Sync()
}

func (cf *CrashFile) Close() error { return cf.f.Close() }

// OpenCrash is an OpenFile factory (matching wal.Options.OpenFile) that
// wraps every created or appended file in a crash wrapper drawing on
// one cumulative byte budget across all files, in creation order —
// rotation mid-crash-window then behaves like a single linear byte
// stream cut at `limit`. It returns the factory plus a counter of the
// total bytes the writer attempted (read it after the run to learn the
// full uncrashed length).
func OpenCrash(limit int64) (open func(name string, create bool) (File, error), attempted *int64) {
	st := &crashBudget{budget: limit}
	open = func(name string, create bool) (File, error) {
		// Creating a file is itself an act the crashed process cannot
		// perform: once the budget is gone, refuse — otherwise the
		// model could leave empty later segments next to a torn earlier
		// one, an image the real sync-before-roll protocol rules out.
		if st.budget <= 0 {
			return nil, ErrCrashed
		}
		flags := os.O_WRONLY | os.O_APPEND
		if create {
			flags = os.O_WRONLY | os.O_CREATE | os.O_TRUNC
		}
		f, err := os.OpenFile(name, flags, 0o644)
		if err != nil {
			return nil, err
		}
		return &budgetCrashFile{f: f, st: st}, nil
	}
	return open, &st.attempted
}

// crashBudget is the byte budget shared by the files one OpenCrash
// factory hands out.
type crashBudget struct {
	budget    int64
	attempted int64
}

// budgetCrashFile admits writes only while the shared budget lasts and
// silently swallows the rest, reporting success throughout.
type budgetCrashFile struct {
	f  File
	st *crashBudget
}

func (bf *budgetCrashFile) Write(p []byte) (int, error) {
	bf.st.attempted += int64(len(p))
	admit := bf.st.budget
	if admit > int64(len(p)) {
		admit = int64(len(p))
	}
	if admit > 0 {
		n, err := bf.f.Write(p[:admit])
		bf.st.budget -= int64(n)
		if err != nil {
			return n, err
		}
	}
	return len(p), nil
}

func (bf *budgetCrashFile) Sync() error {
	if bf.st.budget <= 0 {
		return nil
	}
	return bf.f.Sync()
}

func (bf *budgetCrashFile) Close() error { return bf.f.Close() }
