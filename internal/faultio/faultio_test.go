package faultio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func tmpFile(t *testing.T) *os.File {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "f"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestFaultFileShortWrite(t *testing.T) {
	f := tmpFile(t)
	ff := NewFaultFile(f)
	ff.ShortWriteAt = 2
	if _, err := ff.Write([]byte("abcd")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	n, err := ff.Write([]byte("efgh"))
	if !errors.Is(err, io.ErrShortWrite) || n != 2 {
		t.Fatalf("write 2 = (%d, %v), want (2, ErrShortWrite)", n, err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "abcdef" {
		t.Fatalf("file holds %q, want the short-written prefix \"abcdef\"", data)
	}
	if ff.Writes() != 2 {
		t.Fatalf("Writes() = %d", ff.Writes())
	}
}

func TestFaultFileFailures(t *testing.T) {
	f := tmpFile(t)
	ff := NewFaultFile(f)
	ff.FailWriteAt = 1
	if _, err := ff.Write([]byte("x")); !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("write = %v, want ErrInjectedWrite", err)
	}
	ff.FailSyncAt = 2
	if err := ff.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := ff.Sync(); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("sync 2 = %v, want ErrInjectedSync", err)
	}
}

func TestCrashFilePrefix(t *testing.T) {
	f := tmpFile(t)
	cf := NewCrashFile(f, 5)
	for _, chunk := range []string{"abc", "def", "ghi"} {
		n, err := cf.Write([]byte(chunk))
		if err != nil || n != len(chunk) {
			t.Fatalf("write %q = (%d, %v); the writer must see success", chunk, n, err)
		}
	}
	if err := cf.Sync(); err != nil {
		t.Fatalf("sync past the limit: %v", err)
	}
	if cf.Offset() != 9 {
		t.Fatalf("Offset() = %d, want 9", cf.Offset())
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "abcde" {
		t.Fatalf("file holds %q, want exactly the first 5 bytes", data)
	}
}

func TestOpenCrashSharedBudget(t *testing.T) {
	dir := t.TempDir()
	open, attempted := OpenCrash(7)
	a, err := open(filepath.Join(dir, "a"), true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	b, err := open(filepath.Join(dir, "b"), true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write([]byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	b.Close()
	if *attempted != 8 {
		t.Fatalf("attempted = %d, want 8", *attempted)
	}
	da, _ := os.ReadFile(filepath.Join(dir, "a"))
	db, _ := os.ReadFile(filepath.Join(dir, "b"))
	if string(da) != "aaaa" || string(db) != "bbb" {
		t.Fatalf("crash images %q / %q, want \"aaaa\" / \"bbb\" (7-byte budget)", da, db)
	}
}
