package faultio

import (
	"fmt"
	"os"
	"strings"
	"sync"

	"github.com/discdiversity/disc/internal/vfs"
)

// FaultOp names one filesystem operation a DirFS rule can target.
type FaultOp string

const (
	// OpOpen targets OpenAppend calls (both append and create modes).
	OpOpen FaultOp = "open"
	// OpCreateTemp targets CreateTemp calls (the atomic-save temp file).
	OpCreateTemp FaultOp = "create-temp"
	// OpRead targets ReadFile calls (snapshot loads, WAL replay/scrub).
	OpRead FaultOp = "read"
	// OpReadDir targets ReadDir calls (segment listing, boot scans).
	OpReadDir FaultOp = "readdir"
	// OpWrite targets Write calls on files the DirFS handed out.
	OpWrite FaultOp = "write"
	// OpSync targets Sync calls on files the DirFS handed out.
	OpSync FaultOp = "sync"
	// OpRename targets Rename calls (the atomic-save commit point).
	// The rule matches against the destination path.
	OpRename FaultOp = "rename"
	// OpRemove targets Remove calls (segment GC, sidecar cleanup).
	OpRemove FaultOp = "remove"
	// OpTruncate targets Truncate calls (torn-tail cleanup).
	OpTruncate FaultOp = "truncate"
	// OpSyncDir targets SyncDir calls. The rule matches the directory.
	OpSyncDir FaultOp = "syncdir"
)

// Rule schedules one injected fault: the At-th call (1-based) of Op
// whose path contains PathContains fails with Err. A Rule fires on
// every matching call when At is 0, and never again once Remaining
// hits zero (see Times). For OpWrite, a non-zero Partial admits that
// many bytes of the failing write to the backing file first — the torn
// write a power cut mid-append leaves behind.
type Rule struct {
	Op           FaultOp
	PathContains string
	// At makes the rule fire only on the At-th matching call (1-based);
	// 0 fires on every matching call (bounded by Times).
	At int
	// Times bounds how often the rule fires (0 = unlimited). Combined
	// with At: the rule arms at call At and fires Times times.
	Times int
	// Err is the injected error; nil defaults to a *os.PathError
	// wrapping ErrInjectedWrite/ErrInjectedSync as appropriate.
	Err error
	// Partial (OpWrite only): bytes of the failing write admitted to
	// the backing file before the error — a torn write.
	Partial int

	calls int // matching calls observed
	fired int // faults injected
}

// DirFS implements vfs.FS over the real filesystem with scheduled
// fault injection: every operation first consults the rule table, and
// a matching armed rule makes the call fail (after admitting Partial
// bytes, for torn writes) exactly as a failing disk would — with a
// *os.PathError carrying the scheduled errno. Files handed out by
// OpenAppend and CreateTemp route their Write/Sync calls back through
// the same table, so write-path faults are scheduled by path too.
//
// A DirFS is safe for concurrent use; the chaos properties drive it
// from many goroutines under -race.
type DirFS struct {
	mu    sync.Mutex
	rules []*Rule
}

// NewDirFS builds a DirFS with an initial rule set (which may be
// empty; rules can be added later with AddRule).
func NewDirFS(rules ...*Rule) *DirFS {
	return &DirFS{rules: rules}
}

// AddRule arms an additional rule.
func (d *DirFS) AddRule(r *Rule) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rules = append(d.rules, r)
}

// ClearRules disarms every rule (in-flight state is discarded): the
// DirFS becomes a transparent passthrough — the "space came back" /
// "disk healed" transition in the recovery tests.
func (d *DirFS) ClearRules() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rules = nil
}

// Fired reports how many faults have been injected in total — the
// chaos sweep uses it to assert a scheduled fault actually landed.
func (d *DirFS) Fired() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, r := range d.rules {
		n += r.fired
	}
	return n
}

// check consults the rule table for (op, path); a firing rule returns
// its error (never nil) plus, for writes, the partial byte count.
func (d *DirFS) check(op FaultOp, path string) (error, int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, r := range d.rules {
		if r.Op != op || !strings.Contains(path, r.PathContains) {
			continue
		}
		r.calls++
		if r.At != 0 && r.calls < r.At {
			continue
		}
		if r.Times != 0 && r.fired >= r.Times {
			continue
		}
		r.fired++
		err := r.Err
		if err == nil {
			if op == OpSync || op == OpSyncDir {
				err = ErrInjectedSync
			} else {
				err = ErrInjectedWrite
			}
		}
		return &os.PathError{Op: string(op), Path: path, Err: err}, r.Partial
	}
	return nil, 0
}

// OpenAppend implements vfs.FS.
func (d *DirFS) OpenAppend(name string, create bool) (vfs.File, error) {
	if err, _ := d.check(OpOpen, name); err != nil {
		return nil, err
	}
	f, err := vfs.OS.OpenAppend(name, create)
	if err != nil {
		return nil, err
	}
	return &dirFile{fs: d, f: f, name: name}, nil
}

// CreateTemp implements vfs.FS.
func (d *DirFS) CreateTemp(dir, pattern string) (vfs.TempFile, error) {
	if err, _ := d.check(OpCreateTemp, dir+"/"+pattern); err != nil {
		return nil, err
	}
	f, err := vfs.OS.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &dirTempFile{dirFile{fs: d, f: f, name: f.Name()}, f.Name()}, nil
}

// ReadFile implements vfs.FS.
func (d *DirFS) ReadFile(name string) ([]byte, error) {
	if err, _ := d.check(OpRead, name); err != nil {
		return nil, err
	}
	return vfs.OS.ReadFile(name)
}

// WriteFile implements vfs.FS. Faults schedule under OpWrite; Partial
// leaves a torn file behind, as a crash mid-write would.
func (d *DirFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	if err, partial := d.check(OpWrite, name); err != nil {
		if partial > 0 {
			if partial > len(data) {
				partial = len(data)
			}
			_ = vfs.OS.WriteFile(name, data[:partial], perm)
		}
		return err
	}
	return vfs.OS.WriteFile(name, data, perm)
}

// ReadDir implements vfs.FS.
func (d *DirFS) ReadDir(name string) ([]os.DirEntry, error) {
	if err, _ := d.check(OpReadDir, name); err != nil {
		return nil, err
	}
	return vfs.OS.ReadDir(name)
}

// Stat implements vfs.FS (never faulted: existence probes are not a
// useful fault surface — the interesting failures are on the data
// path).
func (d *DirFS) Stat(name string) (os.FileInfo, error) { return vfs.OS.Stat(name) }

// Rename implements vfs.FS; rules match the destination path.
func (d *DirFS) Rename(oldpath, newpath string) error {
	if err, _ := d.check(OpRename, newpath); err != nil {
		return err
	}
	return vfs.OS.Rename(oldpath, newpath)
}

// Remove implements vfs.FS.
func (d *DirFS) Remove(name string) error {
	if err, _ := d.check(OpRemove, name); err != nil {
		return err
	}
	return vfs.OS.Remove(name)
}

// Truncate implements vfs.FS.
func (d *DirFS) Truncate(name string, size int64) error {
	if err, _ := d.check(OpTruncate, name); err != nil {
		return err
	}
	return vfs.OS.Truncate(name, size)
}

// MkdirAll implements vfs.FS (never faulted; directory creation
// happens before any state exists to lose).
func (d *DirFS) MkdirAll(name string, perm os.FileMode) error {
	return vfs.OS.MkdirAll(name, perm)
}

// SyncDir implements vfs.FS.
func (d *DirFS) SyncDir(dir string) error {
	if err, _ := d.check(OpSyncDir, dir); err != nil {
		return err
	}
	return vfs.OS.SyncDir(dir)
}

// dirFile routes Write and Sync back through the owning DirFS's rule
// table, keyed by the file's path.
type dirFile struct {
	fs   *DirFS
	f    vfs.File
	name string
}

func (df *dirFile) Write(p []byte) (int, error) {
	if err, partial := df.fs.check(OpWrite, df.name); err != nil {
		if partial > 0 {
			if partial > len(p) {
				partial = len(p)
			}
			if n, werr := df.f.Write(p[:partial]); werr != nil {
				return n, werr
			}
		}
		return 0, err
	}
	return df.f.Write(p)
}

func (df *dirFile) Sync() error {
	if err, _ := df.fs.check(OpSync, df.name); err != nil {
		return err
	}
	return df.f.Sync()
}

func (df *dirFile) Close() error { return df.f.Close() }

// dirTempFile adds the Name method vfs.TempFile requires.
type dirTempFile struct {
	dirFile
	tmpName string
}

func (dt *dirTempFile) Name() string { return dt.tmpName }

// String renders a rule for logs ("write@3 on *wal* -> input/output
// error"), so chaos sweeps can name the scenario that failed.
func (r *Rule) String() string {
	s := fmt.Sprintf("%s on %q", r.Op, "*"+r.PathContains+"*")
	if r.At != 0 {
		s = fmt.Sprintf("%s@%d", r.Op, r.At) + fmt.Sprintf(" on %q", "*"+r.PathContains+"*")
	}
	if r.Err != nil {
		s += " -> " + r.Err.Error()
	}
	if r.Partial > 0 {
		s += fmt.Sprintf(" (torn after %d bytes)", r.Partial)
	}
	return s
}
