package mtree

import (
	"math"

	"github.com/discdiversity/disc/internal/object"
)

// split divides an overflowed node into two, promotes two pivots to the
// parent and recurses upward if the parent overflows in turn.
func (t *Tree) split(n *node) {
	ents := n.entries
	p1, p2 := t.promote(n)

	var g1, g2 []entry
	switch t.cfg.Policy.Partition {
	case PartitionBalanced:
		g1, g2 = partitionBalanced(t, ents, p1, p2)
	default:
		g1, g2 = partitionClosest(t, ents, p1, p2)
	}

	n1 := &node{leaf: n.leaf, entries: g1, pivot: p1}
	n2 := &node{leaf: n.leaf, entries: g2, pivot: p2}
	r1 := t.finishNode(n1)
	r2 := t.finishNode(n2)
	n1.radius, n2.radius = r1, r2
	t.nodes++ // one node became two

	if n.leaf {
		// Replace n with n1, n2 in the leaf chain.
		n1.prev, n1.next = n.prev, n2
		n2.prev, n2.next = n1, n.next
		if n.prev != nil {
			n.prev.next = n1
		} else {
			t.firstLeaf = n1
		}
		if n.next != nil {
			n.next.prev = n2
		}
	}

	parent := n.parent
	if parent == nil {
		root := &node{
			leaf: false,
			entries: []entry{
				{pt: p1, id: -1, radius: r1, child: n1},
				{pt: p2, id: -1, radius: r2, child: n2},
			},
		}
		n1.parent, n2.parent = root, root
		t.root = root
		t.nodes++
		t.height++
		if t.tracking {
			root.whiteCount = n1.whiteCount + n2.whiteCount
		}
		return
	}

	idx := -1
	for i := range parent.entries {
		if parent.entries[i].child == n {
			idx = i
			break
		}
	}
	var dp1, dp2 float64
	if parent.pivot != nil {
		dp1 = t.cfg.Metric.Dist(parent.pivot, p1)
		dp2 = t.cfg.Metric.Dist(parent.pivot, p2)
	}
	n1.parent, n2.parent = parent, parent
	parent.entries[idx] = entry{pt: p1, id: -1, radius: r1, dparent: dp1, child: n1}
	parent.entries = append(parent.entries, entry{pt: p2, id: -1, radius: r2, dparent: dp2, child: n2})
	if len(parent.entries) > t.cfg.Capacity {
		t.split(parent)
	}
}

// finishNode recomputes per-entry parent distances, child back-pointers,
// object locators and white counts for a freshly partitioned node, and
// returns its covering radius.
func (t *Tree) finishNode(n *node) float64 {
	var radius float64
	white := 0
	for i := range n.entries {
		e := &n.entries[i]
		e.dparent = t.cfg.Metric.Dist(n.pivot, e.pt)
		if r := e.dparent + e.radius; r > radius {
			radius = r
		}
		if n.leaf {
			t.loc[e.id] = locator{leaf: n, idx: i}
			if t.tracking && t.white.Test(e.id) {
				white++
			}
		} else {
			e.child.parent = n
			if t.tracking {
				white += e.child.whiteCount
			}
		}
	}
	n.whiteCount = white
	return radius
}

// promote returns the two pivot points for splitting node n according to
// the configured promote policy.
func (t *Tree) promote(n *node) (p1, p2 object.Point) {
	ents := n.entries
	switch t.cfg.Policy.Promote {
	case PromoteMaxPair:
		bi, bj, best := 0, 1, -1.0
		for i := range ents {
			for j := i + 1; j < len(ents); j++ {
				if d := t.cfg.Metric.Dist(ents[i].pt, ents[j].pt); d > best {
					best, bi, bj = d, i, j
				}
			}
		}
		return ents[bi].pt, ents[bj].pt
	case PromoteRandom:
		i := t.rng.IntN(len(ents))
		j := t.rng.IntN(len(ents) - 1)
		if j >= i {
			j++
		}
		return ents[i].pt, ents[j].pt
	default: // PromoteKeepFarthest ("MinOverlap")
		p1 = n.pivot
		if p1 == nil {
			p1 = ents[0].pt
		}
		far, best := 0, -1.0
		for i := range ents {
			if d := t.cfg.Metric.Dist(p1, ents[i].pt); d > best {
				best, far = d, i
			}
		}
		return p1, ents[far].pt
	}
}

// partitionClosest assigns each entry to its closest pivot, guaranteeing
// neither side is empty.
func partitionClosest(t *Tree, ents []entry, p1, p2 object.Point) (g1, g2 []entry) {
	for _, e := range ents {
		d1 := t.cfg.Metric.Dist(p1, e.pt)
		d2 := t.cfg.Metric.Dist(p2, e.pt)
		if d1 <= d2 {
			g1 = append(g1, e)
		} else {
			g2 = append(g2, e)
		}
	}
	if len(g1) == 0 {
		g1, g2 = rebalanceOne(t, g2, g1, p1)
		g1, g2 = g2, g1
	} else if len(g2) == 0 {
		g2, g1 = rebalanceOne(t, g1, g2, p2)
		g2, g1 = g1, g2
	}
	return g1, g2
}

// rebalanceOne moves the entry of src closest to pivot into dst (which is
// empty) and returns (src', dst').
func rebalanceOne(t *Tree, src, dst []entry, pivot object.Point) ([]entry, []entry) {
	best, bestDist := 0, math.Inf(1)
	for i, e := range src {
		if d := t.cfg.Metric.Dist(pivot, e.pt); d < bestDist {
			best, bestDist = i, d
		}
	}
	dst = append(dst, src[best])
	src = append(src[:best], src[best+1:]...)
	return src, dst
}

// partitionBalanced alternately gives each pivot its closest remaining
// entry, producing equally sized nodes (a higher-overlap policy used to
// vary the fat-factor in Figure 10).
func partitionBalanced(t *Tree, ents []entry, p1, p2 object.Point) (g1, g2 []entry) {
	type cand struct {
		e      entry
		d1, d2 float64
	}
	rest := make([]cand, 0, len(ents))
	for _, e := range ents {
		rest = append(rest, cand{e, t.cfg.Metric.Dist(p1, e.pt), t.cfg.Metric.Dist(p2, e.pt)})
	}
	takeClosest := func(first bool) {
		best, bestDist := -1, math.Inf(1)
		for i, c := range rest {
			d := c.d1
			if !first {
				d = c.d2
			}
			if d < bestDist {
				best, bestDist = i, d
			}
		}
		if first {
			g1 = append(g1, rest[best].e)
		} else {
			g2 = append(g2, rest[best].e)
		}
		rest = append(rest[:best], rest[best+1:]...)
	}
	for turn := 0; len(rest) > 0; turn++ {
		takeClosest(turn%2 == 0)
	}
	return g1, g2
}
