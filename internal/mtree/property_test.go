package mtree

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/discdiversity/disc/internal/object"
)

// TestRangeQueryQuickProperty: for random tree configurations, query
// centres and radii, the range query must match brute force exactly.
// This is the load-bearing invariant of the whole reproduction — every
// algorithm result depends on it.
func TestRangeQueryQuickProperty(t *testing.T) {
	pts := randomPoints(250, 2, 101)
	m := object.Euclidean{}
	trees := make(map[int]*Tree)
	for _, capacity := range []int{4, 9, 30} {
		tr := buildTestTree(t, Config{Capacity: capacity, Metric: m, Policy: MinOverlap}, pts)
		trees[capacity] = tr
	}
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed))
		id := rng.IntN(len(pts))
		r := rng.Float64() * 0.6
		want := bruteNeighbors(pts, m, pts[id], r, id)
		for _, tr := range trees {
			if !equalIDs(neighborIDs(tr.RangeQueryAround(id, r)), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestIncrementalInsertQueryInterleaving: queries must stay exact while
// the tree grows, including right after splits.
func TestIncrementalInsertQueryInterleaving(t *testing.T) {
	pts := randomPoints(500, 2, 102)
	m := object.Euclidean{}
	tr, err := New(Config{Capacity: 5, Metric: m, Policy: MinOverlap}, pts)
	if err != nil {
		t.Fatal(err)
	}
	inserted := make(map[int]bool)
	rng := rand.New(rand.NewPCG(11, 11))
	for id := range pts {
		if err := tr.Insert(id); err != nil {
			t.Fatal(err)
		}
		inserted[id] = true
		if id%37 != 0 {
			continue
		}
		q := object.Point{rng.Float64(), rng.Float64()}
		r := 0.1 + rng.Float64()*0.3
		got := neighborIDs(tr.RangeQuery(q, r))
		var want []int
		for j := range pts {
			if inserted[j] && m.Dist(q, pts[j]) <= r {
				want = append(want, j)
			}
		}
		if !equalIDs(got, want) {
			t.Fatalf("after %d inserts: got %d want %d results", id+1, len(got), len(want))
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestAddGrowsUniverse: the streaming Add API assigns dense ids and keeps
// queries exact.
func TestAddGrowsUniverse(t *testing.T) {
	tr, err := New(DefaultConfig(object.Euclidean{}), nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(12, 12))
	var pts []object.Point
	for i := 0; i < 300; i++ {
		p := object.Point{rng.Float64(), rng.Float64()}
		id, err := tr.Add(p)
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Fatalf("id %d, want %d", id, i)
		}
		pts = append(pts, p)
	}
	got := neighborIDs(tr.RangeQuery(object.Point{0.5, 0.5}, 0.2))
	want := bruteNeighbors(pts, object.Euclidean{}, object.Point{0.5, 0.5}, 0.2, -1)
	if !equalIDs(got, want) {
		t.Fatalf("got %d want %d results", len(got), len(want))
	}
	if _, err := tr.Add(object.Point{1, 2, 3}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

// TestLeafChainAfterHeavySplitting: the leaf chain must remain a
// consistent doubly linked list spanning all objects no matter how many
// splits occur.
func TestLeafChainAfterHeavySplitting(t *testing.T) {
	pts := randomPoints(1000, 2, 103)
	tr := buildTestTree(t, Config{Capacity: 4, Metric: object.Euclidean{}, Policy: MinOverlap}, pts)
	// Walk forward, collect, then verify backward links.
	var leaves []*node
	for l := tr.firstLeaf; l != nil; l = l.next {
		leaves = append(leaves, l)
	}
	count := 0
	for i, l := range leaves {
		count += len(l.entries)
		if i > 0 && l.prev != leaves[i-1] {
			t.Fatalf("leaf %d: broken prev pointer", i)
		}
		if !l.leaf {
			t.Fatalf("leaf chain contains internal node")
		}
	}
	if count != len(pts) {
		t.Fatalf("leaf chain spans %d objects, want %d", count, len(pts))
	}
}

// TestBottomUpPrunedQuery: the combined bottom-up + pruned query (used by
// Fast-C) must, without the grey-stop, return exactly the white subset of
// the brute-force neighbourhood.
func TestBottomUpPrunedQuery(t *testing.T) {
	pts := randomPoints(400, 2, 105)
	m := object.Euclidean{}
	tr := buildTestTree(t, Config{Capacity: 6, Metric: m, Policy: MinOverlap}, pts)
	tr.EnableTracking()
	rng := rand.New(rand.NewPCG(3, 3))
	for id := range pts {
		if rng.Float64() < 0.5 {
			tr.Cover(id)
		}
	}
	for trial := 0; trial < 25; trial++ {
		id := rng.IntN(len(pts))
		r := rng.Float64() * 0.3
		got := neighborIDs(tr.RangeQueryBottomUp(id, r, false, true))
		var want []int
		for _, w := range bruteNeighbors(pts, m, pts[id], r, id) {
			if tr.IsWhite(w) {
				want = append(want, w)
			}
		}
		if !equalIDs(got, want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
	// With the grey-stop the result must be a subset of the full one.
	for trial := 0; trial < 25; trial++ {
		id := rng.IntN(len(pts))
		r := rng.Float64() * 0.3
		full := map[int]bool{}
		for _, nb := range tr.RangeQueryAround(id, r) {
			full[nb.ID] = true
		}
		for _, nb := range tr.RangeQueryBottomUp(id, r, true, false) {
			if !full[nb.ID] {
				t.Fatalf("grey-stop query returned non-neighbour %d", nb.ID)
			}
		}
	}
}

// TestValidateDetectsCorruption: the validator must notice when an
// invariant is deliberately broken.
func TestValidateDetectsCorruption(t *testing.T) {
	pts := randomPoints(300, 2, 104)
	tr := buildTestTree(t, Config{Capacity: 8, Metric: object.Euclidean{}, Policy: MinOverlap}, pts)
	if tr.root.leaf {
		t.Skip("tree too small")
	}
	// Shrink a covering radius illegally.
	tr.root.entries[0].radius = 0
	if err := tr.Validate(); err == nil {
		t.Error("corrupted covering radius not detected")
	}
}
