package mtree

import "fmt"

// FatFactor computes the overlap measure of Traina et al. ("Slim-trees",
// TKDE 2002) used by the paper's Figure 10:
//
//	f(T) = (Z - n*h) / (n * (m - h))
//
// where Z is the total number of node accesses needed to answer a point
// query for every indexed object, n the number of objects, h the tree
// height and m the node count. An overlap-free tree visits exactly h nodes
// per point query (f = 0); the worst tree visits all m nodes (f = 1).
//
// The accesses performed by the measurement itself are not charged to the
// tree's access counter.
func (t *Tree) FatFactor() float64 {
	if t.size == 0 {
		return 0
	}
	n := float64(t.size)
	h := float64(t.height)
	m := float64(t.nodes)
	if m <= h {
		return 0
	}
	var z float64
	for id := range t.pts {
		if t.loc[id].leaf == nil {
			continue
		}
		z += float64(t.pointQueryAccesses(id))
	}
	f := (z - n*h) / (n * (m - h))
	if f < 0 {
		return 0
	}
	return f
}

// pointQueryAccesses counts the nodes whose region contains the point of
// object id — the cost of a point query that must find the object under
// arbitrary overlap.
func (t *Tree) pointQueryAccesses(id int) int64 {
	q := t.pts[id]
	var visits int64
	var walk func(n *node)
	walk = func(n *node) {
		visits++
		if n.leaf {
			return
		}
		for i := range n.entries {
			e := &n.entries[i]
			if t.cfg.Metric.Dist(q, e.pt) <= e.radius {
				walk(e.child)
			}
		}
	}
	walk(t.root)
	return visits
}

// Validate checks the structural invariants of the tree: covering radii
// contain all descendants, parent distances are correct, the leaf chain
// visits every object exactly once, and locators point at the right slots.
// It returns the first violation found, or nil. Intended for tests.
func (t *Tree) Validate() error {
	return t.validateNode(t.root, nil)
}

type validationError struct{ msg string }

func (e *validationError) Error() string { return "mtree: invalid tree: " + e.msg }

func errf(format string, args ...any) error {
	return &validationError{msg: fmt.Sprintf(format, args...)}
}

func (t *Tree) validateNode(n *node, pivot []float64) error {
	for i := range n.entries {
		e := &n.entries[i]
		if pivot != nil {
			want := t.cfg.Metric.Dist(pivot, e.pt)
			if diff := want - e.dparent; diff > 1e-9 || diff < -1e-9 {
				return errf("entry %d: dparent %g, want %g", i, e.dparent, want)
			}
		}
		if n.leaf {
			if e.child != nil {
				return errf("leaf entry %d has child", i)
			}
			if loc := t.loc[e.id]; loc.leaf != n || loc.idx != i {
				return errf("object %d locator mismatch", e.id)
			}
			continue
		}
		if e.child == nil {
			return errf("routing entry %d has nil child", i)
		}
		if e.child.parent != n {
			return errf("routing entry %d: child parent pointer broken", i)
		}
		if !pointsEqual(e.child.pivot, e.pt) {
			return errf("routing entry %d: child pivot mismatch", i)
		}
		if err := t.checkRadius(e); err != nil {
			return err
		}
		if err := t.validateNode(e.child, e.pt); err != nil {
			return err
		}
	}
	return nil
}

// checkRadius verifies that every object under e.child lies within
// e.radius of e.pt.
func (t *Tree) checkRadius(e *entry) error {
	var walk func(n *node) error
	walk = func(n *node) error {
		if n.leaf {
			for i := range n.entries {
				if d := t.cfg.Metric.Dist(e.pt, n.entries[i].pt); d > e.radius+1e-9 {
					return errf("object %d at distance %g outside covering radius %g", n.entries[i].id, d, e.radius)
				}
			}
			return nil
		}
		for i := range n.entries {
			if err := walk(n.entries[i].child); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(e.child)
}

func pointsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
