// Package mtree implements the M-tree, the balanced metric-space index the
// paper uses to accelerate neighbourhood (range) queries (Zezula et al.,
// "Similarity Search - The Metric Space Approach").
//
// The tree partitions space around pivot objects with bounding-ball
// regions. Internal entries carry a pivot, a covering radius and the
// distance to their parent pivot; leaf entries carry indexed objects.
// Beyond the textbook structure, this implementation provides everything
// Section 5 of the paper relies on:
//
//   - configurable splitting policies (promote x partition), including the
//     paper's low-overlap "MinOverlap" policy;
//   - a doubly linked chain of leaves enabling a locality-preserving
//     left-to-right scan of all objects;
//   - top-down and bottom-up range queries with node-access accounting;
//   - the "pruning rule": subtrees containing no white (uncovered) objects
//     are skipped by range queries, via per-node white counters;
//   - the fat-factor overlap measure of Traina et al. used by Figure 10.
package mtree

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/discdiversity/disc/internal/bitset"
	"github.com/discdiversity/disc/internal/object"
)

// PromotePolicy selects the two pivots promoted to the parent node when a
// node overflows.
type PromotePolicy int

const (
	// PromoteKeepFarthest keeps the overflowed node's current pivot and
	// promotes the entry farthest from it. Combined with
	// PartitionClosest this is the paper's "MinOverlap" policy, which
	// produced the lowest fat-factors in its experiments.
	PromoteKeepFarthest PromotePolicy = iota
	// PromoteMaxPair promotes the two entries with the greatest distance
	// from each other (O(c^2) distance computations).
	PromoteMaxPair
	// PromoteRandom promotes two distinct entries chosen uniformly at
	// random; the paper uses it to build deliberately bad (high
	// fat-factor) trees.
	PromoteRandom
)

// String implements fmt.Stringer.
func (p PromotePolicy) String() string {
	switch p {
	case PromoteKeepFarthest:
		return "keep-farthest"
	case PromoteMaxPair:
		return "max-pair"
	case PromoteRandom:
		return "random"
	default:
		return fmt.Sprintf("promote(%d)", int(p))
	}
}

// PartitionPolicy distributes the entries of an overflowed node between
// the two new nodes.
type PartitionPolicy int

const (
	// PartitionClosest assigns every entry to the promoted pivot closest
	// to it (part of "MinOverlap").
	PartitionClosest PartitionPolicy = iota
	// PartitionBalanced alternately assigns each pivot its closest
	// remaining entry so both nodes end up with equal counts; this
	// raises overlap and therefore the fat-factor.
	PartitionBalanced
)

// String implements fmt.Stringer.
func (p PartitionPolicy) String() string {
	switch p {
	case PartitionClosest:
		return "closest"
	case PartitionBalanced:
		return "balanced"
	default:
		return fmt.Sprintf("partition(%d)", int(p))
	}
}

// SplitPolicy combines a promote and a partition policy.
type SplitPolicy struct {
	Promote   PromotePolicy
	Partition PartitionPolicy
}

// MinOverlap is the paper's default policy: keep the old pivot, promote
// the farthest entry, assign entries to the closest pivot.
var MinOverlap = SplitPolicy{PromoteKeepFarthest, PartitionClosest}

// String implements fmt.Stringer.
func (p SplitPolicy) String() string {
	return p.Promote.String() + "/" + p.Partition.String()
}

// Config controls tree construction.
type Config struct {
	// Capacity is the maximum number of entries per node (paper default:
	// 50, range 25-100). Minimum accepted value is 4.
	Capacity int
	// Metric is the distance function; it must satisfy the triangle
	// inequality for range queries to be exact.
	Metric object.Metric
	// Policy is the node splitting policy.
	Policy SplitPolicy
	// Seed drives PromoteRandom; ignored by deterministic policies.
	Seed uint64
}

// DefaultConfig mirrors the paper's Table 2 defaults.
func DefaultConfig(m object.Metric) Config {
	return Config{Capacity: 50, Metric: m, Policy: MinOverlap}
}

type entry struct {
	pt      object.Point
	id      int     // object id for leaf entries; -1 for routing entries
	radius  float64 // covering radius (routing entries only)
	dparent float64 // distance from pt to the parent node's pivot
	child   *node   // subtree (routing entries only)
}

type node struct {
	parent *node
	// pivot is the point of the routing entry pointing at this node
	// (nil for the root). It is kept here to make the distance-to-parent
	// pruning test cheap during descent.
	pivot object.Point
	// radius mirrors the covering radius of the routing entry pointing
	// at this node (meaningless for the root); bottom-up queries use it
	// to decide whether a query ball is fully inside the node's region.
	radius     float64
	leaf       bool
	entries    []entry
	prev, next *node // leaf chain (leaves only)
	// whiteCount is the number of white (uncovered) objects below this
	// node; maintained only while coverage tracking is enabled.
	whiteCount int
}

type locator struct {
	leaf *node
	idx  int
}

// Tree is a dynamic M-tree over a fixed universe of object IDs.
// It is not safe for concurrent mutation; concurrent read-only queries are
// safe only if access accounting is not needed.
type Tree struct {
	cfg       Config
	root      *node
	firstLeaf *node
	size      int
	nodes     int
	height    int
	accesses  int64
	loc       []locator // object id -> leaf position
	pts       []object.Point
	rng       *rand.Rand
	tracking  bool       // coverage (white-count) tracking enabled
	white     bitset.Set // per-object uncovered flag (tracking only)
	// kern is the distance kernel compiled once the dimensionality is
	// known (at New for a non-empty universe, at the first Add
	// otherwise); query paths use it instead of Metric interface
	// dispatch.
	kern object.Kernel
}

// New creates an empty tree. The points slice provides the universe of
// objects; Insert adds them (by id) to the index. Points must outlive the
// tree and must not be mutated.
func New(cfg Config, pts []object.Point) (*Tree, error) {
	if cfg.Capacity < 4 {
		return nil, fmt.Errorf("mtree: capacity %d below minimum 4", cfg.Capacity)
	}
	if cfg.Metric == nil {
		return nil, fmt.Errorf("mtree: nil metric")
	}
	if !object.TriangleSafe(cfg.Metric) {
		// Every routing decision is a triangle-inequality bound; a
		// non-metric distance would silently drop true neighbours.
		return nil, fmt.Errorf("mtree: metric %q violates the triangle inequality", cfg.Metric.Name())
	}
	if len(pts) > 0 {
		if _, err := object.ValidatePoints(pts); err != nil {
			return nil, fmt.Errorf("mtree: %w", err)
		}
	}
	root := &node{leaf: true}
	t := &Tree{
		cfg:       cfg,
		root:      root,
		firstLeaf: root,
		nodes:     1,
		height:    1,
		loc:       make([]locator, len(pts)),
		pts:       pts,
		rng:       rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
	}
	for i := range t.loc {
		t.loc[i].idx = -1
	}
	if len(pts) > 0 {
		t.kern = object.CompileKernel(cfg.Metric, len(pts[0]))
	}
	return t, nil
}

// Build constructs a tree over all points, inserting them in id order.
func Build(cfg Config, pts []object.Point) (*Tree, error) {
	t, err := New(cfg, pts)
	if err != nil {
		return nil, err
	}
	for id := range pts {
		if err := t.Insert(id); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return t.size }

// NodeCount returns the current number of tree nodes.
func (t *Tree) NodeCount() int { return t.nodes }

// Height returns the tree height (1 for a root-only tree).
func (t *Tree) Height() int { return t.height }

// Metric returns the tree's distance function.
func (t *Tree) Metric() object.Metric { return t.cfg.Metric }

// Point returns the coordinates of object id.
func (t *Tree) Point(id int) object.Point { return t.pts[id] }

// Accesses returns the number of node accesses performed since the last
// ResetAccesses, across inserts, queries and scans. This is the cost
// measure reported throughout the paper's evaluation.
func (t *Tree) Accesses() int64 { return t.accesses }

// ResetAccesses zeroes the node-access counter.
func (t *Tree) ResetAccesses() { t.accesses = 0 }

func (t *Tree) touch(*node) { t.accesses++ }

// Add appends a new point to the tree's universe and indexes it,
// returning its assigned id. It enables streaming use where the point set
// is not known up front. The tree grows its own copy of the universe; the
// original slice passed to New is never reallocated from under the
// caller.
func (t *Tree) Add(p object.Point) (int, error) {
	if len(t.pts) > 0 && len(p) != len(t.pts[0]) {
		return 0, fmt.Errorf("mtree: point dimension %d, want %d", len(p), len(t.pts[0]))
	}
	id := len(t.pts)
	t.pts = append(t.pts, p)
	t.loc = append(t.loc, locator{idx: -1})
	if !t.kern.Compiled() {
		t.kern = object.CompileKernel(t.cfg.Metric, len(p))
	}
	if t.tracking {
		t.white.Grow(len(t.pts)) // Insert marks it white
	}
	return id, t.Insert(id)
}

// Insert adds object id to the index.
func (t *Tree) Insert(id int) error {
	if id < 0 || id >= len(t.pts) {
		return fmt.Errorf("mtree: insert id %d out of range [0,%d)", id, len(t.pts))
	}
	if t.loc[id].leaf != nil {
		return fmt.Errorf("mtree: object %d already inserted", id)
	}
	p := t.pts[id]
	n := t.root
	t.touch(n)
	for !n.leaf {
		best := t.chooseSubtree(n, p)
		e := &n.entries[best]
		d := t.kern.Dist(e.pt, p)
		if d > e.radius {
			e.radius = d
			e.child.radius = d
		}
		n = e.child
		t.touch(n)
	}
	var dp float64
	if n.pivot != nil {
		dp = t.kern.Dist(n.pivot, p)
	}
	n.entries = append(n.entries, entry{pt: p, id: id, dparent: dp})
	t.loc[id] = locator{leaf: n, idx: len(n.entries) - 1}
	t.size++
	if t.tracking {
		t.white.Set(id)
		for m := n; m != nil; m = m.parent {
			m.whiteCount++
		}
	}
	if len(n.entries) > t.cfg.Capacity {
		t.split(n)
	}
	return nil
}

// chooseSubtree picks the routing entry to descend into: among entries
// whose ball already contains p, the closest pivot; otherwise the entry
// requiring the least radius enlargement.
func (t *Tree) chooseSubtree(n *node, p object.Point) int {
	bestIn, bestOut := -1, -1
	bestInDist, bestEnlarge := math.Inf(1), math.Inf(1)
	for i := range n.entries {
		e := &n.entries[i]
		d := t.kern.Dist(e.pt, p)
		if d <= e.radius {
			if d < bestInDist {
				bestInDist = d
				bestIn = i
			}
		} else if enl := d - e.radius; enl < bestEnlarge {
			bestEnlarge = enl
			bestOut = i
		}
	}
	if bestIn >= 0 {
		return bestIn
	}
	return bestOut
}
