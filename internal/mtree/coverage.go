package mtree

// Coverage tracking implements the paper's pruning rule (Section 5.1):
// once every object below a node is covered (grey or black), the node is
// "grey" and range queries skip it. The tree maintains a per-node count of
// white (uncovered) objects, decremented along the leaf-to-root path each
// time an object is covered. The per-object white flags live in a packed
// bitset (internal/bitset), 8x denser than the former []bool, so the
// per-entry white tests inside leaf scans stay cache-resident.

// EnableTracking switches coverage tracking on with every inserted object
// white. Subsequent inserts are counted as white automatically.
func (t *Tree) EnableTracking() {
	t.white.Reset(len(t.pts))
	for id := range t.pts {
		if t.loc[id].leaf != nil {
			t.white.Set(id)
		}
	}
	t.tracking = true
	t.recountWhite(t.root)
}

// ResetTracking re-initialises coverage tracking with the given white set
// (whiteIDs[id] == true means uncovered). Used by the zooming algorithms,
// which restart from a partially covered state.
func (t *Tree) ResetTracking(white []bool) {
	t.white.Reset(len(t.pts))
	for id := range white {
		if white[id] && t.loc[id].leaf != nil {
			t.white.Set(id)
		}
	}
	t.tracking = true
	t.recountWhite(t.root)
}

func (t *Tree) recountWhite(n *node) int {
	c := 0
	if n.leaf {
		for i := range n.entries {
			if t.white.Test(n.entries[i].id) {
				c++
			}
		}
	} else {
		for i := range n.entries {
			c += t.recountWhite(n.entries[i].child)
		}
	}
	n.whiteCount = c
	return c
}

// Tracking reports whether coverage tracking is enabled.
func (t *Tree) Tracking() bool { return t.tracking }

// IsWhite reports whether object id is still uncovered. It is meaningful
// only while tracking is enabled.
func (t *Tree) IsWhite(id int) bool { return t.tracking && t.white.Test(id) }

// Cover marks object id as covered (grey or black), decrementing white
// counts up the tree so the pruning rule can take effect. Covering an
// already covered object is a no-op.
func (t *Tree) Cover(id int) {
	if !t.tracking || !t.white.Test(id) {
		return
	}
	t.white.Clear(id)
	for n := t.loc[id].leaf; n != nil; n = n.parent {
		n.whiteCount--
	}
}

// WhiteCount returns the number of uncovered objects in the whole tree.
func (t *Tree) WhiteCount() int {
	if !t.tracking {
		return t.size
	}
	return t.root.whiteCount
}
