package mtree

import (
	"math"

	"github.com/discdiversity/disc/internal/object"
)

// queryOpts bundles the variations of a range query.
type queryOpts struct {
	// pruned skips subtrees with no white objects (the paper's pruning
	// rule) and reports only white objects. Requires coverage tracking.
	pruned bool
	// exclude is an object id omitted from the result (-1 for none);
	// range queries around an object must not report the object itself.
	exclude int
}

// RangeQuery returns all objects within distance r of q, with their
// distances, in ascending id order is NOT guaranteed; callers that need
// determinism must sort. Every visited node counts as one access.
func (t *Tree) RangeQuery(q object.Point, r float64) []object.Neighbor {
	return t.rangeSearch(q, r, queryOpts{exclude: -1})
}

// RangeQueryAround returns the neighbours of object id within distance r,
// excluding the object itself.
func (t *Tree) RangeQueryAround(id int, r float64) []object.Neighbor {
	return t.rangeSearch(t.pts[id], r, queryOpts{exclude: id})
}

// RangeQueryPruned behaves like RangeQueryAround but applies the paper's
// pruning rule: subtrees without white objects are skipped entirely and
// only white objects are reported. Coverage tracking must be enabled.
func (t *Tree) RangeQueryPruned(id int, r float64) []object.Neighbor {
	t.requireTracking()
	return t.rangeSearch(t.pts[id], r, queryOpts{pruned: true, exclude: id})
}

// RangeQueryPointPruned is the pruned range query for an arbitrary centre.
func (t *Tree) RangeQueryPointPruned(q object.Point, r float64) []object.Neighbor {
	t.requireTracking()
	return t.rangeSearch(q, r, queryOpts{pruned: true, exclude: -1})
}

func (t *Tree) requireTracking() {
	if !t.tracking {
		panic("mtree: pruned query requires coverage tracking (EnableTracking)")
	}
}

func (t *Tree) rangeSearch(q object.Point, r float64, opts queryOpts) []object.Neighbor {
	var out []object.Neighbor
	t.searchNode(t.root, q, r, math.NaN(), opts, &out)
	return out
}

// searchNode processes one node. dqParent is the precomputed distance from
// q to the node's pivot (NaN when unknown, e.g. at the root), enabling the
// triangle-inequality shortcut on each entry's stored parent distance.
func (t *Tree) searchNode(n *node, q object.Point, r float64, dqParent float64, opts queryOpts, out *[]object.Neighbor) {
	t.touch(n)
	cheap := !math.IsNaN(dqParent)
	for i := range n.entries {
		e := &n.entries[i]
		if n.leaf {
			if opts.pruned && !t.white[e.id] {
				continue
			}
			if e.id == opts.exclude {
				continue
			}
			if cheap && math.Abs(dqParent-e.dparent) > r {
				continue
			}
			if d := t.cfg.Metric.Dist(q, e.pt); d <= r {
				*out = append(*out, object.Neighbor{ID: e.id, Dist: d})
			}
			continue
		}
		if opts.pruned && e.child.whiteCount == 0 {
			continue
		}
		if cheap && math.Abs(dqParent-e.dparent) > r+e.radius {
			continue
		}
		if d := t.cfg.Metric.Dist(q, e.pt); d <= r+e.radius {
			t.searchNode(e.child, q, r, d, opts, out)
		}
	}
}

// RangeQueryBottomUp answers a range query around object id by starting at
// the object's leaf and climbing towards the root, searching sibling
// subtrees at each level. With stopAtGrey set the climb stops at the first
// grey (fully covered) ancestor, which is the approximate query used by
// the Fast-C heuristic: it may miss neighbours stored in distant leaves.
func (t *Tree) RangeQueryBottomUp(id int, r float64, stopAtGrey, pruned bool) []object.Neighbor {
	if pruned {
		t.requireTracking()
	}
	opts := queryOpts{pruned: pruned, exclude: id}
	q := t.pts[id]
	cur := t.loc[id].leaf
	var out []object.Neighbor
	var dqp float64 = math.NaN()
	if cur.pivot != nil {
		dqp = t.cfg.Metric.Dist(q, cur.pivot)
	}
	t.searchLeafOnly(cur, q, r, dqp, opts, &out)
	for cur.parent != nil {
		parent := cur.parent
		// Fast-C's early stop: once an ancestor is grey (no white
		// objects below it) and its region already contains the whole
		// query ball, climbing further can only find objects stored in
		// overlapping siblings — rare in a low-overlap tree — so the
		// search ends here. The containment guard keeps the
		// approximation from collapsing for query balls much larger
		// than the local regions.
		if stopAtGrey && t.tracking && parent.whiteCount == 0 &&
			parent.pivot != nil && t.cfg.Metric.Dist(q, parent.pivot)+r <= parent.radius {
			break
		}
		t.touch(parent)
		var dqParent float64 = math.NaN()
		if parent.pivot != nil {
			dqParent = t.cfg.Metric.Dist(q, parent.pivot)
		}
		cheap := !math.IsNaN(dqParent)
		for i := range parent.entries {
			e := &parent.entries[i]
			if e.child == cur {
				continue
			}
			if opts.pruned && e.child.whiteCount == 0 {
				continue
			}
			if cheap && math.Abs(dqParent-e.dparent) > r+e.radius {
				continue
			}
			if d := t.cfg.Metric.Dist(q, e.pt); d <= r+e.radius {
				t.searchNode(e.child, q, r, d, opts, &out)
			}
		}
		cur = parent
	}
	return out
}

// searchLeafOnly scans the entries of a single leaf without recursion.
func (t *Tree) searchLeafOnly(n *node, q object.Point, r float64, dqParent float64, opts queryOpts, out *[]object.Neighbor) {
	t.touch(n)
	cheap := !math.IsNaN(dqParent)
	for i := range n.entries {
		e := &n.entries[i]
		if opts.pruned && !t.white[e.id] {
			continue
		}
		if e.id == opts.exclude {
			continue
		}
		if cheap && math.Abs(dqParent-e.dparent) > r {
			continue
		}
		if d := t.cfg.Metric.Dist(q, e.pt); d <= r {
			*out = append(*out, object.Neighbor{ID: e.id, Dist: d})
		}
	}
}

// ScanIDs returns all object ids in leaf-chain (left-to-right) order, the
// locality-preserving order Basic-DisC processes objects in. Each leaf
// visited counts as one node access.
func (t *Tree) ScanIDs() []int {
	ids := make([]int, 0, t.size)
	for l := t.firstLeaf; l != nil; l = l.next {
		t.touch(l)
		for i := range l.entries {
			ids = append(ids, l.entries[i].id)
		}
	}
	return ids
}

// LeafOrderIndex returns, for every object id, its rank in the leaf scan
// order. No accesses are charged; this is derived bookkeeping.
func (t *Tree) LeafOrderIndex() []int {
	rank := make([]int, len(t.pts))
	pos := 0
	for l := t.firstLeaf; l != nil; l = l.next {
		for i := range l.entries {
			rank[l.entries[i].id] = pos
			pos++
		}
	}
	return rank
}
