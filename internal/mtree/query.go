package mtree

import (
	"math"

	"github.com/discdiversity/disc/internal/object"
)

// queryOpts bundles the variations of a range query.
type queryOpts struct {
	// pruned skips subtrees with no white objects (the paper's pruning
	// rule) and reports only white objects. Requires coverage tracking.
	pruned bool
	// exclude is an object id omitted from the result (-1 for none);
	// range queries around an object must not report the object itself.
	exclude int
}

// All query distance work goes through the tree's compiled kernel
// (object.Kernel): routing decisions need the true distance (it feeds
// the triangle-inequality bounds), while leaf entries are filtered on
// the surrogate distance against a widened threshold so that misses
// never pay the Euclidean square root. Results are bit-identical to
// evaluating the Metric interface directly.
//
// Every query has an Append* form that extends a caller-owned buffer and
// performs no allocation when the buffer has capacity; the plain forms
// are Append* with a nil buffer.

// RangeQuery returns all objects within distance r of q, with their
// distances, in ascending id order is NOT guaranteed; callers that need
// determinism must sort. Every visited node counts as one access.
func (t *Tree) RangeQuery(q object.Point, r float64) []object.Neighbor {
	return t.AppendRangeQuery(nil, q, r)
}

// AppendRangeQuery is the buffer-reusing form of RangeQuery.
func (t *Tree) AppendRangeQuery(dst []object.Neighbor, q object.Point, r float64) []object.Neighbor {
	return t.rangeSearch(dst, q, r, queryOpts{exclude: -1})
}

// RangeQueryAround returns the neighbours of object id within distance r,
// excluding the object itself.
func (t *Tree) RangeQueryAround(id int, r float64) []object.Neighbor {
	return t.AppendRangeQueryAround(nil, id, r)
}

// AppendRangeQueryAround is the buffer-reusing form of RangeQueryAround.
func (t *Tree) AppendRangeQueryAround(dst []object.Neighbor, id int, r float64) []object.Neighbor {
	return t.rangeSearch(dst, t.pts[id], r, queryOpts{exclude: id})
}

// RangeQueryPruned behaves like RangeQueryAround but applies the paper's
// pruning rule: subtrees without white objects are skipped entirely and
// only white objects are reported. Coverage tracking must be enabled.
func (t *Tree) RangeQueryPruned(id int, r float64) []object.Neighbor {
	return t.AppendRangeQueryPruned(nil, id, r)
}

// AppendRangeQueryPruned is the buffer-reusing form of RangeQueryPruned.
func (t *Tree) AppendRangeQueryPruned(dst []object.Neighbor, id int, r float64) []object.Neighbor {
	t.requireTracking()
	return t.rangeSearch(dst, t.pts[id], r, queryOpts{pruned: true, exclude: id})
}

// RangeQueryPointPruned is the pruned range query for an arbitrary centre.
func (t *Tree) RangeQueryPointPruned(q object.Point, r float64) []object.Neighbor {
	t.requireTracking()
	return t.rangeSearch(nil, q, r, queryOpts{pruned: true, exclude: -1})
}

func (t *Tree) requireTracking() {
	if !t.tracking {
		panic("mtree: pruned query requires coverage tracking (EnableTracking)")
	}
}

func (t *Tree) rangeSearch(dst []object.Neighbor, q object.Point, r float64, opts queryOpts) []object.Neighbor {
	return t.searchNode(t.root, q, r, t.kern.RawThreshold(r), math.NaN(), opts, dst)
}

// searchNode processes one node. dqParent is the precomputed distance from
// q to the node's pivot (NaN when unknown, e.g. at the root), enabling the
// triangle-inequality shortcut on each entry's stored parent distance.
// rawR is the query radius on the kernel's surrogate scale.
func (t *Tree) searchNode(n *node, q object.Point, r, rawR float64, dqParent float64, opts queryOpts, dst []object.Neighbor) []object.Neighbor {
	t.touch(n)
	cheap := !math.IsNaN(dqParent)
	for i := range n.entries {
		e := &n.entries[i]
		if n.leaf {
			if opts.pruned && !t.white.Test(e.id) {
				continue
			}
			if e.id == opts.exclude {
				continue
			}
			if cheap && math.Abs(dqParent-e.dparent) > r {
				continue
			}
			// Fused threshold test (early exit at high dim); the raw
			// recomputation on the rare survivors is bit-identical.
			if t.kern.Within(q, e.pt, rawR) {
				if d := t.kern.Finish(t.kern.Raw(q, e.pt)); d <= r {
					dst = append(dst, object.Neighbor{ID: e.id, Dist: d})
				}
			}
			continue
		}
		if opts.pruned && e.child.whiteCount == 0 {
			continue
		}
		rr := r + e.radius
		if cheap && math.Abs(dqParent-e.dparent) > rr {
			continue
		}
		// Routing entries are filtered on the surrogate too: the square
		// root is paid only when the ball actually intersects and the
		// subtree is entered (the true distance then seeds the child's
		// parent-distance shortcut).
		if raw := t.kern.Raw(q, e.pt); raw <= t.kern.RawThreshold(rr) {
			if d := t.kern.Finish(raw); d <= rr {
				dst = t.searchNode(e.child, q, r, rawR, d, opts, dst)
			}
		}
	}
	return dst
}

// RangeQueryBottomUp answers a range query around object id by starting at
// the object's leaf and climbing towards the root, searching sibling
// subtrees at each level. With stopAtGrey set the climb stops at the first
// grey (fully covered) ancestor, which is the approximate query used by
// the Fast-C heuristic: it may miss neighbours stored in distant leaves.
func (t *Tree) RangeQueryBottomUp(id int, r float64, stopAtGrey, pruned bool) []object.Neighbor {
	return t.AppendRangeQueryBottomUp(nil, id, r, stopAtGrey, pruned)
}

// AppendRangeQueryBottomUp is the buffer-reusing form of
// RangeQueryBottomUp.
func (t *Tree) AppendRangeQueryBottomUp(dst []object.Neighbor, id int, r float64, stopAtGrey, pruned bool) []object.Neighbor {
	if pruned {
		t.requireTracking()
	}
	opts := queryOpts{pruned: pruned, exclude: id}
	q := t.pts[id]
	rawR := t.kern.RawThreshold(r)
	cur := t.loc[id].leaf
	var dqp float64 = math.NaN()
	if cur.pivot != nil {
		dqp = t.kern.Dist(q, cur.pivot)
	}
	dst = t.searchLeafOnly(cur, q, r, rawR, dqp, opts, dst)
	for cur.parent != nil {
		parent := cur.parent
		// Fast-C's early stop: once an ancestor is grey (no white
		// objects below it) and its region already contains the whole
		// query ball, climbing further can only find objects stored in
		// overlapping siblings — rare in a low-overlap tree — so the
		// search ends here. The containment guard keeps the
		// approximation from collapsing for query balls much larger
		// than the local regions.
		if stopAtGrey && t.tracking && parent.whiteCount == 0 &&
			parent.pivot != nil && t.kern.Dist(q, parent.pivot)+r <= parent.radius {
			break
		}
		t.touch(parent)
		var dqParent float64 = math.NaN()
		if parent.pivot != nil {
			dqParent = t.kern.Dist(q, parent.pivot)
		}
		cheap := !math.IsNaN(dqParent)
		for i := range parent.entries {
			e := &parent.entries[i]
			if e.child == cur {
				continue
			}
			if opts.pruned && e.child.whiteCount == 0 {
				continue
			}
			rr := r + e.radius
			if cheap && math.Abs(dqParent-e.dparent) > rr {
				continue
			}
			if raw := t.kern.Raw(q, e.pt); raw <= t.kern.RawThreshold(rr) {
				if d := t.kern.Finish(raw); d <= rr {
					dst = t.searchNode(e.child, q, r, rawR, d, opts, dst)
				}
			}
		}
		cur = parent
	}
	return dst
}

// searchLeafOnly scans the entries of a single leaf without recursion.
func (t *Tree) searchLeafOnly(n *node, q object.Point, r, rawR float64, dqParent float64, opts queryOpts, dst []object.Neighbor) []object.Neighbor {
	t.touch(n)
	cheap := !math.IsNaN(dqParent)
	for i := range n.entries {
		e := &n.entries[i]
		if opts.pruned && !t.white.Test(e.id) {
			continue
		}
		if e.id == opts.exclude {
			continue
		}
		if cheap && math.Abs(dqParent-e.dparent) > r {
			continue
		}
		if t.kern.Within(q, e.pt, rawR) {
			if d := t.kern.Finish(t.kern.Raw(q, e.pt)); d <= r {
				dst = append(dst, object.Neighbor{ID: e.id, Dist: d})
			}
		}
	}
	return dst
}

// ScanIDs returns all object ids in leaf-chain (left-to-right) order, the
// locality-preserving order Basic-DisC processes objects in. Each leaf
// visited counts as one node access.
func (t *Tree) ScanIDs() []int {
	ids := make([]int, 0, t.size)
	for l := t.firstLeaf; l != nil; l = l.next {
		t.touch(l)
		for i := range l.entries {
			ids = append(ids, l.entries[i].id)
		}
	}
	return ids
}

// LeafOrderIndex returns, for every object id, its rank in the leaf scan
// order. No accesses are charged; this is derived bookkeeping.
func (t *Tree) LeafOrderIndex() []int {
	rank := make([]int, len(t.pts))
	pos := 0
	for l := t.firstLeaf; l != nil; l = l.next {
		for i := range l.entries {
			rank[l.entries[i].id] = pos
			pos++
		}
	}
	return rank
}
