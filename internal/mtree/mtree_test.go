package mtree

import (
	"math/rand/v2"
	"sort"
	"testing"

	"github.com/discdiversity/disc/internal/object"
)

func randomPoints(n, d int, seed uint64) []object.Point {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	pts := make([]object.Point, n)
	for i := range pts {
		p := make(object.Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func bruteNeighbors(pts []object.Point, m object.Metric, q object.Point, r float64, exclude int) []int {
	var ids []int
	for j, p := range pts {
		if j == exclude {
			continue
		}
		if m.Dist(q, p) <= r {
			ids = append(ids, j)
		}
	}
	sort.Ints(ids)
	return ids
}

func neighborIDs(ns []object.Neighbor) []int {
	ids := make([]int, 0, len(ns))
	for _, nb := range ns {
		ids = append(ids, nb.ID)
	}
	sort.Ints(ids)
	return ids
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func buildTestTree(t *testing.T, cfg Config, pts []object.Point) *Tree {
	t.Helper()
	tr, err := Build(cfg, pts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tr
}

var testPolicies = []SplitPolicy{
	MinOverlap,
	{PromoteMaxPair, PartitionClosest},
	{PromoteMaxPair, PartitionBalanced},
	{PromoteRandom, PartitionBalanced},
}

func TestBuildValidatesAcrossPoliciesAndCapacities(t *testing.T) {
	pts := randomPoints(500, 2, 1)
	for _, pol := range testPolicies {
		for _, cap := range []int{4, 10, 25, 50} {
			cfg := Config{Capacity: cap, Metric: object.Euclidean{}, Policy: pol, Seed: 7}
			tr := buildTestTree(t, cfg, pts)
			if err := tr.Validate(); err != nil {
				t.Errorf("policy %v capacity %d: %v", pol, cap, err)
			}
			if tr.Len() != len(pts) {
				t.Errorf("policy %v capacity %d: Len=%d want %d", pol, cap, tr.Len(), len(pts))
			}
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	pts := randomPoints(4, 2, 1)
	if _, err := New(Config{Capacity: 2, Metric: object.Euclidean{}}, pts); err == nil {
		t.Error("capacity 2 accepted")
	}
	if _, err := New(Config{Capacity: 10}, pts); err == nil {
		t.Error("nil metric accepted")
	}
}

func TestInsertRejectsBadIDs(t *testing.T) {
	pts := randomPoints(4, 2, 1)
	tr, err := New(DefaultConfig(object.Euclidean{}), pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(-1); err == nil {
		t.Error("negative id accepted")
	}
	if err := tr.Insert(4); err == nil {
		t.Error("out-of-range id accepted")
	}
	if err := tr.Insert(0); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(0); err == nil {
		t.Error("duplicate insert accepted")
	}
}

func TestRangeQueryMatchesBruteForce(t *testing.T) {
	metrics := []object.Metric{object.Euclidean{}, object.Manhattan{}, object.Chebyshev{}}
	for mi, m := range metrics {
		pts := randomPoints(400, 3, uint64(mi)+10)
		cfg := Config{Capacity: 8, Metric: m, Policy: MinOverlap}
		tr := buildTestTree(t, cfg, pts)
		rng := rand.New(rand.NewPCG(99, 7))
		for trial := 0; trial < 50; trial++ {
			id := rng.IntN(len(pts))
			r := rng.Float64() * 0.5
			got := neighborIDs(tr.RangeQueryAround(id, r))
			want := bruteNeighbors(pts, m, pts[id], r, id)
			if !equalIDs(got, want) {
				t.Fatalf("metric %s trial %d: got %v want %v", m.Name(), trial, got, want)
			}
		}
	}
}

func TestRangeQueryOfPointMatchesBruteForce(t *testing.T) {
	pts := randomPoints(300, 2, 42)
	tr := buildTestTree(t, Config{Capacity: 6, Metric: object.Euclidean{}, Policy: MinOverlap}, pts)
	rng := rand.New(rand.NewPCG(5, 5))
	for trial := 0; trial < 30; trial++ {
		q := object.Point{rng.Float64(), rng.Float64()}
		r := rng.Float64() * 0.3
		got := neighborIDs(tr.RangeQuery(q, r))
		want := bruteNeighbors(pts, object.Euclidean{}, q, r, -1)
		if !equalIDs(got, want) {
			t.Fatalf("trial %d: got %d ids want %d ids", trial, len(got), len(want))
		}
	}
}

func TestRangeQueryDistancesAreExact(t *testing.T) {
	pts := randomPoints(200, 2, 3)
	m := object.Euclidean{}
	tr := buildTestTree(t, Config{Capacity: 10, Metric: m, Policy: MinOverlap}, pts)
	for _, nb := range tr.RangeQueryAround(17, 0.4) {
		want := m.Dist(pts[17], pts[nb.ID])
		if nb.Dist != want {
			t.Fatalf("neighbor %d: dist %g want %g", nb.ID, nb.Dist, want)
		}
	}
}

func TestBottomUpMatchesTopDown(t *testing.T) {
	pts := randomPoints(400, 2, 8)
	tr := buildTestTree(t, Config{Capacity: 6, Metric: object.Euclidean{}, Policy: MinOverlap}, pts)
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 40; trial++ {
		id := rng.IntN(len(pts))
		r := rng.Float64() * 0.4
		got := neighborIDs(tr.RangeQueryBottomUp(id, r, false, false))
		want := neighborIDs(tr.RangeQueryAround(id, r))
		if !equalIDs(got, want) {
			t.Fatalf("trial %d: bottom-up %v, top-down %v", trial, got, want)
		}
	}
}

func TestPrunedQueryReturnsExactlyWhiteNeighbors(t *testing.T) {
	pts := randomPoints(300, 2, 21)
	m := object.Euclidean{}
	tr := buildTestTree(t, Config{Capacity: 8, Metric: m, Policy: MinOverlap}, pts)
	tr.EnableTracking()
	rng := rand.New(rand.NewPCG(3, 4))
	// Cover a random half of the objects.
	for id := range pts {
		if rng.Float64() < 0.5 {
			tr.Cover(id)
		}
	}
	for trial := 0; trial < 30; trial++ {
		id := rng.IntN(len(pts))
		r := rng.Float64() * 0.3
		got := neighborIDs(tr.RangeQueryPruned(id, r))
		var want []int
		for _, w := range bruteNeighbors(pts, m, pts[id], r, id) {
			if tr.IsWhite(w) {
				want = append(want, w)
			}
		}
		if !equalIDs(got, want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}

func TestPrunedQueryPanicsWithoutTracking(t *testing.T) {
	pts := randomPoints(20, 2, 2)
	tr := buildTestTree(t, DefaultConfig(object.Euclidean{}), pts)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tr.RangeQueryPruned(0, 0.1)
}

func TestPruningReducesAccesses(t *testing.T) {
	pts := randomPoints(2000, 2, 77)
	m := object.Euclidean{}
	mk := func() *Tree {
		return buildTestTree(t, Config{Capacity: 25, Metric: m, Policy: MinOverlap}, pts)
	}
	full := mk()
	pruned := mk()
	pruned.EnableTracking()
	for id := 0; id < 1500; id++ {
		pruned.Cover(id)
	}
	full.ResetAccesses()
	pruned.ResetAccesses()
	for id := 1500; id < 1600; id++ {
		full.RangeQueryAround(id, 0.05)
		pruned.RangeQueryPruned(id, 0.05)
	}
	if pruned.Accesses() >= full.Accesses() {
		t.Errorf("pruned accesses %d not below full %d", pruned.Accesses(), full.Accesses())
	}
}

func TestScanIDsVisitsEveryObjectOnce(t *testing.T) {
	pts := randomPoints(777, 2, 5)
	tr := buildTestTree(t, Config{Capacity: 7, Metric: object.Euclidean{}, Policy: MinOverlap}, pts)
	ids := tr.ScanIDs()
	if len(ids) != len(pts) {
		t.Fatalf("scan returned %d ids, want %d", len(ids), len(pts))
	}
	seen := make([]bool, len(pts))
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("object %d scanned twice", id)
		}
		seen[id] = true
	}
	rank := tr.LeafOrderIndex()
	for pos, id := range ids {
		if rank[id] != pos {
			t.Fatalf("rank[%d]=%d want %d", id, rank[id], pos)
		}
	}
}

func TestWhiteCountMaintenance(t *testing.T) {
	pts := randomPoints(500, 2, 31)
	tr := buildTestTree(t, Config{Capacity: 8, Metric: object.Euclidean{}, Policy: MinOverlap}, pts)
	tr.EnableTracking()
	if got := tr.WhiteCount(); got != len(pts) {
		t.Fatalf("initial white count %d, want %d", got, len(pts))
	}
	for id := 0; id < 100; id++ {
		tr.Cover(id)
		tr.Cover(id) // idempotent
	}
	if got := tr.WhiteCount(); got != len(pts)-100 {
		t.Fatalf("white count %d, want %d", got, len(pts)-100)
	}
	// Re-initialise with a custom white set.
	white := make([]bool, len(pts))
	for id := 0; id < 50; id++ {
		white[id] = true
	}
	tr.ResetTracking(white)
	if got := tr.WhiteCount(); got != 50 {
		t.Fatalf("after reset white count %d, want 50", got)
	}
}

func TestTrackingSurvivesSplits(t *testing.T) {
	pts := randomPoints(600, 2, 55)
	tr, err := New(Config{Capacity: 5, Metric: object.Euclidean{}, Policy: MinOverlap}, pts)
	if err != nil {
		t.Fatal(err)
	}
	// Insert half, enable tracking, cover some, then keep inserting to
	// force splits with tracking active.
	for id := 0; id < 300; id++ {
		if err := tr.Insert(id); err != nil {
			t.Fatal(err)
		}
	}
	tr.EnableTracking()
	for id := 0; id < 150; id++ {
		tr.Cover(id)
	}
	for id := 300; id < 600; id++ {
		if err := tr.Insert(id); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := tr.WhiteCount(), 600-150; got != want {
		t.Fatalf("white count %d, want %d", got, want)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFatFactorBoundsAndPolicyOrdering(t *testing.T) {
	pts := randomPoints(1000, 2, 17)
	var fats []float64
	for _, pol := range testPolicies {
		cfg := Config{Capacity: 25, Metric: object.Euclidean{}, Policy: pol, Seed: 3}
		tr := buildTestTree(t, cfg, pts)
		f := tr.FatFactor()
		if f < 0 || f > 1 {
			t.Errorf("policy %v: fat-factor %g outside [0,1]", pol, f)
		}
		fats = append(fats, f)
	}
	// The paper's MinOverlap policy should give the lowest overlap of
	// the tested policies.
	for i := 1; i < len(fats); i++ {
		if fats[0] > fats[i]+1e-9 {
			t.Errorf("MinOverlap fat-factor %g above policy %v's %g", fats[0], testPolicies[i], fats[i])
		}
	}
}

func TestAccessCounting(t *testing.T) {
	pts := randomPoints(300, 2, 9)
	tr := buildTestTree(t, Config{Capacity: 10, Metric: object.Euclidean{}, Policy: MinOverlap}, pts)
	tr.ResetAccesses()
	if tr.Accesses() != 0 {
		t.Fatal("reset failed")
	}
	tr.RangeQueryAround(0, 0.2)
	if tr.Accesses() == 0 {
		t.Error("range query charged no accesses")
	}
	before := tr.Accesses()
	tr.ScanIDs()
	if tr.Accesses() == before {
		t.Error("scan charged no accesses")
	}
}

func TestHammingMetricTree(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	pts := make([]object.Point, 200)
	for i := range pts {
		p := make(object.Point, 5)
		for j := range p {
			p[j] = float64(rng.IntN(4))
		}
		pts[i] = p
	}
	m := object.Hamming{}
	tr := buildTestTree(t, Config{Capacity: 8, Metric: m, Policy: MinOverlap}, pts)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, r := range []float64{0, 1, 2, 3, 4, 5} {
		got := neighborIDs(tr.RangeQueryAround(3, r))
		want := bruteNeighbors(pts, m, pts[3], r, 3)
		if !equalIDs(got, want) {
			t.Fatalf("r=%g: got %d want %d neighbours", r, len(got), len(want))
		}
	}
}

func TestEmptyAndTinyTrees(t *testing.T) {
	pts := randomPoints(3, 2, 1)
	tr, err := New(DefaultConfig(object.Euclidean{}), pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.RangeQuery(object.Point{0.5, 0.5}, 10); len(got) != 0 {
		t.Errorf("empty tree returned %d results", len(got))
	}
	if ids := tr.ScanIDs(); len(ids) != 0 {
		t.Errorf("empty tree scan returned %v", ids)
	}
	if f := tr.FatFactor(); f != 0 {
		t.Errorf("empty tree fat-factor %g", f)
	}
	for id := range pts {
		if err := tr.Insert(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := neighborIDs(tr.RangeQuery(object.Point{0.5, 0.5}, 10)); len(got) != 3 {
		t.Errorf("full-coverage query returned %v", got)
	}
}
