package experiments

import (
	"fmt"

	"github.com/discdiversity/disc/internal/baseline"
	"github.com/discdiversity/disc/internal/core"
	"github.com/discdiversity/disc/internal/dataset"
	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/stats"
)

// Fig6Result carries the qualitative comparison of Figure 6: the subsets
// selected by each diversification model on a clustered dataset, plus
// quantitative quality measures that make the figure's visual claims
// checkable (coverage %, dispersion, centrality).
type Fig6Result struct {
	Dataset *object.Dataset
	Radius  float64
	K       int
	// Selections maps model name to the selected ids.
	Selections map[string][]int
	// Order fixes the presentation order of the models.
	Order []string
	Table *stats.Table
}

// Fig6 reproduces the model comparison of Figure 6: r-DisC, MaxSum,
// MaxMin, k-medoids and r-C on a clustered 2-d dataset. DisC is run first
// for the given radius; its solution size becomes the k of the
// competitors, exactly as the paper does ("we first run our algorithms
// for a given r and then use as k the size of the produced diverse
// subset").
func Fig6(cfg Config) (*Fig6Result, error) {
	// The paper's Figure 6 uses a small clustered dataset (k=15 at
	// r=0.7 on an unnormalized domain); we use n=1000 in [0,1]^2 with a
	// radius chosen to land near the paper's k.
	n := 1000
	if cfg.Quick {
		n = 400
	}
	ds, err := dataset.Clustered(n, 2, 5, cfg.Seed)
	if err != nil {
		return nil, err
	}
	m := object.Euclidean{}
	r := 0.12

	e, err := core.BuildTreeEngine(cfg.treeConfig(m), ds.Points)
	if err != nil {
		return nil, err
	}
	disc := core.GreedyDisC(e, r, core.GreedyOptions{Update: core.UpdateGrey})
	k := disc.Size()

	rc := core.GreedyC(e, r)
	sel := map[string][]int{
		"r-DisC":    disc.SortedIDs(),
		"MaxSum":    baseline.MaxSum(ds.Points, m, k),
		"MaxMin":    baseline.MaxMin(ds.Points, m, k),
		"k-medoids": baseline.KMedoids(ds.Points, m, k, cfg.Seed),
		"r-C":       rc.SortedIDs(),
	}
	order := []string{"r-DisC", "MaxSum", "MaxMin", "k-medoids", "r-C"}

	tab := stats.NewTable(
		fmt.Sprintf("Figure 6 — model comparison (clustered, n=%d, r=%g, k=%d)", n, r, k),
		"model", "size", "coverage@r", "fmin", "fsum", "medoid-cost")
	for _, name := range order {
		ids := sel[name]
		tab.AddRow(name,
			len(ids),
			stats.CoverageFraction(ds.Points, m, ids, r),
			baseline.FMin(ds.Points, m, ids),
			baseline.FSum(ds.Points, m, ids),
			baseline.MedoidCost(ds.Points, m, ids),
		)
	}
	printTables(cfg.out(), tab)
	return &Fig6Result{
		Dataset:    ds,
		Radius:     r,
		K:          k,
		Selections: sel,
		Order:      order,
		Table:      tab,
	}, nil
}
