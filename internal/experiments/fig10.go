package experiments

import (
	"fmt"

	"github.com/discdiversity/disc/internal/core"
	"github.com/discdiversity/disc/internal/mtree"
	"github.com/discdiversity/disc/internal/stats"
)

// fig10Policies are the four splitting policies the paper uses to build
// trees of increasing fat-factor: MinOverlap (lowest), max-distance
// promotion, balanced partitioning and random promotion (highest).
var fig10Policies = []mtree.SplitPolicy{
	mtree.MinOverlap,
	{Promote: mtree.PromoteMaxPair, Partition: mtree.PartitionClosest},
	{Promote: mtree.PromoteMaxPair, Partition: mtree.PartitionBalanced},
	{Promote: mtree.PromoteRandom, Partition: mtree.PartitionBalanced},
}

// Fig10 reproduces Figure 10 for one synthetic dataset ("uniform" or
// "clustered"): Greedy-DisC node accesses across large radii on M-trees
// built with different splitting policies, labelled by their measured
// fat-factor. Tree characteristics do not change which objects are
// selected — only the access cost — which the runner verifies.
func Fig10(cfg Config, datasetName string) (*stats.Table, error) {
	w, err := cfg.load(datasetName)
	if err != nil {
		return nil, err
	}
	radii := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	if cfg.Quick {
		radii = []float64{0.1, 0.5, 0.9}
	}

	var series []*stats.Series
	var refSizes []int
	for _, pol := range fig10Policies {
		tcfg := cfg.treeConfig(w.metric)
		tcfg.Policy = pol
		tree, err := mtree.Build(tcfg, w.ds.Points)
		if err != nil {
			return nil, err
		}
		fat := tree.FatFactor()
		s := &stats.Series{Name: fmt.Sprintf("f=%.3f", fat)}
		for ri, r := range radii {
			e := core.NewTreeEngine(tree)
			e.ResetAccesses()
			sol := core.GreedyDisC(e, r, core.GreedyOptions{Update: core.UpdateGrey, Pruned: true})
			s.Add(r, float64(sol.Accesses))
			if len(refSizes) <= ri {
				refSizes = append(refSizes, sol.Size())
			} else if refSizes[ri] != sol.Size() {
				return nil, fmt.Errorf("fig10: policy %v changed the solution size at r=%g (%d vs %d)",
					pol, r, sol.Size(), refSizes[ri])
			}
		}
		series = append(series, s)
	}
	tab := stats.SeriesTable(fmt.Sprintf("Figure 10 — node accesses by fat-factor (%s)", datasetName), "radius", series...)
	printTables(cfg.out(), tab)
	return tab, nil
}
