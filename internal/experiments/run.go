package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one named experiment with the given configuration.
type Runner func(cfg Config) error

// Registry maps experiment names (as accepted by cmd/discbench) to their
// runners. Multi-dataset experiments run all their datasets.
var Registry = map[string]Runner{
	"table3": func(cfg Config) error { _, err := Table3All(cfg); return err },
	"fig6": func(cfg Config) error {
		_, err := Fig6(cfg)
		return err
	},
	"fig7":     func(cfg Config) error { _, err := Fig7All(cfg); return err },
	"fig8":     func(cfg Config) error { _, err := Fig8All(cfg); return err },
	"fig9card": func(cfg Config) error { _, err := Fig9Cardinality(cfg); return err },
	"fig9dim":  func(cfg Config) error { _, err := Fig9Dimensionality(cfg); return err },
	"fig10": func(cfg Config) error {
		for _, ds := range []string{"uniform", "clustered"} {
			if _, err := Fig10(cfg, ds); err != nil {
				return err
			}
		}
		return nil
	},
	"zoomin": func(cfg Config) error {
		for _, ds := range []string{"clustered", "cities"} {
			if _, err := ZoomIn(cfg, ds); err != nil {
				return err
			}
		}
		return nil
	},
	"zoomout": func(cfg Config) error {
		for _, ds := range []string{"clustered", "cities"} {
			if _, err := ZoomOut(cfg, ds); err != nil {
				return err
			}
		}
		return nil
	},
	"capacity": func(cfg Config) error { _, err := Capacity(cfg); return err },
	"engines": func(cfg Config) error {
		for _, ds := range []string{"uniform", "clustered"} {
			if _, err := Engines(cfg, ds); err != nil {
				return err
			}
		}
		return nil
	},
	"fastc": func(cfg Config) error {
		for _, ds := range []string{"uniform", "clustered"} {
			if _, err := FastCAblation(cfg, ds); err != nil {
				return err
			}
		}
		return nil
	},
	"bottomup": func(cfg Config) error {
		_, err := BottomUp(cfg, "clustered")
		return err
	},
	"perf": func(cfg Config) error {
		snap, err := Perf(cfg, "clustered")
		if err != nil {
			return err
		}
		if cfg.Format == "json" {
			return snap.WriteJSON(cfg)
		}
		printTables(cfg.out(), snap.Table())
		return nil
	},
	"buildinit": func(cfg Config) error {
		_, err := BuildInit(cfg, "clustered")
		return err
	},
	"stream": func(cfg Config) error {
		res, err := Stream(cfg, "clustered")
		if err != nil {
			return err
		}
		if cfg.Format == "json" {
			err = res.WriteJSON(cfg)
		} else {
			printTables(cfg.out(), res.Table())
		}
		if err == nil && !res.EquivalentToRebuild {
			// Emit the measurement, then fail: the throughput number is
			// meaningless if the maintained selection drifted from what a
			// rebuild computes.
			err = fmt.Errorf("experiments: stream: incremental selection diverged from rebuild-from-scratch")
		}
		return err
	},
	"highdim": func(cfg Config) error {
		res, err := HighDim(cfg)
		if err != nil {
			return err
		}
		if cfg.Format == "json" {
			return res.WriteJSON(cfg)
		}
		printTables(cfg.out(), res.Tables()...)
		return nil
	},
	"snapshot": func(cfg Config) error {
		res, err := SnapshotExperiment(cfg, "clustered")
		if err != nil {
			return err
		}
		if cfg.Format == "json" {
			err = res.WriteJSON(cfg)
		} else {
			printTables(cfg.out(), res.Table())
		}
		if err == nil && !res.SelectionsIdentical {
			// Emit the measurement, then fail: CI's snapshot-bench step
			// must go red when a warm-loaded engine stops selecting
			// identically, not archive the discrepancy in an artifact.
			err = fmt.Errorf("experiments: snapshot: warm-loaded selections diverge from the fresh build")
		}
		return err
	},
}

// Names returns the registered experiment names in sorted order.
func Names() []string {
	names := make([]string, 0, len(Registry))
	for n := range Registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes a registered experiment by name.
func Run(name string, cfg Config) error {
	r, ok := Registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, Names())
	}
	return r(cfg)
}

// RunAll executes every registered experiment in name order.
func RunAll(cfg Config) error {
	for _, name := range Names() {
		fmt.Fprintf(cfg.out(), "=== %s ===\n", name)
		if err := Run(name, cfg); err != nil {
			return fmt.Errorf("experiments: %s: %w", name, err)
		}
	}
	return nil
}
