package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ServeConfig parameterises one measured load run against a live
// discserve (see cmd/discload). The generator seeds the server with a
// dataset and a live maintainer, then drives a configurable mix of
// select / zoom / insert / delete / selection traffic from Workers
// concurrent clients for Duration, measuring client-observed latency
// per endpoint and scraping /metrics before and after for the
// server-side counter deltas.
type ServeConfig struct {
	// BaseURL of the running server, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Workers is the number of concurrent client goroutines.
	Workers int
	// Duration of the measured phase (setup excluded).
	Duration time.Duration
	// Mix assigns relative weights to the operations, e.g.
	// "select=2,zoom=2,insert=3,delete=1,selection=2". Zero-weight ops
	// are never issued.
	Mix string
	// N and Dim shape the seeded dataset; Radius is the select radius.
	N      int
	Dim    int
	Radius float64
	// Seed drives the point generator and the per-worker op streams.
	Seed uint64
}

// ServeEndpoint is the measured result of one operation kind. Shed
// counts 503 responses that were retried after honoring the server's
// Retry-After hint (capped, jittered); Availability is the percentage
// of attempts that ultimately succeeded — sheds and errors both count
// against it, so a server that throttles heavily cannot hide behind
// retries.
type ServeEndpoint struct {
	Endpoint     string  `json:"endpoint"`
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	Shed         int64   `json:"shed"`
	Availability float64 `json:"availability_pct"`
	Throughput   float64 `json:"throughput_rps"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MaxMs        float64 `json:"max_ms"`
}

// ServeMetricsDelta holds server-side counter movements over the
// measured phase, read from /metrics scrapes before and after. Series
// are summed over their label variants, so e.g. Requests aggregates all
// routes and status classes.
type ServeMetricsDelta struct {
	Requests   float64 `json:"http_requests"`
	Shed       float64 `json:"http_shed"`
	Panics     float64 `json:"http_panics"`
	WALAppends float64 `json:"wal_appends"`
	WALFsyncs  float64 `json:"wal_fsyncs"`
	Repaired   float64 `json:"live_repaired_components"`
}

// ServeBench is the machine-readable result of one load run — the
// BENCH_SERVE.json format benchguard gates (throughput as a floor, p99
// as a ceiling, per endpoint).
type ServeBench struct {
	N          int     `json:"n"`
	Dim        int     `json:"dim"`
	Radius     float64 `json:"radius"`
	Seed       uint64  `json:"seed"`
	Workers    int     `json:"workers"`
	DurationS  float64 `json:"duration_s"`
	Mix        string  `json:"mix"`
	GoMaxProcs int     `json:"gomaxprocs"`
	GoVersion  string  `json:"go_version"`

	Endpoints []ServeEndpoint    `json:"endpoints"`
	Server    *ServeMetricsDelta `json:"server,omitempty"`
}

// serveOps enumerates the drivable operations in mix order.
var serveOps = []string{"select", "zoom", "insert", "delete", "selection"}

// DefaultServeMix is the standing traffic shape: read-heavy with a live
// mutation stream, roughly what the paper's interactive scenario implies.
const DefaultServeMix = "select=2,zoom=2,insert=3,delete=1,selection=2"

// parseMix expands a weight spec into a lookup slice over serveOps.
func parseMix(mix string) ([]int, error) {
	weights := make([]int, len(serveOps))
	for _, part := range strings.Split(mix, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want op=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix entry %q: bad weight", part)
		}
		idx := -1
		for i, op := range serveOps {
			if op == name {
				idx = i
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("mix entry %q: unknown op (have %s)", part, strings.Join(serveOps, ", "))
		}
		weights[idx] = w
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("mix %q has no positive weights", mix)
	}
	return weights, nil
}

// serveClient wraps the HTTP plumbing of one load run.
type serveClient struct {
	base string
	hc   *http.Client
}

// Retry policy for 503 responses: the server's Retry-After hint is
// honored but capped (a load generator must not let one shed park a
// worker for a full second) and jittered (a worker fleet must not
// retry in lockstep). serveRetryMax bounds retries per logical op.
const (
	serveRetryMax = 3
	serveRetryCap = 250 * time.Millisecond
)

// retryWait turns a Retry-After hint into a capped, full-jitter sleep
// in [min(hint,cap)/2, min(hint,cap)].
func retryWait(rng *rand.Rand, hint time.Duration) time.Duration {
	if hint <= 0 || hint > serveRetryCap {
		hint = serveRetryCap
	}
	half := hint / 2
	return half + time.Duration(rng.Int64N(int64(half)+1))
}

// retryAfterOf parses a 503's Retry-After header (seconds form).
func retryAfterOf(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return time.Duration(n) * time.Second
		}
	}
	return 0
}

func (c *serveClient) postJSON(path string, body any, out any) (int, time.Duration, error) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return 0, 0, err
		}
	}
	resp, err := c.hc.Post(c.base+path, "application/json", &buf)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		return resp.StatusCode, 0, json.NewDecoder(resp.Body).Decode(out)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, retryAfterOf(resp), nil
}

func (c *serveClient) get(path string) (int, time.Duration, error) {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, retryAfterOf(resp), nil
}

// ScrapeMetrics fetches the raw /metrics exposition.
func ScrapeMetrics(baseURL string) ([]byte, error) {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// parseProm sums Prometheus text samples by base metric name (labels
// stripped), skipping histogram bucket series so the sums stay
// meaningful for counters and gauges.
func parseProm(data []byte) map[string]float64 {
	out := make(map[string]float64)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if strings.HasSuffix(name, "_bucket") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[sp+1:]), 64)
		if err != nil {
			continue
		}
		out[name] += v
	}
	return out
}

// RunServe seeds the server and drives the measured load. The server
// must already be listening and ready at cfg.BaseURL.
func RunServe(cfg ServeConfig) (*ServeBench, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Mix == "" {
		cfg.Mix = DefaultServeMix
	}
	if cfg.N <= 0 {
		cfg.N = 2000
	}
	if cfg.Dim <= 0 {
		cfg.Dim = 2
	}
	if cfg.Radius <= 0 {
		cfg.Radius = 0.05
	}
	weights, err := parseMix(cfg.Mix)
	if err != nil {
		return nil, fmt.Errorf("experiments: serve: %w", err)
	}

	c := &serveClient{base: cfg.BaseURL, hc: &http.Client{Timeout: 2 * time.Minute}}

	// Seed: one batch dataset for select/zoom, one live maintainer for
	// the mutation stream. Setup is unmeasured.
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xd15c))
	points := make([][]float64, cfg.N)
	for i := range points {
		p := make([]float64, cfg.Dim)
		for d := range p {
			p[d] = rng.Float64()
		}
		points[i] = p
	}
	if code, _, err := c.postJSON("/v1/datasets", map[string]any{
		"name": "load", "metric": "euclidean", "points": points,
	}, nil); err != nil || code >= 300 {
		return nil, fmt.Errorf("experiments: serve: seed dataset: status %d, err %v", code, err)
	}
	var sel struct {
		ID string `json:"id"`
	}
	if code, _, err := c.postJSON("/v1/datasets/load/select", map[string]any{"radius": cfg.Radius}, &sel); err != nil || code >= 300 || sel.ID == "" {
		return nil, fmt.Errorf("experiments: serve: seed select: status %d, id %q, err %v", code, sel.ID, err)
	}
	liveSeed := points[:min(cfg.N, 500)]
	if code, _, err := c.postJSON("/v1/live", map[string]any{
		"name": "loadlive", "radius": cfg.Radius, "metric": "euclidean", "points": liveSeed,
	}, nil); err != nil || code >= 300 {
		return nil, fmt.Errorf("experiments: serve: seed live: status %d, err %v", code, err)
	}

	before, err := ScrapeMetrics(cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("experiments: serve: %w", err)
	}

	type sample struct {
		op    int
		ns    int64
		ok    bool
		sheds int
	}
	results := make([][]sample, cfg.Workers)
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewPCG(cfg.Seed, uint64(w)+1))
			// Per-worker pool of live ids this worker inserted, so
			// deletes always target ids it owns.
			var owned []int
			total := 0
			for _, wt := range weights {
				total += wt
			}
			buf := make([]sample, 0, 4096)
			// Strictly in or out: zooming to the result's own radius is a
			// 400 by design.
			zoomRadii := []float64{cfg.Radius / 2, cfg.Radius * 2}
			for time.Now().Before(deadline) {
				pick := wrng.IntN(total)
				op := 0
				for i, wt := range weights {
					if pick < wt {
						op = i
						break
					}
					pick -= wt
				}
				// A delete with nothing owned degrades to an insert so
				// the mix stays issueable from a cold start.
				if serveOps[op] == "delete" && len(owned) == 0 {
					for i, name := range serveOps {
						if name == "insert" {
							op = i
						}
					}
				}
				var insertedID, deleteID int
				if serveOps[op] == "delete" {
					// Pick the victim id once, outside the retry loop: a
					// 503'd delete retries the SAME request.
					k := wrng.IntN(len(owned))
					deleteID = owned[k]
					owned[k] = owned[len(owned)-1]
					owned = owned[:len(owned)-1]
				}
				issue := func() (int, time.Duration, error) {
					switch serveOps[op] {
					case "select":
						return c.postJSON("/v1/datasets/load/select", map[string]any{"radius": cfg.Radius}, nil)
					case "zoom":
						return c.postJSON("/v1/results/"+sel.ID+"/zoom", map[string]any{
							"radius": zoomRadii[wrng.IntN(len(zoomRadii))],
						}, nil)
					case "insert":
						p := make([]float64, cfg.Dim)
						for d := range p {
							p[d] = wrng.Float64()
						}
						var ir struct {
							ID int `json:"id"`
						}
						code, ra, err := c.postJSON("/v1/live/loadlive/insert", map[string]any{"point": p, "flush": true}, &ir)
						insertedID = ir.ID
						return code, ra, err
					case "delete":
						return c.postJSON("/v1/live/loadlive/delete", map[string]any{"id": deleteID, "flush": true}, nil)
					default: // selection
						return c.get("/v1/live/loadlive/selection")
					}
				}
				// Issue, honoring Retry-After on 503 with capped jitter —
				// the retry sleeps count toward the op's latency, so a
				// throttling server still pays in p99.
				var code int
				var err error
				sheds := 0
				start := time.Now()
				for attempt := 0; ; attempt++ {
					var ra time.Duration
					code, ra, err = issue()
					if err != nil || code != http.StatusServiceUnavailable || attempt >= serveRetryMax {
						break
					}
					sheds++
					time.Sleep(retryWait(wrng, ra))
				}
				ok := err == nil && code < 400
				if ok && serveOps[op] == "insert" {
					owned = append(owned, insertedID)
				}
				buf = append(buf, sample{op: op, ns: time.Since(start).Nanoseconds(), ok: ok, sheds: sheds})
			}
			results[w] = buf
		}(w)
	}
	wg.Wait()

	after, err := ScrapeMetrics(cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("experiments: serve: %w", err)
	}

	bench := &ServeBench{
		N:          cfg.N,
		Dim:        cfg.Dim,
		Radius:     cfg.Radius,
		Seed:       cfg.Seed,
		Workers:    cfg.Workers,
		DurationS:  cfg.Duration.Seconds(),
		Mix:        cfg.Mix,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}

	perOp := make([][]float64, len(serveOps))
	errs := make([]int64, len(serveOps))
	sheds := make([]int64, len(serveOps))
	for _, buf := range results {
		for _, s := range buf {
			perOp[s.op] = append(perOp[s.op], float64(s.ns)/1e6)
			if !s.ok {
				errs[s.op]++
			}
			sheds[s.op] += int64(s.sheds)
		}
	}
	for i, op := range serveOps {
		if weights[i] == 0 && len(perOp[i]) == 0 {
			continue
		}
		xs := perOp[i]
		sort.Float64s(xs)
		ep := ServeEndpoint{
			Endpoint:   op,
			Requests:   int64(len(xs)),
			Errors:     errs[i],
			Shed:       sheds[i],
			Throughput: float64(len(xs)) / cfg.Duration.Seconds(),
		}
		// Availability: attempts = final ops + shed retries; anything
		// that was shed or ultimately failed counts against it.
		if attempts := ep.Requests + ep.Shed; attempts > 0 {
			ep.Availability = 100 * float64(ep.Requests-ep.Errors) / float64(attempts)
		}
		if len(xs) > 0 {
			ep.P50Ms = percentile(xs, 0.50)
			ep.P99Ms = percentile(xs, 0.99)
			ep.MaxMs = xs[len(xs)-1]
		}
		bench.Endpoints = append(bench.Endpoints, ep)
	}

	b, a := parseProm(before), parseProm(after)
	delta := func(name string) float64 { return a[name] - b[name] }
	bench.Server = &ServeMetricsDelta{
		Requests:   delta("disc_http_requests_total"),
		Shed:       delta("disc_http_shed_total"),
		Panics:     delta("disc_http_panics_total"),
		WALAppends: delta("disc_wal_appends_total"),
		WALFsyncs:  delta("disc_wal_fsyncs_total"),
		Repaired:   delta("disc_live_repaired_components_total"),
	}
	return bench, nil
}

// WriteJSON renders the serve benchmark as indented JSON.
func (s *ServeBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
