package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	disc "github.com/discdiversity/disc"
	"github.com/discdiversity/disc/internal/stats"
)

// StreamBench is the machine-readable result of the "stream" experiment
// (the BENCH_PR6.json trajectory format): sustained single-threaded
// update throughput and per-operation repair latency of the incremental
// Updater on the canonical perf workload, with per-op convergence
// (every mutation is followed by Flush, so each operation pays its full
// component-scoped repair before the next begins).
type StreamBench struct {
	Dataset    string  `json:"dataset"`
	N          int     `json:"n"`
	Dim        int     `json:"dim"`
	Radius     float64 `json:"radius"`
	Seed       uint64  `json:"seed"`
	GoMaxProcs int     `json:"gomaxprocs"`
	GoVersion  string  `json:"go_version"`

	// Ops mutations are applied after the seed build: ~70% inserts
	// (half jittered near an existing live point to exercise component
	// merging, half uniform) and ~30% deletes of random live objects.
	Ops     int `json:"ops"`
	Inserts int `json:"inserts"`
	Deletes int `json:"deletes"`

	// SeedBuildMS is the one-time batch pipeline over the N starting
	// points (grid ε-join, labeling, component-decomposed greedy).
	SeedBuildMS float64 `json:"seed_build_ms"`

	// UpdatesPerSec counts converged operations (mutation + Flush) per
	// wall-clock second; the repair percentiles break out the Flush
	// (repair + publish) portion of each operation.
	UpdatesPerSec float64 `json:"updates_per_sec"`
	RepairMSP50   float64 `json:"repair_ms_p50"`
	RepairMSP99   float64 `json:"repair_ms_p99"`
	RepairMSMax   float64 `json:"repair_ms_max"`

	// The WAL rows repeat the converged-update workload against a
	// durable updater (disc.OpenUpdater: every mutation framed, CRC'd
	// and appended to the write-ahead log before it is acknowledged) at
	// two fsync policies, measuring what crash-safety costs on top of
	// the in-memory path. fsync=always is deliberately not benchmarked:
	// it measures the disk's flush latency, not this code.
	WALNoneUpdatesPerSec     float64 `json:"wal_none_updates_per_sec"`
	WALIntervalUpdatesPerSec float64 `json:"wal_interval_updates_per_sec"`

	FinalLive     int `json:"final_live"`
	FinalSelected int `json:"final_selected"`

	// EquivalentToRebuild records the end-state conformance check: the
	// incrementally maintained selection must be exactly what a
	// from-scratch component-mode Select over the surviving points
	// computes.
	EquivalentToRebuild bool `json:"equivalent_to_rebuild"`

	// Telemetry is the in-process metrics view of the measured run: the
	// disc_live_repair_seconds histogram delta over exactly the measured
	// mutations (an instrumented cross-check of the client-side repair
	// percentiles above) and the WAL append/fsync counter movement across
	// the durable runs.
	Telemetry *ExperimentTelemetry `json:"telemetry,omitempty"`
}

// streamOps picks the mutation count: enough to average out repair
// variance at full scale, trimmed in quick mode.
func (c Config) streamOps() int {
	if c.Quick {
		return 300
	}
	return 2000
}

// Stream seeds an Updater with the dataset, applies a mixed
// insert/delete workload with per-operation convergence, and measures
// throughput and repair-latency percentiles.
func Stream(cfg Config, datasetName string) (*StreamBench, error) {
	w, err := cfg.load(datasetName)
	if err != nil {
		return nil, err
	}
	pts := w.ds.Points
	r := cfg.perfRadius(datasetName)
	dim := w.ds.Dim()

	res := &StreamBench{
		Dataset:    datasetName,
		N:          len(pts),
		Dim:        dim,
		Radius:     r,
		Seed:       cfg.Seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Ops:        cfg.streamOps(),
	}

	seedStart := time.Now()
	u, err := disc.NewUpdater(pts, r, disc.WithMetric(w.metric))
	if err != nil {
		return nil, fmt.Errorf("experiments: stream: seed: %w", err)
	}
	res.SeedBuildMS = float64(time.Since(seedStart).Nanoseconds()) / 1e6

	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5eed))
	live := make([]int, len(pts))
	for i := range live {
		live[i] = i
	}
	slots := len(pts)

	repairs := make([]float64, 0, res.Ops)
	probe := newTelemetryProbe()
	runStart := time.Now()
	for op := 0; op < res.Ops; op++ {
		if len(live) == 0 || rng.Float64() < 0.7 {
			p := make(disc.Point, dim)
			if len(live) > 0 && rng.Float64() < 0.5 {
				// Jitter near a live point: lands inside (or adjacent
				// to) an existing component, forcing real repair work.
				src := u.Point(live[rng.IntN(len(live))])
				for i := range p {
					p[i] = src[i] + rng.NormFloat64()*2*r
				}
			} else {
				for i := range p {
					p[i] = rng.Float64()
				}
			}
			id, err := u.Insert(p)
			if err != nil {
				return nil, fmt.Errorf("experiments: stream: insert: %w", err)
			}
			live = append(live, id)
			slots++
			res.Inserts++
		} else {
			k := rng.IntN(len(live))
			if err := u.Delete(live[k]); err != nil {
				return nil, fmt.Errorf("experiments: stream: delete: %w", err)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			res.Deletes++
		}
		flushStart := time.Now()
		u.Flush()
		repairs = append(repairs, float64(time.Since(flushStart).Nanoseconds())/1e6)
	}
	elapsed := time.Since(runStart)
	res.UpdatesPerSec = float64(res.Ops) / elapsed.Seconds()

	sort.Float64s(repairs)
	res.RepairMSP50 = percentile(repairs, 0.50)
	res.RepairMSP99 = percentile(repairs, 0.99)
	res.RepairMSMax = repairs[len(repairs)-1]
	res.FinalLive = u.Len()
	res.FinalSelected = u.Size()

	// Read the repair histogram delta now, while it covers exactly the
	// measured mutations — the rebuild check and WAL runs below drive
	// the same series again.
	res.Telemetry = probe.Report()

	equivalent, err := streamRebuildCheck(u, slots, r, w.metric)
	if err != nil {
		return nil, err
	}
	res.EquivalentToRebuild = equivalent

	res.WALNoneUpdatesPerSec, err = streamWALRun(cfg, pts, r, w.metric, disc.FsyncNone)
	if err != nil {
		return nil, err
	}
	res.WALIntervalUpdatesPerSec, err = streamWALRun(cfg, pts, r, w.metric, disc.FsyncInterval)
	if err != nil {
		return nil, err
	}
	// The WAL counters only move during the durable runs; fold their
	// full movement into the report.
	final := probe.Report()
	res.Telemetry.WALAppends = final.WALAppends
	res.Telemetry.WALFsyncs = final.WALFsyncs
	return res, nil
}

// streamWALRun measures converged-update throughput through the
// write-ahead log: the seed points are compacted into a snapshot, a
// durable updater reopens from it under the requested fsync policy,
// and the same mixed workload runs with per-op convergence — each
// acknowledged mutation having first been appended (and, per policy,
// synced) to the log.
func streamWALRun(cfg Config, pts []disc.Point, r float64, m disc.Metric, policy disc.FsyncPolicy) (float64, error) {
	dir, err := os.MkdirTemp("", "disc-stream-wal-*")
	if err != nil {
		return 0, fmt.Errorf("experiments: stream: wal: %w", err)
	}
	defer os.RemoveAll(dir)

	seed, err := disc.NewUpdater(pts, r, disc.WithMetric(m))
	if err != nil {
		return 0, fmt.Errorf("experiments: stream: wal seed: %w", err)
	}
	snapPath := filepath.Join(dir, "stream.discsnap")
	if err := seed.SaveSnapshot(snapPath); err != nil {
		return 0, fmt.Errorf("experiments: stream: wal seed: %w", err)
	}
	u, err := disc.OpenUpdater(snapPath, filepath.Join(dir, "stream.wal"), r,
		disc.WithMetric(m), disc.WithFsync(policy))
	if err != nil {
		return 0, fmt.Errorf("experiments: stream: wal open: %w", err)
	}
	defer u.Close()

	dim := u.Dim()
	ops := cfg.streamOps()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5eed))
	live := make([]int, u.Len())
	for i := range live {
		live[i] = i
	}
	runStart := time.Now()
	for op := 0; op < ops; op++ {
		if len(live) == 0 || rng.Float64() < 0.7 {
			p := make(disc.Point, dim)
			if len(live) > 0 && rng.Float64() < 0.5 {
				src := u.Point(live[rng.IntN(len(live))])
				for i := range p {
					p[i] = src[i] + rng.NormFloat64()*2*r
				}
			} else {
				for i := range p {
					p[i] = rng.Float64()
				}
			}
			id, err := u.Insert(p)
			if err != nil {
				return 0, fmt.Errorf("experiments: stream: wal insert: %w", err)
			}
			live = append(live, id)
		} else {
			k := rng.IntN(len(live))
			if err := u.Delete(live[k]); err != nil {
				return 0, fmt.Errorf("experiments: stream: wal delete: %w", err)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		u.Flush()
	}
	elapsed := time.Since(runStart)
	return float64(ops) / elapsed.Seconds(), nil
}

// streamRebuildCheck re-runs the batch component-mode selection over the
// updater's surviving points and compares it to the incrementally
// maintained one (ids mapped through the monotone live-id order).
func streamRebuildCheck(u *disc.Updater, slots int, r float64, m disc.Metric) (bool, error) {
	var pts []disc.Point
	var liveIDs []int
	for id := 0; id < slots; id++ {
		if u.Alive(id) {
			pts = append(pts, u.Point(id))
			liveIDs = append(liveIDs, id)
		}
	}
	if len(pts) == 0 {
		return u.Size() == 0, nil
	}
	d, err := disc.New(pts, disc.WithIndex(disc.IndexCoverageGraph), disc.WithMetric(m))
	if err != nil {
		return false, fmt.Errorf("experiments: stream: rebuild check: %w", err)
	}
	batch, err := d.Select(r, disc.WithSelectMode(disc.SelectComponents))
	if err != nil {
		return false, fmt.Errorf("experiments: stream: rebuild check: %w", err)
	}
	want := append([]int(nil), batch.IDs()...)
	for i, id := range want {
		want[i] = liveIDs[id]
	}
	sort.Ints(want)
	got := u.Selection()
	if len(got) != len(want) {
		return false, nil
	}
	for i := range got {
		if got[i] != want[i] {
			return false, nil
		}
	}
	return true, nil
}

// percentile returns the p-th percentile (0..1) of ascending-sorted xs
// by nearest-rank.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(p * float64(len(xs)))
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

// WriteJSON renders the stream benchmark as indented JSON.
func (s *StreamBench) WriteJSON(cfg Config) error {
	enc := json.NewEncoder(cfg.out())
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Table renders the stream benchmark as a plain-text table.
func (s *StreamBench) Table() *stats.Table {
	tab := stats.NewTable(
		fmt.Sprintf("Incremental updates — %s (n=%d, r=%g, GOMAXPROCS=%d, %d ops: %d ins / %d del)",
			s.Dataset, s.N, s.Radius, s.GoMaxProcs, s.Ops, s.Inserts, s.Deletes),
		"metric", "value", "notes")
	tab.AddRow("seed build", fmt.Sprintf("%.1f ms", s.SeedBuildMS), "batch pipeline over the seed points")
	tab.AddRow("throughput", fmt.Sprintf("%.0f updates/s", s.UpdatesPerSec), "per-op convergence (mutation + Flush)")
	tab.AddRow("throughput (WAL, fsync=none)", fmt.Sprintf("%.0f updates/s", s.WALNoneUpdatesPerSec), "durable updater, log append per op")
	tab.AddRow("throughput (WAL, fsync=interval)", fmt.Sprintf("%.0f updates/s", s.WALIntervalUpdatesPerSec), "durable updater, batched fsync")
	tab.AddRow("repair p50", fmt.Sprintf("%.3f ms", s.RepairMSP50), "")
	tab.AddRow("repair p99", fmt.Sprintf("%.3f ms", s.RepairMSP99), "")
	tab.AddRow("repair max", fmt.Sprintf("%.3f ms", s.RepairMSMax), "")
	tab.AddRow("final state", fmt.Sprintf("%d live / %d selected", s.FinalLive, s.FinalSelected),
		fmt.Sprintf("equivalent to rebuild: %v", s.EquivalentToRebuild))
	if t := s.Telemetry; t != nil {
		tab.AddRow("repair p99 (instrumented)", fmt.Sprintf("%.3f ms", t.RepairP99Ms),
			"disc_live_repair_seconds histogram delta over the measured ops")
		tab.AddRow("WAL appends / fsyncs", fmt.Sprintf("%d / %d", t.WALAppends, t.WALFsyncs),
			"durable runs; the ratio is the fsync batching factor")
	}
	return tab
}
