package experiments

import (
	"fmt"

	"github.com/discdiversity/disc/internal/dataset"
	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/stats"
)

// Fig9Cardinality reproduces Figure 9(a)-(b): Greedy-DisC solution size
// and node accesses on the Clustered dataset as cardinality grows from
// 5000 to 15000, one series per radius.
func Fig9Cardinality(cfg Config) ([]*stats.Table, error) {
	sizes := []int{5000, 10000, 15000}
	if cfg.Quick {
		sizes = []int{1000, 2000, 3000}
	}
	radii := cfg.radii("clustered")

	sizeSeries := make([]*stats.Series, len(radii))
	accSeries := make([]*stats.Series, len(radii))
	for i, r := range radii {
		name := fmt.Sprintf("r=%g", r)
		sizeSeries[i] = &stats.Series{Name: name}
		accSeries[i] = &stats.Series{Name: name}
	}
	for _, n := range sizes {
		ds, err := dataset.Clustered(n, cfg.dim(), 0, cfg.Seed)
		if err != nil {
			return nil, err
		}
		w := &workload{name: "clustered", ds: ds, metric: object.Euclidean{}}
		for i, r := range radii {
			run, _, err := cfg.execute(w, runGreyGreedyPruned, r)
			if err != nil {
				return nil, err
			}
			sizeSeries[i].Add(float64(n), float64(run.size))
			accSeries[i].Add(float64(n), float64(run.accesses))
		}
	}
	tabs := []*stats.Table{
		stats.SeriesTable("Figure 9(a) — solution size vs cardinality (clustered)", "n", sizeSeries...),
		stats.SeriesTable("Figure 9(b) — node accesses vs cardinality (clustered)", "n", accSeries...),
	}
	printTables(cfg.out(), tabs...)
	return tabs, nil
}

// Fig9Dimensionality reproduces Figure 9(c)-(d): Greedy-DisC solution
// size and node accesses on the Clustered dataset as dimensionality grows
// from 2 to 10.
func Fig9Dimensionality(cfg Config) ([]*stats.Table, error) {
	dims := []int{2, 4, 6, 8, 10}
	if cfg.Quick {
		dims = []int{2, 6, 10}
	}
	radii := cfg.radii("clustered")

	sizeSeries := make([]*stats.Series, len(radii))
	accSeries := make([]*stats.Series, len(radii))
	for i, r := range radii {
		name := fmt.Sprintf("r=%g", r)
		sizeSeries[i] = &stats.Series{Name: name}
		accSeries[i] = &stats.Series{Name: name}
	}
	for _, d := range dims {
		ds, err := dataset.Clustered(cfg.n(), d, 0, cfg.Seed)
		if err != nil {
			return nil, err
		}
		w := &workload{name: "clustered", ds: ds, metric: object.Euclidean{}}
		for i, r := range radii {
			run, _, err := cfg.execute(w, runGreyGreedyPruned, r)
			if err != nil {
				return nil, err
			}
			sizeSeries[i].Add(float64(d), float64(run.size))
			accSeries[i].Add(float64(d), float64(run.accesses))
		}
	}
	tabs := []*stats.Table{
		stats.SeriesTable("Figure 9(c) — solution size vs dimensionality (clustered)", "d", sizeSeries...),
		stats.SeriesTable("Figure 9(d) — node accesses vs dimensionality (clustered)", "d", accSeries...),
	}
	printTables(cfg.out(), tabs...)
	return tabs, nil
}
