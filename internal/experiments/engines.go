package experiments

import (
	"fmt"
	"runtime"
	"time"

	"github.com/discdiversity/disc/internal/core"
	"github.com/discdiversity/disc/internal/stats"
)

// Engines compares every index backend on the same workload and
// algorithm — the experiment the paper's future work asks for ("index
// structures beyond the M-tree"). For each radius of the standard sweep
// it runs pruned Grey-Greedy-DisC on the flat scan, the M-tree, the
// VP-tree, the R-tree and the parallel coverage graph, reporting
// solution size (identical across engines by construction), index build
// time, selection wall time and the engine's access measure. The graph
// engine's build uses cfg.Parallelism workers (0 = GOMAXPROCS).
func Engines(cfg Config, datasetName string) (*stats.Table, error) {
	w, err := cfg.load(datasetName)
	if err != nil {
		return nil, err
	}
	pts := w.ds.Points
	workers := cfg.parallelism()
	tab := stats.NewTable(
		fmt.Sprintf("Index backends — %s (n=%d, Greedy-DisC pruned, %d workers)", datasetName, len(pts), workers),
		"engine", "r", "size", "build ms", "select ms", "accesses")

	builders := []struct {
		name  string
		build func(r float64) (core.Engine, error)
		// rebuild, when non-nil, marks builders whose index depends on
		// the query radius; it adapts the engine to the next radius of
		// the sweep (the same path Diversifier takes), exercising the
		// radius-reuse fast paths. The others are built once and reused,
		// since ResetAccesses and the algorithm's StartCoverage reset
		// all per-run state.
		rebuild func(e core.Engine, r float64) (core.Engine, error)
	}{
		{"flat", func(float64) (core.Engine, error) { return core.NewFlatEngine(pts, w.metric) }, nil},
		{"mtree", func(float64) (core.Engine, error) {
			return core.BuildTreeEngine(cfg.treeConfig(w.metric), pts)
		}, nil},
		{"vptree", func(float64) (core.Engine, error) { return core.BuildVPEngine(pts, w.metric, cfg.Seed) }, nil},
		{"rtree", func(float64) (core.Engine, error) { return core.BuildRTreeEngine(pts, w.metric, 0) }, nil},
		{"grid", func(r float64) (core.Engine, error) { return core.BuildGridEngine(pts, w.metric, r) },
			func(e core.Engine, r float64) (core.Engine, error) {
				ge := e.(*core.GridEngine)
				return ge, ge.EnsureRadius(r)
			}},
		{"graph", func(r float64) (core.Engine, error) {
			return core.BuildParallelGraphEngine(pts, w.metric, r, workers)
		}, func(e core.Engine, r float64) (core.Engine, error) {
			return e.(*core.ParallelGraphEngine).Rebuild(r)
		}},
	}

	for _, b := range builders {
		var e core.Engine
		var buildMS time.Duration
		for _, r := range cfg.radii(datasetName) {
			switch {
			case e == nil:
				buildStart := time.Now()
				var err error
				e, err = b.build(r)
				if err != nil {
					return nil, err
				}
				buildMS = time.Since(buildStart)
			case b.rebuild != nil:
				buildStart := time.Now()
				var err error
				e, err = b.rebuild(e, r)
				if err != nil {
					return nil, err
				}
				buildMS = time.Since(buildStart)
			}
			e.ResetAccesses()
			selStart := time.Now()
			s := core.GreedyDisC(e, r, core.GreedyOptions{Update: core.UpdateGrey, Pruned: true})
			selMS := time.Since(selStart)
			tab.AddRow(b.name, r, s.Size(),
				fmt.Sprintf("%.1f", float64(buildMS.Microseconds())/1000),
				fmt.Sprintf("%.1f", float64(selMS.Microseconds())/1000),
				s.Accesses)
		}
	}
	printTables(cfg.out(), tab)
	return tab, nil
}

// parallelism returns the configured graph-build worker count, defaulting
// to all cores.
func (c Config) parallelism() int {
	if c.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Parallelism
}
