package experiments

import (
	"fmt"
	"runtime"
	"time"

	"github.com/discdiversity/disc/internal/core"
	"github.com/discdiversity/disc/internal/stats"
)

// Engines compares every index backend on the same workload and
// algorithm — the experiment the paper's future work asks for ("index
// structures beyond the M-tree"). For each radius of the standard sweep
// it runs pruned Grey-Greedy-DisC on the flat scan, the M-tree, the
// VP-tree, the R-tree and the parallel coverage graph, reporting
// solution size (identical across engines by construction), index build
// time, selection wall time and the engine's access measure. The graph
// engine's build uses cfg.Parallelism workers (0 = GOMAXPROCS).
func Engines(cfg Config, datasetName string) (*stats.Table, error) {
	w, err := cfg.load(datasetName)
	if err != nil {
		return nil, err
	}
	pts := w.ds.Points
	workers := cfg.parallelism()
	tab := stats.NewTable(
		fmt.Sprintf("Index backends — %s (n=%d, Greedy-DisC pruned, %d workers)", datasetName, len(pts), workers),
		"engine", "r", "size", "build ms", "select ms", "accesses")

	builders := []struct {
		name string
		// perRadius marks builders whose index depends on the query
		// radius (the coverage graph); the others are built once and
		// reused across the sweep, since ResetAccesses and the
		// algorithm's StartCoverage reset all per-run state.
		perRadius bool
		build     func(r float64) (core.Engine, error)
	}{
		{"flat", false, func(float64) (core.Engine, error) { return core.NewFlatEngine(pts, w.metric) }},
		{"mtree", false, func(float64) (core.Engine, error) {
			return core.BuildTreeEngine(cfg.treeConfig(w.metric), pts)
		}},
		{"vptree", false, func(float64) (core.Engine, error) { return core.BuildVPEngine(pts, w.metric, cfg.Seed) }},
		{"rtree", false, func(float64) (core.Engine, error) { return core.BuildRTreeEngine(pts, w.metric, 0) }},
		{"graph", true, func(r float64) (core.Engine, error) {
			return core.BuildParallelGraphEngine(pts, w.metric, r, workers)
		}},
	}

	for _, b := range builders {
		var e core.Engine
		var buildMS time.Duration
		for _, r := range cfg.radii(datasetName) {
			switch {
			case e == nil:
				buildStart := time.Now()
				var err error
				e, err = b.build(r)
				if err != nil {
					return nil, err
				}
				buildMS = time.Since(buildStart)
			case b.perRadius:
				// Radius changed: rebuild adjacency over the shared
				// R-tree, the same path Diversifier takes.
				buildStart := time.Now()
				var err error
				e, err = e.(*core.ParallelGraphEngine).Rebuild(r)
				if err != nil {
					return nil, err
				}
				buildMS = time.Since(buildStart)
			}
			e.ResetAccesses()
			selStart := time.Now()
			s := core.GreedyDisC(e, r, core.GreedyOptions{Update: core.UpdateGrey, Pruned: true})
			selMS := time.Since(selStart)
			tab.AddRow(b.name, r, s.Size(),
				fmt.Sprintf("%.1f", float64(buildMS.Microseconds())/1000),
				fmt.Sprintf("%.1f", float64(selMS.Microseconds())/1000),
				s.Accesses)
		}
	}
	printTables(cfg.out(), tab)
	return tab, nil
}

// parallelism returns the configured graph-build worker count, defaulting
// to all cores.
func (c Config) parallelism() int {
	if c.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Parallelism
}
