package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"slices"
	"time"

	disc "github.com/discdiversity/disc"
	"github.com/discdiversity/disc/internal/core"
	"github.com/discdiversity/disc/internal/snap"
	"github.com/discdiversity/disc/internal/stats"
)

// SnapshotBench is the machine-readable result of the "snapshot"
// experiment (the BENCH_PR4.json trajectory format): the cost of a cold
// coverage-graph build versus saving a .discsnap snapshot and
// warm-loading it back, on the canonical perf workload.
type SnapshotBench struct {
	Dataset    string  `json:"dataset"`
	N          int     `json:"n"`
	Dim        int     `json:"dim"`
	Radius     float64 `json:"radius"`
	Seed       uint64  `json:"seed"`
	GoMaxProcs int     `json:"gomaxprocs"`
	GoVersion  string  `json:"go_version"`
	Index      string  `json:"index"`

	// Edges is the coverage-graph adjacency entry count at Radius;
	// FileBytes the resulting snapshot size.
	Edges     int `json:"edges"`
	FileBytes int `json:"file_bytes"`

	// ColdBuildMS rebuilds the engine from raw points (the grid ε-join);
	// SaveMS serialises the prepared diversifier; LoadMS deserialises
	// and rehydrates a ready-to-select diversifier. LoadSpeedup is
	// ColdBuildMS / LoadMS — the factor a warm start saves.
	ColdBuildMS float64 `json:"cold_build_ms"`
	SaveMS      float64 `json:"save_ms"`
	LoadMS      float64 `json:"load_ms"`
	LoadSpeedup float64 `json:"load_speedup"`

	// SelectionsIdentical records the load-vs-fresh conformance check:
	// Greedy-DisC over the loaded engine must pick exactly the fresh
	// engine's subset.
	SelectionsIdentical bool `json:"selections_identical"`
}

// SnapshotExperiment measures cold-build vs snapshot-save vs warm-load
// for the coverage-graph backend and cross-checks that the loaded
// engine selects identically to the fresh one.
func SnapshotExperiment(cfg Config, datasetName string) (*SnapshotBench, error) {
	w, err := cfg.load(datasetName)
	if err != nil {
		return nil, err
	}
	pts := w.ds.Points
	r := cfg.perfRadius(datasetName)
	workers := cfg.parallelism()

	res := &SnapshotBench{
		Dataset:    datasetName,
		N:          len(pts),
		Dim:        w.ds.Dim(),
		Radius:     r,
		Seed:       cfg.Seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Index:      disc.IndexCoverageGraph.String(),
	}

	// Phase objects are released (niled) before the next phase is timed:
	// every phase allocates tens of MB per iteration, and on one core the
	// GC mark cost of whatever earlier phases keep live would otherwise
	// dominate the later, shorter measurements (warm load does ~10 ms of
	// real work; a retained 50 MB heap adds GC pauses of the same order).

	// Cold build: the grid ε-join from raw points, the cost a process
	// restart pays without a snapshot.
	engine, err := core.BuildParallelGraphEngine(pts, w.metric, r, workers)
	if err != nil {
		return nil, fmt.Errorf("experiments: snapshot: cold build: %w", err)
	}
	coldNs, _, _ := measure(func() {
		engine, err = core.BuildParallelGraphEngine(pts, w.metric, r, workers)
	}, 500*time.Millisecond)
	if err != nil {
		return nil, fmt.Errorf("experiments: snapshot: cold build: %w", err)
	}
	res.ColdBuildMS = float64(coldNs) / 1e6
	engine = nil
	_ = engine

	// Save: prepare a diversifier at r and serialise it.
	div, err := disc.New(pts, disc.WithMetric(w.metric),
		disc.WithIndex(disc.IndexCoverageGraph), disc.WithParallelism(workers))
	if err != nil {
		return nil, fmt.Errorf("experiments: snapshot: %w", err)
	}
	if err := div.Prepare(r); err != nil {
		return nil, fmt.Errorf("experiments: snapshot: %w", err)
	}
	var buf bytes.Buffer
	if err = div.WriteSnapshot(&buf); err != nil {
		return nil, fmt.Errorf("experiments: snapshot: save: %w", err)
	}
	res.FileBytes = buf.Len()
	saveNs, _, _ := measure(func() {
		buf.Reset()
		err = div.WriteSnapshot(&buf)
	}, 500*time.Millisecond)
	if err != nil {
		return nil, fmt.Errorf("experiments: snapshot: save: %w", err)
	}
	res.SaveMS = float64(saveNs) / 1e6

	// Fresh selection for the conformance check, then release the
	// diversifier before timing the load.
	fresh, err := div.Select(r)
	if err != nil {
		return nil, fmt.Errorf("experiments: snapshot: %w", err)
	}
	want := fresh.SortedIDs()
	data := buf.Bytes()
	parsed, err := snap.Read(bytes.NewReader(data))
	if err != nil || parsed.Graph == nil {
		return nil, fmt.Errorf("experiments: snapshot: reparse: %v", err)
	}
	res.Edges = len(parsed.Graph.Nbrs)
	parsed, fresh, div = nil, nil, nil
	_, _, _ = parsed, fresh, div

	// Warm load: decode + rehydrate a ready-to-select diversifier. Each
	// iteration's result is discarded immediately (only `data` stays
	// live in the loop) — a real warm start loads once into a near-empty
	// heap, so retaining past iterations would bill the measurement for
	// GC work no actual boot pays.
	loadNs, _, _ := measure(func() {
		var warm *disc.Diversifier
		warm, err = disc.LoadDiversifier(bytes.NewReader(data))
		_ = warm
	}, 500*time.Millisecond)
	if err != nil {
		return nil, fmt.Errorf("experiments: snapshot: load: %w", err)
	}
	res.LoadMS = float64(loadNs) / 1e6
	if res.LoadMS > 0 {
		res.LoadSpeedup = res.ColdBuildMS / res.LoadMS
	}

	// One unmeasured load feeds the conformance check.
	warm, err := disc.LoadDiversifier(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("experiments: snapshot: load: %w", err)
	}
	loaded, err := warm.Select(r)
	if err != nil {
		return nil, fmt.Errorf("experiments: snapshot: %w", err)
	}
	res.SelectionsIdentical = slices.Equal(want, loaded.SortedIDs())
	return res, nil
}

// WriteJSON renders the snapshot benchmark as indented JSON.
func (s *SnapshotBench) WriteJSON(cfg Config) error {
	enc := json.NewEncoder(cfg.out())
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Table renders the snapshot benchmark as a plain-text table.
func (s *SnapshotBench) Table() *stats.Table {
	tab := stats.NewTable(
		fmt.Sprintf("Snapshot warm start — %s (n=%d, r=%g, %s, GOMAXPROCS=%d)",
			s.Dataset, s.N, s.Radius, s.Index, s.GoMaxProcs),
		"phase", "ms", "notes")
	tab.AddRow("cold build", fmt.Sprintf("%.2f", s.ColdBuildMS), fmt.Sprintf("grid ε-join, %d edges", s.Edges))
	tab.AddRow("save", fmt.Sprintf("%.2f", s.SaveMS), fmt.Sprintf("%d bytes", s.FileBytes))
	tab.AddRow("warm load", fmt.Sprintf("%.2f", s.LoadMS), fmt.Sprintf("%.1fx faster than cold build", s.LoadSpeedup))
	tab.AddRow("conformance", "", fmt.Sprintf("selections identical: %v", s.SelectionsIdentical))
	return tab
}
