package experiments

import (
	"fmt"

	"github.com/discdiversity/disc/internal/core"
	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/stats"
)

// Capacity reproduces the in-text claim that doubling the M-tree node
// capacity reduces node accesses by roughly 45%: Greedy-DisC accesses on
// the clustered dataset for capacities 25, 50 and 100.
func Capacity(cfg Config) (*stats.Table, error) {
	w, err := cfg.load("clustered")
	if err != nil {
		return nil, err
	}
	radii := cfg.radii("clustered")
	var series []*stats.Series
	for _, capacity := range []int{25, 50, 100} {
		c := cfg
		c.Capacity = capacity
		s := &stats.Series{Name: fmt.Sprintf("capacity=%d", capacity)}
		for _, r := range radii {
			run, _, err := c.execute(w, runGreyGreedyPruned, r)
			if err != nil {
				return nil, err
			}
			s.Add(r, float64(run.accesses))
		}
		series = append(series, s)
	}
	tab := stats.SeriesTable("Ablation — node accesses vs node capacity (clustered)", "radius", series...)
	printTables(cfg.out(), tab)
	return tab, nil
}

// FastCAblation reproduces the in-text Fast-C claims: it needs fewer node
// accesses than Greedy-C while computing similar-sized solutions with a
// larger share of independent (pairwise dissimilar) objects.
func FastCAblation(cfg Config, datasetName string) (*stats.Table, error) {
	w, err := cfg.load(datasetName)
	if err != nil {
		return nil, err
	}
	radii := cfg.radii(datasetName)
	tab := stats.NewTable(
		fmt.Sprintf("Ablation — Greedy-C vs Fast-C (%s)", datasetName),
		"radius", "G-C size", "Fast-C size", "G-C accesses", "Fast-C accesses", "G-C indep%", "Fast-C indep%")
	for _, r := range radii {
		gcRun, gcSol, err := cfg.execute(w, runGreedyC, r)
		if err != nil {
			return nil, err
		}
		fcRun, fcSol, err := cfg.execute(w, runFastC, r)
		if err != nil {
			return nil, err
		}
		tab.AddRow(r, gcRun.size, fcRun.size, gcRun.accesses, fcRun.accesses,
			independentShare(w, gcSol, r), independentShare(w, fcSol, r))
	}
	printTables(cfg.out(), tab)
	return tab, nil
}

// independentShare returns the percentage of selected objects with no
// other selected object within r.
func independentShare(w *workload, s *core.Solution, r float64) float64 {
	if s.Size() == 0 {
		return 100
	}
	independent := 0
	for _, a := range s.IDs {
		ok := true
		for _, b := range s.IDs {
			if a != b && w.metric.Dist(w.ds.Points[a], w.ds.Points[b]) <= r {
				ok = false
				break
			}
		}
		if ok {
			independent++
		}
	}
	return 100 * float64(independent) / float64(s.Size())
}

// bottomUpBasicEngine overrides both neighbour-query forms to use
// bottom-up range queries, turning Basic-DisC into its bottom-up variant
// for the ablation below. Overriding NeighborsAppend matters: the
// algorithms query through the buffer-reusing form.
type bottomUpBasicEngine struct{ *core.TreeEngine }

func (b bottomUpBasicEngine) Neighbors(id int, r float64) []object.Neighbor {
	return b.NeighborsBottomUp(id, r, false)
}

func (b bottomUpBasicEngine) NeighborsAppend(dst []object.Neighbor, id int, r float64) []object.Neighbor {
	return b.NeighborsBottomUpAppend(dst, id, r, false)
}

// BottomUp reproduces the in-text claim that bottom-up range queries save
// at most ~5% of node accesses over top-down ones: Basic-DisC run both
// ways across the radius sweep.
func BottomUp(cfg Config, datasetName string) (*stats.Table, error) {
	w, err := cfg.load(datasetName)
	if err != nil {
		return nil, err
	}
	radii := cfg.radii(datasetName)
	tab := stats.NewTable(
		fmt.Sprintf("Ablation — top-down vs bottom-up range queries, Basic-DisC (%s)", datasetName),
		"radius", "top-down", "bottom-up", "saving%")
	for _, r := range radii {
		td, _, err := cfg.execute(w, runBasic, r)
		if err != nil {
			return nil, err
		}
		e, err := cfg.buildEngine(w, false, r)
		if err != nil {
			return nil, err
		}
		e.ResetAccesses()
		sol := core.BasicDisC(bottomUpBasicEngine{e}, r, false)
		saving := 100 * (1 - float64(sol.Accesses)/float64(td.accesses))
		tab.AddRow(r, td.accesses, sol.Accesses, saving)
	}
	printTables(cfg.out(), tab)
	return tab, nil
}

// BuildInit reproduces the in-text claim that computing neighbourhood
// sizes while building the M-tree reduces node accesses by up to 45%
// compared to initialising them with per-object range queries after the
// build. Both totals include every access from an empty tree to a
// finished Greedy-DisC run.
func BuildInit(cfg Config, datasetName string) (*stats.Table, error) {
	w, err := cfg.load(datasetName)
	if err != nil {
		return nil, err
	}
	radii := cfg.radii(datasetName)
	tab := stats.NewTable(
		fmt.Sprintf("Ablation — count initialisation during vs after build (%s)", datasetName),
		"radius", "during-build", "after-build", "saving%")
	for _, r := range radii {
		during, err := cfg.buildEngine(w, true, r)
		if err != nil {
			return nil, err
		}
		core.GreedyDisC(during, r, core.GreedyOptions{Update: core.UpdateGrey, Pruned: true})
		duringTotal := during.Accesses() // build + init + run

		after, err := cfg.buildEngine(w, false, r)
		if err != nil {
			return nil, err
		}
		core.GreedyDisC(after, r, core.GreedyOptions{Update: core.UpdateGrey, Pruned: true})
		afterTotal := after.Accesses() // build + n queries + run

		saving := 100 * (1 - float64(duringTotal)/float64(afterTotal))
		tab.AddRow(r, duringTotal, afterTotal, saving)
	}
	printTables(cfg.out(), tab)
	return tab, nil
}
