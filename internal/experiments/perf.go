package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"github.com/discdiversity/disc/internal/core"
	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/stats"
)

// PerfEngine is one engine's measurement in a performance snapshot: a
// repeated index build (wall time per op — the metric the bench guard
// diffs alongside the selections), a repeated pruned Greedy-DisC
// selection in both execution modes (global, and component-decomposed
// with the default worker count — SelectComponents* rows) and the
// steady-state reusable-buffer neighbour query.
type PerfEngine struct {
	Engine               string  `json:"engine"`
	BuildNsOp            int64   `json:"build_ns_op"`
	BuildMS              float64 `json:"build_ms"`
	SelectNsOp           int64   `json:"select_ns_op"`
	SelectMSOp           float64 `json:"select_ms_op"`
	SelectAllocsOp       int64   `json:"select_allocs_op"`
	SelectBytesOp        int64   `json:"select_bytes_op"`
	SelectComponentsNsOp int64   `json:"select_components_ns_op"`
	SelectComponentsMSOp float64 `json:"select_components_ms_op"`
	NeighborsNsOp        int64   `json:"neighbors_ns_op"`
	NeighborsAllocsOp    int64   `json:"neighbors_allocs_op"`
	SolutionSize         int     `json:"solution_size"`
	Accesses             int64   `json:"accesses"`
}

// PerfSnapshot is the machine-readable result of the "perf" experiment —
// the repo's benchmark trajectory format (see BENCH_PR2.json).
type PerfSnapshot struct {
	Dataset    string  `json:"dataset"`
	N          int     `json:"n"`
	Dim        int     `json:"dim"`
	Radius     float64 `json:"radius"`
	Seed       uint64  `json:"seed"`
	GoMaxProcs int     `json:"gomaxprocs"`
	GoVersion  string  `json:"go_version"`
	Algorithm  string  `json:"algorithm"`
	// Components and LargestComponent describe the r-coverage graph's
	// connected-component structure at Radius (identical for every
	// engine), the shape that determines how much the component-
	// decomposed selection can exploit.
	Components       int          `json:"components"`
	LargestComponent int          `json:"largest_component"`
	Engines          []PerfEngine `json:"engines"`

	// Telemetry is the in-process metrics view over the whole snapshot
	// run: selection and grid-build histogram quantiles aggregated
	// across the measured engines (the instrumented counterpart of the
	// per-engine wall-clock rows above).
	Telemetry *ExperimentTelemetry `json:"telemetry,omitempty"`
}

// measure runs f repeatedly until budget elapses (always at least once)
// and reports per-iteration wall time, heap allocations and bytes. A
// deliberate fixed-budget stand-in for testing.Benchmark (which would
// also work in a non-test binary): the snapshot's total runtime stays
// bounded and deterministic even when one engine is orders of magnitude
// slower than another, at the cost of slightly coarser numbers than
// `go test -bench` calibration.
func measure(f func(), budget time.Duration) (nsOp, allocsOp, bytesOp int64) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	iters := int64(0)
	for {
		f()
		iters++
		if time.Since(start) >= budget {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return elapsed.Nanoseconds() / iters,
		int64(m1.Mallocs-m0.Mallocs) / iters,
		int64(m1.TotalAlloc-m0.TotalAlloc) / iters
}

// perfRadius picks the snapshot radius: the explicit cfg.Radius when
// set, otherwise the middle of the dataset's standard sweep.
func (c Config) perfRadius(datasetName string) float64 {
	if c.Radius > 0 {
		return c.Radius
	}
	rs := Radii(datasetName)
	return rs[len(rs)/2]
}

// Perf measures all six index backends on the same pruned Greedy-DisC
// workload and returns the snapshot. The linear-scan engine is skipped
// above 20k objects, where a single quadratic selection would dominate
// the whole snapshot's runtime; the JSON then records the five indexed
// engines. Builds are measured like selections (repeated under a fixed
// budget), since build time is a guarded metric of the snapshot.
func Perf(cfg Config, datasetName string) (*PerfSnapshot, error) {
	w, err := cfg.load(datasetName)
	if err != nil {
		return nil, err
	}
	pts := w.ds.Points
	workers := cfg.parallelism()
	r := cfg.perfRadius(datasetName)
	snap := &PerfSnapshot{
		Dataset:    datasetName,
		N:          len(pts),
		Dim:        w.ds.Dim(),
		Radius:     r,
		Seed:       cfg.Seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Algorithm:  "Grey-Greedy-DisC (Pruned)",
	}

	probe := newTelemetryProbe()
	builders := []struct {
		name  string
		build func() (core.Engine, error)
	}{
		{"flat", func() (core.Engine, error) { return core.NewFlatEngine(pts, w.metric) }},
		{"mtree", func() (core.Engine, error) {
			return core.BuildTreeEngine(cfg.treeConfig(w.metric), pts)
		}},
		{"vptree", func() (core.Engine, error) { return core.BuildVPEngine(pts, w.metric, cfg.Seed) }},
		{"rtree", func() (core.Engine, error) { return core.BuildRTreeEngine(pts, w.metric, 0) }},
		{"grid", func() (core.Engine, error) { return core.BuildGridEngine(pts, w.metric, r) }},
		{"graph", func() (core.Engine, error) {
			return core.BuildParallelGraphEngine(pts, w.metric, r, workers)
		}},
	}

	for _, b := range builders {
		if b.name == "flat" && len(pts) > 20000 {
			continue
		}
		// Surface build errors on a first build before spending the
		// measurement budget; the measured rebuilds cannot fail after
		// one build succeeded (same inputs).
		e, err := b.build()
		if err != nil {
			return nil, fmt.Errorf("experiments: perf: %s: %w", b.name, err)
		}
		pe := PerfEngine{Engine: b.name}
		pe.BuildNsOp, _, _ = measure(func() {
			e, _ = b.build()
		}, 500*time.Millisecond)
		pe.BuildMS = float64(pe.BuildNsOp) / 1e6

		var sol *core.Solution
		pe.SelectNsOp, pe.SelectAllocsOp, pe.SelectBytesOp = measure(func() {
			e.ResetAccesses()
			sol = core.GreedyDisC(e, r, core.GreedyOptions{Update: core.UpdateGrey, Pruned: true})
		}, 2*time.Second)
		pe.SelectMSOp = float64(pe.SelectNsOp) / 1e6
		pe.SolutionSize = sol.Size()
		pe.Accesses = sol.Accesses

		// Component-decomposed selection, same workload. The graph
		// engine labels its CSR once and serves the cached decomposition
		// thereafter (the steady-state a warm-started or repeatedly
		// selecting process sees); engines without a materialised
		// adjacency pay their per-selection query pass inside the loop.
		var csol *core.Solution
		pe.SelectComponentsNsOp, _, _ = measure(func() {
			e.ResetAccesses()
			csol = core.GreedyDisCComponents(e, r, core.GreedyOptions{Update: core.UpdateGrey, Pruned: true}, workers)
		}, 2*time.Second)
		pe.SelectComponentsMSOp = float64(pe.SelectComponentsNsOp) / 1e6
		if csol.Size() != sol.Size() {
			return nil, fmt.Errorf("experiments: perf: %s: component selection size %d differs from global %d", b.name, csol.Size(), sol.Size())
		}
		if cov, ok := e.(core.CoverageEngine); ok && snap.Components == 0 {
			cp := cov.Components(r)
			snap.Components = cp.Count
			snap.LargestComponent = cp.Largest()
		}

		buf := make([]object.Neighbor, 0, 4096)
		id := 0
		pe.NeighborsNsOp, pe.NeighborsAllocsOp, _ = measure(func() {
			buf = e.NeighborsAppend(buf[:0], id, r)
			id = (id + 1) % len(pts)
		}, 200*time.Millisecond)

		snap.Engines = append(snap.Engines, pe)
	}
	snap.Telemetry = probe.Report()
	return snap, nil
}

// WriteJSON renders the snapshot as indented JSON.
func (s *PerfSnapshot) WriteJSON(cfg Config) error {
	enc := json.NewEncoder(cfg.out())
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Table renders the snapshot as a plain-text table (the -format=text
// view of the perf experiment).
func (s *PerfSnapshot) Table() *stats.Table {
	tab := stats.NewTable(
		fmt.Sprintf("Perf snapshot — %s (n=%d, r=%g, %s, GOMAXPROCS=%d, %d components, largest %d)",
			s.Dataset, s.N, s.Radius, s.Algorithm, s.GoMaxProcs, s.Components, s.LargestComponent),
		"engine", "build ms", "select ms/op", "cmp-select ms/op", "allocs/op", "B/op", "nbr ns/op", "nbr allocs/op", "size", "accesses")
	for _, e := range s.Engines {
		tab.AddRow(e.Engine,
			fmt.Sprintf("%.1f", e.BuildMS),
			fmt.Sprintf("%.2f", e.SelectMSOp),
			fmt.Sprintf("%.2f", e.SelectComponentsMSOp),
			e.SelectAllocsOp, e.SelectBytesOp,
			e.NeighborsNsOp, e.NeighborsAllocsOp,
			e.SolutionSize, e.Accesses)
	}
	return tab
}
