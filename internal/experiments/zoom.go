package experiments

import (
	"fmt"

	"github.com/discdiversity/disc/internal/core"
	"github.com/discdiversity/disc/internal/stats"
)

// zoomRadiiIn returns the descending radius ladder of Figures 11-13: each
// zoom-in solution for r' is adapted from the solution for the
// immediately larger radius.
func zoomRadiiIn(datasetName string, quick bool) []float64 {
	var rs []float64
	if datasetName == "cities" {
		rs = []float64{0.01, 0.0075, 0.005, 0.0025, 0.001}
	} else {
		rs = []float64{0.07, 0.06, 0.05, 0.04, 0.03, 0.02}
	}
	if quick {
		rs = rs[:3]
	}
	return rs
}

// zoomRadiiOut returns the ascending ladder of Figures 14-16.
func zoomRadiiOut(datasetName string, quick bool) []float64 {
	var rs []float64
	if datasetName == "cities" {
		rs = []float64{0.0025, 0.005, 0.0075, 0.01, 0.0125}
	} else {
		rs = []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06}
	}
	if quick {
		rs = rs[:3]
	}
	return rs
}

// ZoomIn reproduces Figures 11, 12 and 13 for one dataset ("clustered" or
// "cities"): solution size, node accesses and Jaccard distance of Zoom-In
// and Greedy-Zoom-In versus recomputing with Greedy-DisC from scratch.
// For each step the zooming algorithms adapt the Greedy-DisC solution of
// the immediately larger radius; the Jaccard distance is measured against
// that previous solution (lower = closer to what the user already saw).
func ZoomIn(cfg Config, datasetName string) ([]*stats.Table, error) {
	w, err := cfg.load(datasetName)
	if err != nil {
		return nil, err
	}
	radii := zoomRadiiIn(datasetName, cfg.Quick)

	sizeS := []*stats.Series{{Name: "Greedy-DisC"}, {Name: "Zoom-In"}, {Name: "Greedy-Zoom-In"}}
	accS := []*stats.Series{{Name: "Greedy-DisC"}, {Name: "Zoom-In"}, {Name: "Greedy-Zoom-In"}}
	jacS := []*stats.Series{{Name: "vs Greedy-DisC"}, {Name: "vs Zoom-In"}, {Name: "vs Greedy-Zoom-In"}}

	for step := 1; step < len(radii); step++ {
		rPrev, rNew := radii[step-1], radii[step]

		// Previous solution at the larger radius (what the user saw).
		_, prev, err := cfg.execute(w, runGreyGreedyPruned, rPrev)
		if err != nil {
			return nil, err
		}
		// From scratch at the new radius.
		scratchRun, scratch, err := cfg.execute(w, runGreyGreedyPruned, rNew)
		if err != nil {
			return nil, err
		}
		// Zooming algorithms, both adapting prev. Each gets a fresh
		// engine; the post-processing pass restoring exact
		// closest-black distances is run before measurement starts,
		// matching the paper's attribution of that pass to the
		// construction of S^r.
		measureZoom := func(greedy bool) (algoRun, *core.Solution, error) {
			e, err := cfg.buildEngine(w, false, rNew)
			if err != nil {
				return algoRun{}, nil, err
			}
			p := prev.Clone()
			core.RecomputeDistBlack(e, p)
			e.ResetAccesses()
			z, err := core.ZoomIn(e, p, rNew, greedy, true)
			if err != nil {
				return algoRun{}, nil, err
			}
			return algoRun{radius: rNew, size: z.Size(), accesses: z.Accesses}, z, nil
		}
		plainRun, plain, err := measureZoom(false)
		if err != nil {
			return nil, err
		}
		greedyRun, greedyZ, err := measureZoom(true)
		if err != nil {
			return nil, err
		}

		sizeS[0].Add(rNew, float64(scratchRun.size))
		sizeS[1].Add(rNew, float64(plainRun.size))
		sizeS[2].Add(rNew, float64(greedyRun.size))
		accS[0].Add(rNew, float64(scratchRun.accesses))
		accS[1].Add(rNew, float64(plainRun.accesses))
		accS[2].Add(rNew, float64(greedyRun.accesses))
		jacS[0].Add(rNew, core.Jaccard(prev, scratch))
		jacS[1].Add(rNew, core.Jaccard(prev, plain))
		jacS[2].Add(rNew, core.Jaccard(prev, greedyZ))
	}

	tabs := []*stats.Table{
		stats.SeriesTable(fmt.Sprintf("Figure 11 — zoom-in solution size (%s)", datasetName), "r'", sizeS...),
		stats.SeriesTable(fmt.Sprintf("Figure 12 — zoom-in node accesses (%s)", datasetName), "r'", accS...),
		stats.SeriesTable(fmt.Sprintf("Figure 13 — zoom-in Jaccard distance to S^r (%s)", datasetName), "r'", jacS...),
	}
	printTables(cfg.out(), tabs...)
	return tabs, nil
}

// ZoomOut reproduces Figures 14, 15 and 16 for one dataset: solution
// size, node accesses and Jaccard distance of Zoom-Out and the three
// Greedy-Zoom-Out variants versus Greedy-DisC from scratch.
func ZoomOut(cfg Config, datasetName string) ([]*stats.Table, error) {
	w, err := cfg.load(datasetName)
	if err != nil {
		return nil, err
	}
	radii := zoomRadiiOut(datasetName, cfg.Quick)

	names := []string{"Greedy-DisC", "Zoom-Out", "G-Z-Out (a)", "G-Z-Out (b)", "G-Z-Out (c)"}
	variants := []core.ZoomOutVariant{0: core.ZoomOutPlain, 1: core.ZoomOutGreedyA, 2: core.ZoomOutGreedyB, 3: core.ZoomOutGreedyC}
	sizeS := make([]*stats.Series, len(names))
	accS := make([]*stats.Series, len(names))
	jacS := make([]*stats.Series, len(names))
	for i, n := range names {
		sizeS[i] = &stats.Series{Name: n}
		accS[i] = &stats.Series{Name: n}
		jacS[i] = &stats.Series{Name: "vs " + n}
	}

	for step := 1; step < len(radii); step++ {
		rPrev, rNew := radii[step-1], radii[step]
		_, prev, err := cfg.execute(w, runGreyGreedyPruned, rPrev)
		if err != nil {
			return nil, err
		}
		scratchRun, scratch, err := cfg.execute(w, runGreyGreedyPruned, rNew)
		if err != nil {
			return nil, err
		}
		sizeS[0].Add(rNew, float64(scratchRun.size))
		accS[0].Add(rNew, float64(scratchRun.accesses))
		jacS[0].Add(rNew, core.Jaccard(prev, scratch))

		for vi, v := range variants {
			e, err := cfg.buildEngine(w, false, rNew)
			if err != nil {
				return nil, err
			}
			p := prev.Clone()
			core.RecomputeDistBlack(e, p)
			e.ResetAccesses()
			z, err := core.ZoomOut(e, p, rNew, v)
			if err != nil {
				return nil, err
			}
			sizeS[vi+1].Add(rNew, float64(z.Size()))
			accS[vi+1].Add(rNew, float64(z.Accesses))
			jacS[vi+1].Add(rNew, core.Jaccard(prev, z))
		}
	}

	tabs := []*stats.Table{
		stats.SeriesTable(fmt.Sprintf("Figure 14 — zoom-out solution size (%s)", datasetName), "r'", sizeS...),
		stats.SeriesTable(fmt.Sprintf("Figure 15 — zoom-out node accesses (%s)", datasetName), "r'", accS...),
		stats.SeriesTable(fmt.Sprintf("Figure 16 — zoom-out Jaccard distance to S^r (%s)", datasetName), "r'", jacS...),
	}
	printTables(cfg.out(), tabs...)
	return tabs, nil
}
