// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 6) plus its in-text ablation claims. Each runner
// regenerates one artefact as plain-text tables: the same rows/series the
// paper plots. See DESIGN.md for the experiment index and EXPERIMENTS.md
// for paper-vs-measured results.
package experiments

import (
	"fmt"
	"io"

	"github.com/discdiversity/disc/internal/core"
	"github.com/discdiversity/disc/internal/dataset"
	"github.com/discdiversity/disc/internal/mtree"
	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/stats"
)

// Config holds the shared experiment parameters (paper Table 2 defaults).
type Config struct {
	// Seed drives all dataset generation.
	Seed uint64
	// N is the synthetic dataset cardinality (paper default 10000).
	N int
	// Dim is the synthetic dataset dimensionality (paper default 2).
	Dim int
	// Capacity is the M-tree node capacity (paper default 50).
	Capacity int
	// Parallelism is the worker count for the parallel coverage-graph
	// build in the engines experiment (0 = GOMAXPROCS).
	Parallelism int
	// Radius overrides the query radius for single-radius experiments
	// (perf); 0 selects the middle of the dataset's standard sweep.
	Radius float64
	// Format selects the output encoding where an experiment supports
	// more than one ("text" is the default; perf also accepts "json").
	Format string
	// Quick trims sweeps for fast runs (benchmarks, smoke tests).
	Quick bool
	// Out receives the rendered tables; nil discards them.
	Out io.Writer
}

// DefaultConfig mirrors the paper's Table 2.
func DefaultConfig() Config {
	return Config{Seed: 42, N: 10000, Dim: 2, Capacity: 50}
}

func (c Config) n() int {
	if c.N <= 0 {
		return 10000
	}
	if c.Quick && c.N > 2000 {
		return 2000
	}
	return c.N
}

func (c Config) dim() int {
	if c.Dim <= 0 {
		return 2
	}
	return c.Dim
}

func (c Config) capacity() int {
	if c.Capacity <= 0 {
		return 50
	}
	return c.Capacity
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

// Radii returns the per-dataset radius sweep the paper uses (Table 3 and
// Figures 7-8).
func Radii(datasetName string) []float64 {
	switch datasetName {
	case "cities":
		return []float64{0.001, 0.0025, 0.005, 0.0075, 0.01, 0.0125, 0.015}
	case "cameras":
		return []float64{1, 2, 3, 4, 5, 6}
	default:
		return []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07}
	}
}

func (c Config) radii(datasetName string) []float64 {
	rs := Radii(datasetName)
	if c.Quick {
		// Keep endpoints and the middle.
		return []float64{rs[0], rs[len(rs)/2], rs[len(rs)-1]}
	}
	return rs
}

// workload bundles the prepared data of one experiment run.
type workload struct {
	name   string
	ds     *object.Dataset
	metric object.Metric
}

func (c Config) load(datasetName string) (*workload, error) {
	n := c.n()
	if c.Quick && datasetName == "cities" {
		// The cities stand-in has fixed cardinality; quick mode
		// subsamples it deterministically.
		full := dataset.Cities(c.Seed)
		ids := make([]int, 0, full.Len()/3)
		for i := 0; i < full.Len(); i += 3 {
			ids = append(ids, i)
		}
		return &workload{name: datasetName, ds: full.Subset(ids), metric: object.Euclidean{}}, nil
	}
	ds, m, err := dataset.ByName(datasetName, n, c.dim(), c.Seed)
	if err != nil {
		return nil, err
	}
	return &workload{name: datasetName, ds: ds, metric: m}, nil
}

func (c Config) treeConfig(m object.Metric) mtree.Config {
	return mtree.Config{Capacity: c.capacity(), Metric: m, Policy: mtree.MinOverlap, Seed: c.Seed}
}

// buildEngine constructs a fresh M-tree engine for a run; withCounts
// additionally collects |N_r| during the build (the paper's Greedy-DisC
// initialisation).
func (c Config) buildEngine(w *workload, withCounts bool, r float64) (*core.TreeEngine, error) {
	if withCounts {
		return core.BuildTreeEngineWithCounts(c.treeConfig(w.metric), w.ds.Points, r)
	}
	return core.BuildTreeEngine(c.treeConfig(w.metric), w.ds.Points)
}

// algoRun is one (algorithm, radius) measurement.
type algoRun struct {
	algorithm string
	radius    float64
	size      int
	accesses  int64
}

// runner executes a named algorithm on a fresh engine and reports the
// solution and cost. Fresh engines per run keep access accounting and
// coverage state independent across algorithms, as in the paper.
type runner struct {
	name string
	// wantCounts marks greedy variants that use build-time counts.
	wantCounts bool
	run        func(e core.Engine, r float64) *core.Solution
}

// The algorithm roster of Table 3 / Figures 7-8 with the paper's labels.
var (
	runBasic = runner{"B-DisC", false, func(e core.Engine, r float64) *core.Solution {
		return core.BasicDisC(e, r, false)
	}}
	runBasicPruned = runner{"B-DisC (P)", false, func(e core.Engine, r float64) *core.Solution {
		return core.BasicDisC(e, r, true)
	}}
	runGreyGreedy = runner{"Gr-G-DisC", true, func(e core.Engine, r float64) *core.Solution {
		return core.GreedyDisC(e, r, core.GreedyOptions{Update: core.UpdateGrey})
	}}
	runGreyGreedyPruned = runner{"Gr-G-DisC (P)", true, func(e core.Engine, r float64) *core.Solution {
		return core.GreedyDisC(e, r, core.GreedyOptions{Update: core.UpdateGrey, Pruned: true})
	}}
	runWhiteGreedyPruned = runner{"Wh-G-DisC (P)", true, func(e core.Engine, r float64) *core.Solution {
		return core.GreedyDisC(e, r, core.GreedyOptions{Update: core.UpdateWhite, Pruned: true})
	}}
	runLazyGreyPruned = runner{"L-Gr-G-DisC (P)", true, func(e core.Engine, r float64) *core.Solution {
		return core.GreedyDisC(e, r, core.GreedyOptions{Update: core.UpdateLazyGrey, Pruned: true})
	}}
	runLazyWhitePruned = runner{"L-Wh-G-DisC (P)", true, func(e core.Engine, r float64) *core.Solution {
		return core.GreedyDisC(e, r, core.GreedyOptions{Update: core.UpdateLazyWhite, Pruned: true})
	}}
	runGreedyC = runner{"G-C", true, func(e core.Engine, r float64) *core.Solution {
		return core.GreedyC(e, r)
	}}
	runFastC = runner{"Fast-C", true, func(e core.Engine, r float64) *core.Solution {
		return core.FastC(e, r)
	}}
)

// execute runs r on a fresh engine for the workload and returns the
// measurement.
func (c Config) execute(w *workload, rn runner, r float64) (algoRun, *core.Solution, error) {
	e, err := c.buildEngine(w, rn.wantCounts, r)
	if err != nil {
		return algoRun{}, nil, err
	}
	e.ResetAccesses()
	s := rn.run(e, r)
	return algoRun{algorithm: rn.name, radius: r, size: s.Size(), accesses: s.Accesses}, s, nil
}

func printTables(out io.Writer, tables ...*stats.Table) {
	for _, t := range tables {
		t.Fprint(out)
		fmt.Fprintln(out)
	}
}
