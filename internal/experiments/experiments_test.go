package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"github.com/discdiversity/disc/internal/stats"
)

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Quick = true
	cfg.N = 800
	return cfg
}

func TestEnginesExperimentSizesAgree(t *testing.T) {
	cfg := quickConfig()
	cfg.Parallelism = 4
	tab, err := Engines(cfg, "clustered")
	if err != nil {
		t.Fatal(err)
	}
	// 6 engines x 3 quick radii; the greedy solution size at a given
	// radius must be identical on every engine (deterministic greedy).
	if len(tab.Rows) != 18 {
		t.Fatalf("expected 18 rows, got %d", len(tab.Rows))
	}
	sizeAt := map[string]string{}
	for _, row := range tab.Rows {
		key := row[1] // radius column
		if want, ok := sizeAt[key]; ok && row[2] != want {
			t.Errorf("engine %s at r=%s: size %s, other engines got %s", row[0], key, row[2], want)
		} else {
			sizeAt[key] = row[2]
		}
	}
}

func TestRadiiPerDataset(t *testing.T) {
	if got := Radii("uniform"); len(got) != 7 || got[0] != 0.01 || got[6] != 0.07 {
		t.Errorf("uniform radii %v", got)
	}
	if got := Radii("cities"); len(got) != 7 || got[0] != 0.001 {
		t.Errorf("cities radii %v", got)
	}
	if got := Radii("cameras"); len(got) != 6 || got[0] != 1 || got[5] != 6 {
		t.Errorf("cameras radii %v", got)
	}
}

func TestTable3ShapeMatchesPaper(t *testing.T) {
	cfg := quickConfig()
	tab, err := Table3(cfg, "clustered")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("expected 5 algorithm rows, got %d", len(tab.Rows))
	}
	// Paper-shape assertions: sizes decrease with the radius for every
	// algorithm, and Greedy-DisC never exceeds Basic-DisC.
	sizes := parseIntRows(t, tab)
	for alg, row := range sizes {
		for i := 1; i < len(row); i++ {
			if row[i] > row[i-1] {
				t.Errorf("row %d: size grew with radius: %v", alg, row)
			}
		}
	}
	for i := range sizes[0] {
		if sizes[1][i] > sizes[0][i] {
			t.Errorf("G-DisC (%d) larger than B-DisC (%d) at column %d", sizes[1][i], sizes[0][i], i)
		}
	}
}

func parseIntRows(t *testing.T, tab *stats.Table) [][]int {
	t.Helper()
	out := make([][]int, len(tab.Rows))
	for i, row := range tab.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.Atoi(cell)
			if err != nil {
				t.Fatalf("row %d: parse %q: %v", i, cell, err)
			}
			out[i] = append(out[i], v)
		}
	}
	return out
}

func TestFig7PruningHelps(t *testing.T) {
	cfg := quickConfig()
	tab, err := Fig7(cfg, "clustered")
	if err != nil {
		t.Fatal(err)
	}
	// Columns: radius, B-DisC, B-DisC (P), Gr-G-DisC, Gr-G-DisC (P), G-C.
	if len(tab.Headers) != 6 {
		t.Fatalf("headers %v", tab.Headers)
	}
	for _, row := range tab.Rows {
		basic := atof(t, row[1])
		basicP := atof(t, row[2])
		greedy := atof(t, row[3])
		greedyP := atof(t, row[4])
		if basicP > basic {
			t.Errorf("pruned Basic-DisC costlier than unpruned: %v", row)
		}
		if greedyP > greedy {
			t.Errorf("pruned Greedy-DisC costlier than unpruned: %v", row)
		}
		if basic > greedy {
			t.Errorf("Basic-DisC costlier than Greedy-DisC (paper has the opposite): %v", row)
		}
	}
}

func TestFig9CardinalitySizesGrow(t *testing.T) {
	cfg := quickConfig()
	tabs, err := Fig9Cardinality(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("expected 2 tables")
	}
	sizeTab := tabs[0]
	// For the smallest radius (first series column), size must grow with
	// cardinality.
	first := atof(t, sizeTab.Rows[0][1])
	last := atof(t, sizeTab.Rows[len(sizeTab.Rows)-1][1])
	if last <= first {
		t.Errorf("solution size did not grow with cardinality: %v -> %v", first, last)
	}
}

func TestFig9DimensionalitySizesGrow(t *testing.T) {
	cfg := quickConfig()
	tabs, err := Fig9Dimensionality(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sizeTab := tabs[0]
	first := atof(t, sizeTab.Rows[0][1])
	last := atof(t, sizeTab.Rows[len(sizeTab.Rows)-1][1])
	if last <= first {
		t.Errorf("solution size did not grow with dimensionality (curse of dimensionality): %v -> %v", first, last)
	}
}

func TestFig10FatFactorOrdering(t *testing.T) {
	cfg := quickConfig()
	tab, err := Fig10(cfg, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	// Series are labelled f=<fat>; MinOverlap must come first with the
	// lowest fat-factor.
	if len(tab.Headers) != 5 {
		t.Fatalf("headers %v", tab.Headers)
	}
	fats := make([]float64, 0, 4)
	for _, h := range tab.Headers[1:] {
		fats = append(fats, atof(t, strings.TrimPrefix(h, "f=")))
	}
	for i := 1; i < len(fats); i++ {
		if fats[0] > fats[i] {
			t.Errorf("MinOverlap fat-factor %g not the lowest: %v", fats[0], fats)
		}
	}
}

func TestZoomInCheaperAndCloser(t *testing.T) {
	cfg := quickConfig()
	tabs, err := ZoomIn(cfg, "clustered")
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("expected 3 tables")
	}
	accTab, jacTab := tabs[1], tabs[2]
	for _, row := range accTab.Rows {
		scratch := atof(t, row[1])
		zoom := atof(t, row[2])
		if zoom >= scratch {
			t.Errorf("zoom-in not cheaper than from scratch: %v", row)
		}
	}
	for _, row := range jacTab.Rows {
		scratch := atof(t, row[1])
		zoom := atof(t, row[2])
		greedy := atof(t, row[3])
		if zoom > scratch || greedy > scratch {
			t.Errorf("zoomed solution farther from S^r than from-scratch: %v", row)
		}
	}
}

func TestZoomOutCloserThanScratch(t *testing.T) {
	cfg := quickConfig()
	tabs, err := ZoomOut(cfg, "clustered")
	if err != nil {
		t.Fatal(err)
	}
	jacTab := tabs[2]
	for _, row := range jacTab.Rows {
		scratch := atof(t, row[1])
		for col := 2; col < len(row); col++ {
			if atof(t, row[col]) > scratch {
				t.Errorf("zoom-out variant (col %d) farther from S^r than scratch: %v", col, row)
			}
		}
	}
}

func TestFig6CoverageClaims(t *testing.T) {
	cfg := quickConfig()
	res, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.K <= 0 || len(res.Selections) != 5 {
		t.Fatalf("unexpected result: k=%d models=%d", res.K, len(res.Selections))
	}
	// Every model selects (at most) k objects; DisC exactly k.
	for name, ids := range res.Selections {
		if len(ids) == 0 || len(ids) > res.K {
			t.Errorf("%s selected %d of k=%d", name, len(ids), res.K)
		}
	}
	// Paper claim: DisC covers everything at r; MaxSum does not.
	rows := res.Table.Rows
	var discCov, maxsumCov float64
	for _, row := range rows {
		switch row[0] {
		case "r-DisC":
			discCov = atof(t, row[2])
		case "MaxSum":
			maxsumCov = atof(t, row[2])
		}
	}
	if discCov != 1 {
		t.Errorf("DisC coverage %g, want 1", discCov)
	}
	if maxsumCov >= discCov {
		t.Errorf("MaxSum coverage %g not below DisC's %g", maxsumCov, discCov)
	}
}

func TestAblationRunners(t *testing.T) {
	cfg := quickConfig()
	if _, err := Capacity(cfg); err != nil {
		t.Errorf("capacity: %v", err)
	}
	tab, err := FastCAblation(cfg, "clustered")
	if err != nil {
		t.Fatalf("fastc: %v", err)
	}
	for _, row := range tab.Rows {
		gcAcc := atof(t, row[3])
		fcAcc := atof(t, row[4])
		if fcAcc > gcAcc {
			t.Errorf("Fast-C costlier than Greedy-C: %v", row)
		}
	}
	if _, err := BottomUp(cfg, "clustered"); err != nil {
		t.Errorf("bottomup: %v", err)
	}
	bi, err := BuildInit(cfg, "clustered")
	if err != nil {
		t.Fatalf("buildinit: %v", err)
	}
	for _, row := range bi.Rows {
		during := atof(t, row[1])
		after := atof(t, row[2])
		if during > after {
			t.Errorf("during-build accounting costlier than after-build: %v", row)
		}
	}
}

func TestHighDimQuickShape(t *testing.T) {
	cfg := quickConfig()
	res, err := HighDim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Joins) != 2 {
		t.Fatalf("expected euclidean and cosine join rows, got %d", len(res.Joins))
	}
	for _, j := range res.Joins {
		if j.ScalarBuildMS <= 0 || j.BatchBuildMS <= 0 || j.Batch32BuildMS <= 0 {
			t.Errorf("%s: non-positive build time: %+v", j.Metric, j)
		}
		if j.Speedup <= 0 || j.Speedup32 <= 0 {
			t.Errorf("%s: missing speedup ratios: %+v", j.Metric, j)
		}
		if j.SolutionSize <= 0 {
			t.Errorf("%s: empty selection", j.Metric)
		}
	}
	// Quick mode sweeps 2 kernel dims x 2 metrics.
	if len(res.Kernels) != 4 {
		t.Fatalf("expected 4 kernel rows, got %d", len(res.Kernels))
	}
	if len(res.Crossover) != 3 {
		t.Fatalf("expected 3 crossover rows, got %d", len(res.Crossover))
	}
	if res.UpdateMSOp <= 0 || res.UpdateN <= 0 {
		t.Errorf("update measurement missing: n=%d %f ms/op", res.UpdateN, res.UpdateMSOp)
	}
	if len(res.Tables()) != 3 {
		t.Errorf("expected 3 text tables")
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != len(Registry) {
		t.Fatal("Names incomplete")
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatal("Names not sorted")
		}
	}
	if err := Run("nope", quickConfig()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunExperimentSmoke(t *testing.T) {
	// End-to-end through the registry with output capture.
	cfg := quickConfig()
	var buf bytes.Buffer
	cfg.Out = &buf
	if err := Run("table3", cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 3") {
		t.Error("missing table output")
	}
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}
