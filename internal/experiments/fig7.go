package experiments

import (
	"fmt"

	"github.com/discdiversity/disc/internal/stats"
)

// Fig7 reproduces Figure 7 for one dataset: M-tree node accesses of
// Basic-DisC and Grey-Greedy-DisC with and without the pruning rule, plus
// Greedy-C (to which pruning does not apply), across the radius sweep.
func Fig7(cfg Config, datasetName string) (*stats.Table, error) {
	w, err := cfg.load(datasetName)
	if err != nil {
		return nil, err
	}
	algorithms := []runner{runBasic, runBasicPruned, runGreyGreedy, runGreyGreedyPruned, runGreedyC}
	return accessSweep(cfg, w, fmt.Sprintf("Figure 7 — node accesses (%s)", datasetName), algorithms)
}

// Fig8 reproduces Figure 8 for one dataset: node accesses of the pruned
// Greedy-DisC family (Grey, White, Lazy-Grey, Lazy-White) next to pruned
// Basic-DisC.
func Fig8(cfg Config, datasetName string) (*stats.Table, error) {
	w, err := cfg.load(datasetName)
	if err != nil {
		return nil, err
	}
	algorithms := []runner{runBasicPruned, runGreyGreedyPruned, runWhiteGreedyPruned, runLazyGreyPruned, runLazyWhitePruned}
	return accessSweep(cfg, w, fmt.Sprintf("Figure 8 — node accesses, pruned variants (%s)", datasetName), algorithms)
}

// accessSweep measures node accesses for each algorithm across the radius
// sweep and renders one series per algorithm.
func accessSweep(cfg Config, w *workload, title string, algorithms []runner) (*stats.Table, error) {
	radii := cfg.radii(w.name)
	series := make([]*stats.Series, len(algorithms))
	for i, rn := range algorithms {
		series[i] = &stats.Series{Name: rn.name}
		for _, r := range radii {
			run, _, err := cfg.execute(w, rn, r)
			if err != nil {
				return nil, err
			}
			series[i].Add(r, float64(run.accesses))
		}
	}
	tab := stats.SeriesTable(title, "radius", series...)
	printTables(cfg.out(), tab)
	return tab, nil
}

// Fig7All runs Fig7 over all four datasets (Figure 7(a)-(d)).
func Fig7All(cfg Config) ([]*stats.Table, error) {
	return sweepAll(cfg, Fig7)
}

// Fig8All runs Fig8 over all four datasets (Figure 8(a)-(d)).
func Fig8All(cfg Config) ([]*stats.Table, error) {
	return sweepAll(cfg, Fig8)
}

func sweepAll(cfg Config, f func(Config, string) (*stats.Table, error)) ([]*stats.Table, error) {
	var tabs []*stats.Table
	for _, name := range []string{"uniform", "clustered", "cities", "cameras"} {
		t, err := f(cfg, name)
		if err != nil {
			return nil, err
		}
		tabs = append(tabs, t)
	}
	return tabs, nil
}
