package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	disc "github.com/discdiversity/disc"
	"github.com/discdiversity/disc/internal/core"
	"github.com/discdiversity/disc/internal/dataset"
	"github.com/discdiversity/disc/internal/grid"
	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/stats"
)

// highdim.go measures the high-dimensional embedding workload — the
// BENCH_PR7.json trajectory. Three questions, one JSON file:
//
//  1. Joins: how much faster is the batched coverage-graph build
//     (grid.FlatJoin, fused early-exit kernels, optionally the float32
//     pre-filter) than the per-pair scalar protocol it replaced
//     (grid.FlatJoinScalar) at embedding scale? The speedup ratio is
//     the bench-guard gate: being a ratio of two runs on the same
//     machine it is robust to hardware differences, unlike wall-clock.
//  2. Kernels: raw one-vs-many throughput (ns per candidate row) of the
//     scalar protocol, RawBatch, the fused FilterWithin, and the
//     float32 pre-filter across the common embedding widths.
//  3. Crossover: at which dimensionality the spatial grid ε-join loses
//     to the flat all-pairs join — the measurement behind
//     core.GraphFlatJoinDim and New's index auto-selection.
//
// Plus the per-operation cost of incremental repair (the Updater) at
// embedding dimensionality, on a reduced cardinality: the grid
// substrate that repair runs on degenerates at high d, which is
// exactly the behaviour worth recording.

// HighDimJoin is one metric's coverage-graph build comparison at the
// main workload's n and dim.
type HighDimJoin struct {
	Metric string  `json:"metric"`
	Radius float64 `json:"radius"`
	Edges  int     `json:"edges"`
	// ScalarBuildMS is grid.FlatJoinScalar (one kernel call and
	// threshold test per candidate pair); BatchBuildMS is grid.FlatJoin
	// over the same float64 dataset; Batch32BuildMS is grid.FlatJoin
	// over the Float32 dataset (float32 pre-filter + exact recheck).
	ScalarBuildMS  float64 `json:"scalar_build_ms"`
	BatchBuildMS   float64 `json:"batch_build_ms"`
	Batch32BuildMS float64 `json:"batch32_build_ms"`
	// Speedup = ScalarBuildMS/BatchBuildMS, Speedup32 =
	// ScalarBuildMS/Batch32BuildMS. Speedup is the gated ratio.
	Speedup   float64 `json:"speedup"`
	Speedup32 float64 `json:"speedup32"`
	// SelectMSOp is the pruned component-decomposed Greedy-DisC over the
	// built graph (steady-state: adjacency and components cached).
	SelectMSOp   float64 `json:"select_ms_op"`
	SolutionSize int     `json:"solution_size"`
}

// HighDimKernel is one (dim, metric) row of the kernel throughput
// sweep; all numbers are nanoseconds per candidate row.
type HighDimKernel struct {
	Dim    int    `json:"dim"`
	Metric string `json:"metric"`
	// ScalarNsRow: per-pair Raw call + threshold test. BatchNsRow:
	// RawBatch over the contiguous block. FilterNsRow: fused
	// FilterWithin. Filter32NsRow: the Float32 dataset's pre-filtered
	// range scan (including the exact float64 recheck of survivors).
	ScalarNsRow   float64 `json:"scalar_ns_row"`
	BatchNsRow    float64 `json:"batch_ns_row"`
	FilterNsRow   float64 `json:"filter_ns_row"`
	Filter32NsRow float64 `json:"filter32_ns_row"`
}

// HighDimCrossover is one dimensionality of the grid-vs-flat join
// comparison (uniform cube data, Euclidean, fixed radius).
type HighDimCrossover struct {
	Dim int `json:"dim"`
	// GridBuildMS covers grid.Build + grid.Join (what the graph engine's
	// grid substrate pays); FlatBuildMS is grid.FlatJoin.
	GridBuildMS float64 `json:"grid_build_ms"`
	FlatBuildMS float64 `json:"flat_build_ms"`
}

// HighDimBench is the machine-readable result of the "highdim"
// experiment — the BENCH_PR7.json trajectory format.
type HighDimBench struct {
	Dataset    string `json:"dataset"`
	N          int    `json:"n"`
	Dim        int    `json:"dim"`
	Seed       uint64 `json:"seed"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`

	Joins     []HighDimJoin      `json:"joins"`
	Kernels   []HighDimKernel    `json:"kernels"`
	Crossover []HighDimCrossover `json:"crossover"`

	// Incremental repair at embedding dimensionality: UpdateN points
	// (the grid substrate repair runs on degenerates at high d, so the
	// cardinality is reduced), Euclidean (the Updater's substrate does
	// not serve cosine), per-operation convergence.
	UpdateN      int     `json:"update_n"`
	UpdateRadius float64 `json:"update_radius"`
	UpdateMSOp   float64 `json:"update_ms_op"`
}

// The sphere workload's radii. On unit-norm vectors the Euclidean and
// cosine distances are locked together (d_E² = 2·d_cos), so these two
// describe comparable neighbourhoods; both sit below the within-cluster
// concentration point of most clusters, keeping the edge count bounded.
const (
	highDimCosineRadius    = 0.1
	highDimEuclideanRadius = 0.45
)

// highDimDims returns (main dim, kernel sweep dims, crossover dims).
func (c Config) highDimDims() (int, []int, []int) {
	if c.Quick {
		return 16, []int{16, 64}, []int{2, 4, 8}
	}
	return 128, []int{64, 128, 384, 768}, []int{2, 4, 6, 8, 10, 12, 16}
}

// wallMS times one execution of f in milliseconds. Join builds at
// embedding scale run seconds to minutes on the measurement hardware,
// so a single run is the whole budget; the bench-guard gate consumes
// the scalar/batched ratio, which is stable across runs because both
// sides share the workload, sharding and merge.
func wallMS(f func()) float64 {
	start := time.Now()
	f()
	return float64(time.Since(start).Nanoseconds()) / 1e6
}

// HighDim measures the embedding workload and returns the snapshot.
func HighDim(cfg Config) (*HighDimBench, error) {
	n := cfg.n()
	dim, kernelDims, crossDims := cfg.highDimDims()
	workers := cfg.parallelism()

	// Many small clusters rather than the cube generator's 10: at high
	// dimensionality within-cluster distances concentrate, so a cluster
	// below the radius becomes a clique — cluster population, not the
	// radius, is what bounds the edge count.
	clusters := n / 64
	ds, err := dataset.Sphere(n, dim, clusters, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &HighDimBench{
		Dataset:    ds.Name,
		N:          n,
		Dim:        dim,
		Seed:       cfg.Seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}

	type joinCase struct {
		metric object.Metric
		r      float64
	}
	for _, jc := range []joinCase{
		{object.Euclidean{}, highDimEuclideanRadius},
		{object.Cosine{}, highDimCosineRadius},
	} {
		row, err := highDimJoin(ds.Points, jc.metric, jc.r, workers)
		if err != nil {
			return nil, fmt.Errorf("experiments: highdim: %s: %w", jc.metric.Name(), err)
		}
		res.Joins = append(res.Joins, *row)
	}

	for _, d := range kernelDims {
		rows, err := highDimKernels(d, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: highdim: kernels d=%d: %w", d, err)
		}
		res.Kernels = append(res.Kernels, rows...)
	}

	crossN := n
	if crossN > 5000 {
		// The grid path's ring enumeration is the thing being measured to
		// destruction; a bounded cardinality keeps the losing side's
		// runtime (and the edge count at d=2) within the budget.
		crossN = 5000
	}
	for _, d := range crossDims {
		row, err := highDimCrossover(crossN, d, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: highdim: crossover d=%d: %w", d, err)
		}
		res.Crossover = append(res.Crossover, *row)
	}

	if err := highDimUpdate(cfg, ds, res); err != nil {
		return nil, fmt.Errorf("experiments: highdim: update: %w", err)
	}
	return res, nil
}

// highDimJoin measures one metric's build comparison plus the
// steady-state selection on the resulting graph.
func highDimJoin(pts []object.Point, m object.Metric, r float64, workers int) (*HighDimJoin, error) {
	flat64, err := object.Flatten(pts, m)
	if err != nil {
		return nil, err
	}
	flat32, err := object.Flatten32(pts, m)
	if err != nil {
		return nil, err
	}
	row := &HighDimJoin{Metric: m.Name(), Radius: r}

	var csr *grid.CSR
	row.ScalarBuildMS = wallMS(func() { csr, _, err = grid.FlatJoinScalar(flat64, r, workers) })
	if err != nil {
		return nil, err
	}
	row.Edges = len(csr.Nbrs) / 2

	row.BatchBuildMS = wallMS(func() { csr, _, err = grid.FlatJoin(flat64, r, workers) })
	if err != nil {
		return nil, err
	}
	var csr32 *grid.CSR
	row.Batch32BuildMS = wallMS(func() { csr32, _, err = grid.FlatJoin(flat32, r, workers) })
	if err != nil {
		return nil, err
	}
	if row.BatchBuildMS > 0 {
		row.Speedup = row.ScalarBuildMS / row.BatchBuildMS
	}
	if row.Batch32BuildMS > 0 {
		row.Speedup32 = row.ScalarBuildMS / row.Batch32BuildMS
	}

	// Steady-state selection over the already-built adjacency (warm
	// substrate; the joins above are the build cost).
	e, err := core.RehydrateFlatGraphEngine(flat32, csr32, r, workers)
	if err != nil {
		return nil, err
	}
	var sol *core.Solution
	nsOp, _, _ := measure(func() {
		sol = core.GreedyDisCComponents(e, r, core.GreedyOptions{Update: core.UpdateGrey, Pruned: true}, workers)
	}, 2*time.Second)
	row.SelectMSOp = float64(nsOp) / 1e6
	row.SolutionSize = sol.Size()
	return row, nil
}

// kernelRows is the candidate-block size of the throughput sweep: large
// enough to hide loop setup, small enough that four metrics times four
// widths stay cheap.
const kernelRows = 4096

// highDimKernels measures ns-per-row of the four evaluation protocols
// at one embedding width, for Euclidean and cosine.
func highDimKernels(dim int, seed uint64) ([]HighDimKernel, error) {
	ds, err := dataset.Sphere(kernelRows, dim, kernelRows/64, seed)
	if err != nil {
		return nil, err
	}
	var rows []HighDimKernel
	for _, mr := range []struct {
		m object.Metric
		r float64
	}{
		{object.Euclidean{}, highDimEuclideanRadius},
		{object.Cosine{}, highDimCosineRadius},
	} {
		flat64, err := object.Flatten(ds.Points, mr.m)
		if err != nil {
			return nil, err
		}
		flat32, err := object.Flatten32(ds.Points, mr.m)
		if err != nil {
			return nil, err
		}
		k := flat64.Kernel()
		q := flat64.Row(0)
		coords := flat64.Coords()
		rawR := k.RawThreshold(mr.r)
		out := make([]float64, kernelRows)
		idbuf := make([]int32, 0, kernelRows)
		nbuf := make([]object.Neighbor, 0, kernelRows)
		row := HighDimKernel{Dim: dim, Metric: mr.m.Name()}

		var hits int
		nsOp, _, _ := measure(func() {
			hits = 0
			for off := 0; off < len(coords); off += dim {
				if k.Raw(q, coords[off:off+dim:off+dim]) <= rawR {
					hits++
				}
			}
		}, 200*time.Millisecond)
		row.ScalarNsRow = float64(nsOp) / kernelRows
		_ = hits

		nsOp, _, _ = measure(func() { k.RawBatch(q, coords, out) }, 200*time.Millisecond)
		row.BatchNsRow = float64(nsOp) / kernelRows

		nsOp, _, _ = measure(func() { idbuf = k.FilterWithin(q, coords, 0, rawR, idbuf[:0]) }, 200*time.Millisecond)
		row.FilterNsRow = float64(nsOp) / kernelRows

		nsOp, _, _ = measure(func() {
			nbuf = flat32.AppendRange(nbuf[:0], flat32.Row(0), mr.r, 0)
		}, 200*time.Millisecond)
		row.Filter32NsRow = float64(nsOp) / kernelRows

		rows = append(rows, row)
	}
	return rows, nil
}

// crossoverRadius is the fixed Euclidean radius of the grid-vs-flat
// sweep. The cell side tracks the radius, so one radius across
// dimensionalities shows the geometric collapse cleanly: cells per axis
// shrink as the cap forces side-doubling, the ±1 ring approaches the
// whole directory, and the grid's candidate set approaches all pairs.
const crossoverRadius = 0.15

// highDimCrossover measures grid-vs-flat join cost at one
// dimensionality over uniform cube data.
func highDimCrossover(n, dim int, seed uint64) (*HighDimCrossover, error) {
	ds, err := dataset.Uniform(n, dim, seed)
	if err != nil {
		return nil, err
	}
	flat, err := object.Flatten(ds.Points, object.Euclidean{})
	if err != nil {
		return nil, err
	}
	row := &HighDimCrossover{Dim: dim}
	nsOp, _, _ := measure(func() {
		g, berr := grid.Build(flat, crossoverRadius)
		if berr != nil {
			err = berr
			return
		}
		if _, _, jerr := grid.Join(g, crossoverRadius, 1); jerr != nil {
			err = jerr
		}
	}, 300*time.Millisecond)
	if err != nil {
		return nil, err
	}
	row.GridBuildMS = float64(nsOp) / 1e6
	nsOp, _, _ = measure(func() {
		if _, _, jerr := grid.FlatJoin(flat, crossoverRadius, 1); jerr != nil {
			err = jerr
		}
	}, 300*time.Millisecond)
	if err != nil {
		return nil, err
	}
	row.FlatBuildMS = float64(nsOp) / 1e6
	return row, nil
}

// highDimUpdate measures per-operation incremental repair at the main
// dimensionality on a reduced cardinality.
func highDimUpdate(cfg Config, ds *object.Dataset, res *HighDimBench) error {
	updN := res.N
	if updN > 2000 {
		updN = 2000
	}
	ops := 100
	if cfg.Quick {
		ops = 20
	}
	pts := ds.Points[:updN]
	res.UpdateN = updN
	res.UpdateRadius = highDimEuclideanRadius
	u, err := disc.NewUpdater(pts, highDimEuclideanRadius,
		disc.WithMetric(disc.Euclidean()), disc.WithParallelism(cfg.parallelism()))
	if err != nil {
		return err
	}
	start := time.Now()
	for i := 0; i < ops; i++ {
		if i%2 == 0 {
			// Re-insert an existing direction (a point its cluster already
			// covers — the common embedding-churn case).
			if _, err := u.Insert(append(object.Point(nil), pts[i%updN]...)); err != nil {
				return err
			}
		} else if err := u.Delete(i / 2); err != nil {
			return err
		}
		u.Flush()
	}
	res.UpdateMSOp = float64(time.Since(start).Nanoseconds()) / 1e6 / float64(ops)
	return nil
}

// WriteJSON renders the snapshot as indented JSON.
func (b *HighDimBench) WriteJSON(cfg Config) error {
	enc := json.NewEncoder(cfg.out())
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Tables renders the three sections as plain-text tables (the
// -format=text view).
func (b *HighDimBench) Tables() []*stats.Table {
	joins := stats.NewTable(
		fmt.Sprintf("High-dim joins — %s (n=%d, d=%d, GOMAXPROCS=%d)", b.Dataset, b.N, b.Dim, b.GoMaxProcs),
		"metric", "radius", "edges", "scalar ms", "batch ms", "batch32 ms", "speedup", "speedup32", "select ms/op", "size")
	for _, j := range b.Joins {
		joins.AddRow(j.Metric, j.Radius, j.Edges,
			fmt.Sprintf("%.0f", j.ScalarBuildMS),
			fmt.Sprintf("%.0f", j.BatchBuildMS),
			fmt.Sprintf("%.0f", j.Batch32BuildMS),
			fmt.Sprintf("%.2fx", j.Speedup),
			fmt.Sprintf("%.2fx", j.Speedup32),
			fmt.Sprintf("%.2f", j.SelectMSOp),
			j.SolutionSize)
	}
	kern := stats.NewTable("Kernel throughput (ns per candidate row)",
		"dim", "metric", "scalar", "batch", "filter", "filter32")
	for _, k := range b.Kernels {
		kern.AddRow(k.Dim, k.Metric,
			fmt.Sprintf("%.1f", k.ScalarNsRow),
			fmt.Sprintf("%.1f", k.BatchNsRow),
			fmt.Sprintf("%.1f", k.FilterNsRow),
			fmt.Sprintf("%.1f", k.Filter32NsRow))
	}
	cross := stats.NewTable(
		fmt.Sprintf("Grid vs flat join (uniform, euclidean, r=%g) — update repair: n=%d, %.2f ms/op", crossoverRadius, b.UpdateN, b.UpdateMSOp),
		"dim", "grid ms", "flat ms", "winner")
	for _, c := range b.Crossover {
		winner := "grid"
		if c.FlatBuildMS < c.GridBuildMS {
			winner = "flat"
		}
		cross.AddRow(c.Dim,
			fmt.Sprintf("%.1f", c.GridBuildMS),
			fmt.Sprintf("%.1f", c.FlatBuildMS),
			winner)
	}
	return []*stats.Table{joins, kern, cross}
}
