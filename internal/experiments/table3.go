package experiments

import (
	"fmt"

	"github.com/discdiversity/disc/internal/stats"
)

// Table3 reproduces Table 3 of the paper for one dataset: the solution
// sizes of Basic-DisC, (Grey-)Greedy-DisC, the two lazy Greedy variants
// and Greedy-C across the radius sweep.
func Table3(cfg Config, datasetName string) (*stats.Table, error) {
	w, err := cfg.load(datasetName)
	if err != nil {
		return nil, err
	}
	radii := cfg.radii(datasetName)
	algorithms := []runner{runBasic, runGreyGreedyPruned, runLazyGreyPruned, runLazyWhitePruned, runGreedyC}
	labels := []string{"B-DisC", "G-DisC", "L-Gr-G-DisC", "L-Wh-G-DisC", "G-C"}

	headers := []string{"algorithm"}
	for _, r := range radii {
		headers = append(headers, fmt.Sprintf("r=%g", r))
	}
	tab := stats.NewTable(fmt.Sprintf("Table 3 — solution size (%s, n=%d)", datasetName, w.ds.Len()), headers...)

	for i, rn := range algorithms {
		cells := []any{labels[i]}
		for _, r := range radii {
			run, _, err := cfg.execute(w, rn, r)
			if err != nil {
				return nil, err
			}
			cells = append(cells, run.size)
		}
		tab.AddRow(cells...)
	}
	printTables(cfg.out(), tab)
	return tab, nil
}

// Table3All runs Table3 for all four datasets, like the paper's 3(a)-3(d).
func Table3All(cfg Config) ([]*stats.Table, error) {
	var tabs []*stats.Table
	for _, name := range []string{"uniform", "clustered", "cities", "cameras"} {
		t, err := Table3(cfg, name)
		if err != nil {
			return nil, err
		}
		tabs = append(tabs, t)
	}
	return tabs, nil
}
