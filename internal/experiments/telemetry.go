package experiments

import (
	"github.com/discdiversity/disc/internal/telemetry"
)

// ExperimentTelemetry is the in-process metrics view of one measured
// experiment phase: quantiles and counts read from the process-wide
// telemetry registry (the same series GET /metrics exposes) as deltas
// over the phase, so the numbers cover exactly the experiment's own
// work even when earlier phases in the same process already moved the
// metrics. All fields are omitted when zero, so a snapshot only carries
// the series its experiment actually drove.
type ExperimentTelemetry struct {
	// The live-repair histogram (disc_live_repair_seconds) over the
	// measured mutations, plus the repaired-component counter — the
	// instrumented view of the same Flush calls the client-side repair
	// percentiles time from outside.
	RepairP50Ms        float64 `json:"repair_ms_p50,omitempty"`
	RepairP99Ms        float64 `json:"repair_ms_p99,omitempty"`
	Repairs            uint64  `json:"repairs,omitempty"`
	RepairedComponents uint64  `json:"repaired_components,omitempty"`

	// WAL counter deltas (disc_wal_appends_total /
	// disc_wal_fsyncs_total); their ratio is the fsync batching factor.
	WALAppends uint64 `json:"wal_appends,omitempty"`
	WALFsyncs  uint64 `json:"wal_fsyncs,omitempty"`

	// Selection and grid-build histograms over the measured phase
	// (disc_select_seconds by mode, disc_grid_build_seconds).
	SelectP50Ms           float64 `json:"select_ms_p50,omitempty"`
	SelectP99Ms           float64 `json:"select_ms_p99,omitempty"`
	SelectComponentsP50Ms float64 `json:"select_components_ms_p50,omitempty"`
	SelectComponentsP99Ms float64 `json:"select_components_ms_p99,omitempty"`
	GridBuildP50Ms        float64 `json:"grid_build_ms_p50,omitempty"`
	GridBuildP99Ms        float64 `json:"grid_build_ms_p99,omitempty"`
}

// telemetryProbe captures the registry state at the start of a measured
// phase; Report reads it again and returns the delta. Handles are
// fetched get-or-create, so the probe works even for series the
// instrumented packages have not touched yet (their deltas stay zero).
type telemetryProbe struct {
	repairH, selG, selC, buildH   *telemetry.Histogram
	appendC, fsyncC, repairedC    *telemetry.Counter
	repair0, selG0, selC0, build0 telemetry.HistSnapshot
	appends0, fsyncs0, repaired0  uint64
}

// newTelemetryProbe snapshots the relevant series of the process-wide
// registry.
func newTelemetryProbe() *telemetryProbe {
	reg := telemetry.Default()
	p := &telemetryProbe{
		repairH:   reg.Histogram("disc_live_repair_seconds", ""),
		selG:      reg.Histogram(`disc_select_seconds{mode="global"}`, ""),
		selC:      reg.Histogram(`disc_select_seconds{mode="components"}`, ""),
		buildH:    reg.Histogram("disc_grid_build_seconds", ""),
		appendC:   reg.Counter("disc_wal_appends_total", ""),
		fsyncC:    reg.Counter("disc_wal_fsyncs_total", ""),
		repairedC: reg.Counter("disc_live_repaired_components_total", ""),
	}
	p.repair0 = p.repairH.Snapshot()
	p.selG0 = p.selG.Snapshot()
	p.selC0 = p.selC.Snapshot()
	p.build0 = p.buildH.Snapshot()
	p.appends0 = p.appendC.Value()
	p.fsyncs0 = p.fsyncC.Value()
	p.repaired0 = p.repairedC.Value()
	return p
}

// msQuantile renders a histogram-delta quantile in milliseconds; an
// empty delta reads as 0 so the JSON field is omitted.
func msQuantile(d telemetry.HistSnapshot, q float64) float64 {
	if d.Count == 0 {
		return 0
	}
	return float64(d.Quantile(q)) / 1e6
}

// Report returns the registry movement since the probe was taken.
func (p *telemetryProbe) Report() *ExperimentTelemetry {
	repair := p.repairH.Snapshot().Sub(p.repair0)
	selG := p.selG.Snapshot().Sub(p.selG0)
	selC := p.selC.Snapshot().Sub(p.selC0)
	build := p.buildH.Snapshot().Sub(p.build0)
	return &ExperimentTelemetry{
		RepairP50Ms:        msQuantile(repair, 0.50),
		RepairP99Ms:        msQuantile(repair, 0.99),
		Repairs:            repair.Count,
		RepairedComponents: p.repairedC.Value() - p.repaired0,
		WALAppends:         p.appendC.Value() - p.appends0,
		WALFsyncs:          p.fsyncC.Value() - p.fsyncs0,

		SelectP50Ms:           msQuantile(selG, 0.50),
		SelectP99Ms:           msQuantile(selG, 0.99),
		SelectComponentsP50Ms: msQuantile(selC, 0.50),
		SelectComponentsP99Ms: msQuantile(selC, 0.99),
		GridBuildP50Ms:        msQuantile(build, 0.50),
		GridBuildP99Ms:        msQuantile(build, 0.99),
	}
}
