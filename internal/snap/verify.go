package snap

import (
	"bytes"
	"errors"
	"fmt"

	"github.com/discdiversity/disc/internal/vfs"
)

// ErrCorrupt marks a snapshot whose bytes were read successfully but
// failed validation — a CRC mismatch, bad magic, an impossible section
// shape. Test with errors.Is. I/O failures while reading the file
// deliberately do NOT match: those are retryable, corruption is not,
// and the dataset manager routes the two to different states
// (quarantined vs. backoff-and-retry).
var ErrCorrupt = errors.New("unrecoverable corruption")

// VerifySummary describes a snapshot that passed a full scrub.
type VerifySummary struct {
	N, Dim int
	Metric string
	// GraphRadius is the checkpointed coverage-graph radius (0 when the
	// snapshot carries no graph section); WALEpoch is the write-ahead
	// log epoch the snapshot begins.
	GraphRadius float64
	WALEpoch    uint64
	// Float32 reports a float32-coordinate snapshot (batch datasets
	// only; the live-update substrate is float64).
	Float32 bool
}

// Verify scrubs the snapshot at path without loading it into an
// engine: the whole file is read through fsys and every CRC-32C and
// shape check Read performs runs over the bytes. The error comes back
// in one of three classes:
//
//   - nil — the snapshot is whole; the summary describes it;
//   - an I/O error from fsys.ReadFile, returned untouched (test with
//     errors.Is(err, fs.ErrNotExist) for absence; anything else is
//     retryable);
//   - an ErrCorrupt-classified validation error — the file's bytes are
//     damaged and rereading will not help.
//
// The distinction is what lets boot-time recovery retry EIO with
// backoff but quarantine a checksum mismatch immediately.
func Verify(fsys vfs.FS, path string) (*VerifySummary, error) {
	if fsys == nil {
		fsys = vfs.OS
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Read(bytes.NewReader(data))
	if err != nil {
		// The reader is in-memory, so every failure here is a property
		// of the bytes themselves: corruption, not I/O.
		return nil, fmt.Errorf("%s: %w (%w)", path, err, ErrCorrupt)
	}
	return &VerifySummary{
		N:           s.N,
		Dim:         s.Dim,
		Metric:      s.Metric,
		GraphRadius: s.GraphRadius,
		WALEpoch:    s.WALEpoch,
		Float32:     s.Coords32 != nil,
	}, nil
}
