// Package snap implements the .discsnap binary snapshot format: a
// versioned, checksummed, little-endian container that persists a flat
// dataset together with the prepared per-radius artifacts the engines
// are expensive to rebuild — the grid occupancy and the coverage-graph
// CSR — so a process can warm-start instead of re-deriving them.
//
// # Layout
//
// A snapshot is one contiguous byte stream:
//
//	header (20 bytes):
//	  [0:8)   magic "DISCSNAP"
//	  [8:12)  uint32 format version (currently 1)
//	  [12:16) uint32 section count
//	  [16:20) uint32 CRC-32C of the section table
//	section table (24 bytes per section):
//	  uint32 kind, uint32 CRC-32C of the payload,
//	  uint64 file offset, uint64 payload length
//	payloads, each starting at an 8-byte-aligned offset,
//	zero padding between them
//
// Section kinds of version 1: meta (1, index name and the build
// parameters: seed, parallelism, M-tree capacity), dataset (2, metric
// name plus the n×dim row-major
// coordinate array), grid (3, the uniform-grid occupancy of
// internal/grid), graph (4, the coverage-graph CSR with its build
// radius), components (5, the graph's connected-component labels at
// that radius), dataset32 (6, the float32-precision dataset: metric
// name, unpadded n×dim row-major float32 coordinates, and — for the
// embedding metrics — the per-row squared norms; written instead of
// kind 2 when the writer's dataset is Float32), and walepoch (7, the
// uint64 write-ahead-log epoch this snapshot begins — written only by
// durable checkpoints; see docs/DURABILITY.md). Kinds 5–7 were
// added after version 1 shipped and are readable by all version-1
// readers through the unknown-kind skip; a reader too old to know
// kind 6 fails a float32 snapshot safely with "no dataset section"
// rather than misreading it. Every multi-byte value is little-endian;
// float64s and float32s are IEEE 754 bit patterns; neighbour entries
// are (int64 id, float64 dist) pairs.
//
// # Versioning policy
//
// Readers reject any format version other than their own and skip
// section kinds they do not recognise, so new sections can be added
// without a version bump; the version only changes when an existing
// section's layout changes incompatibly. Payload offsets and lengths
// come from the section table, never from sniffing, which is what makes
// the skip safe.
//
// # Decoding
//
// Read slurps the stream in one contiguous read and then aliases the
// large arrays (coordinates, occupancy, adjacency) directly into the
// file buffer via unsafe.Slice — no per-element copies — whenever the
// platform is little-endian and the in-memory layout matches the wire
// layout (8-byte-aligned offsets are guaranteed by the writer; the
// buffer base is checked at runtime). Platforms or layouts that do not
// qualify fall back to an element-wise decode, so the format itself
// stays portable. Decoded snapshots retain the read buffer; treat every
// slice as read-only.
package snap

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"
	"unsafe"

	"github.com/discdiversity/disc/internal/grid"
	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/telemetry"
)

// Serialisation timers: one observation per snapshot written or read
// (checkpoints, warm starts, recovery).
var (
	metWrite = telemetry.Default().Histogram("disc_snapshot_write_seconds",
		"Wall time of serialising one snapshot (snap.Write).")
	metRead = telemetry.Default().Histogram("disc_snapshot_read_seconds",
		"Wall time of decoding and verifying one snapshot (snap.Read).")
)

// Version is the format version this package reads and writes.
const Version = 1

const (
	magic      = "DISCSNAP"
	headerSize = 20
	entrySize  = 24

	kindMeta       = 1
	kindDataset    = 2
	kindGrid       = 3
	kindGraph      = 4
	kindComponents = 5
	kindDataset32  = 6
	kindWALEpoch   = 7
)

// castagnoli is the CRC-32C polynomial table; hardware-accelerated on
// the platforms that matter, which keeps checksumming off the warm-load
// critical path.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// nativeLittle reports whether the platform stores integers
// little-endian, the precondition for zero-copy array encode/decode.
var nativeLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// neighborWireLayout reports whether object.Neighbor's in-memory layout
// matches the wire layout (16 bytes: int64 id at offset 0, float64 dist
// at offset 8), the precondition for bulk-copying adjacency arrays.
var neighborWireLayout = func() bool {
	var nb object.Neighbor
	return unsafe.Sizeof(nb) == 16 &&
		unsafe.Offsetof(nb.Dist) == 8 &&
		unsafe.Sizeof(int(0)) == 8
}()

// Snapshot is the in-memory form of a .discsnap file. Coords, Grid and
// Graph may alias a decoded file buffer (see the package comment) and
// must be treated as read-only.
type Snapshot struct {
	// Index is the configured backend name ("mtree", "grid", ...); empty
	// when the writer recorded none.
	Index string
	// Parallelism is the coverage-graph build worker count (0 = default).
	Parallelism int
	// Capacity is the M-tree node capacity; Seed the index-construction
	// seed. Both are persisted so deterministic rebuilds of the
	// dataset-only backends reproduce the writer's engine exactly.
	Capacity int
	Seed     uint64

	// Metric names the distance function the coordinates were indexed
	// under; N, Dim and Coords are the row-major dataset. Exactly one of
	// Coords and Coords32 is set: Coords32 carries a float32-precision
	// dataset (unpadded row-major), in which case SqNorms, when non-nil,
	// carries the per-row squared norms the embedding metrics cache
	// (loaders verify them against a recomputation before trusting them).
	Metric   string
	N, Dim   int
	Coords   []float64
	Coords32 []float32
	SqNorms  []float64

	// Grid, when non-nil, is the persisted uniform-grid occupancy.
	Grid *grid.Parts

	// Graph, when non-nil, is the persisted coverage-graph adjacency,
	// joined at GraphRadius.
	GraphRadius float64
	Graph       *grid.CSR

	// ComponentLabels, when non-nil, is the connected-component label of
	// every point in the graph section's adjacency at GraphRadius, with
	// ComponentCount distinct components — the decomposition the
	// component-parallel selection path derives in O(n + edges), persisted
	// so warm starts skip the pass. Only meaningful alongside a graph
	// section; loaders revalidate the labels against the adjacency before
	// trusting them.
	ComponentCount  int
	ComponentLabels []int32

	// WALEpoch, when non-zero, marks this snapshot as a durable
	// checkpoint: the write-ahead log of the same state begins a new
	// epoch with this number, and recovery replays exactly the log
	// segments stamped with it (internal/wal; docs/DURABILITY.md).
	// Zero means the snapshot was written outside the WAL lifecycle and
	// carries no walepoch section.
	WALEpoch uint64
}

// validate checks the shape invariants Write relies on to size sections.
func (s *Snapshot) validate() error {
	if s.Metric == "" {
		return fmt.Errorf("snap: no metric name")
	}
	if s.N <= 0 || s.Dim <= 0 || s.N > math.MaxInt32 {
		return fmt.Errorf("snap: invalid dataset shape %d x %d", s.N, s.Dim)
	}
	switch {
	case s.Coords != nil && s.Coords32 != nil:
		return fmt.Errorf("snap: both float64 and float32 coordinates set")
	case s.Coords32 != nil:
		if len(s.Coords32) != s.N*s.Dim {
			return fmt.Errorf("snap: %d float32 coordinates for shape %d x %d", len(s.Coords32), s.N, s.Dim)
		}
		if s.SqNorms != nil && len(s.SqNorms) != s.N {
			return fmt.Errorf("snap: %d squared norms for %d points", len(s.SqNorms), s.N)
		}
	default:
		if len(s.Coords) != s.N*s.Dim {
			return fmt.Errorf("snap: %d coordinates for shape %d x %d", len(s.Coords), s.N, s.Dim)
		}
		if s.SqNorms != nil {
			return fmt.Errorf("snap: squared norms are only persisted with float32 coordinates")
		}
	}
	if len(s.Metric) > math.MaxInt32/2 || len(s.Index) > math.MaxInt32/2 {
		return fmt.Errorf("snap: unreasonable name length")
	}
	if g := s.Grid; g != nil {
		if len(g.Min) != s.Dim || len(g.ND) != s.Dim {
			return fmt.Errorf("snap: grid layout dimensionality %d, dataset %d", len(g.ND), s.Dim)
		}
		if len(g.IDs) != s.N || len(g.CellOf) != s.N {
			return fmt.Errorf("snap: grid occupancy sized for %d points, dataset has %d", len(g.IDs), s.N)
		}
		if len(g.Start) < 2 {
			return fmt.Errorf("snap: grid directory has no cells")
		}
	}
	if c := s.Graph; c != nil {
		if len(c.Offsets) != s.N+1 {
			return fmt.Errorf("snap: graph offsets sized for %d points, dataset has %d", len(c.Offsets)-1, s.N)
		}
		if int(c.Offsets[s.N]) != len(c.Nbrs) {
			return fmt.Errorf("snap: graph offsets do not span the packed neighbours")
		}
	}
	if l := s.ComponentLabels; l != nil {
		if s.Graph == nil {
			return fmt.Errorf("snap: component labels without a graph section")
		}
		if len(l) != s.N {
			return fmt.Errorf("snap: %d component labels for %d points", len(l), s.N)
		}
		if s.ComponentCount < 1 || s.ComponentCount > s.N {
			return fmt.Errorf("snap: implausible component count %d for %d points", s.ComponentCount, s.N)
		}
	}
	return nil
}

// align8 rounds n up to the next multiple of 8.
func align8(n int) int { return (n + 7) &^ 7 }

// enc is a cursor over the preallocated output buffer.
type enc struct {
	b   []byte
	off int
}

func (e *enc) u32(v uint32) {
	binary.LittleEndian.PutUint32(e.b[e.off:], v)
	e.off += 4
}

func (e *enc) u64(v uint64) {
	binary.LittleEndian.PutUint64(e.b[e.off:], v)
	e.off += 8
}

func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	copy(e.b[e.off:], s)
	e.off += len(s)
}

// pad8 advances to the next 8-byte file offset (the buffer is
// zero-initialised, so padding bytes are deterministic).
func (e *enc) pad8() { e.off = align8(e.off) }

func (e *enc) f64s(v []float64) {
	if nativeLittle && len(v) > 0 {
		copy(e.b[e.off:], unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v)))
	} else {
		for i, x := range v {
			binary.LittleEndian.PutUint64(e.b[e.off+8*i:], math.Float64bits(x))
		}
	}
	e.off += 8 * len(v)
}

func (e *enc) f32s(v []float32) {
	if nativeLittle && len(v) > 0 {
		copy(e.b[e.off:], unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v)))
	} else {
		for i, x := range v {
			binary.LittleEndian.PutUint32(e.b[e.off+4*i:], math.Float32bits(x))
		}
	}
	e.off += 4 * len(v)
}

func (e *enc) i32s(v []int32) {
	if nativeLittle && len(v) > 0 {
		copy(e.b[e.off:], unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v)))
	} else {
		for i, x := range v {
			binary.LittleEndian.PutUint32(e.b[e.off+4*i:], uint32(x))
		}
	}
	e.off += 4 * len(v)
}

func (e *enc) neighbors(v []object.Neighbor) {
	if nativeLittle && neighborWireLayout && len(v) > 0 {
		copy(e.b[e.off:], unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 16*len(v)))
	} else {
		for i, nb := range v {
			binary.LittleEndian.PutUint64(e.b[e.off+16*i:], uint64(int64(nb.ID)))
			binary.LittleEndian.PutUint64(e.b[e.off+16*i+8:], math.Float64bits(nb.Dist))
		}
	}
	e.off += 16 * len(v)
}

// section pairs a kind with its payload size and emitter.
type section struct {
	kind uint32
	size int
	emit func(*enc)
}

// Write serialises s to w in the version-1 layout. The encoding is
// deterministic: the same snapshot always produces byte-identical
// output, which the round-trip tests rely on.
func Write(w io.Writer, s *Snapshot) error {
	defer telemetry.Since(metWrite, time.Now())
	if err := s.validate(); err != nil {
		return err
	}

	secs := []section{
		{kindMeta, 8 + 4 + 4 + 4 + len(s.Index), func(e *enc) {
			e.u64(s.Seed)
			e.u32(uint32(s.Parallelism))
			e.u32(uint32(s.Capacity))
			e.str(s.Index)
		}},
	}
	if s.Coords32 != nil {
		// Float32 coordinates plus the optional squared-norm cache; the
		// norms follow the coordinate array at the next 8-byte boundary.
		body := 4 * len(s.Coords32)
		if s.SqNorms != nil {
			body = align8(body) + 8*len(s.SqNorms)
		}
		secs = append(secs, section{kindDataset32,
			align8(8+8+8+4+len(s.Metric)) + body,
			func(e *enc) {
				e.u64(uint64(s.N))
				e.u64(uint64(s.Dim))
				e.u64(uint64(len(s.SqNorms)))
				e.str(s.Metric)
				e.pad8()
				e.f32s(s.Coords32)
				if s.SqNorms != nil {
					e.pad8()
					e.f64s(s.SqNorms)
				}
			}})
	} else {
		secs = append(secs, section{kindDataset,
			align8(8+8+4+len(s.Metric)) + 8*len(s.Coords),
			func(e *enc) {
				e.u64(uint64(s.N))
				e.u64(uint64(s.Dim))
				e.str(s.Metric)
				e.pad8()
				e.f64s(s.Coords)
			}})
	}
	if g := s.Grid; g != nil {
		secs = append(secs, section{kindGrid,
			40 + 8*len(g.Min) + 4*(len(g.ND)+len(g.Start)+len(g.IDs)+len(g.CellOf)),
			func(e *enc) {
				e.f64(g.R)
				e.f64(g.Cell)
				e.u64(uint64(s.Dim))
				e.u64(uint64(len(g.Start) - 1))
				e.u64(uint64(s.N))
				e.f64s(g.Min)
				e.i32s(g.ND)
				e.i32s(g.Start)
				e.i32s(g.IDs)
				e.i32s(g.CellOf)
			}})
	}
	if c := s.Graph; c != nil {
		secs = append(secs, section{kindGraph,
			align8(8+8+8+4*len(c.Offsets)) + 16*len(c.Nbrs),
			func(e *enc) {
				e.f64(s.GraphRadius)
				e.u64(uint64(s.N))
				e.u64(uint64(len(c.Nbrs)))
				e.i32s(c.Offsets)
				e.pad8()
				e.neighbors(c.Nbrs)
			}})
	}
	if l := s.ComponentLabels; l != nil {
		secs = append(secs, section{kindComponents,
			24 + 4*len(l),
			func(e *enc) {
				e.f64(s.GraphRadius)
				e.u64(uint64(s.N))
				e.u64(uint64(s.ComponentCount))
				e.i32s(l)
			}})
	}
	if s.WALEpoch != 0 {
		secs = append(secs, section{kindWALEpoch, 8, func(e *enc) {
			e.u64(s.WALEpoch)
		}})
	}

	tableEnd := headerSize + entrySize*len(secs)
	offsets := make([]int, len(secs))
	total := align8(tableEnd)
	for i, sec := range secs {
		offsets[i] = total
		total = align8(total + sec.size)
	}
	// No padding is owed after the final section.
	total = offsets[len(secs)-1] + secs[len(secs)-1].size

	buf := make([]byte, total)
	copy(buf, magic)
	h := &enc{b: buf, off: 8}
	h.u32(Version)
	h.u32(uint32(len(secs)))
	// Table CRC is written once the table is filled in below.

	for i, sec := range secs {
		e := &enc{b: buf, off: offsets[i]}
		sec.emit(e)
		if e.off != offsets[i]+sec.size {
			return fmt.Errorf("snap: internal error: section kind %d emitted %d bytes, sized %d", sec.kind, e.off-offsets[i], sec.size)
		}
		t := &enc{b: buf, off: headerSize + entrySize*i}
		t.u32(sec.kind)
		t.u32(crc32.Checksum(buf[offsets[i]:offsets[i]+sec.size], castagnoli))
		t.u64(uint64(offsets[i]))
		t.u64(uint64(sec.size))
	}
	binary.LittleEndian.PutUint32(buf[16:], crc32.Checksum(buf[headerSize:tableEnd], castagnoli))

	_, err := w.Write(buf)
	return err
}

// dec is a cursor over one section's payload; bounds are pre-validated
// by exact size equations before any field is read.
type dec struct {
	b   []byte
	off int
}

func (d *dec) u32() uint32 {
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) pad8() { d.off = align8(d.off) }

// f64s decodes count float64s, aliasing the buffer when possible.
func (d *dec) f64s(count int) []float64 {
	raw := d.b[d.off : d.off+8*count]
	d.off += 8 * count
	if count == 0 {
		return nil
	}
	if nativeLittle && uintptr(unsafe.Pointer(&raw[0]))%unsafe.Alignof(float64(0)) == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&raw[0])), count)
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}

// f32s decodes count float32s, aliasing the buffer when possible.
func (d *dec) f32s(count int) []float32 {
	raw := d.b[d.off : d.off+4*count]
	d.off += 4 * count
	if count == 0 {
		return nil
	}
	if nativeLittle && uintptr(unsafe.Pointer(&raw[0]))%unsafe.Alignof(float32(0)) == 0 {
		return unsafe.Slice((*float32)(unsafe.Pointer(&raw[0])), count)
	}
	out := make([]float32, count)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out
}

// i32s decodes count int32s, aliasing the buffer when possible.
func (d *dec) i32s(count int) []int32 {
	raw := d.b[d.off : d.off+4*count]
	d.off += 4 * count
	if count == 0 {
		return nil
	}
	if nativeLittle && uintptr(unsafe.Pointer(&raw[0]))%unsafe.Alignof(int32(0)) == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&raw[0])), count)
	}
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out
}

// neighbors decodes count wire neighbour pairs, aliasing when the
// in-memory layout matches.
func (d *dec) neighbors(count int) []object.Neighbor {
	raw := d.b[d.off : d.off+16*count]
	d.off += 16 * count
	if count == 0 {
		return nil
	}
	if nativeLittle && neighborWireLayout &&
		uintptr(unsafe.Pointer(&raw[0]))%unsafe.Alignof(object.Neighbor{}) == 0 {
		return unsafe.Slice((*object.Neighbor)(unsafe.Pointer(&raw[0])), count)
	}
	out := make([]object.Neighbor, count)
	for i := range out {
		out[i] = object.Neighbor{
			ID:   int(int64(binary.LittleEndian.Uint64(raw[16*i:]))),
			Dist: math.Float64frombits(binary.LittleEndian.Uint64(raw[16*i+8:])),
		}
	}
	return out
}

// str decodes a length-prefixed string with an explicit bound check
// (strings are the one variable-length field read before a section's
// exact size equation can be formed).
func (d *dec) str(limit int) (string, error) {
	if limit-d.off < 4 {
		return "", io.ErrUnexpectedEOF
	}
	n := int(d.u32())
	if n < 0 || limit-d.off < n {
		return "", io.ErrUnexpectedEOF
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s, nil
}

// readAll slurps r, pre-sizing the buffer when r is seekable so the
// common file and bytes.Reader paths cost one allocation and one copy.
func readAll(r io.Reader) ([]byte, error) {
	if sk, ok := r.(io.Seeker); ok {
		cur, err := sk.Seek(0, io.SeekCurrent)
		if err == nil {
			if end, err := sk.Seek(0, io.SeekEnd); err == nil {
				if _, err := sk.Seek(cur, io.SeekStart); err == nil && end > cur {
					buf := make([]byte, end-cur)
					if _, err := io.ReadFull(r, buf); err != nil {
						return nil, err
					}
					return buf, nil
				}
			}
		}
	}
	return io.ReadAll(r)
}

// Read decodes a snapshot from r, verifying the magic, version, section
// table checksum and every section checksum before trusting a byte of
// payload. Unknown section kinds are skipped (see the versioning
// policy); duplicate or structurally inconsistent sections are
// rejected.
func Read(r io.Reader) (*Snapshot, error) {
	defer telemetry.Since(metRead, time.Now())
	data, err := readAll(r)
	if err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("snap: truncated header (%d bytes)", len(data))
	}
	if string(data[:8]) != magic {
		return nil, fmt.Errorf("snap: not a discsnap stream (bad magic)")
	}
	h := &dec{b: data, off: 8}
	if v := h.u32(); v != Version {
		return nil, fmt.Errorf("snap: unsupported format version %d (reader supports %d)", v, Version)
	}
	nsec := int(h.u32())
	tableCRC := h.u32()
	if nsec <= 0 || nsec > (len(data)-headerSize)/entrySize {
		return nil, fmt.Errorf("snap: truncated section table (%d sections declared)", nsec)
	}
	tableEnd := headerSize + entrySize*nsec
	if crc32.Checksum(data[headerSize:tableEnd], castagnoli) != tableCRC {
		return nil, fmt.Errorf("snap: section table checksum mismatch")
	}

	s := &Snapshot{}
	seen := map[uint32]bool{}
	var gridSec, graphSec, compSec *dec
	var gridLen, graphLen, compLen int
	for i := 0; i < nsec; i++ {
		t := &dec{b: data, off: headerSize + entrySize*i}
		kind := t.u32()
		crc := t.u32()
		off64, len64 := t.u64(), t.u64()
		if off64 > uint64(len(data)) || len64 > uint64(len(data))-off64 {
			return nil, fmt.Errorf("snap: section %d extends past the end of the stream", i)
		}
		off, length := int(off64), int(len64)
		if off%8 != 0 || off < tableEnd {
			return nil, fmt.Errorf("snap: section %d is misaligned", i)
		}
		if crc32.Checksum(data[off:off+length], castagnoli) != crc {
			return nil, fmt.Errorf("snap: section %d (kind %d) checksum mismatch", i, kind)
		}
		if seen[kind] {
			return nil, fmt.Errorf("snap: duplicate section kind %d", kind)
		}
		seen[kind] = true
		d := &dec{b: data[:off+length], off: off}
		switch kind {
		case kindMeta:
			if length < 20 {
				return nil, fmt.Errorf("snap: meta section truncated")
			}
			s.Seed = d.u64()
			s.Parallelism = int(int32(d.u32()))
			s.Capacity = int(int32(d.u32()))
			if s.Index, err = d.str(off + length); err != nil {
				return nil, fmt.Errorf("snap: meta section truncated")
			}
		case kindDataset:
			if s.N != 0 {
				return nil, fmt.Errorf("snap: more than one dataset section")
			}
			if length < 20 {
				return nil, fmt.Errorf("snap: dataset section truncated")
			}
			n, dim := d.u64(), d.u64()
			if n == 0 || n > math.MaxInt32 || dim == 0 || dim > 1<<20 {
				return nil, fmt.Errorf("snap: implausible dataset shape %d x %d", n, dim)
			}
			if s.Metric, err = d.str(off + length); err != nil {
				return nil, fmt.Errorf("snap: dataset section truncated")
			}
			d.pad8()
			s.N, s.Dim = int(n), int(dim)
			if length != (d.off-off)+8*s.N*s.Dim {
				return nil, fmt.Errorf("snap: dataset section length %d does not match shape %d x %d", length, n, dim)
			}
			s.Coords = d.f64s(s.N * s.Dim)
		case kindDataset32:
			if s.N != 0 {
				return nil, fmt.Errorf("snap: more than one dataset section")
			}
			if length < 28 {
				return nil, fmt.Errorf("snap: dataset32 section truncated")
			}
			n, dim, norms := d.u64(), d.u64(), d.u64()
			if n == 0 || n > math.MaxInt32 || dim == 0 || dim > 1<<20 {
				return nil, fmt.Errorf("snap: implausible dataset shape %d x %d", n, dim)
			}
			if norms != 0 && norms != n {
				return nil, fmt.Errorf("snap: %d squared norms for %d points", norms, n)
			}
			if s.Metric, err = d.str(off + length); err != nil {
				return nil, fmt.Errorf("snap: dataset32 section truncated")
			}
			d.pad8()
			s.N, s.Dim = int(n), int(dim)
			body := 4 * s.N * s.Dim
			if norms != 0 {
				body = align8(body) + 8*s.N
			}
			if length != (d.off-off)+body {
				return nil, fmt.Errorf("snap: dataset32 section length %d does not match shape %d x %d", length, n, dim)
			}
			s.Coords32 = d.f32s(s.N * s.Dim)
			if norms != 0 {
				d.pad8()
				s.SqNorms = d.f64s(s.N)
			}
		case kindGrid:
			// Decoded after the loop: shape checks need the dataset
			// section, which may come later in the table.
			gridSec, gridLen = d, length
		case kindGraph:
			graphSec, graphLen = d, length
		case kindComponents:
			// Decoded after the graph section: the labels are only
			// meaningful against its adjacency and radius.
			compSec, compLen = d, length
		case kindWALEpoch:
			if length != 8 {
				return nil, fmt.Errorf("snap: walepoch section length %d, want 8", length)
			}
			s.WALEpoch = d.u64()
			if s.WALEpoch == 0 {
				return nil, fmt.Errorf("snap: walepoch section with epoch 0 (durable checkpoints start at 1)")
			}
		default:
			// Unknown kind: a forward-compatible addition; skip.
		}
	}
	if s.Coords == nil && s.Coords32 == nil {
		return nil, fmt.Errorf("snap: no dataset section")
	}

	if d := gridSec; d != nil {
		if gridLen < 40 {
			return nil, fmt.Errorf("snap: grid section truncated")
		}
		g := &grid.Parts{}
		g.R = d.f64()
		g.Cell = d.f64()
		dim64, ncells64, n64 := d.u64(), d.u64(), d.u64()
		if dim64 != uint64(s.Dim) || n64 != uint64(s.N) {
			return nil, fmt.Errorf("snap: grid section shape %dx%d does not match the dataset", n64, dim64)
		}
		if ncells64 == 0 || ncells64 > math.MaxInt32/4 {
			return nil, fmt.Errorf("snap: implausible grid directory size %d", ncells64)
		}
		ncells := int(ncells64)
		if gridLen != 40+8*s.Dim+4*(s.Dim+ncells+1+2*s.N) {
			return nil, fmt.Errorf("snap: grid section length %d does not match its declared shape", gridLen)
		}
		g.Min = d.f64s(s.Dim)
		g.ND = d.i32s(s.Dim)
		g.Start = d.i32s(ncells + 1)
		g.IDs = d.i32s(s.N)
		g.CellOf = d.i32s(s.N)
		s.Grid = g
	}
	if d := graphSec; d != nil {
		if graphLen < 24 {
			return nil, fmt.Errorf("snap: graph section truncated")
		}
		radius := d.f64()
		n64, edges64 := d.u64(), d.u64()
		if n64 != uint64(s.N) {
			return nil, fmt.Errorf("snap: graph section is for %d points, dataset has %d", n64, s.N)
		}
		if edges64 > math.MaxInt32 {
			return nil, fmt.Errorf("snap: implausible edge count %d", edges64)
		}
		edges := int(edges64)
		if graphLen != align8(24+4*(s.N+1))+16*edges {
			return nil, fmt.Errorf("snap: graph section length %d does not match %d points / %d edges", graphLen, s.N, edges)
		}
		c := &grid.CSR{}
		c.Offsets = d.i32s(s.N + 1)
		d.pad8()
		c.Nbrs = d.neighbors(edges)
		if int(c.Offsets[s.N]) != edges || c.Offsets[0] != 0 {
			return nil, fmt.Errorf("snap: graph offsets do not span the %d packed neighbours", edges)
		}
		s.GraphRadius = radius
		s.Graph = c
	}
	if d := compSec; d != nil {
		if compLen < 24 {
			return nil, fmt.Errorf("snap: components section truncated")
		}
		if s.Graph == nil {
			return nil, fmt.Errorf("snap: components section without a graph section")
		}
		radius := d.f64()
		n64, count64 := d.u64(), d.u64()
		if radius != s.GraphRadius {
			return nil, fmt.Errorf("snap: components labeled at radius %g, graph joined at %g", radius, s.GraphRadius)
		}
		if n64 != uint64(s.N) {
			return nil, fmt.Errorf("snap: components section is for %d points, dataset has %d", n64, s.N)
		}
		if count64 == 0 || count64 > uint64(s.N) {
			return nil, fmt.Errorf("snap: implausible component count %d for %d points", count64, s.N)
		}
		if compLen != 24+4*s.N {
			return nil, fmt.Errorf("snap: components section length %d does not match %d points", compLen, s.N)
		}
		s.ComponentCount = int(count64)
		s.ComponentLabels = d.i32s(s.N)
	}
	return s, nil
}
