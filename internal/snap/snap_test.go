package snap

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand/v2"
	"testing"

	"github.com/discdiversity/disc/internal/grid"
	"github.com/discdiversity/disc/internal/object"
)

// buildSnapshot assembles a realistic snapshot over random clustered
// points: dataset always, grid occupancy and coverage-graph CSR when
// withGrid/withGraph are set (built by the real grid code so the
// layouts are genuine).
func buildSnapshot(t *testing.T, n, dim int, r float64, seed uint64, withGrid, withGraph, withComps bool) *Snapshot {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed))
	pts := make([]object.Point, n)
	for i := range pts {
		p := make(object.Point, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	m := object.Euclidean{}
	flat, err := object.Flatten(pts, m)
	if err != nil {
		t.Fatal(err)
	}
	s := &Snapshot{
		Index:       "coverage-graph",
		Parallelism: 2,
		Capacity:    64,
		Seed:        seed ^ 0xabcdef,
		Metric:      m.Name(),
		N:           n,
		Dim:         dim,
		Coords:      flat.Coords(),
	}
	if withGrid || withGraph {
		g, err := grid.Build(flat, r)
		if err != nil {
			t.Fatal(err)
		}
		p := g.Parts()
		s.Grid = &p
		if withGraph {
			csr, _, err := grid.Join(g, r, 2)
			if err != nil {
				t.Fatal(err)
			}
			s.GraphRadius = r
			s.Graph = csr
			if withComps {
				cp := grid.ComponentsOfCSR(csr, n, r)
				s.ComponentCount = cp.Count
				s.ComponentLabels = cp.Label
			}
		}
	}
	return s
}

func encode(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRoundTripByteIdentity: save → load → save must reproduce the file
// byte for byte, for every section combination and several shapes — the
// property that makes snapshots content-addressable and diffable.
func TestRoundTripByteIdentity(t *testing.T) {
	cases := []struct {
		n, dim                         int
		r                              float64
		withGrid, withGraph, withComps bool
	}{
		{50, 2, 0.2, false, false, false},
		{120, 2, 0.15, true, false, false},
		{120, 2, 0.15, true, true, false},
		{200, 3, 0.25, true, true, true},
		{77, 1, 0.1, true, true, true},
		{300, 5, 0.4, true, true, true},
	}
	for i, tc := range cases {
		s := buildSnapshot(t, tc.n, tc.dim, tc.r, uint64(100+i), tc.withGrid, tc.withGraph, tc.withComps)
		first := encode(t, s)
		loaded, err := Read(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("case %d: read: %v", i, err)
		}
		second := encode(t, loaded)
		if !bytes.Equal(first, second) {
			t.Fatalf("case %d: save→load→save is not byte-identical (%d vs %d bytes)", i, len(first), len(second))
		}
		if loaded.Index != s.Index || loaded.Parallelism != s.Parallelism ||
			loaded.Capacity != s.Capacity || loaded.Seed != s.Seed ||
			loaded.Metric != s.Metric || loaded.N != s.N || loaded.Dim != s.Dim {
			t.Fatalf("case %d: metadata drifted: %+v", i, loaded)
		}
		if (loaded.Grid != nil) != tc.withGrid || (loaded.Graph != nil) != tc.withGraph ||
			(loaded.ComponentLabels != nil) != tc.withComps {
			t.Fatalf("case %d: section presence drifted", i)
		}
		if tc.withGraph && loaded.GraphRadius != s.GraphRadius {
			t.Fatalf("case %d: graph radius %g, want %g", i, loaded.GraphRadius, s.GraphRadius)
		}
	}
}

// TestRoundTripValues: decoded arrays must be element-identical to what
// was written (the byte-identity test covers re-encoding; this pins the
// decoded in-memory values themselves).
func TestRoundTripValues(t *testing.T) {
	s := buildSnapshot(t, 150, 2, 0.12, 7, true, true, true)
	loaded, err := Read(bytes.NewReader(encode(t, s)))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range s.Coords {
		if loaded.Coords[i] != v {
			t.Fatalf("coord %d: %g != %g", i, loaded.Coords[i], v)
		}
	}
	if loaded.Grid.R != s.Grid.R || loaded.Grid.Cell != s.Grid.Cell {
		t.Fatalf("grid params drifted")
	}
	for i, v := range s.Grid.IDs {
		if loaded.Grid.IDs[i] != v {
			t.Fatalf("grid id %d drifted", i)
		}
	}
	for i, v := range s.Graph.Offsets {
		if loaded.Graph.Offsets[i] != v {
			t.Fatalf("offset %d drifted", i)
		}
	}
	for i, v := range s.Graph.Nbrs {
		if loaded.Graph.Nbrs[i] != v {
			t.Fatalf("neighbour %d drifted", i)
		}
	}
	if loaded.ComponentCount != s.ComponentCount {
		t.Fatalf("component count drifted")
	}
	for i, v := range s.ComponentLabels {
		if loaded.ComponentLabels[i] != v {
			t.Fatalf("component label %d drifted", i)
		}
	}
}

// TestRejectBadMagic: any corruption of the magic must be rejected.
func TestRejectBadMagic(t *testing.T) {
	data := encode(t, buildSnapshot(t, 60, 2, 0.2, 3, true, true, true))
	for i := 0; i < 8; i++ {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x01
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corrupted magic byte %d accepted", i)
		}
	}
}

// TestRejectBadVersion: future or zero versions must be rejected.
func TestRejectBadVersion(t *testing.T) {
	data := encode(t, buildSnapshot(t, 60, 2, 0.2, 3, false, false, false))
	for _, v := range []byte{0, 2, 0xff} {
		bad := append([]byte(nil), data...)
		bad[8] = v
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatalf("version %d accepted", v)
		}
	}
}

// TestRejectTruncation: every truncation point must error, never panic
// or silently succeed — the property a crashed writer or torn copy
// relies on.
func TestRejectTruncation(t *testing.T) {
	data := encode(t, buildSnapshot(t, 80, 2, 0.2, 5, true, true, true))
	for cut := 0; cut < len(data); cut++ {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", cut, len(data))
		}
	}
}

// TestRejectFlippedBytes: flipping any single bit of the section table
// or of a section payload (which includes every CRC-protected region)
// must be rejected by a checksum or structural check. Padding bytes
// between sections are the only bytes outside the checksummed regions;
// flips there must not corrupt the decoded snapshot.
func TestRejectFlippedBytes(t *testing.T) {
	s := buildSnapshot(t, 64, 2, 0.2, 9, true, true, true)
	data := encode(t, s)
	reference := encode(t, s)

	// Identify payload/table coverage: everything from the header to the
	// end is either table, payload, or inter-section padding.
	for i := 8; i < len(data); i++ {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x40
		loaded, err := Read(bytes.NewReader(bad))
		if err != nil {
			continue // rejected: the common, desired outcome
		}
		// The flip survived: it must have hit padding, and the decoded
		// snapshot must still re-encode to the pristine file.
		if got := encode(t, loaded); !bytes.Equal(got, reference) {
			t.Fatalf("flip at byte %d accepted AND altered the decoded snapshot", i)
		}
	}
}

// TestRejectShapeLies: structurally valid checksums around inconsistent
// declared shapes must still be rejected (the CRC protects bits, the
// size equations protect logic).
func TestRejectShapeLies(t *testing.T) {
	s := buildSnapshot(t, 64, 2, 0.2, 11, true, true, true)
	// Graph offsets that do not span the packed array.
	s.Graph.Offsets[len(s.Graph.Offsets)-1]++
	var buf bytes.Buffer
	if err := Write(&buf, s); err == nil {
		t.Fatal("writer accepted offsets that do not span the neighbour array")
	}
}

// TestWriterValidation: the writer must refuse snapshots whose shape
// invariants do not hold, so corrupt files cannot be produced in the
// first place.
func TestWriterValidation(t *testing.T) {
	good := buildSnapshot(t, 40, 2, 0.2, 13, true, true, true)
	cases := []func(*Snapshot){
		func(s *Snapshot) { s.Metric = "" },
		func(s *Snapshot) { s.N = 0 },
		func(s *Snapshot) { s.Coords = s.Coords[:len(s.Coords)-1] },
		func(s *Snapshot) { s.Grid.IDs = s.Grid.IDs[:10] },
		func(s *Snapshot) { s.Grid.Min = s.Grid.Min[:1] },
		func(s *Snapshot) { s.Graph.Offsets = s.Graph.Offsets[:5] },
	}
	for i, mutate := range cases {
		bad := *good
		gridCopy := *good.Grid
		graphCopy := *good.Graph
		bad.Grid, bad.Graph = &gridCopy, &graphCopy
		mutate(&bad)
		if err := Write(&bytes.Buffer{}, &bad); err == nil {
			t.Fatalf("case %d: writer accepted an inconsistent snapshot", i)
		}
	}
}

// TestComponentsSectionConsistency: the writer must refuse label arrays
// that do not fit the snapshot, and the reader must reject a components
// section whose radius disagrees with the graph section — labels for a
// different decomposition must never be grafted onto this adjacency.
func TestComponentsSectionConsistency(t *testing.T) {
	good := buildSnapshot(t, 64, 2, 0.2, 19, true, true, true)
	writerCases := []func(*Snapshot){
		func(s *Snapshot) { s.ComponentLabels = s.ComponentLabels[:10] },
		func(s *Snapshot) { s.ComponentCount = 0 },
		func(s *Snapshot) { s.ComponentCount = s.N + 1 },
		func(s *Snapshot) { s.Graph = nil }, // labels without a graph
	}
	for i, mutate := range writerCases {
		bad := *good
		bad.ComponentLabels = append([]int32(nil), good.ComponentLabels...)
		mutate(&bad)
		if err := Write(&bytes.Buffer{}, &bad); err == nil {
			t.Fatalf("case %d: writer accepted inconsistent component labels", i)
		}
	}

	// Reader: rewrite the components section's radius field in place and
	// fix up its CRC — a structurally valid file lying about the radius.
	data := encode(t, good)
	nsec := int(binary.LittleEndian.Uint32(data[12:]))
	for i := 0; i < nsec; i++ {
		entry := headerSize + entrySize*i
		if binary.LittleEndian.Uint32(data[entry:]) != kindComponents {
			continue
		}
		off := int(binary.LittleEndian.Uint64(data[entry+8:]))
		length := int(binary.LittleEndian.Uint64(data[entry+16:]))
		binary.LittleEndian.PutUint64(data[off:], 0x3ff0000000000000) // 1.0, not the join radius
		binary.LittleEndian.PutUint32(data[entry+4:], crc32.Checksum(data[off:off+length], castagnoli))
		retable(data)
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Fatal("radius-mismatched components section accepted")
		}
		return
	}
	t.Fatal("no components section found")
}

// TestUnknownSectionSkipped: a reader must skip section kinds it does
// not know — the forward-compatibility contract that lets future
// writers add sections without a version bump.
func TestUnknownSectionSkipped(t *testing.T) {
	data := encode(t, buildSnapshot(t, 50, 2, 0.2, 17, false, false, false))
	// Retag the meta section (kind 1, first table entry) as an unknown
	// kind and fix up the table CRC.
	bad := append([]byte(nil), data...)
	bad[headerSize] = 0x7f // kind low byte
	retable(bad)
	loaded, err := Read(bytes.NewReader(bad))
	if err != nil {
		t.Fatalf("unknown section kind rejected: %v", err)
	}
	if loaded.Index != "" || loaded.Parallelism != 0 {
		t.Fatalf("skipped section leaked values: %+v", loaded)
	}
	if loaded.N != 50 {
		t.Fatalf("dataset section lost alongside the skipped one")
	}
}

// retable recomputes the header's section-table CRC after a deliberate
// table edit.
func retable(data []byte) {
	nsec := int(binary.LittleEndian.Uint32(data[12:]))
	end := headerSize + entrySize*nsec
	binary.LittleEndian.PutUint32(data[16:], crc32.Checksum(data[headerSize:end], castagnoli))
}

// buildSnapshot32 assembles a float32-precision snapshot over random
// points under m, with the optional flat-joined coverage graph (no grid
// section — the flat substrate has none).
func buildSnapshot32(t *testing.T, n, dim int, r float64, seed uint64, m object.Metric, withGraph bool) *Snapshot {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed))
	pts := make([]object.Point, n)
	for i := range pts {
		p := make(object.Point, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	flat, err := object.Flatten32(pts, m)
	if err != nil {
		t.Fatal(err)
	}
	stride := flat.Stride32()
	src := flat.Coords32()
	c := make([]float32, n*dim)
	for i := 0; i < n; i++ {
		copy(c[i*dim:(i+1)*dim], src[i*stride:i*stride+dim])
	}
	s := &Snapshot{
		Index:       "coverage-graph",
		Parallelism: 2,
		Capacity:    64,
		Seed:        seed ^ 0xabcdef,
		Metric:      m.Name(),
		N:           n,
		Dim:         dim,
		Coords32:    c,
		SqNorms:     flat.SqNorms(),
	}
	if withGraph {
		csr, _, err := grid.FlatJoin(flat, r, 2)
		if err != nil {
			t.Fatal(err)
		}
		s.GraphRadius = r
		s.Graph = csr
	}
	return s
}

// TestRoundTripFloat32: the dataset32 section must round-trip
// byte-identically and element-identically, with and without the
// squared-norm cache (present for the embedding metrics only) and with
// a flat-joined graph section that has no grid alongside it.
func TestRoundTripFloat32(t *testing.T) {
	cases := []struct {
		dim       int
		m         object.Metric
		withGraph bool
		wantNorms bool
	}{
		{3, object.Euclidean{}, false, false},
		{7, object.Euclidean{}, true, false},
		{7, object.Cosine{}, true, true},
		{5, object.DotProduct{}, false, true},
	}
	for i, tc := range cases {
		s := buildSnapshot32(t, 90, tc.dim, 0.35, uint64(400+i), tc.m, tc.withGraph)
		if (s.SqNorms != nil) != tc.wantNorms {
			t.Fatalf("case %d: norms presence %v, want %v", i, s.SqNorms != nil, tc.wantNorms)
		}
		first := encode(t, s)
		loaded, err := Read(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("case %d: read: %v", i, err)
		}
		if !bytes.Equal(first, encode(t, loaded)) {
			t.Fatalf("case %d: save→load→save is not byte-identical", i)
		}
		if loaded.Coords != nil {
			t.Fatalf("case %d: float64 coordinates materialised from a float32 snapshot", i)
		}
		if len(loaded.Coords32) != len(s.Coords32) {
			t.Fatalf("case %d: %d coords32, want %d", i, len(loaded.Coords32), len(s.Coords32))
		}
		for j, v := range s.Coords32 {
			if loaded.Coords32[j] != v {
				t.Fatalf("case %d: coord32 %d drifted", i, j)
			}
		}
		if (loaded.SqNorms != nil) != tc.wantNorms {
			t.Fatalf("case %d: loaded norms presence drifted", i)
		}
		for j, v := range s.SqNorms {
			if loaded.SqNorms[j] != v {
				t.Fatalf("case %d: norm %d drifted", i, j)
			}
		}
		if (loaded.Graph != nil) != tc.withGraph {
			t.Fatalf("case %d: graph presence drifted", i)
		}
		if tc.withGraph && loaded.Grid != nil {
			t.Fatalf("case %d: grid section appeared from nowhere", i)
		}
	}
}

// TestFloat32WriterValidation: the writer must refuse shapes the
// dataset32 section cannot represent.
func TestFloat32WriterValidation(t *testing.T) {
	good := buildSnapshot32(t, 40, 4, 0.3, 21, object.Cosine{}, false)
	cases := []func(*Snapshot){
		func(s *Snapshot) { s.Coords = make([]float64, s.N*s.Dim) }, // both precisions at once
		func(s *Snapshot) { s.Coords32 = s.Coords32[:len(s.Coords32)-1] },
		func(s *Snapshot) { s.SqNorms = s.SqNorms[:len(s.SqNorms)-1] },
		func(s *Snapshot) { s.Coords32 = nil }, // norms without float32 coords
	}
	for i, mutate := range cases {
		bad := *good
		mutate(&bad)
		if err := Write(&bytes.Buffer{}, &bad); err == nil {
			t.Fatalf("case %d: writer accepted an inconsistent float32 snapshot", i)
		}
	}
}

// TestFloat32UnknownToOldReader: a reader that does not know the
// dataset32 kind (simulated by retagging it as an unknown kind) must
// fail with a clean "no dataset section" error rather than misread the
// snapshot — the forward-compatibility property that let kind 6 ship
// without a version bump.
func TestFloat32UnknownToOldReader(t *testing.T) {
	data := encode(t, buildSnapshot32(t, 30, 3, 0.3, 23, object.Euclidean{}, false))
	nsec := int(binary.LittleEndian.Uint32(data[12:]))
	for i := 0; i < nsec; i++ {
		entry := headerSize + entrySize*i
		if binary.LittleEndian.Uint32(data[entry:]) != kindDataset32 {
			continue
		}
		binary.LittleEndian.PutUint32(data[entry:], 0x7f)
		retable(data)
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Fatal("snapshot without a recognised dataset section accepted")
		}
		return
	}
	t.Fatal("no dataset32 section found")
}

// TestRejectTwoDatasetSections: a snapshot carrying both dataset
// precisions must be refused at the writer (a file with both kinds is
// not constructible through the public API, and the reader additionally
// rejects a second dataset section of either kind).
func TestRejectTwoDatasetSections(t *testing.T) {
	merged := *buildSnapshot(t, 30, 2, 0.2, 29, false, false, false)
	merged.Coords32 = buildSnapshot32(t, 30, 2, 0.2, 29, object.Euclidean{}, false).Coords32
	if err := Write(&bytes.Buffer{}, &merged); err == nil {
		t.Fatal("writer accepted both dataset precisions")
	}
}
