package snap

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file crash-atomically: the content is
// produced into a same-directory temp file, fsynced, renamed over path,
// and the parent directory is fsynced so the rename itself survives a
// power cut. Readers therefore observe either the complete old file or
// the complete new one, never a mix or a half-written tail. On any
// failure the temp file is removed and path is untouched.
//
// The emit callback writes the content; an error from it aborts the
// save. This is the one save path every snapshot writer shares
// (discserve's save endpoint, Diversifier.SaveSnapshot,
// Updater.Checkpoint), so the durability sequence lives in exactly one
// place.
func WriteFileAtomic(path string, emit func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("snap: atomic save: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = emit(tmp); err != nil {
		return err
	}
	// Sync file content before the rename: a rename can become durable
	// before lazily-flushed data blocks, which would make the crash
	// window yield a named-but-empty file.
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("snap: atomic save: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("snap: atomic save: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snap: atomic save: %w", err)
	}
	if err = SyncDir(dir); err != nil {
		return fmt.Errorf("snap: atomic save: %w", err)
	}
	return nil
}

// SyncDir fsyncs a directory, making its entries (a just-renamed or
// just-removed file) durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
