package snap

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/discdiversity/disc/internal/vfs"
)

// WriteFileAtomic writes a file crash-atomically: the content is
// produced into a same-directory temp file, fsynced, renamed over path,
// and the parent directory is fsynced so the rename itself survives a
// power cut. Readers therefore observe either the complete old file or
// the complete new one, never a mix or a half-written tail. On any
// failure the temp file is removed and path is untouched.
//
// The emit callback writes the content; an error from it aborts the
// save. This is the one save path every snapshot writer shares
// (discserve's save endpoint, Diversifier.SaveSnapshot,
// Updater.Checkpoint), so the durability sequence lives in exactly one
// place.
func WriteFileAtomic(path string, emit func(io.Writer) error) error {
	return WriteFileAtomicFS(vfs.OS, path, emit)
}

// WriteFileAtomicFS is WriteFileAtomic through an explicit filesystem,
// so checkpoint writes can run under fault injection (scheduled ENOSPC
// on the temp file, a failing rename) in the chaos properties. A nil
// fsys means the real filesystem.
func WriteFileAtomicFS(fsys vfs.FS, path string, emit func(io.Writer) error) (err error) {
	if fsys == nil {
		fsys = vfs.OS
	}
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("snap: atomic save: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			fsys.Remove(tmp.Name())
		}
	}()
	if err = emit(tmp); err != nil {
		return err
	}
	// Sync file content before the rename: a rename can become durable
	// before lazily-flushed data blocks, which would make the crash
	// window yield a named-but-empty file.
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("snap: atomic save: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("snap: atomic save: %w", err)
	}
	if err = fsys.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snap: atomic save: %w", err)
	}
	if err = fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("snap: atomic save: %w", err)
	}
	return nil
}

// SyncDir fsyncs a directory, making its entries (a just-renamed or
// just-removed file) durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
