// Package rtree implements a bulk-loaded R-tree, the spatial index the
// paper's future work motivates as an alternative to the M-tree. The tree
// is packed bottom-up with the Sort-Tile-Recursive (STR) algorithm in the
// spirit of compact R-tree libraries such as tidwall/pair-rtree: objects
// are tiled into slabs dimension by dimension, consecutive runs become
// leaves, and parent levels are packed over the leaf order. The result is
// a static, pointer-free tree stored in two flat slices with ~100% node
// utilisation and uniform leaf depth.
//
// Coordinates are additionally stored in a contiguous row-major
// object.FlatDataset, and every distance in the query path goes through
// the dataset's compiled kernel: leaf scans evaluate the squared-distance
// surrogate against r² and only pay the square root on hits, and no
// query allocates when the caller supplies a reusable destination buffer
// (the Append* variants).
//
// Range queries prune a subtree when the minimum distance from the query
// point to the subtree's bounding box exceeds the radius. That minimum
// distance is computed by clamping the query point into the box, which is
// a valid lower bound for every coordinate-wise monotone metric — all the
// built-in metrics (Euclidean, Manhattan, Chebyshev and Hamming) qualify.
// Build enforces this by rejecting metrics that do not implement the
// object.CoordinatewiseMonotone marker.
//
// Like the M-tree and VP-tree, the R-tree supports the paper's pruning
// rule through per-subtree white counts, and counts one access per node
// visited. The *Into query variants take an external access counter plus
// a caller-owned clamp buffer and touch no shared state, so a fully built
// tree can serve range queries from many goroutines at once — the
// property the parallel coverage-graph builder in internal/core relies
// on.
package rtree

import (
	"fmt"
	"math"
	"sort"

	"github.com/discdiversity/disc/internal/bitset"
	"github.com/discdiversity/disc/internal/object"
)

// DefaultLeafCapacity is used when Build is given a non-positive
// capacity. It matches common R-tree fanouts and keeps leaf scans short.
const DefaultLeafCapacity = 32

// node is one R-tree node. Leaves reference a run of t.items; internal
// nodes reference a run of child nodes (children are always packed
// consecutively by construction, so a first/count pair suffices).
type node struct {
	min, max object.Point
	parent   int32
	first    int32 // leaf: offset into items; internal: first child index
	count    int32
	leaf     bool
	white    int32 // white descendants while tracking is enabled
}

// Tree is a static, bulk-loaded R-tree over a fixed point slice. After
// construction the only coordinate storage retained is the contiguous
// FlatDataset; the caller's []Point is released so the index does not
// double the coordinate footprint.
type Tree struct {
	// pts is non-nil only during Build (tiling and packing read it);
	// queries and accessors go through flat.
	pts     []object.Point
	flat    *object.FlatDataset
	metric  object.Metric
	dim     int
	leafCap int
	nodes   []node
	items   []int32 // object ids grouped per leaf, in STR order
	leafOf  []int32 // id -> index of the leaf holding it
	root    int32

	// clamp is the box-clamp scratch for the single-goroutine query API;
	// concurrent callers pass their own buffer to the *Into variants.
	clamp []float64

	accesses int64
	tracking bool
	white    bitset.Set
}

// Build packs an R-tree over pts with the given leaf capacity (<= 0
// selects DefaultLeafCapacity). Construction is deterministic: ties in
// the STR sort are broken by object id.
func Build(pts []object.Point, m object.Metric, leafCap int) (*Tree, error) {
	d, err := object.ValidatePoints(pts)
	if err != nil {
		return nil, fmt.Errorf("rtree: %w", err)
	}
	if m == nil {
		return nil, fmt.Errorf("rtree: nil metric")
	}
	if _, ok := m.(object.CoordinatewiseMonotone); !ok {
		return nil, fmt.Errorf("rtree: metric %q is not coordinate-wise monotone; box pruning would be unsound (implement object.CoordinatewiseMonotone to opt in)", m.Name())
	}
	if leafCap <= 0 {
		leafCap = DefaultLeafCapacity
	}
	if leafCap < 2 {
		leafCap = 2
	}
	flat, err := object.Flatten(pts, m)
	if err != nil {
		return nil, fmt.Errorf("rtree: %w", err)
	}
	t := &Tree{
		pts:     pts,
		flat:    flat,
		metric:  m,
		dim:     d,
		leafCap: leafCap,
		items:   make([]int32, len(pts)),
		leafOf:  make([]int32, len(pts)),
		clamp:   make([]float64, d),
	}
	for i := range t.items {
		t.items[i] = int32(i)
	}
	t.tile(t.items, 0)
	t.pack()
	t.pts = nil // flat storage is the single coordinate copy from here on
	return t, nil
}

// tile recursively orders ids with Sort-Tile-Recursive: sort on the
// current dimension, cut into slabs sized so that every slab holds a
// near-equal share of the eventual leaves, and recurse on the next
// dimension inside each slab. After tiling, consecutive leafCap-runs of
// ids are spatially coherent leaves.
func (t *Tree) tile(ids []int32, dim int) {
	if len(ids) <= t.leafCap {
		return
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if t.pts[a][dim] != t.pts[b][dim] {
			return t.pts[a][dim] < t.pts[b][dim]
		}
		return a < b
	})
	if dim == t.dim-1 {
		return
	}
	nLeaves := (len(ids) + t.leafCap - 1) / t.leafCap
	rem := float64(t.dim - dim)
	leavesPerSlab := int(math.Ceil(math.Pow(float64(nLeaves), (rem-1)/rem)))
	slabSize := leavesPerSlab * t.leafCap
	for lo := 0; lo < len(ids); lo += slabSize {
		hi := lo + slabSize
		if hi > len(ids) {
			hi = len(ids)
		}
		t.tile(ids[lo:hi], dim+1)
	}
}

// pack builds the node levels bottom-up over the tiled item order.
func (t *Tree) pack() {
	// Leaves.
	var level []int32
	for lo := 0; lo < len(t.items); lo += t.leafCap {
		hi := lo + t.leafCap
		if hi > len(t.items) {
			hi = len(t.items)
		}
		ni := int32(len(t.nodes))
		n := node{parent: -1, first: int32(lo), count: int32(hi - lo), leaf: true}
		n.min, n.max = t.mbrOfItems(t.items[lo:hi])
		t.nodes = append(t.nodes, n)
		for _, id := range t.items[lo:hi] {
			t.leafOf[id] = ni
		}
		level = append(level, ni)
	}
	// Internal levels: children of one parent are consecutive in t.nodes
	// by construction, so parents store a first/count pair.
	for len(level) > 1 {
		var next []int32
		for lo := 0; lo < len(level); lo += t.leafCap {
			hi := lo + t.leafCap
			if hi > len(level) {
				hi = len(level)
			}
			pi := int32(len(t.nodes))
			p := node{parent: -1, first: level[lo], count: int32(hi - lo)}
			p.min, p.max = t.mbrOfNodes(level[lo:hi])
			t.nodes = append(t.nodes, p)
			for _, ci := range level[lo:hi] {
				t.nodes[ci].parent = pi
			}
			next = append(next, pi)
		}
		level = next
	}
	t.root = level[0]
}

func (t *Tree) mbrOfItems(ids []int32) (object.Point, object.Point) {
	min := t.pts[ids[0]].Clone()
	max := t.pts[ids[0]].Clone()
	for _, id := range ids[1:] {
		for j, v := range t.pts[id] {
			if v < min[j] {
				min[j] = v
			}
			if v > max[j] {
				max[j] = v
			}
		}
	}
	return min, max
}

func (t *Tree) mbrOfNodes(nis []int32) (object.Point, object.Point) {
	min := t.nodes[nis[0]].min.Clone()
	max := t.nodes[nis[0]].max.Clone()
	for _, ni := range nis[1:] {
		n := &t.nodes[ni]
		for j := range min {
			if n.min[j] < min[j] {
				min[j] = n.min[j]
			}
			if n.max[j] > max[j] {
				max[j] = n.max[j]
			}
		}
	}
	return min, max
}

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return t.flat.Len() }

// Dim returns the dimensionality of the indexed points.
func (t *Tree) Dim() int { return t.dim }

// Metric returns the distance function.
func (t *Tree) Metric() object.Metric { return t.metric }

// Point returns the coordinates of object id (flat storage row).
func (t *Tree) Point(id int) object.Point { return t.flat.Point(id) }

// Flat exposes the contiguous coordinate storage and compiled kernel.
func (t *Tree) Flat() *object.FlatDataset { return t.flat }

// LeafCapacity returns the packing fanout.
func (t *Tree) LeafCapacity() int { return t.leafCap }

// Accesses returns the cumulative node-access counter.
func (t *Tree) Accesses() int64 { return t.accesses }

// ResetAccesses zeroes the counter.
func (t *Tree) ResetAccesses() { t.accesses = 0 }

// RangeQuery returns all objects within r of q.
func (t *Tree) RangeQuery(q object.Point, r float64) []object.Neighbor {
	return t.AppendRangeQuery(nil, q, r)
}

// RangeQueryAround returns the neighbours of object id within r,
// excluding id itself.
func (t *Tree) RangeQueryAround(id int, r float64) []object.Neighbor {
	return t.AppendRangeQueryAround(nil, id, r)
}

// AppendRangeQuery appends all objects within r of q to dst and returns
// the extended slice; with a capacious dst it performs no allocation.
// Like every non-Into query it uses the tree's internal scratch, so it
// must not run concurrently with other queries.
func (t *Tree) AppendRangeQuery(dst []object.Neighbor, q object.Point, r float64) []object.Neighbor {
	return t.appendSearch(dst, q, r, -1, false, &t.accesses, t.clamp)
}

// AppendRangeQueryAround is the buffer-reusing form of RangeQueryAround.
func (t *Tree) AppendRangeQueryAround(dst []object.Neighbor, id int, r float64) []object.Neighbor {
	return t.appendSearch(dst, t.flat.Row(id), r, id, false, &t.accesses, t.clamp)
}

// AppendRangeQueryPruned is the buffer-reusing form of RangeQueryPruned.
func (t *Tree) AppendRangeQueryPruned(dst []object.Neighbor, id int, r float64) []object.Neighbor {
	if !t.tracking {
		panic("rtree: pruned query requires EnableTracking")
	}
	return t.appendSearch(dst, t.flat.Row(id), r, id, true, &t.accesses, t.clamp)
}

// RangeQueryInto is RangeQuery charging node accesses to an external
// counter. It touches no shared tree state, so concurrent calls on a
// built tree are safe as long as each goroutine supplies its own counter.
func (t *Tree) RangeQueryInto(q object.Point, r float64, acc *int64) []object.Neighbor {
	return t.appendSearch(nil, q, r, -1, false, acc, make([]float64, t.dim))
}

// RangeQueryAroundInto is the concurrency-safe form of RangeQueryAround.
func (t *Tree) RangeQueryAroundInto(id int, r float64, acc *int64) []object.Neighbor {
	return t.appendSearch(nil, t.flat.Row(id), r, id, false, acc, make([]float64, t.dim))
}

// AppendRangeQueryAroundInto is the zero-allocation concurrent query: it
// appends to the caller's dst, charges the caller's counter and clamps
// into the caller's scratch (len >= Dim). Each goroutine must own all
// three. This is the query the sharded coverage-graph build issues.
func (t *Tree) AppendRangeQueryAroundInto(dst []object.Neighbor, id int, r float64, acc *int64, clamp []float64) []object.Neighbor {
	return t.appendSearch(dst, t.flat.Row(id), r, id, false, acc, clamp)
}

// RangeQueryPruned applies the paper's pruning rule: subtrees without
// white objects are skipped and only white objects are reported.
// Requires EnableTracking or ResetTracking.
func (t *Tree) RangeQueryPruned(id int, r float64) []object.Neighbor {
	return t.AppendRangeQueryPruned(nil, id, r)
}

// RangeQueryPrunedInto is RangeQueryPruned charging an external counter.
// It reads the shared white state, so it must not run concurrently with
// Cover or tracking resets; concurrent pruned queries against a static
// white set are safe (each call allocates its own clamp scratch — use
// AppendRangeQueryPrunedInto with a caller-owned buffer to avoid that).
func (t *Tree) RangeQueryPrunedInto(id int, r float64, acc *int64) []object.Neighbor {
	return t.AppendRangeQueryPrunedInto(nil, id, r, acc, make([]float64, t.dim))
}

// AppendRangeQueryPrunedInto is the buffer-reusing form of
// RangeQueryPrunedInto: the caller owns dst, the access counter and the
// clamp scratch (len >= Dim), so concurrent pruned queries against a
// static white set stay safe.
func (t *Tree) AppendRangeQueryPrunedInto(dst []object.Neighbor, id int, r float64, acc *int64, clamp []float64) []object.Neighbor {
	if !t.tracking {
		panic("rtree: pruned query requires EnableTracking")
	}
	return t.appendSearch(dst, t.flat.Row(id), r, id, true, acc, clamp)
}

// appendSearch runs the recursive box search. All distance work goes
// through the compiled kernel: boxes and leaf entries are filtered on the
// surrogate distance against the widened threshold, and the square root
// is evaluated only for reported hits.
func (t *Tree) appendSearch(dst []object.Neighbor, q []float64, r float64, exclude int, pruned bool, acc *int64, clamp []float64) []object.Neighbor {
	k := t.flat.Kernel()
	rawR := k.RawThreshold(r)
	return t.search(t.root, q, r, rawR, exclude, pruned, clamp, acc, dst)
}

func (t *Tree) search(ni int32, q []float64, r, rawR float64, exclude int, pruned bool, clamp []float64, acc *int64, dst []object.Neighbor) []object.Neighbor {
	n := &t.nodes[ni]
	*acc++
	k := t.flat.Kernel()
	if n.leaf {
		for _, id := range t.items[n.first : n.first+n.count] {
			if int(id) == exclude || (pruned && !t.white.Test(int(id))) {
				continue
			}
			// Fused threshold test (early exit at high dim); the raw
			// recomputation on the rare survivors is bit-identical.
			row := t.flat.Row(int(id))
			if k.Within(q, row, rawR) {
				if d := k.Finish(k.Raw(q, row)); d <= r {
					dst = append(dst, object.Neighbor{ID: int(id), Dist: d})
				}
			}
		}
		return dst
	}
	for ci := n.first; ci < n.first+n.count; ci++ {
		c := &t.nodes[ci]
		if pruned && c.white == 0 {
			continue
		}
		// Clamping q into the child's box lower-bounds the distance to
		// every point inside it; the surrogate comparison is conservative
		// (RawThreshold), so no true neighbour's subtree is skipped.
		for j, v := range q {
			switch {
			case v < c.min[j]:
				clamp[j] = c.min[j]
			case v > c.max[j]:
				clamp[j] = c.max[j]
			default:
				clamp[j] = v
			}
		}
		if k.Raw(q, clamp) <= rawR {
			dst = t.search(ci, q, r, rawR, exclude, pruned, clamp, acc, dst)
		}
	}
	return dst
}

// ScanOrder returns all ids in leaf (STR) order, a locality-preserving
// order analogous to the M-tree leaf chain. Each leaf visited counts as
// one access.
func (t *Tree) ScanOrder() []int {
	ids := make([]int, len(t.items))
	for i, id := range t.items {
		ids[i] = int(id)
	}
	t.accesses += int64((len(t.items) + t.leafCap - 1) / t.leafCap)
	return ids
}

// EnableTracking switches the pruning rule on with every object white.
func (t *Tree) EnableTracking() {
	t.white.Reset(t.flat.Len())
	t.white.Fill()
	t.tracking = true
	t.refreshWhiteCounts()
}

// ResetTracking re-initialises tracking with a custom white set.
func (t *Tree) ResetTracking(white []bool) {
	t.white.CopyBools(white)
	t.tracking = true
	t.refreshWhiteCounts()
}

// refreshWhiteCounts recomputes per-node white counters from the packed
// white set. Children precede parents in t.nodes, so one forward pass
// suffices.
func (t *Tree) refreshWhiteCounts() {
	for i := range t.nodes {
		n := &t.nodes[i]
		n.white = 0
		if n.leaf {
			for _, id := range t.items[n.first : n.first+n.count] {
				if t.white.Test(int(id)) {
					n.white++
				}
			}
		} else {
			for ci := n.first; ci < n.first+n.count; ci++ {
				n.white += t.nodes[ci].white
			}
		}
	}
}

// Tracking reports whether the pruning rule is active.
func (t *Tree) Tracking() bool { return t.tracking }

// IsWhite reports whether id is still uncovered (tracking only).
func (t *Tree) IsWhite(id int) bool { return t.tracking && t.white.Test(id) }

// Cover marks id as covered, updating subtree white counts.
func (t *Tree) Cover(id int) {
	if !t.tracking || !t.white.Test(id) {
		return
	}
	t.white.Clear(id)
	for ni := t.leafOf[id]; ni != -1; ni = t.nodes[ni].parent {
		t.nodes[ni].white--
	}
}

// Depth returns the number of levels (1 for a single-leaf tree). STR
// packing guarantees every leaf sits at the same depth.
func (t *Tree) Depth() int {
	depth := 1
	for ni := t.root; !t.nodes[ni].leaf; ni = t.nodes[ni].first {
		depth++
	}
	return depth
}

// NumNodes returns the total node count (for diagnostics).
func (t *Tree) NumNodes() int { return len(t.nodes) }

// Validate checks structural invariants: the item order is a permutation,
// every bounding box contains its descendants, parent/child links agree,
// leaves share one depth, and white counts (when tracking) match the
// white set. Intended for tests.
func (t *Tree) Validate() error {
	seen := make([]bool, t.flat.Len())
	for _, id := range t.items {
		if seen[id] {
			return fmt.Errorf("rtree: object %d appears twice", id)
		}
		seen[id] = true
	}
	for id, s := range seen {
		if !s {
			return fmt.Errorf("rtree: object %d missing", id)
		}
	}
	wantLeafDepth := t.Depth()
	var walk func(ni int32, depth int) error
	walk = func(ni int32, depth int) error {
		n := &t.nodes[ni]
		if n.leaf {
			if depth != wantLeafDepth {
				return fmt.Errorf("rtree: leaf %d at depth %d, want %d", ni, depth, wantLeafDepth)
			}
			white := int32(0)
			for _, id := range t.items[n.first : n.first+n.count] {
				if t.leafOf[id] != ni {
					return fmt.Errorf("rtree: leafOf[%d] broken", id)
				}
				for j, v := range t.flat.Row(int(id)) {
					if v < n.min[j] || v > n.max[j] {
						return fmt.Errorf("rtree: object %d escapes leaf %d box", id, ni)
					}
				}
				if t.tracking && t.white.Test(int(id)) {
					white++
				}
			}
			if t.tracking && white != n.white {
				return fmt.Errorf("rtree: leaf %d white count %d, want %d", ni, n.white, white)
			}
			return nil
		}
		white := int32(0)
		for ci := n.first; ci < n.first+n.count; ci++ {
			c := &t.nodes[ci]
			if c.parent != ni {
				return fmt.Errorf("rtree: node %d parent %d, want %d", ci, c.parent, ni)
			}
			for j := range c.min {
				if c.min[j] < n.min[j] || c.max[j] > n.max[j] {
					return fmt.Errorf("rtree: child %d escapes node %d box", ci, ni)
				}
			}
			white += c.white
			if err := walk(ci, depth+1); err != nil {
				return err
			}
		}
		if t.tracking && white != n.white {
			return fmt.Errorf("rtree: node %d white count %d, want %d", ni, n.white, white)
		}
		return nil
	}
	if t.nodes[t.root].parent != -1 {
		return fmt.Errorf("rtree: root has a parent")
	}
	return walk(t.root, 1)
}
