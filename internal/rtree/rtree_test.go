package rtree

import (
	"math/rand/v2"
	"sort"
	"sync"
	"testing"

	"github.com/discdiversity/disc/internal/object"
)

func randomPoints(n, d int, seed uint64) []object.Point {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	pts := make([]object.Point, n)
	for i := range pts {
		p := make(object.Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func build(t *testing.T, pts []object.Point, m object.Metric, leafCap int) *Tree {
	t.Helper()
	tr, err := Build(pts, m, leafCap)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildValidate(t *testing.T) {
	for _, n := range []int{1, 2, 7, 32, 33, 500} {
		for _, d := range []int{1, 2, 3, 5} {
			for _, cap := range []int{0, 2, 4, 16} {
				tr := build(t, randomPoints(n, d, uint64(n*d)+1), object.Euclidean{}, cap)
				if tr.Len() != n {
					t.Fatalf("n=%d d=%d cap=%d: Len=%d", n, d, cap, tr.Len())
				}
			}
		}
	}
}

func TestRangeQueryMatchesBruteForce(t *testing.T) {
	metrics := []object.Metric{object.Euclidean{}, object.Manhattan{}, object.Chebyshev{}}
	pts := randomPoints(400, 3, 11)
	for _, m := range metrics {
		tr := build(t, pts, m, 8)
		for _, id := range []int{0, 57, 399} {
			for _, r := range []float64{0.01, 0.1, 0.5, 1.5} {
				got := map[int]float64{}
				for _, nb := range tr.RangeQueryAround(id, r) {
					got[nb.ID] = nb.Dist
				}
				want := map[int]float64{}
				for j := range pts {
					if j != id {
						if d := m.Dist(pts[id], pts[j]); d <= r {
							want[j] = d
						}
					}
				}
				if len(got) != len(want) {
					t.Fatalf("%s id=%d r=%g: %d neighbours, want %d", m.Name(), id, r, len(got), len(want))
				}
				for j, d := range want {
					if got[j] != d {
						t.Fatalf("%s id=%d r=%g: neighbour %d dist %g want %g", m.Name(), id, r, j, got[j], d)
					}
				}
			}
		}
	}
}

func TestRangeQueryHamming(t *testing.T) {
	// Categorical points: the clamp mindist must stay a lower bound.
	rng := rand.New(rand.NewPCG(5, 6))
	pts := make([]object.Point, 300)
	for i := range pts {
		p := make(object.Point, 4)
		for j := range p {
			p[j] = float64(rng.IntN(5))
		}
		pts[i] = p
	}
	m := object.Hamming{}
	tr := build(t, pts, m, 8)
	for _, r := range []float64{0, 1, 2, 4} {
		for _, id := range []int{3, 150} {
			got := len(tr.RangeQueryAround(id, r))
			want := 0
			for j := range pts {
				if j != id && m.Dist(pts[id], pts[j]) <= r {
					want++
				}
			}
			if got != want {
				t.Fatalf("hamming id=%d r=%g: %d neighbours, want %d", id, r, got, want)
			}
		}
	}
}

func TestScanOrderPermutation(t *testing.T) {
	tr := build(t, randomPoints(257, 2, 3), object.Euclidean{}, 8)
	order := tr.ScanOrder()
	sorted := append([]int(nil), order...)
	sort.Ints(sorted)
	for i, id := range sorted {
		if id != i {
			t.Fatalf("scan order is not a permutation")
		}
	}
}

func TestPrunedQueries(t *testing.T) {
	pts := randomPoints(300, 2, 9)
	m := object.Euclidean{}
	tr := build(t, pts, m, 8)
	tr.EnableTracking()
	// Cover a random half and compare the pruned query with a filtered
	// brute force.
	rng := rand.New(rand.NewPCG(10, 11))
	for i := 0; i < 150; i++ {
		tr.Cover(rng.IntN(len(pts)))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{0, 120, 299} {
		got := map[int]bool{}
		for _, nb := range tr.RangeQueryPruned(id, 0.2) {
			got[nb.ID] = true
		}
		for j := range pts {
			want := j != id && tr.IsWhite(j) && m.Dist(pts[id], pts[j]) <= 0.2
			if got[j] != want {
				t.Fatalf("pruned id=%d: neighbour %d reported=%v want %v", id, j, got[j], want)
			}
		}
	}
	// Covering everything makes every pruned query empty without
	// touching any subtree below the root.
	for id := range pts {
		tr.Cover(id)
	}
	tr.ResetAccesses()
	if got := tr.RangeQueryPruned(7, 0.5); len(got) != 0 {
		t.Fatalf("fully covered: got %d neighbours", len(got))
	}
	if tr.Accesses() != 1 {
		t.Fatalf("fully covered query accessed %d nodes, want 1 (root only)", tr.Accesses())
	}
}

func TestResetTrackingCustomWhite(t *testing.T) {
	pts := randomPoints(100, 2, 13)
	tr := build(t, pts, object.Euclidean{}, 4)
	white := make([]bool, len(pts))
	for i := 0; i < len(pts); i += 2 {
		white[i] = true
	}
	tr.ResetTracking(white)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, nb := range tr.RangeQueryPruned(1, 0.4) {
		if nb.ID%2 != 0 {
			t.Fatalf("pruned query reported covered object %d", nb.ID)
		}
	}
}

func TestConcurrentIntoQueries(t *testing.T) {
	pts := randomPoints(500, 2, 21)
	m := object.Euclidean{}
	tr := build(t, pts, m, 16)
	want := make([][]object.Neighbor, len(pts))
	var seq int64
	for id := range pts {
		want[id] = tr.RangeQueryAroundInto(id, 0.1, &seq)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var acc int64
			for id := w; id < len(pts); id += 8 {
				got := tr.RangeQueryAroundInto(id, 0.1, &acc)
				if len(got) != len(want[id]) {
					t.Errorf("id=%d: %d neighbours, want %d", id, len(got), len(want[id]))
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestAccessCounting(t *testing.T) {
	tr := build(t, randomPoints(300, 2, 30), object.Euclidean{}, 8)
	tr.ResetAccesses()
	if tr.Accesses() != 0 {
		t.Fatal("reset failed")
	}
	tr.RangeQueryAround(0, 0.2)
	if tr.Accesses() == 0 {
		t.Fatal("query charged nothing")
	}
	// A tiny-radius query must visit far fewer nodes than the tree holds.
	tr.ResetAccesses()
	tr.RangeQueryAround(0, 1e-9)
	if got := tr.Accesses(); got >= int64(tr.NumNodes()) {
		t.Fatalf("point query accessed %d of %d nodes — no pruning", got, tr.NumNodes())
	}
}

// nonMonotoneMetric is a Metric that does not implement the
// CoordinatewiseMonotone marker; box pruning would be unsound for it.
// (It must not embed a built-in metric — that would promote the marker
// method.)
type nonMonotoneMetric struct{}

func (nonMonotoneMetric) Dist(a, b object.Point) float64 { return object.Euclidean{}.Dist(a, b) }
func (nonMonotoneMetric) Name() string                   { return "custom" }

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, object.Euclidean{}, 8); err == nil {
		t.Fatal("empty point set accepted")
	}
	if _, err := Build(randomPoints(10, 2, 1), nil, 8); err == nil {
		t.Fatal("nil metric accepted")
	}
	if _, err := Build([]object.Point{{1, 2}, {1}}, object.Euclidean{}, 8); err == nil {
		t.Fatal("ragged points accepted")
	}
}

func TestBuildRejectsNonMonotoneMetric(t *testing.T) {
	if _, err := Build(randomPoints(10, 2, 1), nonMonotoneMetric{}, 8); err == nil {
		t.Fatal("non-coordinate-wise-monotone metric accepted")
	}
}
