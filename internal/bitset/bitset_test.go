package bitset

import (
	"math/rand/v2"
	"testing"
)

func TestBasicOps(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 130, 1000} {
		s := New(n)
		if s.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, s.Len())
		}
		if !s.None() || s.Count() != 0 {
			t.Fatalf("n=%d: fresh set not empty", n)
		}
		for i := 0; i < n; i++ {
			if s.Test(i) {
				t.Fatalf("n=%d: bit %d set in fresh set", n, i)
			}
		}
		s.Fill()
		if s.Count() != n {
			t.Fatalf("n=%d: Fill count=%d", n, s.Count())
		}
		if n > 0 {
			s.Clear(0)
			s.Clear(n - 1)
			want := n - 2
			if n == 1 {
				want = 0
			}
			if s.Count() != want {
				t.Fatalf("n=%d: after clears count=%d want %d", n, s.Count(), want)
			}
		}
	}
}

// TestMirrorsBoolSlice drives a random operation sequence against a plain
// []bool reference.
func TestMirrorsBoolSlice(t *testing.T) {
	const n = 257
	rng := rand.New(rand.NewPCG(1, 2))
	ref := make([]bool, n)
	s := New(n)
	for step := 0; step < 5000; step++ {
		i := rng.IntN(n)
		switch rng.IntN(3) {
		case 0:
			ref[i] = true
			s.Set(i)
		case 1:
			ref[i] = false
			s.Clear(i)
		default:
			if s.Test(i) != ref[i] {
				t.Fatalf("step %d: Test(%d)=%v want %v", step, i, s.Test(i), ref[i])
			}
		}
	}
	count := 0
	for i, v := range ref {
		if v != s.Test(i) {
			t.Fatalf("final mismatch at %d", i)
		}
		if v {
			count++
		}
	}
	if s.Count() != count {
		t.Fatalf("Count=%d want %d", s.Count(), count)
	}
	s2 := FromBools(ref)
	for i := range ref {
		if s2.Test(i) != ref[i] {
			t.Fatalf("FromBools mismatch at %d", i)
		}
	}
	var s3 Set
	s3.CopyBools(ref)
	if s3.Count() != count || s3.Len() != n {
		t.Fatalf("CopyBools count=%d len=%d", s3.Count(), s3.Len())
	}
}

func TestResetReuses(t *testing.T) {
	s := New(512)
	s.Fill()
	words := &s.words[0]
	s.Reset(100)
	if &s.words[0] != words {
		t.Fatal("Reset reallocated although capacity sufficed")
	}
	if !s.None() {
		t.Fatal("Reset left bits set")
	}
	s.Reset(4096)
	if s.Count() != 0 || s.Len() != 4096 {
		t.Fatal("grow Reset broken")
	}
}
