// Package bitset provides a packed bitset used for coverage (white/grey)
// bookkeeping across the index structures and the algorithm engine. At
// 50k objects a []bool white set occupies 50 kB and thrashes L1 during
// the tight adjacency and leaf scans of the DisC heuristics; the packed
// form is 8x smaller and supports popcount-based white-count refresh.
package bitset

import "math/bits"

const wordBits = 64

// Set is a fixed-length packed bitset over [0, Len()). The zero value is
// an empty set of length 0; use Reset to (re)size it without allocating
// when capacity suffices.
type Set struct {
	words []uint64
	n     int
}

// New returns a zeroed set of length n.
func New(n int) *Set {
	s := &Set{}
	s.Reset(n)
	return s
}

// FromBools returns a set with bit i set iff b[i].
func FromBools(b []bool) *Set {
	s := New(len(b))
	for i, v := range b {
		if v {
			s.words[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	return s
}

// Len returns the length of the domain.
func (s *Set) Len() int { return s.n }

// Reset resizes the set to n and clears every bit, reusing the backing
// array when it is large enough.
func (s *Set) Reset(n int) {
	w := (n + wordBits - 1) / wordBits
	if cap(s.words) < w {
		s.words = make([]uint64, w)
	} else {
		s.words = s.words[:w]
		for i := range s.words {
			s.words[i] = 0
		}
	}
	s.n = n
}

// Grow extends the domain to n (preserving existing bits); new bits are
// clear. Shrinking is not supported and is a no-op.
func (s *Set) Grow(n int) {
	if n <= s.n {
		return
	}
	w := (n + wordBits - 1) / wordBits
	for len(s.words) < w {
		s.words = append(s.words, 0)
	}
	s.n = n
}

// Fill sets every bit in [0, Len()).
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if rem := uint(s.n) & 63; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] = (1 << rem) - 1
	}
}

// CopyBools overwrites the set with b, resizing to len(b).
func (s *Set) CopyBools(b []bool) {
	s.Reset(len(b))
	for i, v := range b {
		if v {
			s.words[i>>6] |= 1 << (uint(i) & 63)
		}
	}
}

// Set sets bit i.
func (s *Set) Set(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (s *Set) Clear(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	return &Set{words: append([]uint64(nil), s.words...), n: s.n}
}

// AppendSet appends the index of every set bit to dst in ascending
// order and returns the extended slice.
func (s *Set) AppendSet(dst []int) []int {
	for wi, w := range s.words {
		for w != 0 {
			dst = append(dst, wi*wordBits+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// Count returns the number of set bits (population count).
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// None reports whether no bit is set.
func (s *Set) None() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}
