package core

import "container/heap"

// lazyHeap is the priority structure the paper calls L': objects ordered
// by the size of their white neighbourhood. Keys change frequently as
// objects are covered, so the heap uses lazy invalidation: every key
// change pushes a fresh item and stale items are discarded at pop time by
// comparing against the caller's authoritative count array.
//
// Ordering is (key desc, id asc), which makes every algorithm
// deterministic and lets the flat and tree engines produce identical
// solutions.
type lazyHeap struct{ items []heapItem }

type heapItem struct {
	key int
	id  int
}

func (h *lazyHeap) Len() int { return len(h.items) }

func (h *lazyHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.key != b.key {
		return a.key > b.key
	}
	return a.id < b.id
}

func (h *lazyHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *lazyHeap) Push(x any) { h.items = append(h.items, x.(heapItem)) }

func (h *lazyHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

func newLazyHeap(capacity int) *lazyHeap {
	return &lazyHeap{items: make([]heapItem, 0, capacity)}
}

// push records a (possibly updated) key for id.
func (h *lazyHeap) push(id, key int) {
	heap.Push(h, heapItem{key: key, id: id})
}

// popValid returns the id with the largest current key for which
// valid(id, key) holds, discarding stale entries. ok is false when the
// heap is exhausted.
func (h *lazyHeap) popValid(valid func(id, key int) bool) (id int, ok bool) {
	for h.Len() > 0 {
		it := heap.Pop(h).(heapItem)
		if valid(it.id, it.key) {
			return it.id, true
		}
	}
	return 0, false
}
