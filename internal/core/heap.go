package core

// lazyHeap is the priority structure the paper calls L': objects ordered
// by the size of their white neighbourhood. Keys change frequently as
// objects are covered, so the heap uses lazy invalidation: every key
// change pushes a fresh item and stale items are discarded at pop time by
// comparing against the caller's authoritative count array.
//
// Ordering is (key desc, id asc), which makes every algorithm
// deterministic and lets the flat and tree engines produce identical
// solutions.
//
// The sift operations are implemented directly on the typed slice rather
// than through container/heap: the standard library's interface-based
// API boxes every pushed and popped item into an `any`, which costs one
// heap allocation per operation — at 50k objects that alone was ~430k
// allocations per Greedy-DisC run.
type lazyHeap struct{ items []heapItem }

type heapItem struct {
	key int
	id  int
}

// less orders (key desc, id asc).
func (a heapItem) less(b heapItem) bool {
	if a.key != b.key {
		return a.key > b.key
	}
	return a.id < b.id
}

func newLazyHeap(capacity int) *lazyHeap {
	return &lazyHeap{items: make([]heapItem, 0, capacity)}
}

// Len returns the number of (possibly stale) entries.
func (h *lazyHeap) Len() int { return len(h.items) }

// push records a (possibly updated) key for id. Allocation-free while
// the backing array has capacity.
func (h *lazyHeap) push(id, key int) {
	h.items = append(h.items, heapItem{key: key, id: id})
	h.up(len(h.items) - 1)
}

// pop removes and returns the maximum entry, stale or not. Callers
// using deferred invalidation (the component-decomposed greedy) compare
// the key against their authoritative count themselves and re-push
// corrected entries: with keys that only ever decrease, an entry popped
// with a stale key still dominates every live key below it, so
// re-pushing it at its current count before acting preserves the exact
// (key desc, id asc) selection order while skipping the per-decrement
// pushes popValid's protocol relies on.
func (h *lazyHeap) pop() (heapItem, bool) {
	if len(h.items) == 0 {
		return heapItem{}, false
	}
	it := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return it, true
}

// popValid returns the id with the largest current key for which
// valid(id, key) holds, discarding stale entries. ok is false when the
// heap is exhausted.
func (h *lazyHeap) popValid(valid func(id, key int) bool) (id int, ok bool) {
	for len(h.items) > 0 {
		it := h.items[0]
		last := len(h.items) - 1
		h.items[0] = h.items[last]
		h.items = h.items[:last]
		if last > 0 {
			h.down(0)
		}
		if valid(it.id, it.key) {
			return it.id, true
		}
	}
	return 0, false
}

func (h *lazyHeap) up(i int) {
	items := h.items
	it := items[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !it.less(items[parent]) {
			break
		}
		items[i] = items[parent]
		i = parent
	}
	items[i] = it
}

func (h *lazyHeap) down(i int) {
	items := h.items
	n := len(items)
	it := items[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if right := child + 1; right < n && items[right].less(items[child]) {
			child = right
		}
		if !items[child].less(it) {
			break
		}
		items[i] = items[child]
		i = child
	}
	items[i] = it
}
