package core

import (
	"fmt"

	"github.com/discdiversity/disc/internal/grid"
	"github.com/discdiversity/disc/internal/mtree"
	"github.com/discdiversity/disc/internal/object"
)

// TreeEngine adapts an M-tree to the Engine interfaces. It is the engine
// used by every experiment in the paper's evaluation: its access counter
// reports M-tree node accesses.
type TreeEngine struct {
	tree       *mtree.Tree
	counts     []int
	countsR    float64
	haveCounts bool
}

var (
	_ Engine         = (*TreeEngine)(nil)
	_ CoverageEngine = (*TreeEngine)(nil)
	_ BottomUpEngine = (*TreeEngine)(nil)
	_ CountingEngine = (*TreeEngine)(nil)
)

// NewTreeEngine wraps an already built tree.
func NewTreeEngine(t *mtree.Tree) *TreeEngine { return &TreeEngine{tree: t} }

// Tree exposes the underlying index (for fat-factor measurements etc.).
func (te *TreeEngine) Tree() *mtree.Tree { return te.tree }

// BuildTreeEngine constructs an M-tree over pts and wraps it. The node
// accesses spent building are left on the counter; callers measuring
// query cost only should ResetAccesses first.
func BuildTreeEngine(cfg mtree.Config, pts []object.Point) (*TreeEngine, error) {
	t, err := mtree.Build(cfg, pts)
	if err != nil {
		return nil, err
	}
	return &TreeEngine{tree: t}, nil
}

// BuildTreeEngineWithCounts constructs the tree while simultaneously
// computing |N_r(p)| for every object, the way Section 5.1 of the paper
// initialises Greedy-DisC ("computing the size of neighborhoods while
// building the tree reduces node accesses up to 45%"): each insert of p is
// followed by a range query Q(p, r) whose results increment both p's count
// and the counts of every retrieved neighbour.
func BuildTreeEngineWithCounts(cfg mtree.Config, pts []object.Point, r float64) (*TreeEngine, error) {
	if r < 0 {
		return nil, fmt.Errorf("core: negative radius %g", r)
	}
	t, err := mtree.New(cfg, pts)
	if err != nil {
		return nil, err
	}
	counts := make([]int, len(pts))
	for id := range pts {
		if err := t.Insert(id); err != nil {
			return nil, err
		}
		for _, nb := range t.RangeQueryAround(id, r) {
			counts[id]++
			counts[nb.ID]++
		}
	}
	return &TreeEngine{tree: t, counts: counts, countsR: r, haveCounts: true}, nil
}

// Size implements Engine.
func (te *TreeEngine) Size() int { return te.tree.Len() }

// Metric implements Engine.
func (te *TreeEngine) Metric() object.Metric { return te.tree.Metric() }

// Point implements Engine.
func (te *TreeEngine) Point(id int) object.Point { return te.tree.Point(id) }

// Neighbors implements Engine via a top-down range query.
func (te *TreeEngine) Neighbors(id int, r float64) []object.Neighbor {
	return te.tree.RangeQueryAround(id, r)
}

// NeighborsAppend implements Engine.
func (te *TreeEngine) NeighborsAppend(dst []object.Neighbor, id int, r float64) []object.Neighbor {
	return te.tree.AppendRangeQueryAround(dst, id, r)
}

// NeighborsOfPoint implements Engine.
func (te *TreeEngine) NeighborsOfPoint(q object.Point, r float64) []object.Neighbor {
	return te.tree.RangeQuery(q, r)
}

// ScanOrder implements Engine using the linked-leaf chain.
func (te *TreeEngine) ScanOrder() []int { return te.tree.ScanIDs() }

// Accesses implements Engine.
func (te *TreeEngine) Accesses() int64 { return te.tree.Accesses() }

// ResetAccesses implements Engine.
func (te *TreeEngine) ResetAccesses() { te.tree.ResetAccesses() }

// StartCoverage implements CoverageEngine.
func (te *TreeEngine) StartCoverage(white []bool) {
	if white == nil {
		te.tree.EnableTracking()
		return
	}
	te.tree.ResetTracking(white)
}

// Cover implements CoverageEngine.
func (te *TreeEngine) Cover(id int) { te.tree.Cover(id) }

// IsWhite implements CoverageEngine.
func (te *TreeEngine) IsWhite(id int) bool { return te.tree.IsWhite(id) }

// NeighborsWhite implements CoverageEngine via the pruned range query.
func (te *TreeEngine) NeighborsWhite(id int, r float64) []object.Neighbor {
	return te.tree.RangeQueryPruned(id, r)
}

// NeighborsWhiteAppend implements CoverageEngine.
func (te *TreeEngine) NeighborsWhiteAppend(dst []object.Neighbor, id int, r float64) []object.Neighbor {
	return te.tree.AppendRangeQueryPruned(dst, id, r)
}

// NeighborsBottomUp implements BottomUpEngine.
func (te *TreeEngine) NeighborsBottomUp(id int, r float64, stopAtGrey bool) []object.Neighbor {
	return te.tree.RangeQueryBottomUp(id, r, stopAtGrey, false)
}

// NeighborsBottomUpAppend implements BottomUpEngine.
func (te *TreeEngine) NeighborsBottomUpAppend(dst []object.Neighbor, id int, r float64, stopAtGrey bool) []object.Neighbor {
	return te.tree.AppendRangeQueryBottomUp(dst, id, r, stopAtGrey, false)
}

// InitialCounts implements CountingEngine.
func (te *TreeEngine) InitialCounts() ([]int, float64, bool) {
	if !te.haveCounts {
		return nil, 0, false
	}
	return te.counts, te.countsR, true
}

// Components implements CoverageEngine by breadth-first traversal over
// per-object range queries.
func (te *TreeEngine) Components(r float64) *grid.Components {
	return componentsViaQueries(te, r)
}
