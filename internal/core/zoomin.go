package core

import (
	"fmt"
	"math"

	"github.com/discdiversity/disc/internal/object"
)

// ZoomIn adapts an existing solution to a smaller radius rNew < prev.Radius
// (Section 3.1). The previous representatives are all kept (Lemma 5:
// S^r ⊆ S^r'); objects no longer covered at the smaller radius turn white
// and are covered incrementally. With greedy set, white objects are
// selected by descending white-neighbourhood size (Greedy-Zoom-In,
// Algorithm 2); otherwise in scan order (Zoom-In).
//
// Note on Algorithm 2: the paper's pseudo-code writes N_r^W; constructing
// an r'-DisC subset requires the new radius r', which is what this
// implementation uses (see DESIGN.md, "Deliberate deviations").
//
// The engine's zooming rule needs exact closest-black distances; if the
// previous solution was computed with pruning, the required post-processing
// pass (RecomputeDistBlack) is performed first and is *not* charged to the
// zoom cost, matching the paper's attribution of that pass to the
// construction of S^r.
func ZoomIn(e Engine, prev *Solution, rNew float64, greedy, pruned bool) (*Solution, error) {
	if err := checkZoomArgs(e, prev, rNew); err != nil {
		return nil, err
	}
	if rNew >= prev.Radius {
		return nil, fmt.Errorf("core: zoom-in radius %g not smaller than %g", rNew, prev.Radius)
	}
	if !prev.DistBlackExact {
		RecomputeDistBlack(e, prev)
	}

	n := e.Size()
	name := "Zoom-In"
	if greedy {
		name = "Greedy-Zoom-In"
	}
	s := newSolution(n, rNew, name)

	// Zooming rule: black objects stay black; grey objects stay grey as
	// long as their closest black neighbour is within rNew.
	white := make([]bool, n)
	for id := 0; id < n; id++ {
		switch {
		case prev.Colors[id] == Black:
			s.Colors[id] = Black
			s.DistBlack[id] = 0
		case prev.DistBlack[id] <= rNew:
			s.Colors[id] = Grey
			s.DistBlack[id] = prev.DistBlack[id]
		default:
			white[id] = true
		}
	}
	s.IDs = append(s.IDs, prev.IDs...)

	cov, hasCov := e.(CoverageEngine)
	usePrune := pruned && hasCov
	if usePrune {
		cov.StartCoverage(white)
	}
	start := e.Accesses()

	var sc queryScratch
	neighbors := func(dst []object.Neighbor, id int, r float64) []object.Neighbor {
		if usePrune {
			return cov.NeighborsWhiteAppend(dst, id, r)
		}
		return e.NeighborsAppend(dst, id, r)
	}
	// colorNeighbors queries into sc.ns and leaves the newly greyed
	// objects in sc.grey.
	colorNeighbors := func(pi int) {
		sc.ns = neighbors(sc.ns[:0], pi, rNew)
		sc.grey = sc.grey[:0]
		for _, nb := range sc.ns {
			if s.Colors[nb.ID] == White {
				s.Colors[nb.ID] = Grey
				sc.grey = append(sc.grey, nb)
				if usePrune {
					cov.Cover(nb.ID)
				}
			}
			if nb.Dist < s.DistBlack[nb.ID] {
				s.DistBlack[nb.ID] = nb.Dist
			}
		}
	}

	if !greedy {
		for _, pi := range e.ScanOrder() {
			if s.Colors[pi] != White {
				continue
			}
			s.selectBlack(pi)
			if usePrune {
				cov.Cover(pi)
			}
			colorNeighbors(pi)
		}
	} else {
		// White-neighbourhood sizes for the white objects only.
		nw := make([]int, n)
		h := newLazyHeap(64)
		for id := 0; id < n; id++ {
			if s.Colors[id] != White {
				continue
			}
			sc.upd = neighbors(sc.upd[:0], id, rNew)
			for _, nb := range sc.upd {
				if s.Colors[nb.ID] == White {
					nw[id]++
				}
			}
			h.push(id, nw[id])
		}
		for {
			pi, ok := h.popValid(func(id, key int) bool {
				return s.Colors[id] == White && key == nw[id]
			})
			if !ok {
				break
			}
			s.selectBlack(pi)
			if usePrune {
				cov.Cover(pi)
			}
			colorNeighbors(pi)
			for _, gj := range sc.grey {
				sc.upd = neighbors(sc.upd[:0], gj.ID, rNew)
				for _, nk := range sc.upd {
					if s.Colors[nk.ID] == White {
						nw[nk.ID]--
						h.push(nk.ID, nw[nk.ID])
					}
				}
			}
		}
	}

	s.DistBlackExact = !usePrune
	s.Accesses = e.Accesses() - start
	return s, nil
}

func checkZoomArgs(e Engine, prev *Solution, rNew float64) error {
	if prev == nil {
		return fmt.Errorf("core: zoom: nil previous solution")
	}
	if len(prev.Colors) != e.Size() {
		return fmt.Errorf("core: zoom: solution over %d objects, engine has %d", len(prev.Colors), e.Size())
	}
	if rNew <= 0 || math.IsNaN(rNew) || math.IsInf(rNew, 0) {
		return fmt.Errorf("core: zoom: invalid radius %g", rNew)
	}
	return nil
}
