package core

import (
	"math"
	"sort"

	"github.com/discdiversity/disc/internal/object"
)

// Color is the tri-state coloring the paper's algorithms use: white
// objects are uncovered, grey objects are covered by a selected (black)
// object, black objects form the diverse subset. Red appears only during
// zoom-out's first pass (previously black objects pending re-examination).
type Color uint8

// Object colors.
const (
	White Color = iota
	Grey
	Black
	Red
)

// String implements fmt.Stringer.
func (c Color) String() string {
	switch c {
	case White:
		return "white"
	case Grey:
		return "grey"
	case Black:
		return "black"
	case Red:
		return "red"
	default:
		return "color?"
	}
}

// Solution is the outcome of a DisC computation: the selected objects, the
// final coloring and the bookkeeping needed for incremental zooming.
type Solution struct {
	// Algorithm is the name of the heuristic that produced the solution.
	Algorithm string
	// Radius is the r the solution was computed for.
	Radius float64
	// IDs lists the selected (black) objects in selection order.
	IDs []int
	// Colors holds the final color of every object.
	Colors []Color
	// DistBlack[id] is the distance from id to its closest black
	// neighbour within Radius (0 for black objects, +Inf if unknown).
	// It powers the paper's zooming rule. See DistBlackExact.
	DistBlack []float64
	// DistBlackExact reports whether DistBlack holds exact values.
	// Pruned runs skip already-grey objects during range queries, so
	// their DistBlack entries are upper bounds until
	// RecomputeDistBlack is called (the paper's post-processing step).
	DistBlackExact bool
	// Accesses is the engine cost consumed computing this solution
	// (M-tree node accesses for the tree engine).
	Accesses int64
}

func newSolution(n int, r float64, algorithm string) *Solution {
	s := &Solution{
		Algorithm: algorithm,
		Radius:    r,
		Colors:    make([]Color, n),
		DistBlack: make([]float64, n),
	}
	for i := range s.DistBlack {
		s.DistBlack[i] = math.Inf(1)
	}
	return s
}

// selectBlack marks pi as a member of the diverse subset.
func (s *Solution) selectBlack(pi int) {
	s.Colors[pi] = Black
	s.DistBlack[pi] = 0
	s.IDs = append(s.IDs, pi)
}

// Size returns the number of selected objects.
func (s *Solution) Size() int { return len(s.IDs) }

// Contains reports whether object id was selected.
func (s *Solution) Contains(id int) bool {
	return id >= 0 && id < len(s.Colors) && s.Colors[id] == Black
}

// SortedIDs returns the selected objects in ascending id order (a copy).
func (s *Solution) SortedIDs() []int {
	ids := append([]int(nil), s.IDs...)
	sort.Ints(ids)
	return ids
}

// Clone returns a deep copy of the solution.
func (s *Solution) Clone() *Solution {
	c := *s
	c.IDs = append([]int(nil), s.IDs...)
	c.Colors = append([]Color(nil), s.Colors...)
	c.DistBlack = append([]float64(nil), s.DistBlack...)
	return &c
}

// RecomputeDistBlack restores exact closest-black-neighbour distances by
// running one unpruned range query per selected object. This is the
// post-processing step Section 5.2 requires after pruned runs, before the
// zooming rule can be applied. The engine accesses it performs are left
// on the engine's counter; they are not added to s.Accesses.
func RecomputeDistBlack(e Engine, s *Solution) {
	for i := range s.DistBlack {
		s.DistBlack[i] = math.Inf(1)
	}
	var buf []object.Neighbor
	for _, b := range s.IDs {
		s.DistBlack[b] = 0
		buf = e.NeighborsAppend(buf[:0], b, s.Radius)
		for _, nb := range buf {
			if nb.Dist < s.DistBlack[nb.ID] {
				s.DistBlack[nb.ID] = nb.Dist
			}
		}
	}
	s.DistBlackExact = true
}

// Jaccard returns the Jaccard distance between the selected sets of two
// solutions: 1 - |A∩B| / |A∪B|. Two empty sets have distance 0.
func Jaccard(a, b *Solution) float64 {
	return JaccardIDs(a.IDs, b.IDs)
}

// JaccardIDs is Jaccard over raw id slices.
func JaccardIDs(a, b []int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	set := make(map[int]struct{}, len(a))
	for _, x := range a {
		set[x] = struct{}{}
	}
	inter := 0
	union := len(set)
	seen := make(map[int]struct{}, len(b))
	for _, x := range b {
		if _, dup := seen[x]; dup {
			continue
		}
		seen[x] = struct{}{}
		if _, ok := set[x]; ok {
			inter++
		} else {
			union++
		}
	}
	return 1 - float64(inter)/float64(union)
}
