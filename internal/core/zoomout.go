package core

import (
	"fmt"
	"sort"

	"github.com/discdiversity/disc/internal/object"
)

// ZoomOutVariant selects the first-pass ordering of Zoom-Out
// (Section 3.2 / Algorithm 3).
type ZoomOutVariant int

const (
	// ZoomOutPlain examines the previous representatives in scan order
	// (the non-greedy Zoom-Out).
	ZoomOutPlain ZoomOutVariant = iota
	// ZoomOutGreedyA selects the red object with the *largest* number of
	// red neighbours, aiming to discard many old representatives per
	// selection (variation (a), the paper's Algorithm 3).
	ZoomOutGreedyA
	// ZoomOutGreedyB selects the red object with the *smallest* number
	// of red neighbours, aiming to keep S^r ∩ S^r' large (variation (b)).
	ZoomOutGreedyB
	// ZoomOutGreedyC selects the red object with the largest number of
	// white neighbours (variation (c)); its keys are recomputed with
	// fresh range queries every round, which is why the paper found its
	// cost can exceed computing a solution from scratch.
	ZoomOutGreedyC
)

// String implements fmt.Stringer.
func (v ZoomOutVariant) String() string {
	switch v {
	case ZoomOutPlain:
		return "Zoom-Out"
	case ZoomOutGreedyA:
		return "Greedy-Zoom-Out (a)"
	case ZoomOutGreedyB:
		return "Greedy-Zoom-Out (b)"
	case ZoomOutGreedyC:
		return "Greedy-Zoom-Out (c)"
	default:
		return fmt.Sprintf("Zoom-Out(%d)", int(v))
	}
}

// ZoomOut adapts an existing solution to a larger radius
// rNew > prev.Radius. Pass one re-examines the previous representatives
// (now "red"): each selected red covers — and thereby removes — the red
// neighbours that are no longer dissimilar at the larger radius. Pass two
// covers any objects left uncovered. Greedy variants select whites by
// descending white-neighbourhood size in the second pass; the plain
// variant takes them in scan order.
func ZoomOut(e Engine, prev *Solution, rNew float64, variant ZoomOutVariant) (*Solution, error) {
	if err := checkZoomArgs(e, prev, rNew); err != nil {
		return nil, err
	}
	if rNew <= prev.Radius {
		return nil, fmt.Errorf("core: zoom-out radius %g not larger than %g", rNew, prev.Radius)
	}
	if len(prev.IDs) == 0 {
		return nil, fmt.Errorf("core: zoom-out: previous solution is empty")
	}

	n := e.Size()
	s := newSolution(n, rNew, variant.String())
	for _, id := range prev.IDs {
		s.Colors[id] = Red
	}
	start := e.Accesses()

	colorNeighbors := func(ns []object.Neighbor) {
		for _, nb := range ns {
			if c := s.Colors[nb.ID]; c == White || c == Red {
				s.Colors[nb.ID] = Grey
			}
			if nb.Dist < s.DistBlack[nb.ID] {
				s.DistBlack[nb.ID] = nb.Dist
			}
		}
	}

	var sc queryScratch
	switch variant {
	case ZoomOutPlain:
		zoomOutPassOnePlain(e, s, prev, rNew, colorNeighbors, &sc)
	case ZoomOutGreedyC:
		zoomOutPassOneWhiteKey(e, s, prev, rNew, colorNeighbors, &sc)
	default:
		zoomOutPassOneRedKey(e, s, prev, rNew, variant == ZoomOutGreedyA, colorNeighbors)
	}

	// Pass two: cover the objects no representative reaches at rNew.
	if variant == ZoomOutPlain {
		for _, pi := range e.ScanOrder() {
			if s.Colors[pi] != White {
				continue
			}
			s.selectBlack(pi)
			sc.ns = e.NeighborsAppend(sc.ns[:0], pi, rNew)
			colorNeighbors(sc.ns)
		}
	} else {
		zoomOutPassTwoGreedy(e, s, rNew, colorNeighbors, &sc)
	}

	s.DistBlackExact = true
	s.Accesses = e.Accesses() - start
	return s, nil
}

// zoomOutPassOnePlain processes the old representatives in scan order.
func zoomOutPassOnePlain(e Engine, s *Solution, prev *Solution, rNew float64, colorNeighbors func([]object.Neighbor), sc *queryScratch) {
	rank := scanRank(e)
	reds := append([]int(nil), prev.IDs...)
	sort.Slice(reds, func(i, j int) bool { return rank[reds[i]] < rank[reds[j]] })
	for _, pi := range reds {
		if s.Colors[pi] != Red {
			continue // covered by an earlier selection
		}
		s.selectBlack(pi)
		sc.ns = e.NeighborsAppend(sc.ns[:0], pi, rNew)
		colorNeighbors(sc.ns)
	}
}

// zoomOutPassOneRedKey implements variations (a) and (b): reds are keyed
// by their current number of red neighbours. One range query per red
// establishes both the keys and the cached neighbourhoods reused when the
// red is selected; counts are maintained through the red-red adjacency.
func zoomOutPassOneRedKey(e Engine, s *Solution, prev *Solution, rNew float64, largest bool, colorNeighbors func([]object.Neighbor)) {
	reds := append([]int(nil), prev.IDs...)
	sort.Ints(reds)
	cached := make(map[int][]object.Neighbor, len(reds))
	redAdj := make(map[int][]int, len(reds))
	redCount := make(map[int]int, len(reds))
	for _, pi := range reds {
		ns := e.Neighbors(pi, rNew)
		cached[pi] = ns
		for _, nb := range ns {
			if s.Colors[nb.ID] == Red {
				redAdj[pi] = append(redAdj[pi], nb.ID)
			}
		}
		redCount[pi] = len(redAdj[pi])
	}
	remaining := len(reds)
	for remaining > 0 {
		best, bestKey := -1, 0
		for _, pi := range reds {
			if s.Colors[pi] != Red {
				continue
			}
			k := redCount[pi]
			if best == -1 || (largest && k > bestKey) || (!largest && k < bestKey) {
				best, bestKey = pi, k
			}
		}
		if best == -1 {
			break
		}
		// Selecting best removes it and every red it covers from the
		// red set; their red neighbours' keys drop accordingly.
		leaveRed := func(x int) {
			remaining--
			for _, y := range redAdj[x] {
				if s.Colors[y] == Red {
					redCount[y]--
				}
			}
		}
		s.selectBlack(best)
		leaveRed(best)
		for _, nb := range cached[best] {
			if s.Colors[nb.ID] == Red {
				s.Colors[nb.ID] = Grey
				leaveRed(nb.ID)
			}
		}
		colorNeighbors(cached[best])
	}
}

// zoomOutPassOneWhiteKey implements variation (c): each round recomputes,
// with fresh range queries, how many still-white objects every remaining
// red would cover, then selects the maximum. Candidate neighbourhoods
// land in sc.ns; the running best is copied into sc.grey so the two
// buffers never alias.
func zoomOutPassOneWhiteKey(e Engine, s *Solution, prev *Solution, rNew float64, colorNeighbors func([]object.Neighbor), sc *queryScratch) {
	reds := append([]int(nil), prev.IDs...)
	sort.Ints(reds)
	remaining := len(reds)
	for remaining > 0 {
		best := -1
		bestKey := -1
		for _, pi := range reds {
			if s.Colors[pi] != Red {
				continue
			}
			sc.ns = e.NeighborsAppend(sc.ns[:0], pi, rNew)
			k := 0
			for _, nb := range sc.ns {
				if s.Colors[nb.ID] == White {
					k++
				}
			}
			if k > bestKey {
				best, bestKey = pi, k
				sc.grey = append(sc.grey[:0], sc.ns...)
			}
		}
		if best == -1 {
			break
		}
		s.selectBlack(best)
		remaining--
		for _, nb := range sc.grey {
			if s.Colors[nb.ID] == Red {
				remaining--
			}
		}
		colorNeighbors(sc.grey)
	}
}

// zoomOutPassTwoGreedy covers the remaining whites by descending
// white-neighbourhood size (Algorithm 3, lines 12-19).
func zoomOutPassTwoGreedy(e Engine, s *Solution, rNew float64, colorNeighbors func([]object.Neighbor), sc *queryScratch) {
	n := e.Size()
	nw := make([]int, n)
	h := newLazyHeap(64)
	any := false
	for id := 0; id < n; id++ {
		if s.Colors[id] != White {
			continue
		}
		any = true
		sc.upd = e.NeighborsAppend(sc.upd[:0], id, rNew)
		for _, nb := range sc.upd {
			if s.Colors[nb.ID] == White {
				nw[id]++
			}
		}
		h.push(id, nw[id])
	}
	if !any {
		return
	}
	for {
		pi, ok := h.popValid(func(id, key int) bool {
			return s.Colors[id] == White && key == nw[id]
		})
		if !ok {
			return
		}
		s.selectBlack(pi)
		sc.ns = e.NeighborsAppend(sc.ns[:0], pi, rNew)
		sc.grey = sc.grey[:0]
		for _, nb := range sc.ns {
			if s.Colors[nb.ID] == White {
				sc.grey = append(sc.grey, nb)
			}
		}
		colorNeighbors(sc.ns)
		for _, gj := range sc.grey {
			sc.upd = e.NeighborsAppend(sc.upd[:0], gj.ID, rNew)
			for _, nk := range sc.upd {
				if s.Colors[nk.ID] == White {
					nw[nk.ID]--
					h.push(nk.ID, nw[nk.ID])
				}
			}
		}
	}
}

// scanRank maps every object id to its position in the engine's scan
// order without charging accesses twice for algorithms that need ranks
// only once.
func scanRank(e Engine) []int {
	rank := make([]int, e.Size())
	for pos, id := range e.ScanOrder() {
		rank[id] = pos
	}
	return rank
}
