package core

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/discdiversity/disc/internal/bitset"
	"github.com/discdiversity/disc/internal/grid"
	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/telemetry"
)

// LiveDisC maintains an r-DisC diverse selection under inserts and
// deletes by repairing only the connected components a mutation touches.
// It is the incremental counterpart of GreedyDisCComponents on the same
// substrate — mutable grid occupancy (grid.MutGrid), copy-on-write CSR
// adjacency (grid.DynAdj), component labels — and reproduces the batch
// algorithm exactly: after Flush, the selection is what
// GreedyDisCComponents would compute over the live points from scratch
// (sequence-equal through the monotone id remap of a compaction).
//
// The unit of invalidation is the connected component, following the
// decomposition argument of the parallel selection: a dominating set of
// a disconnected graph is the union of per-component dominating sets,
// so a mutation can only change the selection of the components it
// touches. An insert joins (or merges) the components of its in-range
// neighbours; a delete can split its component, which a bounded BFS
// over the remaining members re-partitions. Touched components are
// marked dirty and their members' selection discarded; Flush re-runs
// the pruned component greedy over exactly the dirty components.
//
// Reads are bounded-stale: the last converged selection is published as
// an immutable snapshot behind an atomic pointer, so Selection,
// IsRepresentative and Size are safe for any number of concurrent
// readers while mutations and repairs run — they simply keep answering
// from the pre-mutation state until the next Flush publishes. Mutations
// themselves (Insert, Delete, Flush) are not concurrency-safe; the
// public disc.Updater adds that lock.
//
// Component labels are the component's minimum live member id (-1 for
// dead slots) — the id-stable form of the canonical
// ascending-minimum-member numbering, which is what keeps repair order
// and heap tie-breaks identical to the batch run's.
type LiveDisC struct {
	r   float64
	dyn *object.DynDataset
	mg  *grid.MutGrid
	adj *grid.DynAdj

	label   []int32
	comps   map[int32][]int32 // label -> live members, ascending
	compSel map[int32][]int32 // label -> selected ids, greedy order
	dirty   map[int32]struct{}

	sel      bitset.Set // converging selection (cleared for dirty comps)
	selCount int

	published atomic.Pointer[liveSnap]
	accesses  int64

	// Repair and traversal scratch, grown lazily to the slot domain.
	bq    bucketQueue
	white bitset.Set
	pend  bitset.Set
	nw    []int32
	grey  []int32
	stack []int32
	qbuf  []object.Neighbor
	gs    *grid.Scratch
}

// liveSnap is one immutable published selection: the bitset answers
// membership, the id list is materialised at most once on demand.
type liveSnap struct {
	bits  *bitset.Set
	count int
	once  sync.Once
	ids   []int
}

// NewLiveDisC returns an empty maintainer for radius r under m. The
// metric must be grid-servable (Lp family); the dimensionality is fixed
// by the first insert.
func NewLiveDisC(m object.Metric, r float64) (*LiveDisC, error) {
	dyn, err := object.NewDynDataset(m)
	if err != nil {
		return nil, err
	}
	mg, err := grid.NewMutGrid(dyn, r)
	if err != nil {
		return nil, err
	}
	l := &LiveDisC{
		r:       r,
		dyn:     dyn,
		mg:      mg,
		adj:     grid.NewDynAdj(nil),
		comps:   make(map[int32][]int32),
		compSel: make(map[int32][]int32),
		dirty:   make(map[int32]struct{}),
	}
	l.publish()
	return l, nil
}

// SeedLiveDisC builds a maintainer over an existing dataset by running
// the batch pipeline once — grid build, ε-join, component labeling,
// component-decomposed greedy — and adopting its artifacts as the live
// state, so the first published selection is the batch selection and
// every later Flush stays equivalent to it. workers shards the ε-join
// (<= 0 selects one).
func SeedLiveDisC(flat *object.FlatDataset, r float64, workers int) (*LiveDisC, error) {
	g, err := grid.Build(flat, r)
	if err != nil {
		return nil, err
	}
	csr, joinAcc, err := grid.Join(g, r, workers)
	if err != nil {
		return nil, err
	}
	return adoptBatch(flat, csr, r, joinAcc)
}

// RestoreLiveDisC builds a maintainer from a dataset plus an
// already-joined coverage-graph CSR — the warm-start path snapshot
// recovery uses, skipping the grid build and ε-join entirely. The CSR
// is structurally validated and the component decomposition recomputed
// from it (never trusted from the caller), so a tampered or stale
// adjacency fails here rather than corrupting repairs later. The
// selection is re-derived by the batch greedy, exactly as SeedLiveDisC
// would.
func RestoreLiveDisC(flat *object.FlatDataset, csr *grid.CSR, r float64) (*LiveDisC, error) {
	n := flat.Len()
	if len(csr.Offsets) != n+1 || csr.Offsets[0] != 0 {
		return nil, fmt.Errorf("core: live: adjacency offsets sized for %d points, dataset has %d", len(csr.Offsets)-1, n)
	}
	for i := 0; i < n; i++ {
		if csr.Offsets[i+1] < csr.Offsets[i] {
			return nil, fmt.Errorf("core: live: adjacency offsets not monotone at %d", i)
		}
	}
	if int(csr.Offsets[n]) != len(csr.Nbrs) {
		return nil, fmt.Errorf("core: live: adjacency offsets do not span the %d packed neighbours", len(csr.Nbrs))
	}
	for _, nb := range csr.Nbrs {
		if nb.ID < 0 || nb.ID >= n {
			return nil, fmt.Errorf("core: live: adjacency names id %d outside the dataset", nb.ID)
		}
		if !(nb.Dist >= 0) || nb.Dist > r {
			return nil, fmt.Errorf("core: live: adjacency distance %g outside [0, r]", nb.Dist)
		}
	}
	return adoptBatch(flat, csr, r, 0)
}

// adoptBatch runs the batch component labeling + greedy over (flat,
// csr) and adopts the artifacts as live state — the shared tail of
// SeedLiveDisC and RestoreLiveDisC.
func adoptBatch(flat *object.FlatDataset, csr *grid.CSR, r float64, joinAcc int64) (*LiveDisC, error) {
	n := flat.Len()
	comp := grid.ComponentsOfCSR(csr, n, r)
	sol := newSolution(n, r, greedyName(GreedyOptions{}, true))
	ids, acc := runComponentRange(csr, comp, 0, comp.Count, r, sol, newComponentScratch(n), nil)

	dyn := object.DynFromFlat(flat)
	mg, err := grid.NewMutGrid(dyn, r)
	if err != nil {
		return nil, err
	}
	l := &LiveDisC{
		r:        r,
		dyn:      dyn,
		mg:       mg,
		adj:      grid.NewDynAdj(csr),
		label:    make([]int32, n),
		comps:    make(map[int32][]int32, comp.Count),
		compSel:  make(map[int32][]int32, comp.Count),
		dirty:    make(map[int32]struct{}),
		accesses: joinAcc + acc,
		gs:       grid.NewScratch(flat.Dim()),
	}
	for c := 0; c < comp.Count; c++ {
		members := comp.MemberIDs(c)
		lab := members[0]
		l.comps[lab] = append([]int32(nil), members...)
		for _, m := range members {
			l.label[m] = lab
		}
	}
	l.sel.Reset(n)
	for _, id := range ids {
		lab := l.label[id]
		l.compSel[lab] = append(l.compSel[lab], int32(id))
		l.sel.Set(id)
		l.selCount++
	}
	l.publish()
	return l, nil
}

// Radius returns the maintained diversification radius.
func (l *LiveDisC) Radius() float64 { return l.r }

// Len returns the number of live objects.
func (l *LiveDisC) Len() int { return l.dyn.Live() }

// Dim returns the dimensionality (0 before the first insert).
func (l *LiveDisC) Dim() int { return l.dyn.Dim() }

// Slots returns the id domain bound (dead ids included).
func (l *LiveDisC) Slots() int { return l.dyn.Slots() }

// Alive reports whether id names a live object.
func (l *LiveDisC) Alive(id int) bool { return l.dyn.Alive(id) }

// Point returns the coordinates of object id (tombstones included).
func (l *LiveDisC) Point(id int) object.Point { return l.dyn.Point(id).Clone() }

// Pending returns the number of components awaiting repair.
func (l *LiveDisC) Pending() int { return len(l.dirty) }

// Accesses returns the cumulative objects-examined count: candidates
// evaluated by neighbourhood queries plus adjacency entries walked by
// repairs, mirroring the batch accounting.
func (l *LiveDisC) Accesses() int64 { return l.accesses }

// Insert adds p, splices it into the grid and the adjacency, merges the
// components of its in-range neighbours and marks the merged component
// dirty. The published selection is unchanged until the next Flush.
func (l *LiveDisC) Insert(p object.Point) (int, error) {
	defer telemetry.Since(metLiveInsert, time.Now())
	id, err := l.dyn.Append(p)
	if err != nil {
		return 0, err
	}
	if l.gs == nil {
		l.gs = grid.NewScratch(l.dyn.Dim())
	}
	l.qbuf = l.mg.AppendRange(l.qbuf[:0], p, l.r, id, &l.accesses, l.gs)
	l.adj.AddVertex(id, l.qbuf)
	l.mg.Insert(id)
	for len(l.label) < l.dyn.Slots() {
		l.label = append(l.label, -1)
	}
	l.sel.Grow(l.dyn.Slots())

	// Union the neighbours' components (usually one) with the new id
	// under the minimum label; every absorbed component's selection is
	// discarded and the union marked dirty.
	newLab := int32(id)
	merged := l.stack[:0] // distinct labels, reused as scratch
	for _, nb := range l.qbuf {
		lab := l.label[nb.ID]
		if lab < newLab {
			newLab = lab
		}
		if !slices.Contains(merged, lab) {
			merged = append(merged, lab)
		}
	}
	members := []int32{int32(id)}
	for _, lab := range merged {
		l.invalidate(lab)
		members = append(members, l.comps[lab]...)
		delete(l.comps, lab)
		delete(l.dirty, lab)
	}
	l.stack = merged[:0]
	slices.Sort(members)
	for _, m := range members {
		l.label[m] = newLab
	}
	l.comps[newLab] = members
	l.dirty[newLab] = struct{}{}
	return id, nil
}

// Delete retracts a live object, unsplices it everywhere, re-partitions
// its component (a bounded BFS over the remaining members decides
// whether the removal split it) and marks every resulting part dirty.
// The published selection is unchanged until the next Flush.
func (l *LiveDisC) Delete(id int) error {
	defer telemetry.Since(metLiveDelete, time.Now())
	if !l.dyn.Alive(id) {
		return fmt.Errorf("core: live: id %d is not a live object", id)
	}
	lab := l.label[id]
	l.invalidate(lab)
	deg := l.adj.Degree(id)
	// Capture the surviving neighbours before the edges go: they bound
	// the split search below (every severed part must contain one).
	l.grey = l.grey[:0]
	for _, nb := range l.adj.Row(id) {
		l.grey = append(l.grey, int32(nb.ID))
	}
	l.adj.RemoveVertex(id)
	// Tombstone before unbucketing: a shrink-triggered re-bucket inside
	// mg.Remove walks live ids, and the dying id must not be among them
	// (it would be re-admitted and stay bucketed forever, feeding dead
	// neighbours to later inserts).
	if err := l.dyn.Delete(id); err != nil {
		return err
	}
	l.mg.Remove(id)
	l.label[id] = -1

	old := l.comps[lab]
	delete(l.comps, lab)
	delete(l.dirty, lab)
	members := make([]int32, 0, len(old)-1)
	for _, m := range old {
		if m != int32(id) {
			members = append(members, m)
		}
	}
	if len(members) == 0 {
		return nil
	}
	// Removing a vertex of degree ≤ 1 cannot disconnect the remainder
	// (any path through a vertex needs two incident edges), so the
	// component survives as-is — possibly under a new minimum label.
	if deg <= 1 {
		l.adopt(members)
		return nil
	}
	// General case: re-partition the remaining members by BFS. Seeding
	// from members in ascending order makes each part's first-discovered
	// vertex its minimum, and every member is visited exactly once, so
	// the pend bitset ends cleared for reuse.
	//
	// The walk is bounded by the removed vertex's neighbourhood: every
	// severed part contains one of its surviving neighbours (a path cut
	// by the removal entered the vertex through one), and any earlier
	// part ran its walk to completion — so the moment the current tree
	// has discovered the last undiscovered neighbour, every member still
	// pending is provably connected to this tree and can be absorbed
	// without walking its edges. Dense components (where deletes are
	// most frequent and walks most expensive) find their handful of
	// neighbours within a few hops.
	l.pend.Grow(l.dyn.Slots())
	l.white.Grow(l.dyn.Slots())
	for _, m := range members {
		l.pend.Set(int(m))
	}
	remaining := 0
	for _, nb := range l.grey {
		l.white.Set(int(nb))
		remaining++
	}
	for _, m := range members {
		if !l.pend.Test(int(m)) {
			continue
		}
		l.pend.Clear(int(m))
		part := []int32{m}
		if l.white.Test(int(m)) {
			l.white.Clear(int(m))
			remaining--
		}
		l.stack = append(l.stack[:0], m)
		for remaining > 0 && len(l.stack) > 0 {
			u := l.stack[len(l.stack)-1]
			l.stack = l.stack[:len(l.stack)-1]
			for _, nb := range l.adj.Row(int(u)) {
				if l.pend.Test(nb.ID) {
					l.pend.Clear(nb.ID)
					part = append(part, int32(nb.ID))
					l.stack = append(l.stack, int32(nb.ID))
					if l.white.Test(nb.ID) {
						l.white.Clear(nb.ID)
						remaining--
					}
				}
			}
		}
		if remaining == 0 {
			for _, m2 := range members {
				if l.pend.Test(int(m2)) {
					l.pend.Clear(int(m2))
					part = append(part, m2)
				}
			}
		}
		slices.Sort(part)
		l.adopt(part)
	}
	return nil
}

// adopt installs a member list as a (dirty) component labeled by its
// minimum member.
func (l *LiveDisC) adopt(members []int32) {
	lab := members[0]
	for _, m := range members {
		l.label[m] = lab
	}
	l.comps[lab] = members
	l.dirty[lab] = struct{}{}
}

// invalidate discards the selection of component lab (no-op when it has
// none, e.g. it is already dirty).
func (l *LiveDisC) invalidate(lab int32) {
	sel, ok := l.compSel[lab]
	if !ok {
		return
	}
	for _, id := range sel {
		l.sel.Clear(int(id))
	}
	l.selCount -= len(sel)
	delete(l.compSel, lab)
}

// Flush repairs every dirty component in ascending label order —
// exactly the batch processing order — and publishes the converged
// selection. It returns the number of components repaired.
func (l *LiveDisC) Flush() int {
	repaired := len(l.dirty)
	if repaired > 0 {
		defer telemetry.Since(metLiveRepair, time.Now())
		metLiveRepaired.Add(uint64(repaired))
		order := make([]int32, 0, repaired)
		for lab := range l.dirty {
			order = append(order, lab)
		}
		slices.Sort(order)
		slots := l.dyn.Slots()
		l.white.Grow(slots)
		for len(l.nw) < slots {
			l.nw = append(l.nw, 0)
		}
		for _, lab := range order {
			sel := l.repairComponent(l.comps[lab])
			l.compSel[lab] = sel
			for _, id := range sel {
				l.sel.Set(int(id))
			}
			l.selCount += len(sel)
			delete(l.dirty, lab)
		}
	}
	l.publish()
	return repaired
}

// repairComponent re-runs the component-confined pruned greedy over one
// member list, mirroring runComponentRange/greedyComponent from the
// batch path: the same singleton and pair fast paths, the same
// (count desc, id asc) pop order with deferred invalidation (served by
// a bucketQueue, order-equivalent to the batch lazyHeap), the same
// grey-update decrements — so the selected ids (and their order) are
// what the batch run would emit for this component.
func (l *LiveDisC) repairComponent(members []int32) []int32 {
	switch len(members) {
	case 1:
		l.accesses++
		return []int32{members[0]}
	case 2:
		l.accesses += 2
		return []int32{members[0]}
	}
	q := &l.bq
	for _, id32 := range members {
		id := int(id32)
		l.white.Set(id)
		deg := l.adj.Degree(id)
		l.nw[id] = int32(deg)
		q.push(id32, deg)
	}
	q.start()
	sel := make([]int32, 0, 1+len(members)/8)
	for {
		id32, key, ok := q.pop()
		if !ok {
			break
		}
		pi := int(id32)
		if !l.white.Test(pi) {
			continue
		}
		if int(l.nw[pi]) != key {
			q.push(id32, int(l.nw[pi]))
			continue
		}
		l.white.Clear(pi)
		sel = append(sel, int32(pi))
		row := l.adj.Row(pi)
		l.accesses += int64(len(row))
		l.grey = l.grey[:0]
		for _, nb := range row {
			if l.white.Test(nb.ID) {
				l.white.Clear(nb.ID)
				l.grey = append(l.grey, int32(nb.ID))
			}
		}
		for _, gj := range l.grey {
			grow := l.adj.Row(int(gj))
			l.accesses += int64(len(grow))
			for _, nb := range grow {
				if nb.Dist <= l.r && l.white.Test(nb.ID) {
					l.nw[nb.ID]--
				}
			}
		}
	}
	return sel
}

// publish freezes the current selection into an immutable snapshot for
// lock-free readers.
func (l *LiveDisC) publish() {
	l.published.Store(&liveSnap{bits: l.sel.Clone(), count: l.selCount})
}

// Selection returns the ids of the last published (converged) selection
// in ascending order. The slice is shared between callers and must not
// be modified. Safe for concurrent use.
func (l *LiveDisC) Selection() []int {
	s := l.published.Load()
	s.once.Do(func() {
		s.ids = s.bits.AppendSet(make([]int, 0, s.count))
	})
	return s.ids
}

// Size returns the size of the last published selection. Safe for
// concurrent use.
func (l *LiveDisC) Size() int { return l.published.Load().count }

// IsRepresentative reports whether id is selected in the last published
// selection. Safe for concurrent use.
func (l *LiveDisC) IsRepresentative(id int) bool {
	s := l.published.Load()
	return id >= 0 && id < s.bits.Len() && s.bits.Test(id)
}

// OrderedSelection returns the converged selection in the batch output
// order — components ascending by label, greedy order within each.
// Callers must Flush first; with repairs pending the result would mix
// selection generations, so pending state returns nil.
func (l *LiveDisC) OrderedSelection() []int {
	if len(l.dirty) > 0 {
		return nil
	}
	labs := make([]int32, 0, len(l.compSel))
	for lab := range l.compSel {
		labs = append(labs, lab)
	}
	slices.Sort(labs)
	out := make([]int, 0, l.selCount)
	for _, lab := range labs {
		for _, id := range l.compSel[lab] {
			out = append(out, int(id))
		}
	}
	return out
}

// Compact squeezes the tombstones out of every maintained structure:
// the live rows become a dense FlatDataset, the adjacency a canonical
// CSR, the labels a canonical grid.Components — all in the new id space
// of the returned remap (monotone over live ids). A from-scratch
// grid.Build + grid.Join + ComponentsOfCSR over the returned dataset
// yields bit-identical structures whenever the incremental maintenance
// is correct; the conformance tests assert exactly that.
func (l *LiveDisC) Compact() (*object.FlatDataset, []int32, *grid.CSR, *grid.Components, error) {
	flat, remap, err := l.dyn.CompactFlat()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	csr, err := l.adj.Compact(remap, flat.Len())
	if err != nil {
		return nil, nil, nil, nil, err
	}
	// Labels are minimum member ids; scanning old ids ascending meets
	// each component first at its minimum member, which is exactly the
	// canonical ascending-minimum-member numbering.
	labels := make([]int32, flat.Len())
	next := int32(0)
	rank := make(map[int32]int32, len(l.comps))
	for old, nw := range remap {
		if nw < 0 {
			continue
		}
		lab := l.label[old]
		rk, ok := rank[lab]
		if !ok {
			rk = next
			rank[lab] = rk
			next++
		}
		labels[nw] = rk
	}
	comp := &grid.Components{Count: int(next), Label: labels}
	comp.BuildIndex()
	return flat, remap, csr, comp, nil
}

// Verify checks the DisC invariants of the converged selection over the
// live objects by direct distance computation (O(n·|S|); tests and
// debugging). Pending repairs must be flushed first.
func (l *LiveDisC) Verify() error {
	if len(l.dirty) > 0 {
		return fmt.Errorf("core: live: %d components pending repair; Flush first", len(l.dirty))
	}
	if l.dyn.Live() == 0 {
		return nil
	}
	pts := l.dyn.LivePoints()
	dense := make([]int32, l.dyn.Slots())
	next := int32(0)
	for id := range dense {
		if l.dyn.Alive(id) {
			dense[id] = next
			next++
		} else {
			dense[id] = -1
		}
	}
	sel := l.sel.AppendSet(nil)
	ids := make([]int, len(sel))
	for i, id := range sel {
		if dense[id] < 0 {
			return fmt.Errorf("core: live: dead id %d selected", id)
		}
		ids[i] = int(dense[id])
	}
	return CheckDisC(pts, l.dyn.Metric(), ids, l.r)
}
