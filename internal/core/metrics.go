package core

import "github.com/discdiversity/disc/internal/telemetry"

// Stage timers for selection and live maintenance. Handles resolve once
// at package init; the observation calls are atomic adds only, so the
// instrumented wrappers stay outside the 0 alloc/op pinned inner loops
// (runComponentRange, NeighborsAppend) and add nothing to them.
var (
	metSelectGlobal = telemetry.Default().Histogram(`disc_select_seconds{mode="global"}`,
		"Wall time of one greedy DisC selection (global heap or component-decomposed).")
	metSelectComponents = telemetry.Default().Histogram(`disc_select_seconds{mode="components"}`, "")

	metLiveInsert = telemetry.Default().Histogram("disc_live_insert_seconds",
		"Wall time of one LiveDisC insert (grid splice + component merge).")
	metLiveDelete = telemetry.Default().Histogram("disc_live_delete_seconds",
		"Wall time of one LiveDisC delete (unsplice + split re-partition).")
	metLiveRepair = telemetry.Default().Histogram("disc_live_repair_seconds",
		"Wall time of one Flush that repaired at least one dirty component.")
	metLiveRepaired = telemetry.Default().Counter("disc_live_repaired_components_total",
		"Components re-selected by Flush repairs since process start.")
)
