package core

import (
	"github.com/discdiversity/disc/internal/grid"
	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/rtree"
)

// RTreeEngine adapts the bulk-loaded STR R-tree to the Engine interfaces.
// Unlike the M-tree and VP-tree it prunes on bounding boxes rather than
// the triangle inequality, which restricts it to coordinate-wise monotone
// metrics (every built-in metric qualifies) but gives near-perfect node
// utilisation and a cheap, deterministic bulk build. It supports the
// paper's pruning rule (CoverageEngine) through per-subtree white counts.
type RTreeEngine struct {
	tree *rtree.Tree
}

var (
	_ Engine         = (*RTreeEngine)(nil)
	_ CoverageEngine = (*RTreeEngine)(nil)
)

// BuildRTreeEngine packs an R-tree over pts and wraps it. leafCap <= 0
// selects the package default.
func BuildRTreeEngine(pts []object.Point, m object.Metric, leafCap int) (*RTreeEngine, error) {
	t, err := rtree.Build(pts, m, leafCap)
	if err != nil {
		return nil, err
	}
	return &RTreeEngine{tree: t}, nil
}

// Tree exposes the underlying index.
func (re *RTreeEngine) Tree() *rtree.Tree { return re.tree }

// Size implements Engine.
func (re *RTreeEngine) Size() int { return re.tree.Len() }

// Metric implements Engine.
func (re *RTreeEngine) Metric() object.Metric { return re.tree.Metric() }

// Point implements Engine.
func (re *RTreeEngine) Point(id int) object.Point { return re.tree.Point(id) }

// Neighbors implements Engine.
func (re *RTreeEngine) Neighbors(id int, r float64) []object.Neighbor {
	return re.tree.RangeQueryAround(id, r)
}

// NeighborsAppend implements Engine.
func (re *RTreeEngine) NeighborsAppend(dst []object.Neighbor, id int, r float64) []object.Neighbor {
	return re.tree.AppendRangeQueryAround(dst, id, r)
}

// NeighborsOfPoint implements Engine.
func (re *RTreeEngine) NeighborsOfPoint(q object.Point, r float64) []object.Neighbor {
	return re.tree.RangeQuery(q, r)
}

// ScanOrder implements Engine via the STR leaf order.
func (re *RTreeEngine) ScanOrder() []int { return re.tree.ScanOrder() }

// Accesses implements Engine.
func (re *RTreeEngine) Accesses() int64 { return re.tree.Accesses() }

// ResetAccesses implements Engine.
func (re *RTreeEngine) ResetAccesses() { re.tree.ResetAccesses() }

// StartCoverage implements CoverageEngine.
func (re *RTreeEngine) StartCoverage(white []bool) {
	if white == nil {
		re.tree.EnableTracking()
		return
	}
	re.tree.ResetTracking(white)
}

// Cover implements CoverageEngine.
func (re *RTreeEngine) Cover(id int) { re.tree.Cover(id) }

// IsWhite implements CoverageEngine.
func (re *RTreeEngine) IsWhite(id int) bool { return re.tree.IsWhite(id) }

// NeighborsWhite implements CoverageEngine.
func (re *RTreeEngine) NeighborsWhite(id int, r float64) []object.Neighbor {
	return re.tree.RangeQueryPruned(id, r)
}

// NeighborsWhiteAppend implements CoverageEngine.
func (re *RTreeEngine) NeighborsWhiteAppend(dst []object.Neighbor, id int, r float64) []object.Neighbor {
	return re.tree.AppendRangeQueryPruned(dst, id, r)
}

// Components implements CoverageEngine by breadth-first traversal over
// per-object range queries.
func (re *RTreeEngine) Components(r float64) *grid.Components {
	return componentsViaQueries(re, r)
}
