package core

import (
	"testing"

	"github.com/discdiversity/disc/internal/object"
)

func baseSolution(t *testing.T, e Engine, r float64) *Solution {
	t.Helper()
	s := GreedyDisC(e, r, GreedyOptions{Update: UpdateGrey})
	if err := VerifySolution(e, s); err != nil {
		t.Fatalf("base solution invalid: %v", err)
	}
	return s
}

func TestZoomInProducesValidSuperset(t *testing.T) {
	pts := randomPoints(500, 2, 11)
	m := object.Euclidean{}
	for engName, e := range bothEngines(t, pts, m) {
		for _, greedy := range []bool{false, true} {
			prev := baseSolution(t, e, 0.1)
			zoomed, err := ZoomIn(e, prev, 0.05, greedy, false)
			if err != nil {
				t.Fatalf("%s greedy=%v: %v", engName, greedy, err)
			}
			if err := VerifySolution(e, zoomed); err != nil {
				t.Errorf("%s greedy=%v: invalid: %v", engName, greedy, err)
			}
			// Lemma 5(i): S^r ⊆ S^r'.
			for _, id := range prev.IDs {
				if !zoomed.Contains(id) {
					t.Errorf("%s greedy=%v: previous representative %d dropped", engName, greedy, id)
				}
			}
			if zoomed.Size() < prev.Size() {
				t.Errorf("%s greedy=%v: zoom-in shrank the solution", engName, greedy)
			}
		}
	}
}

func TestZoomInPrunedStillValid(t *testing.T) {
	pts := randomPoints(600, 2, 12)
	m := object.Euclidean{}
	e := treeEngine(t, pts, m)
	prev := baseSolution(t, e, 0.12)
	zoomed, err := ZoomIn(e, prev, 0.06, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySolution(e, zoomed); err != nil {
		t.Fatal(err)
	}
}

func TestZoomInAfterPrunedBaseRun(t *testing.T) {
	// A pruned base run leaves DistBlack inexact; ZoomIn must repair it
	// (the paper's post-processing) and still produce a valid solution.
	pts := randomPoints(600, 2, 13)
	m := object.Euclidean{}
	e := treeEngine(t, pts, m)
	prev := BasicDisC(e, 0.1, true)
	if prev.DistBlackExact {
		t.Fatal("expected inexact DistBlack after pruned run")
	}
	zoomed, err := ZoomIn(e, prev, 0.04, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySolution(e, zoomed); err != nil {
		t.Fatal(err)
	}
}

func TestZoomInRejectsBadArguments(t *testing.T) {
	pts := randomPoints(100, 2, 14)
	m := object.Euclidean{}
	e := flatEngine(t, pts, m)
	prev := baseSolution(t, e, 0.1)
	if _, err := ZoomIn(e, prev, 0.2, false, false); err == nil {
		t.Error("zoom-in with larger radius accepted")
	}
	if _, err := ZoomIn(e, prev, -0.1, false, false); err == nil {
		t.Error("negative radius accepted")
	}
	if _, err := ZoomIn(e, nil, 0.05, false, false); err == nil {
		t.Error("nil solution accepted")
	}
}

func TestZoomOutProducesValidSolution(t *testing.T) {
	pts := randomPoints(500, 2, 15)
	m := object.Euclidean{}
	variants := []ZoomOutVariant{ZoomOutPlain, ZoomOutGreedyA, ZoomOutGreedyB, ZoomOutGreedyC}
	for engName, e := range bothEngines(t, pts, m) {
		prev := baseSolution(t, e, 0.05)
		for _, v := range variants {
			zoomed, err := ZoomOut(e, prev, 0.1, v)
			if err != nil {
				t.Fatalf("%s %v: %v", engName, v, err)
			}
			if err := VerifySolution(e, zoomed); err != nil {
				t.Errorf("%s %v: invalid: %v", engName, v, err)
			}
			if zoomed.Size() > prev.Size() {
				t.Errorf("%s %v: zoom-out grew the solution (%d -> %d)", engName, v, prev.Size(), zoomed.Size())
			}
		}
	}
}

func TestZoomOutKeepsOverlapWithPrevious(t *testing.T) {
	// The point of incremental zoom-out is staying close to the previous
	// result: the adapted solution must share representatives with S^r,
	// and variant (b) is designed to maximise that overlap.
	pts := randomPoints(800, 2, 16)
	m := object.Euclidean{}
	e := flatEngine(t, pts, m)
	prev := baseSolution(t, e, 0.04)
	scratch := GreedyDisC(e, 0.08, GreedyOptions{Update: UpdateGrey})
	for _, v := range []ZoomOutVariant{ZoomOutPlain, ZoomOutGreedyA, ZoomOutGreedyB, ZoomOutGreedyC} {
		zoomed, err := ZoomOut(e, prev, 0.08, v)
		if err != nil {
			t.Fatal(err)
		}
		if Jaccard(prev, zoomed) > Jaccard(prev, scratch) {
			t.Errorf("%v: zoomed solution farther from previous than from-scratch", v)
		}
	}
}

func TestZoomOutRejectsBadArguments(t *testing.T) {
	pts := randomPoints(100, 2, 17)
	m := object.Euclidean{}
	e := flatEngine(t, pts, m)
	prev := baseSolution(t, e, 0.1)
	if _, err := ZoomOut(e, prev, 0.05, ZoomOutPlain); err == nil {
		t.Error("zoom-out with smaller radius accepted")
	}
	empty := newSolution(len(pts), 0.1, "empty")
	if _, err := ZoomOut(e, empty, 0.2, ZoomOutPlain); err == nil {
		t.Error("empty previous solution accepted")
	}
}

func TestZoomRoundTripStaysValid(t *testing.T) {
	pts := randomPoints(400, 2, 18)
	m := object.Euclidean{}
	e := flatEngine(t, pts, m)
	s := baseSolution(t, e, 0.08)
	radii := []float64{0.05, 0.03, 0.06, 0.12, 0.04}
	for _, r := range radii {
		var err error
		var next *Solution
		if r < s.Radius {
			next, err = ZoomIn(e, s, r, true, false)
		} else {
			next, err = ZoomOut(e, s, r, ZoomOutGreedyA)
		}
		if err != nil {
			t.Fatalf("radius %g: %v", r, err)
		}
		if err := VerifySolution(e, next); err != nil {
			t.Fatalf("radius %g: %v", r, err)
		}
		s = next
	}
}

func TestLocalZoomIn(t *testing.T) {
	pts := randomPoints(500, 2, 19)
	m := object.Euclidean{}
	for engName, e := range bothEngines(t, pts, m) {
		prev := baseSolution(t, e, 0.15)
		center := prev.IDs[0]
		for _, greedy := range []bool{false, true} {
			res, err := LocalZoomIn(e, prev, center, 0.05, greedy)
			if err != nil {
				t.Fatalf("%s greedy=%v: %v", engName, greedy, err)
			}
			// The previous representatives must all survive.
			for _, id := range prev.IDs {
				if !containsInt(res.Final, id) {
					t.Errorf("%s: representative %d dropped by local zoom-in", engName, id)
				}
			}
			// Region coverage at the local radius: every region object
			// must be within rNew of some final representative.
			for _, id := range res.Region {
				covered := false
				for _, b := range res.Final {
					if m.Dist(pts[id], pts[b]) <= 0.05 {
						covered = true
						break
					}
				}
				if !covered {
					t.Errorf("%s greedy=%v: region object %d uncovered at local radius", engName, greedy, id)
				}
			}
			// Added representatives must be inside the region and
			// mutually independent at the local radius.
			for i, a := range res.Added {
				if !containsInt(res.Region, a) {
					t.Errorf("%s: added %d outside region", engName, a)
				}
				for _, b := range res.Added[i+1:] {
					if d := m.Dist(pts[a], pts[b]); d <= 0.05 {
						t.Errorf("%s: added representatives %d,%d at distance %g", engName, a, b, d)
					}
				}
			}
		}
	}
}

func TestLocalZoomInRejectsNonRepresentative(t *testing.T) {
	pts := randomPoints(200, 2, 20)
	e := flatEngine(t, pts, object.Euclidean{})
	prev := baseSolution(t, e, 0.1)
	nonRep := -1
	for id := range pts {
		if !prev.Contains(id) {
			nonRep = id
			break
		}
	}
	if _, err := LocalZoomIn(e, prev, nonRep, 0.05, false); err == nil {
		t.Error("non-representative centre accepted")
	}
}

func TestLocalZoomOut(t *testing.T) {
	pts := randomPoints(600, 2, 21)
	m := object.Euclidean{}
	e := flatEngine(t, pts, m)
	prev := baseSolution(t, e, 0.05)
	center := prev.IDs[0]
	res, err := LocalZoomOut(e, prev, center, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !containsInt(res.Final, center) {
		t.Fatal("centre dropped by local zoom-out")
	}
	// Removed representatives must lie within the new radius of centre.
	for _, id := range res.Removed {
		if d := m.Dist(pts[id], pts[center]); d > 0.15 {
			t.Errorf("removed %d at distance %g > rNew", id, d)
		}
	}
	// Global coverage must hold with mixed radii: each object is within
	// rNew of centre or within the original radius of a surviving
	// representative.
	for id := range pts {
		if m.Dist(pts[id], pts[center]) <= 0.15 {
			continue
		}
		covered := false
		for _, b := range res.Final {
			if m.Dist(pts[id], pts[b]) <= prev.Radius {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("object %d lost coverage after local zoom-out", id)
		}
	}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
