package core

import (
	"fmt"
	"sort"

	"github.com/discdiversity/disc/internal/object"
)

// This file implements the two extensions sketched in the paper's
// Section 8 ("Summary and Future Work"):
//
//   - Weighted DisC: every object carries a relevance weight and the goal
//     is a DisC diverse subset of large total weight. Because any maximal
//     independent set of G_{P,r} is r-DisC diverse (Lemma 1), a greedy
//     pass over the objects in descending weight order yields a valid
//     subset that locally maximises the weight of every pick.
//
//   - Multi-radius DisC: relevance is expressed through per-object radii
//     instead (more relevant objects get a smaller radius, so their
//     regions stay finely represented). Two objects are mutually similar
//     when dist(p,q) <= max(rad(p), rad(q)), which keeps the similarity
//     relation symmetric and turns the problem into an independent
//     dominating set on the generalised neighbourhood graph; the standard
//     algorithms then carry over.

// WeightedGreedyDisC computes an r-DisC diverse subset preferring heavy
// objects: objects are considered in descending weight order (ties by
// ascending id) and every still-uncovered object encountered is selected.
// The result is a maximal independent set and therefore a valid r-DisC
// diverse subset; among such subsets it greedily maximises the weight of
// each selected representative.
func WeightedGreedyDisC(e Engine, r float64, weights []float64) (*Solution, error) {
	n := e.Size()
	if len(weights) != n {
		return nil, fmt.Errorf("core: %d weights for %d objects", len(weights), n)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		wa, wb := weights[order[a]], weights[order[b]]
		if wa != wb {
			return wa > wb
		}
		return order[a] < order[b]
	})

	s := newSolution(n, r, "Weighted-Greedy-DisC")
	start := e.Accesses()
	var buf []object.Neighbor
	for _, pi := range order {
		if s.Colors[pi] != White {
			continue
		}
		s.selectBlack(pi)
		buf = e.NeighborsAppend(buf[:0], pi, r)
		for _, nb := range buf {
			if s.Colors[nb.ID] == White {
				s.Colors[nb.ID] = Grey
			}
			if nb.Dist < s.DistBlack[nb.ID] {
				s.DistBlack[nb.ID] = nb.Dist
			}
		}
	}
	s.DistBlackExact = true
	s.Accesses = e.Accesses() - start
	return s, nil
}

// TotalWeight sums the weights of the selected objects.
func TotalWeight(s *Solution, weights []float64) float64 {
	var total float64
	for _, id := range s.IDs {
		total += weights[id]
	}
	return total
}

// MultiRadiusNeighbors returns the objects similar to id under per-object
// radii: q is a neighbour of p when dist(p,q) <= max(rad(p), rad(q)).
// One engine query at the maximum radius is filtered down.
func MultiRadiusNeighbors(e Engine, id int, radii []float64, maxRad float64) []object.Neighbor {
	return appendMultiRadiusNeighbors(nil, e, id, radii, maxRad)
}

// appendMultiRadiusNeighbors is the buffer-reusing form: the query lands
// in dst (which is fully overwritten from index 0) and is filtered in
// place.
func appendMultiRadiusNeighbors(dst []object.Neighbor, e Engine, id int, radii []float64, maxRad float64) []object.Neighbor {
	dst = e.NeighborsAppend(dst[:0], id, maxRad)
	kept := dst[:0]
	for _, nb := range dst {
		if nb.Dist <= maxFloat(radii[id], radii[nb.ID]) {
			kept = append(kept, nb)
		}
	}
	return kept
}

// MultiRadiusDisC computes a DisC diverse subset under per-object radii:
// the returned set dominates and is independent in the graph whose edges
// connect objects with dist(p,q) <= max(rad(p), rad(q)). With greedy set,
// objects are selected by descending generalised-neighbourhood size;
// otherwise in engine scan order.
func MultiRadiusDisC(e Engine, radii []float64, greedy bool) (*Solution, error) {
	n := e.Size()
	if len(radii) != n {
		return nil, fmt.Errorf("core: %d radii for %d objects", len(radii), n)
	}
	maxRad := 0.0
	for i, r := range radii {
		if r < 0 {
			return nil, fmt.Errorf("core: negative radius %g for object %d", r, i)
		}
		if r > maxRad {
			maxRad = r
		}
	}
	name := "MultiRadius-DisC"
	if greedy {
		name = "Greedy-MultiRadius-DisC"
	}
	s := newSolution(n, maxRad, name)
	start := e.Accesses()

	var sc queryScratch
	// colorFrom queries into sc.ns and leaves the newly greyed objects
	// in sc.grey.
	colorFrom := func(pi int) {
		sc.ns = appendMultiRadiusNeighbors(sc.ns, e, pi, radii, maxRad)
		sc.grey = sc.grey[:0]
		for _, nb := range sc.ns {
			if s.Colors[nb.ID] == White {
				s.Colors[nb.ID] = Grey
				sc.grey = append(sc.grey, nb)
			}
			if nb.Dist < s.DistBlack[nb.ID] {
				s.DistBlack[nb.ID] = nb.Dist
			}
		}
	}

	if !greedy {
		for _, pi := range e.ScanOrder() {
			if s.Colors[pi] != White {
				continue
			}
			s.selectBlack(pi)
			colorFrom(pi)
		}
	} else {
		nw := make([]int, n)
		for id := 0; id < n; id++ {
			sc.upd = appendMultiRadiusNeighbors(sc.upd, e, id, radii, maxRad)
			nw[id] = len(sc.upd)
		}
		h := newLazyHeap(n)
		for id, c := range nw {
			h.push(id, c)
		}
		for {
			pi, ok := h.popValid(func(id, key int) bool {
				return s.Colors[id] == White && key == nw[id]
			})
			if !ok {
				break
			}
			s.selectBlack(pi)
			colorFrom(pi)
			for _, gj := range sc.grey {
				sc.upd = appendMultiRadiusNeighbors(sc.upd, e, gj.ID, radii, maxRad)
				for _, nk := range sc.upd {
					if s.Colors[nk.ID] == White {
						nw[nk.ID]--
						h.push(nk.ID, nw[nk.ID])
					}
				}
			}
		}
	}
	s.DistBlackExact = true
	s.Accesses = e.Accesses() - start
	return s, nil
}

// CheckMultiRadiusDisC verifies the generalised Definition 1 under
// per-object radii by direct distance computation: every object must have
// a representative within max(rad(p), rad(s)), and no two representatives
// may lie within max of their radii.
func CheckMultiRadiusDisC(pts []object.Point, m object.Metric, ids []int, radii []float64) error {
	if len(pts) != len(radii) {
		return fmt.Errorf("core: %d radii for %d objects", len(radii), len(pts))
	}
	if len(pts) > 0 && len(ids) == 0 {
		return fmt.Errorf("core: empty subset cannot cover %d objects", len(pts))
	}
	for i, p := range pts {
		covered := false
		for _, s := range ids {
			if i == s || m.Dist(p, pts[s]) <= maxFloat(radii[i], radii[s]) {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("core: object %d is not covered under its radius %g", i, radii[i])
		}
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a, b := ids[i], ids[j]
			if d := m.Dist(pts[a], pts[b]); d <= maxFloat(radii[a], radii[b]) {
				return fmt.Errorf("core: representatives %d and %d at distance %g within max radius %g",
					a, b, d, maxFloat(radii[a], radii[b]))
			}
		}
	}
	return nil
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
