package core

// BasicDisC computes an r-DisC diverse subset with the paper's baseline
// heuristic (Section 2.3): repeatedly take an arbitrary white object —
// here the next white object in the engine's locality-preserving scan
// order — color it black and color its neighbourhood grey. The produced
// set is a maximal independent set of G_{P,r} and therefore r-DisC
// diverse (Lemma 1).
//
// With pruned set (and a CoverageEngine) range queries skip fully covered
// regions, the "Basic-DisC (Pruned)" variant of the evaluation. Pruned
// runs leave DistBlack inexact; see Solution.DistBlackExact.
func BasicDisC(e Engine, r float64, pruned bool) *Solution {
	n := e.Size()
	name := "Basic-DisC"
	cov, hasCov := e.(CoverageEngine)
	usePrune := pruned && hasCov
	if usePrune {
		name += " (Pruned)"
		cov.StartCoverage(nil)
	}
	s := newSolution(n, r, name)
	start := e.Accesses()

	var sc queryScratch
	for _, pi := range e.ScanOrder() {
		if s.Colors[pi] != White {
			continue
		}
		s.selectBlack(pi)
		if usePrune {
			cov.Cover(pi)
			sc.ns = cov.NeighborsWhiteAppend(sc.ns[:0], pi, r)
		} else {
			sc.ns = e.NeighborsAppend(sc.ns[:0], pi, r)
		}
		for _, nb := range sc.ns {
			if s.Colors[nb.ID] == White {
				s.Colors[nb.ID] = Grey
				if usePrune {
					cov.Cover(nb.ID)
				}
			}
			if nb.Dist < s.DistBlack[nb.ID] {
				s.DistBlack[nb.ID] = nb.Dist
			}
		}
	}

	s.DistBlackExact = !usePrune
	s.Accesses = e.Accesses() - start
	return s
}
