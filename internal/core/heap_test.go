package core

import (
	"math/rand/v2"
	"testing"
)

func TestLazyHeapOrdering(t *testing.T) {
	h := newLazyHeap(8)
	counts := map[int]int{1: 5, 2: 9, 3: 9, 4: 1}
	for id, k := range counts {
		h.push(id, k)
	}
	valid := func(id, key int) bool { return counts[id] == key }
	// Highest key first; ties by lowest id.
	want := []int{2, 3, 1, 4}
	for _, w := range want {
		id, ok := h.popValid(valid)
		if !ok || id != w {
			t.Fatalf("pop got (%d,%v), want %d", id, ok, w)
		}
		delete(counts, id)
	}
	if _, ok := h.popValid(valid); ok {
		t.Fatal("pop from exhausted heap succeeded")
	}
}

func TestLazyHeapStaleEntriesDiscarded(t *testing.T) {
	h := newLazyHeap(8)
	counts := []int{0: 10, 1: 8}
	h.push(0, 10)
	h.push(1, 8)
	// Object 0's count drops twice; each change pushes a new entry.
	counts[0] = 6
	h.push(0, 6)
	counts[0] = 3
	h.push(0, 3)
	valid := func(id, key int) bool { return counts[id] == key }
	id, ok := h.popValid(valid)
	if !ok || id != 1 {
		t.Fatalf("expected 1 (key 8) first, got %d", id)
	}
	counts[1] = -1 // invalidate entirely
	id, ok = h.popValid(valid)
	if !ok || id != 0 {
		t.Fatalf("expected 0 (key 3), got (%d,%v)", id, ok)
	}
	if _, ok := h.popValid(valid); ok {
		t.Fatal("stale entries should all be discarded")
	}
}

// Randomized: the heap with lazy invalidation must always pop the maximum
// current key among valid objects, compared against a linear scan.
func TestLazyHeapMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	n := 200
	counts := make([]int, n)
	alive := make([]bool, n)
	h := newLazyHeap(n)
	for i := range counts {
		counts[i] = rng.IntN(50)
		alive[i] = true
		h.push(i, counts[i])
	}
	valid := func(id, key int) bool { return alive[id] && counts[id] == key }
	for round := 0; round < n; round++ {
		// Randomly decrement a few counts first.
		for j := 0; j < 5; j++ {
			id := rng.IntN(n)
			if alive[id] && counts[id] > 0 {
				counts[id]--
				h.push(id, counts[id])
			}
		}
		// Linear-scan expectation.
		best := -1
		for id := 0; id < n; id++ {
			if !alive[id] {
				continue
			}
			if best == -1 || counts[id] > counts[best] {
				best = id
			}
		}
		if best == -1 {
			break
		}
		got, ok := h.popValid(valid)
		if !ok {
			t.Fatalf("round %d: heap exhausted with %d alive", round, countTrue(alive))
		}
		if counts[got] != counts[best] {
			t.Fatalf("round %d: popped key %d, max is %d", round, counts[got], counts[best])
		}
		alive[got] = false
	}
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}
