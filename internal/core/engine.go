// Package core implements the paper's algorithms: the DisC heuristics
// (Basic-DisC, the Greedy-DisC family, Greedy-C, Fast-C) and the adaptive
// zooming algorithms (Zoom-In/Out and their greedy variants, plus local
// zooming).
//
// Algorithms are written once against the Engine interface so that the
// same code runs on the exact brute-force FlatEngine (used as a
// correctness reference) and on the M-tree backed TreeEngine (used for
// the paper's node-access experiments). With deterministic tie-breaking
// both engines return identical solutions, which the test suite exploits
// to cross-validate the index.
//
// # Buffer reuse
//
// Every neighbourhood query has two forms: an allocating convenience
// form (Neighbors, NeighborsWhite) and an appending form
// (NeighborsAppend, NeighborsWhiteAppend) that extends a caller-owned
// buffer and allocates nothing once the buffer has grown to the working
// set's high-water mark. The selection and zoom algorithms hold one
// scratch buffer per query role and reuse it across iterations, which is
// what makes their steady-state query loops allocation-free. Results
// appended into a reused buffer are invalidated by the next appending
// call on the same buffer; callers that need to retain a neighbourhood
// must copy it out.
package core

import (
	"slices"

	"github.com/discdiversity/disc/internal/grid"
	"github.com/discdiversity/disc/internal/object"
)

// Engine abstracts neighbourhood search over a fixed object universe.
// IDs are dense in [0, Size()).
type Engine interface {
	// Size returns the number of objects.
	Size() int
	// Metric returns the distance function.
	Metric() object.Metric
	// Point returns the coordinates of object id.
	Point(id int) object.Point
	// Neighbors returns every object within distance r of object id,
	// excluding id itself, with distances. Equivalent to
	// NeighborsAppend(nil, id, r).
	Neighbors(id int, r float64) []object.Neighbor
	// NeighborsAppend appends every object within distance r of object
	// id (excluding id itself) to dst and returns the extended slice. It
	// performs no allocation when dst has sufficient capacity, and
	// reports neighbours in the same order as Neighbors.
	NeighborsAppend(dst []object.Neighbor, id int, r float64) []object.Neighbor
	// NeighborsOfPoint returns every object within distance r of an
	// arbitrary point.
	NeighborsOfPoint(q object.Point, r float64) []object.Neighbor
	// ScanOrder returns all ids in a locality-preserving order (leaf
	// order for the M-tree, id order for the flat engine).
	ScanOrder() []int
	// Accesses returns the cumulative cost counter: M-tree node accesses
	// for the tree engine, objects examined for the flat engine.
	Accesses() int64
	// ResetAccesses zeroes the cost counter.
	ResetAccesses()
}

// CoverageEngine is implemented by engines that support the paper's
// pruning rule. Cover(id) informs the engine that id is no longer white;
// NeighborsWhite then reports only still-white neighbours, skipping
// fully-covered regions.
type CoverageEngine interface {
	Engine
	// StartCoverage (re)initialises coverage state; white[id]==false
	// marks id as already covered. A nil slice means everything is
	// white.
	StartCoverage(white []bool)
	// Cover marks an object as covered (grey or black).
	Cover(id int)
	// IsWhite reports whether id is still uncovered.
	IsWhite(id int) bool
	// NeighborsWhite returns the white objects within distance r of id,
	// pruning fully covered regions. Equivalent to
	// NeighborsWhiteAppend(nil, id, r).
	NeighborsWhite(id int, r float64) []object.Neighbor
	// NeighborsWhiteAppend is the buffer-reusing form of NeighborsWhite.
	NeighborsWhiteAppend(dst []object.Neighbor, id int, r float64) []object.Neighbor
	// Components returns the connected-component decomposition of the
	// r-coverage graph over the engine's objects, in the canonical
	// numbering (components ascend with their minimum member id), so
	// every engine returns the identical decomposition for the same
	// objects and radius. Engines without a materialised adjacency
	// derive it with one range query per object; the coverage-graph
	// engine labels its CSR directly and caches the result for its
	// build radius. The returned value is shared or cached state —
	// treat it as read-only.
	Components(r float64) *grid.Components
}

// WhiteCounter is implemented by engines that can recount the white
// neighbourhood of an object directly — in O(degree) packed-bitset tests
// over a materialised adjacency list — instead of the caller deriving
// the count from per-pair distance evaluations. The White-update
// strategies of Greedy-DisC use it to refresh candidate counts.
type WhiteCounter interface {
	CoverageEngine
	// WhiteCount returns |{white objects within r of id}|, excluding id.
	// ok is false when the engine cannot answer from materialised state
	// (the caller must fall back to distance computations).
	WhiteCount(id int, r float64) (count int, ok bool)
}

// BottomUpEngine is implemented by engines that can answer neighbourhood
// queries starting from the object's own storage location, optionally
// stopping at the first fully covered ancestor (Fast-C's approximate
// query).
type BottomUpEngine interface {
	Engine
	// NeighborsBottomUp answers Neighbors(id, r) bottom-up. With
	// stopAtGrey set the result may be incomplete.
	NeighborsBottomUp(id int, r float64, stopAtGrey bool) []object.Neighbor
	// NeighborsBottomUpAppend is the buffer-reusing form of
	// NeighborsBottomUp.
	NeighborsBottomUpAppend(dst []object.Neighbor, id int, r float64, stopAtGrey bool) []object.Neighbor
}

// CountingEngine is implemented by engines that computed the initial
// neighbourhood sizes as a side effect of construction (the paper's
// build-time accounting, which it reports saves up to 45% of accesses).
type CountingEngine interface {
	Engine
	// InitialCounts returns |N_r(p)| for every object at the engine's
	// build radius, and that radius. ok is false when counts were not
	// collected during construction.
	InitialCounts() (counts []int, r float64, ok bool)
}

// sortNeighbors orders a neighbour list by id so algorithm behaviour is
// independent of index traversal order. It sorts in place without
// allocating.
func sortNeighbors(ns []object.Neighbor) []object.Neighbor {
	slices.SortFunc(ns, func(a, b object.Neighbor) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		default:
			return 0
		}
	})
	return ns
}
