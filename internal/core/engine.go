// Package core implements the paper's algorithms: the DisC heuristics
// (Basic-DisC, the Greedy-DisC family, Greedy-C, Fast-C) and the adaptive
// zooming algorithms (Zoom-In/Out and their greedy variants, plus local
// zooming).
//
// Algorithms are written once against the Engine interface so that the
// same code runs on the exact brute-force FlatEngine (used as a
// correctness reference) and on the M-tree backed TreeEngine (used for
// the paper's node-access experiments). With deterministic tie-breaking
// both engines return identical solutions, which the test suite exploits
// to cross-validate the index.
package core

import (
	"sort"

	"github.com/discdiversity/disc/internal/object"
)

// Engine abstracts neighbourhood search over a fixed object universe.
// IDs are dense in [0, Size()).
type Engine interface {
	// Size returns the number of objects.
	Size() int
	// Metric returns the distance function.
	Metric() object.Metric
	// Point returns the coordinates of object id.
	Point(id int) object.Point
	// Neighbors returns every object within distance r of object id,
	// excluding id itself, with distances.
	Neighbors(id int, r float64) []object.Neighbor
	// NeighborsOfPoint returns every object within distance r of an
	// arbitrary point.
	NeighborsOfPoint(q object.Point, r float64) []object.Neighbor
	// ScanOrder returns all ids in a locality-preserving order (leaf
	// order for the M-tree, id order for the flat engine).
	ScanOrder() []int
	// Accesses returns the cumulative cost counter: M-tree node accesses
	// for the tree engine, objects examined for the flat engine.
	Accesses() int64
	// ResetAccesses zeroes the cost counter.
	ResetAccesses()
}

// CoverageEngine is implemented by engines that support the paper's
// pruning rule. Cover(id) informs the engine that id is no longer white;
// NeighborsWhite then reports only still-white neighbours, skipping
// fully-covered regions.
type CoverageEngine interface {
	Engine
	// StartCoverage (re)initialises coverage state; white[id]==false
	// marks id as already covered. A nil slice means everything is
	// white.
	StartCoverage(white []bool)
	// Cover marks an object as covered (grey or black).
	Cover(id int)
	// IsWhite reports whether id is still uncovered.
	IsWhite(id int) bool
	// NeighborsWhite returns the white objects within distance r of id,
	// pruning fully covered regions.
	NeighborsWhite(id int, r float64) []object.Neighbor
}

// BottomUpEngine is implemented by engines that can answer neighbourhood
// queries starting from the object's own storage location, optionally
// stopping at the first fully covered ancestor (Fast-C's approximate
// query).
type BottomUpEngine interface {
	Engine
	// NeighborsBottomUp answers Neighbors(id, r) bottom-up. With
	// stopAtGrey set the result may be incomplete.
	NeighborsBottomUp(id int, r float64, stopAtGrey bool) []object.Neighbor
}

// CountingEngine is implemented by engines that computed the initial
// neighbourhood sizes as a side effect of construction (the paper's
// build-time accounting, which it reports saves up to 45% of accesses).
type CountingEngine interface {
	Engine
	// InitialCounts returns |N_r(p)| for every object at the engine's
	// build radius, and that radius. ok is false when counts were not
	// collected during construction.
	InitialCounts() (counts []int, r float64, ok bool)
}

// sortNeighbors orders a neighbour list by id so algorithm behaviour is
// independent of index traversal order.
func sortNeighbors(ns []object.Neighbor) []object.Neighbor {
	sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
	return ns
}
