package core

import (
	"time"

	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/telemetry"
)

// UpdateStrategy selects how Greedy-DisC refreshes the white-neighbourhood
// sizes of the remaining white objects after a selection (Section 5.1).
type UpdateStrategy int

const (
	// UpdateGrey issues one range query per newly greyed object
	// ("Grey-Greedy-DisC"). Exact counts.
	UpdateGrey UpdateStrategy = iota
	// UpdateWhite issues a single 2r query around the selected object to
	// find the whites whose counts may have changed, then fixes their
	// counts with direct distance computations ("White-Greedy-DisC").
	// Exact counts, fewer node accesses when many objects grey at once.
	UpdateWhite
	// UpdateLazyGrey is UpdateGrey with radius r/2: cheaper queries that
	// miss some updates, trading slightly larger solutions for fewer
	// accesses ("Lazy-Grey-Greedy-DisC").
	UpdateLazyGrey
	// UpdateLazyWhite is UpdateWhite with radius 3r/2
	// ("Lazy-White-Greedy-DisC").
	UpdateLazyWhite
)

// String implements fmt.Stringer.
func (u UpdateStrategy) String() string {
	switch u {
	case UpdateGrey:
		return "grey"
	case UpdateWhite:
		return "white"
	case UpdateLazyGrey:
		return "lazy-grey"
	case UpdateLazyWhite:
		return "lazy-white"
	default:
		return "update?"
	}
}

// GreedyOptions configures GreedyDisC.
type GreedyOptions struct {
	// Update is the count-maintenance strategy.
	Update UpdateStrategy
	// Pruned enables the grey-subtree pruning rule when the engine
	// supports it.
	Pruned bool
}

// queryScratch holds the per-run reusable neighbour buffers the
// selection and zoom algorithms thread through their query loops: one
// buffer per concurrently-live role, so the steady-state loop performs
// no allocation once each buffer has reached its high-water capacity.
// Contents are invalidated by the next query into the same buffer.
type queryScratch struct {
	ns   []object.Neighbor // primary neighbourhood of the selected object
	grey []object.Neighbor // objects newly greyed by the selection
	upd  []object.Neighbor // count-maintenance queries
}

// GreedyDisC computes an r-DisC diverse subset with Algorithm 1 of the
// paper: repeatedly select the white object covering the most white
// objects. The white-neighbourhood sizes live in the priority structure
// L' (a lazy max-heap); how they are maintained after each selection is
// governed by opts.Update.
//
// If the engine collected neighbourhood counts during construction
// (CountingEngine, radius matching r), initialisation is free; otherwise
// one range query per object establishes the counts.
func GreedyDisC(e Engine, r float64, opts GreedyOptions) *Solution {
	defer telemetry.Since(metSelectGlobal, time.Now())
	n := e.Size()
	name := greedyName(opts, false)
	cov, hasCov := e.(CoverageEngine)
	usePrune := opts.Pruned && hasCov
	if usePrune {
		cov.StartCoverage(nil)
	}
	s := newSolution(n, r, name)
	start := e.Accesses()

	var sc queryScratch
	nw := initialWhiteCounts(e, r, &sc)
	h := newLazyHeap(n)
	for id, c := range nw {
		h.push(id, c)
	}

	for {
		pi, ok := h.popValid(func(id, key int) bool {
			return s.Colors[id] == White && key == nw[id]
		})
		if !ok {
			break
		}
		s.selectBlack(pi)
		if usePrune {
			cov.Cover(pi)
			sc.ns = cov.NeighborsWhiteAppend(sc.ns[:0], pi, r)
		} else {
			sc.ns = e.NeighborsAppend(sc.ns[:0], pi, r)
		}
		sc.grey = sc.grey[:0]
		for _, nb := range sc.ns {
			if s.Colors[nb.ID] == White {
				s.Colors[nb.ID] = Grey
				sc.grey = append(sc.grey, nb)
				if usePrune {
					cov.Cover(nb.ID)
				}
			}
			if nb.Dist < s.DistBlack[nb.ID] {
				s.DistBlack[nb.ID] = nb.Dist
			}
		}
		updateWhiteCounts(e, cov, usePrune, s, r, opts.Update, pi, sc.grey, nw, h, &sc)
	}

	s.DistBlackExact = !usePrune
	s.Accesses = e.Accesses() - start
	return s
}

func greedyName(opts GreedyOptions, components bool) string {
	var name string
	switch opts.Update {
	case UpdateWhite:
		name = "White-Greedy-DisC"
	case UpdateLazyGrey:
		name = "Lazy-Grey-Greedy-DisC"
	case UpdateLazyWhite:
		name = "Lazy-White-Greedy-DisC"
	default:
		name = "Grey-Greedy-DisC"
	}
	switch {
	case opts.Pruned && components:
		name += " (Pruned, Components)"
	case opts.Pruned:
		name += " (Pruned)"
	case components:
		name += " (Components)"
	}
	return name
}

// initialWhiteCounts returns |N_r(p)| per object, using build-time counts
// when available and issuing one range query per object (into the shared
// scratch buffer) otherwise.
func initialWhiteCounts(e Engine, r float64, sc *queryScratch) []int {
	if ce, ok := e.(CountingEngine); ok {
		if counts, cr, have := ce.InitialCounts(); have && cr == r {
			return append([]int(nil), counts...)
		}
	}
	nw := make([]int, e.Size())
	for id := range nw {
		sc.ns = e.NeighborsAppend(sc.ns[:0], id, r)
		nw[id] = len(sc.ns)
	}
	return nw
}

// updateWhiteCounts applies the chosen maintenance strategy after pi was
// selected and newGrey turned grey. newGrey aliases sc.grey; the queries
// issued here land in sc.upd, never in sc.ns or sc.grey.
func updateWhiteCounts(e Engine, cov CoverageEngine, usePrune bool, s *Solution, r float64, strategy UpdateStrategy, pi int, newGrey []object.Neighbor, nw []int, h *lazyHeap, sc *queryScratch) {
	whiteNeighbors := func(dst []object.Neighbor, id int, radius float64) []object.Neighbor {
		if usePrune {
			return cov.NeighborsWhiteAppend(dst, id, radius)
		}
		return e.NeighborsAppend(dst, id, radius)
	}
	switch strategy {
	case UpdateGrey, UpdateLazyGrey:
		radius := r
		if strategy == UpdateLazyGrey {
			radius = r / 2
		}
		for _, gj := range newGrey {
			sc.upd = whiteNeighbors(sc.upd[:0], gj.ID, radius)
			for _, nk := range sc.upd {
				if s.Colors[nk.ID] == White {
					nw[nk.ID]--
					h.push(nk.ID, nw[nk.ID])
				}
			}
		}
	case UpdateWhite, UpdateLazyWhite:
		radius := 2 * r
		if strategy == UpdateLazyWhite {
			radius = 1.5 * r
		}
		sc.upd = whiteNeighbors(sc.upd[:0], pi, radius)
		// Exact-count runs on engines with a materialised adjacency can
		// refresh each candidate's count with packed bit tests instead
		// of |newGrey| distance evaluations. The recount equals the
		// decremented count — the objects that left the white set this
		// round are exactly pi (never within r of a still-white
		// candidate, or it would have been greyed) and newGrey — so
		// selections are identical either way.
		wc, canRecount := e.(WhiteCounter)
		canRecount = canRecount && strategy == UpdateWhite && usePrune
		m := e.Metric()
		for _, wk := range sc.upd {
			if s.Colors[wk.ID] != White {
				continue
			}
			if canRecount {
				if cnt, ok := wc.WhiteCount(wk.ID, r); ok {
					if cnt != nw[wk.ID] {
						nw[wk.ID] = cnt
						h.push(wk.ID, cnt)
					}
					continue
				}
			}
			cnt := 0
			for _, gj := range newGrey {
				if m.Dist(e.Point(wk.ID), e.Point(gj.ID)) <= r {
					cnt++
				}
			}
			if cnt > 0 {
				nw[wk.ID] -= cnt
				h.push(wk.ID, nw[wk.ID])
			}
		}
	}
}
