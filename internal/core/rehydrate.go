package core

import (
	"fmt"
	"runtime"

	"github.com/discdiversity/disc/internal/grid"
	"github.com/discdiversity/disc/internal/object"
)

// CSR exposes the materialised adjacency (read-only) so snapshots can
// persist it.
func (g *ParallelGraphEngine) CSR() *grid.CSR { return g.csr }

// Grid exposes the grid substrate, nil when the engine was built over
// the R-tree path (see GridJoined).
func (g *ParallelGraphEngine) Grid() *grid.Grid { return g.hash }

// RehydrateGridEngine wraps an already-reconstructed grid occupancy
// (grid.FromParts) as a query engine, skipping the O(n) bucketing a
// fresh build would pay. The engine starts with clean access and
// coverage state, exactly like a freshly built one.
func RehydrateGridEngine(g *grid.Grid) *GridEngine {
	return &GridEngine{grid: g, scratch: grid.NewScratch(g.Flat().Dim())}
}

// RehydrateGraphEngine reassembles a grid-path ParallelGraphEngine from
// deserialised parts: the grid occupancy (also the beyond-radius
// fallback substrate) and the coverage-graph CSR joined at radius r.
// The CSR is structurally validated first — a snapshot must never be
// able to turn into out-of-range adjacency entries. Everything a fresh
// build derives beyond the join itself (per-point degree counts for
// CountingEngine, the locality-preserving scan order) is recomputed in
// O(n), which is what makes warm starts cheap: the O(n + edges) join
// and the O(edges) row sorts are replaced by a contiguous read.
func RehydrateGraphEngine(hash *grid.Grid, csr *grid.CSR, r float64, workers int) (*ParallelGraphEngine, error) {
	if hash == nil || csr == nil {
		return nil, fmt.Errorf("core: rehydrate graph engine: missing substrate")
	}
	flat := hash.Flat()
	n := flat.Len()
	if err := csr.Validate(n, r); err != nil {
		return nil, fmt.Errorf("core: rehydrate graph engine: %w", err)
	}
	if !hash.Covers(r) {
		// Adjacency joined at r must have come from an occupancy whose
		// cell ring covers r (Join enforces it at build time); a finer
		// grid cannot have produced this CSR.
		return nil, fmt.Errorf("core: rehydrate graph engine: grid bucketed for %g cannot carry a graph joined at %g", hash.Radius(), r)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	g := &ParallelGraphEngine{
		flat:    flat,
		hash:    hash,
		scratch: grid.NewScratch(flat.Dim()),
		radius:  r,
		workers: workers,
		csr:     csr,
		scan:    hash.ScanOrder(),
		counts:  make([]int, n),
	}
	for i := range g.counts {
		g.counts[i] = csr.Degree(i)
	}
	return g, nil
}

// RehydrateFlatGraphEngine reassembles a flat-join ParallelGraphEngine
// from a deserialised CSR joined at radius r over flat (the flat-join
// substrate persists no grid section — beyond-radius fallback queries
// are whole-dataset scans, derived from the dataset alone). The CSR is
// structurally validated exactly like the grid path's; degree counts
// are recomputed in O(n).
func RehydrateFlatGraphEngine(flat *object.FlatDataset, csr *grid.CSR, r float64, workers int) (*ParallelGraphEngine, error) {
	if flat == nil || csr == nil {
		return nil, fmt.Errorf("core: rehydrate graph engine: missing substrate")
	}
	n := flat.Len()
	if err := csr.Validate(n, r); err != nil {
		return nil, fmt.Errorf("core: rehydrate graph engine: %w", err)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	g := &ParallelGraphEngine{
		flat:    flat,
		flatsub: true,
		radius:  r,
		workers: workers,
		csr:     csr,
		counts:  make([]int, n),
	}
	for i := range g.counts {
		g.counts[i] = csr.Degree(i)
	}
	return g, nil
}

// InstallComponents adopts a deserialised component decomposition for
// the engine's build radius, so warm starts skip the labeling pass a
// fresh engine would pay on its first component-mode selection. The
// labels are revalidated before they are trusted: structurally
// (ComponentsFromLabels — range and canonical numbering) and against
// the adjacency (Validate — no edge may cross components), so a corrupt
// or mismatched snapshot fails here rather than as a wrong selection
// later. O(n + edges), a contiguous scan rather than the traversal it
// replaces.
func (g *ParallelGraphEngine) InstallComponents(labels []int32, count int) error {
	cp, err := grid.ComponentsFromLabels(labels, count)
	if err != nil {
		return fmt.Errorf("core: install components: %w", err)
	}
	if err := cp.Validate(g.csr, g.radius); err != nil {
		return fmt.Errorf("core: install components: %w", err)
	}
	g.comps = cp
	return nil
}
