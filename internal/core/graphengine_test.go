package core

import (
	"math"
	"testing"

	"github.com/discdiversity/disc/internal/object"
)

func graphEngine(t *testing.T, pts []object.Point, m object.Metric, r float64, workers int) *ParallelGraphEngine {
	t.Helper()
	g, err := BuildParallelGraphEngine(pts, m, r, workers)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestGraphEngineAdjacencyMatchesFlat: the materialised graph must agree
// with brute force at the build radius, below it (filter path) and above
// it (R-tree fallback path), for every worker count.
func TestGraphEngineAdjacencyMatchesFlat(t *testing.T) {
	pts := randomPoints(400, 2, 90)
	m := object.Euclidean{}
	flat := flatEngine(t, pts, m)
	for _, workers := range []int{1, 3, 8, 64} {
		g := graphEngine(t, pts, m, 0.1, workers)
		for _, r := range []float64{0.04, 0.1, 0.25} {
			for _, id := range []int{0, 199, 399} {
				got := g.Neighbors(id, r)
				want := sortNeighbors(flat.Neighbors(id, r))
				if len(got) != len(want) {
					t.Fatalf("workers=%d r=%g id=%d: %d neighbours, want %d", workers, r, id, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("workers=%d r=%g id=%d: neighbour %d is %+v, want %+v", workers, r, id, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestGraphEngineInitialCounts: degrees must equal brute-force
// neighbourhood sizes and be reported through CountingEngine.
func TestGraphEngineInitialCounts(t *testing.T) {
	pts := randomPoints(300, 3, 91)
	m := object.Manhattan{}
	g := graphEngine(t, pts, m, 0.3, 0)
	counts, r, ok := g.InitialCounts()
	if !ok || r != 0.3 {
		t.Fatalf("InitialCounts: ok=%v r=%g", ok, r)
	}
	for id := range pts {
		want := 0
		for j := range pts {
			if j != id && m.Dist(pts[id], pts[j]) <= 0.3 {
				want++
			}
		}
		if counts[id] != want {
			t.Fatalf("id=%d: count %d, want %d", id, counts[id], want)
		}
	}
}

// TestGraphEngineNeighborsWhite: the pruned lookup must keep exactly the
// white neighbours, both on the graph path and on the fallback path.
func TestGraphEngineNeighborsWhite(t *testing.T) {
	pts := randomPoints(250, 2, 92)
	m := object.Euclidean{}
	g := graphEngine(t, pts, m, 0.15, 4)
	g.StartCoverage(nil)
	for id := 0; id < len(pts); id += 3 {
		g.Cover(id)
	}
	for _, r := range []float64{0.15, 0.4} {
		for _, id := range []int{1, 100} {
			got := map[int]bool{}
			for _, nb := range g.NeighborsWhite(id, r) {
				got[nb.ID] = true
			}
			for j := range pts {
				want := j != id && g.IsWhite(j) && m.Dist(pts[id], pts[j]) <= r
				if got[j] != want {
					t.Fatalf("r=%g id=%d: neighbour %d reported=%v want %v", r, id, j, got[j], want)
				}
			}
		}
	}
}

// TestGraphEngineGreedyMatchesFlat: the full greedy algorithm must return
// the flat engine's solution regardless of parallelism, with and without
// pruning — and with dramatically fewer "accesses" than queries cost on
// the flat engine.
func TestGraphEngineGreedyMatchesFlat(t *testing.T) {
	pts := randomPoints(500, 2, 93)
	m := object.Euclidean{}
	flat := flatEngine(t, pts, m)
	want := GreedyDisC(flat, 0.08, GreedyOptions{Update: UpdateGrey}).SortedIDs()
	for _, workers := range []int{1, 4} {
		g := graphEngine(t, pts, m, 0.08, workers)
		for _, pruned := range []bool{false, true} {
			s := GreedyDisC(g, 0.08, GreedyOptions{Update: UpdateGrey, Pruned: pruned})
			if !equalInts(want, s.SortedIDs()) {
				t.Fatalf("workers=%d pruned=%v: solution differs from flat", workers, pruned)
			}
		}
	}
}

// TestGraphEngineRebuild: rebuilding at a new radius over the shared
// R-tree must be indistinguishable from a fresh build at that radius.
func TestGraphEngineRebuild(t *testing.T) {
	pts := randomPoints(300, 2, 96)
	m := object.Euclidean{}
	g := graphEngine(t, pts, m, 0.05, 4)
	rebuilt, err := g.Rebuild(0.12)
	if err != nil {
		t.Fatal(err)
	}
	fresh := graphEngine(t, pts, m, 0.12, 4)
	if rebuilt.Radius() != 0.12 {
		t.Fatalf("rebuilt radius %g", rebuilt.Radius())
	}
	for id := range pts {
		a, b := rebuilt.Neighbors(id, 0.12), fresh.Neighbors(id, 0.12)
		if len(a) != len(b) {
			t.Fatalf("id=%d: rebuilt %d neighbours, fresh %d", id, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("id=%d neighbour %d: rebuilt %+v, fresh %+v", id, i, a[i], b[i])
			}
		}
	}
}

// TestGraphEngineBuildCostOnCounter: construction leaves its cost on the
// access counter (like BuildTreeEngine) and ResetAccesses clears it.
func TestGraphEngineBuildCostOnCounter(t *testing.T) {
	pts := randomPoints(200, 2, 94)
	g := graphEngine(t, pts, object.Euclidean{}, 0.1, 2)
	if g.Accesses() == 0 {
		t.Fatal("build charged nothing")
	}
	g.ResetAccesses()
	if g.Accesses() != 0 {
		t.Fatal("reset failed")
	}
	g.Neighbors(0, 0.1)
	if g.Accesses() == 0 {
		t.Fatal("graph lookup charged nothing")
	}
}

// TestGraphEngineInvalidRadius: NaN/negative/infinite build radii are
// rejected.
func TestGraphEngineInvalidRadius(t *testing.T) {
	pts := randomPoints(10, 2, 95)
	for _, r := range []float64{-0.1, math.NaN(), math.Inf(1)} {
		if _, err := BuildParallelGraphEngine(pts, object.Euclidean{}, r, 2); err == nil {
			t.Fatalf("radius %g accepted", r)
		}
	}
}
