package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/discdiversity/disc/internal/baseline"
	"github.com/discdiversity/disc/internal/graph"
	"github.com/discdiversity/disc/internal/object"
)

// TestTheorem1Bound: any r-DisC diverse subset is at most B times larger
// than a minimum one, where B is the maximum number of independent
// neighbours of any object. Verified exactly on small instances.
func TestTheorem1Bound(t *testing.T) {
	m := object.Euclidean{}
	for seed := uint64(0); seed < 8; seed++ {
		pts := randomPoints(16, 2, seed+100)
		r := 0.25
		g := graph.Build(pts, m, r)
		optimal := g.MinIndependentDominatingSet()
		b := g.MaxIndependentNeighbors()
		if b == 0 {
			b = 1
		}
		e := flatEngine(t, pts, m)
		for name, alg := range discAlgorithms() {
			s := alg(e, r)
			if s.Size() > b*len(optimal) {
				t.Errorf("seed %d %s: |S|=%d exceeds B*|S*|=%d*%d", seed, name, s.Size(), b, len(optimal))
			}
			if s.Size() < len(optimal) {
				t.Errorf("seed %d %s: |S|=%d below optimal %d — optimum or verifier broken", seed, name, s.Size(), len(optimal))
			}
		}
	}
}

// TestLemma2EuclideanIndependentNeighbors: in 2-d Euclidean space an
// object has at most 5 pairwise-independent neighbours. We try hard to
// construct more via dense random packings and confirm the bound holds.
func TestLemma2EuclideanIndependentNeighbors(t *testing.T) {
	m := object.Euclidean{}
	r := 0.5
	rng := rand.New(rand.NewPCG(7, 11))
	worst := 0
	for trial := 0; trial < 400; trial++ {
		center := object.Point{0, 0}
		// Sample candidate neighbours in the r-disk around the centre.
		var cands []object.Point
		for len(cands) < 40 {
			p := object.Point{rng.Float64()*2*r - r, rng.Float64()*2*r - r}
			if m.Dist(center, p) <= r {
				cands = append(cands, p)
			}
		}
		if got := greedyIndependent(cands, m, r); got > worst {
			worst = got
		}
	}
	if worst > 5 {
		t.Errorf("found %d independent Euclidean neighbours, Lemma 2 bounds it by 5", worst)
	}
	if worst < 4 {
		t.Errorf("packing search too weak: only %d independent neighbours found", worst)
	}
}

// TestLemma3ManhattanIndependentNeighbors: at most 7 independent
// neighbours under the Manhattan metric in 2-d.
func TestLemma3ManhattanIndependentNeighbors(t *testing.T) {
	m := object.Manhattan{}
	r := 0.5
	rng := rand.New(rand.NewPCG(13, 17))
	worst := 0
	for trial := 0; trial < 400; trial++ {
		center := object.Point{0, 0}
		var cands []object.Point
		for len(cands) < 50 {
			p := object.Point{rng.Float64()*2*r - r, rng.Float64()*2*r - r}
			if m.Dist(center, p) <= r {
				cands = append(cands, p)
			}
		}
		if got := greedyIndependent(cands, m, r); got > worst {
			worst = got
		}
	}
	if worst > 7 {
		t.Errorf("found %d independent Manhattan neighbours, Lemma 3 bounds it by 7", worst)
	}
}

// greedyIndependent greedily packs candidates at pairwise distance > r and
// returns the packing size (a lower bound on the max independent subset).
func greedyIndependent(cands []object.Point, m object.Metric, r float64) int {
	var chosen []object.Point
	for _, c := range cands {
		ok := true
		for _, x := range chosen {
			if m.Dist(c, x) <= r {
				ok = false
				break
			}
		}
		if ok {
			chosen = append(chosen, c)
		}
	}
	return len(chosen)
}

// TestTheorem2GreedyCBound: the r-C subset produced by Greedy-C is at most
// ln Δ (+1 for the tiny-Δ regime, per H(Δ+1)) times the minimum r-DisC
// diverse subset.
func TestTheorem2GreedyCBound(t *testing.T) {
	m := object.Euclidean{}
	for seed := uint64(0); seed < 8; seed++ {
		pts := randomPoints(18, 2, seed+200)
		r := 0.22
		g := graph.Build(pts, m, r)
		optimal := g.MinIndependentDominatingSet()
		delta := g.MaxDegree()
		// H(Δ+1) bound from the paper's proof.
		bound := harmonic(delta+1) * float64(len(optimal))
		e := flatEngine(t, pts, m)
		s := GreedyC(e, r)
		if float64(s.Size()) > bound+1e-9 {
			t.Errorf("seed %d: Greedy-C size %d exceeds H(Δ+1)|S*| = %.2f", seed, s.Size(), bound)
		}
	}
}

func harmonic(n int) float64 {
	var h float64
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}

// TestLemma4NIBound: the number of objects within r2 of p that are
// pairwise independent at r1 is bounded by 9*ceil(log_phi(r2/r1)) for
// Euclidean 2-d and 4*sum(2i+1) for Manhattan.
func TestLemma4NIBound(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 29))
	r1, r2 := 0.1, 0.35
	center := object.Point{0.5, 0.5}

	check := func(m object.Metric, bound int, name string) {
		worst := 0
		for trial := 0; trial < 200; trial++ {
			var cands []object.Point
			for len(cands) < 60 {
				p := object.Point{rng.Float64(), rng.Float64()}
				if m.Dist(center, p) <= r2 {
					cands = append(cands, p)
				}
			}
			if got := greedyIndependent(cands, m, r1); got > worst {
				worst = got
			}
		}
		if worst > bound {
			t.Errorf("%s: packed %d independent objects, Lemma 4 bound %d", name, worst, bound)
		}
	}

	beta := (1 + math.Sqrt(5)) / 2
	euclideanBound := 9 * int(math.Ceil(math.Log(r2/r1)/math.Log(beta)))
	check(object.Euclidean{}, euclideanBound, "euclidean")

	gamma := int(math.Ceil((r2 - r1) / r1))
	manhattanBound := 0
	for i := 1; i <= gamma; i++ {
		manhattanBound += 4 * (2*i + 1)
	}
	check(object.Manhattan{}, manhattanBound, "manhattan")
}

// TestLemma5ZoomInSizeBound: |S^r'| ≤ NI_{r',r} * |S^r| — we use the
// generous analytic Euclidean bound and confirm zoom-in stays within it.
func TestLemma5ZoomInSizeBound(t *testing.T) {
	pts := randomPoints(600, 2, 9)
	m := object.Euclidean{}
	e := flatEngine(t, pts, m)
	r, rp := 0.12, 0.06
	prev := GreedyDisC(e, r, GreedyOptions{Update: UpdateGrey})
	zoomed, err := ZoomIn(e, prev, rp, false, false)
	if err != nil {
		t.Fatal(err)
	}
	beta := (1 + math.Sqrt(5)) / 2
	ni := 9 * int(math.Ceil(math.Log(r/rp)/math.Log(beta)))
	// Lemma 5(ii): |S^r'| ≤ NI * |S^r| (+|S^r| for the kept objects).
	if zoomed.Size() > (ni+1)*prev.Size() {
		t.Errorf("zoom-in size %d exceeds (NI+1)*|S^r| = %d", zoomed.Size(), (ni+1)*prev.Size())
	}
}

// TestLemma7MaxMinQuality: the optimal MaxMin fmin for k=|S| is at most
// 3x the fmin achieved by a DisC diverse subset of size |S|.
func TestLemma7MaxMinQuality(t *testing.T) {
	m := object.Euclidean{}
	for seed := uint64(0); seed < 6; seed++ {
		pts := randomPoints(14, 2, seed+300)
		r := 0.3
		e := flatEngine(t, pts, m)
		s := GreedyDisC(e, r, GreedyOptions{Update: UpdateGrey})
		k := s.Size()
		if k < 2 {
			continue
		}
		lambda := baseline.FMin(pts, m, s.IDs)
		_, lambdaOpt := graph.OptimalMaxMin(pts, m, k)
		if lambdaOpt > 3*lambda+1e-9 {
			t.Errorf("seed %d: optimal fmin %g exceeds 3x DisC fmin %g", seed, lambdaOpt, lambda)
		}
		// DisC guarantees fmin > r by construction.
		if lambda <= r {
			t.Errorf("seed %d: DisC fmin %g not above r=%g", seed, lambda, r)
		}
	}
}

// TestRadiusExtremes: radius covering everything selects one object;
// radius zero (on distinct points) selects everything.
func TestRadiusExtremes(t *testing.T) {
	pts := randomPoints(60, 2, 77)
	m := object.Euclidean{}
	e := flatEngine(t, pts, m)
	diam := object.MaxPairwiseDist(pts, m)
	one := GreedyDisC(e, diam, GreedyOptions{Update: UpdateGrey})
	if one.Size() != 1 {
		t.Errorf("radius=diameter selected %d objects", one.Size())
	}
	all := BasicDisC(e, 0, false)
	if all.Size() != len(pts) {
		t.Errorf("radius=0 selected %d objects, want all %d", all.Size(), len(pts))
	}
}
