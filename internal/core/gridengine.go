package core

import (
	"fmt"

	"github.com/discdiversity/disc/internal/bitset"
	"github.com/discdiversity/disc/internal/grid"
	"github.com/discdiversity/disc/internal/object"
)

// GridEngine answers neighbourhood queries from a uniform-grid spatial
// hash (internal/grid): a query scans only the cells a radius can reach
// — the ±1 ring for radii up to the bucketing radius — and verifies
// candidates with the compiled kernel, so results are bit-identical to
// the flat scan at a fraction of its cost. There is no per-radius build
// beyond the O(n) counting-sort bucketing, which makes the grid the
// cheapest index to (re)construct; radii above the bucketing radius stay
// exact by scanning proportionally more cell rings (see EnsureRadius for
// re-bucketing coarser).
//
// The grid prunes on per-coordinate differences and therefore requires a
// metric whose distance dominates every coordinate gap (Euclidean,
// Manhattan, Chebyshev — see grid.Supports). The access counter charges
// one unit per candidate examined, mirroring the flat engine; the
// paper's pruning rule (CoverageEngine) skips fully covered cells via
// per-cell white counts, analogously to grey subtree pruning.
type GridEngine struct {
	grid    *grid.Grid
	scratch *grid.Scratch

	accesses int64
	tracking bool
	white    bitset.Set
	// cellWhite[c] counts the still-white points bucketed in cell c;
	// NeighborsWhite skips cells at zero without examining their points.
	cellWhite []int32
}

var (
	_ Engine         = (*GridEngine)(nil)
	_ CoverageEngine = (*GridEngine)(nil)
)

// BuildGridEngine buckets pts for query radius r. The coordinates are
// copied into flat storage; later mutation of pts does not affect the
// engine.
func BuildGridEngine(pts []object.Point, m object.Metric, r float64) (*GridEngine, error) {
	flat, err := object.Flatten(pts, m)
	if err != nil {
		return nil, fmt.Errorf("core: grid engine: %w", err)
	}
	return newGridEngine(flat, r)
}

// BuildGridEngineOn buckets an existing flat dataset (of either
// precision) for query radius r without copying coordinates; a Float32
// dataset's pre-filter then accelerates the cell scans.
func BuildGridEngineOn(flat *object.FlatDataset, r float64) (*GridEngine, error) {
	return newGridEngine(flat, r)
}

func newGridEngine(flat *object.FlatDataset, r float64) (*GridEngine, error) {
	g, err := grid.Build(flat, r)
	if err != nil {
		return nil, fmt.Errorf("core: grid engine: %w", err)
	}
	return &GridEngine{grid: g, scratch: grid.NewScratch(flat.Dim())}, nil
}

// Grid exposes the underlying spatial hash.
func (e *GridEngine) Grid() *grid.Grid { return e.grid }

// Radius returns the radius the grid was bucketed for.
func (e *GridEngine) Radius() float64 { return e.grid.Radius() }

// EnsureRadius re-buckets the grid when the current cell side no longer
// suits r: when r exceeds what one ring covers (the zoom-out direction)
// and also when r falls far below the cell side, where every query
// would scan a ±1 ring holding mostly non-neighbours (see grid.Suits —
// a halved radius still reuses the occupancy, the canonical zoom-in).
// The bucketing radius itself always short-circuits: on sparse data the
// cell-count cap can coarsen cells beyond Suits' 2r bound, and
// re-bucketing would only reproduce the same grid on every selection.
// Coverage state, when active, carries over.
func (e *GridEngine) EnsureRadius(r float64) error {
	if r == e.grid.Radius() || e.grid.Suits(r) {
		return nil
	}
	g, err := grid.Build(e.grid.Flat(), r)
	if err != nil {
		return fmt.Errorf("core: grid engine: %w", err)
	}
	e.grid = g
	if e.tracking {
		e.recountCellWhite()
	}
	return nil
}

// recountCellWhite rebuilds the per-cell white counters from the white
// bitset (after StartCoverage or a re-bucketing).
func (e *GridEngine) recountCellWhite() {
	n := e.grid.Flat().Len()
	if cap(e.cellWhite) < e.grid.Cells() {
		e.cellWhite = make([]int32, e.grid.Cells())
	} else {
		e.cellWhite = e.cellWhite[:e.grid.Cells()]
		for i := range e.cellWhite {
			e.cellWhite[i] = 0
		}
	}
	for id := 0; id < n; id++ {
		if e.white.Test(id) {
			e.cellWhite[e.grid.CellOf(id)]++
		}
	}
}

// Size implements Engine.
func (e *GridEngine) Size() int { return e.grid.Flat().Len() }

// Metric implements Engine.
func (e *GridEngine) Metric() object.Metric { return e.grid.Flat().Metric() }

// Point implements Engine.
func (e *GridEngine) Point(id int) object.Point { return e.grid.Flat().Point(id) }

// Neighbors implements Engine.
func (e *GridEngine) Neighbors(id int, r float64) []object.Neighbor {
	return e.NeighborsAppend(nil, id, r)
}

// NeighborsAppend implements Engine via the cell-range scan.
func (e *GridEngine) NeighborsAppend(dst []object.Neighbor, id int, r float64) []object.Neighbor {
	return e.grid.AppendRange(dst, e.grid.Flat().Row(id), r, id, &e.accesses, e.scratch)
}

// NeighborsOfPoint implements Engine; queries outside the bounding box
// are handled by the scan's clamped cell range.
func (e *GridEngine) NeighborsOfPoint(q object.Point, r float64) []object.Neighbor {
	return e.grid.AppendRange(nil, q, r, -1, &e.accesses, e.scratch)
}

// ScanOrder implements Engine: cell order, which is locality-preserving
// by construction (points of one cell are within a cell side of each
// other).
func (e *GridEngine) ScanOrder() []int { return e.grid.ScanOrder() }

// Accesses implements Engine.
func (e *GridEngine) Accesses() int64 { return e.accesses }

// ResetAccesses implements Engine.
func (e *GridEngine) ResetAccesses() { e.accesses = 0 }

// StartCoverage implements CoverageEngine.
func (e *GridEngine) StartCoverage(white []bool) {
	if white == nil {
		e.white.Reset(e.Size())
		e.white.Fill()
	} else {
		e.white.CopyBools(white)
	}
	e.tracking = true
	e.recountCellWhite()
}

// Cover implements CoverageEngine.
func (e *GridEngine) Cover(id int) {
	if e.tracking && e.white.Test(id) {
		e.white.Clear(id)
		e.cellWhite[e.grid.CellOf(id)]--
	}
}

// IsWhite implements CoverageEngine.
func (e *GridEngine) IsWhite(id int) bool { return e.tracking && e.white.Test(id) }

// NeighborsWhite implements CoverageEngine.
func (e *GridEngine) NeighborsWhite(id int, r float64) []object.Neighbor {
	return e.NeighborsWhiteAppend(nil, id, r)
}

// NeighborsWhiteAppend implements CoverageEngine via the white-filtered
// cell scan: covered objects are neither examined nor charged, and
// cells whose white count hit zero are skipped whole — the grid's
// version of the paper's grey-subtree pruning.
func (e *GridEngine) NeighborsWhiteAppend(dst []object.Neighbor, id int, r float64) []object.Neighbor {
	if !e.tracking {
		panic("core: NeighborsWhite without StartCoverage")
	}
	return e.grid.AppendRangeWhite(dst, e.grid.Flat().Row(id), r, id, &e.white, e.cellWhite, &e.accesses, e.scratch)
}

// Components implements CoverageEngine by breadth-first traversal over
// the cell-range scans (one per object). The grid holds no adjacency, so
// unlike the coverage-graph engine nothing is cached: each call repeats
// the traversal at the requested radius.
func (e *GridEngine) Components(r float64) *grid.Components {
	return componentsViaQueries(e, r)
}
