package core

import (
	"runtime"
	"sync"
	"time"

	"github.com/discdiversity/disc/internal/bitset"
	"github.com/discdiversity/disc/internal/grid"
	"github.com/discdiversity/disc/internal/telemetry"
)

// GreedyDisCComponents is Greedy-DisC decomposed over the connected
// components of the r-coverage graph. A dominating set of a
// disconnected graph is exactly the union of dominating sets of its
// components, and the greedy choice inside one component is a function
// of that component's state alone, so running the pruned greedy
// per-component selects exactly the objects the global run would —
// what changes is the cost profile: each component runs against a
// component-sized heap and a component-confined white set instead of
// the n-sized structures of the global run, singleton components
// short-circuit to "pick it", and two-member components resolve in
// O(1). Independent components execute on a pool of workers (<= 0
// selects GOMAXPROCS), chunked by adjacency mass so skewed component
// sizes still balance; the chunks are contiguous component ranges and
// components are numbered by ascending minimum member id, so the merged
// output is bit-identical for every worker count.
//
// The selection operates on the exact r-adjacency in CSR form: the
// coverage-graph engine serves its materialised graph directly (and its
// cached decomposition, possibly loaded from a snapshot); every other
// engine pays one range query per object to materialise the adjacency
// first — the cost of the count-initialisation pass a global run issues
// anyway. Solutions carry exact DistBlack entries (full adjacency rows
// are walked, so every closest-black distance is observed — pruned
// global runs only bound them), and Accesses mirrors the global pruned
// run's accounting: one unit per adjacency entry examined, at least one
// per query.
//
// UpdateGrey and UpdateLazyGrey run natively. UpdateWhite maintains the
// same exact counts through grey-side decrements (the recount a 2r
// candidate query feeds equals the decremented count — see
// updateWhiteCounts — so selections are identical; only the access
// profile differs). UpdateLazyWhite's 1.5r candidate queries cannot be
// answered from the materialised r-adjacency, so it falls back to the
// sequential global path, as does a dataset whose adjacency would
// overflow the CSR's int32 offset domain.
func GreedyDisCComponents(e Engine, r float64, opts GreedyOptions, workers int) *Solution {
	if opts.Update == UpdateLazyWhite {
		return GreedyDisC(e, r, opts)
	}
	n := e.Size()
	start := e.Accesses()

	var csr *grid.CSR
	var comp *grid.Components
	if src, ok := e.(adjacencySource); ok {
		if c, have := src.AdjacencyCSR(r); have {
			csr = c
			if cov, ok := e.(CoverageEngine); ok {
				comp = cov.Components(r) // cached on the graph engine
			}
		}
	}
	if csr == nil {
		var ok bool
		csr, ok = materializeAdjacency(e, r)
		if !ok {
			return GreedyDisC(e, r, opts)
		}
	}
	// From here on the run is genuinely component-decomposed; fallback
	// runs above land in the mode="global" series via GreedyDisC.
	defer telemetry.Since(metSelectComponents, time.Now())
	if comp == nil {
		comp = grid.ComponentsOfCSR(csr, n, r)
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > comp.Count {
		workers = comp.Count
	}
	updR := r
	if opts.Update == UpdateLazyGrey {
		updR = r / 2
	}
	s := newSolution(n, r, greedyName(opts, true))

	bounds := chunkComponents(comp, csr, workers)
	chunks := len(bounds) - 1
	ids := make([][]int, chunks)
	accs := make([]int64, chunks)
	if chunks == 1 {
		ids[0], accs[0] = runComponentRange(csr, comp, 0, comp.Count, updR, s, newComponentScratch(n), nil)
	} else {
		// Workers write only their own chunk slots and the solution
		// entries of their own components' members — disjoint index
		// sets, so the merge below is the only synchronisation point.
		var wg sync.WaitGroup
		for w := 0; w < chunks; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ids[w], accs[w] = runComponentRange(csr, comp, bounds[w], bounds[w+1], updR, s, newComponentScratch(n), nil)
			}(w)
		}
		wg.Wait()
	}

	total := 0
	for _, l := range ids {
		total += len(l)
	}
	s.IDs = make([]int, 0, total)
	var acc int64
	for w := range ids {
		s.IDs = append(s.IDs, ids[w]...)
		acc += accs[w]
	}
	s.DistBlackExact = true
	s.Accesses = (e.Accesses() - start) + acc
	return s
}

// chunkComponents splits [0, comp.Count) into at most workers contiguous
// ranges of roughly equal adjacency mass (the sum of member degrees,
// with singletons counting one) — degree mass, not member count, is
// what drives per-component greedy cost, so skewed decompositions (one
// giant cluster plus thousands of singletons) still balance.
func chunkComponents(comp *grid.Components, csr *grid.CSR, workers int) []int {
	var total int64
	mass := make([]int64, comp.Count)
	for c := 0; c < comp.Count; c++ {
		var m int64
		for _, id := range comp.MemberIDs(c) {
			m += int64(csr.Degree(int(id)))
		}
		if m == 0 {
			m = 1
		}
		mass[c] = m
		total += m
	}
	bounds := make([]int, 1, workers+1)
	target := (total + int64(workers) - 1) / int64(workers)
	next := target
	var run int64
	for c := 0; c < comp.Count && len(bounds) < workers; c++ {
		run += mass[c]
		if run >= next {
			bounds = append(bounds, c+1)
			next = run + target
		}
	}
	if bounds[len(bounds)-1] != comp.Count {
		bounds = append(bounds, comp.Count)
	}
	return bounds
}

// componentScratch is one worker's reusable state. Every structure is
// sized once for the full id domain and reused across the worker's
// components, so the steady-state per-component loop allocates nothing:
// the white bits of a finished component are all cleared by its own run
// (every member ends covered), the heap drains itself, and count
// entries are rewritten before they are read.
type componentScratch struct {
	white bitset.Set
	heap  *lazyHeap
	nw    []int32
	grey  []int32
}

func newComponentScratch(n int) *componentScratch {
	sc := &componentScratch{
		nw:   make([]int32, n),
		heap: newLazyHeap(64),
	}
	sc.white.Reset(n)
	return sc
}

// runComponentRange processes components [lo, hi) in ascending order,
// writing colors and closest-black distances straight into the shared
// solution (each id belongs to exactly one component, so workers touch
// disjoint entries) and returning the selected ids — appended to the
// caller-owned ids buffer in selection order — plus the
// entries-examined access count.
func runComponentRange(csr *grid.CSR, comp *grid.Components, lo, hi int, updR float64, s *Solution, sc *componentScratch, ids []int) ([]int, int64) {
	var acc int64
	for c := lo; c < hi; c++ {
		members := comp.MemberIDs(c)
		switch len(members) {
		case 1:
			// A singleton covers itself; a global run would pop it and
			// issue one empty white-neighbourhood query (charged one).
			id := int(members[0])
			s.Colors[id] = Black
			s.DistBlack[id] = 0
			ids = append(ids, id)
			acc++
		case 2:
			// Both members cover one object; the (count desc, id asc)
			// order picks the smaller id and greys the other. Two
			// one-entry row scans is what the general path would charge.
			u, v := int(members[0]), int(members[1])
			s.Colors[u] = Black
			s.DistBlack[u] = 0
			s.Colors[v] = Grey
			s.DistBlack[v] = csr.Row(u)[0].Dist
			ids = append(ids, u)
			acc += 2
		default:
			ids, acc = greedyComponent(csr, members, updR, s, sc, ids, acc)
		}
	}
	return ids, acc
}

// greedyComponent runs the pruned grey-update greedy confined to one
// component: counts start at the exact degrees (every neighbour of a
// member is a member), the component-local heap pops (count desc, id
// asc), and each selection greys its white neighbours and decrements
// their white neighbours' counts — the grey update of the global
// algorithm, against component-sized state. Count maintenance uses
// deferred invalidation: decrements touch only the count array, and a
// popped entry whose key went stale is re-pushed at its current count
// (see lazyHeap.pop for why that preserves the exact selection order) —
// so the heap sees one push per member plus one per stale pop instead
// of one per decrement, the dominant cost of the global run on dense
// graphs. Rows of a multi-member component are never empty, so the
// charge per scan is len(row), matching the global pruned run's
// one-unit-per-entry accounting exactly.
func greedyComponent(csr *grid.CSR, members []int32, updR float64, s *Solution, sc *componentScratch, ids []int, acc int64) ([]int, int64) {
	h := sc.heap
	for _, id32 := range members {
		id := int(id32)
		sc.white.Set(id)
		deg := csr.Degree(id)
		sc.nw[id] = int32(deg)
		h.push(id, deg)
	}
	for {
		it, ok := h.pop()
		if !ok {
			break
		}
		pi := it.id
		if !sc.white.Test(pi) {
			continue
		}
		if int(sc.nw[pi]) != it.key {
			h.push(pi, int(sc.nw[pi]))
			continue
		}
		sc.white.Clear(pi)
		s.Colors[pi] = Black
		s.DistBlack[pi] = 0
		ids = append(ids, pi)
		row := csr.Row(pi)
		acc += int64(len(row))
		sc.grey = sc.grey[:0]
		for _, nb := range row {
			if sc.white.Test(nb.ID) {
				sc.white.Clear(nb.ID)
				s.Colors[nb.ID] = Grey
				sc.grey = append(sc.grey, int32(nb.ID))
			}
			// Full rows are walked (unlike the white-filtered queries of
			// the global pruned run), so closest-black distances are
			// exact and the solution reports DistBlackExact.
			if nb.Dist < s.DistBlack[nb.ID] {
				s.DistBlack[nb.ID] = nb.Dist
			}
		}
		for _, gj := range sc.grey {
			grow := csr.Row(int(gj))
			acc += int64(len(grow))
			for _, nb := range grow {
				if nb.Dist <= updR && sc.white.Test(nb.ID) {
					sc.nw[nb.ID]--
				}
			}
		}
	}
	return ids, acc
}
