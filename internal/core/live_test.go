package core

import (
	"math/rand/v2"
	"reflect"
	"slices"
	"testing"

	"github.com/discdiversity/disc/internal/grid"
	"github.com/discdiversity/disc/internal/object"
)

// batchReference runs the from-scratch pipeline (grid build, ε-join,
// canonical components, component-decomposed greedy) over a dense
// dataset, returning the structures the incremental path must reproduce.
func batchReference(t *testing.T, flat *object.FlatDataset, r float64) (*grid.CSR, *grid.Components, []int) {
	t.Helper()
	g, err := grid.Build(flat, r)
	if err != nil {
		t.Fatal(err)
	}
	csr, _, err := grid.Join(g, r, 2)
	if err != nil {
		t.Fatal(err)
	}
	comp := grid.ComponentsOfCSR(csr, flat.Len(), r)
	sol := newSolution(flat.Len(), r, "ref")
	ids, _ := runComponentRange(csr, comp, 0, comp.Count, r, sol, newComponentScratch(flat.Len()), nil)
	return csr, comp, ids
}

// assertConverged flushes l and checks full equivalence with the batch
// pipeline over the same live points: bit-identical CSR and canonical
// labels after compaction, sequence-equal ordered selection through the
// monotone remap, and the DisC invariants by direct distance check.
func assertConverged(t *testing.T, l *LiveDisC, r float64) {
	t.Helper()
	l.Flush()
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
	if l.Len() == 0 {
		if l.Size() != 0 {
			t.Fatalf("empty maintainer published %d representatives", l.Size())
		}
		return
	}
	flat, remap, csr, comp, err := l.Compact()
	if err != nil {
		t.Fatal(err)
	}
	refCSR, refComp, refIDs := batchReference(t, flat, r)
	if !reflect.DeepEqual(csr, refCSR) {
		t.Fatal("compacted CSR differs from batch join")
	}
	if !reflect.DeepEqual(comp, refComp) {
		t.Fatal("compacted components differ from canonical labeling")
	}
	got := l.OrderedSelection()
	if len(got) != len(refIDs) {
		t.Fatalf("selection size %d, batch selects %d", len(got), len(refIDs))
	}
	for i, id := range got {
		if int(remap[id]) != refIDs[i] {
			t.Fatalf("selection[%d] = %d (remaps to %d), batch selects %d", i, id, remap[id], refIDs[i])
		}
	}
	// The published ascending view must agree with the ordered one.
	pub := l.Selection()
	if len(pub) != len(got) || l.Size() != len(got) {
		t.Fatalf("published %d/%d ids, converged %d", len(pub), l.Size(), len(got))
	}
	for _, id := range pub {
		if !l.IsRepresentative(id) {
			t.Fatalf("published id %d not a representative", id)
		}
	}
}

func TestLiveDisCMatchesBatchUnderInterleavings(t *testing.T) {
	for _, tc := range []struct {
		dim int
		m   object.Metric
		r   float64
	}{
		{1, object.Euclidean{}, 0.05},
		{2, object.Euclidean{}, 0.12},
		{2, object.Manhattan{}, 0.15},
		{3, object.Chebyshev{}, 0.2},
	} {
		rng := rand.New(rand.NewPCG(11, uint64(tc.dim)))
		l, err := NewLiveDisC(tc.m, tc.r)
		if err != nil {
			t.Fatal(err)
		}
		var live []int
		for step := 0; step < 400; step++ {
			if len(live) == 0 || rng.Float64() < 0.68 {
				p := make(object.Point, tc.dim)
				for i := range p {
					p[i] = rng.Float64()
				}
				id, err := l.Insert(p)
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, id)
			} else {
				k := rng.IntN(len(live))
				if err := l.Delete(live[k]); err != nil {
					t.Fatal(err)
				}
				live = append(live[:k], live[k+1:]...)
			}
			if step%67 == 0 {
				assertConverged(t, l, tc.r)
			}
		}
		assertConverged(t, l, tc.r)
		if l.Len() != len(live) {
			t.Fatalf("live %d, want %d", l.Len(), len(live))
		}

		// Delete-heavy drain: the insert-biased churn above never shrinks
		// the live count, so only this phase reaches the 4x shrink
		// re-bucket inside grid.MutGrid.Remove — the path that must not
		// re-admit the id being deleted.
		for len(live) > 4 {
			k := rng.IntN(len(live))
			if err := l.Delete(live[k]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
			if len(live)%41 == 0 {
				assertConverged(t, l, tc.r)
			}
		}
		assertConverged(t, l, tc.r)
		for id := 0; id < l.Slots(); id++ {
			if l.Alive(id) && !slices.Contains(live, id) {
				t.Fatalf("id %d alive but not tracked", id)
			}
		}
	}
}

func TestLiveDisCSeededMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	pts := make([]object.Point, 600)
	for i := range pts {
		pts[i] = object.Point{rng.Float64(), rng.Float64()}
	}
	flat, err := object.Flatten(pts, object.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	const r = 0.04
	l, err := SeedLiveDisC(flat, r, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The seed itself must already be the batch selection.
	_, _, refIDs := batchReference(t, flat, r)
	if got := l.OrderedSelection(); !reflect.DeepEqual(got, refIDs) {
		t.Fatal("seeded selection differs from batch")
	}
	if l.Pending() != 0 {
		t.Fatalf("seeded maintainer has %d dirty components", l.Pending())
	}
	// Mutations on top of the seed stay equivalent.
	for step := 0; step < 150; step++ {
		if rng.Float64() < 0.5 {
			if _, err := l.Insert(object.Point{rng.Float64(), rng.Float64()}); err != nil {
				t.Fatal(err)
			}
		} else {
			for {
				id := rng.IntN(l.Slots())
				if l.Alive(id) {
					if err := l.Delete(id); err != nil {
						t.Fatal(err)
					}
					break
				}
			}
		}
	}
	assertConverged(t, l, r)
}

func TestLiveDisCStalenessSemantics(t *testing.T) {
	l, err := NewLiveDisC(object.Euclidean{}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := l.Insert(object.Point{0.5, 0.5})
	if l.Pending() != 1 {
		t.Fatalf("pending %d after first insert", l.Pending())
	}
	// Nothing published yet: reads see the pre-mutation (empty) state.
	if l.Size() != 0 || l.IsRepresentative(a) {
		t.Fatal("unflushed insert leaked into the published selection")
	}
	if got := l.Flush(); got != 1 {
		t.Fatalf("flush repaired %d components, want 1", got)
	}
	if l.Size() != 1 || !l.IsRepresentative(a) {
		t.Fatal("flush did not publish the repaired selection")
	}
	// A covered insert keeps the selection but still dirties the
	// component; the stale read persists until the next Flush.
	b, _ := l.Insert(object.Point{0.52, 0.5})
	if !l.IsRepresentative(a) || l.IsRepresentative(b) {
		t.Fatal("published state changed before Flush")
	}
	l.Flush()
	if !l.IsRepresentative(a) || l.IsRepresentative(b) || l.Size() != 1 {
		t.Fatal("covered insert changed the selection")
	}
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
	// Deleting the representative promotes the survivor.
	if err := l.Delete(a); err != nil {
		t.Fatal(err)
	}
	l.Flush()
	if !l.IsRepresentative(b) || l.Size() != 1 {
		t.Fatal("survivor not promoted after representative deletion")
	}
	if err := l.Delete(b); err != nil {
		t.Fatal(err)
	}
	l.Flush()
	if l.Size() != 0 || l.Len() != 0 {
		t.Fatal("emptied maintainer still publishes state")
	}
	if err := l.Delete(b); err == nil {
		t.Fatal("double delete accepted")
	}
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
}
