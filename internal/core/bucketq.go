package core

import "slices"

// bucketQueue is an order-equivalent replacement for lazyHeap on the
// repair path, exploiting two properties of the pruned component
// greedy: keys (white-neighbour counts) are small non-negative integers
// that only ever decrease, and the pop order is (key desc, id asc) with
// deferred invalidation — a stale pop re-enters at its current, strictly
// lower key. Under that protocol a bucket never receives an element at
// or above the bucket currently draining, so every bucket's membership
// is complete before its first pop: sorting it once at drain start
// reproduces the heap's global (key desc, id asc) order exactly, with
// O(1) pushes instead of O(log n) sift operations.
//
// The zero value is ready to use; a drained queue is empty and can be
// refilled, retaining its bucket storage across repairs.
type bucketQueue struct {
	buckets [][]int32
	// unsorted marks buckets whose appends broke ascending id order;
	// the common case — the initial fill pushes members ascending —
	// needs no sort at all.
	unsorted []bool
	// cur is the bucket currently draining (-1 before start/after
	// exhaustion), head the drain position within it.
	cur    int
	head   int
	maxKey int
}

// push adds id at key. Before start, any key is accepted; during a
// drain the protocol guarantees key < cur (stale re-entries only).
func (q *bucketQueue) push(id int32, key int) {
	for key >= len(q.buckets) {
		q.buckets = append(q.buckets, nil)
		q.unsorted = append(q.unsorted, false)
	}
	b := q.buckets[key]
	if n := len(b); n > 0 && b[n-1] > id {
		q.unsorted[key] = true
	}
	q.buckets[key] = append(b, id)
	if key > q.maxKey {
		q.maxKey = key
	}
}

// sortBucket orders bucket k for draining, if its appends require it.
func (q *bucketQueue) sortBucket(k int) {
	if k >= 0 && k < len(q.buckets) && q.unsorted[k] {
		slices.Sort(q.buckets[k])
		q.unsorted[k] = false
	}
}

// start begins draining after the initial fill.
func (q *bucketQueue) start() {
	q.cur = q.maxKey
	q.head = 0
	q.sortBucket(q.cur)
}

// pop returns the (max key, min id) element under the deferred-
// invalidation protocol, or ok=false when the queue is exhausted (which
// also resets it for the next fill).
func (q *bucketQueue) pop() (id int32, key int, ok bool) {
	for q.cur >= 0 {
		if q.cur < len(q.buckets) {
			b := q.buckets[q.cur]
			if q.head < len(b) {
				id = b[q.head]
				q.head++
				return id, q.cur, true
			}
			q.buckets[q.cur] = b[:0]
		}
		q.cur--
		q.head = 0
		q.sortBucket(q.cur)
	}
	q.maxKey = 0
	q.cur = -1
	return 0, 0, false
}
