package core

import (
	"fmt"
	"math"

	"github.com/discdiversity/disc/internal/mtree"
	"github.com/discdiversity/disc/internal/object"
)

// OnlineDisC maintains an r-DisC diverse subset of a stream of objects —
// the "online version of the problem" the paper names as future work
// (Section 8). Objects arrive one at a time and may later be retracted;
// after every operation the selected set is a valid r-DisC diverse subset
// of the live objects:
//
//   - Add: a newcomer covered by an existing representative turns grey;
//     otherwise it becomes a representative itself. This preserves both
//     maximality (nothing coverable is left white) and independence (a
//     newcomer is promoted only when no representative is within r).
//   - Remove: retracting a grey object changes nothing. Retracting a
//     representative orphans the objects it covered; orphans are
//     re-covered in arrival order, promoting those still uncovered.
//
// The structure is backed by a growing M-tree, so each operation costs a
// constant number of range queries.
type OnlineDisC struct {
	metric  object.Metric
	r       float64
	tree    *mtree.Tree
	colors  []Color
	deleted []bool
	// closest[id] is the representative covering id (itself for
	// representatives, -1 while uncovered/deleted).
	closest []int
	// distBlack[id] is the distance to closest[id].
	distBlack []float64
	reps      int
	live      int
}

// NewOnlineDisC creates an empty online maintainer for radius r.
// Capacity is the M-tree node capacity (minimum 4; the paper's default
// is 50).
func NewOnlineDisC(m object.Metric, r float64, capacity int) (*OnlineDisC, error) {
	if m == nil {
		return nil, fmt.Errorf("core: online: nil metric")
	}
	if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return nil, fmt.Errorf("core: online: invalid radius %g", r)
	}
	tree, err := mtree.New(mtree.Config{Capacity: capacity, Metric: m, Policy: mtree.MinOverlap}, nil)
	if err != nil {
		return nil, err
	}
	return &OnlineDisC{metric: m, r: r, tree: tree}, nil
}

// Radius returns the maintained radius.
func (o *OnlineDisC) Radius() float64 { return o.r }

// Len returns the number of live (non-retracted) objects.
func (o *OnlineDisC) Len() int { return o.live }

// Size returns the number of current representatives.
func (o *OnlineDisC) Size() int { return o.reps }

// Point returns the coordinates of object id.
func (o *OnlineDisC) Point(id int) object.Point { return o.tree.Point(id) }

// Accesses returns cumulative M-tree node accesses.
func (o *OnlineDisC) Accesses() int64 { return o.tree.Accesses() }

// Add indexes a new object and reports its assigned id and whether it was
// promoted to a representative.
func (o *OnlineDisC) Add(p object.Point) (id int, selected bool, err error) {
	id, err = o.tree.Add(p)
	if err != nil {
		return 0, false, err
	}
	o.colors = append(o.colors, White)
	o.deleted = append(o.deleted, false)
	o.closest = append(o.closest, -1)
	o.distBlack = append(o.distBlack, math.Inf(1))
	o.live++

	bestRep, bestDist := -1, math.Inf(1)
	for _, nb := range o.tree.RangeQueryAround(id, o.r) {
		if o.deleted[nb.ID] || o.colors[nb.ID] != Black {
			continue
		}
		if nb.Dist < bestDist {
			bestRep, bestDist = nb.ID, nb.Dist
		}
	}
	if bestRep >= 0 {
		o.colors[id] = Grey
		o.closest[id] = bestRep
		o.distBlack[id] = bestDist
		return id, false, nil
	}
	o.promote(id)
	return id, true, nil
}

// promote makes id a representative and re-points nearby covered objects
// that are closer to it than to their current representative.
func (o *OnlineDisC) promote(id int) {
	o.colors[id] = Black
	o.closest[id] = id
	o.distBlack[id] = 0
	o.reps++
	for _, nb := range o.tree.RangeQueryAround(id, o.r) {
		if o.deleted[nb.ID] || o.colors[nb.ID] == Black {
			continue
		}
		if nb.Dist < o.distBlack[nb.ID] {
			o.colors[nb.ID] = Grey
			o.closest[nb.ID] = id
			o.distBlack[nb.ID] = nb.Dist
		}
	}
}

// Remove retracts object id from the stream. Retracting a representative
// triggers local repair: objects it covered are re-assigned to another
// representative within r when one exists and promoted otherwise.
func (o *OnlineDisC) Remove(id int) error {
	if id < 0 || id >= len(o.colors) {
		return fmt.Errorf("core: online: id %d out of range", id)
	}
	if o.deleted[id] {
		return fmt.Errorf("core: online: object %d already removed", id)
	}
	o.deleted[id] = true
	o.live--
	wasBlack := o.colors[id] == Black
	o.colors[id] = Grey
	o.closest[id] = -1
	o.distBlack[id] = math.Inf(1)
	if !wasBlack {
		return nil
	}
	o.reps--

	// Orphans: live objects that were covered by id.
	var orphans []int
	for _, nb := range o.tree.RangeQueryAround(id, o.r) {
		if o.deleted[nb.ID] || o.colors[nb.ID] == Black {
			continue
		}
		if o.closest[nb.ID] == id {
			orphans = append(orphans, nb.ID)
		}
	}
	// Re-cover orphans in arrival (id) order: reattach to a surviving
	// representative when possible, promote otherwise. Promotion may
	// cover later orphans, so reattachment is re-checked as we go.
	for _, q := range orphans {
		bestRep, bestDist := -1, math.Inf(1)
		for _, nb := range o.tree.RangeQueryAround(q, o.r) {
			if o.deleted[nb.ID] || o.colors[nb.ID] != Black {
				continue
			}
			if nb.Dist < bestDist {
				bestRep, bestDist = nb.ID, nb.Dist
			}
		}
		if bestRep >= 0 {
			o.closest[q] = bestRep
			o.distBlack[q] = bestDist
			continue
		}
		o.promote(q)
	}
	return nil
}

// Deleted reports whether id has been retracted.
func (o *OnlineDisC) Deleted(id int) bool {
	return id >= 0 && id < len(o.deleted) && o.deleted[id]
}

// IsRepresentative reports whether live object id is currently selected.
func (o *OnlineDisC) IsRepresentative(id int) bool {
	return id >= 0 && id < len(o.colors) && !o.deleted[id] && o.colors[id] == Black
}

// Representatives returns the current representative ids in ascending
// order.
func (o *OnlineDisC) Representatives() []int {
	ids := make([]int, 0, o.reps)
	for id, c := range o.colors {
		if c == Black && !o.deleted[id] {
			ids = append(ids, id)
		}
	}
	return ids
}

// Verify checks the DisC invariants over the live objects by direct
// distance computation. Intended for tests and debugging.
func (o *OnlineDisC) Verify() error {
	var pts []object.Point
	var idx []int
	for id := 0; id < len(o.colors); id++ {
		if !o.deleted[id] {
			pts = append(pts, o.tree.Point(id))
			idx = append(idx, id)
		}
	}
	back := make(map[int]int, len(idx))
	for i, id := range idx {
		back[id] = i
	}
	var sel []int
	for _, id := range o.Representatives() {
		sel = append(sel, back[id])
	}
	if len(pts) == 0 {
		if len(sel) != 0 {
			return fmt.Errorf("core: online: representatives without live objects")
		}
		return nil
	}
	return CheckDisC(pts, o.metric, sel, o.r)
}
