package core

// Benchmarks for the coverage-graph build pipeline at the repo's
// canonical 50k-point workload (see BENCH_PR3.json): the full engine
// build and its three phases — R-tree packing, grid bucketing and the
// cell-pair ε-join. Single-worker, so numbers are comparable across
// machines regardless of core count.

import (
	"testing"

	"github.com/discdiversity/disc/internal/dataset"
	"github.com/discdiversity/disc/internal/grid"
	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/rtree"
)

func BenchmarkGraphBuild50k(b *testing.B) {
	ds, _ := dataset.Clustered(50000, 2, 0, 42)
	m := object.Euclidean{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := BuildParallelGraphEngine(ds.Points, m, 0.0025, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRTreeBuild50k(b *testing.B) {
	ds, _ := dataset.Clustered(50000, 2, 0, 42)
	m := object.Euclidean{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := rtree.Build(ds.Points, m, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridBucket50k(b *testing.B) {
	ds, _ := dataset.Clustered(50000, 2, 0, 42)
	m := object.Euclidean{}
	flat, _ := object.Flatten(ds.Points, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := grid.Build(flat, 0.0025)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridJoin50k(b *testing.B) {
	ds, _ := dataset.Clustered(50000, 2, 0, 42)
	m := object.Euclidean{}
	flat, _ := object.Flatten(ds.Points, m)
	g, _ := grid.Build(flat, 0.0025)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := grid.Join(g, 0.0025, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
}
