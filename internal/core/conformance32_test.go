package core

import (
	"math"
	"testing"

	"github.com/discdiversity/disc/internal/mtree"
	"github.com/discdiversity/disc/internal/object"
)

// conformance32_test.go enrolls the PR-7 fast paths in the cross-engine
// conformance suite: Float32 datasets (whose float32 pre-filter must
// never change a selection) and the non-metric embedding distances
// (cosine, dot product), which only the scan-based engines serve.

// allEngines32 builds every engine that can serve metric m over one
// shared Float32 dataset. The metric-tree and box-pruning engines are
// fed the dataset's float64 view (the rounded coordinates), so every
// engine answers over identical values; the flat, grid and graph
// engines additionally run the float32 pre-filter. Engines whose
// pruning rules m violates are omitted — for cosine/dot that leaves
// exactly the scan-based pair, mirroring the public API's validation.
func allEngines32(t *testing.T, flat *object.FlatDataset, r float64) map[string]Engine {
	t.Helper()
	m := flat.Metric()
	engines := map[string]Engine{"flat": NewFlatEngineOn(flat)}
	g, err := BuildParallelGraphEngineOn(flat, r, 4)
	if err != nil {
		t.Fatal(err)
	}
	engines["graph"] = g
	if object.TriangleSafe(m) {
		engines["tree"] = treeEngine(t, flat.Points(), m)
		vp, err := BuildVPEngine(flat.Points(), m, 7)
		if err != nil {
			t.Fatal(err)
		}
		engines["vptree"] = vp
	}
	if _, monotone := m.(object.CoordinatewiseMonotone); monotone {
		rt, err := BuildRTreeEngine(flat.Points(), m, 8)
		if err != nil {
			t.Fatal(err)
		}
		engines["rtree"] = rt
	}
	if flat.Dim() <= GraphFlatJoinDim {
		if ge, err := BuildGridEngineOn(flat, r); err == nil {
			engines["grid"] = ge
		}
	}
	return engines
}

// float32Engines builds the engine set over a Float32 flattening of pts.
func float32Engines(t *testing.T, pts []object.Point, m object.Metric, r float64) (*object.FlatDataset, map[string]Engine) {
	t.Helper()
	flat, err := object.Flatten32(pts, m)
	if err != nil {
		t.Fatal(err)
	}
	return flat, allEngines32(t, flat, r)
}

// TestEngineConformanceFloat32Identical: over a Float32 dataset, every
// engine — fast-path or not — must produce the same greedy selection,
// and that selection must equal the one a plain float64 dataset over
// the pre-rounded points produces. This is the end-to-end form of the
// exact-recheck contract: the float32 filter may only discard
// candidates the exact kernel would discard too.
func TestEngineConformanceFloat32Identical(t *testing.T) {
	cases := []struct {
		name string
		dim  int
		m    object.Metric
		r    float64
	}{
		{"euclidean-low", 3, object.Euclidean{}, 0.2},
		{"euclidean-high", 16, object.Euclidean{}, 1.1},
		{"cosine", 7, object.Cosine{}, 0.25},
		{"dot", 7, object.DotProduct{}, 0.4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pts := randomPoints(320, tc.dim, 90)
			flat, engines := float32Engines(t, pts, tc.m, tc.r)

			// Reference: float64 dataset over the rounded coordinates.
			ref64, err := object.Flatten(flat.Points(), tc.m)
			if err != nil {
				t.Fatal(err)
			}
			g64, err := BuildParallelGraphEngineOn(ref64, tc.r, 4)
			if err != nil {
				t.Fatal(err)
			}
			want := GreedyDisC(g64, tc.r, GreedyOptions{Update: UpdateGrey}).SortedIDs()

			for name, e := range engines {
				for _, pruned := range []bool{false, true} {
					got := GreedyDisC(e, tc.r, GreedyOptions{Update: UpdateGrey, Pruned: pruned}).SortedIDs()
					if !equalInts(want, got) {
						t.Errorf("%s(pruned=%v): selection differs from the float64 reference", name, pruned)
					}
				}
				cs := GreedyDisCComponents(e, tc.r, GreedyOptions{Update: UpdateGrey, Pruned: true}, 4)
				if !equalInts(want, cs.SortedIDs()) {
					t.Errorf("%s: component mode differs from the float64 reference", name)
				}
			}
		})
	}
}

// TestEngineConformanceFloat32Neighbors: every engine's neighbour lists
// over a Float32 dataset must match brute force over the rounded
// coordinates with bit-exact distances, at radii below, at, and above
// the graph/grid build radius (the latter exercising each substrate's
// fallback scan, including the flat substrate's whole-dataset scan).
func TestEngineConformanceFloat32Neighbors(t *testing.T) {
	for _, m := range []object.Metric{object.Euclidean{}, object.Cosine{}} {
		pts := randomPoints(250, 13, 91) // > GraphFlatJoinDim: graph flat-joins
		const build = 0.9
		flat, engines := float32Engines(t, pts, m, build)
		rounded := flat.Points()
		for name, e := range engines {
			for _, id := range []int{0, 101, 249} {
				for _, r := range []float64{build / 3, build, 1.5 * build} {
					got := map[int]float64{}
					for _, nb := range e.Neighbors(id, r) {
						got[nb.ID] = nb.Dist
					}
					want := map[int]float64{}
					for j := range rounded {
						if j != id {
							if d := m.Dist(rounded[id], rounded[j]); d <= r {
								want[j] = d
							}
						}
					}
					if len(got) != len(want) {
						t.Fatalf("%s/%s id=%d r=%g: %d neighbours, want %d", m.Name(), name, id, r, len(got), len(want))
					}
					for j, d := range want {
						if got[j] != d {
							t.Fatalf("%s/%s id=%d r=%g: neighbour %d dist %g want %g", m.Name(), name, id, r, j, got[j], d)
						}
					}
				}
			}
		}
	}
}

// unitNormalize scales every point to unit Euclidean norm — the
// pre-normalised embedding workload the dot-product distance is meant
// for. DisC coverage semantics need d(x,x) <= r; for raw vectors
// 1 − ‖x‖² can exceed any radius, so an object might not cover itself,
// which is a property of the distance, not an engine bug.
func unitNormalize(pts []object.Point) []object.Point {
	out := make([]object.Point, len(pts))
	for i, p := range pts {
		var n float64
		for _, v := range p {
			n += v * v
		}
		n = math.Sqrt(n)
		q := make(object.Point, len(p))
		for j, v := range p {
			q[j] = v / n
		}
		out[i] = q
	}
	return out
}

// TestEngineConformanceCosineAlgorithmsValid: every DisC heuristic must
// produce a verifiable solution on the engines that serve the
// non-metric distances, at both precisions.
func TestEngineConformanceCosineAlgorithmsValid(t *testing.T) {
	pts := unitNormalize(randomPoints(200, 5, 92))
	const r = 0.3
	for _, m := range []object.Metric{object.Cosine{}, object.DotProduct{}} {
		flat64, err := object.Flatten(pts, m)
		if err != nil {
			t.Fatal(err)
		}
		flat32, err := object.Flatten32(pts, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, flat := range []*object.FlatDataset{flat64, flat32} {
			for name, e := range allEngines32(t, flat, r) {
				for alg, run := range discAlgorithms() {
					s := run(e, r)
					if err := VerifySolution(e, s); err != nil {
						t.Errorf("%s/%s/%s/%s: %v", m.Name(), flat.Precision(), name, alg, err)
					}
				}
			}
		}
	}
}

// TestTreeEnginesRejectNonMetric: the ball-pruning engines must refuse
// the triangle-violating metrics at construction — accepting them would
// silently drop true neighbours.
func TestTreeEnginesRejectNonMetric(t *testing.T) {
	pts := randomPoints(50, 3, 93)
	for _, m := range []object.Metric{object.Cosine{}, object.DotProduct{}} {
		cfg := mtree.Config{Capacity: 8, Metric: m, Policy: mtree.MinOverlap}
		if _, err := BuildTreeEngine(cfg, pts); err == nil {
			t.Errorf("mtree accepted %s", m.Name())
		}
		if _, err := BuildVPEngine(pts, m, 7); err == nil {
			t.Errorf("vptree accepted %s", m.Name())
		}
	}
}
