package core

import (
	"math/rand"
	"testing"

	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/rtree"
)

func gridEngine(t *testing.T, pts []object.Point, m object.Metric, r float64) *GridEngine {
	t.Helper()
	e, err := BuildGridEngine(pts, m, r)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestGridEngineMatchesFlat: the cell-range scan must agree with brute
// force at the bucketing radius, below it and above it (multi-ring
// scans), for neighbours of objects and of arbitrary points.
func TestGridEngineMatchesFlat(t *testing.T) {
	pts := randomPoints(400, 2, 120)
	m := object.Euclidean{}
	flat := flatEngine(t, pts, m)
	e := gridEngine(t, pts, m, 0.1)
	for _, r := range []float64{0.04, 0.1, 0.3} {
		for _, id := range []int{0, 177, 399} {
			got := e.Neighbors(id, r)
			want := sortNeighbors(flat.Neighbors(id, r))
			if len(got) != len(want) {
				t.Fatalf("r=%g id=%d: %d neighbours, want %d", r, id, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("r=%g id=%d: neighbour %d is %+v, want %+v", r, id, i, got[i], want[i])
				}
			}
		}
		q := object.Point{0.41, 0.63}
		got := e.NeighborsOfPoint(q, r)
		want := sortNeighbors(flat.NeighborsOfPoint(q, r))
		if len(got) != len(want) {
			t.Fatalf("point query r=%g: %d neighbours, want %d", r, len(got), len(want))
		}
	}
}

// TestGridEngineEnsureRadius: radii covered by the current cell side
// must not re-bucket; larger ones must, preserving correctness and any
// active coverage state.
func TestGridEngineEnsureRadius(t *testing.T) {
	pts := randomPoints(300, 2, 121)
	m := object.Euclidean{}
	e := gridEngine(t, pts, m, 0.1)
	before := e.Grid()
	if err := e.EnsureRadius(0.05); err != nil {
		t.Fatal(err)
	}
	if e.Grid() != before {
		t.Fatal("EnsureRadius re-bucketed for a halved radius")
	}
	// A radius far below the cell side must re-bucket finer: keeping
	// 0.1-side cells for r=0.01 queries would scan ~100x the candidates.
	if err := e.EnsureRadius(0.01); err != nil {
		t.Fatal(err)
	}
	if e.Grid() == before {
		t.Fatal("EnsureRadius kept cells far coarser than the radius")
	}
	if err := e.EnsureRadius(0.1); err != nil { // restore for the checks below
		t.Fatal(err)
	}
	e.StartCoverage(nil)
	for id := 0; id < len(pts); id += 5 {
		e.Cover(id)
	}
	if err := e.EnsureRadius(0.4); err != nil {
		t.Fatal(err)
	}
	if e.Grid() == before {
		t.Fatal("EnsureRadius kept a grid that cannot cover the radius in one ring")
	}
	// Coverage state must survive the re-bucket: the white-pruned query
	// on the new grid agrees with a brute-force white filter.
	for _, id := range []int{1, 151} {
		got := map[int]bool{}
		for _, nb := range e.NeighborsWhite(id, 0.4) {
			got[nb.ID] = true
		}
		for j := range pts {
			want := j != id && e.IsWhite(j) && m.Dist(pts[id], pts[j]) <= 0.4
			if got[j] != want {
				t.Fatalf("id=%d: neighbour %d reported=%v want %v", id, j, got[j], want)
			}
		}
	}
}

// TestGridEngineGreedyMatchesFlat: the full greedy selection must be
// identical to the flat engine's, pruned or not.
func TestGridEngineGreedyMatchesFlat(t *testing.T) {
	pts := randomPoints(500, 2, 122)
	m := object.Euclidean{}
	want := GreedyDisC(flatEngine(t, pts, m), 0.08, GreedyOptions{Update: UpdateGrey}).SortedIDs()
	e := gridEngine(t, pts, m, 0.08)
	for _, pruned := range []bool{false, true} {
		s := GreedyDisC(e, 0.08, GreedyOptions{Update: UpdateGrey, Pruned: pruned})
		if !equalInts(want, s.SortedIDs()) {
			t.Fatalf("pruned=%v: solution differs from flat", pruned)
		}
	}
}

// TestGridEngineRejectsHamming: the grid requires a metric that
// dominates per-coordinate differences; Hamming does not.
func TestGridEngineRejectsHamming(t *testing.T) {
	pts := []object.Point{{0, 1}, {1, 0}}
	if _, err := BuildGridEngine(pts, object.Hamming{}, 1); err == nil {
		t.Fatal("Hamming metric accepted")
	}
}

// TestGraphEngineJoinPathsAgree: the grid ε-join fast path and the
// per-point R-tree query path must produce identical CSR adjacency —
// same offsets, same neighbours, bit-identical distances. The grid path
// is the default for Lp metrics, so this pins the R-tree path against
// drift too.
func TestGraphEngineJoinPathsAgree(t *testing.T) {
	pts := randomPoints(350, 3, 123)
	m := object.Manhattan{}
	tree, err := rtree.Build(pts, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []float64{0.05, 0.25} {
		viaGrid := graphEngine(t, pts, m, r, 3)
		if !viaGrid.GridJoined() {
			t.Fatal("Lp metric did not take the grid join path")
		}
		csr, _, err := rtreeJoin(tree, r, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(csr.Nbrs) != len(viaGrid.csr.Nbrs) {
			t.Fatalf("r=%g: rtree join has %d entries, grid join %d", r, len(csr.Nbrs), len(viaGrid.csr.Nbrs))
		}
		for id := range pts {
			a, b := csr.Row(id), viaGrid.csr.Row(id)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("r=%g id=%d entry %d: rtree %+v grid %+v", r, id, i, a[i], b[i])
				}
			}
		}
	}
}

// TestGraphEngineRTreePath: metrics the grid cannot serve (Hamming)
// take the R-tree build path; its materialised graph, fallback queries,
// coverage pruning and greedy selections must all match the flat
// engine.
func TestGraphEngineRTreePath(t *testing.T) {
	rng := rand.New(rand.NewSource(125))
	pts := make([]object.Point, 300)
	for i := range pts {
		pts[i] = object.Point{float64(rng.Intn(4)), float64(rng.Intn(4)), float64(rng.Intn(4)), float64(rng.Intn(4))}
	}
	m := object.Hamming{}
	g := graphEngine(t, pts, m, 2, 3)
	if g.GridJoined() {
		t.Fatal("Hamming took the grid join path")
	}
	flat := flatEngine(t, pts, m)
	for _, r := range []float64{1, 2, 3} { // below, at and beyond the build radius
		for _, id := range []int{0, 150, 299} {
			got := g.Neighbors(id, r)
			want := sortNeighbors(flat.Neighbors(id, r))
			if len(got) != len(want) {
				t.Fatalf("r=%g id=%d: %d neighbours, want %d", r, id, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("r=%g id=%d neighbour %d: %+v want %+v", r, id, i, got[i], want[i])
				}
			}
		}
	}
	gs := GreedyDisC(g, 2, GreedyOptions{Update: UpdateGrey, Pruned: true}).SortedIDs()
	fs := GreedyDisC(flat, 2, GreedyOptions{Update: UpdateGrey, Pruned: true}).SortedIDs()
	if !equalInts(gs, fs) {
		t.Fatal("R-tree-path greedy differs from flat")
	}
	// Pruned fallback beyond the build radius exercises the mirrored
	// white tracking in the tree.
	g.StartCoverage(nil)
	for id := 0; id < len(pts); id += 4 {
		g.Cover(id)
	}
	for _, id := range []int{1, 99} {
		got := map[int]bool{}
		for _, nb := range g.NeighborsWhite(id, 3) {
			got[nb.ID] = true
		}
		for j := range pts {
			want := j != id && g.IsWhite(j) && m.Dist(pts[id], pts[j]) <= 3
			if got[j] != want {
				t.Fatalf("id=%d: neighbour %d reported=%v want %v", id, j, got[j], want)
			}
		}
	}
}

// TestGraphEngineRebuildReusesGrid: zooming in (smaller radius) must
// re-join within the existing grid occupancy, zooming out must
// re-bucket — and both must match a from-scratch build exactly.
func TestGraphEngineRebuildReusesGrid(t *testing.T) {
	pts := randomPoints(400, 2, 124)
	m := object.Euclidean{}
	base := graphEngine(t, pts, m, 0.1, 2)
	for _, r := range []float64{0.05, 0.2, 0.01} { // r/2, 2r, far finer
		rebuilt, err := base.Rebuild(r)
		if err != nil {
			t.Fatal(err)
		}
		if r == 0.05 && rebuilt.hash != base.hash {
			t.Fatalf("r=%g: rebuild re-bucketed although the occupancy suits it", r)
		}
		// Both a larger radius (one ring cannot cover it) and a far
		// smaller one (the ring would hold mostly non-neighbours) must
		// re-bucket.
		if r != 0.05 && rebuilt.hash == base.hash {
			t.Fatalf("r=%g: rebuild kept a grid whose cell side does not suit it", r)
		}
		fresh := graphEngine(t, pts, m, r, 2)
		for id := range pts {
			a, b := rebuilt.Neighbors(id, r), fresh.Neighbors(id, r)
			if len(a) != len(b) {
				t.Fatalf("r=%g id=%d: rebuilt %d neighbours, fresh %d", r, id, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("r=%g id=%d neighbour %d: rebuilt %+v, fresh %+v", r, id, i, a[i], b[i])
				}
			}
		}
	}
}
