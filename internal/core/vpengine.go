package core

import (
	"github.com/discdiversity/disc/internal/grid"
	"github.com/discdiversity/disc/internal/object"
	"github.com/discdiversity/disc/internal/vptree"
)

// VPEngine adapts a vantage-point tree to the Engine interfaces — the
// alternative index structure the paper's future work calls for. It
// supports the pruning rule (CoverageEngine) but, being a static binary
// tree, offers neither bottom-up queries nor build-time counts.
type VPEngine struct {
	tree *vptree.Tree
}

var (
	_ Engine         = (*VPEngine)(nil)
	_ CoverageEngine = (*VPEngine)(nil)
)

// BuildVPEngine constructs a VP-tree over pts and wraps it.
func BuildVPEngine(pts []object.Point, m object.Metric, seed uint64) (*VPEngine, error) {
	t, err := vptree.Build(pts, m, seed)
	if err != nil {
		return nil, err
	}
	return &VPEngine{tree: t}, nil
}

// Tree exposes the underlying index.
func (ve *VPEngine) Tree() *vptree.Tree { return ve.tree }

// Size implements Engine.
func (ve *VPEngine) Size() int { return ve.tree.Len() }

// Metric implements Engine.
func (ve *VPEngine) Metric() object.Metric { return ve.tree.Metric() }

// Point implements Engine.
func (ve *VPEngine) Point(id int) object.Point { return ve.tree.Point(id) }

// Neighbors implements Engine.
func (ve *VPEngine) Neighbors(id int, r float64) []object.Neighbor {
	return ve.tree.RangeQueryAround(id, r)
}

// NeighborsAppend implements Engine.
func (ve *VPEngine) NeighborsAppend(dst []object.Neighbor, id int, r float64) []object.Neighbor {
	return ve.tree.AppendRangeQueryAround(dst, id, r)
}

// NeighborsOfPoint implements Engine.
func (ve *VPEngine) NeighborsOfPoint(q object.Point, r float64) []object.Neighbor {
	return ve.tree.RangeQuery(q, r)
}

// ScanOrder implements Engine via in-order traversal.
func (ve *VPEngine) ScanOrder() []int { return ve.tree.ScanOrder() }

// Accesses implements Engine.
func (ve *VPEngine) Accesses() int64 { return ve.tree.Accesses() }

// ResetAccesses implements Engine.
func (ve *VPEngine) ResetAccesses() { ve.tree.ResetAccesses() }

// StartCoverage implements CoverageEngine.
func (ve *VPEngine) StartCoverage(white []bool) {
	if white == nil {
		ve.tree.EnableTracking()
		return
	}
	ve.tree.ResetTracking(white)
}

// Cover implements CoverageEngine.
func (ve *VPEngine) Cover(id int) { ve.tree.Cover(id) }

// IsWhite implements CoverageEngine.
func (ve *VPEngine) IsWhite(id int) bool { return ve.tree.IsWhite(id) }

// NeighborsWhite implements CoverageEngine.
func (ve *VPEngine) NeighborsWhite(id int, r float64) []object.Neighbor {
	return ve.tree.RangeQueryPruned(id, r)
}

// NeighborsWhiteAppend implements CoverageEngine.
func (ve *VPEngine) NeighborsWhiteAppend(dst []object.Neighbor, id int, r float64) []object.Neighbor {
	return ve.tree.AppendRangeQueryPruned(dst, id, r)
}

// Components implements CoverageEngine by breadth-first traversal over
// per-object range queries.
func (ve *VPEngine) Components(r float64) *grid.Components {
	return componentsViaQueries(ve, r)
}
