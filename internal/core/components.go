package core

import (
	"math"

	"github.com/discdiversity/disc/internal/grid"
	"github.com/discdiversity/disc/internal/object"
)

// componentsViaQueries labels the connected components of the r-coverage
// graph over the engine's own range queries — exactly one
// NeighborsAppend per object (into one reused buffer), so the cost
// matches Greedy-DisC's count-initialisation pass and the accesses land
// on the engine's counter like any other query. The traversal and the
// canonical numbering live in grid.ComponentsOf, shared with the
// CSR-backed path, so the decomposition cannot drift between engines.
// It backs the Components implementation of every engine without a
// materialised adjacency.
func componentsViaQueries(e Engine, r float64) *grid.Components {
	var buf []object.Neighbor
	return grid.ComponentsOf(e.Size(), r, func(id int) []object.Neighbor {
		buf = e.NeighborsAppend(buf[:0], id, r)
		return buf
	})
}

// materializeAdjacency builds the exact r-adjacency of the engine's
// objects as a CSR, one range query per object in ascending id order.
// The component-decomposed selection path uses it on engines that hold
// no materialised graph: the queries cost what Greedy-DisC's count
// initialisation would, and afterwards every per-component scan is an
// array walk. ok is false when the adjacency would overflow the CSR's
// int32 offset domain (callers fall back to the global path).
func materializeAdjacency(e Engine, r float64) (csr *grid.CSR, ok bool) {
	n := e.Size()
	offsets := make([]int32, n+1)
	var nbrs []object.Neighbor
	for id := 0; id < n; id++ {
		nbrs = e.NeighborsAppend(nbrs, id, r)
		if len(nbrs) > math.MaxInt32 {
			return nil, false
		}
		offsets[id+1] = int32(len(nbrs))
	}
	return &grid.CSR{Offsets: offsets, Nbrs: nbrs}, true
}

// adjacencySource is implemented by engines whose materialised coverage
// graph can serve the component-decomposed selection directly, with no
// per-selection materialisation pass.
type adjacencySource interface {
	// AdjacencyCSR returns the exact r-adjacency and true when the
	// engine holds it materialised for exactly this radius.
	AdjacencyCSR(r float64) (*grid.CSR, bool)
}
